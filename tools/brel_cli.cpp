// brel_cli — command-line front end for the BREL solver.
//
// Reads a relation in the .br text format (see relation_io.hpp) from a
// file or stdin, solves it, and prints the solution as per-output SOP
// covers plus statistics.
//
//   brel_cli [options] [file.br]          (no file or "-" = stdin)
//     --cost=size|size2|cubes|lits|balance   objective (default size)
//     --max-relations=N                      explored relations (default 10)
//     --budget=N                             alias for --max-relations
//     --fifo=N                               pending-frontier bound
//     --max-depth=N                          truncate the tree below depth N
//                                            (schedule-independent partial
//                                            exploration)
//     --exact                                complete exploration
//     --order=bfs|dfs|best                   exploration order
//     --workers=N                            parallel exploration with N
//                                            worker threads, one private BDD
//                                            manager each (0 = one per
//                                            hardware thread; default 1)
//     --reorder=off|on|auto                  dynamic variable reordering of
//                                            the solving manager(s): off =
//                                            never (default, bit-identical
//                                            results), on = sift once before
//                                            exploring, auto = sift whenever
//                                            live nodes cross the GC-coupled
//                                            threshold; prints a reorder
//                                            stats line when sifting ran
//     --no-bound                             disable the line-6 cost bound
//     --symmetry                             enable the symmetry cache
//     --seed-cache                           enable the subproblem cache,
//                                            seeded with the root relation.
//                                            One-shot runs never hit it
//                                            (Property 5.4 — it acts as an
//                                            invariant guard); embedders
//                                            share it across solves via
//                                            SolverOptions::subproblem_cache
//     --totalize                             repair partial relations
//     --solver=brel|quick|gyocro|herb        which solver to run
//     --serve                                batch service mode: treat every
//                                            positional argument as a relation
//                                            file (.br rows or .bdd compact
//                                            bodies) and solve them all over a
//                                            SolverPool of --workers slots
//                                            with a shared cross-solve memo;
//                                            prints one line per request plus
//                                            a throughput/memo summary
//     --no-memo                              disable the pool's cross-solve
//                                            memo in --serve mode
//     --incremental                          delta-driven re-solve: diff each
//                                            request against the most recent
//                                            solved relation over the same
//                                            variable spaces and re-search
//                                            only the subtrees the change
//                                            region touches (--serve slots
//                                            keep per-slot bases; single-solve
//                                            mode accepts the flag for parity
//                                            but has no prior base).  Also
//                                            arms the delta-localization
//                                            partition (first 4 inputs), so
//                                            point edits re-search one block.
//                                            Requires the memo;
//                                            BREL_INCREMENTAL=0|1 overrides
//     --memo-shards=N                        lock shards of the pool memo
//                                            (--serve; 0 = auto: 16 for an
//                                            unbounded memo, 1 when capped)
//     --steal-batch=N                        subproblems a parallel-engine
//                                            victim donates per steal request
//                                            as one serialized batch
//                                            (default 8; 1 = old behaviour)
//     --dump-table                           print the relation table
//     --quiet                                covers only

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "brel/lock_stats.hpp"
#include "brel/solver.hpp"
#include "brel/solver_pool.hpp"
#include "gyocro/gyocro.hpp"
#include "relation/relation_io.hpp"

namespace {

struct CliOptions {
  std::string cost = "size";
  std::size_t budget = 10;
  std::size_t fifo = static_cast<std::size_t>(-1);
  std::size_t max_depth = static_cast<std::size_t>(-1);
  std::size_t workers = 1;
  brel::ReorderMode reorder = brel::ReorderMode::Off;
  bool no_bound = false;
  bool exact = false;
  brel::ExplorationOrder order = brel::ExplorationOrder::BreadthFirst;
  bool symmetry = false;
  bool seed_cache = false;
  bool totalize = false;
  bool dump_table = false;
  bool quiet = false;
  bool serve = false;
  bool no_memo = false;
  bool incremental = false;
  std::size_t memo_shards = 0;  ///< 0 = GlobalMemo auto policy
  std::size_t steal_batch = 8;
  std::string solver = "brel";
  std::vector<std::string> files;  ///< positionals; empty = stdin
};

[[noreturn]] void usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: brel_cli [--cost=size|size2|cubes|lits|balance]\n"
               "                [--max-relations=N] [--budget=N] [--fifo=N]\n"
               "                [--max-depth=N] [--exact] [--no-bound]\n"
               "                [--order=bfs|dfs|best] [--workers=N]\n"
               "                [--reorder=off|on|auto]\n"
               "                [--symmetry] [--seed-cache] [--totalize]\n"
               "                [--solver=brel|quick|gyocro|herb]\n"
               "                [--serve] [--no-memo] [--incremental]\n"
               "                [--memo-shards=N]\n"
               "                [--steal-batch=N]\n"
               "                [--dump-table] [--quiet] [file.br|-]...\n"
               "  --serve solves every listed file over a SolverPool of\n"
               "  --workers slots sharing one cross-solve memo\n");
  std::exit(code);
}

brel::ReorderMode reorder_by_name(const std::string& name) {
  if (name == "off") {
    return brel::ReorderMode::Off;
  }
  if (name == "on") {
    return brel::ReorderMode::On;
  }
  if (name == "auto") {
    return brel::ReorderMode::Auto;
  }
  std::fprintf(stderr, "unknown reorder mode '%s'\n", name.c_str());
  usage(2);
}

brel::ExplorationOrder order_by_name(const std::string& name) {
  if (name == "bfs") {
    return brel::ExplorationOrder::BreadthFirst;
  }
  if (name == "dfs") {
    return brel::ExplorationOrder::DepthFirst;
  }
  if (name == "best") {
    return brel::ExplorationOrder::BestFirst;
  }
  std::fprintf(stderr, "unknown order '%s'\n", name.c_str());
  usage(2);
}

CliOptions parse_args(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const char* prefix) -> const char* {
      const std::size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      usage(0);
    } else if (const char* v = value_of("--cost=")) {
      options.cost = v;
    } else if (const char* v = value_of("--budget=")) {
      options.budget = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--max-relations=")) {
      options.budget = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--fifo=")) {
      options.fifo = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--max-depth=")) {
      options.max_depth =
          static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--workers=")) {
      options.workers =
          static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--no-bound") {
      options.no_bound = true;
    } else if (arg == "--exact") {
      options.exact = true;
    } else if (const char* v = value_of("--order=")) {
      options.order = order_by_name(v);  // validated before any input I/O
    } else if (const char* v = value_of("--reorder=")) {
      options.reorder = reorder_by_name(v);
    } else if (arg == "--symmetry") {
      options.symmetry = true;
    } else if (arg == "--seed-cache") {
      options.seed_cache = true;
    } else if (arg == "--serve") {
      options.serve = true;
    } else if (arg == "--no-memo") {
      options.no_memo = true;
    } else if (arg == "--incremental") {
      options.incremental = true;
    } else if (const char* v = value_of("--memo-shards=")) {
      options.memo_shards =
          static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--steal-batch=")) {
      options.steal_batch =
          static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--totalize") {
      options.totalize = true;
    } else if (const char* v = value_of("--solver=")) {
      options.solver = v;
    } else if (arg == "--dump-table") {
      options.dump_table = true;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(2);
    } else {
      options.files.push_back(arg);
    }
  }
  return options;
}

brel::CostFunction cost_by_name(const std::string& name) {
  if (name == "size") {
    return brel::sum_of_bdd_sizes();
  }
  if (name == "size2") {
    return brel::sum_of_squared_bdd_sizes();
  }
  if (name == "cubes") {
    return brel::cube_count_cost();
  }
  if (name == "lits") {
    return brel::literal_count_cost();
  }
  if (name == "balance") {
    return brel::support_balance_cost();
  }
  std::fprintf(stderr, "unknown cost '%s'\n", name.c_str());
  usage(2);
}

void print_covers(brel::BddManager& mgr, const brel::BooleanRelation& r,
                  const brel::MultiFunction& f) {
  for (std::size_t i = 0; i < f.outputs.size(); ++i) {
    const brel::IsopResult sop = mgr.isop(f.outputs[i], f.outputs[i]);
    std::printf("y%zu:\n", i);
    if (sop.cover.empty()) {
      std::printf("  0\n");
      continue;
    }
    for (const brel::Cube& cube : sop.cover.cubes()) {
      // Print only the input positions.
      std::string text;
      for (std::size_t k = 0; k < r.num_inputs(); ++k) {
        const brel::Lit lit = cube.lit(r.inputs()[k]);
        text.push_back(lit == brel::Lit::Zero
                           ? '0'
                           : (lit == brel::Lit::One ? '1' : '-'));
      }
      std::printf("  %s\n", text.c_str());
    }
  }
}

/// Non-fatal slurp for batch (--serve) mode: reads a path or "-"
/// (stdin) fully into `out`; returns false when the file cannot be
/// opened, so one bad path skips that request instead of killing the
/// whole batch.
bool try_slurp(const std::string& file, std::string& out) {
  std::ostringstream buffer;
  if (file == "-") {
    buffer << std::cin.rdbuf();
  } else {
    std::ifstream in(file);
    if (!in) {
      return false;
    }
    buffer << in.rdbuf();
  }
  out = buffer.str();
  return true;
}

/// Read one input (a path or "-" for stdin) fully into a string; exits
/// with status 2 when the file cannot be opened.  Single-solve mode
/// only — there is exactly one input, so there is nothing else to keep
/// serving.
std::string slurp(const std::string& file) {
  std::string text;
  if (!try_slurp(file, text)) {
    std::fprintf(stderr, "cannot open '%s'\n", file.c_str());
    std::exit(2);
  }
  return text;
}

/// One `# locks:` line from the process-global registry: blocked-acquire
/// wait per named lock.  Silent when lock stats were compiled out or no
/// named lock was ever taken (e.g. serial single-solve, memo-less pool).
void print_lock_stats() {
  if (!brel::lock_stats_compiled()) {
    return;
  }
  bool any = false;
  std::string line = "# locks:";
  char item[128];
  for (const brel::LockSnapshot& s :
       brel::LockStatsRegistry::instance().snapshot()) {
    if (s.acquires == 0) {
      continue;
    }
    any = true;
    std::snprintf(item, sizeof(item),
                  " %s wait=%.3fms acquires=%llu contended=%llu",
                  s.name.c_str(), static_cast<double>(s.wait_ns) / 1e6,
                  static_cast<unsigned long long>(s.acquires),
                  static_cast<unsigned long long>(s.contended));
    line += item;
  }
  if (any) {
    std::printf("%s\n", line.c_str());
  }
}

brel::SolverOptions solver_options_from_cli(const CliOptions& cli) {
  brel::SolverOptions options;
  options.cost = cost_by_name(cli.cost);
  options.max_relations = cli.budget;
  options.fifo_capacity = cli.fifo;
  options.max_depth = cli.max_depth;
  options.use_cost_bound = !cli.no_bound;
  options.num_workers = cli.workers;
  options.exact = cli.exact;
  options.use_symmetry = cli.symmetry;
  options.use_subproblem_cache = cli.seed_cache;
  options.order = cli.order;
  options.reorder = cli.reorder;
  options.steal_batch = cli.steal_batch;
  return options;
}

/// --serve: solve every listed file over a SolverPool.  The per-request
/// engine is serial; --workers sizes the POOL (concurrent solves), and
/// identical or overlapping relations are served from the shared
/// cross-solve memo after the first solve.
int run_serve(const CliOptions& cli) {
  if (cli.files.empty()) {
    std::fprintf(stderr, "--serve requires at least one relation file\n");
    return 2;
  }
  if (cli.solver != "brel") {
    std::fprintf(stderr, "--serve only supports --solver=brel\n");
    return 2;
  }
  if (cli.dump_table) {
    std::fprintf(stderr, "--dump-table is not supported with --serve\n");
    return 2;
  }
  // stdin is a stream: the first "-" drains it, so a second "-" would
  // silently submit an empty request.  Reject the duplicate up front.
  std::size_t stdin_mentions = 0;
  for (const std::string& file : cli.files) {
    if (file == "-") {
      ++stdin_mentions;
    }
  }
  if (stdin_mentions > 1) {
    std::fprintf(stderr,
                 "--serve: '-' (stdin) may be listed at most once (it is "
                 "drained by the first mention)\n");
    return 2;
  }

  // Slurp what is readable; an unreadable file fails ITS request (stderr
  // line, nonzero exit at the end) without aborting the batch.
  std::vector<std::string> texts;
  std::vector<std::string> names;  ///< cli.files entry per slurped text
  texts.reserve(cli.files.size());
  names.reserve(cli.files.size());
  int failures = 0;
  for (const std::string& file : cli.files) {
    std::string text;
    if (!try_slurp(file, text)) {
      std::fprintf(stderr, "%s: error: cannot open file\n", file.c_str());
      ++failures;
      continue;
    }
    texts.push_back(std::move(text));
    names.push_back(file);
  }

  brel::PoolOptions pool_options;
  pool_options.workers = cli.workers;
  pool_options.solver = solver_options_from_cli(cli);
  pool_options.share_memo = !cli.no_memo;
  pool_options.memo_shards = cli.memo_shards;
  pool_options.totalize = cli.totalize;
  pool_options.incremental = cli.incremental;
  if (brel::resolve_incremental(cli.incremental)) {
    // Delta localization (partition.hpp): cofactor on the first inputs
    // so a point edit dirties one block and the clean blocks root-hit.
    // Fig. 6 splits alone cannot localize point edits — they refine
    // output constraints, never the input space.
    pool_options.solver.partition_inputs = 4;
  }

  const auto start = std::chrono::steady_clock::now();
  brel::SolverPool pool(pool_options);
  std::vector<std::future<brel::PoolResult>> futures;
  futures.reserve(texts.size());
  for (const std::string& text : texts) {
    futures.push_back(pool.submit(text));
  }

  std::size_t total_reorders = 0;
  std::size_t delta_runs = 0;
  std::size_t delta_reused = 0;
  std::size_t delta_researched = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    try {
      const brel::PoolResult result = futures[i].get();
      total_reorders += result.stats.reorders;
      if (result.stats.delta_active) {
        ++delta_runs;
        delta_reused += result.stats.delta_reused;
        delta_researched += result.stats.delta_researched;
      }
      // Independent check in a fresh manager: re-parse the request and
      // materialize the portable solution against it.
      brel::BddManager check_mgr{0};
      brel::BooleanRelation relation =
          brel::read_relation(check_mgr, texts[i]);
      // The check relation must match what the worker solved: a
      // totalizing pool solves the repaired relation.
      if (cli.totalize) {
        relation = relation.totalized();
      }
      const brel::MultiFunction f =
          brel::import_pool_solution(check_mgr, relation, result);
      const bool ok = relation.is_compatible(f);
      // --quiet means "covers only", exactly like single-solve mode.
      if (!cli.quiet) {
        char delta_item[96] = "";
        if (result.stats.delta_active) {
          std::snprintf(delta_item, sizeof(delta_item),
                        " delta_reused=%zu delta_researched=%zu",
                        result.stats.delta_reused,
                        result.stats.delta_researched);
        }
        std::printf(
            "%s: cost=%.0f explored=%zu memo_hits=%zu%s worker=%zu%s\n",
            names[i].c_str(), result.cost,
            result.stats.relations_explored, result.stats.memo_hits,
            delta_item, result.worker_id, ok ? "" : " INCOMPATIBLE");
      }
      if (!ok) {
        ++failures;
      }
      print_covers(check_mgr, relation, f);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "%s: error: %s\n", names[i].c_str(),
                   error.what());
      ++failures;
    }
  }
  pool.shutdown();
  if (!cli.quiet) {
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    std::printf("# served %llu request(s) on %zu worker(s) in %.3fs",
                static_cast<unsigned long long>(pool.requests_served()),
                pool.worker_count(), seconds);
    if (pool.memo() != nullptr) {
      const unsigned long long hits = pool.memo()->hits();
      const unsigned long long probes = pool.memo()->probes();
      // The hit RATE is the number that tells an operator whether the
      // memo is earning its memory: raw hit/probe counts alone scale
      // with traffic and say nothing.
      std::printf(
          " | memo: %zu entries (%zu shards), %llu/%llu probe hits (%.1f%%)",
          pool.memo()->size(), pool.memo()->shard_count(), hits, probes,
          probes == 0 ? 0.0 : 100.0 * static_cast<double>(hits) /
                                  static_cast<double>(probes));
    }
    if (delta_runs > 0) {
      const std::size_t classified = delta_reused + delta_researched;
      std::printf(
          " | delta: %zu run(s), reused=%zu re-searched=%zu (%.1f%% reuse)",
          delta_runs, delta_reused, delta_researched,
          classified == 0 ? 0.0
                          : 100.0 * static_cast<double>(delta_reused) /
                                static_cast<double>(classified));
    }
    if (total_reorders > 0) {
      std::printf(" | reorders: %zu", total_reorders);
    }
    std::printf("\n");
    print_lock_stats();
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = parse_args(argc, argv);
  if (cli.serve) {
    return run_serve(cli);
  }
  if (cli.files.size() > 1) {
    std::fprintf(stderr,
                 "multiple input files require --serve (single-solve mode "
                 "takes one file or stdin)\n");
    return 2;
  }
  const std::string text = slurp(cli.files.empty() ? "-" : cli.files.front());

  brel::BddManager mgr{0};
  brel::BooleanRelation relation = [&] {
    try {
      return brel::read_relation(mgr, text);
    } catch (const std::invalid_argument& error) {
      std::fprintf(stderr, "%s\n", error.what());
      std::exit(2);
    }
  }();
  if (cli.totalize) {
    relation = relation.totalized();
  }
  if (!relation.is_well_defined()) {
    std::fprintf(stderr,
                 "relation is not well defined (some input vertex has an "
                 "empty image); rerun with --totalize to repair it\n");
    return 1;
  }
  if (cli.dump_table && !cli.quiet) {
    std::printf("%s\n", relation.to_table().c_str());
  }

  if (cli.solver == "quick") {
    const brel::MultiFunction f = brel::quick_solve(relation);
    print_covers(mgr, relation, f);
    return relation.is_compatible(f) ? 0 : 1;
  }
  if (cli.solver == "gyocro" || cli.solver == "herb") {
    brel::GyocroOptions options;
    options.multi_literal_expand = cli.solver == "gyocro";
    const brel::GyocroResult result =
        brel::GyocroSolver(options).solve(relation);
    if (!cli.quiet) {
      std::printf("# %s: %zu cubes, %zu literals, %zu iterations\n",
                  cli.solver.c_str(), result.cube_count,
                  result.literal_count, result.stats.iterations);
    }
    print_covers(mgr, relation, result.function);
    return relation.is_compatible(result.function) ? 0 : 1;
  }
  if (cli.solver != "brel") {
    std::fprintf(stderr, "unknown solver '%s'\n", cli.solver.c_str());
    return 2;
  }

  brel::SolverOptions options = solver_options_from_cli(cli);
  // Single-solve parity for --incremental: one process-lifetime registry
  // and memo.  The first (only) solve finds no base, so the flag is
  // inert here — it exists so scripted pipelines can pass one option set
  // to both modes; the delta machinery pays off under --serve, where
  // slots persist across requests.
  brel::DeltaRegistry registry;
  if (brel::resolve_incremental(cli.incremental)) {
    if (options.global_memo == nullptr) {
      options.global_memo = std::make_shared<brel::GlobalMemo>();
    }
    options.delta_registry = &registry;
    // Same delta-localization pre-split as --serve slots, so both modes
    // produce identical results for identical option sets.
    options.partition_inputs = 4;
  }
  const brel::SolveResult result = brel::BrelSolver(options).solve(relation);
  if (!cli.quiet) {
    std::printf("# cost(%s) = %.0f\n", cli.cost.c_str(), result.cost);
    std::printf(
        "# explored=%zu splits=%zu conflicts=%zu pruned(cost)=%zu "
        "pruned(sym)=%zu pruned(cache)=%zu time=%.3fs%s\n",
        result.stats.relations_explored, result.stats.splits,
        result.stats.conflicts, result.stats.pruned_by_cost,
        result.stats.pruned_by_symmetry, result.stats.pruned_by_cache,
        result.stats.runtime_seconds,
        result.stats.budget_exhausted ? " (budget exhausted)" : "");
    if (result.stats.workers > 1) {
      std::printf("# workers=%zu steals=%zu batches=%zu\n",
                  result.stats.workers, result.stats.steals,
                  result.stats.steal_batches);
      print_lock_stats();
    }
    if (result.stats.delta_active) {
      const std::size_t classified =
          result.stats.delta_reused + result.stats.delta_researched;
      std::printf("# delta: reused=%zu re-searched=%zu (%.1f%% reuse)\n",
                  result.stats.delta_reused, result.stats.delta_researched,
                  classified == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(result.stats.delta_reused) /
                            static_cast<double>(classified));
    }
    if (result.stats.reorders > 0) {
      // Serial runs sift the manager above; parallel runs sift their
      // private worker managers, so the swap/node detail lives there and
      // only the run count is meaningful here.
      const brel::BddStats& kernel = mgr.stats();
      if (kernel.reorders > 0) {
        std::printf("# reorder: runs=%zu swaps=%llu nodes %zu->%zu\n",
                    result.stats.reorders,
                    static_cast<unsigned long long>(kernel.reorder_swaps),
                    kernel.reorder_nodes_before, kernel.reorder_nodes_after);
      } else {
        std::printf("# reorder: runs=%zu (in worker managers)\n",
                    result.stats.reorders);
      }
    }
  }
  print_covers(mgr, relation, result.function);
  return relation.is_compatible(result.function) ? 0 : 1;
}
