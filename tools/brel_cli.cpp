// brel_cli — command-line front end for the BREL solver.
//
// Reads a relation in the .br text format (see relation_io.hpp) from a
// file or stdin, solves it, and prints the solution as per-output SOP
// covers plus statistics.
//
//   brel_cli [options] [file.br]          (no file or "-" = stdin)
//     --cost=size|size2|cubes|lits|balance   objective (default size)
//     --max-relations=N                      explored relations (default 10)
//     --budget=N                             alias for --max-relations
//     --fifo=N                               pending-frontier bound
//     --max-depth=N                          truncate the tree below depth N
//                                            (schedule-independent partial
//                                            exploration)
//     --exact                                complete exploration
//     --order=bfs|dfs|best                   exploration order
//     --workers=N                            parallel exploration with N
//                                            worker threads, one private BDD
//                                            manager each (0 = one per
//                                            hardware thread; default 1)
//     --no-bound                             disable the line-6 cost bound
//     --symmetry                             enable the symmetry cache
//     --seed-cache                           enable the subproblem cache,
//                                            seeded with the root relation.
//                                            One-shot runs never hit it
//                                            (Property 5.4 — it acts as an
//                                            invariant guard); embedders
//                                            share it across solves via
//                                            SolverOptions::subproblem_cache
//     --totalize                             repair partial relations
//     --solver=brel|quick|gyocro|herb        which solver to run
//     --dump-table                           print the relation table
//     --quiet                                covers only

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "brel/solver.hpp"
#include "gyocro/gyocro.hpp"
#include "relation/relation_io.hpp"

namespace {

struct CliOptions {
  std::string cost = "size";
  std::size_t budget = 10;
  std::size_t fifo = static_cast<std::size_t>(-1);
  std::size_t max_depth = static_cast<std::size_t>(-1);
  std::size_t workers = 1;
  bool no_bound = false;
  bool exact = false;
  brel::ExplorationOrder order = brel::ExplorationOrder::BreadthFirst;
  bool symmetry = false;
  bool seed_cache = false;
  bool totalize = false;
  bool dump_table = false;
  bool quiet = false;
  std::string solver = "brel";
  std::string file = "-";
};

[[noreturn]] void usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: brel_cli [--cost=size|size2|cubes|lits|balance]\n"
               "                [--max-relations=N] [--budget=N] [--fifo=N]\n"
               "                [--max-depth=N] [--exact] [--no-bound]\n"
               "                [--order=bfs|dfs|best] [--workers=N]\n"
               "                [--symmetry] [--seed-cache] [--totalize]\n"
               "                [--solver=brel|quick|gyocro|herb]\n"
               "                [--dump-table] [--quiet] [file.br|-]\n");
  std::exit(code);
}

brel::ExplorationOrder order_by_name(const std::string& name) {
  if (name == "bfs") {
    return brel::ExplorationOrder::BreadthFirst;
  }
  if (name == "dfs") {
    return brel::ExplorationOrder::DepthFirst;
  }
  if (name == "best") {
    return brel::ExplorationOrder::BestFirst;
  }
  std::fprintf(stderr, "unknown order '%s'\n", name.c_str());
  usage(2);
}

CliOptions parse_args(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const char* prefix) -> const char* {
      const std::size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      usage(0);
    } else if (const char* v = value_of("--cost=")) {
      options.cost = v;
    } else if (const char* v = value_of("--budget=")) {
      options.budget = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--max-relations=")) {
      options.budget = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--fifo=")) {
      options.fifo = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--max-depth=")) {
      options.max_depth =
          static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--workers=")) {
      options.workers =
          static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--no-bound") {
      options.no_bound = true;
    } else if (arg == "--exact") {
      options.exact = true;
    } else if (const char* v = value_of("--order=")) {
      options.order = order_by_name(v);  // validated before any input I/O
    } else if (arg == "--symmetry") {
      options.symmetry = true;
    } else if (arg == "--seed-cache") {
      options.seed_cache = true;
    } else if (arg == "--totalize") {
      options.totalize = true;
    } else if (const char* v = value_of("--solver=")) {
      options.solver = v;
    } else if (arg == "--dump-table") {
      options.dump_table = true;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(2);
    } else {
      options.file = arg;
    }
  }
  return options;
}

brel::CostFunction cost_by_name(const std::string& name) {
  if (name == "size") {
    return brel::sum_of_bdd_sizes();
  }
  if (name == "size2") {
    return brel::sum_of_squared_bdd_sizes();
  }
  if (name == "cubes") {
    return brel::cube_count_cost();
  }
  if (name == "lits") {
    return brel::literal_count_cost();
  }
  if (name == "balance") {
    return brel::support_balance_cost();
  }
  std::fprintf(stderr, "unknown cost '%s'\n", name.c_str());
  usage(2);
}

void print_covers(brel::BddManager& mgr, const brel::BooleanRelation& r,
                  const brel::MultiFunction& f) {
  for (std::size_t i = 0; i < f.outputs.size(); ++i) {
    const brel::IsopResult sop = mgr.isop(f.outputs[i], f.outputs[i]);
    std::printf("y%zu:\n", i);
    if (sop.cover.empty()) {
      std::printf("  0\n");
      continue;
    }
    for (const brel::Cube& cube : sop.cover.cubes()) {
      // Print only the input positions.
      std::string text;
      for (std::size_t k = 0; k < r.num_inputs(); ++k) {
        const brel::Lit lit = cube.lit(r.inputs()[k]);
        text.push_back(lit == brel::Lit::Zero
                           ? '0'
                           : (lit == brel::Lit::One ? '1' : '-'));
      }
      std::printf("  %s\n", text.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = parse_args(argc, argv);
  std::string text;
  if (cli.file == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream in(cli.file);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", cli.file.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }

  brel::BddManager mgr{0};
  brel::BooleanRelation relation = [&] {
    try {
      return brel::read_relation(mgr, text);
    } catch (const std::invalid_argument& error) {
      std::fprintf(stderr, "%s\n", error.what());
      std::exit(2);
    }
  }();
  if (cli.totalize) {
    relation = relation.totalized();
  }
  if (!relation.is_well_defined()) {
    std::fprintf(stderr,
                 "relation is not well defined (some input vertex has an "
                 "empty image); rerun with --totalize to repair it\n");
    return 1;
  }
  if (cli.dump_table && !cli.quiet) {
    std::printf("%s\n", relation.to_table().c_str());
  }

  if (cli.solver == "quick") {
    const brel::MultiFunction f = brel::quick_solve(relation);
    print_covers(mgr, relation, f);
    return relation.is_compatible(f) ? 0 : 1;
  }
  if (cli.solver == "gyocro" || cli.solver == "herb") {
    brel::GyocroOptions options;
    options.multi_literal_expand = cli.solver == "gyocro";
    const brel::GyocroResult result =
        brel::GyocroSolver(options).solve(relation);
    if (!cli.quiet) {
      std::printf("# %s: %zu cubes, %zu literals, %zu iterations\n",
                  cli.solver.c_str(), result.cube_count,
                  result.literal_count, result.stats.iterations);
    }
    print_covers(mgr, relation, result.function);
    return relation.is_compatible(result.function) ? 0 : 1;
  }
  if (cli.solver != "brel") {
    std::fprintf(stderr, "unknown solver '%s'\n", cli.solver.c_str());
    return 2;
  }

  brel::SolverOptions options;
  options.cost = cost_by_name(cli.cost);
  options.max_relations = cli.budget;
  options.fifo_capacity = cli.fifo;
  options.max_depth = cli.max_depth;
  options.use_cost_bound = !cli.no_bound;
  options.num_workers = cli.workers;
  options.exact = cli.exact;
  options.use_symmetry = cli.symmetry;
  options.use_subproblem_cache = cli.seed_cache;
  options.order = cli.order;
  const brel::SolveResult result = brel::BrelSolver(options).solve(relation);
  if (!cli.quiet) {
    std::printf("# cost(%s) = %.0f\n", cli.cost.c_str(), result.cost);
    std::printf(
        "# explored=%zu splits=%zu conflicts=%zu pruned(cost)=%zu "
        "pruned(sym)=%zu pruned(cache)=%zu time=%.3fs%s\n",
        result.stats.relations_explored, result.stats.splits,
        result.stats.conflicts, result.stats.pruned_by_cost,
        result.stats.pruned_by_symmetry, result.stats.pruned_by_cache,
        result.stats.runtime_seconds,
        result.stats.budget_exhausted ? " (budget exhausted)" : "");
    if (result.stats.workers > 1) {
      std::printf("# workers=%zu steals=%zu\n", result.stats.workers,
                  result.stats.steals);
    }
  }
  print_covers(mgr, relation, result.function);
  return relation.is_compatible(result.function) ? 0 : 1;
}
