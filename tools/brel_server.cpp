// brel_server — socket service front end over a SolverPool.
//
// Listens on a TCP port and serves length-prefixed request frames (see
// src/brel/server.hpp for the frame grammar): SOLVE frames carry a
// `.br`/`.bdd` relation and answer a portable solution, STATS frames
// (and any plain connection to --metrics-port) answer the metrics
// block, PING answers "OK ping".  SIGTERM/SIGINT begin a graceful
// drain: accepting stops, every accepted request is answered, a serve
// summary is printed, and the exit status is 0 iff accepted == answered.
//
//   brel_server [options]
//     --port=N                listen port (default 7117; 0 = ephemeral,
//                             printed on stdout)
//     --host=A                bind address (default 127.0.0.1)
//     --metrics-port=N        plain-text stats listener (off by default;
//                             0 = ephemeral); `nc host port` works
//     --workers=N             pool slots (0 = one per hardware thread)
//     --max-pending=N         admission bound: BUSY past N resident
//                             requests (default 64)
//     --resume-pending=N      low watermark: admission reopens at N
//                             (default max-pending/2)
//     --max-frame-bytes=N     oversized-frame bound (default 4 MiB)
//     --deadline-ms=N         default deadline for SOLVE frames that
//                             carry none (default: none)
//     --cost=size|size2|cubes|lits|balance   objective (default size)
//     --max-relations=N       per-request exploration budget (default 10)
//     --max-depth=N           truncate the tree below depth N
//     --no-bound              disable the line-6 cost bound
//     --no-memo               disable the cross-solve memo
//     --incremental           delta-driven re-solve across requests
//     --totalize              repair partial request relations
//     --memo-load=PATH        restore a tier-1 memo snapshot at start
//     --memo-save=PATH        write a memo snapshot after the drain
//     --memo-peers=H:P,...    tier-2 memo ring: the other members
//     --memo-self=H:P         this member's ring identity (default:
//                             the bound host:port)
//     --memo-pull-timeout-ms=N  MEMO_PULL round-trip deadline (250)

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#include "brel/delta_context.hpp"
#include "brel/server.hpp"
#include "brel/solver.hpp"

namespace {

// Signal handlers may only flip this; the main loop polls it and runs
// the actual drain outside async-signal context.
volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

[[noreturn]] void usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: brel_server [--port=N] [--host=A] [--metrics-port=N]\n"
               "                   [--workers=N] [--max-pending=N]\n"
               "                   [--resume-pending=N] [--max-frame-bytes=N]\n"
               "                   [--deadline-ms=N]\n"
               "                   [--cost=size|size2|cubes|lits|balance]\n"
               "                   [--max-relations=N] [--max-depth=N]\n"
               "                   [--no-bound] [--no-memo] [--incremental]\n"
               "                   [--totalize] [--memo-load=PATH]\n"
               "                   [--memo-save=PATH] [--memo-peers=H:P,...]\n"
               "                   [--memo-self=H:P]\n"
               "                   [--memo-pull-timeout-ms=N]\n");
  std::exit(code);
}

brel::CostFunction cost_by_name(const std::string& name) {
  if (name == "size") return brel::sum_of_bdd_sizes();
  if (name == "size2") return brel::sum_of_squared_bdd_sizes();
  if (name == "cubes") return brel::cube_count_cost();
  if (name == "lits") return brel::literal_count_cost();
  if (name == "balance") return brel::support_balance_cost();
  std::fprintf(stderr, "unknown cost '%s'\n", name.c_str());
  usage(2);
}

}  // namespace

int main(int argc, char** argv) {
  brel::ServerOptions options;
  options.port = 7117;
  std::string cost = "size";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const char* prefix) -> const char* {
      const std::size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      usage(0);
    } else if (const char* v = value_of("--port=")) {
      options.port = static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--host=")) {
      options.host = v;
    } else if (const char* v = value_of("--metrics-port=")) {
      options.metrics_port = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (const char* v = value_of("--workers=")) {
      options.pool.workers =
          static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--max-pending=")) {
      options.max_pending =
          static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--resume-pending=")) {
      options.resume_pending =
          static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--max-frame-bytes=")) {
      options.max_frame_bytes =
          static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--deadline-ms=")) {
      options.default_deadline =
          std::chrono::milliseconds(std::strtol(v, nullptr, 10));
    } else if (const char* v = value_of("--cost=")) {
      cost = v;
    } else if (const char* v = value_of("--max-relations=")) {
      options.pool.solver.max_relations =
          static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--max-depth=")) {
      options.pool.solver.max_depth =
          static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--no-bound") {
      options.pool.solver.use_cost_bound = false;
    } else if (arg == "--no-memo") {
      options.pool.share_memo = false;
    } else if (arg == "--incremental") {
      options.pool.incremental = true;
    } else if (arg == "--totalize") {
      options.pool.totalize = true;
    } else if (const char* v = value_of("--memo-load=")) {
      options.pool.memo_load_path = v;
    } else if (const char* v = value_of("--memo-save=")) {
      options.pool.memo_save_path = v;
    } else if (const char* v = value_of("--memo-peers=")) {
      // Comma-separated host:port list.
      std::string rest = v;
      while (!rest.empty()) {
        const std::size_t comma = rest.find(',');
        const std::string item = rest.substr(0, comma);
        if (!item.empty()) {
          options.memo_peers.push_back(item);
        }
        if (comma == std::string::npos) break;
        rest.erase(0, comma + 1);
      }
    } else if (const char* v = value_of("--memo-self=")) {
      options.memo_self = v;
    } else if (const char* v = value_of("--memo-pull-timeout-ms=")) {
      options.memo_pull_timeout_ms =
          static_cast<int>(std::strtol(v, nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(2);
    }
  }
  options.pool.solver.cost = cost_by_name(cost);
  if (brel::resolve_incremental(options.pool.incremental)) {
    // Same delta-localization pre-split as brel_cli --serve.
    options.pool.solver.partition_inputs = 4;
  }

  brel::Server server(options);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "brel_server: %s\n", e.what());
    return 2;
  }

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  std::printf("brel_server listening on %s:%u", options.host.c_str(),
              static_cast<unsigned>(server.port()));
  if (server.metrics_port() != 0) {
    std::printf(" (metrics %u)", static_cast<unsigned>(server.metrics_port()));
  }
  std::printf("\n");
  std::fflush(stdout);

  // Park until a signal arrives; the real work happens on the server's
  // listener/connection threads.
  while (g_stop == 0) {
    struct timespec ts {0, 100 * 1000 * 1000};
    ::nanosleep(&ts, nullptr);
  }

  std::fprintf(stderr, "brel_server: draining...\n");
  server.begin_drain();
  server.wait();

  const brel::ServerMetrics m = server.metrics();
  std::printf(
      "# served: accepted=%llu answered=%llu busy=%llu shutdown=%llu "
      "timeout=%llu request_errors=%llu protocol_errors=%llu "
      "connections=%llu uptime=%.3fs\n",
      static_cast<unsigned long long>(m.accepted),
      static_cast<unsigned long long>(m.answered),
      static_cast<unsigned long long>(m.rejected_busy),
      static_cast<unsigned long long>(m.rejected_shutdown),
      static_cast<unsigned long long>(m.timed_out),
      static_cast<unsigned long long>(m.request_errors),
      static_cast<unsigned long long>(m.protocol_errors),
      static_cast<unsigned long long>(m.connections_opened), m.uptime_seconds);
  if (!options.pool.memo_load_path.empty() ||
      !options.pool.memo_save_path.empty() || !options.memo_peers.empty()) {
    std::printf(
        "# memo tiers: snapshot_loaded=%llu snapshot_saved=%llu "
        "hits_run=%llu hits_snapshot=%llu hits_peer=%llu "
        "peer_pulls=%llu peer_pull_hits=%llu peer_pushes=%llu\n",
        static_cast<unsigned long long>(m.snapshot_entries_loaded),
        static_cast<unsigned long long>(m.snapshot_entries_saved),
        static_cast<unsigned long long>(m.memo_hits_run),
        static_cast<unsigned long long>(m.memo_hits_snapshot),
        static_cast<unsigned long long>(m.memo_hits_peer),
        static_cast<unsigned long long>(m.peer_pulls),
        static_cast<unsigned long long>(m.peer_pull_hits),
        static_cast<unsigned long long>(m.peer_pushes));
  }
  // The drain contract: everything admitted was answered.
  if (m.accepted != m.answered) {
    std::fprintf(stderr, "brel_server: DRAIN LOST %llu request(s)\n",
                 static_cast<unsigned long long>(m.accepted - m.answered));
    return 1;
  }
  return 0;
}
