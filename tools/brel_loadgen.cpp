// brel_loadgen — load generator for brel_server.
//
// Opens N connections and drives framed SOLVE requests at the server,
// closed-loop (next request as soon as the reply lands) or paced at a
// target request rate.  Reports throughput, latency percentiles, and
// the reply mix (OK / TIMEOUT / BUSY / ERROR / transport).
//
//   brel_loadgen --port=N [options] [file.br|file.bdd]...
//     --host=A            server address (default 127.0.0.1)
//     --port=N            server port (required)
//     --connections=N     concurrent connections (default 4)
//     --requests=N        total requests to send (default 64)
//     --duration-s=S      stop after S seconds instead of a count
//     --rps=R             target aggregate request rate (0 = closed loop)
//     --deadline-ms=N     attach a deadline to every SOLVE
//     --priority=P        interactive (default) or batch
//     --check             re-parse each request in a fresh manager and
//                         verify the returned solution is compatible
//                         (exit 1 on any incompatibility)
//     --restart-check     assert the server is serving WARM: every OK
//                         reply must report explored=0 (a root memo hit,
//                         e.g. after a restart from --memo-load); exit 1
//                         when any reply explored anything
//
// Request bodies: the positional files, or — when none are given — the
// built-in 17-instance synthetic suite (benchgen/relation_suite.hpp),
// serialized to the compact .bdd form.  Requests round-robin over the
// bodies across all connections.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bdd/bdd.hpp"
#include "benchgen/relation_suite.hpp"
#include "brel/server.hpp"
#include "brel/solver_pool.hpp"
#include "relation/relation_io.hpp"

namespace {

struct LoadOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t connections = 4;
  std::size_t requests = 64;
  double duration_s = 0.0;  ///< 0 = use the request count
  double rps = 0.0;         ///< 0 = closed loop
  long deadline_ms = 0;     ///< 0 = none
  std::string priority;     ///< "" = header carries no priority token
  bool check = false;
  bool restart_check = false;
  std::vector<std::string> files;
};

struct Tally {
  std::uint64_t ok = 0;
  std::uint64_t timeout = 0;
  std::uint64_t busy = 0;
  std::uint64_t shutdown = 0;
  std::uint64_t error = 0;      ///< ERROR replies
  std::uint64_t transport = 0;  ///< connect/send/recv failures
  std::uint64_t incompatible = 0;
  std::uint64_t explored_cold = 0;  ///< OK replies with explored > 0
  std::vector<std::uint64_t> latencies_us;  ///< answered (OK/TIMEOUT) only
};

[[noreturn]] void usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: brel_loadgen --port=N [--host=A] [--connections=N]\n"
               "                    [--requests=N] [--duration-s=S] [--rps=R]\n"
               "                    [--deadline-ms=N]\n"
               "                    [--priority=interactive|batch] [--check]\n"
               "                    [--restart-check] [file.br|file.bdd]...\n");
  std::exit(code);
}

LoadOptions parse_args(int argc, char** argv) {
  LoadOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const char* prefix) -> const char* {
      const std::size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      usage(0);
    } else if (const char* v = value_of("--host=")) {
      options.host = v;
    } else if (const char* v = value_of("--port=")) {
      options.port = static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--connections=")) {
      options.connections =
          static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--requests=")) {
      options.requests =
          static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--duration-s=")) {
      options.duration_s = std::strtod(v, nullptr);
    } else if (const char* v = value_of("--rps=")) {
      options.rps = std::strtod(v, nullptr);
    } else if (const char* v = value_of("--deadline-ms=")) {
      options.deadline_ms = std::strtol(v, nullptr, 10);
    } else if (const char* v = value_of("--priority=")) {
      options.priority = v;
    } else if (arg == "--check") {
      options.check = true;
    } else if (arg == "--restart-check") {
      options.restart_check = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(2);
    } else {
      options.files.push_back(arg);
    }
  }
  if (options.port == 0) {
    std::fprintf(stderr, "--port is required\n");
    usage(2);
  }
  if (options.connections == 0) options.connections = 1;
  if (!options.priority.empty() && options.priority != "interactive" &&
      options.priority != "batch") {
    std::fprintf(stderr, "unknown priority '%s'\n", options.priority.c_str());
    usage(2);
  }
  return options;
}

/// Request bodies: listed files, or the built-in 17-instance suite.
std::vector<std::string> request_bodies(const LoadOptions& options) {
  std::vector<std::string> bodies;
  if (!options.files.empty()) {
    for (const std::string& file : options.files) {
      std::ifstream in(file);
      if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", file.c_str());
        std::exit(2);
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      bodies.push_back(buffer.str());
    }
    return bodies;
  }
  for (const brel::RelationBenchmark& bench : brel::relation_suite()) {
    brel::BddManager mgr{0};
    std::vector<std::uint32_t> inputs;
    std::vector<std::uint32_t> outputs;
    const brel::BooleanRelation r =
        brel::make_benchmark_relation(mgr, bench, inputs, outputs);
    bodies.push_back(brel::write_relation_bdd(r));
  }
  return bodies;
}

/// Verify an answered body against the request it solved, in a fresh
/// manager (the same independent re-check brel_cli --serve performs).
bool compatible(const std::string& request, const std::string& reply_body) {
  std::istringstream body(reply_body);
  brel::PoolResult result;
  result.solution = brel::read_portable_solution(body);
  result.cost = result.solution.cost;
  brel::BddManager mgr{0};
  const brel::BooleanRelation relation = brel::read_relation(mgr, request);
  const brel::MultiFunction f =
      brel::import_pool_solution(mgr, relation, result);
  return relation.is_compatible(f);
}

void worker(const LoadOptions& options, const std::vector<std::string>& bodies,
            std::atomic<std::size_t>& next_request,
            std::chrono::steady_clock::time_point start_time, Tally& tally) {
  const int fd = brel::wire::connect_tcp(options.host, options.port);
  if (fd < 0) {
    ++tally.transport;
    return;
  }
  std::string header = "SOLVE";
  if (options.deadline_ms > 0) {
    header += " deadline_ms=" + std::to_string(options.deadline_ms);
  }
  if (!options.priority.empty()) {
    header += " priority=" + options.priority;
  }
  const double interval_s =
      options.rps > 0.0
          ? static_cast<double>(options.connections) / options.rps
          : 0.0;
  std::uint64_t sent_here = 0;
  for (;;) {
    if (options.duration_s > 0.0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start_time)
              .count();
      if (elapsed >= options.duration_s) break;
    }
    const std::size_t id =
        next_request.fetch_add(1, std::memory_order_relaxed);
    if (options.duration_s <= 0.0 && id >= options.requests) break;
    if (interval_s > 0.0) {
      // Paced mode: this connection owns every connections-th slot of
      // the aggregate schedule; skip sleeping when already behind.
      const auto slot =
          start_time + std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(
                               static_cast<double>(sent_here) * interval_s));
      std::this_thread::sleep_until(slot);
    }
    ++sent_here;
    const std::string& body = bodies[id % bodies.size()];
    const auto sent_at = std::chrono::steady_clock::now();
    if (!brel::wire::write_frame(fd, header + "\n" + body)) {
      ++tally.transport;
      break;
    }
    std::string reply;
    if (brel::wire::read_frame(fd, reply, static_cast<std::size_t>(-1)) !=
        brel::wire::ReadStatus::Ok) {
      ++tally.transport;
      break;
    }
    const auto us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - sent_at)
            .count());
    const std::size_t nl = reply.find('\n');
    const std::string status_line =
        nl == std::string::npos ? reply : reply.substr(0, nl);
    const std::string verb = status_line.substr(0, status_line.find(' '));
    if (verb == "OK" || verb == "TIMEOUT") {
      verb == "OK" ? ++tally.ok : ++tally.timeout;
      tally.latencies_us.push_back(us);
      if (options.restart_check && verb == "OK") {
        // `explored=N` on the status line counts subrelations the solve
        // actually explored; a warm restart serves every suite instance
        // from its restored root memo entry — explored must be 0.
        const std::size_t pos = status_line.find(" explored=");
        const std::uint64_t explored =
            pos == std::string::npos
                ? static_cast<std::uint64_t>(-1)
                : std::strtoull(status_line.c_str() + pos + 10, nullptr, 10);
        if (explored != 0) {
          ++tally.explored_cold;
          std::fprintf(stderr, "request %zu: COLD (explored=%llu)\n", id,
                       static_cast<unsigned long long>(explored));
        }
      }
      if (options.check && nl != std::string::npos) {
        try {
          if (!compatible(body, reply.substr(nl + 1))) {
            ++tally.incompatible;
            std::fprintf(stderr, "request %zu: INCOMPATIBLE solution\n", id);
          }
        } catch (const std::exception& e) {
          ++tally.incompatible;
          std::fprintf(stderr, "request %zu: bad reply body: %s\n", id,
                       e.what());
        }
      }
    } else if (verb == "BUSY") {
      ++tally.busy;
    } else if (verb == "SHUTDOWN") {
      ++tally.shutdown;
      break;  // the server is draining; stop offering it load
    } else {
      ++tally.error;
      std::fprintf(stderr, "request %zu: %s\n", id, status_line.c_str());
    }
  }
  ::close(fd);
}

std::uint64_t percentile(std::vector<std::uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  const LoadOptions options = parse_args(argc, argv);
  const std::vector<std::string> bodies = request_bodies(options);

  std::vector<Tally> tallies(options.connections);
  std::atomic<std::size_t> next_request{0};
  const auto start_time = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(options.connections);
  for (std::size_t c = 0; c < options.connections; ++c) {
    threads.emplace_back(worker, std::cref(options), std::cref(bodies),
                         std::ref(next_request), start_time,
                         std::ref(tallies[c]));
  }
  for (std::thread& t : threads) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time)
          .count();

  Tally total;
  for (const Tally& t : tallies) {
    total.ok += t.ok;
    total.timeout += t.timeout;
    total.busy += t.busy;
    total.shutdown += t.shutdown;
    total.error += t.error;
    total.transport += t.transport;
    total.incompatible += t.incompatible;
    total.explored_cold += t.explored_cold;
    total.latencies_us.insert(total.latencies_us.end(),
                              t.latencies_us.begin(), t.latencies_us.end());
  }
  std::sort(total.latencies_us.begin(), total.latencies_us.end());
  const std::uint64_t answered = total.ok + total.timeout;
  std::printf(
      "requests: ok=%llu timeout=%llu busy=%llu shutdown=%llu error=%llu "
      "transport=%llu incompatible=%llu\n",
      static_cast<unsigned long long>(total.ok),
      static_cast<unsigned long long>(total.timeout),
      static_cast<unsigned long long>(total.busy),
      static_cast<unsigned long long>(total.shutdown),
      static_cast<unsigned long long>(total.error),
      static_cast<unsigned long long>(total.transport),
      static_cast<unsigned long long>(total.incompatible));
  std::printf("throughput: %.1f answered/s over %.3fs (%zu connection(s))\n",
              wall > 0.0 ? static_cast<double>(answered) / wall : 0.0, wall,
              options.connections);
  std::printf("latency_us: p50=%llu p90=%llu p99=%llu max=%llu\n",
              static_cast<unsigned long long>(
                  percentile(total.latencies_us, 0.50)),
              static_cast<unsigned long long>(
                  percentile(total.latencies_us, 0.90)),
              static_cast<unsigned long long>(
                  percentile(total.latencies_us, 0.99)),
              static_cast<unsigned long long>(total.latencies_us.empty()
                                                  ? 0
                                                  : total.latencies_us.back()));
  if (options.restart_check) {
    std::printf("restart_check: cold=%llu of %llu OK replies\n",
                static_cast<unsigned long long>(total.explored_cold),
                static_cast<unsigned long long>(total.ok));
  }
  // BUSY/TIMEOUT/SHUTDOWN are the server doing its job under load;
  // transport failures, incompatible solutions, and (under
  // --restart-check) cold replies are OUR failures.
  return (total.transport == 0 && total.incompatible == 0 &&
          total.explored_cold == 0)
             ? 0
             : 1;
}
