#!/usr/bin/env python3
"""Compare a freshly produced BENCH_*.json against the committed reference.

Usage: check_bench_regression.py <reference.json> <fresh.json> [tolerance]

Exit 1 ONLY on a genuine regression:
  - the fresh run's "acceptance" is not "pass", or
  - a timing/throughput metric got worse than the reference by more than
    the tolerance factor (default 0.5 = 50% worse) WHILE the two records
    were authored at the same core count.

A core-count mismatch between the records' `authoring_host` blocks is
NEVER a failure: the committed reference may come from a 1-core
authoring box while CI reruns on a many-core runner, which makes every
timing and scaling figure incomparable.  In that case only the
machine-independent acceptance flag is checked and the timing diff is
skipped with a note.

Correctness figures (acceptance, *_explored, *_errors) are compared
regardless of host: they must not depend on the machine.

The memo-key fields ride the same rules: `memo_key.*_ns` (bench_bdd_ops)
and `key_build_ms` / `*_key_build_ms` (bench_solver_pool) are
lower-is-better timings via their suffixes, while
`memo_key.hash_probe_allocs` is machine-independent and must stay
exactly 0 — a hash-only probe that allocates means the lazy-key miss
path regressed into materializing.
"""

import json
import sys

# Key suffixes where LOWER is better (times) and HIGHER is better
# (rates).  Anything else is informational and never compared.
LOWER_IS_BETTER = ("_us", "_ns", "_ms", "_s", "cpu_s")
HIGHER_IS_BETTER = ("requests_per_s", "per_s", "speedup", "efficiency")
# Machine-independent counters that must never grow at all.
EXACT_ZERO = (
    "protocol_errors",
    "warm_explored",
    "incompatible",
    "hash_probe_allocs",
)


def walk(prefix, node, out):
    """Flatten a JSON tree into {dotted.path: number}."""
    if isinstance(node, dict):
        for key, value in node.items():
            walk(f"{prefix}.{key}" if prefix else key, value, out)
    elif isinstance(node, list):
        for index, value in enumerate(node):
            walk(f"{prefix}[{index}]", value, out)
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out[prefix] = float(node)


def main():
    if len(sys.argv) not in (3, 4):
        print(__doc__.strip().splitlines()[2])
        return 2
    with open(sys.argv[1]) as f:
        reference = json.load(f)
    with open(sys.argv[2]) as f:
        fresh = json.load(f)
    tolerance = float(sys.argv[3]) if len(sys.argv) == 4 else 0.5

    failures = []

    # Machine-independent checks first: these hold on any host.
    if fresh.get("acceptance") not in (None, "pass"):
        failures.append(f"fresh acceptance is {fresh.get('acceptance')!r}")
    ref_flat, fresh_flat = {}, {}
    walk("", reference, ref_flat)
    walk("", fresh, fresh_flat)
    for path, value in fresh_flat.items():
        leaf = path.rsplit(".", 1)[-1]
        if leaf in EXACT_ZERO and value != 0:
            failures.append(f"{path}: {value:g} (must be 0)")

    ref_cores = reference.get("authoring_host", {}).get("cores")
    fresh_cores = fresh.get("authoring_host", {}).get("cores")
    if ref_cores != fresh_cores or ref_cores is None:
        print(
            f"note: reference authored on {ref_cores} core(s), this host "
            f"has {fresh_cores} — timings not comparable, diff skipped"
        )
    else:
        for path, ref_value in ref_flat.items():
            if path not in fresh_flat or ref_value <= 0:
                continue
            leaf = path.rsplit(".", 1)[-1]
            fresh_value = fresh_flat[path]
            if leaf.endswith(LOWER_IS_BETTER) and not leaf.endswith(
                HIGHER_IS_BETTER
            ):
                if fresh_value > ref_value * (1.0 + tolerance):
                    failures.append(
                        f"{path}: {fresh_value:g} vs reference "
                        f"{ref_value:g} (slower by more than "
                        f"{tolerance:.0%})"
                    )
            elif leaf.endswith(HIGHER_IS_BETTER):
                if fresh_value < ref_value * (1.0 - tolerance):
                    failures.append(
                        f"{path}: {fresh_value:g} vs reference "
                        f"{ref_value:g} (lower by more than "
                        f"{tolerance:.0%})"
                    )

    if failures:
        print(f"REGRESSION vs {sys.argv[1]}:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"ok: {sys.argv[2]} holds the line against {sys.argv[1]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
