// Substrate microbenchmarks: raw BDD operation throughput on the
// structures the solver manipulates.  Not a paper table; documents that
// the from-scratch package is fast enough that solver time is dominated
// by exploration, not BDD bookkeeping.
//
// Self-contained harness (no external benchmark dependency) so the
// numbers exist on every build and can be written as machine-readable
// JSON: `bench_bdd_ops --json BENCH_bdd_ops.json` records ns/op, the
// computed-cache hit rate and the peak node count per microbench — the
// perf trajectory of the BDD kernel hot paths from PR 2 onward.
//
// Three regimes are measured: the headline *_apply benches clear the
// computed cache per iteration and re-run full pairwise recursions (the
// solver's regime as subproblems change); the *_cached benches cycle a
// fixed operand pool so calls terminate in the computed cache (probe
// overhead in isolation); the *_build benches reconstruct function trees
// on a fresh manager (kernel + unique-table interplay, cold caches).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <random>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "bench_util.hpp"
#include "benchgen/paper_relations.hpp"
#include "brel/global_memo.hpp"

// [memo-key-begin]
// Process-wide allocation counter, fed by replacing the global
// operator new (the array and sized-delete forms route through these
// two by default).  The memo_key section uses DELTAS of this counter to
// assert that a hash-only probe allocates nothing — an absolute count
// would be meaningless in a process that also runs every other bench.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) {
    return p;
  }
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
// [memo-key-end]

namespace {

using namespace brel;

/// Random n-variable function as a balanced expression tree.
/// op_mode: 0 = AND only, 1 = XOR only, 2 = mixed AND/OR/XOR.
Bdd random_function(BddManager& mgr, std::mt19937& rng, std::uint32_t vars,
                    int depth, int op_mode = 2) {
  if (depth == 0) {
    return mgr.literal(rng() % vars, rng() % 2 == 0);
  }
  const Bdd lhs = random_function(mgr, rng, vars, depth - 1, op_mode);
  const Bdd rhs = random_function(mgr, rng, vars, depth - 1, op_mode);
  const std::uint32_t pick = op_mode == 2 ? rng() % 3 : 2u + op_mode;
  switch (pick) {
    case 0:
      return lhs | rhs;
    case 1:
      return lhs ^ rhs;
    case 2:
      return lhs & rhs;
    default:
      return lhs ^ rhs;
  }
}

struct Result {
  std::string name;
  double ns_per_op = 0.0;
  std::uint64_t ops = 0;        ///< operations timed in the best repetition
  double cache_hit_rate = 0.0;  ///< computed-cache hit rate over the bench
  std::size_t peak_nodes = 0;   ///< peak live nodes of the bench's manager
};

/// Run `body` (which performs `ops_per_iter` BDD operations and returns
/// the stats source) repeatedly for at least `min_seconds`, three times;
/// keep the fastest repetition.  `stats` is sampled after the run.
Result measure(const std::string& name, std::uint64_t ops_per_iter,
               const std::function<const BddStats&()>& body) {
  constexpr double kMinSeconds = 0.12;
  constexpr int kRepetitions = 3;
  Result result;
  result.name = name;
  double best_ns = -1.0;
  const BddStats* stats = nullptr;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    std::uint64_t iters = 0;
    const auto start = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    do {
      stats = &body();
      ++iters;
      elapsed = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    } while (elapsed < kMinSeconds);
    const std::uint64_t ops = iters * ops_per_iter;
    const double ns = elapsed * 1e9 / static_cast<double>(ops);
    if (best_ns < 0.0 || ns < best_ns) {
      best_ns = ns;
      result.ops = ops;
    }
  }
  result.ns_per_op = best_ns;
  if (stats != nullptr) {
    result.cache_hit_rate = stats->hit_rate();
    result.peak_nodes = stats->peak_nodes;
  }
  return result;
}

/// The headline apply benches: a pinned pool of random functions; each
/// iteration clears the computed cache (a GC with every node held) and
/// applies every ordered pair — (f,g) AND (g,f).  This measures the full
/// recursion in the solver's regime (operands change constantly) and the
/// commutative operand normalization: the swapped order must terminate in
/// the computed cache, where the ITE-routed formulation recomputed it
/// from scratch (AND(f,g) and AND(g,f) were distinct ITE cache triples).
template <typename Apply>
Result apply_bench(const std::string& name, int op_mode, Apply&& apply) {
  BddManager mgr{24, 14};
  std::mt19937 rng{9};
  std::vector<Bdd> pool;
  pool.reserve(40);
  for (int i = 0; i < 40; ++i) {
    pool.push_back(random_function(mgr, rng, 24, 3, op_mode));
  }
  const std::uint64_t ops = 40 * 39;
  return measure(name, ops, [&]() -> const BddStats& {
    mgr.garbage_collect();  // clears the computed cache; all nodes pinned
    for (std::size_t i = 0; i < 40; ++i) {
      for (std::size_t j = 0; j < 40; ++j) {
        if (i != j) {
          apply(mgr, pool[i], pool[j]);
        }
      }
    }
    return mgr.stats();
  });
}

Result bench_and_apply() {
  return apply_bench("and_apply", 0,
                     [](BddManager& mgr, const Bdd& f, const Bdd& g) {
                       (void)mgr.bdd_and(f, g);
                     });
}

Result bench_xor_apply() {
  // Same cube-ish operand pool as and_apply: small operands keep the
  // measurement on the kernel preamble + cache, not the node store.
  return apply_bench("xor_apply", 0,
                     [](BddManager& mgr, const Bdd& f, const Bdd& g) {
                       (void)mgr.bdd_xor(f, g);
                     });
}

/// Steady-state probe benches: cycled operand pairs, everything already
/// in the computed cache — the per-probe overhead in isolation.
template <typename Apply>
Result cached_bench(const std::string& name, Apply&& apply) {
  BddManager mgr{16, 16};
  std::mt19937 rng{11};
  std::vector<Bdd> pool;
  pool.reserve(64);
  for (int i = 0; i < 64; ++i) {
    pool.push_back(random_function(mgr, rng, 16, 4));
  }
  const std::uint64_t ops = 64 * 4;
  return measure(name, ops, [&]() -> const BddStats& {
    for (std::size_t i = 0; i < 64; ++i) {
      for (const std::size_t off : {1, 9, 21, 33}) {
        apply(mgr, pool[i], pool[(i + off) % 64]);
      }
    }
    return mgr.stats();
  });
}

Result bench_and_cached() {
  return cached_bench("and_cached",
                      [](BddManager& mgr, const Bdd& f, const Bdd& g) {
                        (void)mgr.bdd_and(f, g);
                      });
}

Result bench_or_cached() {
  return cached_bench("or_cached",
                      [](BddManager& mgr, const Bdd& f, const Bdd& g) {
                        (void)mgr.bdd_or(f, g);
                      });
}

Result bench_xor_cached() {
  return cached_bench("xor_cached",
                      [](BddManager& mgr, const Bdd& f, const Bdd& g) {
                        (void)mgr.bdd_xor(f, g);
                      });
}

Result bench_ite() {
  BddManager mgr{16, 16};
  std::mt19937 rng{1};
  std::vector<Bdd> pool;
  for (int i = 0; i < 48; ++i) {
    pool.push_back(random_function(mgr, rng, 16, 4));
  }
  const std::uint64_t ops = 48;
  return measure("ite", ops, [&]() -> const BddStats& {
    for (std::size_t i = 0; i < 48; ++i) {
      (void)mgr.ite(pool[i], pool[(i + 13) % 48], pool[(i + 29) % 48]);
    }
    return mgr.stats();
  });
}

Result bench_cofactor() {
  BddManager mgr{16, 16};
  std::mt19937 rng{7};
  std::vector<Bdd> pool;
  for (int i = 0; i < 64; ++i) {
    pool.push_back(random_function(mgr, rng, 16, 5));
  }
  const std::uint64_t ops = 64 * 8;
  return measure("cofactor", ops, [&]() -> const BddStats& {
    for (std::size_t i = 0; i < 64; ++i) {
      for (const std::uint32_t v : {0u, 3u, 6u, 9u}) {
        (void)pool[i].cofactor(v, true);
        (void)pool[i].cofactor(v, false);
      }
    }
    return mgr.stats();
  });
}

Result bench_leq() {
  BddManager mgr{16, 16};
  std::mt19937 rng{17};
  std::vector<Bdd> pool;
  for (int i = 0; i < 64; ++i) {
    pool.push_back(random_function(mgr, rng, 16, 4));
  }
  const std::uint64_t ops = 64 * 4;
  return measure("leq", ops, [&]() -> const BddStats& {
    for (std::size_t i = 0; i < 64; ++i) {
      for (const std::size_t off : {1, 9, 21, 33}) {
        (void)pool[i].subset_of(pool[(i + off) % 64]);
      }
    }
    return mgr.stats();
  });
}

/// Cold-cache build benches: fresh manager per iteration, full recursion.
Result build_bench(const std::string& name, int op_mode) {
  // 8 trees of depth 6 = 8 * 63 apply calls per iteration.
  const std::uint64_t ops = 8 * 63;
  static BddStats last_stats;  // outlives the per-iteration manager
  return measure(name, ops, [op_mode]() -> const BddStats& {
    BddManager mgr{20, 14};
    std::mt19937 rng{23};
    for (int t = 0; t < 8; ++t) {
      (void)random_function(mgr, rng, 20, 6, op_mode);
    }
    last_stats = mgr.stats();
    return last_stats;
  });
}

Result bench_and_build() { return build_bench("and_build", 0); }
Result bench_xor_build() { return build_bench("xor_build", 1); }
Result bench_mixed_build() { return build_bench("mixed_build", 2); }

Result bench_big_and() {
  // Wide conjunction of clauses over (mostly) disjoint variable blocks —
  // relation-characteristic style, where nothing collapses to a constant.
  // A left fold re-traverses the growing prefix on every step (quadratic);
  // the balanced reduction combines near-equal halves.
  const std::uint64_t ops = 1;
  static BddStats last_stats;
  return measure("big_and_32", ops, []() -> const BddStats& {
    BddManager mgr{96, 14};
    std::mt19937 rng{31};
    std::vector<Bdd> clauses;
    for (int i = 0; i < 32; ++i) {
      Bdd clause = mgr.zero();
      for (int k = 0; k < 3; ++k) {
        clause = clause | mgr.literal(3 * i + k, rng() % 2 == 0);
      }
      clauses.push_back(clause);
    }
    (void)mgr.big_and(clauses);
    last_stats = mgr.stats();
    return last_stats;
  });
}

Result bench_exists() {
  BddManager mgr{20, 16};
  std::mt19937 rng{3};
  std::vector<Bdd> pool;
  for (int i = 0; i < 16; ++i) {
    pool.push_back(random_function(mgr, rng, 20, 5));
  }
  const std::vector<std::uint32_t> q{2, 5, 8, 11, 14, 17};
  const std::uint64_t ops = 16;
  return measure("exists", ops, [&]() -> const BddStats& {
    for (const Bdd& f : pool) {
      (void)mgr.exists(f, q);
    }
    return mgr.stats();
  });
}

Result bench_compose() {
  BddManager mgr{12, 16};
  std::mt19937 rng{5};
  std::vector<Bdd> pool;
  for (int i = 0; i < 16; ++i) {
    pool.push_back(random_function(mgr, rng, 12, 5));
  }
  std::vector<Bdd> subst;
  for (std::uint32_t v = 0; v < 12; ++v) {
    subst.push_back(mgr.var((v + 3) % 12));
  }
  const std::uint64_t ops = 16;
  return measure("compose", ops, [&]() -> const BddStats& {
    for (const Bdd& f : pool) {
      (void)mgr.compose(f, subst);
    }
    return mgr.stats();
  });
}

Result bench_isop() {
  BddManager mgr{12, 16};
  std::mt19937 rng{5};
  const Bdd on = random_function(mgr, rng, 12, 4);
  const Bdd dc = random_function(mgr, rng, 12, 3) & !on;
  const Bdd upper = on | dc;
  const std::uint64_t ops = 1;
  return measure("isop", ops, [&]() -> const BddStats& {
    (void)mgr.isop(on, upper);
    return mgr.stats();
  });
}

// [reorder-begin]
/// Worst-order reordering suite: f = OR_i (x_i AND x_{k+i}) with the
/// partners maximally separated — exponential (~2^k nodes) as built,
/// linear (~3k) once sifting interleaves the pairs.  Records the
/// before/after live node counts, the swap count and the sift wall time,
/// and ASSERTS the acceptance bar: sifting must shrink peak live nodes
/// by at least 2x (the process exits nonzero otherwise, so CI's
/// bench-smoke run enforces it).
bool report_reorder(bench::JsonWriter* json) {
  constexpr std::uint32_t kPairs = 11;
  BddManager mgr{2 * kPairs};
  Bdd f = mgr.zero();
  for (std::uint32_t i = 0; i < kPairs; ++i) {
    f = f | (mgr.var(i) & mgr.var(kPairs + i));
  }
  mgr.garbage_collect();  // drop build garbage: measure the DAG itself
  const std::size_t nodes_before = mgr.stats().live_nodes;
  const auto start = std::chrono::steady_clock::now();
  mgr.reorder();
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  const std::size_t nodes_after = mgr.stats().live_nodes;
  const std::uint64_t swaps = mgr.stats().reorder_swaps;
  const double reduction =
      static_cast<double>(nodes_before) /
      static_cast<double>(nodes_after == 0 ? 1 : nodes_after);
  const bool pass = nodes_after * 2 <= nodes_before;
  std::printf(
      "\nreorder (worst-order pair function, k=%u):\n"
      "  nodes %zu -> %zu (%.1fx), %llu swaps, %.2f ms  [%s]\n",
      kPairs, nodes_before, nodes_after, reduction,
      static_cast<unsigned long long>(swaps), ms,
      pass ? "PASS >= 2x" : "FAIL < 2x");
  if (json != nullptr) {
    json->begin_object("reorder");
    json->field_int("pairs", kPairs);
    json->field_int("nodes_before", nodes_before);
    json->field_int("nodes_after", nodes_after);
    json->field_num("reduction", reduction);
    json->field_int("swaps", swaps);
    json->field_num("sift_ms", ms);
    json->end_object();
  }
  return pass;
}
// [reorder-end]

// [per-op-stats-begin]
/// A mixed workload through a fresh manager, reported per cache op tag —
/// the per-op hit rates BddStats now carries.
void report_per_op(bench::JsonWriter* json) {
  BddManager mgr{20, 16};
  std::mt19937 rng{41};
  std::vector<Bdd> pool;
  for (int i = 0; i < 24; ++i) {
    pool.push_back(random_function(mgr, rng, 20, 5));
  }
  const std::vector<std::uint32_t> q{1, 4, 7, 10, 13, 16, 19};
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const Bdd& f = pool[i];
    const Bdd& g = pool[(i + 7) % pool.size()];
    (void)mgr.bdd_and(f, g);
    (void)mgr.bdd_xor(f, g);
    (void)mgr.ite(f, g, pool[(i + 11) % pool.size()]);
    (void)f.subset_of(g);
    (void)f.cofactor(i % 20, true);
    (void)mgr.exists(f, q);
    (void)mgr.and_exists(f, g, q);
    (void)mgr.constrain(f, g | mgr.var(i % 20));   // care set never empty
    (void)mgr.restrict_to(f, g | mgr.var(i % 20));
  }
  const BddStats& stats = mgr.stats();
  std::printf("\nper-op computed-cache hit rates (mixed workload):\n");
  if (json != nullptr) {
    json->begin_object("per_op_cache");
  }
  for (std::size_t op = 0; op < kBddOpCount; ++op) {
    if (stats.op_lookups[op] == 0) {
      continue;
    }
    const double rate = static_cast<double>(stats.op_hits[op]) /
                        static_cast<double>(stats.op_lookups[op]);
    std::printf("  %-10s %10llu lookups  %6.1f%% hit\n",
                bdd_op_name(static_cast<BddOp>(op)),
                static_cast<unsigned long long>(stats.op_lookups[op]),
                100.0 * rate);
    if (json != nullptr) {
      json->begin_object(bdd_op_name(static_cast<BddOp>(op)));
      json->field_int("lookups", stats.op_lookups[op]);
      json->field_int("hits", stats.op_hits[op]);
      json->field_num("hit_rate", rate);
      json->end_object();
    }
  }
  if (json != nullptr) {
    json->end_object();
  }
}
// [per-op-stats-end]

// [memo-key-begin]
/// Canonical memo-key cost triangle: what a GlobalMemo map operation
/// pays per probe across the three key regimes —
///   hash_probe:   hash-only shard probe on an existing handle (the
///                 steady-state miss path; must not allocate at all),
///   handle_create: make_memo_handle (cached per-node hash walk + one
///                 shared_ptr; the per-generated-child cost),
///   materialize:  LazyMemoKey::get() building the arena form (paid
///                 once per key that ever publishes or verifies),
///   pr9_key_build: serialize + arena pack + the 64-bit FNV walk — the
///                 work the PRE-lazy design paid on EVERY probe.
/// The point of the lazy split is visible as hash_probe + handle_create
/// being far below pr9_key_build.
void report_memo_key(bench::JsonWriter* json) {
  BddManager mgr{0};
  std::mt19937 rng{57};
  const RelationSpace rspace = make_space(mgr, 4, 4);
  const BooleanRelation proto(mgr, rspace.inputs, rspace.outputs,
                              mgr.one());
  const auto space =
      std::make_shared<const MemoSpace>(make_memo_space(proto));
  constexpr std::size_t kPool = 64;
  std::vector<Bdd> pool;
  pool.reserve(kPool);
  for (std::size_t i = 0; i < kPool; ++i) {
    pool.push_back(random_function(mgr, rng, 8, 4));
  }

  const auto time_loop = [](std::uint64_t ops, const auto& body) {
    const auto start = std::chrono::steady_clock::now();
    body();
    return std::chrono::duration<double, std::nano>(
               std::chrono::steady_clock::now() - start)
               .count() /
           static_cast<double>(ops);
  };

  // Hash-only probes of an empty memo through pre-built handles: every
  // probe is a miss, and the miss path must serialize and allocate
  // NOTHING (hash_probe_allocs is an exact-zero acceptance field).
  GlobalMemo memo;
  std::vector<MemoKeyHandle> handles;
  handles.reserve(kPool);
  for (const Bdd& chi : pool) {
    handles.push_back(make_memo_handle(space, chi));
  }
  constexpr std::uint64_t kProbeRounds = 2000;
  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  const double hash_probe_ns =
      time_loop(kProbeRounds * kPool, [&] {
        for (std::uint64_t round = 0; round < kProbeRounds; ++round) {
          for (const MemoKeyHandle& handle : handles) {
            (void)memo.lookup_at(handle, 1);
          }
        }
      });
  const std::uint64_t hash_probe_allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;

  // Handle creation: the cached canonical-hash walk plus one
  // shared_ptr — the whole per-generated-child key cost now.
  constexpr std::uint64_t kCreateRounds = 200;
  std::vector<MemoKeyHandle> fresh;
  fresh.reserve(kPool);
  const double handle_create_ns =
      time_loop(kCreateRounds * kPool, [&] {
        for (std::uint64_t round = 0; round < kCreateRounds; ++round) {
          fresh.clear();
          for (const Bdd& chi : pool) {
            fresh.push_back(make_memo_handle(space, chi));
          }
        }
      });

  // Materialization: the arena build a key pays once when it first
  // publishes or verifies a candidate hit.
  const double materialize_ns = time_loop(kPool, [&] {
    for (const MemoKeyHandle& handle : fresh) {
      (void)handle->get();
    }
  });

  // The pre-lazy per-probe cost: serialize chi, pack the arena, walk
  // the 64-bit FNV — what EVERY map operation used to pay.
  constexpr std::uint64_t kBuildRounds = 51;  // odd: the XOR sink survives
  std::uint64_t sink = 0;
  const double pr9_key_build_ns =
      time_loop(kBuildRounds * kPool, [&] {
        for (std::uint64_t round = 0; round < kBuildRounds; ++round) {
          for (const Bdd& chi : pool) {
            sink ^= memo_key_hash(make_memo_key(*space, chi));
          }
        }
      });

  std::printf(
      "\nmemo_key (canonical key regimes, %zu keys):\n"
      "  hash_probe     %10.1f ns/probe   %llu allocs (must be 0)\n"
      "  handle_create  %10.1f ns/handle\n"
      "  materialize    %10.1f ns/key\n"
      "  pr9_key_build  %10.1f ns/probe   (fnv sink %llx)\n",
      kPool, hash_probe_ns,
      static_cast<unsigned long long>(hash_probe_allocs), handle_create_ns,
      materialize_ns, pr9_key_build_ns,
      static_cast<unsigned long long>(sink));
  if (json != nullptr) {
    json->begin_object("memo_key");
    json->field_num("hash_probe_ns", hash_probe_ns);
    json->field_int("hash_probe_allocs", hash_probe_allocs);
    json->field_num("handle_create_ns", handle_create_ns);
    json->field_num("materialize_ns", materialize_ns);
    json->field_num("pr9_key_build_ns", pr9_key_build_ns);
    json->end_object();
  }
}
// [memo-key-end]

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = brel::bench::json_path_from_args(argc, argv);

  std::printf("%-12s %12s %14s %10s %12s\n", "benchmark", "ns/op", "ops",
              "hit rate", "peak nodes");
  std::vector<Result> results;
  for (const auto& bench :
       {bench_and_apply, bench_xor_apply, bench_cofactor, bench_leq,
        bench_and_cached, bench_or_cached, bench_xor_cached, bench_ite,
        bench_and_build, bench_xor_build, bench_mixed_build, bench_big_and,
        bench_exists, bench_compose, bench_isop}) {
    Result r = bench();
    std::printf("%-12s %12.1f %14llu %9.1f%% %12zu\n", r.name.c_str(),
                r.ns_per_op, static_cast<unsigned long long>(r.ops),
                100.0 * r.cache_hit_rate, r.peak_nodes);
    results.push_back(std::move(r));
  }

  brel::bench::JsonWriter json;
  json.begin_object();
  json.field_str("bench", "bench_bdd_ops");
  json.begin_array("benchmarks");
  for (const Result& r : results) {
    json.begin_element();
    json.field_str("name", r.name);
    json.field_num("ns_per_op", r.ns_per_op);
    json.field_int("ops", r.ops);
    json.field_num("cache_hit_rate", r.cache_hit_rate);
    json.field_int("peak_nodes", r.peak_nodes);
    json.end_element();
  }
  json.end_array();
  // [reorder-begin]
  const bool reorder_ok = report_reorder(&json);
  // [reorder-end]
  // [per-op-stats-begin]
  report_per_op(&json);
  // [per-op-stats-end]
  // [memo-key-begin]
  report_memo_key(&json);
  // [memo-key-end]
  json.end_object();

  if (!json_path.empty()) {
    if (!json.save(json_path)) {
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  if (!reorder_ok) {
    std::fprintf(stderr,
                 "FAIL: sifting reduced the worst-order DAG by less than "
                 "the 2x acceptance bar\n");
    return 1;
  }
  return 0;
}
