// Substrate microbenchmarks (google-benchmark): raw BDD operation
// throughput on the structures the solver manipulates.  Not a paper table;
// documents that the from-scratch package is fast enough that solver time
// is dominated by exploration, not BDD bookkeeping.

#include <benchmark/benchmark.h>

#include <random>

#include "bdd/bdd.hpp"

namespace {

using namespace brel;

/// Random n-variable function as a balanced expression tree.
Bdd random_function(BddManager& mgr, std::mt19937& rng, std::uint32_t vars,
                    int depth) {
  if (depth == 0) {
    return mgr.literal(rng() % vars, rng() % 2 == 0);
  }
  const Bdd lhs = random_function(mgr, rng, vars, depth - 1);
  const Bdd rhs = random_function(mgr, rng, vars, depth - 1);
  switch (rng() % 3) {
    case 0:
      return lhs & rhs;
    case 1:
      return lhs | rhs;
    default:
      return lhs ^ rhs;
  }
}

void BM_Ite(benchmark::State& state) {
  BddManager mgr{16};
  std::mt19937 rng{1};
  const Bdd f = random_function(mgr, rng, 16, 4);
  const Bdd g = random_function(mgr, rng, 16, 4);
  const Bdd h = random_function(mgr, rng, 16, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.ite(f, g, h));
  }
}
BENCHMARK(BM_Ite);

void BM_AndChain(benchmark::State& state) {
  BddManager mgr{24};
  std::mt19937 rng{2};
  std::vector<Bdd> fs;
  for (int i = 0; i < 12; ++i) {
    fs.push_back(random_function(mgr, rng, 24, 3));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.big_and(fs));
  }
}
BENCHMARK(BM_AndChain);

void BM_Exists(benchmark::State& state) {
  BddManager mgr{20};
  std::mt19937 rng{3};
  const Bdd f = random_function(mgr, rng, 20, 5);
  const std::vector<std::uint32_t> q{2, 5, 8, 11, 14, 17};
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.exists(f, q));
  }
}
BENCHMARK(BM_Exists);

void BM_AndExists(benchmark::State& state) {
  BddManager mgr{20};
  std::mt19937 rng{4};
  const Bdd f = random_function(mgr, rng, 20, 4);
  const Bdd g = random_function(mgr, rng, 20, 4);
  const std::vector<std::uint32_t> q{1, 4, 7, 10, 13, 16, 19};
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.and_exists(f, g, q));
  }
}
BENCHMARK(BM_AndExists);

void BM_Isop(benchmark::State& state) {
  BddManager mgr{12};
  std::mt19937 rng{5};
  const Bdd on = random_function(mgr, rng, 12, 4);
  const Bdd dc = random_function(mgr, rng, 12, 3) & !on;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.isop(on, on | dc));
  }
}
BENCHMARK(BM_Isop);

void BM_Constrain(benchmark::State& state) {
  BddManager mgr{16};
  std::mt19937 rng{6};
  const Bdd f = random_function(mgr, rng, 16, 4);
  Bdd care = random_function(mgr, rng, 16, 4);
  if (care.is_zero()) {
    care = mgr.one();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.constrain(f, care));
  }
}
BENCHMARK(BM_Constrain);

void BM_ShortestCube(benchmark::State& state) {
  BddManager mgr{16};
  std::mt19937 rng{7};
  Bdd f = random_function(mgr, rng, 16, 4);
  if (f.is_zero()) {
    f = mgr.var(0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.shortest_cube(f));
  }
}
BENCHMARK(BM_ShortestCube);

void BM_BuildParity(benchmark::State& state) {
  const auto vars = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    BddManager mgr{vars};
    Bdd parity = mgr.zero();
    for (std::uint32_t i = 0; i < vars; ++i) {
      parity = parity ^ mgr.var(i);
    }
    benchmark::DoNotOptimize(parity);
  }
}
BENCHMARK(BM_BuildParity)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
