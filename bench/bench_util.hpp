#pragma once
/// \file bench_util.hpp
/// Shared helpers for the table/figure reproduction harnesses: wall-clock
/// timing, fixed-width table printing, and solution metric extraction.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "brel/solver.hpp"
#include "synth/gate_network.hpp"

namespace brel::bench {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// SOP + multilevel metrics of a multi-output function (CB/LIT/ALG/AREA
/// columns of Table 2), computed through the shared scoring pipeline.
inline NetworkScore solution_metrics(
    const MultiFunction& f, const std::vector<std::uint32_t>& inputs) {
  return score_functions(f.outputs, inputs);
}

/// Environment-variable override for exploration budgets so the harnesses
/// can be scaled without recompiling, e.g. BREL_BUDGET=50 ./bench_table2.
inline std::size_t budget_from_env(const char* name,
                                   std::size_t fallback) {
  if (const char* text = std::getenv(name)) {
    const long value = std::strtol(text, nullptr, 10);
    if (value > 0) {
      return static_cast<std::size_t>(value);
    }
  }
  return fallback;
}

}  // namespace brel::bench
