#pragma once
/// \file bench_util.hpp
/// Shared helpers for the table/figure reproduction harnesses: wall-clock
/// timing, fixed-width table printing, solution metric extraction, and the
/// machine-readable perf trajectory (--json output shared by the benches).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "brel/solver.hpp"
#include "synth/gate_network.hpp"

namespace brel::bench {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// SOP + multilevel metrics of a multi-output function (CB/LIT/ALG/AREA
/// columns of Table 2), computed through the shared scoring pipeline.
inline NetworkScore solution_metrics(
    const MultiFunction& f, const std::vector<std::uint32_t>& inputs) {
  return score_functions(f.outputs, inputs);
}

/// Environment-variable override for exploration budgets so the harnesses
/// can be scaled without recompiling, e.g. BREL_BUDGET=50 ./bench_table2.
inline std::size_t budget_from_env(const char* name,
                                   std::size_t fallback) {
  if (const char* text = std::getenv(name)) {
    const long value = std::strtol(text, nullptr, 10);
    if (value > 0) {
      return static_cast<std::size_t>(value);
    }
  }
  return fallback;
}

/// `--json <path>` argument, if present ("" otherwise).  Shared by the
/// harnesses that record the perf trajectory (BENCH_*.json at repo root).
/// A trailing `--json` without a path is a loud error, not a silent
/// no-op — a missing perf record must fail the run.
inline std::string json_path_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json requires a path argument\n");
        std::exit(2);
      }
      return argv[i + 1];
    }
  }
  return {};
}

/// Minimal locale-independent JSON emitter: enough structure for the flat
/// benchmark records the BENCH_*.json files hold, nothing more.  Keys and
/// string values must not need escaping (they are identifiers here).
class JsonWriter {
 public:
  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array(const std::string& key) {
    comma();
    out_ << '"' << key << "\":";
    out_ << '[';
    fresh_ = true;
  }
  void end_array() { close(']'); }
  void begin_object(const std::string& key) {
    comma();
    out_ << '"' << key << "\":";
    out_ << '{';
    fresh_ = true;
  }
  void begin_element() { open('{'); }
  void end_element() { close('}'); }

  void field_str(const std::string& key, const std::string& value) {
    comma();
    out_ << '"' << key << "\":\"" << value << '"';
  }
  void field_num(const std::string& key, double value) {
    comma();
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    out_ << '"' << key << "\":" << buf;
  }
  void field_int(const std::string& key, std::uint64_t value) {
    comma();
    out_ << '"' << key << "\":" << value;
  }

  /// Write the document; returns false (with a message) on I/O failure.
  [[nodiscard]] bool save(const std::string& path) const {
    std::ofstream file(path);
    if (!file) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    file << out_.str() << '\n';
    return file.good();
  }

 private:
  void open(char c) {
    comma();
    out_ << c;
    fresh_ = true;
  }
  void close(char c) {
    out_ << c;
    fresh_ = false;
  }
  void comma() {
    if (!fresh_) {
      out_ << ',';
    }
    fresh_ = false;
  }

  std::ostringstream out_;
  bool fresh_ = true;
};

/// The `authoring_host` block every BENCH_*.json carries: the core count
/// of the machine the committed record was produced on, plus a note
/// telling downstream diff tooling what that implies.  Regression
/// checks (tools/check_bench_regression.py) must treat a CORE-COUNT
/// difference as "numbers not comparable, skip", never as a failure —
/// the committed reference may come from a 1-core authoring box while
/// CI reruns on a many-core runner.
inline void write_authoring_host(JsonWriter& json) {
  json.begin_object("authoring_host");
  json.field_int("cores", std::thread::hardware_concurrency());
  json.field_str("note",
                 "timings and scaling figures are only comparable "
                 "against a record authored at the same core count");
  json.end_object();
}

}  // namespace brel::bench
