// Incremental re-solve harness: cold vs warm traffic over the BR suite.
//
// Three regimes per suite instance, all under the schedule-independent
// configuration (no cost bound, depth cap 6, unlimited budget) with the
// delta-localization partition layer (partition_inputs = 5):
//
//   cold            — memo-less solve of the edited relation
//   warm-identical  — re-solve of the unchanged base against a memo the
//                     base's own run populated (every block root-hits)
//   warm-delta      — solve of a 1-minterm edit against the same memo
//
// The ISSUE bar, asserted here and enforced by CI bench-smoke: a
// 1-minterm-flip re-solve is bit-identical to the cold solve and the
// SUITE-AGGREGATE warm-delta exploration is at most 1/10 of cold.  The
// gate is aggregate by design — a point edit that lands in a block
// covering most of a small relation's interesting region legitimately
// re-searches a large fraction of that one instance (int1/she1/she4 sit
// near 1/8) while the suite as a whole stays near 1/30.
//
// `--json <path>` records every row plus the aggregate machine-readably:
// BENCH_incremental.json at the repo root is this harness's trajectory.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "benchgen/relation_suite.hpp"
#include "brel/delta_context.hpp"
#include "brel/global_memo.hpp"

int main(int argc, char** argv) {
  using namespace brel;
  const std::string json_path = bench::json_path_from_args(argc, argv);

  bench::JsonWriter json;
  json.begin_object();
  json.field_str("bench", "bench_incremental");

  std::printf("Incremental re-solve over the BR suite "
              "(partition_inputs=5, depth cap 6, 1-minterm edits)\n\n");
  std::printf("%-8s %10s %10s %10s %10s %10s %10s %6s\n", "name", "cold",
              "warm-id", "warm-dlt", "cold[s]", "dlt[s]", "cost", "bit");

  std::uint64_t cold_total = 0;
  std::uint64_t warm_delta_total = 0;
  bool all_bit_identical = true;
  json.begin_array("instances");
  for (const RelationBenchmark& bench : relation_suite()) {
    BddManager mgr{0};
    std::vector<std::uint32_t> inputs;
    std::vector<std::uint32_t> outputs;
    const BooleanRelation base =
        make_benchmark_relation(mgr, bench, inputs, outputs);
    const BooleanRelation edited = flip_minterms(base, 1, bench.seed ^ 1u);

    SolverOptions options;
    options.cost = sum_of_bdd_sizes();
    options.max_relations = static_cast<std::size_t>(-1);
    options.use_cost_bound = false;
    options.max_depth = 6;
    options.partition_inputs = 5;

    // Cold: no memo, no registry — the baseline the ISSUE bar divides by.
    bench::Stopwatch cold_timer;
    const SolveResult cold = BrelSolver(options).solve(edited);
    const double cold_cpu = cold_timer.seconds();

    // Warm prep: the base's own solve populates memo + registry.
    const auto memo = std::make_shared<GlobalMemo>();
    DeltaRegistry registry;
    options.global_memo = memo;
    options.delta_registry = &registry;
    const BrelSolver warm_solver(options);
    (void)warm_solver.solve(base);

    // Warm-identical: the unchanged relation again — every block must be
    // served at the root, zero exploration.
    const SolveResult warm_identical = warm_solver.solve(base);

    // Warm-delta: the 1-minterm edit — one dirty block re-searches, the
    // clean blocks root-hit.
    bench::Stopwatch delta_timer;
    const SolveResult warm_delta = warm_solver.solve(edited);
    const double delta_cpu = delta_timer.seconds();

    const MemoSpace space = make_memo_space(edited);
    const bool bit_identical =
        make_portable_solution(space, warm_delta.function, warm_delta.cost) ==
        make_portable_solution(space, cold.function, cold.cost);
    all_bit_identical = all_bit_identical && bit_identical;
    cold_total += cold.stats.relations_explored;
    warm_delta_total += warm_delta.stats.relations_explored;

    std::printf("%-8s %10zu %10zu %10zu %10.3f %10.3f %10.0f %6s\n",
                bench.name.c_str(), cold.stats.relations_explored,
                warm_identical.stats.relations_explored,
                warm_delta.stats.relations_explored, cold_cpu, delta_cpu,
                warm_delta.cost, bit_identical ? "yes" : "NO");

    json.begin_element();
    json.field_str("name", bench.name);
    json.field_int("cold_explored", cold.stats.relations_explored);
    json.field_num("cold_cost", cold.cost);
    json.field_num("cold_cpu_seconds", cold_cpu);
    json.field_int("warm_identical_explored",
                   warm_identical.stats.relations_explored);
    json.field_int("warm_identical_memo_hits",
                   warm_identical.stats.memo_hits);
    json.field_int("warm_delta_explored",
                   warm_delta.stats.relations_explored);
    json.field_num("warm_delta_cost", warm_delta.cost);
    json.field_num("warm_delta_cpu_seconds", delta_cpu);
    json.field_int("delta_reused", warm_delta.stats.delta_reused);
    json.field_int("delta_researched", warm_delta.stats.delta_researched);
    json.field_int("bit_identical", bit_identical ? 1 : 0);
    json.end_element();
  }
  json.end_array();

  const double ratio =
      cold_total == 0
          ? 0.0
          : static_cast<double>(warm_delta_total) /
                static_cast<double>(cold_total);
  std::printf("\naggregate: cold %llu, warm-delta %llu (ratio %.3f, bar "
              "0.100)\n",
              static_cast<unsigned long long>(cold_total),
              static_cast<unsigned long long>(warm_delta_total), ratio);
  json.begin_object("aggregate");
  json.field_int("cold_explored_total", cold_total);
  json.field_int("warm_delta_explored_total", warm_delta_total);
  json.field_num("warm_over_cold_ratio", ratio);
  json.end_object();
  json.end_object();

  if (!json_path.empty() && !json.save(json_path)) {
    return 1;
  }
  if (!all_bit_identical) {
    std::fprintf(stderr,
                 "FAIL: a warm-delta re-solve diverged from its cold "
                 "solve\n");
    return 1;
  }
  if (warm_delta_total * 10 > cold_total) {
    std::fprintf(stderr,
                 "FAIL: aggregate warm-delta exploration %llu exceeds "
                 "cold/10 (%llu/10)\n",
                 static_cast<unsigned long long>(warm_delta_total),
                 static_cast<unsigned long long>(cold_total));
    return 1;
  }
  return 0;
}
