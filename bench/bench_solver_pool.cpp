// Solver-pool service-layer harness: warm-vs-cold cost of the
// manager-independent cross-solve memo, and request throughput at
// 1 / 2 / 4 worker slots.
//
// Three measurements over the BR benchmark suite (each instance shipped
// to the pool in the compact `.bdd` wire form, like a real service
// request):
//
//   1. cold pass   — every relation solved once against an empty memo;
//   2. warm pass   — the identical requests again: each must be served
//      from the memo's root entry, exploring ZERO nodes at exactly the
//      cold pass's cost (the acceptance bar is >= 10x fewer explored
//      nodes; the memo delivers inf);
//   3. throughput  — the full request list, several rounds, cold memo,
//      at 1/2/4 workers (memo off so every request pays full price and
//      the scaling is the pool's, not the memo's).
//
// The harness also cross-checks the pool against the serial engine in
// the schedule-independent configuration (bit-identical portable
// solutions) and exits non-zero if any acceptance property fails, so CI
// can run it as a smoke check.  `--json <path>` records everything
// machine-readably (BENCH_solver_pool.json at the repo root).

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "benchgen/relation_suite.hpp"
#include "brel/search.hpp"
#include "brel/solver_pool.hpp"
#include "relation/relation_io.hpp"

int main(int argc, char** argv) {
  using namespace brel;
  const std::string json_path = bench::json_path_from_args(argc, argv);
  const std::size_t depth = bench::budget_from_env("BREL_POOL_DEPTH", 6);
  const std::size_t rounds = bench::budget_from_env("BREL_POOL_ROUNDS", 20);

  // The schedule-independent engine configuration: results are a pure
  // function of each relation, so pool results can be compared
  // bit-identically against the serial engine.
  SolverOptions solver;
  solver.cost = sum_of_bdd_sizes();
  solver.max_relations = static_cast<std::size_t>(-1);
  solver.use_cost_bound = false;
  solver.max_depth = depth;

  // The request list, in the `.bdd` wire form.
  std::vector<std::string> texts;
  std::vector<std::string> names;
  std::vector<PoolResult> serial;
  for (const RelationBenchmark& instance : relation_suite()) {
    BddManager mgr{0};
    std::vector<std::uint32_t> inputs;
    std::vector<std::uint32_t> outputs;
    const BooleanRelation r =
        make_benchmark_relation(mgr, instance, inputs, outputs);
    texts.push_back(write_relation_bdd(r));
    names.push_back(instance.name);
    const SolveResult solved = SearchEngine(r, solver).run();
    PoolResult reference;
    reference.solution = make_portable_solution(make_memo_space(r),
                                                solved.function, solved.cost);
    reference.cost = solved.cost;
    reference.stats = solved.stats;
    serial.push_back(std::move(reference));
  }

  bench::JsonWriter json;
  json.begin_object();
  json.field_str("bench", "bench_solver_pool");
  json.field_int("instances", texts.size());
  json.field_int("max_depth", depth);
  json.field_int("hardware_threads", std::thread::hardware_concurrency());

  bool ok = true;

  // ---------------------------------------------------- cold/warm passes
  std::printf("Warm-vs-cold over the BR suite (depth-capped at %zu)\n\n",
              depth);
  std::printf("%-8s %12s %12s %12s %12s\n", "pass", "explored", "cost",
              "memo hits", "CPU [s]");
  PoolOptions pool_options;
  pool_options.workers = 1;
  pool_options.solver = solver;
  SolverPool warm_pool(pool_options);
  std::size_t cold_explored = 0;
  std::size_t warm_explored = 0;
  double cold_cost = 0.0;
  double warm_cost = 0.0;
  std::size_t warm_hits = 0;
  double cold_cpu = 0.0;
  double warm_cpu = 0.0;
  for (const bool warm : {false, true}) {
    std::size_t explored = 0;
    std::size_t hits = 0;
    double cost = 0.0;
    bench::Stopwatch timer;
    std::vector<std::future<PoolResult>> futures;
    for (const std::string& text : texts) {
      futures.push_back(warm_pool.submit(text));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const PoolResult result = futures[i].get();
      explored += result.stats.relations_explored;
      hits += result.stats.memo_hits;
      cost += result.cost;
      if (result.solution != serial[i].solution) {
        std::printf("!! %s: pool solution differs from serial engine\n",
                    names[i].c_str());
        ok = false;
      }
    }
    const double cpu = timer.seconds();
    std::printf("%-8s %12zu %12.0f %12zu %12.3f\n", warm ? "warm" : "cold",
                explored, cost, hits, cpu);
    (warm ? warm_explored : cold_explored) = explored;
    (warm ? warm_cost : cold_cost) = cost;
    (warm ? warm_cpu : cold_cpu) = cpu;
    if (warm) {
      warm_hits = hits;
    }
  }
  const double ratio =
      warm_explored == 0 ? -1.0
                         : static_cast<double>(cold_explored) /
                               static_cast<double>(warm_explored);
  std::printf("\nwarm/cold exploration ratio: %s (acceptance: >= 10x)\n",
              warm_explored == 0 ? "inf (zero warm exploration)"
                                 : "see below");
  if (warm_explored != 0 && ratio < 10.0) {
    std::printf("!! warm pass explored %zu nodes (ratio %.1fx < 10x)\n",
                warm_explored, ratio);
    ok = false;
  }
  if (warm_cost != cold_cost) {
    std::printf("!! warm cost %.0f != cold cost %.0f\n", warm_cost,
                cold_cost);
    ok = false;
  }
  if (warm_hits != texts.size()) {
    std::printf("!! expected %zu root memo hits, saw %zu\n", texts.size(),
                warm_hits);
    ok = false;
  }
  json.begin_object("warm_vs_cold");
  json.field_int("cold_explored", cold_explored);
  json.field_int("warm_explored", warm_explored);
  json.field_num("cold_cost", cold_cost);
  json.field_num("warm_cost", warm_cost);
  json.field_num("cold_cpu_s", cold_cpu);
  json.field_num("warm_cpu_s", warm_cpu);
  json.field_int("memo_entries", warm_pool.memo()->size());
  json.field_int("memo_hits", warm_pool.memo()->hits());
  json.field_int("memo_probes", warm_pool.memo()->probes());
  json.end_object();
  warm_pool.shutdown();

  // ------------------------------------------------------- throughput
  std::printf(
      "\nThroughput: %zu rounds x %zu requests, memo off\n"
      "(%u hardware thread(s) available — scaling needs real cores)\n\n",
      rounds, texts.size(), std::thread::hardware_concurrency());
  std::printf("%-8s %12s %12s %10s\n", "workers", "CPU [s]", "req/s",
              "speedup");
  json.begin_array("throughput");
  double base_cpu = 0.0;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    PoolOptions scaling;
    scaling.workers = workers;
    scaling.solver = solver;
    scaling.share_memo = false;  // every request pays full exploration
    SolverPool pool(scaling);
    bench::Stopwatch timer;
    std::vector<std::future<PoolResult>> futures;
    futures.reserve(rounds * texts.size());
    for (std::size_t round = 0; round < rounds; ++round) {
      for (const std::string& text : texts) {
        futures.push_back(pool.submit(text));
      }
    }
    double cost = 0.0;
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const PoolResult result = futures[i].get();
      cost += result.cost;
      if (result.solution != serial[i % serial.size()].solution) {
        std::printf("!! divergence at %zu workers, request %zu\n", workers,
                    i);
        ok = false;
      }
    }
    const double cpu = timer.seconds();
    if (workers == 1) {
      base_cpu = cpu;
    }
    const double rps = static_cast<double>(futures.size()) / cpu;
    std::printf("%-8zu %12.3f %12.1f %9.2fx\n", workers, cpu, rps,
                base_cpu / cpu);
    json.begin_element();
    json.field_int("workers", workers);
    json.field_num("cpu_s", cpu);
    json.field_num("requests_per_s", rps);
    json.field_num("total_cost", cost);
    json.end_element();
    pool.shutdown();
  }
  json.end_array();
  json.field_str("acceptance", ok ? "pass" : "FAIL");
  json.end_object();
  if (!json_path.empty() && !json.save(json_path)) {
    return 1;
  }
  std::printf("\nacceptance: %s\n", ok ? "pass" : "FAIL");
  return ok ? 0 : 1;
}
