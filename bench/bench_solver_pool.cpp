// Solver-pool service-layer harness: warm-vs-cold cost of the
// manager-independent cross-solve memo, and request throughput at
// 1 / 2 / 4 worker slots.
//
// Three measurements over the BR benchmark suite (each instance shipped
// to the pool in the compact `.bdd` wire form, like a real service
// request):
//
//   1. cold pass   — every relation solved once against an empty memo;
//   2. warm pass   — the identical requests again: each must be served
//      from the memo's root entry, exploring ZERO nodes at exactly the
//      cold pass's cost (the acceptance bar is >= 10x fewer explored
//      nodes; the memo delivers inf);
//   3. throughput  — the full request list, several rounds, cold memo,
//      at 1/2/4 workers (memo off so every request pays full price and
//      the scaling is the pool's, not the memo's).
//
// The harness also cross-checks the pool against the serial engine in
// the schedule-independent configuration (bit-identical portable
// solutions) and exits non-zero if any acceptance property fails, so CI
// can run it as a smoke check.  `--json <path>` records everything
// machine-readably (BENCH_solver_pool.json at the repo root).
//
// Contention proof: every throughput round resets the process-global
// lock-stats registry and records, per named lock (memo / inject /
// pool), the blocked-acquire wait that round accrued, plus
// `scaling_efficiency` = rps / (workers * rps@1).  On a real multi-core
// host two more acceptance bars arm (they are vacuous on one hardware
// thread, where the OS serializes everything): throughput at 4 workers
// must not INVERT below 1 worker, and no lock may eat more than 25% of
// the round's aggregate worker time in blocked acquires.

#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "benchgen/relation_suite.hpp"
#include "brel/lock_stats.hpp"
#include "brel/memo_backend.hpp"
#include "brel/search.hpp"
#include "brel/solver_pool.hpp"
#include "relation/relation_io.hpp"

namespace {

/// Fraction of the round's aggregate worker-seconds a lock may spend
/// blocked before the bench fails (only judged on multi-core hosts).
constexpr double kMaxLockWaitShare = 0.25;

}  // namespace

int main(int argc, char** argv) {
  using namespace brel;
  const std::string json_path = bench::json_path_from_args(argc, argv);
  const std::size_t depth = bench::budget_from_env("BREL_POOL_DEPTH", 6);
  const std::size_t rounds = bench::budget_from_env("BREL_POOL_ROUNDS", 20);

  // The schedule-independent engine configuration: results are a pure
  // function of each relation, so pool results can be compared
  // bit-identically against the serial engine.
  SolverOptions solver;
  solver.cost = sum_of_bdd_sizes();
  solver.max_relations = static_cast<std::size_t>(-1);
  solver.use_cost_bound = false;
  solver.max_depth = depth;

  // The request list, in the `.bdd` wire form.
  std::vector<std::string> texts;
  std::vector<std::string> names;
  std::vector<PoolResult> serial;
  for (const RelationBenchmark& instance : relation_suite()) {
    BddManager mgr{0};
    std::vector<std::uint32_t> inputs;
    std::vector<std::uint32_t> outputs;
    const BooleanRelation r =
        make_benchmark_relation(mgr, instance, inputs, outputs);
    texts.push_back(write_relation_bdd(r));
    names.push_back(instance.name);
    const SolveResult solved = SearchEngine(r, solver).run();
    PoolResult reference;
    reference.solution = make_portable_solution(make_memo_space(r),
                                                solved.function, solved.cost);
    reference.cost = solved.cost;
    reference.stats = solved.stats;
    serial.push_back(std::move(reference));
  }

  bench::JsonWriter json;
  json.begin_object();
  json.field_str("bench", "bench_solver_pool");
  json.field_int("instances", texts.size());
  json.field_int("max_depth", depth);
  json.field_int("hardware_threads", std::thread::hardware_concurrency());
  bench::write_authoring_host(json);
  json.field_str("lock_stats_compiled",
                 lock_stats_compiled() ? "true" : "false");
  const unsigned hardware_threads = std::thread::hardware_concurrency();

  bool ok = true;

  // ---------------------------------------------------- cold/warm passes
  std::printf("Warm-vs-cold over the BR suite (depth-capped at %zu)\n\n",
              depth);
  std::printf("%-8s %12s %12s %12s %12s\n", "pass", "explored", "cost",
              "memo hits", "CPU [s]");
  PoolOptions pool_options;
  pool_options.workers = 1;
  pool_options.solver = solver;
  SolverPool warm_pool(pool_options);
  std::size_t cold_explored = 0;
  std::size_t warm_explored = 0;
  double cold_cost = 0.0;
  double warm_cost = 0.0;
  std::size_t warm_hits = 0;
  double cold_cpu = 0.0;
  double warm_cpu = 0.0;
  double cold_key_build_ms = 0.0;
  double warm_key_build_ms = 0.0;
  for (const bool warm : {false, true}) {
    std::size_t explored = 0;
    std::size_t hits = 0;
    double cost = 0.0;
    const MemoKeyBuildStats keys_before = memo_key_build_stats();
    bench::Stopwatch timer;
    std::vector<std::future<PoolResult>> futures;
    for (const std::string& text : texts) {
      futures.push_back(warm_pool.submit(text));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const PoolResult result = futures[i].get();
      explored += result.stats.relations_explored;
      hits += result.stats.memo_hits;
      cost += result.cost;
      if (result.solution != serial[i].solution) {
        std::printf("!! %s: pool solution differs from serial engine\n",
                    names[i].c_str());
        ok = false;
      }
    }
    const double cpu = timer.seconds();
    // Wall time spent materializing canonical keys this pass (lazy
    // handles build only on first publish / hit verification — a warm
    // pass, all root hits, should build next to nothing).
    const double key_ms =
        static_cast<double>(memo_key_build_stats().ns - keys_before.ns) /
        1e6;
    std::printf("%-8s %12zu %12.0f %12zu %12.3f  (key build %.3f ms)\n",
                warm ? "warm" : "cold", explored, cost, hits, cpu, key_ms);
    (warm ? warm_explored : cold_explored) = explored;
    (warm ? warm_cost : cold_cost) = cost;
    (warm ? warm_cpu : cold_cpu) = cpu;
    (warm ? warm_key_build_ms : cold_key_build_ms) = key_ms;
    if (warm) {
      warm_hits = hits;
    }
  }
  const double ratio =
      warm_explored == 0 ? -1.0
                         : static_cast<double>(cold_explored) /
                               static_cast<double>(warm_explored);
  std::printf("\nwarm/cold exploration ratio: %s (acceptance: >= 10x)\n",
              warm_explored == 0 ? "inf (zero warm exploration)"
                                 : "see below");
  if (warm_explored != 0 && ratio < 10.0) {
    std::printf("!! warm pass explored %zu nodes (ratio %.1fx < 10x)\n",
                warm_explored, ratio);
    ok = false;
  }
  if (warm_cost != cold_cost) {
    std::printf("!! warm cost %.0f != cold cost %.0f\n", warm_cost,
                cold_cost);
    ok = false;
  }
  if (warm_hits != texts.size()) {
    std::printf("!! expected %zu root memo hits, saw %zu\n", texts.size(),
                warm_hits);
    ok = false;
  }
  json.begin_object("warm_vs_cold");
  json.field_int("cold_explored", cold_explored);
  json.field_int("warm_explored", warm_explored);
  json.field_num("cold_cost", cold_cost);
  json.field_num("warm_cost", warm_cost);
  json.field_num("cold_cpu_s", cold_cpu);
  json.field_num("warm_cpu_s", warm_cpu);
  json.field_num("cold_key_build_ms", cold_key_build_ms);
  json.field_num("warm_key_build_ms", warm_key_build_ms);
  json.field_int("memo_entries", warm_pool.memo()->size());
  json.field_int("memo_hits", warm_pool.memo()->hits());
  json.field_int("memo_probes", warm_pool.memo()->probes());
  json.end_object();
  json.field_int("memo_shards", warm_pool.memo()->shard_count());
  warm_pool.shutdown();

  // ------------------------------------------------------- throughput
  std::printf(
      "\nThroughput: %zu rounds x %zu requests, memo off\n"
      "(%u hardware thread(s) available — scaling needs real cores)\n\n",
      rounds, texts.size(), std::thread::hardware_concurrency());
  std::printf("%-8s %12s %12s %10s %10s %12s\n", "workers", "CPU [s]",
              "req/s", "speedup", "efficiency", "lock wait");
  json.begin_array("throughput");
  double base_cpu = 0.0;
  double base_rps = 0.0;
  double last_rps = 0.0;
  std::uint64_t total_wait_ns = 0;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    PoolOptions scaling;
    scaling.workers = workers;
    scaling.solver = solver;
    scaling.share_memo = false;  // every request pays full exploration
    LockStatsRegistry::instance().reset();
    const MemoKeyBuildStats round_keys_before = memo_key_build_stats();
    SolverPool pool(scaling);
    bench::Stopwatch timer;
    std::vector<std::future<PoolResult>> futures;
    futures.reserve(rounds * texts.size());
    for (std::size_t round = 0; round < rounds; ++round) {
      for (const std::string& text : texts) {
        futures.push_back(pool.submit(text));
      }
    }
    double cost = 0.0;
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const PoolResult result = futures[i].get();
      cost += result.cost;
      if (result.solution != serial[i % serial.size()].solution) {
        std::printf("!! divergence at %zu workers, request %zu\n", workers,
                    i);
        ok = false;
      }
    }
    const double cpu = timer.seconds();
    if (workers == 1) {
      base_cpu = cpu;
    }
    const double rps = static_cast<double>(futures.size()) / cpu;
    const std::uint64_t memo_wait =
        LockStatsRegistry::instance().wait_ns(lock_names::kMemo);
    const std::uint64_t inject_wait =
        LockStatsRegistry::instance().wait_ns(lock_names::kInject);
    const std::uint64_t pool_wait =
        LockStatsRegistry::instance().wait_ns(lock_names::kPool);
    const std::uint64_t round_wait = memo_wait + inject_wait + pool_wait;
    total_wait_ns += round_wait;
    if (workers == 1) {
      base_rps = rps;
    }
    last_rps = rps;
    // Efficiency: per-worker throughput relative to the 1-worker round.
    // 1.0 = perfect scaling; a 1-CPU host legitimately reads ~1/workers.
    const double efficiency =
        base_rps > 0.0
            ? rps / (static_cast<double>(workers) * base_rps)
            : 0.0;
    std::printf("%-8zu %12.3f %12.1f %9.2fx %9.2f %10.3fms\n", workers, cpu,
                rps, base_cpu / cpu, efficiency,
                static_cast<double>(round_wait) / 1e6);
    json.begin_element();
    json.field_int("workers", workers);
    json.field_num("cpu_s", cpu);
    json.field_num("requests_per_s", rps);
    json.field_num("scaling_efficiency", efficiency);
    json.field_num("total_cost", cost);
    json.field_num("lock_wait_memo_ms", static_cast<double>(memo_wait) / 1e6);
    json.field_num("lock_wait_inject_ms",
                   static_cast<double>(inject_wait) / 1e6);
    json.field_num("lock_wait_pool_ms", static_cast<double>(pool_wait) / 1e6);
    // Memo-less rounds must build NO keys at all (the engines skip the
    // whole memo-chain path when no GlobalMemo is configured), so this
    // reads 0.000 here and nonzero only in the warm_vs_cold section.
    json.field_num("key_build_ms",
                   static_cast<double>(memo_key_build_stats().ns -
                                       round_keys_before.ns) /
                       1e6);
    json.end_element();
    // The contention bar: blocked-acquire time as a share of the round's
    // aggregate worker-seconds.  Only judged on multi-core hosts (with
    // one hardware thread, wall time already includes every worker's
    // serialized slice, so the share is not meaningful) and only when
    // the instrumentation is compiled in.
    if (hardware_threads > 1 && lock_stats_compiled() && cpu > 0.0) {
      const double budget_ns = static_cast<double>(workers) * cpu * 1e9;
      for (const auto& [name, wait] :
           {std::pair<const char*, std::uint64_t>{"memo", memo_wait},
            {"inject", inject_wait},
            {"pool", pool_wait}}) {
        const double share = static_cast<double>(wait) / budget_ns;
        if (share > kMaxLockWaitShare) {
          std::printf(
              "!! lock '%s' ate %.0f%% of %zu workers' time in blocked "
              "acquires (bar: %.0f%%)\n",
              name, share * 100.0, workers, kMaxLockWaitShare * 100.0);
          ok = false;
        }
      }
    }
    pool.shutdown();
  }
  json.end_array();
  json.field_num("lock_wait_total_ms", static_cast<double>(total_wait_ns) / 1e6);
  // Scaling must not INVERT: 4 workers may not be slower than 1.  A
  // single hardware thread cannot scale, so the bar arms only on real
  // multi-core hosts.
  if (hardware_threads > 1 && last_rps < base_rps) {
    std::printf("!! throughput inversion: %.1f req/s at 4 workers < %.1f at 1\n",
                last_rps, base_rps);
    ok = false;
  }
  json.field_str("acceptance", ok ? "pass" : "FAIL");
  json.end_object();
  if (!json_path.empty() && !json.save(json_path)) {
    return 1;
  }
  std::printf("\nacceptance: %s\n", ok ? "pass" : "FAIL");
  return ok ? 0 : 1;
}
