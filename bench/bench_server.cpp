// Service front-end harness: a real Server on an ephemeral loopback
// port, driven closed-loop through real sockets by N client threads —
// the full network round trip (framing, admission, pool, portable
// solution serialization) that bench_solver_pool.cpp's in-process
// submits skip.
//
// For 1 / 2 / 4 connections (server slots sized to match, memo off so
// every request pays full exploration), the harness reports answered
// requests per second and the p50/p99 request latency, and cross-checks
// every answer bit-identically against the serial engine in the
// schedule-independent configuration.  Exits non-zero on any
// divergence, protocol error, or transport failure, so CI can run it
// as a smoke check.  `--json <path>` records everything machine-
// readably (BENCH_server.json at the repo root).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_util.hpp"
#include "benchgen/relation_suite.hpp"
#include "brel/search.hpp"
#include "brel/server.hpp"
#include "relation/relation_io.hpp"

namespace {

std::uint64_t percentile(const std::vector<std::uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace brel;
  const std::string json_path = bench::json_path_from_args(argc, argv);
  const std::size_t depth = bench::budget_from_env("BREL_SERVER_DEPTH", 6);
  const std::size_t rounds = bench::budget_from_env("BREL_SERVER_ROUNDS", 5);

  SolverOptions solver;
  solver.cost = sum_of_bdd_sizes();
  solver.max_relations = static_cast<std::size_t>(-1);
  solver.use_cost_bound = false;
  solver.max_depth = depth;

  // Request list in the wire form, plus serial references.
  std::vector<std::string> texts;
  std::vector<std::string> names;
  std::vector<PortableSolution> serial;
  for (const RelationBenchmark& instance : relation_suite()) {
    BddManager mgr{0};
    std::vector<std::uint32_t> inputs;
    std::vector<std::uint32_t> outputs;
    const BooleanRelation r =
        make_benchmark_relation(mgr, instance, inputs, outputs);
    texts.push_back(write_relation_bdd(r));
    names.push_back(instance.name);
    const SolveResult solved = SearchEngine(r, solver).run();
    serial.push_back(make_portable_solution(make_memo_space(r),
                                            solved.function, solved.cost));
  }

  bench::JsonWriter json;
  json.begin_object();
  json.field_str("bench", "bench_server");
  json.field_int("instances", texts.size());
  json.field_int("max_depth", depth);
  json.field_int("rounds", rounds);
  json.field_int("hardware_threads", std::thread::hardware_concurrency());
  bench::write_authoring_host(json);

  bool ok = true;
  std::printf(
      "Framed service round trips: %zu rounds x %zu requests per client\n\n",
      rounds, texts.size());
  std::printf("%-12s %-8s %10s %12s %12s %12s\n", "connections", "workers",
              "answered", "req/s", "p50 [us]", "p99 [us]");
  json.begin_array("load");
  for (const std::size_t connections : {1u, 2u, 4u}) {
    ServerOptions options;
    options.pool.workers = connections;
    options.pool.solver = solver;
    options.pool.share_memo = false;  // full price per request
    Server server(options);
    server.start();
    const std::uint16_t port = server.port();

    std::atomic<std::uint64_t> failures{0};
    std::vector<std::vector<std::uint64_t>> latencies(connections);
    bench::Stopwatch timer;
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < connections; ++c) {
      clients.emplace_back([&, c] {
        const int fd = wire::connect_tcp("127.0.0.1", port);
        if (fd < 0) {
          failures.fetch_add(1);
          return;
        }
        for (std::size_t round = 0; round < rounds; ++round) {
          for (std::size_t i = 0; i < texts.size(); ++i) {
            const auto sent = std::chrono::steady_clock::now();
            std::string reply;
            if (!wire::write_frame(fd, "SOLVE\n" + texts[i]) ||
                wire::read_frame(fd, reply,
                                 static_cast<std::size_t>(-1)) !=
                    wire::ReadStatus::Ok) {
              failures.fetch_add(1);
              ::close(fd);
              return;
            }
            latencies[c].push_back(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - sent)
                    .count()));
            const std::size_t nl = reply.find('\n');
            if (reply.rfind("OK", 0) != 0 || nl == std::string::npos) {
              std::printf("!! %s: unexpected reply\n", names[i].c_str());
              failures.fetch_add(1);
              continue;
            }
            std::istringstream body(reply.substr(nl + 1));
            if (read_portable_solution(body) != serial[i]) {
              std::printf("!! %s: served solution differs from serial\n",
                          names[i].c_str());
              failures.fetch_add(1);
            }
          }
        }
        ::close(fd);
      });
    }
    for (std::thread& t : clients) t.join();
    const double wall = timer.seconds();
    server.begin_drain();
    server.wait();
    const ServerMetrics m = server.metrics();

    std::vector<std::uint64_t> merged;
    for (const auto& v : latencies) {
      merged.insert(merged.end(), v.begin(), v.end());
    }
    std::sort(merged.begin(), merged.end());
    const double rps =
        wall > 0.0 ? static_cast<double>(merged.size()) / wall : 0.0;
    const std::uint64_t p50 = percentile(merged, 0.50);
    const std::uint64_t p99 = percentile(merged, 0.99);
    std::printf("%-12zu %-8zu %10zu %12.1f %12llu %12llu\n", connections,
                connections, merged.size(), rps,
                static_cast<unsigned long long>(p50),
                static_cast<unsigned long long>(p99));
    if (failures.load() != 0 || m.protocol_errors != 0 ||
        m.request_errors != 0 || m.accepted != m.answered) {
      std::printf(
          "!! %zu connection(s): failures=%llu protocol_errors=%llu "
          "request_errors=%llu accepted=%llu answered=%llu\n",
          connections, static_cast<unsigned long long>(failures.load()),
          static_cast<unsigned long long>(m.protocol_errors),
          static_cast<unsigned long long>(m.request_errors),
          static_cast<unsigned long long>(m.accepted),
          static_cast<unsigned long long>(m.answered));
      ok = false;
    }
    json.begin_element();
    json.field_int("connections", connections);
    json.field_int("workers", connections);
    json.field_int("answered", merged.size());
    json.field_num("requests_per_s", rps);
    json.field_int("latency_p50_us", p50);
    json.field_int("latency_p99_us", p99);
    json.field_int("accepted", m.accepted);
    json.field_int("protocol_errors", m.protocol_errors);
    json.end_element();
  }
  json.end_array();

  // Restart persistence: a server that drained into a memo snapshot
  // hands its warm state to a FRESH process.  Round 1 (cold, saving)
  // pays full exploration; round 2 (a new Server restoring the
  // snapshot) must answer every suite request as a root hit — zero
  // exploration, bit-identical bodies — at a p50 no worse than half
  // the cold p50 (the tentpole's acceptance bar).
  const std::string snapshot_path =
      "/tmp/bench_server_memo_" + std::to_string(::getpid()) + ".snap";
  std::uint64_t cold_p50 = 0;
  std::uint64_t warm_p50 = 0;
  std::uint64_t warm_explored = 0;
  std::uint64_t snapshot_entries = 0;
  std::vector<std::string> cold_bodies(texts.size());
  for (const bool warm : {false, true}) {
    ServerOptions options;
    options.pool.workers = 1;
    options.pool.solver = solver;
    options.pool.share_memo = true;
    (warm ? options.pool.memo_load_path : options.pool.memo_save_path) =
        snapshot_path;
    Server server(options);
    server.start();
    const int fd = wire::connect_tcp("127.0.0.1", server.port());
    std::vector<std::uint64_t> lat;
    if (fd < 0) {
      ok = false;
    } else {
      for (std::size_t i = 0; i < texts.size(); ++i) {
        const auto sent = std::chrono::steady_clock::now();
        std::string reply;
        if (!wire::write_frame(fd, "SOLVE\n" + texts[i]) ||
            wire::read_frame(fd, reply, static_cast<std::size_t>(-1)) !=
                wire::ReadStatus::Ok ||
            reply.rfind("OK", 0) != 0) {
          std::printf("!! restart round %d: request %zu failed\n",
                      warm ? 2 : 1, i);
          ok = false;
          continue;
        }
        lat.push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - sent)
                .count()));
        const std::string body = reply.substr(reply.find('\n') + 1);
        if (warm) {
          const std::size_t at = reply.find(" explored=");
          warm_explored += at == std::string::npos
                               ? 1
                               : std::strtoull(reply.c_str() + at + 10,
                                               nullptr, 10);
          if (body != cold_bodies[i]) {
            std::printf("!! %s: restart-warm body differs from cold\n",
                        names[i].c_str());
            ok = false;
          }
        } else {
          cold_bodies[i] = body;
        }
      }
      ::close(fd);
    }
    server.begin_drain();
    server.wait();
    std::sort(lat.begin(), lat.end());
    (warm ? warm_p50 : cold_p50) = percentile(lat, 0.50);
    if (!warm) {
      snapshot_entries = server.metrics().snapshot_entries_saved;
    } else if (server.metrics().snapshot_entries_loaded == 0) {
      std::printf("!! restart round 2 loaded an empty snapshot\n");
      ok = false;
    }
  }
  std::remove(snapshot_path.c_str());
  if (warm_explored != 0) {
    std::printf("!! restart-warm explored %llu relations (want 0)\n",
                static_cast<unsigned long long>(warm_explored));
    ok = false;
  }
  if (warm_p50 * 2 > cold_p50) {
    std::printf("!! restart-warm p50 %llu us > half of cold p50 %llu us\n",
                static_cast<unsigned long long>(warm_p50),
                static_cast<unsigned long long>(cold_p50));
    ok = false;
  }
  std::printf(
      "\nrestart: cold p50 %llu us -> snapshot (%llu entries) -> warm p50 "
      "%llu us, warm explored %llu\n",
      static_cast<unsigned long long>(cold_p50),
      static_cast<unsigned long long>(snapshot_entries),
      static_cast<unsigned long long>(warm_p50),
      static_cast<unsigned long long>(warm_explored));
  json.begin_object("restart");
  json.field_int("cold_p50_us", cold_p50);
  json.field_int("warm_p50_us", warm_p50);
  json.field_int("snapshot_entries", snapshot_entries);
  json.field_int("warm_explored", warm_explored);
  json.end_object();

  json.field_str("acceptance", ok ? "pass" : "FAIL");
  json.end_object();
  if (!json_path.empty() && !json.save(json_path)) {
    return 1;
  }
  std::printf("\nacceptance: %s\n", ok ? "pass" : "FAIL");
  return ok ? 0 : 1;
}
