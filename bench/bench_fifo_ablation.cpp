// Secs. 7.2 / 7.6 ablation: the exploration budget (the bounded partial
// BFS) trades solution quality for runtime.
//
// The paper limits Table 2 to 10 explored relations and notes that
// "exploring more solutions did not significantly contribute to improving
// the results"; this harness sweeps the budget and reports the total
// solution cost (Σ BDD sizes) and runtime over the BR suite, which should
// show steep gains from 1 to ~10 and diminishing returns beyond.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "benchgen/relation_suite.hpp"

int main() {
  using namespace brel;
  const std::vector<std::size_t> budgets{1, 2, 5, 10, 20, 50, 200};

  std::printf("Exploration-budget ablation over the BR suite\n");
  std::printf("(cost = sum of BDD sizes; FIFO-based partial BFS)\n\n");
  std::printf("%-10s %12s %12s %14s\n", "budget", "total cost", "CPU [s]",
              "vs budget=10");

  double reference = 0.0;
  std::vector<std::pair<std::size_t, std::pair<double, double>>> rows;
  for (const std::size_t budget : budgets) {
    double total_cost = 0.0;
    bench::Stopwatch timer;
    for (const RelationBenchmark& bench : relation_suite()) {
      BddManager mgr{0};
      std::vector<std::uint32_t> inputs;
      std::vector<std::uint32_t> outputs;
      const BooleanRelation r =
          make_benchmark_relation(mgr, bench, inputs, outputs);
      SolverOptions options;
      options.cost = sum_of_bdd_sizes();
      options.max_relations = budget;
      total_cost += BrelSolver(options).solve(r).cost;
    }
    const double cpu = timer.seconds();
    if (budget == 10) {
      reference = total_cost;
    }
    rows.emplace_back(budget, std::make_pair(total_cost, cpu));
  }
  for (const auto& [budget, data] : rows) {
    std::printf("%-10zu %12.0f %12.3f %+13.2f%%\n", budget, data.first,
                data.second, 100.0 * (data.first / reference - 1.0));
  }
  std::printf("\n(lower cost is better; budget=10 is the paper's Table 2 "
              "setting)\n");

  // Second design choice of Sec. 7.2: BFS diversity vs DFS commitment
  // under the same budgets.
  std::printf("\nExploration order (same budgets, total cost)\n");
  std::printf("%-10s %12s %12s %10s\n", "budget", "BFS", "DFS", "DFS-BFS");
  for (const std::size_t budget : budgets) {
    double bfs_cost = 0.0;
    double dfs_cost = 0.0;
    for (const RelationBenchmark& bench : relation_suite()) {
      BddManager mgr{0};
      std::vector<std::uint32_t> inputs;
      std::vector<std::uint32_t> outputs;
      const BooleanRelation r =
          make_benchmark_relation(mgr, bench, inputs, outputs);
      SolverOptions options;
      options.cost = sum_of_bdd_sizes();
      options.max_relations = budget;
      options.order = ExplorationOrder::BreadthFirst;
      bfs_cost += BrelSolver(options).solve(r).cost;
      options.order = ExplorationOrder::DepthFirst;
      dfs_cost += BrelSolver(options).solve(r).cost;
    }
    std::printf("%-10zu %12.0f %12.0f %+9.2f%%\n", budget, bfs_cost,
                dfs_cost, 100.0 * (dfs_cost / bfs_cost - 1.0));
  }
  std::printf("\n(positive DFS-BFS: the paper's BFS choice wins)\n");
  return 0;
}
