// Secs. 7.2 / 7.6 ablation: the exploration budget (the bounded partial
// BFS) trades solution quality for runtime.
//
// The paper limits Table 2 to 10 explored relations and notes that
// "exploring more solutions did not significantly contribute to improving
// the results"; this harness sweeps the budget and reports the total
// solution cost (Σ BDD sizes) and runtime over the BR suite, which should
// show steep gains from 1 to ~10 and diminishing returns beyond.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "benchgen/relation_suite.hpp"

int main() {
  using namespace brel;
  const std::vector<std::size_t> budgets{1, 2, 5, 10, 20, 50, 200};

  std::printf("Exploration-budget ablation over the BR suite\n");
  std::printf("(cost = sum of BDD sizes; FIFO-based partial BFS)\n\n");
  std::printf("%-10s %12s %12s %14s\n", "budget", "total cost", "CPU [s]",
              "vs budget=10");

  double reference = 0.0;
  std::vector<std::pair<std::size_t, std::pair<double, double>>> rows;
  for (const std::size_t budget : budgets) {
    double total_cost = 0.0;
    bench::Stopwatch timer;
    for (const RelationBenchmark& bench : relation_suite()) {
      BddManager mgr{0};
      std::vector<std::uint32_t> inputs;
      std::vector<std::uint32_t> outputs;
      const BooleanRelation r =
          make_benchmark_relation(mgr, bench, inputs, outputs);
      SolverOptions options;
      options.cost = sum_of_bdd_sizes();
      options.max_relations = budget;
      total_cost += BrelSolver(options).solve(r).cost;
    }
    const double cpu = timer.seconds();
    if (budget == 10) {
      reference = total_cost;
    }
    rows.emplace_back(budget, std::make_pair(total_cost, cpu));
  }
  for (const auto& [budget, data] : rows) {
    std::printf("%-10zu %12.0f %12.3f %+13.2f%%\n", budget, data.first,
                data.second, 100.0 * (data.first / reference - 1.0));
  }
  std::printf("\n(lower cost is better; budget=10 is the paper's Table 2 "
              "setting)\n");

  // Second design choice of Sec. 7.2: the frontier strategy.  The paper's
  // BFS diversity vs DFS commitment vs the cost-directed best-first order
  // of the pluggable search engine, under the same budgets.  The BFS and
  // DFS columns run through the same engine as the pre-refactor monolithic
  // loop and must reproduce its costs exactly.
  std::printf("\nFrontier strategy (same budgets, total cost)\n");
  std::printf("%-10s %12s %12s %12s %10s %10s\n", "budget", "BFS", "DFS",
              "best", "DFS-BFS", "best-BFS");
  for (const std::size_t budget : budgets) {
    double strategy_cost[3] = {0.0, 0.0, 0.0};
    const ExplorationOrder orders[3] = {ExplorationOrder::BreadthFirst,
                                        ExplorationOrder::DepthFirst,
                                        ExplorationOrder::BestFirst};
    for (const RelationBenchmark& bench : relation_suite()) {
      BddManager mgr{0};
      std::vector<std::uint32_t> inputs;
      std::vector<std::uint32_t> outputs;
      const BooleanRelation r =
          make_benchmark_relation(mgr, bench, inputs, outputs);
      SolverOptions options;
      options.cost = sum_of_bdd_sizes();
      options.max_relations = budget;
      for (int k = 0; k < 3; ++k) {
        options.order = orders[k];
        strategy_cost[k] += BrelSolver(options).solve(r).cost;
      }
    }
    std::printf("%-10zu %12.0f %12.0f %12.0f %+9.2f%% %+9.2f%%\n", budget,
                strategy_cost[0], strategy_cost[1], strategy_cost[2],
                100.0 * (strategy_cost[1] / strategy_cost[0] - 1.0),
                100.0 * (strategy_cost[2] / strategy_cost[0] - 1.0));
  }
  std::printf("\n(negative deltas beat the paper's BFS choice)\n");

  // Third knob: the subproblem cache.  Within one solve tree a duplicate
  // subrelation is impossible (Property 5.4 — see subproblem_cache.hpp),
  // so a single run reports zero dedups by construction; the cache pays
  // off when SHARED across solves of overlapping relations.  Demonstrate
  // both: the in-tree invariant, and a warm re-solve of the same relation
  // where memoized subtrees are pruned at first-run quality — warm cost
  // must EQUAL cold cost while exploring a single relation.
  std::printf("\nSubproblem cache (BFS, budget=10)\n");
  std::printf("%-10s %10s %10s %12s %12s %10s\n", "instance", "cold cost",
              "warm cost", "cold expl.", "warm expl.", "deduped");
  for (const RelationBenchmark& bench : relation_suite()) {
    BddManager mgr{0};
    std::vector<std::uint32_t> inputs;
    std::vector<std::uint32_t> outputs;
    const BooleanRelation r =
        make_benchmark_relation(mgr, bench, inputs, outputs);
    SolverOptions options;
    options.cost = sum_of_bdd_sizes();
    options.max_relations = 10;
    options.subproblem_cache = std::make_shared<SubproblemCache>();
    const SolveResult cold = BrelSolver(options).solve(r);
    if (cold.stats.pruned_by_cache != 0) {
      std::printf("IN-TREE DUPLICATE on %s: Property 5.4 violated!\n",
                  bench.name.c_str());
      return 1;
    }
    const SolveResult warm = BrelSolver(options).solve(r);
    std::printf("%-10s %10.0f %10.0f %12zu %12zu %10zu\n",
                bench.name.c_str(), cold.cost, warm.cost,
                cold.stats.relations_explored, warm.stats.relations_explored,
                warm.stats.pruned_by_cache);
  }
  std::printf("\n(cold runs dedup nothing — the in-tree no-duplicate "
              "invariant;\nwarm re-solves return the memoized first-run "
              "quality from one explored relation)\n");
  return 0;
}
