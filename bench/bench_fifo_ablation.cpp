// Secs. 7.2 / 7.6 ablation: the exploration budget (the bounded partial
// BFS) trades solution quality for runtime.
//
// The paper limits Table 2 to 10 explored relations and notes that
// "exploring more solutions did not significantly contribute to improving
// the results"; this harness sweeps the budget and reports the total
// solution cost (Σ BDD sizes) and runtime over the BR suite, which should
// show steep gains from 1 to ~10 and diminishing returns beyond.
//
// `--json <path>` additionally records every table row (plus solver and
// BDD-substrate counters) machine-readably: BENCH_search.json at the repo
// root is this harness's perf trajectory.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "benchgen/relation_suite.hpp"

int main(int argc, char** argv) {
  using namespace brel;
  const std::string json_path = bench::json_path_from_args(argc, argv);
  const std::vector<std::size_t> budgets{1, 2, 5, 10, 20, 50, 200};

  bench::JsonWriter json;
  json.begin_object();
  json.field_str("bench", "bench_fifo_ablation");

  std::printf("Exploration-budget ablation over the BR suite\n");
  std::printf("(cost = sum of BDD sizes; FIFO-based partial BFS)\n\n");
  std::printf("%-10s %12s %12s %14s\n", "budget", "total cost", "CPU [s]",
              "vs budget=10");

  double reference = 0.0;
  std::vector<std::pair<std::size_t, std::pair<double, double>>> rows;
  for (const std::size_t budget : budgets) {
    double total_cost = 0.0;
    bench::Stopwatch timer;
    for (const RelationBenchmark& bench : relation_suite()) {
      BddManager mgr{0};
      std::vector<std::uint32_t> inputs;
      std::vector<std::uint32_t> outputs;
      const BooleanRelation r =
          make_benchmark_relation(mgr, bench, inputs, outputs);
      SolverOptions options;
      options.cost = sum_of_bdd_sizes();
      options.max_relations = budget;
      total_cost += BrelSolver(options).solve(r).cost;
    }
    const double cpu = timer.seconds();
    if (budget == 10) {
      reference = total_cost;
    }
    rows.emplace_back(budget, std::make_pair(total_cost, cpu));
  }
  json.begin_array("budget_sweep");
  for (const auto& [budget, data] : rows) {
    std::printf("%-10zu %12.0f %12.3f %+13.2f%%\n", budget, data.first,
                data.second, 100.0 * (data.first / reference - 1.0));
    json.begin_element();
    json.field_int("budget", budget);
    json.field_num("total_cost", data.first);
    json.field_num("cpu_seconds", data.second);
    json.end_element();
  }
  json.end_array();
  std::printf("\n(lower cost is better; budget=10 is the paper's Table 2 "
              "setting)\n");

  // Second design choice of Sec. 7.2: the frontier strategy.  The paper's
  // BFS diversity vs DFS commitment vs the cost-directed best-first order
  // of the pluggable search engine, under the same budgets.  The BFS and
  // DFS columns run through the same engine as the pre-refactor monolithic
  // loop and must reproduce its costs exactly.
  std::printf("\nFrontier strategy (same budgets, total cost)\n");
  std::printf("%-10s %12s %12s %12s %10s %10s\n", "budget", "BFS", "DFS",
              "best", "DFS-BFS", "best-BFS");
  json.begin_array("frontier_strategies");
  for (const std::size_t budget : budgets) {
    double strategy_cost[3] = {0.0, 0.0, 0.0};
    const ExplorationOrder orders[3] = {ExplorationOrder::BreadthFirst,
                                        ExplorationOrder::DepthFirst,
                                        ExplorationOrder::BestFirst};
    for (const RelationBenchmark& bench : relation_suite()) {
      BddManager mgr{0};
      std::vector<std::uint32_t> inputs;
      std::vector<std::uint32_t> outputs;
      const BooleanRelation r =
          make_benchmark_relation(mgr, bench, inputs, outputs);
      SolverOptions options;
      options.cost = sum_of_bdd_sizes();
      options.max_relations = budget;
      for (int k = 0; k < 3; ++k) {
        options.order = orders[k];
        strategy_cost[k] += BrelSolver(options).solve(r).cost;
      }
    }
    std::printf("%-10zu %12.0f %12.0f %12.0f %+9.2f%% %+9.2f%%\n", budget,
                strategy_cost[0], strategy_cost[1], strategy_cost[2],
                100.0 * (strategy_cost[1] / strategy_cost[0] - 1.0),
                100.0 * (strategy_cost[2] / strategy_cost[0] - 1.0));
    json.begin_element();
    json.field_int("budget", budget);
    json.field_num("bfs_cost", strategy_cost[0]);
    json.field_num("dfs_cost", strategy_cost[1]);
    json.field_num("best_cost", strategy_cost[2]);
    json.end_element();
  }
  json.end_array();
  std::printf("\n(negative deltas beat the paper's BFS choice)\n");

  // Third knob: the subproblem cache.  Within one solve tree a duplicate
  // subrelation is impossible (Property 5.4 — see subproblem_cache.hpp),
  // so a single run reports zero dedups by construction; the cache pays
  // off when SHARED across solves of overlapping relations.  Demonstrate
  // both: the in-tree invariant, and a warm re-solve of the same relation
  // where memoized subtrees are pruned at first-run quality — warm cost
  // must EQUAL cold cost while exploring a single relation.
  std::printf("\nSubproblem cache (BFS, budget=10)\n");
  std::printf("%-10s %10s %10s %12s %12s %10s\n", "instance", "cold cost",
              "warm cost", "cold expl.", "warm expl.", "deduped");
  json.begin_array("subproblem_cache");
  for (const RelationBenchmark& bench : relation_suite()) {
    BddManager mgr{0};
    std::vector<std::uint32_t> inputs;
    std::vector<std::uint32_t> outputs;
    const BooleanRelation r =
        make_benchmark_relation(mgr, bench, inputs, outputs);
    SolverOptions options;
    options.cost = sum_of_bdd_sizes();
    options.max_relations = 10;
    options.subproblem_cache = std::make_shared<SubproblemCache>();
    const SolveResult cold = BrelSolver(options).solve(r);
    if (cold.stats.pruned_by_cache != 0) {
      std::printf("IN-TREE DUPLICATE on %s: Property 5.4 violated!\n",
                  bench.name.c_str());
      return 1;
    }
    const SolveResult warm = BrelSolver(options).solve(r);
    std::printf("%-10s %10.0f %10.0f %12zu %12zu %10zu\n",
                bench.name.c_str(), cold.cost, warm.cost,
                cold.stats.relations_explored, warm.stats.relations_explored,
                warm.stats.pruned_by_cache);
    json.begin_element();
    json.field_str("instance", bench.name);
    json.field_num("cold_cost", cold.cost);
    json.field_num("warm_cost", warm.cost);
    json.field_int("cold_explored", cold.stats.relations_explored);
    json.field_int("warm_explored", warm.stats.relations_explored);
    json.field_int("deduped", warm.stats.pruned_by_cache);
    json.end_element();
  }
  json.end_array();
  std::printf("\n(cold runs dedup nothing — the in-tree no-duplicate "
              "invariant;\nwarm re-solves return the memoized first-run "
              "quality from one explored relation)\n");

  // Fourth knob: worker threads (parallel_engine.hpp).  Run in the
  // schedule-independent configuration — cost bound off, depth-capped
  // tree — where every worker count explores the same node set, so the
  // cost column must be CONSTANT (the parallel-vs-serial differential
  // guarantee) and the time column isolates pure scaling.  Wall-clock
  // only scales when the host has cores to scale onto;
  // hardware_concurrency is recorded alongside so a flat or inverted
  // time column on a starved runner reads as what it is.
  std::printf("\nWorker scaling (bound off, max_depth=9, total cost must "
              "be constant)\n");
  std::printf("%-10s %12s %12s %10s %10s %12s\n", "workers", "total cost",
              "CPU [s]", "steals", "explored", "vs 1 worker");
  json.begin_array("worker_scaling");
  double serial_seconds = 0.0;
  const std::size_t scaling_depth =
      bench::budget_from_env("BREL_SCALING_DEPTH", 9);
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    double total_cost = 0.0;
    std::size_t steals = 0;
    std::size_t explored = 0;
    bench::Stopwatch timer;
    for (const RelationBenchmark& bench : relation_suite()) {
      BddManager mgr{0};
      std::vector<std::uint32_t> inputs;
      std::vector<std::uint32_t> outputs;
      const BooleanRelation r =
          make_benchmark_relation(mgr, bench, inputs, outputs);
      SolverOptions options;
      options.cost = sum_of_bdd_sizes();
      options.max_relations = static_cast<std::size_t>(-1);
      options.use_cost_bound = false;
      options.max_depth = scaling_depth;
      options.num_workers = workers;
      const SolveResult result = BrelSolver(options).solve(r);
      total_cost += result.cost;
      steals += result.stats.steals;
      explored += result.stats.relations_explored;
    }
    const double cpu = timer.seconds();
    if (workers == 1) {
      serial_seconds = cpu;
    }
    std::printf("%-10zu %12.0f %12.3f %10zu %10zu %11.2fx\n", workers,
                total_cost, cpu, steals, explored, serial_seconds / cpu);
    json.begin_element();
    json.field_int("workers", workers);
    json.field_num("total_cost", total_cost);
    json.field_num("cpu_seconds", cpu);
    json.field_int("steals", steals);
    json.field_int("explored", explored);
    json.end_element();
  }
  json.end_array();
  json.field_int("hardware_concurrency",
                 std::thread::hardware_concurrency());
  std::printf("\n(identical cost and explored columns are the "
              "schedule-independence guarantee;\nspeedup requires cores — "
              "this host reports hardware_concurrency=%u)\n",
              std::thread::hardware_concurrency());

  // The BDD substrate the whole ablation ran on, for the perf record.
  {
    BddManager mgr{0};
    std::vector<std::uint32_t> inputs;
    std::vector<std::uint32_t> outputs;
    const BooleanRelation r = make_benchmark_relation(
        mgr, relation_suite().front(), inputs, outputs);
    SolverOptions options;
    options.cost = sum_of_bdd_sizes();
    options.max_relations = 10;
    bench::Stopwatch timer;
    (void)BrelSolver(options).solve(r);
    const BddStats& stats = mgr.stats();
    json.begin_object("bdd_substrate");
    json.field_str("instance", relation_suite().front().name);
    json.field_num("solve_seconds", timer.seconds());
    json.field_int("cache_lookups", stats.cache_lookups);
    json.field_int("cache_hits", stats.cache_hits);
    json.field_int("peak_nodes", stats.peak_nodes);
    json.field_int("gc_checks", stats.gc_checks);
    json.field_int("gc_runs", stats.gc_runs);
    json.end_object();
  }
  json.end_object();

  if (!json_path.empty()) {
    if (!json.save(json_path)) {
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
