// Table 1 reproduction: normalized comparison of the ISF minimization
// kernels used inside BREL (Sec. 7.5).
//
// For every kernel (ISOP / Constrain / interval-safe Restrict standing in
// for LICompact) with and without non-essential-variable elimination, the
// whole BR suite is solved and the total SOP literal count of the final
// solutions (LIT) plus the CPU time are reported, normalized against the
// paper's reference configuration ISOP + elimination (= 1.00).
// The paper finds that elimination cuts runtime and that ISOP gives
// slightly better literal counts than the other kernels.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "benchgen/relation_suite.hpp"

namespace {

struct Config {
  const char* name;
  brel::IsfMethod method;
  bool eliminate;
};

struct Outcome {
  double literals = 0.0;
  double cpu = 0.0;
};

}  // namespace

int main() {
  using namespace brel;
  const std::size_t budget = bench::budget_from_env("BREL_BUDGET", 10);

  const std::vector<Config> configs{
      {"ISOP + elim", IsfMethod::Isop, true},
      {"ISOP", IsfMethod::Isop, false},
      {"Constrain + elim", IsfMethod::Constrain, true},
      {"Constrain", IsfMethod::Constrain, false},
      {"SafeRestrict + elim", IsfMethod::SafeRestrict, true},
      {"SafeRestrict", IsfMethod::SafeRestrict, false},
  };

  std::printf(
      "Table 1: normalized comparison of BDD-based ISF minimization\n");
  std::printf(
      "(reference = ISOP with non-essential variable elimination; LIT =\n"
      "SOP literals of the final solutions over the BR suite)\n\n");

  std::vector<Outcome> outcomes;
  for (const Config& config : configs) {
    Outcome outcome;
    for (const RelationBenchmark& bench : relation_suite()) {
      BddManager mgr{0};
      std::vector<std::uint32_t> inputs;
      std::vector<std::uint32_t> outputs;
      const BooleanRelation r =
          make_benchmark_relation(mgr, bench, inputs, outputs);
      SolverOptions options;
      options.cost = sum_of_bdd_sizes();
      options.max_relations = budget;
      options.minimizer = IsfMinimizer{config.method, config.eliminate};
      bench::Stopwatch timer;
      const SolveResult result = BrelSolver(options).solve(r);
      outcome.cpu += timer.seconds();
      if (!r.is_compatible(result.function)) {
        std::fprintf(stderr, "incompatible solution (%s on %s)\n",
                     config.name, bench.name.c_str());
        return 1;
      }
      outcome.literals += static_cast<double>(
          bench::solution_metrics(result.function, inputs).sop_literals);
    }
    outcomes.push_back(outcome);
  }

  const Outcome& reference = outcomes.front();
  std::printf("%-22s %10s %10s %12s %12s\n", "configuration", "LIT",
              "CPU [s]", "LIT (norm)", "CPU (norm)");
  for (std::size_t i = 0; i < configs.size(); ++i) {
    std::printf("%-22s %10.0f %10.3f %12.2f %12.2f\n", configs[i].name,
                outcomes[i].literals, outcomes[i].cpu,
                outcomes[i].literals / reference.literals,
                outcomes[i].cpu / reference.cpu);
  }
  return 0;
}
