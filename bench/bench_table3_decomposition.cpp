// Table 3 reproduction: mux-latch decomposition of FSM next-state logic
// (Sec. 10.2).
//
// Every next-state function F is re-implemented as F = A·!C + B·C with the
// mux absorbed into the flip-flop (no area/delay cost), solving the BR
// F(X) ⇔ mux(A,B,C) with BREL under two cost functions:
//   - delay-oriented: Σ BDD sizes²  (balances the three branches)
//   - area-oriented:  Σ BDD sizes
// Reported per circuit: baseline area/delay of the mapped next-state
// logic vs the decomposed version, plus CPU.  The paper reports frequent
// delay wins under the squared cost and area wins under the linear cost,
// with occasional losses (s349, s1196).

#include <cstdio>

#include "bench_util.hpp"
#include "benchgen/fsm_suite.hpp"
#include "decomp/mux_latch.hpp"

namespace {

struct CircuitOutcome {
  double base_area = 0.0;
  double base_delay = 0.0;
  double dec_area = 0.0;
  double dec_delay = 0.0;
  double cpu = 0.0;
  bool verified = true;
};

CircuitOutcome run_circuit(const brel::FsmBenchmark& bench,
                           const brel::CostFunction& cost,
                           std::size_t budget) {
  using namespace brel;
  BddManager mgr{0};
  const FsmInstance instance = make_fsm_instance(mgr, bench);
  SolverOptions options;
  options.cost = cost;
  options.max_relations = budget;
  const BrelSolver solver(options);

  CircuitOutcome outcome;
  bench::Stopwatch timer;
  for (const Bdd& f : instance.next_state) {
    const MuxLatchResult result =
        mux_latch_decompose(f, instance.support, solver);
    outcome.base_area += result.baseline.area;
    outcome.base_delay = std::max(outcome.base_delay, result.baseline.depth);
    outcome.dec_area += result.decomposed.area;
    outcome.dec_delay = std::max(outcome.dec_delay, result.decomposed.depth);
    outcome.verified = outcome.verified && result.verified;
    mgr.garbage_collect_if_needed(1u << 14);
  }
  outcome.cpu = timer.seconds();
  return outcome;
}

void run_table(const char* title, const brel::CostFunction& cost,
               std::size_t budget) {
  using namespace brel;
  std::printf("%s\n", title);
  std::printf("%-6s %3s %3s | %7s %6s | %7s %6s | %6s %6s %7s\n", "name",
              "PI", "FF", "areaB", "delayB", "areaD", "delayD", "dA%%",
              "dD%%", "CPU");
  double sum_base_area = 0.0;
  double sum_dec_area = 0.0;
  double sum_base_delay = 0.0;
  double sum_dec_delay = 0.0;
  for (const FsmBenchmark& bench : fsm_suite()) {
    const CircuitOutcome outcome = run_circuit(bench, cost, budget);
    if (!outcome.verified) {
      std::fprintf(stderr, "decomposition failed verification on %s\n",
                   bench.name.c_str());
      std::exit(1);
    }
    std::printf(
        "%-6s %3zu %3zu | %7.0f %6.0f | %7.0f %6.0f | %+5.1f%% %+5.1f%% "
        "%7.2f\n",
        bench.name.c_str(), bench.num_pi, bench.num_ff, outcome.base_area,
        outcome.base_delay, outcome.dec_area, outcome.dec_delay,
        100.0 * (outcome.dec_area / outcome.base_area - 1.0),
        outcome.base_delay > 0.0
            ? 100.0 * (outcome.dec_delay / outcome.base_delay - 1.0)
            : 0.0,
        outcome.cpu);
    sum_base_area += outcome.base_area;
    sum_dec_area += outcome.dec_area;
    sum_base_delay += outcome.base_delay;
    sum_dec_delay += outcome.dec_delay;
  }
  std::printf("%-14s | global area %+5.1f%%, global delay %+5.1f%%\n\n",
              "TOTAL",
              100.0 * (sum_dec_area / sum_base_area - 1.0),
              100.0 * (sum_dec_delay / sum_base_delay - 1.0));
}

}  // namespace

int main() {
  using namespace brel;
  const std::size_t budget = bench::budget_from_env("BREL_T3_BUDGET", 200);
  std::printf(
      "Table 3: logic decomposition for mux latches (Q+ = A!C + BC)\n"
      "(areaB/delayB = mapped next-state logic; areaD/delayD = decomposed\n"
      " A,B,C networks, mux absorbed by the flip-flop; budget = %zu BRs)\n\n",
      budget);
  run_table("-- delay-oriented cost: sum of squared BDD sizes --",
            sum_of_squared_bdd_sizes(), budget);
  run_table("-- area-oriented cost: sum of BDD sizes --", sum_of_bdd_sizes(),
            budget);
  return 0;
}
