// Sec. 7.7 ablation: impact of output-symmetry detection on solution
// quality and runtime in the logic-decomposition flow.
//
// The paper reports (symmetry ON vs OFF): about +1.6% delay improvement,
// +1.2% area improvement and -1.3% SOP literals at the cost of about
// +10.6% runtime, because the solver skips symmetric subrelations and
// spends its bounded exploration budget on genuinely different solutions.

#include <cstdio>

#include "bench_util.hpp"
#include "benchgen/fsm_suite.hpp"
#include "decomp/decompose.hpp"
#include "synth/gate_network.hpp"

namespace {

struct Aggregate {
  double area = 0.0;
  double delay = 0.0;
  double literals = 0.0;
  double cpu = 0.0;
  std::size_t pruned = 0;
};

// Decomposition with a symmetric gate (Sec. 7.7: "if the large stage of
// logic is a symmetric gate ... the permutation of two functions that feed
// this gate leads to a symmetric implementation").  We use the 3-input
// XOR (toggle-style next-state logic F = A ^ B ^ C): complementing any two
// branches preserves the gate, so the two halves of a Split are symmetric
// images of each other and the cache can prune one of them.
Aggregate run(bool use_symmetry, std::size_t budget) {
  using namespace brel;
  Aggregate aggregate;
  for (const FsmBenchmark& bench : fsm_suite()) {
    BddManager mgr{0};
    const FsmInstance instance = make_fsm_instance(mgr, bench);
    SolverOptions options;
    options.cost = sum_of_squared_bdd_sizes();
    options.max_relations = budget;
    options.use_symmetry = use_symmetry;
    options.symmetry_depth = 4;
    const BrelSolver solver(options);
    double circuit_delay = 0.0;
    bench::Stopwatch timer;
    for (const Bdd& f : instance.next_state) {
      const std::uint32_t first = mgr.add_vars(3);
      const std::vector<std::uint32_t> abc{first, first + 1, first + 2};
      const Bdd gate = mgr.var(abc[0]) ^ mgr.var(abc[1]) ^ mgr.var(abc[2]);
      const Decomposition d =
          decompose(f, instance.support, gate, abc, solver);
      if (!verify_decomposition(f, gate, abc, d.branches)) {
        std::fprintf(stderr, "xor decomposition failed on %s\n",
                     bench.name.c_str());
        std::exit(1);
      }
      const NetworkScore score =
          score_functions(d.branches.outputs, instance.support);
      aggregate.area += score.area;
      circuit_delay = std::max(circuit_delay, score.depth);
      aggregate.literals += static_cast<double>(score.sop_literals);
      aggregate.pruned += d.solve.stats.pruned_by_symmetry;
      mgr.garbage_collect_if_needed(1u << 14);
    }
    aggregate.cpu += timer.seconds();
    aggregate.delay += circuit_delay;
  }
  return aggregate;
}

}  // namespace

int main() {
  using namespace brel;
  const std::size_t budget = bench::budget_from_env("BREL_SYM_BUDGET", 40);
  std::printf("Sec. 7.7 ablation: symmetry detection in XOR-gate decomposition\n");
  std::printf("(budget = %zu BRs per next-state function)\n\n", budget);

  const Aggregate off = run(false, budget);
  const Aggregate on = run(true, budget);

  std::printf("%-22s %10s %10s %10s %10s %8s\n", "configuration", "area",
              "delay", "SOP lits", "CPU [s]", "pruned");
  std::printf("%-22s %10.0f %10.0f %10.0f %10.3f %8zu\n", "symmetry OFF",
              off.area, off.delay, off.literals, off.cpu, off.pruned);
  std::printf("%-22s %10.0f %10.0f %10.0f %10.3f %8zu\n", "symmetry ON",
              on.area, on.delay, on.literals, on.cpu, on.pruned);
  std::printf(
      "\nON vs OFF: area %+5.2f%%, delay %+5.2f%%, literals %+5.2f%%, "
      "runtime %+5.1f%%\n",
      100.0 * (on.area / off.area - 1.0),
      100.0 * (on.delay / off.delay - 1.0),
      100.0 * (on.literals / off.literals - 1.0),
      100.0 * (on.cpu / off.cpu - 1.0));
  std::printf("(paper: area -1.2%%, delay -1.6%%, literals -1.3%%, runtime "
              "+10.6%%)\n");
  return 0;
}
