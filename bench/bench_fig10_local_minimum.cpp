// Fig. 10 / Sec. 9.1 reproduction: the expand-reduce-irredundant paradigm
// is trapped by the QuickSolver initial solution, while BREL's recursive
// exploration reaches the optimum.
//
// Expected output shape (paper): gyocro stays at the 3-cube local minimum
// (x ⇔ 1)(y ⇔ !a + b); BREL finds the 2-cube optimum (x ⇔ !b)(y ⇔ !a).

#include <cstdio>

#include "bench_util.hpp"
#include "benchgen/paper_relations.hpp"
#include "gyocro/gyocro.hpp"
#include "relation/enumeration.hpp"

int main() {
  using namespace brel;
  BddManager mgr{0};
  const RelationSpace space = make_space(mgr, 2, 2);
  const BooleanRelation r = fig10_relation(mgr, space);

  std::printf("Fig. 10 relation (inputs a b; outputs x y):\n%s\n",
              r.to_table().c_str());
  std::printf("|IF(R)| = %.0f compatible functions\n\n",
              count_compatible_functions(r));

  // QuickSolver initial solution (also gyocro's starting point).
  const MultiFunction quick = quick_solve(r);
  {
    const IsopResult x = mgr.isop(quick.outputs[0], quick.outputs[0]);
    const IsopResult y = mgr.isop(quick.outputs[1], quick.outputs[1]);
    std::printf("QuickSolver start: %zu cubes, %zu literals\n",
                x.cover.cube_count() + y.cover.cube_count(),
                x.cover.literal_count() + y.cover.literal_count());
  }

  // gyocro: reduce-expand-irredundant from the quick solution.
  const GyocroResult gyocro = GyocroSolver().solve(r);
  std::printf("gyocro result:     %zu cubes, %zu literals  <- trapped\n",
              gyocro.cube_count, gyocro.literal_count);

  // BREL exact: recursive exploration escapes the local minimum.
  SolverOptions options;
  options.cost = cube_count_cost();
  options.exact = true;
  const SolveResult brel = BrelSolver(options).solve(r);
  const IsopResult bx = mgr.isop(brel.function.outputs[0],
                                 brel.function.outputs[0]);
  const IsopResult by = mgr.isop(brel.function.outputs[1],
                                 brel.function.outputs[1]);
  std::printf("BREL result:       %.0f cubes, %zu literals  <- optimum\n",
              brel.cost, bx.cover.literal_count() + by.cover.literal_count());

  // Cross-check against the enumerated optimum.
  const ExactOptimum truth = exact_optimum(r, cube_count_cost());
  std::printf("enumerated optimum: %.0f cubes over %llu functions\n",
              truth.cost, static_cast<unsigned long long>(truth.explored));

  const bool reproduced =
      gyocro.cube_count == 3 && brel.cost == 2.0 && truth.cost == 2.0;
  std::printf("\nFig. 10 phenomenon reproduced: %s\n",
              reproduced ? "YES" : "NO");
  return reproduced ? 0 : 1;
}
