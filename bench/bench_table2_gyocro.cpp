// Table 2 reproduction: BREL vs the gyocro-style baseline on the BR suite.
//
// Paper configuration (Sec. 9.2): BREL cost = Σ BDD sizes, partial
// exploration of 10 relations, QuickSolver on every subrelation.  Columns:
// CB/LIT = cubes/literals of the SOP solution, ALG = factored-form
// literals (SIS `algebraic` substitute), AREA = mapped 2-input network
// area (SIS `map` substitute), CPU in seconds.  The paper reports BREL
// winning on ALG (~11%) and AREA (~14%) on average while gyocro often wins
// the raw cube count it optimizes for.

#include <cstdio>

#include "bench_util.hpp"
#include "benchgen/relation_suite.hpp"
#include "gyocro/gyocro.hpp"

namespace {

struct Row {
  brel::NetworkScore brel_score;
  brel::NetworkScore gyocro_score;
  double brel_cpu = 0.0;
  double gyocro_cpu = 0.0;
};

}  // namespace

int main() {
  using namespace brel;
  const std::size_t budget = bench::budget_from_env("BREL_BUDGET", 10);

  std::printf("Table 2: comparison with gyocro [33] (synthetic suite)\n");
  std::printf("BREL: cost = sum of BDD sizes, %zu explored relations\n\n",
              budget);
  std::printf(
      "%-6s %3s %3s | %4s %4s %4s %6s %7s | %4s %4s %4s %6s %7s\n", "name",
      "PI", "PO", "CB", "LIT", "ALG", "AREA", "CPU", "CB", "LIT", "ALG",
      "AREA", "CPU");
  std::printf("%-6s %3s %3s | %29s | %29s\n", "", "", "",
              "------------ BREL -----------", "----------- gyocro ----------");

  double sum_brel_alg = 0.0;
  double sum_gyocro_alg = 0.0;
  double sum_brel_area = 0.0;
  double sum_gyocro_area = 0.0;
  double sum_brel_cb = 0.0;
  double sum_gyocro_cb = 0.0;

  for (const RelationBenchmark& bench : relation_suite()) {
    BddManager mgr{0};
    std::vector<std::uint32_t> inputs;
    std::vector<std::uint32_t> outputs;
    const BooleanRelation r =
        make_benchmark_relation(mgr, bench, inputs, outputs);

    Row row;
    {
      SolverOptions options;
      options.cost = sum_of_bdd_sizes();
      options.max_relations = budget;
      bench::Stopwatch timer;
      const SolveResult result = BrelSolver(options).solve(r);
      row.brel_cpu = timer.seconds();
      if (!r.is_compatible(result.function)) {
        std::fprintf(stderr, "BREL produced incompatible solution on %s\n",
                     bench.name.c_str());
        return 1;
      }
      row.brel_score = bench::solution_metrics(result.function, inputs);
    }
    {
      bench::Stopwatch timer;
      const GyocroResult result = GyocroSolver().solve(r);
      row.gyocro_cpu = timer.seconds();
      if (!r.is_compatible(result.function)) {
        std::fprintf(stderr, "gyocro produced incompatible solution on %s\n",
                     bench.name.c_str());
        return 1;
      }
      row.gyocro_score = bench::solution_metrics(result.function, inputs);
    }

    std::printf(
        "%-6s %3zu %3zu | %4zu %4zu %4zu %6.0f %7.3f | %4zu %4zu %4zu %6.0f "
        "%7.3f\n",
        bench.name.c_str(), bench.num_inputs, bench.num_outputs,
        row.brel_score.sop_cubes, row.brel_score.sop_literals,
        row.brel_score.factored_literals, row.brel_score.area, row.brel_cpu,
        row.gyocro_score.sop_cubes, row.gyocro_score.sop_literals,
        row.gyocro_score.factored_literals, row.gyocro_score.area,
        row.gyocro_cpu);

    sum_brel_alg += static_cast<double>(row.brel_score.factored_literals);
    sum_gyocro_alg += static_cast<double>(row.gyocro_score.factored_literals);
    sum_brel_area += row.brel_score.area;
    sum_gyocro_area += row.gyocro_score.area;
    sum_brel_cb += static_cast<double>(row.brel_score.sop_cubes);
    sum_gyocro_cb += static_cast<double>(row.gyocro_score.sop_cubes);
  }

  std::printf("\nSummary (BREL relative to gyocro, lower is better):\n");
  std::printf("  cubes (CB): %+5.1f%%  (gyocro's own objective)\n",
              100.0 * (sum_brel_cb / sum_gyocro_cb - 1.0));
  std::printf("  ALG literals: %+5.1f%%  (paper: about -11%%)\n",
              100.0 * (sum_brel_alg / sum_gyocro_alg - 1.0));
  std::printf("  mapped AREA:  %+5.1f%%  (paper: about -14%%)\n",
              100.0 * (sum_brel_area / sum_gyocro_area - 1.0));
  return 0;
}
