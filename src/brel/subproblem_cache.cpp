#include "brel/subproblem_cache.hpp"

#include <stdexcept>

namespace brel {

SubproblemCache::SubproblemCache(std::size_t capacity)
    : capacity_(capacity) {}

void SubproblemCache::bind(const CacheFingerprint& fp) {
  const std::scoped_lock lock(mutex_);
  if (!fingerprint_.has_value()) {
    fingerprint_ = fp;
    return;
  }
  if (*fingerprint_ != fp) {
    throw std::invalid_argument(
        "SubproblemCache: cache was stamped for cost '" +
        fingerprint_->cost_id + "' (exact=" +
        (fingerprint_->exact ? "1" : "0") +
        ") and cannot serve a run with cost '" + fp.cost_id +
        "' or different spaces/mode — memoized solutions are only "
        "comparable under the configuration that produced them (reusing "
        "them would prune with the wrong objective); use a fresh cache "
        "or rebind_or_clear()");
  }
}

void SubproblemCache::rebind_or_clear(const CacheFingerprint& fp) {
  const std::scoped_lock lock(mutex_);
  if (fingerprint_.has_value() && *fingerprint_ == fp) {
    return;
  }
  cache_.clear();
  keep_alive_.clear();
  fingerprint_ = fp;
}

void SubproblemCache::clear() {
  const std::scoped_lock lock(mutex_);
  cache_.clear();
  keep_alive_.clear();
  fingerprint_.reset();
}

const CachedSolution* SubproblemCache::seen_before_or_insert(
    const Bdd& chi) {
  const std::scoped_lock lock(mutex_);
  ++probes_;
  if (const auto it = cache_.find(chi.raw_edge()); it != cache_.end()) {
    ++hits_;
    // Node-stable reference (see the header): a hit no longer copies
    // the memoized MultiFunction — hot probes allocate nothing.
    return &it->second;
  }
  if (cache_.size() < capacity_) {
    cache_.emplace(chi.raw_edge(), CachedSolution{});
    keep_alive_.push_back(chi);  // handle copy serialized by mutex_
  }
  return nullptr;
}

void SubproblemCache::improve(std::span<const detail::Edge> chain,
                              const MultiFunction& f, double cost) {
  const std::scoped_lock lock(mutex_);
  for (const detail::Edge edge : chain) {
    const auto it = cache_.find(edge);
    if (it == cache_.end()) {
      continue;  // never inserted (capacity) — nothing to memoize against
    }
    CachedSolution& entry = it->second;
    if (!entry.has_solution() || cost < entry.cost) {
      entry.best = f;
      entry.cost = cost;
    }
  }
}

}  // namespace brel
