#include "brel/subproblem_cache.hpp"

namespace brel {

SubproblemCache::SubproblemCache(std::size_t capacity)
    : capacity_(capacity) {}

std::optional<CachedSolution> SubproblemCache::seen_before_or_insert(
    const Bdd& chi) {
  const std::scoped_lock lock(mutex_);
  ++probes_;
  if (const auto it = cache_.find(chi.raw_edge()); it != cache_.end()) {
    ++hits_;
    return it->second;  // snapshot: safe against concurrent improve()
  }
  if (cache_.size() < capacity_) {
    cache_.emplace(chi.raw_edge(), CachedSolution{});
    keep_alive_.push_back(chi);  // handle copy serialized by mutex_
  }
  return std::nullopt;
}

void SubproblemCache::improve(std::span<const detail::Edge> chain,
                              const MultiFunction& f, double cost) {
  const std::scoped_lock lock(mutex_);
  for (const detail::Edge edge : chain) {
    const auto it = cache_.find(edge);
    if (it == cache_.end()) {
      continue;  // never inserted (capacity) — nothing to memoize against
    }
    CachedSolution& entry = it->second;
    if (!entry.has_solution() || cost < entry.cost) {
      entry.best = f;
      entry.cost = cost;
    }
  }
}

}  // namespace brel
