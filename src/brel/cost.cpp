#include "brel/cost.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>

namespace brel {

std::string CostFunction::next_custom_id() {
  static std::atomic<std::uint64_t> counter{0};
  return "custom#" + std::to_string(counter.fetch_add(1) + 1);
}

CostFunction sum_of_bdd_sizes() {
  return {"size", [](const MultiFunction& f) {
            double total = 0.0;
            for (const Bdd& g : f.outputs) {
              total += static_cast<double>(g.size());
            }
            return total;
          }};
}

CostFunction sum_of_squared_bdd_sizes() {
  return {"size2", [](const MultiFunction& f) {
            double total = 0.0;
            for (const Bdd& g : f.outputs) {
              const double s = static_cast<double>(g.size());
              total += s * s;
            }
            return total;
          }};
}

CostFunction cube_count_cost() {
  return {"cubes", [](const MultiFunction& f) {
            double total = 0.0;
            for (const Bdd& g : f.outputs) {
              total += static_cast<double>(
                  g.manager()->isop(g, g).cover.cube_count());
            }
            return total;
          }};
}

CostFunction literal_count_cost() {
  return {"lits", [](const MultiFunction& f) {
            double total = 0.0;
            for (const Bdd& g : f.outputs) {
              total += static_cast<double>(
                  g.manager()->isop(g, g).cover.literal_count());
            }
            return total;
          }};
}

CostFunction support_balance_cost(double lambda) {
  // Max-precision encoding: std::to_string's fixed 6 decimals would
  // collide distinct lambdas (< 1e-6 apart) into one identity and let
  // the cache fingerprint accept memos minimized under a different
  // objective.
  char lambda_id[40];
  std::snprintf(lambda_id, sizeof lambda_id, "balance#%.17g", lambda);
  return {lambda_id,
          [lambda](const MultiFunction& f) {
            double total = 0.0;
            std::size_t widest = 0;
            std::size_t narrowest = static_cast<std::size_t>(-1);
            for (const Bdd& g : f.outputs) {
              total += static_cast<double>(g.size());
              const std::size_t width = g.support().size();
              widest = std::max(widest, width);
              narrowest = std::min(narrowest, width);
            }
            if (f.outputs.empty()) {
              return 0.0;
            }
            return total + lambda * static_cast<double>(widest - narrowest);
          }};
}

CostFunction max_bdd_size_cost() {
  return {"maxsize", [](const MultiFunction& f) {
            double worst = 0.0;
            for (const Bdd& g : f.outputs) {
              worst = std::max(worst, static_cast<double>(g.size()));
            }
            return worst;
          }};
}

}  // namespace brel
