#include "brel/cost.hpp"

#include <algorithm>

namespace brel {

CostFunction sum_of_bdd_sizes() {
  return [](const MultiFunction& f) {
    double total = 0.0;
    for (const Bdd& g : f.outputs) {
      total += static_cast<double>(g.size());
    }
    return total;
  };
}

CostFunction sum_of_squared_bdd_sizes() {
  return [](const MultiFunction& f) {
    double total = 0.0;
    for (const Bdd& g : f.outputs) {
      const double s = static_cast<double>(g.size());
      total += s * s;
    }
    return total;
  };
}

CostFunction cube_count_cost() {
  return [](const MultiFunction& f) {
    double total = 0.0;
    for (const Bdd& g : f.outputs) {
      total += static_cast<double>(g.manager()->isop(g, g).cover.cube_count());
    }
    return total;
  };
}

CostFunction literal_count_cost() {
  return [](const MultiFunction& f) {
    double total = 0.0;
    for (const Bdd& g : f.outputs) {
      total +=
          static_cast<double>(g.manager()->isop(g, g).cover.literal_count());
    }
    return total;
  };
}

CostFunction support_balance_cost(double lambda) {
  return [lambda](const MultiFunction& f) {
    double total = 0.0;
    std::size_t widest = 0;
    std::size_t narrowest = static_cast<std::size_t>(-1);
    for (const Bdd& g : f.outputs) {
      total += static_cast<double>(g.size());
      const std::size_t width = g.support().size();
      widest = std::max(widest, width);
      narrowest = std::min(narrowest, width);
    }
    if (f.outputs.empty()) {
      return 0.0;
    }
    return total + lambda * static_cast<double>(widest - narrowest);
  };
}

CostFunction max_bdd_size_cost() {
  return [](const MultiFunction& f) {
    double worst = 0.0;
    for (const Bdd& g : f.outputs) {
      worst = std::max(worst, static_cast<double>(g.size()));
    }
    return worst;
  };
}

}  // namespace brel
