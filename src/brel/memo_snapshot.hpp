#pragma once
/// \file memo_snapshot.hpp
/// Tier 1 of the tiered memo store: a versioned text snapshot of every
/// export-eligible GlobalMemo entry, written at service drain
/// (`--memo-save=PATH`) and restored at the next start
/// (`--memo-load=PATH`) so a restarted server warms from yesterday's
/// traffic instead of re-exploring it.
///
/// Format (version 1) — line-oriented, built from the codecs the wire
/// and relation formats already use:
///
///   brelmemo 1
///   .cost_id <memo fingerprint cost id, rest of line>
///   .exact 0|1
///   .saved_at <unix seconds, 0 if unknown>
///   .entries <count>
///   ┌ per entry ─────────────────────────────────────────────────────
///   │ .entry natural depth=<any|N> check=<16-hex FNV>     (or)
///   │ .entry root check=<16-hex FNV>
///   │ .iranks <k> <rank>*k
///   │ .oranks <k> <rank>*k
///   │ .chi <node_count>
///   │ <node lines + .root line, write_serialized_bdd>
///   │ .solution
///   │ <write_portable_solution body>
///   │ .endentry
///   └────────────────────────────────────────────────────────────────
///   .endmemo <count>
///
/// Only the two export-policy shapes are representable: `.entry
/// natural` (naturally complete at its recorded depth) and `.entry
/// root` (a drained solve's root answer, re-installed truncated at
/// depth 0).  There is deliberately NO syntax for an interior
/// depth-truncated or unmarked entry — and the loader rejects any
/// unrecognized `.entry` shape — so a partial or tainted result cannot
/// cross the persistence boundary even by a hand-edited file.
///
/// The loader NEVER throws past itself and never half-installs: each
/// entry is buffered to its `.endentry` line and parsed in isolation,
/// so a corrupt body, a checksum mismatch, or an unrecognized shape
/// skips exactly that entry (counted in `entries_skipped`) and a
/// truncated file yields the prefix that parsed — `ok` is false with a
/// diagnostic, the installed prefix stays.  A version or fingerprint
/// mismatch installs nothing.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "brel/global_memo.hpp"

namespace brel {

struct SnapshotSaveResult {
  bool ok = false;
  std::size_t entries = 0;  ///< entries written
  std::string error;        ///< diagnostic when !ok
};

struct SnapshotLoadResult {
  /// True only when the whole file parsed through a count-matching
  /// `.endmemo` trailer.  A partial load (truncation, skipped entries)
  /// reports !ok with `error` set but keeps what installed.
  bool ok = false;
  std::size_t entries_installed = 0;
  std::size_t entries_skipped = 0;  ///< corrupt / rejected entries
  std::uint64_t saved_at = 0;       ///< header `.saved_at` (unix seconds)
  std::string error;
};

/// Deterministic content checksum of one tier-crossing record (the
/// `check=` field): 64-bit FNV over the canonical key hash, the mark
/// shape, and the solution body.  Exposed so tests can forge/verify.
[[nodiscard]] std::uint64_t memo_entry_checksum(const MemoExportEntry& e);

/// Write / parse one canonical key in the `.iranks`/`.oranks`/`.chi`
/// grammar (the key section of an entry; also a MEMO_PULL request
/// body).  read_memo_key throws std::invalid_argument on malformed
/// input.
void write_memo_key(std::ostream& os, const GlobalMemoKey& key);
[[nodiscard]] GlobalMemoKey read_memo_key(std::istream& in);

/// Write / parse a memo fingerprint as the `.cost_id` + `.exact` line
/// pair (the snapshot header fields; also the validation preamble of
/// every MEMO_PULL/MEMO_PUSH body).  read returns nullopt on malformed
/// input or an empty cost id.
void write_memo_fingerprint(std::ostream& os, const MemoFingerprint& fp);
[[nodiscard]] std::optional<MemoFingerprint> read_memo_fingerprint(
    std::istream& in);

/// Write one tier-crossing record in the per-entry grammar above (also
/// the body of a MEMO_PUSH frame and a MEMO_PULL reply).
void write_memo_entry(std::ostream& os, const MemoExportEntry& e);

/// Parse one per-entry section (the text between and including `.entry`
/// and `.endentry`).  Throws std::invalid_argument on malformed input,
/// checksum mismatch, or a shape outside the export policy — callers
/// (snapshot loader, wire handlers) catch and skip/reject.
[[nodiscard]] MemoExportEntry read_memo_entry(std::istream& in);

/// Serialize every export-eligible entry of `memo` to `os` / `path`.
/// The fingerprint header comes from memo.fingerprint(); an unbound
/// memo saves an empty snapshot with an empty cost id.
SnapshotSaveResult save_memo_snapshot(const GlobalMemo& memo,
                                      std::ostream& os,
                                      std::uint64_t saved_at_unix);
SnapshotSaveResult save_memo_snapshot(const GlobalMemo& memo,
                                      const std::string& path,
                                      std::uint64_t saved_at_unix);

/// Restore a snapshot into `memo` (installing with MemoOrigin
/// kSnapshot).  An unbound memo is bound to the snapshot's fingerprint;
/// a bound memo with a DIFFERENT fingerprint installs nothing (!ok) —
/// memoized solutions are only comparable under the configuration that
/// produced them, across a restart as much as within a process.
SnapshotLoadResult load_memo_snapshot(GlobalMemo& memo, std::istream& in);
SnapshotLoadResult load_memo_snapshot(GlobalMemo& memo,
                                      const std::string& path);

}  // namespace brel
