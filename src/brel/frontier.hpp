#pragma once
/// \file frontier.hpp
/// The exploration frontier of the BREL search engine (Sec. 7.2).
///
/// The branch-and-bound tree of Fig. 6 is explored through an explicit
/// worklist of pending subproblems.  Making the worklist a first-class
/// object — instead of a deque baked into the solve loop — is what allows
/// the engine to swap exploration policies (and, down the road, to share a
/// frontier between workers): the paper's partial BFS, plain DFS, and a
/// best-first order driven by the MISF candidate cost all implement the
/// same three-operation interface.
///
/// All strategies are capacity-bounded: a push beyond the capacity is
/// rejected (the caller records the overflow and relies on the QuickSolver
/// safety net, Sec. 7.6).  Items *move* through the frontier — a
/// `Subproblem` owns its `BooleanRelation` and is never copied on the way
/// in or out.

#include <cstddef>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "brel/global_memo.hpp"
#include "relation/relation.hpp"

namespace brel {

/// Order in which pending subrelations are explored (Sec. 7.2).  The
/// paper uses partial BFS because it "enables a larger diversity in the
/// exploration" and prevents the solver from sinking all resources into
/// one corner of the tree; DFS and best-first are provided for the
/// ablation and for cost-directed searches.
enum class ExplorationOrder {
  BreadthFirst,  ///< the paper's bounded-FIFO partial BFS
  DepthFirst,    ///< LIFO: commits to one branch until it bottoms out
  BestFirst,     ///< cheapest MISF candidate first (A*-flavoured greedy)
};

/// One pending node of the branch-and-bound tree.  Owns its subrelation;
/// move-only in practice (copies would duplicate the characteristic BDD
/// handle for no reason).
struct Subproblem {
  BooleanRelation rel;
  std::size_t depth = 0;

  /// Characteristic-BDD edges of this node's chain root → ... → itself
  /// (inclusive).  Any solution discovered in this subtree is valid for
  /// every relation on the chain (Property 5.1), which is how the
  /// subproblem cache memoizes subtree results.  Left empty when no
  /// cache is active.  The edges stay pinned by the cache's keep-alive
  /// handles.
  std::vector<detail::Edge> ancestors;

  /// The same ancestor chain as lazy canonical-key handles (root → ... →
  /// itself, truncated at SolverOptions::global_memo_depth).  The
  /// HANDLES are shared (a child's chain copies the parent's vector of
  /// shared_ptrs — O(depth) cheap refcount bumps, never a hash or key
  /// rebuild); chains are short in practice, a persistent cons-list is
  /// the upgrade path if deep trees ever make the copies show.  Empty
  /// when no global memo is active — memo-less runs build no keys and
  /// no hashes at all.
  std::vector<MemoKeyHandle> memo_chain;

  /// Incremental-delta cofactor (delta_context.hpp): the XOR of this
  /// subproblem's characteristic against the corresponding base-run
  /// subproblem, maintained by constraining the parent's delta with the
  /// same split removals.  A null handle means no delta is being tracked
  /// this run; a ZERO BDD proves the subproblem identical to the base's.
  Bdd delta;

  /// Ordering key for best-first frontiers: the cost of the MISF candidate
  /// computed when the subproblem was generated.  Unused (0) otherwise.
  double priority = 0.0;

  /// MISF candidate precomputed at push time by cost-directed strategies,
  /// so expansion does not minimize the same projections twice.  BFS/DFS
  /// leave it empty and the engine minimizes on pop, exactly like the
  /// original monolithic loop.
  std::optional<MultiFunction> candidate;
  double candidate_cost = 0.0;

  Subproblem(BooleanRelation relation, std::size_t d)
      : rel(std::move(relation)), depth(d) {}

  Subproblem(Subproblem&&) noexcept = default;
  Subproblem& operator=(Subproblem&&) noexcept = default;
  Subproblem(const Subproblem&) = delete;
  Subproblem& operator=(const Subproblem&) = delete;
};

/// Pluggable exploration-order policy.  Implementations are single-
/// threaded, like the BDD manager underneath them.
class Frontier {
 public:
  explicit Frontier(std::size_t capacity) : capacity_(capacity) {}
  virtual ~Frontier() = default;

  Frontier(const Frontier&) = delete;
  Frontier& operator=(const Frontier&) = delete;

  /// Accept `item` unless the frontier is at capacity; returns whether the
  /// item was taken.  Rejected items are simply dropped — the caller has
  /// already quick-solved them (Sec. 7.6), so no solution is lost.
  [[nodiscard]] bool try_push(Subproblem&& item) {
    if (size() >= capacity_) {
      return false;
    }
    push(std::move(item));
    return true;
  }

  /// Accept the search root unconditionally: the root predates any
  /// capacity concern (the original loop seeded its deque the same way),
  /// so even a zero-capacity frontier explores it.
  void push_root(Subproblem&& item) { push(std::move(item)); }

  /// Remove and return the next subproblem; requires !empty().
  [[nodiscard]] virtual Subproblem pop() = 0;

  /// Remove and return the entry this strategy parts with when another
  /// worker requests work (parallel_engine.hpp); requires !empty().
  /// FIFO donates its *deepest* pending node (the back of the queue — the
  /// farthest from the victim's own BFS wavefront), best-first donates
  /// its cheapest (the node the priority order values most, so the thief
  /// inherits a promising branch), and LIFO donates its *shallowest*
  /// (the bottom of the DFS stack — the largest unexplored subtree,
  /// leaving the victim's hot path untouched).
  [[nodiscard]] virtual Subproblem steal() { return pop(); }

  /// Bulk donation: append up to `count` steal() picks to `out`, in steal
  /// order.  The default loops steal(); LIFO overrides it to slice its
  /// stack bottom with ONE range erase instead of `count` O(size) erases.
  /// Donating a batch moves already-admitted items between workers, so
  /// the depth-capped explored SET is unchanged for any batch size.
  virtual void steal_into(std::vector<Subproblem>& out, std::size_t count) {
    for (std::size_t i = 0; i < count && !empty(); ++i) {
      out.push_back(steal());
    }
  }

  [[nodiscard]] virtual std::size_t size() const noexcept = 0;
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Whether this strategy orders by Subproblem::priority, i.e. wants the
  /// MISF candidate computed before push.
  [[nodiscard]] virtual bool wants_priority() const noexcept { return false; }

 protected:
  virtual void push(Subproblem&& item) = 0;

 private:
  std::size_t capacity_;
};

/// The paper's bounded FIFO (partial BFS, Sec. 7.2).
class BoundedFifoFrontier final : public Frontier {
 public:
  explicit BoundedFifoFrontier(std::size_t capacity);
  [[nodiscard]] Subproblem pop() override;
  [[nodiscard]] Subproblem steal() override;  ///< deepest: back of queue
  [[nodiscard]] std::size_t size() const noexcept override;

 protected:
  void push(Subproblem&& item) override;

 private:
  std::deque<Subproblem> queue_;
};

/// LIFO stack (depth-first): matches the original loop's push-front
/// behaviour — of two siblings pushed in order, the second is popped first.
class LifoFrontier final : public Frontier {
 public:
  explicit LifoFrontier(std::size_t capacity);
  [[nodiscard]] Subproblem pop() override;
  [[nodiscard]] Subproblem steal() override;  ///< shallowest: stack bottom
  /// Bottom `count` stack slots in one range erase (batched donation).
  void steal_into(std::vector<Subproblem>& out, std::size_t count) override;
  [[nodiscard]] std::size_t size() const noexcept override;

 protected:
  void push(Subproblem&& item) override;

 private:
  std::vector<Subproblem> stack_;
};

/// Min-heap on Subproblem::priority (the MISF candidate cost): always
/// expands the most promising pending subrelation.  Ties break FIFO so
/// runs are deterministic.
class BestFirstFrontier final : public Frontier {
 public:
  explicit BestFirstFrontier(std::size_t capacity);
  [[nodiscard]] Subproblem pop() override;
  [[nodiscard]] std::size_t size() const noexcept override;
  [[nodiscard]] bool wants_priority() const noexcept override { return true; }

 protected:
  void push(Subproblem&& item) override;

 private:
  struct Entry {
    Subproblem item;
    std::uint64_t seq;  ///< insertion order; FIFO tie-break
  };
  [[nodiscard]] static bool later(const Entry& a, const Entry& b) noexcept;
  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

/// Instantiate the strategy selected by `order`.
[[nodiscard]] std::unique_ptr<Frontier> make_frontier(ExplorationOrder order,
                                                      std::size_t capacity);

}  // namespace brel
