#include "brel/memo_exchange.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "brel/memo_snapshot.hpp"
#include "brel/server.hpp"  // wire::{connect_tcp, write_frame}

namespace brel {

namespace {

/// 64-bit FNV-1a over a string (ring-point hashing).
std::uint64_t fnv_string(const std::string& s) {
  std::uint64_t state = 14695981039346656037ull;
  for (const char c : s) {
    state ^= static_cast<unsigned char>(c);
    state *= 1099511628211ull;
  }
  return state;
}

/// Reply-frame ceiling on the PULL client side (a single entry; far
/// beyond any legitimate one, just bounding a lying peer).
constexpr std::size_t kMaxReplyBytes = 256u << 20;

struct Member {
  std::string name;  ///< as configured ("host:port")
  std::string host;
  std::uint16_t port = 0;
};

Member parse_member(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= spec.size()) {
    throw std::invalid_argument("MemoExchange: member '" + spec +
                                "' is not host:port");
  }
  const std::string port_text = spec.substr(colon + 1);
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
  if (end == port_text.c_str() || *end != '\0' || port == 0 ||
      port > 65535) {
    throw std::invalid_argument("MemoExchange: bad port in member '" +
                                spec + "'");
  }
  Member m;
  m.name = spec;
  m.host = spec.substr(0, colon);
  m.port = static_cast<std::uint16_t>(port);
  return m;
}

/// Receive exactly `len` bytes before `deadline`; false on timeout,
/// error, or peer close.
bool recv_exact_deadline(int fd, char* dst, std::size_t len,
                         std::chrono::steady_clock::time_point deadline) {
  std::size_t got = 0;
  while (got < len) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return false;
    }
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                              now)
            .count();
    pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, static_cast<int>(std::max<long long>(
                                       1, static_cast<long long>(left))));
    if (pr < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (pr == 0) {
      return false;  // deadline expired while idle
    }
    const ssize_t n = ::recv(fd, dst + got, len - got, 0);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return false;
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

/// Read one length-prefixed frame before `deadline`; false on any
/// failure (the pull is then simply a miss).
bool read_frame_deadline(int fd, std::string& payload,
                         std::chrono::steady_clock::time_point deadline) {
  char header[4];
  if (!recv_exact_deadline(fd, header, sizeof header, deadline)) {
    return false;
  }
  const std::uint32_t len =
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[0]))
       << 24) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[1]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[2]))
       << 8) |
      static_cast<std::uint32_t>(static_cast<unsigned char>(header[3]));
  if (len > kMaxReplyBytes) {
    return false;
  }
  payload.resize(len);
  return len == 0 ||
         recv_exact_deadline(fd, payload.data(), len, deadline);
}

}  // namespace

struct MemoExchange::Impl {
  GlobalMemo& local;
  PeerExchangeOptions options;
  std::vector<Member> members;  ///< [0] = self
  /// Sorted virtual-node points: (point hash, member index).
  std::vector<std::pair<std::uint64_t, std::size_t>> ring;

  std::atomic<std::uint64_t> pulls{0};
  std::atomic<std::uint64_t> pull_hits{0};
  std::atomic<std::uint64_t> pull_failures{0};
  std::atomic<std::uint64_t> pushes{0};
  std::atomic<std::uint64_t> push_failures{0};
  std::atomic<std::uint64_t> push_dropped{0};

  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<GlobalMemoKey> push_queue;
  std::thread push_thread;
  std::atomic<bool> stopping{false};
  bool started = false;  ///< under queue_mutex

  Impl(GlobalMemo& local_in, PeerExchangeOptions options_in)
      : local(local_in), options(std::move(options_in)) {
    if (options.self.empty()) {
      throw std::invalid_argument("MemoExchange: empty self identity");
    }
    members.push_back(parse_member(options.self));
    for (const std::string& peer : options.peers) {
      members.push_back(parse_member(peer));
    }
    const std::size_t replicas = std::max<std::size_t>(1, options.replicas);
    ring.reserve(members.size() * replicas);
    for (std::size_t m = 0; m < members.size(); ++m) {
      for (std::size_t r = 0; r < replicas; ++r) {
        ring.emplace_back(
            fnv_string(members[m].name + '#' + std::to_string(r)), m);
      }
    }
    std::sort(ring.begin(), ring.end());
  }

  [[nodiscard]] std::size_t owner_of_hash(std::uint64_t hash) const {
    if (members.size() == 1) {
      return 0;
    }
    auto it = std::lower_bound(
        ring.begin(), ring.end(), hash,
        [](const std::pair<std::uint64_t, std::size_t>& point,
           std::uint64_t h) { return point.first < h; });
    if (it == ring.end()) {
      it = ring.begin();  // wrap
    }
    return it->second;
  }

  [[nodiscard]] std::chrono::steady_clock::time_point pull_deadline()
      const {
    return std::chrono::steady_clock::now() +
           std::chrono::milliseconds(std::max(1, options.pull_timeout_ms));
  }

  /// One request/reply round trip to `member`; empty optional with
  /// `*wire_ok = false` on any transport/parse failure.
  std::optional<std::string> round_trip(const Member& member,
                                        const std::string& request,
                                        bool* wire_ok) {
    *wire_ok = false;
    const int fd = wire::connect_tcp(member.host, member.port);
    if (fd < 0) {
      return std::nullopt;
    }
    std::string reply;
    const bool ok = wire::write_frame(fd, request) &&
                    read_frame_deadline(fd, reply, pull_deadline());
    ::close(fd);
    if (!ok) {
      return std::nullopt;
    }
    *wire_ok = true;
    return reply;
  }

  /// The PULL round trip: nullopt is a miss (failed wire counts in
  /// pull_failures; a clean MISS does not).
  std::optional<MemoExportEntry> pull(const Member& member,
                                      const GlobalMemoKey& key) {
    const std::optional<MemoFingerprint> fp = local.fingerprint();
    if (!fp.has_value()) {
      return std::nullopt;  // unbound memo: nothing is comparable yet
    }
    std::ostringstream request;
    request << "MEMO_PULL\n";
    write_memo_fingerprint(request, *fp);
    write_memo_key(request, key);
    bool wire_ok = false;
    const std::optional<std::string> reply =
        round_trip(member, request.str(), &wire_ok);
    if (!reply.has_value()) {
      pull_failures.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    if (reply->rfind("MISS", 0) == 0) {
      return std::nullopt;
    }
    const std::size_t nl = reply->find('\n');
    if (reply->rfind("OK", 0) != 0 || nl == std::string::npos) {
      pull_failures.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    try {
      std::istringstream body(reply->substr(nl + 1));
      MemoExportEntry entry = read_memo_entry(body);
      if (entry.key != key) {
        // A confused peer answering for a different key must not
        // install under ours.
        pull_failures.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
      }
      return entry;
    } catch (const std::invalid_argument&) {
      pull_failures.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
  }

  /// Deliver one record to its owner; true when the peer acknowledged.
  bool push(const Member& member, const MemoExportEntry& record) {
    const std::optional<MemoFingerprint> fp = local.fingerprint();
    if (!fp.has_value()) {
      return false;
    }
    std::ostringstream request;
    request << "MEMO_PUSH\n";
    write_memo_fingerprint(request, *fp);
    write_memo_entry(request, record);
    bool wire_ok = false;
    const std::optional<std::string> reply =
        round_trip(member, request.str(), &wire_ok);
    return reply.has_value() && reply->rfind("OK", 0) == 0;
  }

  void push_loop() {
    while (true) {
      GlobalMemoKey key;
      {
        std::unique_lock<std::mutex> lock(queue_mutex);
        queue_cv.wait(lock, [this] {
          return stopping.load(std::memory_order_acquire) ||
                 !push_queue.empty();
        });
        if (stopping.load(std::memory_order_acquire)) {
          // Drop the backlog rather than racing a drain against dead
          // peers — gossip is an optimization, never a shutdown blocker.
          push_dropped.fetch_add(push_queue.size(),
                                 std::memory_order_relaxed);
          push_queue.clear();
          return;
        }
        key = std::move(push_queue.front());
        push_queue.pop_front();
      }
      const std::size_t owner = owner_of_hash(memo_key_hash(key));
      if (owner == 0) {
        continue;  // raced a ring the enqueue already checked; harmless
      }
      // Export NOW, not at enqueue: the entry may have been upgraded
      // (truncated root → natural) or evicted since.
      const std::optional<MemoExportEntry> record = local.export_entry(key);
      if (!record.has_value()) {
        continue;
      }
      if (push(members[owner], *record)) {
        pushes.fetch_add(1, std::memory_order_relaxed);
      } else {
        push_failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
};

MemoExchange::MemoExchange(GlobalMemo& local, PeerExchangeOptions options)
    : impl_(std::make_unique<Impl>(local, std::move(options))) {}

MemoExchange::~MemoExchange() { stop(); }

void MemoExchange::start() {
  std::unique_lock<std::mutex> lock(impl_->queue_mutex);
  if (impl_->started) {
    return;
  }
  impl_->started = true;
  lock.unlock();
  impl_->push_thread = std::thread([this] { impl_->push_loop(); });
}

void MemoExchange::stop() {
  impl_->stopping.store(true, std::memory_order_release);
  {
    const std::scoped_lock lock(impl_->queue_mutex);
    impl_->queue_cv.notify_all();
  }
  if (impl_->push_thread.joinable()) {
    impl_->push_thread.join();
  }
}

std::size_t MemoExchange::owner_of(const GlobalMemoKey& key) const {
  return impl_->owner_of_hash(memo_key_hash(key));
}

void MemoExchange::enqueue_push(const GlobalMemoKey& key) {
  if (impl_->members.size() == 1 ||
      impl_->stopping.load(std::memory_order_acquire)) {
    return;
  }
  if (impl_->owner_of_hash(memo_key_hash(key)) == 0) {
    return;  // self-owned: peers pull it from us when they need it
  }
  {
    const std::scoped_lock lock(impl_->queue_mutex);
    if (!impl_->started ||
        impl_->push_queue.size() >= impl_->options.push_queue_limit) {
      impl_->push_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    impl_->push_queue.push_back(key);
  }
  impl_->queue_cv.notify_one();
}

PeerExchangeStats MemoExchange::stats() const {
  PeerExchangeStats s;
  s.pulls = impl_->pulls.load(std::memory_order_relaxed);
  s.pull_hits = impl_->pull_hits.load(std::memory_order_relaxed);
  s.pull_failures = impl_->pull_failures.load(std::memory_order_relaxed);
  s.pushes = impl_->pushes.load(std::memory_order_relaxed);
  s.push_failures = impl_->push_failures.load(std::memory_order_relaxed);
  s.push_dropped = impl_->push_dropped.load(std::memory_order_relaxed);
  return s;
}

std::optional<MemoHit> MemoExchange::probe(const GlobalMemoKey& key,
                                           std::uint64_t depth) {
  if (depth != 0 || impl_->members.size() == 1 ||
      impl_->stopping.load(std::memory_order_acquire)) {
    return std::nullopt;
  }
  const std::size_t owner = impl_->owner_of_hash(memo_key_hash(key));
  if (owner == 0) {
    return std::nullopt;  // we own it; the local miss is authoritative
  }
  impl_->pulls.fetch_add(1, std::memory_order_relaxed);
  const std::optional<MemoExportEntry> entry =
      impl_->pull(impl_->members[owner], key);
  if (!entry.has_value()) {
    return std::nullopt;
  }
  // Install the full record — ORIGINAL mark preserved — before serving,
  // so the next identical probe is a plain local hit (and so the
  // GlobalMemo fault path loses no depth information to this MemoHit).
  impl_->local.install(*entry, MemoOrigin::kPeer);
  impl_->pull_hits.fetch_add(1, std::memory_order_relaxed);
  return MemoHit{entry->solution, entry->root_exact};
}

bool MemoExchange::install(const MemoExportEntry& entry, MemoOrigin origin) {
  return impl_->local.install(entry, origin);
}

void MemoExchange::export_complete(
    const std::function<void(const MemoExportEntry&)>& sink) const {
  impl_->local.export_complete(sink);
}

}  // namespace brel
