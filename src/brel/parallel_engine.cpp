#include "brel/parallel_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <iterator>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bdd/bdd_transfer.hpp"
#include "brel/lock_stats.hpp"
#include "brel/quick_solver.hpp"
#include "brel/search.hpp"

namespace brel {

namespace {

/// A subproblem in flight between two managers: plain data, no handles,
/// safe to hand across threads (see bdd_transfer.hpp).  The push-time
/// best-first candidate and the cache ancestor chain do not travel — the
/// thief re-seeds the priority and starts a fresh chain in its own cache.
/// The global-memo key chain DOES travel: dropping it would detach the
/// stolen subtree's discoveries from its ancestors' memo entries (a warm
/// re-solve at the root would then return a worse cost than the run
/// that warmed it whenever the best solution was found in stolen work).
/// Chain handles are lazy (LazyMemoKey) and a HASHED handle pins a Bdd
/// of the VICTIM's manager, so donate_work materializes every handle on
/// the victim's thread before serializing the batch — what crosses the
/// queue is plain data again, and the queue mutex is the barrier.
struct InjectedSubproblem {
  SerializedBdd chi;
  std::size_t depth = 0;
  std::vector<MemoKeyHandle> memo_chain;
  /// Incremental-delta cofactor (delta_context.hpp), present iff the
  /// victim was tracking a delta; it migrates with the subtree so the
  /// thief keeps classifying (and short-circuiting) exactly as the
  /// victim would have.
  std::optional<SerializedBdd> delta;
};

/// One donation: up to SolverOptions::steal_batch subproblems serialized
/// together, so a steal pays the transfer round trip once per SUBTREE
/// BATCH instead of once per node.
using InjectedBatch = std::vector<InjectedSubproblem>;

/// The only cross-worker state (see the ownership rules in the header).
struct SharedState {
  explicit SharedState(std::size_t worker_count) : workers(worker_count) {}

  const std::size_t workers;

  TimedMutex mutex{lock_names::kInject};  ///< guards queue / idle / done
  std::condition_variable_any work_ready;
  std::deque<InjectedBatch> queue;  ///< the injection queue (of batches)
  std::size_t idle = 0;             ///< workers blocked on the queue
  bool done = false;                ///< all idle and nothing queued

  /// Mirror of queue.size(), readable without the lock: victims size
  /// their donations against it so the build happens OUTSIDE the lock.
  std::atomic<std::size_t> queued_batches{0};

  std::atomic<std::size_t> steal_requests{0};  ///< waiting thieves
  std::atomic<std::size_t> steals{0};          ///< subproblems donated
  std::atomic<std::size_t> steal_batches{0};   ///< donation batches
  std::atomic<std::size_t> explored{0};        ///< global budget tickets
  std::atomic<bool> stop{false};               ///< budget/timeout/failure
  std::atomic<bool> budget_exhausted{false};
  /// Incumbent *bound* (best explored-candidate cost anywhere): one
  /// worker's discovery prunes every other worker's subtrees.  Costs
  /// only — the winning function stays in its worker's manager until the
  /// coordinator merges after join.
  std::atomic<double> bound{std::numeric_limits<double>::infinity()};

  /// Stop the fleet.  The flag is set under the mutex so a thief between
  /// its predicate check and its wait cannot miss the wake-up.
  void halt() {
    const std::scoped_lock lock(mutex);
    stop.store(true);
    work_ready.notify_all();
  }
};

void atomic_min(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current && !target.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

/// Result slot filled by a worker before it exits; `best` lives in the
/// worker's manager and is read by the coordinator only after join (and
/// after re-binding the manager to the coordinating thread).
struct WorkerOutcome {
  MultiFunction best;
  double best_cost = std::numeric_limits<double>::infinity();
  /// Rank form of `best` (workers mirror the coordinator's layout, so
  /// forms are comparable fleet-wide): the coordinator breaks equal-cost
  /// merge ties with canonically_before instead of worker index, which
  /// would leak the schedule into the returned function.
  std::optional<PortableSolution> best_portable;
  SolverStats stats;
  /// Memo keys this worker's expansions created, with their depths, plus
  /// the worker's taint sets (plain data; the taint pointers stay alive
  /// through the shared_ptrs in the touched lists).  Whether the fleet
  /// drained naturally is only known after join, so the coordinator —
  /// not the worker — turns the fleet-wide union into completeness
  /// marks.
  std::vector<SearchContext::MemoTouch> memo_touched;
  std::unordered_set<const LazyMemoKey*> memo_hard_tainted;
  std::unordered_set<const LazyMemoKey*> memo_soft_tainted;
};

/// Serve pending steal requests from this worker's surplus: donate one
/// BATCH of up to `batch_limit` Frontier::steal() picks per waiting thief
/// not already covered by a queued batch, always keeping at least one
/// subproblem for ourselves.  The batch is serialized OUTSIDE the queue
/// lock — serialization only reads the victim's private frontier and
/// manager — so the critical section is reduced to deque pointer swaps.
/// Over-donation (a thief that found work elsewhere meanwhile) is safe:
/// surplus batches drain to the next idle worker.
void donate_work(SharedState& shared, Frontier& frontier, BddManager& mgr,
                 std::size_t batch_limit) {
  const std::size_t waiting = shared.steal_requests.load();
  if (waiting == 0 || frontier.size() <= 1) {
    return;
  }
  const std::size_t queued = shared.queued_batches.load();
  if (waiting <= queued) {
    return;
  }
  std::size_t need = waiting - queued;

  std::vector<InjectedBatch> batches;
  std::vector<Subproblem> picks;
  std::size_t donated_items = 0;
  while (need-- > 0 && frontier.size() > 1) {
    const std::size_t take = std::min(batch_limit, frontier.size() - 1);
    picks.clear();
    frontier.steal_into(picks, take);
    InjectedBatch batch;
    batch.reserve(picks.size());
    for (Subproblem& victim : picks) {
      // Materialize every chain handle HERE, on the victim's thread: a
      // HASHED handle pins a Bdd of this manager, which must not cross
      // to the thief (see LazyMemoKey's thread contract).  Once
      // materialized the handle is immutable plain data.
      for (const MemoKeyHandle& key : victim.memo_chain) {
        (void)key->get();
      }
      std::optional<SerializedBdd> delta;
      if (!victim.delta.is_null()) {
        delta = mgr.serialize_bdd(victim.delta);
      }
      batch.push_back(InjectedSubproblem{
          mgr.serialize_bdd(victim.rel.characteristic()), victim.depth,
          std::move(victim.memo_chain), std::move(delta)});
    }
    donated_items += batch.size();
    batches.push_back(std::move(batch));
  }
  if (batches.empty()) {
    return;
  }
  {
    const std::scoped_lock lock(shared.mutex);
    for (InjectedBatch& batch : batches) {
      shared.queue.push_back(std::move(batch));
    }
    shared.queued_batches.store(shared.queue.size());
  }
  shared.steals.fetch_add(donated_items);
  shared.steal_batches.fetch_add(batches.size());
  shared.work_ready.notify_all();
}

/// Idle path: take one injected BATCH (materializing every subproblem in
/// OUR manager) or detect global termination.  Returns false when the
/// worker should exit (all workers idle with an empty queue, stop flag,
/// or deadline).
bool acquire_injected(SearchContext& ctx, SharedState& shared,
                      Frontier& frontier, const BooleanRelation& root) {
  std::unique_lock<TimedMutex> lock(shared.mutex);
  if (shared.done || shared.stop.load()) {
    return false;
  }
  if (shared.queue.empty()) {
    ++shared.idle;
    shared.steal_requests.fetch_add(1);
    if (shared.idle == shared.workers && shared.queue.empty()) {
      // Nobody holds local work and nothing is queued: the tree is done.
      shared.done = true;
      shared.steal_requests.fetch_sub(1);
      shared.work_ready.notify_all();
      return false;
    }
    while (shared.queue.empty() && !shared.done && !shared.stop.load()) {
      if (ctx.timed_out()) {  // waiting workers also watch the deadline
        shared.stop.store(true);
        shared.budget_exhausted.store(true);
        ctx.stats.budget_exhausted = true;
        shared.work_ready.notify_all();
        break;
      }
      // Timed wait: a missed notify can only cost one period, never a
      // hang, and gives blocked workers a deadline heartbeat.
      shared.work_ready.wait_for(lock, std::chrono::milliseconds(20));
    }
    shared.steal_requests.fetch_sub(1);
    if (shared.done || shared.stop.load()) {
      return false;  // idle stays counted: the run is over
    }
    --shared.idle;
  }
  InjectedBatch batch = std::move(shared.queue.front());
  shared.queue.pop_front();
  shared.queued_batches.store(shared.queue.size());
  lock.unlock();

  // Materialize the whole batch locally — deserialization happens in OUR
  // manager, outside any shared lock.
  for (InjectedSubproblem& item : batch) {
    Bdd chi = ctx.mgr.deserialize_bdd(item.chi);
    Subproblem sub{BooleanRelation(ctx.mgr, root.inputs(), root.outputs(),
                                   std::move(chi)),
                   item.depth};
    if (ctx.cache != nullptr) {
      // The victim's ancestor chain is meaningless here (other manager's
      // edges); enter this subtree into our cache and restart the chain.
      (void)ctx.cache->seen_before_or_insert(sub.rel.characteristic());
      sub.ancestors.push_back(sub.rel.characteristic().raw_edge());
    }
    // The global-memo chain travels with the work (it is plain data and
    // already ends with this node's own key): the stolen subtree keeps
    // publishing for its true ancestors, root included.  No probe here —
    // the victim already published this child's quick solution when it
    // generated the node, so a probe would "hit" our own fleet's pending
    // work and silently drop the stolen subtree.
    sub.memo_chain = std::move(item.memo_chain);
    if (item.delta.has_value()) {
      sub.delta = ctx.mgr.deserialize_bdd(*item.delta);
    }
    seed_priority(ctx, sub, frontier);
    frontier.push_root(std::move(sub));  // stolen work is never dropped
  }
  return true;
}

/// One worker: the serial engine's loop (same step-0 seeding on worker 0,
/// same expansion order within the local frontier) plus the donation /
/// injection / shared-bound / global-budget hooks.
/// `root_delta` is the root's serialized XOR change region when the
/// coordinator armed incremental mode (delta_context.hpp), null
/// otherwise; worker 0 materializes it onto the root subproblem, every
/// worker classifies while it is armed (stolen work carries its own
/// delta cofactor through the injection queue).
void run_worker(std::size_t worker_id, BddManager& mgr,
                const BooleanRelation& root, const SolverOptions& options,
                std::chrono::steady_clock::time_point start,
                const MemoRunStamp& memo_stamp,
                const SerializedBdd* root_delta, SharedState& shared,
                WorkerOutcome& out) {
  SearchContext ctx{mgr,
                    options,
                    options.cost ? options.cost : sum_of_bdd_sizes(),
                    start,
                    MultiFunction{},
                    std::numeric_limits<double>::infinity(),
                    std::numeric_limits<double>::infinity(),
                    SolverStats{},
                    std::nullopt,
                    nullptr};
  if (options.use_symmetry) {
    ctx.symmetries.emplace(mgr, root.outputs(),
                           options.symmetry_second_order);
  }
  std::unique_ptr<SubproblemCache> cache;
  if (options.use_subproblem_cache) {
    // Worker-private (keyed by this manager's edges; see the ctor check).
    cache = std::make_unique<SubproblemCache>(
        options.subproblem_cache_capacity);
    cache->bind(make_cache_fingerprint(root, options, ctx.cost));
    ctx.cache = cache.get();
  }
  // The rank tables are per-worker because they reference this worker's
  // manager variables; all workers mirror the coordinator's variable
  // layout, so every worker produces identical canonical forms.  Built
  // even without a memo: the space anchors the canonical equal-cost tie
  // order (canonically_before) for the incumbent and the merge.
  const std::shared_ptr<const MemoSpace> memo_space =
      std::make_shared<const MemoSpace>(make_memo_space(root));
  ctx.tie_space = memo_space.get();
  if (options.global_memo != nullptr) {
    // The memo itself is shared (thread-safe, plain-data entries).
    ctx.memo = options.global_memo.get();
    ctx.memo_space = memo_space.get();
    // Shared ref: HASHED key handles keep this worker's space alive.
    ctx.memo_space_ref = memo_space;
    // One stamp for the whole fleet: the fleet is one producing run.
    ctx.memo_stamp = memo_stamp;
  }
  if (root_delta != nullptr) {
    ctx.delta_active = true;
    ctx.stats.delta_active = true;
  }
  const std::unique_ptr<Frontier> frontier =
      make_frontier(options.order, options.fifo_capacity);

  // Reordering policy, per worker manager (each is private and fresh, so
  // no restore is needed): On sifts the imported root now; Auto arms the
  // GC-coupled trigger.  Sifting is deterministic over equal stores, so
  // all workers start in the same order.
  const ReorderMode reorder_mode = resolve_reorder_mode(options.reorder);
  const std::uint64_t reorders_before = mgr.stats().reorders;
  if (reorder_mode == ReorderMode::On) {
    mgr.reorder();
  } else if (reorder_mode == ReorderMode::Auto) {
    mgr.set_auto_reorder(true);
  }

  if (worker_id == 0) {
    // Step 0, exactly like SearchEngine::run(): the root subproblem and
    // the unconditional QuickSolver incumbent seed live on worker 0; the
    // other workers start empty and immediately post steal requests.
    if (ctx.symmetries.has_value()) {
      (void)ctx.symmetries->seen_before_or_insert(root.characteristic());
    }
    Subproblem root_item{root, 0};
    if (ctx.cache != nullptr) {
      (void)ctx.cache->seen_before_or_insert(root.characteristic());
      root_item.ancestors.push_back(root.characteristic().raw_edge());
    }
    if (ctx.memo_active(0)) {
      // The coordinator already probed the memo before spawning the
      // fleet (a root hit never starts threads), so worker 0 only seeds
      // the publish chain here — a hash-only handle, like any child key.
      root_item.memo_chain.push_back(
          make_memo_handle(ctx.memo_space_ref, root.characteristic()));
      ctx.memo_touched.push_back({root_item.memo_chain.back(), 0});
    }
    if (root_delta != nullptr) {
      root_item.delta = mgr.deserialize_bdd(*root_delta);
    }
    MultiFunction quick = quick_solve(root, options.minimizer);
    ++ctx.stats.quick_solutions;
    ++ctx.stats.solutions_seen;
    const double quick_cost = ctx.cost(quick);
    if (ctx.cache != nullptr) {
      ctx.cache->improve(root_item.ancestors, quick, quick_cost);
    }
    if (ctx.memo != nullptr && !root_item.memo_chain.empty()) {
      ctx.memo->publish(root_item.memo_chain.front(),
                        make_portable_solution(*ctx.memo_space, quick,
                                               quick_cost),
                        ctx.memo_stamp.run_id);
    }
    ctx.best_cost = quick_cost;
    ctx.best = std::move(quick);
    seed_priority(ctx, root_item, *frontier);
    frontier->push_root(std::move(root_item));
  }

  while (true) {
    if (shared.stop.load()) {
      break;
    }
    if (ctx.timed_out()) {
      shared.budget_exhausted.store(true);
      ctx.stats.budget_exhausted = true;
      shared.halt();
      break;
    }
    if (frontier->empty()) {
      if (!acquire_injected(ctx, shared, *frontier, root)) {
        break;
      }
      continue;
    }
    donate_work(shared, *frontier, mgr,
                std::max<std::size_t>(1, options.steal_batch));
    if (!options.exact) {
      // One global ticket per expansion, so N workers share the serial
      // budget instead of multiplying it.
      const std::size_t ticket = shared.explored.fetch_add(1);
      if (ticket >= options.max_relations) {
        shared.explored.fetch_sub(1);
        shared.budget_exhausted.store(true);
        ctx.stats.budget_exhausted = true;
        shared.halt();
        break;
      }
    }
    mgr.garbage_collect_if_needed();
    // Import the fleet-wide bound, expand, publish what we learned.
    const double fleet_bound = shared.bound.load(std::memory_order_relaxed);
    if (fleet_bound < ctx.bound_cost) {
      ctx.bound_cost = fleet_bound;
    }
    expand_subproblem(ctx, frontier->pop(), *frontier);
    atomic_min(shared.bound, ctx.bound_cost);
  }

  ctx.stats.reorders =
      static_cast<std::size_t>(mgr.stats().reorders - reorders_before);
  ctx.stats.runtime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  out.best = std::move(ctx.best);
  out.best_cost = ctx.best_cost;
  if (!out.best.outputs.empty()) {
    out.best_portable =
        ctx.best_portable.has_value()
            ? std::move(ctx.best_portable)
            : std::optional<PortableSolution>(make_portable_solution(
                  *memo_space, out.best, out.best_cost));
  }
  out.stats = ctx.stats;
  // Materialize every touched handle before it leaves this thread: the
  // coordinator reads shared_key() for the completeness marks, and a
  // still-HASHED handle (probe missed, nothing ever published under it)
  // can only be built where its manager lives — here.
  for (const SearchContext::MemoTouch& touch : ctx.memo_touched) {
    (void)touch.key->get();
  }
  out.memo_touched = std::move(ctx.memo_touched);
  out.memo_hard_tainted = std::move(ctx.memo_hard_tainted);
  out.memo_soft_tainted = std::move(ctx.memo_soft_tainted);
}

/// Counter-wise sum of two stats records (the flags merge by OR).
void accumulate_stats(SolverStats& into, const SolverStats& from) {
  into.relations_explored += from.relations_explored;
  into.splits += from.splits;
  into.quick_solutions += from.quick_solutions;
  into.misf_minimizations += from.misf_minimizations;
  into.conflicts += from.conflicts;
  into.pruned_by_cost += from.pruned_by_cost;
  into.pruned_by_symmetry += from.pruned_by_symmetry;
  into.pruned_by_cache += from.pruned_by_cache;
  into.memo_hits += from.memo_hits;
  into.fifo_overflow += from.fifo_overflow;
  into.depth_limited += from.depth_limited;
  into.solutions_seen += from.solutions_seen;
  into.steal_batches += from.steal_batches;
  into.reorders += from.reorders;
  into.delta_active = into.delta_active || from.delta_active;
  into.delta_reused += from.delta_reused;
  into.delta_researched += from.delta_researched;
  into.lock_wait_ns += from.lock_wait_ns;
  into.budget_exhausted = into.budget_exhausted || from.budget_exhausted;
}

}  // namespace

std::size_t resolve_worker_count(std::size_t requested) {
  if (requested != 0) {
    return requested;
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : hardware;
}

ParallelEngine::ParallelEngine(const BooleanRelation& root,
                               const SolverOptions& options)
    : root_(root),
      options_(options),
      workers_(resolve_worker_count(options.num_workers)) {
  if (!root_.is_well_defined()) {
    throw std::invalid_argument("BrelSolver: relation is not well defined");
  }
  if (options_.subproblem_cache != nullptr) {
    throw std::invalid_argument(
        "ParallelEngine: a shared SubproblemCache is keyed by one "
        "manager's edges and cannot serve per-worker managers; use "
        "use_subproblem_cache for worker-private caches instead");
  }
  if (options_.global_memo != nullptr) {
    // The manager-independent memo CAN serve per-worker managers; fail
    // fast on a comparability mismatch before any thread starts.
    options_.global_memo->bind(MemoFingerprint{
        (options_.cost ? options_.cost : sum_of_bdd_sizes()).id(),
        options_.exact});
  }
}

SolveResult ParallelEngine::run() {
  const auto start = std::chrono::steady_clock::now();
  // Best-effort attribution (the registry is process-global): waits that
  // accrue on the memo/injection locks between here and join.
  const std::uint64_t lock_wait_before =
      total_lock_wait_ns({lock_names::kMemo, lock_names::kInject});
  BddManager& root_mgr = root_.manager();
  const std::size_t count = workers_;

  // Warm-memo fast path: probe the cross-solve memo with the root's
  // canonical key before paying for managers and threads.  A hit is the
  // memoized best of an identical earlier solve — return it directly.
  // The space and key outlive the probe: the incremental overlay below
  // and the end-of-run base registration reuse them.
  std::shared_ptr<const MemoSpace> memo_space;
  MemoKeyHandle root_key;
  if (options_.global_memo != nullptr) {
    memo_space = std::make_shared<const MemoSpace>(make_memo_space(root_));
    root_key = make_memo_handle(memo_space, root_.characteristic());
    if (const std::optional<PortableSolution> entry =
            options_.global_memo->lookup(root_key)) {
      if (options_.delta_registry != nullptr) {
        // A served root is as good as a drained one for the next diff.
        options_.delta_registry->remember(root_key->get());
      }
      SolveResult result;
      result.function =
          import_portable_solution(root_mgr, *memo_space, *entry);
      result.cost = entry->cost;
      result.stats.memo_hits = 1;
      result.stats.solutions_seen = 1;
      result.stats.workers = count;
      result.stats.runtime_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      return result;
    }
  }

  // Incremental delta (delta_context.hpp): on a root miss, diff against
  // the registry's most recent base while both BDDs live in the
  // caller's manager (the registry belongs to the calling thread), then
  // ship the change region to the fleet in serialized form — worker 0
  // materializes it onto the root, donations carry the per-subtree
  // cofactors from there.
  std::optional<SerializedBdd> root_delta;
  if (options_.delta_registry != nullptr && memo_space != nullptr) {
    // Rank-list overlay probe: a miss must not force the root key to
    // materialize (that would serialize on the cold path the lazy keys
    // exist to keep serialization-free).
    if (const SerializedBdd* base = options_.delta_registry->find_base(
            memo_space->input_ranks, memo_space->output_ranks)) {
      const Bdd base_chi =
          import_canonical_bdd(root_mgr, *memo_space, *base);
      root_delta =
          root_mgr.serialize_bdd(root_.characteristic() ^ base_chi);
    }
  }

  // Per-worker substrate, prepared on the coordinating thread: a private
  // manager with the same variable order, and the root relation imported
  // into it (direct transfer — both managers are owned by this thread
  // until the workers start).
  std::vector<std::unique_ptr<BddManager>> managers;
  std::vector<std::optional<BooleanRelation>> roots;
  managers.reserve(count);
  roots.reserve(count);
  for (std::size_t w = 0; w < count; ++w) {
    managers.push_back(std::make_unique<BddManager>(root_mgr.num_vars()));
    Bdd chi = managers[w]->import_bdd(root_.characteristic());
    roots.emplace_back(BooleanRelation(*managers[w], root_.inputs(),
                                       root_.outputs(), std::move(chi)));
  }

  const MemoRunStamp memo_stamp = options_.global_memo != nullptr
                                      ? options_.global_memo->begin_run()
                                      : MemoRunStamp{};
  SharedState shared(count);
  std::vector<WorkerOutcome> outcomes(count);
  std::vector<std::exception_ptr> failures(count);

  std::vector<std::thread> threads;
  threads.reserve(count);
  try {
    for (std::size_t w = 0; w < count; ++w) {
      threads.emplace_back([&, w] {
        managers[w]->bind_to_current_thread();
        try {
          run_worker(w, *managers[w], *roots[w], options_, start,
                     memo_stamp, root_delta ? &*root_delta : nullptr,
                     shared, outcomes[w]);
        } catch (...) {
          failures[w] = std::current_exception();
          shared.halt();
        }
      });
    }
  } catch (...) {
    shared.halt();  // thread-spawn failure: stop whoever already started
    for (std::thread& t : threads) {
      t.join();
    }
    throw;
  }
  for (std::thread& t : threads) {
    t.join();
  }
  // The join established happens-before; take the managers back so the
  // merge (and the outcome destructors) run on this thread legally.
  for (const std::unique_ptr<BddManager>& mgr : managers) {
    mgr->bind_to_current_thread();
  }
  for (const std::exception_ptr& failure : failures) {
    if (failure) {
      std::rethrow_exception(failure);
    }
  }

  SolveResult result;
  result.worker_stats.reserve(count);
  std::size_t winner = count;  // index of the cheapest non-empty incumbent
  for (std::size_t w = 0; w < count; ++w) {
    const WorkerOutcome& outcome = outcomes[w];
    result.worker_stats.push_back(outcome.stats);
    accumulate_stats(result.stats, outcome.stats);
    if (outcome.best.outputs.empty()) {
      continue;
    }
    // NaN-safe: a NaN cost never displaces an earlier incumbent, and the
    // first non-empty one (worker 0's unconditional quick seed) always
    // enters, so even a pathological cost function yields a compatible
    // function — same contract as the serial engine.  Equal-cost ties
    // resolve through the canonical order, not worker index: which
    // worker happened to find a tied function is scheduling noise.
    if (winner == count || outcome.best_cost < outcomes[winner].best_cost ||
        (outcome.best_cost == outcomes[winner].best_cost &&
         outcome.best_portable.has_value() &&
         outcomes[winner].best_portable.has_value() &&
         canonically_before(*outcome.best_portable,
                            *outcomes[winner].best_portable))) {
      winner = w;
    }
  }
  if (winner == count) {
    throw std::logic_error("ParallelEngine: no worker produced a solution");
  }
  result.stats.workers = count;
  result.stats.steals = shared.steals.load();
  result.stats.steal_batches = shared.steal_batches.load();
  result.stats.lock_wait_ns =
      total_lock_wait_ns({lock_names::kMemo, lock_names::kInject}) -
      lock_wait_before;
  result.stats.budget_exhausted =
      result.stats.budget_exhausted || shared.budget_exhausted.load();
  result.stats.runtime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // Depth-indexed completeness marking, mirroring SearchEngine::run (the
  // per-worker key lists only become safe to publish once the fleet-wide
  // outcome is known).  Taints are fleet-global — a bound prune in
  // worker A invalidates a chain that may continue in worker B's stolen
  // work — so the per-worker touched lists and taint sets are unioned
  // before make_memo_marks.  Key identity survives migration: chains
  // travel through the injection queue as shared_ptr copies, never
  // re-serialized, so one canonical key stays one object fleet-wide.
  if (options_.global_memo != nullptr && !result.stats.budget_exhausted) {
    std::vector<SearchContext::MemoTouch> touched;
    std::unordered_set<const LazyMemoKey*> hard_tainted;
    std::unordered_set<const LazyMemoKey*> soft_tainted;
    for (WorkerOutcome& outcome : outcomes) {
      touched.insert(touched.end(),
                     std::make_move_iterator(outcome.memo_touched.begin()),
                     std::make_move_iterator(outcome.memo_touched.end()));
      hard_tainted.insert(outcome.memo_hard_tainted.begin(),
                          outcome.memo_hard_tainted.end());
      soft_tainted.insert(outcome.memo_soft_tainted.begin(),
                          outcome.memo_soft_tainted.end());
    }
    if (!touched.empty()) {
      // touched.front() is worker 0's root key (pushed before any child
      // anywhere — the other workers start empty).
      const std::vector<MemoMark> marks = make_memo_marks(
          touched, hard_tainted, soft_tainted,
          options_.max_depth == static_cast<std::size_t>(-1),
          touched.front().key.get(), result.stats.fifo_overflow == 0);
      options_.global_memo->mark_complete(std::span<const MemoMark>(marks),
                                          memo_stamp);
      if (options_.delta_registry != nullptr &&
          result.stats.fifo_overflow == 0) {
        // The root entry is now marked: this run's relation becomes the
        // freshest base for the next nearly-identical request.  The
        // coordinator's handle materializes here at the latest (this
        // thread owns the root manager, so the build is legal).
        options_.delta_registry->remember(root_key->get());
      }
    }
  }

  // Transfer the winning solution back into the caller's manager.
  const WorkerOutcome& best = outcomes[winner];
  result.cost = best.best_cost;
  result.function.outputs.reserve(best.best.outputs.size());
  for (const Bdd& g : best.best.outputs) {
    result.function.outputs.push_back(root_mgr.import_bdd(g));
  }
  return result;
}

}  // namespace brel
