#include "brel/delta_context.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace brel {

namespace {

bool ranks_equal(const std::vector<std::uint32_t>& a,
                 std::span<const std::uint32_t> b) noexcept {
  return std::equal(a.begin(), a.end(), b.begin(), b.end());
}

}  // namespace

const SerializedBdd* DeltaRegistry::find_base(
    std::span<const std::uint32_t> input_ranks,
    std::span<const std::uint32_t> output_ranks) const {
  for (const BaseEntry& base : bases_) {
    if (base.has_chi && ranks_equal(base.input_ranks, input_ranks) &&
        ranks_equal(base.output_ranks, output_ranks)) {
      return &base.chi;
    }
  }
  return nullptr;
}

const SerializedBdd* DeltaRegistry::find_base(
    const GlobalMemoKey& key) const {
  return find_base(key.input_ranks(), key.output_ranks());
}

const std::vector<std::uint32_t>* DeltaRegistry::find_order(
    const std::vector<std::uint32_t>& input_ranks,
    const std::vector<std::uint32_t>& output_ranks) const {
  for (const BaseEntry& base : bases_) {
    if (base.input_ranks == input_ranks &&
        base.output_ranks == output_ranks) {
      return base.order.empty() ? nullptr : &base.order;
    }
  }
  return nullptr;
}

DeltaRegistry::BaseEntry& DeltaRegistry::entry_for(
    std::span<const std::uint32_t> input_ranks,
    std::span<const std::uint32_t> output_ranks) {
  ++next_stamp_;
  for (BaseEntry& base : bases_) {
    if (ranks_equal(base.input_ranks, input_ranks) &&
        ranks_equal(base.output_ranks, output_ranks)) {
      base.stamp = next_stamp_;
      return base;
    }
  }
  if (bases_.size() >= capacity_) {
    const auto victim = std::min_element(
        bases_.begin(), bases_.end(),
        [](const BaseEntry& a, const BaseEntry& b) {
          return a.stamp < b.stamp;
        });
    bases_.erase(victim);
  }
  BaseEntry fresh;
  fresh.input_ranks.assign(input_ranks.begin(), input_ranks.end());
  fresh.output_ranks.assign(output_ranks.begin(), output_ranks.end());
  fresh.stamp = next_stamp_;
  bases_.push_back(std::move(fresh));
  return bases_.back();
}

void DeltaRegistry::remember(const GlobalMemoKey& key) {
  BaseEntry& base = entry_for(key.input_ranks(), key.output_ranks());
  base.chi = key.chi();
  base.has_chi = true;
}

void DeltaRegistry::remember_order(
    const std::vector<std::uint32_t>& input_ranks,
    const std::vector<std::uint32_t>& output_ranks,
    std::vector<std::uint32_t> order) {
  BaseEntry& base = entry_for(input_ranks, output_ranks);
  base.order = std::move(order);
}

bool resolve_incremental(bool configured) {
  const char* env = std::getenv("BREL_INCREMENTAL");
  if (env == nullptr) {
    return configured;
  }
  if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0) {
    return false;
  }
  if (std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0) {
    return true;
  }
  return configured;  // unknown value: keep the configured mode
}

}  // namespace brel
