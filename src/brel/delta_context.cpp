#include "brel/delta_context.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace brel {

const SerializedBdd* DeltaRegistry::find_base(
    const GlobalMemoKey& key) const {
  for (const BaseEntry& base : bases_) {
    if (base.input_ranks == key.input_ranks &&
        base.output_ranks == key.output_ranks) {
      return &base.chi;
    }
  }
  return nullptr;
}

void DeltaRegistry::remember(const GlobalMemoKey& key) {
  ++next_stamp_;
  for (BaseEntry& base : bases_) {
    if (base.input_ranks == key.input_ranks &&
        base.output_ranks == key.output_ranks) {
      base.chi = key.chi;
      base.stamp = next_stamp_;
      return;
    }
  }
  if (bases_.size() >= capacity_) {
    const auto victim = std::min_element(
        bases_.begin(), bases_.end(),
        [](const BaseEntry& a, const BaseEntry& b) {
          return a.stamp < b.stamp;
        });
    bases_.erase(victim);
  }
  bases_.push_back(
      BaseEntry{key.input_ranks, key.output_ranks, key.chi, next_stamp_});
}

bool resolve_incremental(bool configured) {
  const char* env = std::getenv("BREL_INCREMENTAL");
  if (env == nullptr) {
    return configured;
  }
  if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0) {
    return false;
  }
  if (std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0) {
    return true;
  }
  return configured;  // unknown value: keep the configured mode
}

}  // namespace brel
