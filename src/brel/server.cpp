#include "brel/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <list>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "brel/lock_stats.hpp"
#include "brel/memo_exchange.hpp"
#include "brel/memo_snapshot.hpp"

namespace brel {

namespace wire {
namespace {

/// Poll tick while waiting for bytes: bounds how stale the `stop` flag
/// can get, so a drain never waits on an idle connection for longer
/// than this.
constexpr int kPollMs = 100;

/// Send all of [data, data+len); MSG_NOSIGNAL so a vanished peer is a
/// return code, not a SIGPIPE.
bool send_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += static_cast<std::size_t>(n);
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Receive exactly `len` bytes (or consume them when `sink` is null).
/// `stop` aborts only between chunks when `abortable` — used for the
/// header wait; payloads are always finished to keep the stream framed.
enum class RecvStatus { Ok, Eof, Error, Stopped };

RecvStatus recv_exact(int fd, char* sink, std::size_t len,
                      const std::atomic<bool>* stop, bool abortable) {
  char discard[4096];
  std::size_t got = 0;
  while (got < len) {
    pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, kPollMs);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return RecvStatus::Error;
    }
    if (pr == 0) {
      // Idle tick.  Honor `stop` only here — with NO bytes pending and
      // none of this message read — so a frame already in flight (or
      // already buffered, e.g. sent just before a drain began) is still
      // read in full and gets its reply (SHUTDOWN, during a drain)
      // instead of a silently closed connection.
      if (abortable && got == 0 && stop != nullptr &&
          stop->load(std::memory_order_acquire)) {
        return RecvStatus::Stopped;
      }
      continue;
    }
    char* dst = sink != nullptr ? sink + got : discard;
    const std::size_t want =
        sink != nullptr ? len - got : std::min(len - got, sizeof discard);
    const ssize_t n = ::recv(fd, dst, want, 0);
    if (n == 0) return got == 0 ? RecvStatus::Eof : RecvStatus::Error;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return RecvStatus::Error;
    }
    got += static_cast<std::size_t>(n);
  }
  return RecvStatus::Ok;
}

}  // namespace

bool write_frame(int fd, const std::string& payload) {
  // Responses are not bounded by max_frame_bytes; a body the 32-bit
  // length prefix cannot express must fail the write, not silently
  // truncate the prefix and desynchronize the peer's framing.
  if (payload.size() > UINT32_MAX) return false;
  const auto len = static_cast<std::uint32_t>(payload.size());
  char header[4] = {static_cast<char>(len >> 24), static_cast<char>(len >> 16),
                    static_cast<char>(len >> 8), static_cast<char>(len)};
  // Small frames go out in ONE send: a separate 4-byte header write
  // interacts with Nagle + delayed ACK into a ~40ms stall per direction
  // — invisible while the solve dominates, but it would put a hard
  // floor under memo-warm round trips.  (Connected sockets also set
  // TCP_NODELAY; belt and suspenders, since callers may hand us fds
  // from elsewhere.)
  constexpr std::size_t kCoalesceBytes = 1u << 16;
  if (payload.size() <= kCoalesceBytes) {
    std::string frame;
    frame.reserve(sizeof header + payload.size());
    frame.append(header, sizeof header);
    frame.append(payload);
    return send_all(fd, frame.data(), frame.size());
  }
  return send_all(fd, header, sizeof header) &&
         send_all(fd, payload.data(), payload.size());
}

ReadStatus read_frame(int fd, std::string& payload, std::size_t max_bytes,
                      const std::atomic<bool>* stop) {
  char header[4];
  switch (recv_exact(fd, header, sizeof header, stop, /*abortable=*/true)) {
    case RecvStatus::Ok:
      break;
    case RecvStatus::Eof:
    case RecvStatus::Stopped:
      return ReadStatus::Eof;
    case RecvStatus::Error:
      return ReadStatus::Error;
  }
  const std::uint32_t len =
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[0])) << 24) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[1])) << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[2])) << 8) |
      static_cast<std::uint32_t>(static_cast<unsigned char>(header[3]));
  if (len > max_bytes) {
    // Drain the oversized payload so the next frame starts aligned.
    if (recv_exact(fd, nullptr, len, stop, /*abortable=*/false) !=
        RecvStatus::Ok) {
      return ReadStatus::Error;
    }
    payload.clear();
    return ReadStatus::Oversize;
  }
  payload.resize(len);
  if (len > 0 &&
      recv_exact(fd, payload.data(), len, stop, /*abortable=*/false) !=
          RecvStatus::Ok) {
    return ReadStatus::Error;
  }
  return ReadStatus::Ok;
}

int connect_tcp(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return -1;
  }
  // Request/reply traffic in small frames: never trade latency for
  // segment count (cf. the Nagle note in write_frame).
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

}  // namespace wire

namespace {

/// One accepted connection: its service thread plus the flag the
/// listener uses to reap finished threads without blocking on live ones.
struct Conn {
  std::thread thread;
  std::atomic<bool> done{false};
};

[[nodiscard]] int listen_on(const std::string& host, std::uint16_t port,
                            std::uint16_t& bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("server: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("server: bad bind address " + host);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 128) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("server: bind/listen failed: ") +
                             std::strerror(err));
  }
  sockaddr_in actual{};
  socklen_t alen = sizeof actual;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &alen) != 0) {
    ::close(fd);
    throw std::runtime_error("server: getsockname failed");
  }
  bound_port = ntohs(actual.sin_port);
  return fd;
}

}  // namespace

struct Server::Impl {
  explicit Impl(ServerOptions opts_in)
      : opts(std::move(opts_in)), pool(opts.pool) {
    if (opts.resume_pending == static_cast<std::size_t>(-1)) {
      opts.resume_pending = opts.max_pending / 2;
    }
    if (opts.resume_pending >= opts.max_pending && opts.max_pending > 0) {
      opts.resume_pending = opts.max_pending - 1;
    }
    if (opts.latency_ring == 0) opts.latency_ring = 1;
    latency_ring.assign(opts.latency_ring, 0);
  }

  ServerOptions opts;
  SolverPool pool;

  int listen_fd = -1;
  int metrics_fd = -1;
  std::uint16_t bound_port = 0;
  std::uint16_t bound_metrics_port = 0;
  bool started = false;
  bool waited = false;

  std::thread listener;
  std::thread metrics_listener;
  std::mutex conns_mutex;
  std::list<std::unique_ptr<Conn>> conns;

  std::atomic<bool> draining{false};

  // Counters (relaxed: they are monotone tallies, never coordination).
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> answered{0};
  std::atomic<std::uint64_t> rejected_busy{0};
  std::atomic<std::uint64_t> rejected_shutdown{0};
  std::atomic<std::uint64_t> timed_out{0};
  std::atomic<std::uint64_t> request_errors{0};
  std::atomic<std::uint64_t> protocol_errors{0};
  std::atomic<std::uint64_t> connections_opened{0};
  std::atomic<std::uint64_t> connections_open{0};
  std::atomic<std::uint64_t> memo_hits_total{0};
  std::atomic<std::uint64_t> reorders_total{0};
  std::atomic<std::uint64_t> delta_runs{0};
  std::atomic<std::uint64_t> delta_reused{0};
  std::atomic<std::uint64_t> delta_researched{0};
  std::atomic<std::uint64_t> peer_pulls_served{0};
  std::atomic<std::uint64_t> peer_pushes_received{0};

  /// Tier 2 (nullptr when no peers were configured).  Created in
  /// start() once the bound port is known (the default self identity),
  /// disconnected from the memo's hooks and stopped in wait() after the
  /// connection threads joined, BEFORE the pool drains.
  std::unique_ptr<MemoExchange> exchange;

  // Admission state (hysteresis; see admit()/release()).  Transitions
  // are serialized by `admission_mutex`; the atomics exist so gather()
  // and render_stats() can read without taking it.  Two independent
  // atomics are NOT enough here: a delayed admit() could observe
  // overload, lose the CPU while release() drained residency below the
  // low watermark (clearing `shedding`), and then store a stale
  // shedding=true with nothing in flight left to ever clear it —
  // permanent BUSY.  Under the mutex that interleaving cannot happen,
  // and admission is micro-seconds against multi-millisecond solves.
  std::mutex admission_mutex;
  std::atomic<std::size_t> inflight{0};
  std::atomic<bool> shedding{false};

  // Fixed ring of the most recent per-request latencies (µs).
  mutable std::mutex latency_mutex;
  std::vector<std::uint64_t> latency_ring;
  std::uint64_t latency_count = 0;

  std::chrono::steady_clock::time_point started_at{};

  /// Admit one SOLVE into residency, or return false (reply BUSY).
  /// While `shedding`, everything is rejected until release() drops
  /// residency to the low watermark — the hysteresis that keeps a
  /// saturating client from flapping admission open/closed per request.
  bool admit() {
    std::lock_guard<std::mutex> lk(admission_mutex);
    const std::size_t cur = inflight.load(std::memory_order_relaxed);
    if (shedding.load(std::memory_order_relaxed)) {
      if (cur > opts.resume_pending) return false;
      // Residency already reached the low watermark (belt-and-braces:
      // release() normally clears the flag itself) — reopen and admit.
      shedding.store(false, std::memory_order_relaxed);
    }
    if (cur >= opts.max_pending) {
      shedding.store(true, std::memory_order_relaxed);
      return false;
    }
    inflight.store(cur + 1, std::memory_order_relaxed);
    return true;
  }

  void release() {
    std::lock_guard<std::mutex> lk(admission_mutex);
    const std::size_t now = inflight.load(std::memory_order_relaxed) - 1;
    inflight.store(now, std::memory_order_relaxed);
    if (now <= opts.resume_pending) {
      shedding.store(false, std::memory_order_relaxed);
    }
  }

  void record_latency(std::uint64_t us) {
    std::lock_guard<std::mutex> lk(latency_mutex);
    latency_ring[latency_count % latency_ring.size()] = us;
    ++latency_count;
  }

  void fold_result_stats(const PoolResult& result) {
    memo_hits_total.fetch_add(result.stats.memo_hits,
                              std::memory_order_relaxed);
    reorders_total.fetch_add(result.stats.reorders, std::memory_order_relaxed);
    if (result.stats.delta_active) {
      delta_runs.fetch_add(1, std::memory_order_relaxed);
    }
    delta_reused.fetch_add(result.stats.delta_reused,
                           std::memory_order_relaxed);
    delta_researched.fetch_add(result.stats.delta_researched,
                               std::memory_order_relaxed);
  }

  [[nodiscard]] ServerMetrics gather() const {
    ServerMetrics m;
    m.accepted = accepted.load(std::memory_order_relaxed);
    m.answered = answered.load(std::memory_order_relaxed);
    m.rejected_busy = rejected_busy.load(std::memory_order_relaxed);
    m.rejected_shutdown = rejected_shutdown.load(std::memory_order_relaxed);
    m.timed_out = timed_out.load(std::memory_order_relaxed);
    m.request_errors = request_errors.load(std::memory_order_relaxed);
    m.protocol_errors = protocol_errors.load(std::memory_order_relaxed);
    m.connections_opened = connections_opened.load(std::memory_order_relaxed);
    m.connections_open = connections_open.load(std::memory_order_relaxed);
    m.queue_depth = pool.queue_depth();
    m.inflight = inflight.load(std::memory_order_relaxed);
    m.shedding = shedding.load(std::memory_order_relaxed);
    m.memo_hits_total = memo_hits_total.load(std::memory_order_relaxed);
    m.reorders = reorders_total.load(std::memory_order_relaxed);
    m.delta_runs = delta_runs.load(std::memory_order_relaxed);
    m.delta_reused = delta_reused.load(std::memory_order_relaxed);
    m.delta_researched = delta_researched.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(latency_mutex);
      m.latency_samples = latency_count;
      const std::size_t n = static_cast<std::size_t>(
          std::min<std::uint64_t>(latency_count, latency_ring.size()));
      if (n > 0) {
        std::vector<std::uint64_t> sorted(latency_ring.begin(),
                                          latency_ring.begin() +
                                              static_cast<std::ptrdiff_t>(n));
        std::sort(sorted.begin(), sorted.end());
        m.latency_p50_us = sorted[(n - 1) / 2];
        m.latency_p99_us = sorted[(n * 99) / 100 < n ? (n * 99) / 100 : n - 1];
      }
    }
    if (started) {
      m.uptime_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started_at)
              .count();
    }
    if (const auto& memo = pool.memo()) {
      m.memo_hits_run = memo->hits_from(MemoOrigin::kRun);
      m.memo_hits_snapshot = memo->hits_from(MemoOrigin::kSnapshot);
      m.memo_hits_peer = memo->hits_from(MemoOrigin::kPeer);
    }
    const MemoSnapshotInfo snap = pool.snapshot_info();
    m.snapshot_entries_loaded = snap.entries_loaded;
    m.snapshot_entries_saved = snap.entries_saved;
    if (snap.loaded_saved_at > 0) {
      const std::uint64_t now_unix = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::seconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count());
      m.snapshot_age_seconds = now_unix > snap.loaded_saved_at
                                   ? now_unix - snap.loaded_saved_at
                                   : 0;
    }
    if (exchange != nullptr) {
      const PeerExchangeStats ps = exchange->stats();
      m.peer_pulls = ps.pulls;
      m.peer_pull_hits = ps.pull_hits;
      m.peer_pull_failures = ps.pull_failures;
      m.peer_pushes = ps.pushes;
      m.peer_push_failures = ps.push_failures;
      m.peer_push_dropped = ps.push_dropped;
    }
    m.peer_pulls_served = peer_pulls_served.load(std::memory_order_relaxed);
    m.peer_pushes_received =
        peer_pushes_received.load(std::memory_order_relaxed);
    return m;
  }

  [[nodiscard]] std::string render_stats() const {
    const ServerMetrics m = gather();
    std::ostringstream os;
    os << "accepted " << m.accepted << '\n'
       << "answered " << m.answered << '\n'
       << "rejected_busy " << m.rejected_busy << '\n'
       << "rejected_shutdown " << m.rejected_shutdown << '\n'
       << "timed_out " << m.timed_out << '\n'
       << "request_errors " << m.request_errors << '\n'
       << "protocol_errors " << m.protocol_errors << '\n'
       << "connections_opened " << m.connections_opened << '\n'
       << "connections_open " << m.connections_open << '\n'
       << "queue_depth " << m.queue_depth << '\n'
       << "inflight " << m.inflight << '\n'
       << "shedding " << (m.shedding ? 1 : 0) << '\n'
       << "workers " << pool.worker_count() << '\n';
    if (const auto& memo = pool.memo()) {
      const std::uint64_t probes = memo->probes();
      const std::uint64_t hits = memo->hits();
      os << "memo_entries " << memo->size() << '\n'
         << "memo_probes " << probes << '\n'
         << "memo_hits " << hits << '\n';
      char rate[32];
      std::snprintf(rate, sizeof rate, "%.4f",
                    probes > 0 ? static_cast<double>(hits) /
                                     static_cast<double>(probes)
                               : 0.0);
      os << "memo_hit_rate " << rate << '\n';
    }
    os << "memo_hits_served " << m.memo_hits_total << '\n'
       << "memo_hits_run " << m.memo_hits_run << '\n'
       << "memo_hits_snapshot " << m.memo_hits_snapshot << '\n'
       << "memo_hits_peer " << m.memo_hits_peer << '\n'
       << "snapshot_entries_loaded " << m.snapshot_entries_loaded << '\n'
       << "snapshot_entries_saved " << m.snapshot_entries_saved << '\n'
       << "snapshot_age_seconds " << m.snapshot_age_seconds << '\n'
       << "peer_pulls " << m.peer_pulls << '\n'
       << "peer_pull_hits " << m.peer_pull_hits << '\n'
       << "peer_pull_failures " << m.peer_pull_failures << '\n'
       << "peer_pushes " << m.peer_pushes << '\n'
       << "peer_push_failures " << m.peer_push_failures << '\n'
       << "peer_push_dropped " << m.peer_push_dropped << '\n'
       << "peer_pulls_served " << m.peer_pulls_served << '\n'
       << "peer_pushes_received " << m.peer_pushes_received << '\n'
       << "reorders " << m.reorders << '\n'
       << "delta_runs " << m.delta_runs << '\n'
       << "delta_reused " << m.delta_reused << '\n'
       << "delta_researched " << m.delta_researched << '\n'
       << "lock_wait_memo_ns "
       << LockStatsRegistry::instance().wait_ns(lock_names::kMemo) << '\n'
       << "lock_wait_pool_ns "
       << LockStatsRegistry::instance().wait_ns(lock_names::kPool) << '\n'
       << "lock_wait_inject_ns "
       << LockStatsRegistry::instance().wait_ns(lock_names::kInject) << '\n'
       << "latency_samples " << m.latency_samples << '\n'
       << "latency_p50_us " << m.latency_p50_us << '\n'
       << "latency_p99_us " << m.latency_p99_us << '\n';
    char up[32];
    std::snprintf(up, sizeof up, "%.3f", m.uptime_seconds);
    os << "uptime_seconds " << up << '\n';
    return os.str();
  }

  /// Serve one SOLVE frame: admission, deadline mapping, pool round
  /// trip, framed reply.  `header_args` is everything after "SOLVE" on
  /// the request's first line; `body` the relation text.
  void handle_solve(int fd, const std::string& header_args, std::string body,
                    std::chrono::steady_clock::time_point received) {
    if (draining.load(std::memory_order_acquire)) {
      rejected_shutdown.fetch_add(1, std::memory_order_relaxed);
      (void)wire::write_frame(fd, "SHUTDOWN draining");
      return;
    }

    RequestOptions request;
    if (opts.default_deadline.count() > 0) {
      request.deadline = received + opts.default_deadline;
    }
    std::istringstream args(header_args);
    std::string tok;
    while (args >> tok) {
      if (tok.rfind("deadline_ms=", 0) == 0) {
        // strtoull alone is not a validator: it accepts "-5" (wrapping
        // it to a huge value), and values past the cap would overflow
        // the steady_clock representation in `received + ms` — so
        // reject sign characters, ERANGE, and anything above 24h.
        constexpr unsigned long long kMaxDeadlineMs = 24ull * 60 * 60 * 1000;
        const char* value = tok.c_str() + 12;
        char* end = nullptr;
        errno = 0;
        const unsigned long long ms = std::strtoull(value, &end, 10);
        if (value[0] < '0' || value[0] > '9' || end == nullptr ||
            *end != '\0' || errno == ERANGE || ms > kMaxDeadlineMs) {
          protocol_errors.fetch_add(1, std::memory_order_relaxed);
          (void)wire::write_frame(fd, "ERROR bad deadline_ms value");
          return;
        }
        request.deadline =
            received + std::chrono::milliseconds(static_cast<long long>(ms));
      } else if (tok == "priority=interactive") {
        request.priority = RequestPriority::Interactive;
      } else if (tok == "priority=batch") {
        request.priority = RequestPriority::Batch;
      } else {
        protocol_errors.fetch_add(1, std::memory_order_relaxed);
        (void)wire::write_frame(fd, "ERROR unknown SOLVE option: " + tok);
        return;
      }
    }
    if (body.empty()) {
      protocol_errors.fetch_add(1, std::memory_order_relaxed);
      (void)wire::write_frame(fd, "ERROR empty relation body");
      return;
    }

    if (!admit()) {
      rejected_busy.fetch_add(1, std::memory_order_relaxed);
      (void)wire::write_frame(fd, "BUSY");
      return;
    }
    accepted.fetch_add(1, std::memory_order_relaxed);

    std::string reply;
    bool timeout_reply = false;
    bool error_reply = false;
    try {
      auto future = pool.submit(std::move(body), request);
      const PoolResult result = future.get();
      fold_result_stats(result);
      timeout_reply = result.deadline_expired;
      std::ostringstream os;
      char cost[64];
      std::snprintf(cost, sizeof cost, "%.17g", result.cost);
      os << (timeout_reply ? "TIMEOUT" : "OK") << " cost=" << cost
         << " explored=" << result.stats.relations_explored
         << " memo_hits=" << result.stats.memo_hits
         << " worker=" << result.worker_id
         << " queue_us=" << result.queue_ns / 1000 << '\n';
      write_portable_solution(os, result.solution);
      reply = os.str();
    } catch (const std::exception& e) {
      error_reply = true;
      reply = std::string("ERROR ") + e.what();
    }

    // The answer is produced and the write attempted before residency is
    // released — accepted == answered is the drain invariant; a reply the
    // CLIENT abandoned (write failure) still counts as answered.
    if (timeout_reply) timed_out.fetch_add(1, std::memory_order_relaxed);
    if (error_reply) request_errors.fetch_add(1, std::memory_order_relaxed);
    (void)wire::write_frame(fd, reply);
    record_latency(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - received)
            .count()));
    answered.fetch_add(1, std::memory_order_relaxed);
    release();
  }

  /// Validate the fingerprint preamble of a MEMO_PULL/MEMO_PUSH body
  /// against the pool memo's.  Writes the ERROR reply itself on any
  /// mismatch and returns false.  Exchange verbs bypass admission
  /// control — they are bounded local map operations, not solves, and
  /// shedding them would starve exactly the warm-up that relieves load.
  bool check_exchange_preamble(int fd, std::istream& in) {
    const auto& memo = pool.memo();
    if (memo == nullptr) {
      protocol_errors.fetch_add(1, std::memory_order_relaxed);
      (void)wire::write_frame(fd, "ERROR no memo on this server");
      return false;
    }
    const std::optional<MemoFingerprint> theirs = read_memo_fingerprint(in);
    if (!theirs.has_value()) {
      protocol_errors.fetch_add(1, std::memory_order_relaxed);
      (void)wire::write_frame(fd, "ERROR malformed memo fingerprint");
      return false;
    }
    // Compare against the POOL'S configured objective, not the memo's
    // current binding: the fingerprint is static config, and a fresh
    // server must accept exchange traffic before its first solve binds
    // the memo.  A still-unbound memo adopts the (matching) fingerprint
    // here — bind() is idempotent and our own solves bind the same one.
    const MemoFingerprint ours{opts.pool.solver.cost.id(),
                               opts.pool.solver.exact};
    if (!(ours == *theirs)) {
      // Not a protocol error: both sides speak the protocol, they just
      // serve different objectives — reuse between them is unsound.
      (void)wire::write_frame(fd, "ERROR memo fingerprint mismatch");
      return false;
    }
    memo->bind(ours);
    return true;
  }

  /// MEMO_PULL: body is fingerprint preamble + one canonical key; the
  /// reply is "OK entry\n" + the export-policy record, or MISS.  Answers
  /// from the LOCAL memo only (export_entry, never lookup) — a miss here
  /// must not fault to OUR peers, or two servers could pull each other
  /// in a cycle.
  void handle_memo_pull(int fd, const std::string& body) {
    std::istringstream in(body);
    if (!check_exchange_preamble(fd, in)) {
      return;
    }
    try {
      const GlobalMemoKey key = read_memo_key(in);
      const std::optional<MemoExportEntry> entry =
          pool.memo()->export_entry(key);
      if (!entry.has_value()) {
        (void)wire::write_frame(fd, "MISS");
        return;
      }
      std::ostringstream os;
      os << "OK entry\n";
      write_memo_entry(os, *entry);
      peer_pulls_served.fetch_add(1, std::memory_order_relaxed);
      (void)wire::write_frame(fd, os.str());
    } catch (const std::invalid_argument& e) {
      protocol_errors.fetch_add(1, std::memory_order_relaxed);
      (void)wire::write_frame(fd, std::string("ERROR ") + e.what());
    }
  }

  /// MEMO_PUSH: body is fingerprint preamble + one export-policy record;
  /// install it (the codec already rejects any shape outside the export
  /// policy, so a partial/tainted record cannot enter here either).
  void handle_memo_push(int fd, const std::string& body) {
    std::istringstream in(body);
    if (!check_exchange_preamble(fd, in)) {
      return;
    }
    try {
      const MemoExportEntry entry = read_memo_entry(in);
      (void)pool.memo()->install(entry, MemoOrigin::kPeer);
      peer_pushes_received.fetch_add(1, std::memory_order_relaxed);
      (void)wire::write_frame(fd, "OK installed");
    } catch (const std::invalid_argument& e) {
      protocol_errors.fetch_add(1, std::memory_order_relaxed);
      (void)wire::write_frame(fd, std::string("ERROR ") + e.what());
    }
  }

  void serve_connection(int fd) {
    std::string payload;
    for (;;) {
      const wire::ReadStatus rs =
          wire::read_frame(fd, payload, opts.max_frame_bytes, &draining);
      if (rs == wire::ReadStatus::Eof || rs == wire::ReadStatus::Error) break;
      if (rs == wire::ReadStatus::Oversize) {
        protocol_errors.fetch_add(1, std::memory_order_relaxed);
        if (!wire::write_frame(fd, "ERROR frame exceeds max_frame_bytes")) {
          break;
        }
        continue;
      }
      const auto received = std::chrono::steady_clock::now();
      const std::size_t nl = payload.find('\n');
      const std::string header =
          nl == std::string::npos ? payload : payload.substr(0, nl);
      std::string body =
          nl == std::string::npos ? std::string() : payload.substr(nl + 1);

      if (header == "PING") {
        if (!wire::write_frame(fd, "OK ping")) break;
      } else if (header == "STATS") {
        if (!wire::write_frame(fd, "OK stats\n" + render_stats())) break;
      } else if (header == "SOLVE" || header.rfind("SOLVE ", 0) == 0) {
        handle_solve(fd, header.size() > 5 ? header.substr(6) : std::string(),
                     std::move(body), received);
      } else if (header == "MEMO_PULL") {
        handle_memo_pull(fd, body);
      } else if (header == "MEMO_PUSH") {
        handle_memo_push(fd, body);
      } else {
        protocol_errors.fetch_add(1, std::memory_order_relaxed);
        const std::string verb = header.substr(0, header.find(' '));
        if (!wire::write_frame(fd, "ERROR unknown request: " + verb)) break;
      }
    }
    ::close(fd);
    connections_open.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Join and drop connections whose threads already finished (bounds
  /// the list by the CONCURRENT connection count, not the lifetime
  /// total).  Caller must hold conns_mutex.
  void reap_finished_locked() {
    for (auto it = conns.begin(); it != conns.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        (*it)->thread.join();
        it = conns.erase(it);
      } else {
        ++it;
      }
    }
  }

  void listener_loop() {
    for (;;) {
      pollfd pfd{listen_fd, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, wire::kPollMs);
      if (draining.load(std::memory_order_acquire)) break;
      if (pr <= 0) {
        // Idle tick: reap here too, so a burst followed by quiet does
        // not leave exited-but-unjoined threads lingering until the
        // next accept (or shutdown).
        std::lock_guard<std::mutex> lk(conns_mutex);
        reap_finished_locked();
        continue;
      }
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) continue;
      // Reply latency over segment count (cf. write_frame's Nagle note).
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      connections_opened.fetch_add(1, std::memory_order_relaxed);
      connections_open.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lk(conns_mutex);
      reap_finished_locked();
      auto conn = std::make_unique<Conn>();
      Conn* raw = conn.get();
      conn->thread = std::thread([this, fd, raw] {
        serve_connection(fd);
        raw->done.store(true, std::memory_order_release);
      });
      conns.push_back(std::move(conn));
    }
    ::close(listen_fd);
    listen_fd = -1;
  }

  void metrics_loop() {
    for (;;) {
      pollfd pfd{metrics_fd, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, wire::kPollMs);
      if (draining.load(std::memory_order_acquire)) break;
      if (pr <= 0) continue;
      const int fd = ::accept(metrics_fd, nullptr, nullptr);
      if (fd < 0) continue;
      const std::string text = render_stats();
      (void)wire::send_all(fd, text.data(), text.size());
      ::close(fd);
    }
    ::close(metrics_fd);
    metrics_fd = -1;
  }
};

Server::Server(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() {
  begin_drain();
  wait();
}

void Server::start() {
  Impl& im = *impl_;
  if (im.started) throw std::runtime_error("server: already started");
  im.listen_fd = listen_on(im.opts.host, im.opts.port, im.bound_port);
  if (im.opts.metrics_port >= 0) {
    try {
      im.metrics_fd =
          listen_on(im.opts.host,
                    static_cast<std::uint16_t>(im.opts.metrics_port),
                    im.bound_metrics_port);
    } catch (...) {
      // No listener thread owns listen_fd yet — close it here or leak.
      ::close(im.listen_fd);
      im.listen_fd = -1;
      throw;
    }
  }
  // Tier-2 hookup, after binding (the default self identity needs the
  // resolved port) and before any traffic: root misses fault through the
  // exchange, fresh completions feed its push queue.
  if (!im.opts.memo_peers.empty() && im.pool.memo() != nullptr) {
    PeerExchangeOptions px;
    px.self = im.opts.memo_self.empty()
                  ? im.opts.host + ':' + std::to_string(im.bound_port)
                  : im.opts.memo_self;
    px.peers = im.opts.memo_peers;
    px.pull_timeout_ms = im.opts.memo_pull_timeout_ms;
    im.exchange = std::make_unique<MemoExchange>(*im.pool.memo(), px);
    im.exchange->start();
    im.pool.memo()->set_fault_tier(im.exchange.get());
    im.pool.memo()->set_complete_listener(
        [ex = im.exchange.get()](const GlobalMemoKey& key) {
          ex->enqueue_push(key);
        });
  }
  im.started = true;
  im.started_at = std::chrono::steady_clock::now();
  im.listener = std::thread([&im] { im.listener_loop(); });
  if (im.metrics_fd >= 0) {
    im.metrics_listener = std::thread([&im] { im.metrics_loop(); });
  }
}

std::uint16_t Server::port() const noexcept { return impl_->bound_port; }

std::uint16_t Server::metrics_port() const noexcept {
  return impl_->bound_metrics_port;
}

void Server::begin_drain() {
  impl_->draining.store(true, std::memory_order_release);
}

void Server::wait() {
  Impl& im = *impl_;
  if (im.waited || !im.started) return;
  im.waited = true;
  begin_drain();
  if (im.listener.joinable()) im.listener.join();
  if (im.metrics_listener.joinable()) im.metrics_listener.join();
  // The listener is gone, so the connection list is frozen; joining it
  // waits for every accepted request's answer (a connection thread only
  // exits after writing the replies of everything it admitted).
  for (;;) {
    std::unique_ptr<Conn> conn;
    {
      std::lock_guard<std::mutex> lk(im.conns_mutex);
      if (im.conns.empty()) break;
      conn = std::move(im.conns.front());
      im.conns.pop_front();
    }
    conn->thread.join();
  }
  // Exchange teardown between the connection drain and the pool drain:
  // disconnect the memo's hooks first (no worker may fault into a
  // stopped exchange), then join the push thread.  The pool's shutdown
  // below — including the tier-1 snapshot flush — runs with tier 2
  // fully quiesced, so the drain order is answer → stop gossip → flush.
  if (im.exchange != nullptr) {
    if (const auto& memo = im.pool.memo()) {
      memo->set_fault_tier(nullptr);
      memo->set_complete_listener(nullptr);
    }
    im.exchange->stop();
  }
  im.pool.shutdown();
}

ServerMetrics Server::metrics() const { return impl_->gather(); }

std::string Server::stats_text() const { return impl_->render_stats(); }

}  // namespace brel
