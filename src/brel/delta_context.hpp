#pragma once
/// \file delta_context.hpp
/// Incremental re-solve support: remember the characteristic of the last
/// solved relation per variable space so the next solve of a *nearly*
/// identical relation can diff against it and reuse every untouched
/// subtree.
///
/// The mechanism (DESIGN.md §incremental): when a run starts and its
/// root misses the GlobalMemo, the engine asks its DeltaRegistry for the
/// most recent base relation over the same input/output rank spaces.
/// The base characteristic is materialized in the solving manager
/// (import_canonical_bdd) and the run carries delta = chi_new XOR
/// chi_base down the recursive decomposition: Split constrains both
/// relations identically (relation.hpp split_removals), so constraining
/// the root XOR by the same path yields the XOR of the two subproblems
/// at that path.  A ZERO delta cofactor therefore proves the subproblem
/// is byte-identical to the base run's — its depth-indexed GlobalMemo
/// entry (global_memo.hpp) is exact for this prober, and the memo probe
/// the engine performs anyway serves it without re-search.  The delta
/// itself never decides reuse (the memo's completeness protocol does);
/// it classifies subtrees for the `# delta:` observability counters and
/// pays for itself by explaining *why* a warm-delta solve explores only
/// the changed region.
///
/// Threading: a DeltaRegistry belongs to ONE embedder thread (a pool
/// slot's worker_loop, or the CLI main thread).  It stores only plain
/// rank-form data — no Bdd handles — so it survives the pool's slot
/// recycling protocol (reset_variables between requests) untouched.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "brel/global_memo.hpp"

namespace brel {

/// Per-embedder memory of previously solved root relations in canonical
/// rank form, keyed by their input/output rank spaces.  Small: one base
/// per space signature, a handful of signatures (LRU beyond capacity).
class DeltaRegistry {
 public:
  static constexpr std::size_t kDefaultCapacity = 8;

  explicit DeltaRegistry(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// The most recent base characteristic solved over the same rank
  /// spaces as `key`, or nullptr.  The pointer is owned by the registry
  /// and invalidated by the next remember().
  [[nodiscard]] const SerializedBdd* find_base(
      const GlobalMemoKey& key) const;
  /// Rank-list form of find_base, for probers holding a HASHED lazy key
  /// (the signature is in the MemoSpace; no materialization needed to
  /// learn whether a base exists).
  [[nodiscard]] const SerializedBdd* find_base(
      std::span<const std::uint32_t> input_ranks,
      std::span<const std::uint32_t> output_ranks) const;

  /// Record `key` (a solved root in canonical rank form) as the base
  /// for its spaces, replacing any previous base of the same spaces and
  /// evicting the least-recently refreshed signature beyond capacity.
  void remember(const GlobalMemoKey& key);

  /// The block order (relation_io's `.order` grammar: the rank at each
  /// level) the last same-signature solve drained with, or nullptr.
  /// Pool slots seed a recycled variable block with this via
  /// read_relation's order_hint, so a warm re-solve starts at the order
  /// the previous solve sifted into instead of re-discovering it.
  /// Invalidated by the next remember_order()/remember().
  [[nodiscard]] const std::vector<std::uint32_t>* find_order(
      const std::vector<std::uint32_t>& input_ranks,
      const std::vector<std::uint32_t>& output_ranks) const;

  /// Record the drained solve's block order for its signature (empty =
  /// identity; remembered too, so a solve that sifted AWAY from a
  /// previously remembered order clears the stale hint).  Shares the
  /// signature entries (and their LRU) with the delta bases; an
  /// order-only entry never serves find_base.
  void remember_order(const std::vector<std::uint32_t>& input_ranks,
                      const std::vector<std::uint32_t>& output_ranks,
                      std::vector<std::uint32_t> order);

  [[nodiscard]] std::size_t size() const noexcept { return bases_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct BaseEntry {
    std::vector<std::uint32_t> input_ranks;
    std::vector<std::uint32_t> output_ranks;
    SerializedBdd chi;
    bool has_chi = false;  ///< false while the entry only holds an order
    /// Last drained solve's block order over these spaces (empty =
    /// identity / unknown).
    std::vector<std::uint32_t> order;
    std::uint64_t stamp = 0;  ///< recency (higher = fresher)
  };

  /// The entry for (input_ranks, output_ranks), created (with LRU
  /// eviction) if absent; refreshes the recency stamp.
  BaseEntry& entry_for(std::span<const std::uint32_t> input_ranks,
                       std::span<const std::uint32_t> output_ranks);

  std::size_t capacity_;
  std::uint64_t next_stamp_ = 0;
  std::vector<BaseEntry> bases_;  ///< linear scan; capacity is tiny
};

/// Incremental-mode policy resolution, mirroring resolve_reorder_mode:
/// the BREL_INCREMENTAL environment variable ("1"/"on" force-arms,
/// "0"/"off" force-disarms) overrides `configured`, so CI can exercise
/// the delta path across every suite without per-call plumbing.
[[nodiscard]] bool resolve_incremental(bool configured);

}  // namespace brel
