#include "brel/global_memo.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace brel {

namespace {

/// Remap a serialized BDD's variables through `table` (var → rank or
/// rank → var).  Both directions are strictly monotone over the
/// relation's variables, so the node list remains a valid ordered BDD.
SerializedBdd remap_vars(SerializedBdd s,
                         const std::vector<std::uint32_t>& table,
                         std::uint32_t unmapped_sentinel) {
  s.num_vars = 0;
  for (SerializedBdd::Node& node : s.nodes) {
    if (node.var >= table.size() || table[node.var] == unmapped_sentinel) {
      throw std::logic_error(
          "GlobalMemo: BDD depends on a variable outside the relation's "
          "input/output spaces");
    }
    node.var = table[node.var];
    s.num_vars = std::max(s.num_vars, node.var + 1);
  }
  return s;
}

/// 64-bit FNV-1a over the words of a key.
struct Fnv {
  std::uint64_t state = 14695981039346656037ull;

  void feed(std::uint64_t word) noexcept {
    state ^= word;
    state *= 1099511628211ull;
  }
  void feed_list(const std::vector<std::uint32_t>& list) noexcept {
    feed(list.size());
    for (const std::uint32_t v : list) {
      feed(v);
    }
  }
};

constexpr std::size_t kUnlimited = static_cast<std::size_t>(-1);

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

std::size_t resolve_shard_count(std::size_t capacity, std::size_t shards) {
  if (shards == 0) {
    // Auto policy: shard the unlimited (service) configuration; keep a
    // finite capacity on one shard for exact global-LRU semantics.
    shards = capacity == kUnlimited ? GlobalMemo::kDefaultShards : 1;
  }
  return std::min(round_up_pow2(shards), GlobalMemo::kMaxShards);
}

std::size_t resolve_shard_capacity(std::size_t capacity,
                                   std::size_t shard_count) {
  if (capacity == kUnlimited) {
    return kUnlimited;
  }
  return (capacity + shard_count - 1) / shard_count;  // ceil; 0 stays 0
}

}  // namespace

MemoSpace make_memo_space(const BooleanRelation& r) {
  MemoSpace space;
  space.sorted_vars.reserve(r.num_inputs() + r.num_outputs());
  space.sorted_vars.insert(space.sorted_vars.end(), r.inputs().begin(),
                           r.inputs().end());
  space.sorted_vars.insert(space.sorted_vars.end(), r.outputs().begin(),
                           r.outputs().end());
  std::sort(space.sorted_vars.begin(), space.sorted_vars.end());
  space.rank_of.assign(r.manager().num_vars(), MemoSpace::kUnranked);
  for (std::size_t rank = 0; rank < space.sorted_vars.size(); ++rank) {
    space.rank_of[space.sorted_vars[rank]] =
        static_cast<std::uint32_t>(rank);
  }
  space.input_ranks.reserve(r.num_inputs());
  for (const std::uint32_t v : r.inputs()) {
    space.input_ranks.push_back(space.rank_of[v]);
  }
  space.output_ranks.reserve(r.num_outputs());
  for (const std::uint32_t v : r.outputs()) {
    space.output_ranks.push_back(space.rank_of[v]);
  }
  return space;
}

GlobalMemoKey make_memo_key(const MemoSpace& space, const Bdd& chi) {
  GlobalMemoKey key;
  key.chi = remap_vars(serialize_bdd(chi), space.rank_of,
                       MemoSpace::kUnranked);
  key.input_ranks = space.input_ranks;
  key.output_ranks = space.output_ranks;
  return key;
}

PortableSolution make_portable_solution(const MemoSpace& space,
                                        const MultiFunction& f,
                                        double cost) {
  PortableSolution out;
  out.outputs.reserve(f.outputs.size());
  for (const Bdd& g : f.outputs) {
    out.outputs.push_back(
        remap_vars(serialize_bdd(g), space.rank_of, MemoSpace::kUnranked));
  }
  out.cost = cost;
  return out;
}

MultiFunction import_portable_solution(BddManager& mgr,
                                       const MemoSpace& space,
                                       const PortableSolution& s) {
  MultiFunction f;
  f.outputs.reserve(s.outputs.size());
  for (const SerializedBdd& g : s.outputs) {
    // Inverse remap (rank → manager variable) is monotone too, so the
    // rebuilt function has the destination's canonical structure.
    f.outputs.push_back(mgr.deserialize_bdd(
        remap_vars(g, space.sorted_vars, MemoSpace::kUnranked)));
  }
  return f;
}

Bdd import_canonical_bdd(BddManager& mgr, const MemoSpace& space,
                         const SerializedBdd& s) {
  return mgr.deserialize_bdd(
      remap_vars(s, space.sorted_vars, MemoSpace::kUnranked));
}

void write_portable_solution(std::ostream& os, const PortableSolution& s) {
  // %.17g-precision cost so the round trip is bit-faithful for every
  // double a cost function can produce (cf. support_balance_cost's id).
  char cost_text[64];
  std::snprintf(cost_text, sizeof(cost_text), "%.17g", s.cost);
  os << ".cost " << cost_text << '\n';
  os << ".outputs " << s.outputs.size() << '\n';
  for (const SerializedBdd& g : s.outputs) {
    os << ".bdd " << g.nodes.size() << '\n';
    write_serialized_bdd(os, g);
  }
}

PortableSolution read_portable_solution(std::istream& in) {
  const auto fail = [](const char* what) {
    throw std::invalid_argument(std::string("read_portable_solution: ") +
                                what);
  };
  // Same sanity ceilings as relation_io's `.bdd` parser: a lying header
  // must fail loudly, never allocate unbounded memory.
  constexpr std::size_t kMaxOutputs = 1u << 16;
  constexpr std::size_t kMaxNodes = 1u << 28;
  std::string keyword;
  PortableSolution out;
  std::string cost_text;
  if (!(in >> keyword) || keyword != ".cost" || !(in >> cost_text)) {
    fail("malformed .cost line");
  }
  // strtod, not stream extraction: num_get refuses "inf"/"nan", and an
  // empty best-so-far (deadline-expired) solution carries cost = inf.
  char* cost_end = nullptr;
  out.cost = std::strtod(cost_text.c_str(), &cost_end);
  if (cost_end == cost_text.c_str() || *cost_end != '\0') {
    fail("malformed .cost value");
  }
  std::size_t output_count = 0;
  if (!(in >> keyword) || keyword != ".outputs" || !(in >> output_count)) {
    fail("malformed .outputs line");
  }
  if (output_count > kMaxOutputs) {
    fail(".outputs declares too many outputs");
  }
  out.outputs.reserve(std::min<std::size_t>(output_count, 1u << 8));
  std::string line;
  std::getline(in, line);  // consume the rest of the .outputs line
  for (std::size_t o = 0; o < output_count; ++o) {
    if (!std::getline(in, line)) {
      fail("truncated output list");
    }
    std::istringstream header(line);
    std::size_t node_count = 0;
    std::string extra;
    if (!(header >> keyword) || keyword != ".bdd" ||
        !(header >> node_count)) {
      fail("malformed .bdd line");
    }
    if (header >> extra) {
      fail("trailing tokens on .bdd line");
    }
    if (node_count > kMaxNodes) {
      fail(".bdd declares too many nodes");
    }
    out.outputs.push_back(read_serialized_bdd(in, node_count));
  }
  if (in >> keyword) {
    fail("trailing tokens after the last output");
  }
  return out;
}

namespace {

/// Three-way lexicographic compare of rank-form serialized BDDs.  The
/// serializer emits a deterministic traversal of the canonical DAG, so
/// equal functions compare equal and distinct functions compare stably
/// in either direction — exactly the properties canonically_before
/// needs; the specific order is otherwise arbitrary.
int compare_serialized(const SerializedBdd& a, const SerializedBdd& b) {
  if (a.nodes.size() != b.nodes.size()) {
    return a.nodes.size() < b.nodes.size() ? -1 : 1;
  }
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    const SerializedBdd::Node& x = a.nodes[i];
    const SerializedBdd::Node& y = b.nodes[i];
    if (x.var != y.var) {
      return x.var < y.var ? -1 : 1;
    }
    if (x.hi != y.hi) {
      return x.hi < y.hi ? -1 : 1;
    }
    if (x.lo != y.lo) {
      return x.lo < y.lo ? -1 : 1;
    }
  }
  if (a.root != b.root) {
    return a.root < b.root ? -1 : 1;
  }
  if (a.num_vars != b.num_vars) {
    return a.num_vars < b.num_vars ? -1 : 1;
  }
  return 0;
}

}  // namespace

bool canonically_before(const PortableSolution& a,
                        const PortableSolution& b) {
  if (a.outputs.size() != b.outputs.size()) {
    // Unreachable for same-relation candidates; ordered for totality.
    return a.outputs.size() < b.outputs.size();
  }
  for (std::size_t o = 0; o < a.outputs.size(); ++o) {
    if (const int c = compare_serialized(a.outputs[o], b.outputs[o]);
        c != 0) {
      return c < 0;
    }
  }
  return false;
}

std::size_t GlobalMemo::KeyHash::operator()(const GlobalMemoKey& key) const {
  Fnv h;
  h.feed(key.chi.nodes.size());
  for (const SerializedBdd::Node& n : key.chi.nodes) {
    h.feed((static_cast<std::uint64_t>(n.var) << 32) ^ n.hi);
    h.feed(n.lo);
  }
  h.feed(key.chi.root);
  h.feed_list(key.input_ranks);
  h.feed_list(key.output_ranks);
  return static_cast<std::size_t>(h.state);
}

GlobalMemo::GlobalMemo(std::size_t capacity, std::size_t shards)
    : capacity_(capacity),
      shard_capacity_(
          resolve_shard_capacity(capacity,
                                 resolve_shard_count(capacity, shards))) {
  const std::size_t count = resolve_shard_count(capacity, shards);
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::size_t GlobalMemo::shard_of(const GlobalMemoKey& key) const noexcept {
  if (shards_.size() == 1) {
    return 0;
  }
  // Fibonacci-mix the FNV hash and pick TOP bits: the shard index must
  // not correlate with the map's bucket index, which consumes the same
  // hash from the bottom.
  const std::uint64_t mixed =
      static_cast<std::uint64_t>(KeyHash{}(key)) * 0x9E3779B97F4A7C15ull;
  return static_cast<std::size_t>(mixed >> 56) & (shards_.size() - 1);
}

std::size_t GlobalMemo::shard_size(std::size_t shard) const {
  const Shard& s = *shards_.at(shard);
  const std::scoped_lock lock(s.mutex);
  return s.map.size();
}

void GlobalMemo::bind(const MemoFingerprint& fp) {
  const std::scoped_lock lock(meta_mutex_);
  if (!fingerprint_.has_value()) {
    fingerprint_ = fp;
    return;
  }
  if (*fingerprint_ != fp) {
    throw std::invalid_argument(
        "GlobalMemo: memo was stamped for cost '" + fingerprint_->cost_id +
        "' (exact=" + (fingerprint_->exact ? "1" : "0") +
        ") and cannot serve a run with cost '" + fp.cost_id +
        "' or different mode — memoized solutions are only comparable "
        "under the configuration that produced them");
  }
}

std::optional<MemoHit> GlobalMemo::lookup_at(const GlobalMemoKey& key,
                                             std::uint64_t depth) const {
  const Shard& shard = *shards_[shard_of(key)];
  shard.probes.fetch_add(1, std::memory_order_relaxed);
  const std::scoped_lock lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    return std::nullopt;
  }
  // Any probe that finds the key counts as interest: refresh recency
  // even for entries still too incomplete to serve, so an in-progress
  // subtree is not the first thing the capacity bound throws away.
  touch(shard, it->second);
  const Entry& entry = it->second;
  if (!entry.complete || !entry.solution.has_solution()) {
    return std::nullopt;
  }
  // Depth validity (see the protocol): natural entries cover every
  // prober at or above their producing depth, truncated entries only
  // the exact depth whose remaining budget they reflect.
  const bool covers = entry.complete_truncated
                          ? depth == entry.complete_depth
                          : depth <= entry.complete_depth;
  if (!covers) {
    return std::nullopt;
  }
  shard.hits.fetch_add(1, std::memory_order_relaxed);
  return MemoHit{entry.solution, entry.complete_truncated};
}

std::optional<PortableSolution> GlobalMemo::lookup(
    const GlobalMemoKey& key) const {
  if (auto hit = lookup_at(key, 0)) {
    return std::move(hit->solution);
  }
  return std::nullopt;
}

MemoRunStamp GlobalMemo::begin_run() {
  // Plain atomics, no lock.  A publish racing with begin_run may land a
  // created_seq just above the start watermark — mark_complete then
  // falls back to the creator_run check and at worst SKIPS the mark,
  // the safe direction.
  return MemoRunStamp{run_counter_.fetch_add(1) + 1, insert_seq_.load()};
}

void GlobalMemo::publish(const GlobalMemoKey& key,
                         const PortableSolution& solution,
                         std::uint64_t run_id) {
  Shard& shard = *shards_[shard_of(key)];
  shard.publishes.fetch_add(1, std::memory_order_relaxed);
  const std::scoped_lock lock(shard.mutex);
  if (const auto it = shard.map.find(key); it != shard.map.end()) {
    // Improvements to present entries never evict; the completeness bit
    // is sticky (same-fingerprint runs only ever refine a completed
    // subtree result downward in cost).  Cost ties fall through to the
    // canonical order so the accumulated winner is independent of which
    // run/worker published first — a served entry must reproduce the
    // exact function a cold deterministic solve would keep.
    touch(shard, it->second);
    if (!it->second.solution.has_solution() ||
        solution.cost < it->second.solution.cost ||
        (solution.cost == it->second.solution.cost &&
         canonically_before(solution, it->second.solution))) {
      it->second.solution = solution;
    }
    return;
  }
  if (shard_capacity_ == 0) {
    return;
  }
  if (shard.map.size() >= shard_capacity_) {
    // LRU eviction, per shard: the victim is this shard's entry longest
    // untouched by any lookup/publish.
    const GlobalMemoKey* victim = shard.lru.back();
    shard.lru.pop_back();
    shard.map.erase(*victim);
    shard.evictions.fetch_add(1, std::memory_order_relaxed);
  }
  const auto it =
      shard.map
          .emplace(key, Entry{.solution = solution,
                              .creator_run = run_id,
                              .created_seq = insert_seq_.fetch_add(1) + 1,
                              .lru = shard.lru.end()})
          .first;
  shard.lru.push_front(&it->first);
  it->second.lru = shard.lru.begin();
}

void GlobalMemo::mark_complete(std::span<const MemoMark> marks,
                               const MemoRunStamp& stamp) {
  for (const MemoMark& mark : marks) {
    Shard& shard = *shards_[shard_of(*mark.key)];
    const std::scoped_lock lock(shard.mutex);
    if (const auto it = shard.map.find(*mark.key); it != shard.map.end()) {
      Entry& entry = it->second;
      // Only vouch for entries this run found already present or
      // created itself (possibly re-created after an eviction): an
      // entry created mid-run by a DIFFERENT run may hold only that
      // run's partial publishes, and completing it would serve a
      // degraded result forever.  Skipping merely costs the next
      // identical solve a re-exploration — the safe direction.
      const bool vouched =
          entry.created_seq <= stamp.start_seq ||
          (stamp.run_id != 0 && entry.creator_run == stamp.run_id);
      if (!vouched) {
        continue;
      }
      if (!entry.complete) {
        entry.complete = true;
        entry.complete_depth = mark.depth;
        entry.complete_truncated = mark.truncated;
      } else if (!mark.truncated) {
        // Upgrade only: a natural claim replaces a truncated one and a
        // deeper natural claim widens a shallower one.  A truncated
        // claim never narrows an existing mark — both claims are
        // individually sound, so we keep the wider.
        if (entry.complete_truncated) {
          entry.complete_depth = mark.depth;
          entry.complete_truncated = false;
        } else {
          entry.complete_depth = std::max(entry.complete_depth, mark.depth);
        }
      }
    }
  }
}

void GlobalMemo::mark_complete(
    std::span<const std::shared_ptr<const GlobalMemoKey>> keys,
    const MemoRunStamp& stamp) {
  std::vector<MemoMark> marks;
  marks.reserve(keys.size());
  for (const std::shared_ptr<const GlobalMemoKey>& key : keys) {
    marks.push_back(MemoMark{key, kAnyDepth, false});
  }
  mark_complete(std::span<const MemoMark>(marks), stamp);
}

std::size_t GlobalMemo::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const std::scoped_lock lock(shard->mutex);
    total += shard->map.size();
  }
  return total;
}

std::uint64_t GlobalMemo::hits() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->hits.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t GlobalMemo::probes() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->probes.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t GlobalMemo::publishes() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->publishes.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t GlobalMemo::evictions() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->evictions.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace brel
