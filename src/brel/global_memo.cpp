#include "brel/global_memo.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace brel {

namespace {

constexpr std::size_t kUnlimited = static_cast<std::size_t>(-1);

// Process-global identity counters (see the member-block comment in the
// header): created_seq values are the verification tokens handles carry
// across memo instances, so they must be unique process-wide, not
// per-memo.  begin_run() reads the same sequence for its watermark.
std::atomic<std::uint64_t> g_run_counter{0};
std::atomic<std::uint64_t> g_insert_seq{0};

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

std::size_t resolve_shard_count(std::size_t capacity, std::size_t shards) {
  if (shards == 0) {
    // Auto policy: shard the unlimited (service) configuration; keep a
    // finite capacity on one shard for exact global-LRU semantics.
    shards = capacity == kUnlimited ? GlobalMemo::kDefaultShards : 1;
  }
  return std::min(round_up_pow2(shards), GlobalMemo::kMaxShards);
}

std::size_t resolve_shard_capacity(std::size_t capacity,
                                   std::size_t shard_count) {
  if (capacity == kUnlimited) {
    return kUnlimited;
  }
  return (capacity + shard_count - 1) / shard_count;  // ceil; 0 stays 0
}

/// Does `candidate` beat `incumbent` under the publish rules (strictly
/// cheaper, or equal cost and canonically earlier, or incumbent empty)?
bool improves(const PortableSolution& candidate,
              const PortableSolution& incumbent) {
  if (!incumbent.has_solution()) {
    return candidate.has_solution();
  }
  return candidate.cost < incumbent.cost ||
         (candidate.cost == incumbent.cost &&
          canonically_before(candidate, incumbent));
}

}  // namespace

GlobalMemo::GlobalMemo(std::size_t capacity, std::size_t shards)
    : capacity_(capacity),
      shard_capacity_(
          resolve_shard_capacity(capacity,
                                 resolve_shard_count(capacity, shards))) {
  const std::size_t count = resolve_shard_count(capacity, shards);
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::size_t GlobalMemo::shard_of_hash(
    const CanonicalHash128& h) const noexcept {
  if (shards_.size() == 1) {
    return 0;
  }
  // TOP bits of the low word: the map's buckets consume the same word
  // from the bottom (Hash128Hasher), and the word is already a
  // splitmix64 digest, so the top byte is an independent uniform mix —
  // no extra multiply needed.
  return static_cast<std::size_t>(h.lo >> 56) & (shards_.size() - 1);
}

std::size_t GlobalMemo::shard_of(const GlobalMemoKey& key) const noexcept {
  return shard_of_hash(memo_key_hash128(key));
}

std::size_t GlobalMemo::shard_size(std::size_t shard) const {
  const Shard& s = *shards_.at(shard);
  const std::scoped_lock lock(s.mutex);
  return s.map.size();
}

void GlobalMemo::bind(const MemoFingerprint& fp) {
  const std::scoped_lock lock(meta_mutex_);
  if (!fingerprint_.has_value()) {
    fingerprint_ = fp;
    return;
  }
  if (*fingerprint_ != fp) {
    throw std::invalid_argument(
        "GlobalMemo: memo was stamped for cost '" + fingerprint_->cost_id +
        "' (exact=" + (fingerprint_->exact ? "1" : "0") +
        ") and cannot serve a run with cost '" + fp.cost_id +
        "' or different mode — memoized solutions are only comparable "
        "under the configuration that produced them");
  }
}

std::optional<MemoFingerprint> GlobalMemo::fingerprint() const {
  const std::scoped_lock lock(meta_mutex_);
  return fingerprint_;
}

GlobalMemo::Shard::Map::iterator GlobalMemo::find_verified(
    Shard& shard, std::unique_lock<TimedMutex>& lk,
    const LazyMemoKey& handle) const {
  for (;;) {
    const auto it = shard.map.find(handle.hash);
    if (it == shard.map.end()) {
      // The common case: a hash-only miss.  Nothing was serialized.
      return it;
    }
    Entry& entry = it->second;
    if (handle.verified_seq.load(std::memory_order_relaxed) ==
        entry.created_seq) {
      // This handle already compared equal against this exact entry
      // (created_seq is process-unique); skip even the word-compare.
      return it;
    }
    if (handle.materialized()) {
      if (handle.get() == *entry.key) {
        handle.verified_seq.store(entry.created_seq,
                                  std::memory_order_relaxed);
        return it;
      }
      shard.collisions.fetch_add(1, std::memory_order_relaxed);
      return shard.map.end();
    }
    // Candidate hit on a HASHED handle: materialize OUTSIDE the lock
    // (manager work never runs under a shard mutex) and re-find — the
    // entry may have been evicted or replaced while unlocked.
    lk.unlock();
    (void)handle.get();
    lk.lock();
  }
}

GlobalMemo::Shard::Map::iterator GlobalMemo::find_verified(
    Shard& shard, const CanonicalHash128& hash,
    const GlobalMemoKey& key) const {
  const auto it = shard.map.find(hash);
  if (it == shard.map.end()) {
    return it;
  }
  if (*it->second.key == key) {
    return it;
  }
  shard.collisions.fetch_add(1, std::memory_order_relaxed);
  return shard.map.end();
}

std::optional<MemoHit> GlobalMemo::serve(const Shard& shard,
                                         const Entry& entry,
                                         std::uint64_t depth) const {
  // Any probe that finds the key counts as interest: refresh recency
  // even for entries still too incomplete to serve, so an in-progress
  // subtree is not the first thing the capacity bound throws away.
  touch(shard, entry);
  if (!entry.complete || !entry.solution.has_solution()) {
    return std::nullopt;
  }
  // Depth validity (see the protocol): natural entries cover every
  // prober at or above their producing depth, truncated entries only
  // the exact depth whose remaining budget they reflect.
  const bool covers = entry.complete_truncated
                          ? depth == entry.complete_depth
                          : depth <= entry.complete_depth;
  if (!covers) {
    return std::nullopt;
  }
  shard.hits.fetch_add(1, std::memory_order_relaxed);
  shard.hits_by_origin[static_cast<std::size_t>(entry.origin)].fetch_add(
      1, std::memory_order_relaxed);
  return MemoHit{entry.solution, entry.complete_truncated};
}

std::optional<MemoHit> GlobalMemo::lookup_at(const MemoKeyHandle& key,
                                             std::uint64_t depth) const {
  Shard& shard = *shards_[shard_of_hash(key->hash)];
  shard.probes.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock lk(shard.mutex);
  const auto it = find_verified(shard, lk, *key);
  if (it == shard.map.end()) {
    return std::nullopt;
  }
  return serve(shard, it->second, depth);
}

std::optional<MemoHit> GlobalMemo::lookup_at(const GlobalMemoKey& key,
                                             std::uint64_t depth) const {
  const CanonicalHash128 hash = memo_key_hash128(key);
  Shard& shard = *shards_[shard_of_hash(hash)];
  shard.probes.fetch_add(1, std::memory_order_relaxed);
  const std::scoped_lock lock(shard.mutex);
  const auto it = find_verified(shard, hash, key);
  if (it == shard.map.end()) {
    return std::nullopt;
  }
  return serve(shard, it->second, depth);
}

std::optional<PortableSolution> GlobalMemo::lookup(const MemoKeyHandle& key) {
  if (auto hit = lookup_at(key, 0)) {
    return std::move(hit->solution);
  }
  MemoBackend* const tier = fault_tier_.load(std::memory_order_acquire);
  if (tier == nullptr) {
    return std::nullopt;
  }
  // Root-miss fault: the wire needs the full canonical form, so this —
  // and only this — miss path materializes.  Root probes are
  // once-per-request; the interior hot path never reaches here.
  auto faulted = tier->probe(key->get(), 0);
  if (!faulted.has_value()) {
    return std::nullopt;
  }
  Shard& shard = *shards_[shard_of_hash(key->hash)];
  shard.hits.fetch_add(1, std::memory_order_relaxed);
  shard.hits_by_origin[static_cast<std::size_t>(MemoOrigin::kPeer)].fetch_add(
      1, std::memory_order_relaxed);
  return std::move(faulted->solution);
}

std::optional<PortableSolution> GlobalMemo::lookup(const GlobalMemoKey& key) {
  if (auto hit = lookup_at(key, 0)) {
    return std::move(hit->solution);
  }
  MemoBackend* const tier = fault_tier_.load(std::memory_order_acquire);
  if (tier == nullptr) {
    return std::nullopt;
  }
  // Root-miss fault: the next tier resolves the key (a peer pull) and —
  // by contract — installs the full record, with its ORIGINAL mark,
  // into this memo itself before returning, so no depth information is
  // lost to the MemoHit narrowing.  Count the serving hit under the
  // faulted origin; the local probe above already counted its miss.
  auto faulted = tier->probe(key, 0);
  if (!faulted.has_value()) {
    return std::nullopt;
  }
  const Shard& shard = *shards_[shard_of(key)];
  shard.hits.fetch_add(1, std::memory_order_relaxed);
  shard.hits_by_origin[static_cast<std::size_t>(MemoOrigin::kPeer)].fetch_add(
      1, std::memory_order_relaxed);
  return std::move(faulted->solution);
}

std::optional<MemoHit> GlobalMemo::probe(const GlobalMemoKey& key,
                                         std::uint64_t depth) {
  return lookup_at(key, depth);
}

MemoRunStamp GlobalMemo::begin_run() {
  // Plain atomics, no lock.  A publish racing with begin_run may land a
  // created_seq just above the start watermark — mark_complete then
  // falls back to the creator_run check and at worst SKIPS the mark,
  // the safe direction.
  return MemoRunStamp{g_run_counter.fetch_add(1) + 1, g_insert_seq.load()};
}

GlobalMemo::Entry* GlobalMemo::emplace_entry(
    Shard& shard, const CanonicalHash128& hash,
    std::shared_ptr<const GlobalMemoKey> key, std::uint64_t run_id,
    MemoOrigin origin) {
  if (shard_capacity_ == 0) {
    return nullptr;
  }
  if (shard.map.size() >= shard_capacity_) {
    // LRU eviction, per shard: the victim is this shard's entry longest
    // untouched by any lookup/publish.
    shard.map.erase(shard.lru.back());
    shard.lru.pop_back();
    shard.evictions.fetch_add(1, std::memory_order_relaxed);
  }
  Entry fresh;
  fresh.key = std::move(key);
  fresh.origin = origin;
  fresh.creator_run = run_id;
  fresh.created_seq = g_insert_seq.fetch_add(1) + 1;
  fresh.lru = shard.lru.end();
  const auto it = shard.map.emplace(hash, std::move(fresh)).first;
  shard.lru.push_front(hash);
  it->second.lru = shard.lru.begin();
  return &it->second;
}

void GlobalMemo::publish(const MemoKeyHandle& key,
                         const PortableSolution& solution,
                         std::uint64_t run_id) {
  Shard& shard = *shards_[shard_of_hash(key->hash)];
  shard.publishes.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock lk(shard.mutex);
  for (;;) {
    const auto it = find_verified(shard, lk, *key);
    if (it != shard.map.end()) {
      touch(shard, it->second);
      if (improves(solution, it->second.solution)) {
        it->second.solution = solution;
      }
      return;
    }
    if (shard.map.find(key->hash) != shard.map.end()) {
      // The hash is held by a DIFFERENT key (find_verified counted the
      // collision): first key wins, the publish is dropped.  Costs a
      // memo entry, never correctness.
      return;
    }
    if (key->materialized()) {
      break;
    }
    // First insert of a HASHED handle: this is the one sanctioned
    // materialization point of the publish path — outside the lock,
    // re-checking for a raced insert after relocking.
    lk.unlock();
    (void)key->get();
    lk.lock();
  }
  if (Entry* entry = emplace_entry(shard, key->hash, key->shared_key(),
                                   run_id, MemoOrigin::kRun)) {
    entry->solution = solution;
    key->verified_seq.store(entry->created_seq, std::memory_order_relaxed);
  }
}

void GlobalMemo::publish(const GlobalMemoKey& key,
                         const PortableSolution& solution,
                         std::uint64_t run_id) {
  const CanonicalHash128 hash = memo_key_hash128(key);
  Shard& shard = *shards_[shard_of_hash(hash)];
  shard.publishes.fetch_add(1, std::memory_order_relaxed);
  const std::scoped_lock lock(shard.mutex);
  if (const auto it = find_verified(shard, hash, key);
      it != shard.map.end()) {
    // Improvements to present entries never evict; the completeness bit
    // is sticky (same-fingerprint runs only ever refine a completed
    // subtree result downward in cost).  Cost ties fall through to the
    // canonical order so the accumulated winner is independent of which
    // run/worker published first — a served entry must reproduce the
    // exact function a cold deterministic solve would keep.
    touch(shard, it->second);
    if (improves(solution, it->second.solution)) {
      it->second.solution = solution;
    }
    return;
  }
  if (shard.map.find(hash) != shard.map.end()) {
    return;  // collision: first key wins
  }
  if (Entry* entry =
          emplace_entry(shard, hash, std::make_shared<const GlobalMemoKey>(key),
                        run_id, MemoOrigin::kRun)) {
    entry->solution = solution;
  }
}

void GlobalMemo::mark_complete(std::span<const MemoMark> marks,
                               const MemoRunStamp& stamp) {
  // Keys whose fresh mark made the entry export-eligible; notified to
  // the completion listener AFTER the marking loop, outside every shard
  // lock (the listener may serialize or take its own locks).  The
  // shared_ptr from the mark itself is retained, so a concurrent
  // eviction cannot invalidate what we hand the listener.
  std::vector<std::shared_ptr<const GlobalMemoKey>> fresh;
  for (const MemoMark& mark : marks) {
    const CanonicalHash128 hash = memo_key_hash128(*mark.key);
    Shard& shard = *shards_[shard_of_hash(hash)];
    const std::scoped_lock lock(shard.mutex);
    if (const auto it = find_verified(shard, hash, *mark.key);
        it != shard.map.end()) {
      Entry& entry = it->second;
      // Only vouch for entries this run found already present or
      // created itself (possibly re-created after an eviction): an
      // entry created mid-run by a DIFFERENT run may hold only that
      // run's partial publishes, and completing it would serve a
      // degraded result forever.  Skipping merely costs the next
      // identical solve a re-exploration — the safe direction.
      const bool vouched =
          entry.created_seq <= stamp.start_seq ||
          (stamp.run_id != 0 && entry.creator_run == stamp.run_id);
      if (!vouched) {
        continue;
      }
      bool changed = false;
      if (!entry.complete) {
        entry.complete = true;
        entry.complete_depth = mark.depth;
        entry.complete_truncated = mark.truncated;
        changed = true;
      } else if (!mark.truncated) {
        // Upgrade only: a natural claim replaces a truncated one and a
        // deeper natural claim widens a shallower one.  A truncated
        // claim never narrows an existing mark — both claims are
        // individually sound, so we keep the wider.
        if (entry.complete_truncated) {
          entry.complete_depth = mark.depth;
          entry.complete_truncated = false;
          changed = true;
        } else if (mark.depth > entry.complete_depth) {
          entry.complete_depth = mark.depth;
          changed = true;
        }
      }
      if (changed && exportable(entry)) {
        fresh.push_back(mark.key);
      }
    }
  }
  if (fresh.empty()) {
    return;
  }
  std::function<void(const GlobalMemoKey&)> listener;
  {
    const std::scoped_lock lock(listener_mutex_);
    listener = complete_listener_;
  }
  if (listener) {
    for (const std::shared_ptr<const GlobalMemoKey>& key : fresh) {
      listener(*key);
    }
  }
}

void GlobalMemo::mark_complete(
    std::span<const std::shared_ptr<const GlobalMemoKey>> keys,
    const MemoRunStamp& stamp) {
  std::vector<MemoMark> marks;
  marks.reserve(keys.size());
  for (const std::shared_ptr<const GlobalMemoKey>& key : keys) {
    marks.push_back(MemoMark{key, kAnyDepth, false});
  }
  mark_complete(std::span<const MemoMark>(marks), stamp);
}

bool GlobalMemo::install(const MemoExportEntry& record, MemoOrigin origin) {
  // The record's mark, translated back to entry form: natural at its
  // recorded depth, or the root-exact truncated-at-0 shape.
  const std::uint64_t depth = record.root_exact ? 0 : record.complete_depth;
  const bool truncated = record.root_exact;
  const CanonicalHash128 hash = memo_key_hash128(record.key);
  Shard& shard = *shards_[shard_of_hash(hash)];
  const std::scoped_lock lock(shard.mutex);
  if (const auto it = find_verified(shard, hash, record.key);
      it != shard.map.end()) {
    Entry& entry = it->second;
    touch(shard, entry);
    bool changed = false;
    // Solution improves under exactly the publish rules; the mark
    // upgrades under exactly the mark_complete rules.  No run-stamp
    // voucher: that voucher guards in-process races on entries still
    // being BUILT, whereas an imported record was finished and vouched
    // for by the drained run that exported it (and validated against
    // this memo's fingerprint by the importing tier).
    if (improves(record.solution, entry.solution)) {
      entry.solution = record.solution;
      changed = true;
    }
    if (!entry.complete) {
      entry.complete = true;
      entry.complete_depth = depth;
      entry.complete_truncated = truncated;
      changed = true;
    } else if (!truncated) {
      if (entry.complete_truncated) {
        entry.complete_depth = depth;
        entry.complete_truncated = false;
        changed = true;
      } else if (depth > entry.complete_depth) {
        entry.complete_depth = depth;
        changed = true;
      }
    }
    return changed;
  }
  if (shard.map.find(hash) != shard.map.end()) {
    return false;  // collision: first key wins
  }
  Entry* entry = emplace_entry(
      shard, hash, std::make_shared<const GlobalMemoKey>(record.key), 0,
      origin);
  if (entry == nullptr) {
    return false;
  }
  entry->solution = record.solution;
  entry->complete = true;
  entry->complete_depth = depth;
  entry->complete_truncated = truncated;
  return true;
}

void GlobalMemo::export_complete(
    const std::function<void(const MemoExportEntry&)>& sink) const {
  for (const auto& shard : shards_) {
    // Copy the eligible entries out under the lock, emit after: the
    // sink serializes (snapshot) or sends (push) — never under a shard
    // mutex the hot path contends on.
    std::vector<MemoExportEntry> batch;
    {
      const std::scoped_lock lock(shard->mutex);
      for (const auto& [hash, entry] : shard->map) {
        if (exportable(entry)) {
          batch.push_back(to_export(entry));
        }
      }
    }
    for (const MemoExportEntry& record : batch) {
      sink(record);
    }
  }
}

std::optional<MemoExportEntry> GlobalMemo::export_entry(
    const GlobalMemoKey& key) const {
  const CanonicalHash128 hash = memo_key_hash128(key);
  Shard& shard = *shards_[shard_of_hash(hash)];
  const std::scoped_lock lock(shard.mutex);
  const auto it = find_verified(shard, hash, key);
  if (it == shard.map.end() || !exportable(it->second)) {
    return std::nullopt;
  }
  return to_export(it->second);
}

void GlobalMemo::set_fault_tier(MemoBackend* tier) {
  fault_tier_.store(tier, std::memory_order_release);
}

void GlobalMemo::set_complete_listener(
    std::function<void(const GlobalMemoKey&)> fn) {
  const std::scoped_lock lock(listener_mutex_);
  complete_listener_ = std::move(fn);
}

std::size_t GlobalMemo::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const std::scoped_lock lock(shard->mutex);
    total += shard->map.size();
  }
  return total;
}

std::uint64_t GlobalMemo::hits() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->hits.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t GlobalMemo::probes() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->probes.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t GlobalMemo::publishes() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->publishes.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t GlobalMemo::evictions() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->evictions.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t GlobalMemo::collisions() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->collisions.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t GlobalMemo::hits_from(MemoOrigin origin) const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->hits_by_origin[static_cast<std::size_t>(origin)].load(
        std::memory_order_relaxed);
  }
  return total;
}

}  // namespace brel
