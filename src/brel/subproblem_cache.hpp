#pragma once
/// \file subproblem_cache.hpp
/// Memoizing deduplication of subrelations by canonical characteristic-BDD
/// edge.
///
/// Because the BDD package is canonical, two subrelations over the same
/// manager are equal iff their characteristic functions are the same edge,
/// so an unordered-map probe on the raw edge detects every re-encounter in
/// O(1) — no symmetry substitutions, no depth limit.  This generalizes the
/// *exact-duplicate* half of `SymmetryCache` (Sec. 7.7): the symmetry
/// cache also catches permuted images but pays a BDD compose per output
/// pair per probe, which is why the paper applies it only near the root;
/// the subproblem cache is cheap enough to run on every generated child.
///
/// A perhaps surprising corollary of Property 5.4 (Split partitions
/// IF(R)): within a SINGLE solve tree a hit is impossible.  The two halves
/// of Split(x, y_i) have disjoint, non-empty images at x — one allows only
/// y_i = 0 there, the other only y_i = 1 — and splitting only ever shrinks
/// images, so any two nodes of one tree differ at the vertex of their
/// lowest common ancestor's split.  Within one run the cache is therefore
/// a pure invariant guard: a hit means the engine generated the same
/// subrelation twice, i.e. a bug.  Its value materializes when one cache
/// is SHARED across solve() calls (SolverOptions::subproblem_cache):
/// re-solving the same or an overlapping relation re-generates identical
/// subrelations, which are pruned instead of re-consuming budget.
///
/// Dedup alone would trade solution quality for that saved budget, so
/// each entry MEMOIZES the best solution discovered anywhere in that
/// subrelation's subtree: the engine attributes every discovered solution
/// to the whole ancestor chain of the node that produced it (a solution
/// compatible with a subrelation is compatible with every relation above
/// it, Property 5.1), and a cache hit offers the memo to the incumbent.
/// Re-solving an identical relation with a warm cache thus returns
/// first-run quality while exploring a single node.  Solutions memoized
/// under one cost function are only comparable under the same one — share
/// a cache across runs with identical `SolverOptions::cost` only.  And a
/// memo only reflects how deeply ITS run explored: feeding a cache warmed
/// by budget-limited runs into an exact run would prune subtrees the
/// exact run still needed, so share among runs of the same mode.
///
/// Cached edges are pinned by `Bdd` handles so garbage collection cannot
/// recycle them (a recycled edge would alias a different function and turn
/// the dedup into wrong pruning).  The capacity bound caps that pinning;
/// once full the cache keeps probing but stops inserting — improve() on
/// entries that are already present still lands, so a better solution
/// discovered late always updates its memo even at capacity.
///
/// The comparability contract above (same cost function, same mode, same
/// input/output spaces) is ENFORCED, not just documented: the first
/// engine to use a cache stamps it with a `CacheFingerprint` via bind(),
/// and a later bind() with a different fingerprint throws — offering a
/// memo that minimized a different objective (or a solution over
/// different variables) to the incumbent would be wrong pruning, not a
/// cache miss.  Long-lived owners that intentionally recycle a cache
/// across configurations (the solver pool's per-worker caches) call
/// rebind_or_clear() instead, which drops the stale entries on mismatch.
///
/// Concurrency: the cache's own bookkeeping (map, keep-alive pins,
/// hit/probe counters) is serialized by an internal mutex, and probes
/// return the entry *by value* so no caller ever reads a record another
/// thread is improving.  The mutex is NOT a license to share the cache
/// across threads freely, though: keys and memoized solutions are
/// ref-counted handles of ONE BddManager, and every probe/snapshot
/// copies handles — which touches that manager's (single-threaded,
/// debug-asserted) refcounts.  Sharing a cache between threads is
/// therefore only sound when access to its manager is itself serialized
/// — e.g. handing a manager+cache pair across a pipeline stage with
/// BddManager::bind_to_current_thread at the boundary.  The parallel
/// engine never shares one: each worker pairs a private cache with its
/// private manager, because edges do not transfer between managers (see
/// parallel_engine.hpp, whose constructor rejects a shared cache).

#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "bdd/bdd.hpp"
#include "relation/relation.hpp"

namespace brel {

/// What makes two runs' memoized solutions comparable: the objective
/// they minimized, the exploration mode (an exact run must not be pruned
/// by memos of budget-limited runs), and the variable spaces the
/// solutions are expressed over.  The input/output lists are RAW manager
/// variable indices on purpose: a cache is keyed by manager-local edges,
/// and the same edge means the same function only under the same
/// variable assignment (e.g. the constant-ONE characteristic of two
/// relations over different blocks is the same edge but needs different
/// solutions).
struct CacheFingerprint {
  std::string cost_id;
  bool exact = false;
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> outputs;

  [[nodiscard]] bool operator==(const CacheFingerprint&) const = default;
};

/// Best solution known for one cached subrelation.  `best.outputs` is
/// empty until the first improve() lands (e.g. a capacity-full insert).
struct CachedSolution {
  MultiFunction best;
  double cost = 0.0;

  [[nodiscard]] bool has_solution() const noexcept {
    return !best.outputs.empty();
  }
};

class SubproblemCache {
 public:
  explicit SubproblemCache(
      std::size_t capacity = static_cast<std::size_t>(-1));

  /// Stamp the cache with the run configuration it is about to serve.
  /// The first bind() records `fp`; subsequent binds with an equal
  /// fingerprint are no-ops; a mismatched bind throws
  /// std::invalid_argument (sharing memos across incomparable runs is
  /// wrong pruning, see the file comment).  Every engine binds before
  /// its first probe.
  void bind(const CacheFingerprint& fp);

  /// Like bind(), but a mismatched fingerprint clears the cache and
  /// re-stamps instead of throwing — for owners that deliberately
  /// recycle one cache across configurations (pool worker slots).
  void rebind_or_clear(const CacheFingerprint& fp);

  /// Drop every entry and pin (fingerprint included); counters survive.
  void clear();

  /// Probe for `chi`.  Returns the existing entry when `chi` was
  /// inserted before; otherwise inserts an empty entry (capacity
  /// permitting) and returns nullptr.  The pointer is stable until
  /// clear()/rebind_or_clear() (unordered_map references survive
  /// inserts) — no per-hit copy of the memoized MultiFunction.  Read it
  /// before the next improve() from another thread; under the
  /// manager-serialization rule in the file comment the prober and the
  /// improver are the same thread anyway.
  [[nodiscard]] const CachedSolution* seen_before_or_insert(const Bdd& chi);

  /// Record `f` (with its cost under the current run's cost function) as
  /// a solution for every subrelation edge in `chain` — the ancestor
  /// chain of the node that discovered it.  Entries not present in the
  /// cache (never inserted, or dropped by capacity) are skipped.
  void improve(std::span<const detail::Edge> chain, const MultiFunction& f,
               double cost);

  /// Non-inserting probe.
  [[nodiscard]] bool contains(const Bdd& chi) const {
    const std::scoped_lock lock(mutex_);
    return cache_.count(chi.raw_edge()) != 0;
  }

  [[nodiscard]] std::size_t size() const {
    const std::scoped_lock lock(mutex_);
    return cache_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const {
    const std::scoped_lock lock(mutex_);
    return hits_;
  }
  [[nodiscard]] std::uint64_t probes() const {
    const std::scoped_lock lock(mutex_);
    return probes_;
  }

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;  ///< serializes map, keep-alives and counters
  std::optional<CacheFingerprint> fingerprint_;  ///< stamped at first bind
  std::unordered_map<detail::Edge, CachedSolution> cache_;
  std::vector<Bdd> keep_alive_;  ///< pins cached edges across GCs
  std::uint64_t hits_ = 0;
  std::uint64_t probes_ = 0;
};

}  // namespace brel
