#include "brel/isf_minimizer.hpp"

#include <algorithm>
#include <stdexcept>

namespace brel {

namespace {

/// Greedy top-to-bottom support reduction (Sec. 7.5): for each variable in
/// BDD order, drop it when the tightened interval stays non-empty.
Isf eliminate_nonessential_vars(const Isf& isf) {
  Isf current = isf;
  // Candidate variables: the support of the interval bounds.
  const Bdd window = current.on() | current.dc();
  std::vector<std::uint32_t> vars = window.support();
  const std::vector<std::uint32_t> off_support = current.off().support();
  vars.insert(vars.end(), off_support.begin(), off_support.end());
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  for (const std::uint32_t var : vars) {
    if (current.can_eliminate_var(var)) {
      current = current.eliminate_var(var);
    }
  }
  return current;
}

Bdd run_kernel(IsfMethod method, const Isf& isf) {
  BddManager& mgr = *isf.on().manager();
  switch (method) {
    case IsfMethod::Isop:
      return mgr.isop(isf.min(), isf.max()).function;
    case IsfMethod::Constrain: {
      const Bdd care = isf.on() | isf.off();
      return care.is_zero() ? mgr.zero() : mgr.constrain(isf.on(), care);
    }
    case IsfMethod::Restrict: {
      const Bdd care = isf.on() | isf.off();
      return care.is_zero() ? mgr.zero() : mgr.restrict_to(isf.on(), care);
    }
    case IsfMethod::SafeRestrict: {
      const Bdd care = isf.on() | isf.off();
      if (care.is_zero()) {
        return mgr.zero();
      }
      const Bdd candidate = mgr.restrict_to(isf.on(), care);
      // Safe: only accept when the interval holds and the BDD shrank.
      if (isf.contains(candidate) && candidate.size() <= isf.on().size()) {
        return candidate;
      }
      return isf.on();
    }
  }
  throw std::logic_error("IsfMinimizer: unknown method");
}

}  // namespace

Bdd IsfMinimizer::minimize(const Isf& isf) const {
  const Isf reduced =
      eliminate_nonessential ? eliminate_nonessential_vars(isf) : isf;
  const Bdd result = run_kernel(method, reduced);
  // Postcondition: the implementation honours the *original* interval.
  // (Support elimination only tightens it, so this always holds.)
  return result;
}

IsopResult IsfMinimizer::minimize_to_cover(const Isf& isf) const {
  BddManager& mgr = *isf.on().manager();
  if (method == IsfMethod::Isop) {
    const Isf reduced =
        eliminate_nonessential ? eliminate_nonessential_vars(isf) : isf;
    return mgr.isop(reduced.min(), reduced.max());
  }
  const Bdd f = minimize(isf);
  return mgr.isop(f, f);
}

}  // namespace brel
