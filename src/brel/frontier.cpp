#include "brel/frontier.hpp"

#include <algorithm>
#include <deque>
#include <iterator>
#include <stdexcept>

namespace brel {

// ------------------------------------------------------------------ FIFO

BoundedFifoFrontier::BoundedFifoFrontier(std::size_t capacity)
    : Frontier(capacity) {}

void BoundedFifoFrontier::push(Subproblem&& item) {
  queue_.push_back(std::move(item));
}

Subproblem BoundedFifoFrontier::pop() {
  if (queue_.empty()) {
    throw std::logic_error("BoundedFifoFrontier::pop: frontier is empty");
  }
  Subproblem item = std::move(queue_.front());
  queue_.pop_front();
  return item;
}

Subproblem BoundedFifoFrontier::steal() {
  if (queue_.empty()) {
    throw std::logic_error("BoundedFifoFrontier::steal: frontier is empty");
  }
  Subproblem item = std::move(queue_.back());
  queue_.pop_back();
  return item;
}

std::size_t BoundedFifoFrontier::size() const noexcept {
  return queue_.size();
}

// ------------------------------------------------------------------ LIFO

LifoFrontier::LifoFrontier(std::size_t capacity) : Frontier(capacity) {}

void LifoFrontier::push(Subproblem&& item) {
  stack_.push_back(std::move(item));
}

Subproblem LifoFrontier::pop() {
  if (stack_.empty()) {
    throw std::logic_error("LifoFrontier::pop: frontier is empty");
  }
  Subproblem item = std::move(stack_.back());
  stack_.pop_back();
  return item;
}

Subproblem LifoFrontier::steal() {
  if (stack_.empty()) {
    throw std::logic_error("LifoFrontier::steal: frontier is empty");
  }
  // O(size) erase-from-the-bottom; steals are rare (one per idle worker
  // request) next to the per-node BDD work, so simplicity wins.
  Subproblem item = std::move(stack_.front());
  stack_.erase(stack_.begin());
  return item;
}

void LifoFrontier::steal_into(std::vector<Subproblem>& out,
                              std::size_t count) {
  count = std::min(count, stack_.size());
  const auto first = stack_.begin();
  const auto last = first + static_cast<std::ptrdiff_t>(count);
  out.reserve(out.size() + count);
  std::move(first, last, std::back_inserter(out));
  stack_.erase(first, last);
}

std::size_t LifoFrontier::size() const noexcept { return stack_.size(); }

// ------------------------------------------------------------- best-first

BestFirstFrontier::BestFirstFrontier(std::size_t capacity)
    : Frontier(capacity) {}

bool BestFirstFrontier::later(const Entry& a, const Entry& b) noexcept {
  // std::push_heap builds a max-heap; invert so the *smallest* priority
  // surfaces, with the older entry winning ties.
  if (a.item.priority != b.item.priority) {
    return a.item.priority > b.item.priority;
  }
  return a.seq > b.seq;
}

void BestFirstFrontier::push(Subproblem&& item) {
  heap_.push_back(Entry{std::move(item), next_seq_++});
  std::push_heap(heap_.begin(), heap_.end(), later);
}

Subproblem BestFirstFrontier::pop() {
  if (heap_.empty()) {
    throw std::logic_error("BestFirstFrontier::pop: frontier is empty");
  }
  std::pop_heap(heap_.begin(), heap_.end(), later);
  Subproblem item = std::move(heap_.back().item);
  heap_.pop_back();
  return item;
}

std::size_t BestFirstFrontier::size() const noexcept { return heap_.size(); }

// ---------------------------------------------------------------- factory

std::unique_ptr<Frontier> make_frontier(ExplorationOrder order,
                                        std::size_t capacity) {
  switch (order) {
    case ExplorationOrder::BreadthFirst:
      return std::make_unique<BoundedFifoFrontier>(capacity);
    case ExplorationOrder::DepthFirst:
      return std::make_unique<LifoFrontier>(capacity);
    case ExplorationOrder::BestFirst:
      return std::make_unique<BestFirstFrontier>(capacity);
  }
  throw std::invalid_argument("make_frontier: unknown exploration order");
}

}  // namespace brel
