#pragma once
/// \file memo_exchange.hpp
/// Tier 2 of the tiered memo store: peer exchange of complete memo
/// entries between brel_server processes, over the same framed-TCP wire
/// the solve traffic uses (server.hpp) — the `MEMO_PULL` / `MEMO_PUSH`
/// verbs.
///
/// Ownership is CONSISTENT HASHING over the canonical key hash
/// (memo_key_hash): every member — self plus each `--memo-peers` entry
/// — contributes `replicas` virtual points FNV-hashed from
/// "member#index" to one shared ring, and a key belongs to the member
/// owning the first point at or after the key's hash (wrapping).  All
/// members compute the same ring from the same member list, so "who
/// owns this key" needs no coordination, and adding a member remaps
/// only the slice of keyspace it takes over.
///
/// Two flows, both carrying only export-policy records (see
/// memo_backend.hpp — naturally-complete entries and root-exact
/// records; a partial or tainted result cannot cross the wire):
///
///   - PULL (the fault path): a ROOT-position lookup that misses the
///     local memo and whose key is owned by a peer sends `MEMO_PULL`
///     with the canonical key to the owner; a hit installs the pulled
///     record (with its original mark) into the local memo and serves
///     it.  Interior probes never pull — only GlobalMemo::lookup's
///     depth-0 path faults, so the per-subproblem hot path pays zero
///     network I/O.  The owner answers from its LOCAL memo only
///     (Server's handler uses export_entry, not lookup), so two peers
///     can never recurse into each other;
///   - PUSH (the gossip path): GlobalMemo's completion listener feeds
///     every freshly export-eligible key into a bounded queue; a
///     background thread exports each record and sends `MEMO_PUSH` to
///     its owner, so the owner accumulates its keyspace slice without
///     waiting to be asked.  Keys this member owns itself are skipped
///     at enqueue; a full queue drops (counted) rather than blocks —
///     gossip is an optimization, never backpressure on a drain.
///
/// Failure model: peers are an accelerator tier, not a dependency.
/// Every wire failure — connect refusal, pull timeout (`SO_RCVTIMEO`-
/// style poll deadline), malformed or fingerprint-mismatched reply — is
/// a MISS or a dropped push, never an error surfaced to a solve.
///
/// This header deliberately does not include server.hpp (the server
/// includes this one to dispatch the verbs); only the .cpp reaches for
/// the wire helpers.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "brel/global_memo.hpp"

namespace brel {

struct PeerExchangeOptions {
  /// This member's own "host:port" identity — must match the string the
  /// OTHER members list in their `--memo-peers` for ownership to agree.
  std::string self;
  /// The other members, "host:port" each.
  std::vector<std::string> peers;
  /// Poll deadline of one MEMO_PULL round trip; an expired pull is a
  /// miss (the solve proceeds cold).
  int pull_timeout_ms = 250;
  /// Virtual ring points per member (evens out ownership slices).
  std::size_t replicas = 16;
  /// Bound of the push queue; beyond it fresh completions are dropped
  /// (counted in stats().push_dropped), never blocked on.
  std::size_t push_queue_limit = 1024;
};

/// Point-in-time exchange counters (STATS surface).
struct PeerExchangeStats {
  std::uint64_t pulls = 0;          ///< MEMO_PULL round trips attempted
  std::uint64_t pull_hits = 0;      ///< ... that installed an entry
  std::uint64_t pull_failures = 0;  ///< connect/timeout/malformed replies
  std::uint64_t pushes = 0;         ///< MEMO_PUSH frames delivered
  std::uint64_t push_failures = 0;  ///< sends that failed or were refused
  std::uint64_t push_dropped = 0;   ///< completions dropped (queue full)
};

/// The exchange tier.  Construct over the local (tier-0) memo, start(),
/// then wire it in: set_fault_tier(this) routes root misses through
/// probe(), set_complete_listener(… enqueue_push …) feeds the gossip.
/// stop() (idempotent, also run by the destructor) joins the push
/// thread; DISCONNECT the memo's hooks before destroying the exchange.
class MemoExchange : public MemoBackend {
 public:
  MemoExchange(GlobalMemo& local, PeerExchangeOptions options);
  ~MemoExchange() override;

  MemoExchange(const MemoExchange&) = delete;
  MemoExchange& operator=(const MemoExchange&) = delete;

  void start();
  void stop();

  /// Ring member (index into {self} ∪ peers, 0 = self) owning `key`.
  [[nodiscard]] std::size_t owner_of(const GlobalMemoKey& key) const;
  /// Does this member own `key` (no pull/push will ever leave for it)?
  [[nodiscard]] bool owns(const GlobalMemoKey& key) const {
    return owner_of(key) == 0;
  }

  /// Feed of the local memo's completion listener: queue `key` for a
  /// MEMO_PUSH to its owner (skipped immediately when self-owned).
  void enqueue_push(const GlobalMemoKey& key);

  [[nodiscard]] PeerExchangeStats stats() const;

  // MemoBackend --------------------------------------------------------
  /// The PULL fault path.  Only acts for depth == 0 (the root position)
  /// on peer-owned keys; a hit has ALREADY been installed into the
  /// local memo (original mark, MemoOrigin::kPeer) when this returns.
  [[nodiscard]] std::optional<MemoHit> probe(const GlobalMemoKey& key,
                                             std::uint64_t depth) override;
  /// Delegates to the local memo (records arriving out of band).
  bool install(const MemoExportEntry& entry, MemoOrigin origin) override;
  /// Delegates to the local memo.
  void export_complete(const std::function<void(const MemoExportEntry&)>&
                           sink) const override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace brel
