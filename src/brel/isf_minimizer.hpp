#pragma once
/// \file isf_minimizer.hpp
/// BDD-based ISF minimization strategies (Sec. 7.5, Table 1).
///
/// Every strategy returns an implementation of the ISF — a completely
/// specified function inside [ON, ON ∪ DC] — using the don't-care
/// flexibility to reduce complexity.  The paper's default (and Table 1
/// reference) is ISOP extraction after greedily eliminating non-essential
/// variables.

#include "bdd/bdd.hpp"
#include "relation/isf.hpp"

namespace brel {

/// The minimization kernels compared in Table 1.
enum class IsfMethod {
  Isop,         ///< Minato-Morreale irredundant SOP [24]
  Constrain,    ///< generalized cofactor constrain [13], [14]
  Restrict,     ///< sibling-substitution restrict [13], [14]
  SafeRestrict, ///< interval-safe, never-larger restrict (LICompact [19]
                ///< substitute; see DESIGN.md substitution 6)
};

/// Configuration + entry point for ISF minimization.
struct IsfMinimizer {
  IsfMethod method = IsfMethod::Isop;
  /// Greedy top-to-bottom elimination of non-essential variables before
  /// the kernel runs (Sec. 7.5; rows "+elim" of Table 1).
  bool eliminate_nonessential = true;

  /// Minimize `isf`; the result always lies in [isf.min(), isf.max()].
  [[nodiscard]] Bdd minimize(const Isf& isf) const;

  /// Like minimize() but also reports the ISOP cover when the kernel
  /// produces one (other kernels get a cover via a final exact ISOP).
  [[nodiscard]] IsopResult minimize_to_cover(const Isf& isf) const;
};

}  // namespace brel
