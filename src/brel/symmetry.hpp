#pragma once
/// \file symmetry.hpp
/// Output-symmetry detection for subrelations (Sec. 7.7).
///
/// Two subrelations whose characteristic functions differ only by a
/// permutation (or pairwise complemented swap) of output variables have
/// solution sets of identical cost under any permutation-invariant cost
/// function, so exploring one of them suffices.  BREL keeps a cache of
/// characteristic functions of the relations it has processed; a new
/// subrelation is skipped when a symmetric image of it is already cached.
///
/// Following the paper's implementation decisions, symmetries are checked
/// for output variables only, cover the first-order swap and the
/// nonskew-nonequivalence second-order (complemented swap) cases, and are
/// intended to be applied only near the root of the exploration tree.

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "bdd/bdd.hpp"

namespace brel {

class SymmetryCache {
 public:
  /// `outputs` are the manager variable indices of the relation's outputs.
  SymmetryCache(BddManager& mgr, std::vector<std::uint32_t> outputs,
                bool enable_second_order = true);

  /// True iff a relation symmetric to `chi` (including `chi` itself) was
  /// inserted before.  Otherwise inserts `chi` and returns false.
  [[nodiscard]] bool seen_before_or_insert(const Bdd& chi);

  [[nodiscard]] std::size_t size() const noexcept { return cache_.size(); }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }

 private:
  BddManager* mgr_;
  std::vector<std::uint32_t> outputs_;
  bool enable_second_order_;
  std::unordered_set<detail::Edge> cache_;
  std::vector<Bdd> keep_alive_;  ///< pins cached edges across GCs
  std::uint64_t hits_ = 0;
};

}  // namespace brel
