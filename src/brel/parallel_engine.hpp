#pragma once
/// \file parallel_engine.hpp
/// Multi-worker exploration of the Fig. 6 branch-and-bound tree.
///
/// The recursive solve tree is embarrassingly decomposable — every Split
/// yields two independent subrelations — but the BDD substrate is not:
/// a `BddManager` (node store, unique table, computed cache, statistics)
/// is strictly single-threaded.  Following the worker-local-state design
/// of parallel Boolean synthesis (Akshay et al., TACAS 2017, PAPERS.md),
/// the engine therefore gives each worker a *private* manager plus a
/// private frontier, and moves work between workers by value:
///
///   ownership rules (see DESIGN.md §parallel layering)
///   ---------------------------------------------------
///   - one BddManager per worker; no edge, handle or relation of one
///     manager is ever touched by another worker's thread;
///   - subproblems cross worker boundaries only through the injection
///     queue, in the serialized transfer form (bdd_transfer.hpp) — plain
///     data produced by the victim from its manager and materialized by
///     the thief into its own;
///   - the only cross-thread state is the queue (mutex + condition
///     variable), a handful of atomics (incumbent bound, explored-node
///     budget, steal requests, stop flag) and the per-worker result
///     slots, which the coordinator reads after join.
///
/// Scheduling is cooperative work *donation*: a worker that runs dry
/// posts a steal request and blocks on the queue; workers with more than
/// one pending subproblem serve requests between expansions by donating
/// `Frontier::steal()` entries (deepest pending node for the paper's
/// BFS, cheapest for best-first).  The shared atomic incumbent bound
/// makes one worker's discoveries prune every other worker's subtrees.
///
/// Determinism: with the cost bound on, which nodes fit the budget
/// depends on scheduling, exactly as the serial engine's result depends
/// on the frontier strategy.  The schedule-*independent* configuration —
/// `use_cost_bound = false` plus a `max_depth` cap (or a drained
/// frontier) — explores a fixed node set, so the returned cost equals
/// the serial engine's for any worker count; test_parallel_engine.cpp
/// pins that equality across the whole benchmark suite.

#include <cstddef>

#include "brel/solver.hpp"
#include "relation/relation.hpp"

namespace brel {

/// Resolve SolverOptions::num_workers (0 = one per hardware thread).
[[nodiscard]] std::size_t resolve_worker_count(std::size_t requested);

/// N-worker search engine.  One engine per solve() run, like the serial
/// `SearchEngine`; the facade (`BrelSolver`) dispatches here whenever the
/// resolved worker count exceeds one.
class ParallelEngine {
 public:
  /// Copies the root and options (the engine outlives temporaries).
  /// Throws std::invalid_argument when the relation is not well defined,
  /// and when `options.subproblem_cache` is set — a shared cache is keyed
  /// by one manager's edges and cannot serve per-worker managers; use
  /// `use_subproblem_cache` for worker-private caches instead.
  ParallelEngine(const BooleanRelation& root, const SolverOptions& options);

  /// Run the workers to completion (all frontiers and the injection
  /// queue drained, budget exhausted, or deadline hit).  The result's
  /// `worker_stats` holds one entry per worker; `stats` is their sum.
  /// The winning solution is transferred back into the root relation's
  /// manager, so the caller handles it exactly like a serial result.
  /// Exceptions thrown inside a worker stop the fleet and are rethrown.
  [[nodiscard]] SolveResult run();

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_;
  }

 private:
  const BooleanRelation root_;
  const SolverOptions options_;
  const std::size_t workers_;
};

}  // namespace brel
