#include "brel/quick_solver.hpp"

#include <stdexcept>

namespace brel {

MultiFunction quick_solve(const BooleanRelation& r,
                          const IsfMinimizer& minimizer) {
  if (!r.is_well_defined()) {
    throw std::invalid_argument("quick_solve: relation is not well defined");
  }
  BddManager& mgr = r.manager();
  BooleanRelation current = r;
  MultiFunction result;
  result.outputs.reserve(r.num_outputs());
  for (std::size_t i = 0; i < r.num_outputs(); ++i) {
    const Isf isf = current.project_output(i);
    Bdd f = minimizer.minimize(isf);
    result.outputs.push_back(f);
    // Propagate the choice: R := R ∧ (y_i ≡ F_i).  The projection interval
    // guarantees the constrained relation stays well defined.
    current = current.constrain_with(mgr.var(r.outputs()[i]).iff(f));
  }
  return result;
}

}  // namespace brel
