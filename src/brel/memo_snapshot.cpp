#include "brel/memo_snapshot.hpp"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace brel {

namespace {

/// 64-bit FNV-1a (same constants as memo_key_hash).
struct Fnv {
  std::uint64_t state = 14695981039346656037ull;

  void feed(std::uint64_t word) noexcept {
    state ^= word;
    state *= 1099511628211ull;
  }
};

std::uint64_t hash_serialized(Fnv& h, const SerializedBdd& s) {
  h.feed(s.nodes.size());
  for (const SerializedBdd::Node& n : s.nodes) {
    h.feed((static_cast<std::uint64_t>(n.var) << 32) ^ n.hi);
    h.feed(n.lo);
  }
  h.feed(s.root);
  h.feed(s.num_vars);
  return h.state;
}

[[noreturn]] void fail(const char* what) {
  throw std::invalid_argument(std::string("read_memo_entry: ") + what);
}

/// Same sanity ceilings as the relation/`.bdd` parsers: a lying header
/// must fail loudly, never allocate unbounded memory.
constexpr std::size_t kMaxRanks = 1u << 20;
constexpr std::size_t kMaxNodes = 1u << 28;

std::vector<std::uint32_t> read_rank_list(std::istream& in,
                                          const char* keyword_want) {
  std::string keyword;
  std::size_t count = 0;
  if (!(in >> keyword) || keyword != keyword_want || !(in >> count)) {
    fail("malformed rank-list line");
  }
  if (count > kMaxRanks) {
    fail("rank list declares too many ranks");
  }
  std::vector<std::uint32_t> ranks;
  ranks.reserve(std::min<std::size_t>(count, 1u << 10));
  for (std::size_t i = 0; i < count; ++i) {
    std::uint32_t r = 0;
    if (!(in >> r)) {
      fail("truncated rank list");
    }
    ranks.push_back(r);
  }
  return ranks;
}

}  // namespace

std::uint64_t memo_entry_checksum(const MemoExportEntry& e) {
  Fnv h;
  h.feed(memo_key_hash(e.key));
  h.feed(e.root_exact ? 1 : 0);
  h.feed(e.complete_depth);
  h.feed(std::bit_cast<std::uint64_t>(e.solution.cost));
  h.feed(e.solution.outputs.size());
  for (const SerializedBdd& g : e.solution.outputs) {
    hash_serialized(h, g);
  }
  return h.state;
}

void write_memo_key(std::ostream& os, const GlobalMemoKey& key) {
  const auto iranks = key.input_ranks();
  os << ".iranks " << iranks.size();
  for (const std::uint32_t r : iranks) {
    os << ' ' << r;
  }
  os << '\n';
  const auto oranks = key.output_ranks();
  os << ".oranks " << oranks.size();
  for (const std::uint32_t r : oranks) {
    os << ' ' << r;
  }
  os << '\n';
  os << ".chi " << key.node_count() << '\n';
  write_serialized_bdd(os, key.chi());
}

GlobalMemoKey read_memo_key(std::istream& in) {
  const std::vector<std::uint32_t> iranks = read_rank_list(in, ".iranks");
  const std::vector<std::uint32_t> oranks = read_rank_list(in, ".oranks");
  std::string keyword;
  std::size_t chi_nodes = 0;
  if (!(in >> keyword) || keyword != ".chi" || !(in >> chi_nodes)) {
    fail("malformed .chi line");
  }
  if (chi_nodes > kMaxNodes) {
    fail(".chi declares too many nodes");
  }
  // read_serialized_bdd is line-based; step past the `.chi` line's tail
  // so its first getline sees a node line, not an empty remainder.
  std::string rest;
  std::getline(in, rest);
  // The arena constructor re-validates id order (child before parent) —
  // a malformed key throws std::invalid_argument like every other parse
  // failure here and costs exactly this entry.
  return GlobalMemoKey(read_serialized_bdd(in, chi_nodes), iranks, oranks);
}

void write_memo_fingerprint(std::ostream& os, const MemoFingerprint& fp) {
  os << ".cost_id " << fp.cost_id << '\n';
  os << ".exact " << (fp.exact ? 1 : 0) << '\n';
}

std::optional<MemoFingerprint> read_memo_fingerprint(std::istream& in) {
  std::string line;
  do {
    if (!std::getline(in, line)) {
      return std::nullopt;
    }
  } while (line.empty());
  if (line.rfind(".cost_id ", 0) != 0) {
    return std::nullopt;
  }
  MemoFingerprint fp;
  fp.cost_id = line.substr(9);
  if (fp.cost_id.empty()) {
    return std::nullopt;
  }
  std::string keyword;
  int exact = 0;
  if (!(in >> keyword) || keyword != ".exact" || !(in >> exact)) {
    return std::nullopt;
  }
  std::getline(in, line);  // consume the rest of the .exact line
  fp.exact = exact != 0;
  return fp;
}

void write_memo_entry(std::ostream& os, const MemoExportEntry& e) {
  char check[32];
  std::snprintf(check, sizeof(check), "%016llx",
                static_cast<unsigned long long>(memo_entry_checksum(e)));
  if (e.root_exact) {
    os << ".entry root check=" << check << '\n';
  } else if (e.complete_depth == kMemoAnyDepth) {
    os << ".entry natural depth=any check=" << check << '\n';
  } else {
    os << ".entry natural depth=" << e.complete_depth << " check=" << check
       << '\n';
  }
  write_memo_key(os, e.key);
  os << ".solution\n";
  write_portable_solution(os, e.solution);
  os << ".endentry\n";
}

MemoExportEntry read_memo_entry(std::istream& in) {
  std::string line;
  do {
    if (!std::getline(in, line)) {
      fail("missing .entry line");
    }
  } while (line.empty());
  std::istringstream header(line);
  std::string keyword;
  std::string shape;
  if (!(header >> keyword) || keyword != ".entry" || !(header >> shape)) {
    fail("malformed .entry line");
  }
  MemoExportEntry e;
  std::string check_field;
  if (shape == "root") {
    e.root_exact = true;
    e.complete_depth = 0;
    if (!(header >> check_field)) {
      fail("malformed .entry root line");
    }
  } else if (shape == "natural") {
    std::string depth_field;
    if (!(header >> depth_field) ||
        depth_field.rfind("depth=", 0) != 0 || !(header >> check_field)) {
      fail("malformed .entry natural line");
    }
    const std::string depth_text = depth_field.substr(6);
    if (depth_text == "any") {
      e.complete_depth = kMemoAnyDepth;
    } else {
      char* end = nullptr;
      e.complete_depth = std::strtoull(depth_text.c_str(), &end, 10);
      if (end == depth_text.c_str() || *end != '\0') {
        fail("malformed depth= value");
      }
    }
  } else {
    // The export policy has exactly two shapes.  In particular `.entry
    // truncated` (an interior depth-truncated claim) is REJECTED here,
    // not parsed-and-ignored: a budget-relative or tainted result must
    // not enter a memo through a hand-edited or corrupted snapshot.
    fail("unsupported .entry shape (only 'natural' and 'root' may cross "
         "a tier boundary)");
  }
  if (check_field.rfind("check=", 0) != 0) {
    fail("missing check= field");
  }
  const std::string check_text = check_field.substr(6);
  char* check_end = nullptr;
  const std::uint64_t declared_check =
      std::strtoull(check_text.c_str(), &check_end, 16);
  if (check_end == check_text.c_str() || *check_end != '\0') {
    fail("malformed check= value");
  }
  if (std::string extra; header >> extra) {
    fail("trailing tokens on .entry line");
  }

  e.key = read_memo_key(in);
  if (!(in >> keyword) || keyword != ".solution") {
    fail("missing .solution line");
  }
  std::getline(in, line);  // consume the rest of the .solution line
  // The solution body runs to the `.endentry` terminator; buffer it so
  // read_portable_solution sees exactly its own grammar (it insists on
  // ending at end-of-input).
  std::string body;
  bool terminated = false;
  while (std::getline(in, line)) {
    if (line == ".endentry") {
      terminated = true;
      break;
    }
    body += line;
    body += '\n';
  }
  if (!terminated) {
    fail("truncated entry (missing .endentry)");
  }
  std::istringstream body_stream(body);
  e.solution = read_portable_solution(body_stream);
  if (memo_entry_checksum(e) != declared_check) {
    fail("entry checksum mismatch (corrupt body or forged key)");
  }
  return e;
}

SnapshotSaveResult save_memo_snapshot(const GlobalMemo& memo,
                                      std::ostream& os,
                                      std::uint64_t saved_at_unix) {
  SnapshotSaveResult result;
  const std::optional<MemoFingerprint> fp = memo.fingerprint();
  // Collect before writing: the `.entries` count leads the entry list,
  // and export order should not interleave with shard locking.
  std::vector<MemoExportEntry> entries;
  if (fp.has_value()) {
    memo.export_complete(
        [&entries](const MemoExportEntry& e) { entries.push_back(e); });
  }
  os << "brelmemo 1\n";
  os << ".cost_id " << (fp.has_value() ? fp->cost_id : "") << '\n';
  os << ".exact " << (fp.has_value() && fp->exact ? 1 : 0) << '\n';
  os << ".saved_at " << saved_at_unix << '\n';
  os << ".entries " << entries.size() << '\n';
  for (const MemoExportEntry& e : entries) {
    write_memo_entry(os, e);
  }
  os << ".endmemo " << entries.size() << '\n';
  os.flush();
  result.entries = entries.size();
  result.ok = os.good();
  if (!result.ok) {
    result.error = "write failed";
  }
  return result;
}

SnapshotSaveResult save_memo_snapshot(const GlobalMemo& memo,
                                      const std::string& path,
                                      std::uint64_t saved_at_unix) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) {
    SnapshotSaveResult result;
    result.error = "cannot open '" + path + "' for writing";
    return result;
  }
  SnapshotSaveResult result = save_memo_snapshot(memo, os, saved_at_unix);
  if (!result.ok && result.error.empty()) {
    result.error = "write to '" + path + "' failed";
  }
  return result;
}

SnapshotLoadResult load_memo_snapshot(GlobalMemo& memo, std::istream& in) {
  SnapshotLoadResult result;
  std::string line;
  if (!std::getline(in, line)) {
    result.error = "empty snapshot";
    return result;
  }
  {
    std::istringstream magic(line);
    std::string tag;
    std::uint64_t version = 0;
    if (!(magic >> tag) || tag != "brelmemo" || !(magic >> version)) {
      result.error = "not a brelmemo snapshot";
      return result;
    }
    if (version != 1) {
      result.error =
          "unsupported snapshot version " + std::to_string(version);
      return result;
    }
  }
  std::string cost_id;
  bool exact = false;
  bool fingerprint_done = false;
  std::uint64_t trailer_count = 0;
  bool saw_trailer = false;
  // Bind-or-check the memo's fingerprint exactly once, before the first
  // install.  Returns false (with result.error set) on mismatch — the
  // whole snapshot is then refused, nothing installed.
  const auto finalize_fingerprint = [&]() -> bool {
    if (fingerprint_done) {
      return true;
    }
    if (cost_id.empty()) {
      result.error = "snapshot has entries but no .cost_id fingerprint";
      return false;
    }
    try {
      memo.bind(MemoFingerprint{cost_id, exact});
    } catch (const std::invalid_argument&) {
      result.error =
          "snapshot fingerprint (cost '" + cost_id +
          "') does not match the memo's — refusing every entry";
      return false;
    }
    fingerprint_done = true;
    return true;
  };
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword == ".cost_id") {
      // Rest of line verbatim (a cost id could conceivably hold spaces).
      const std::size_t at = line.find(".cost_id");
      cost_id = line.substr(at + 8);
      if (!cost_id.empty() && cost_id.front() == ' ') {
        cost_id.erase(0, 1);
      }
    } else if (keyword == ".exact") {
      int v = 0;
      fields >> v;
      exact = v != 0;
    } else if (keyword == ".saved_at") {
      fields >> result.saved_at;
    } else if (keyword == ".entries") {
      // Advisory; the trailer count is what gets cross-checked.
    } else if (keyword == ".entry") {
      // Buffer through .endentry so a corrupt body costs exactly this
      // entry, never stream sync.
      std::string buffer = line;
      buffer += '\n';
      bool terminated = false;
      while (std::getline(in, line)) {
        buffer += line;
        buffer += '\n';
        if (line == ".endentry") {
          terminated = true;
          break;
        }
      }
      if (!terminated) {
        result.error = "truncated snapshot (entry without .endentry)";
        return result;
      }
      if (!finalize_fingerprint()) {
        return result;
      }
      try {
        std::istringstream entry_stream(buffer);
        const MemoExportEntry e = read_memo_entry(entry_stream);
        memo.install(e, MemoOrigin::kSnapshot);
        ++result.entries_installed;
      } catch (const std::invalid_argument&) {
        ++result.entries_skipped;
      }
    } else if (keyword == ".endmemo") {
      fields >> trailer_count;
      saw_trailer = true;
      break;
    }
    // Unknown directives are ignored: minor-version additions must not
    // brick an old loader.
  }
  if (!saw_trailer) {
    result.error = "truncated snapshot (missing .endmemo trailer)";
    return result;
  }
  if (trailer_count != result.entries_installed + result.entries_skipped) {
    result.error = "snapshot trailer count mismatch (truncated entry list)";
    return result;
  }
  if (result.entries_skipped != 0) {
    result.error = std::to_string(result.entries_skipped) +
                   " corrupt entries skipped";
    return result;
  }
  result.ok = true;
  return result;
}

SnapshotLoadResult load_memo_snapshot(GlobalMemo& memo,
                                      const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    SnapshotLoadResult result;
    result.error = "cannot open '" + path + "'";
    return result;
  }
  return load_memo_snapshot(memo, in);
}

}  // namespace brel
