#pragma once
/// \file search.hpp
/// The BREL search engine: the Fig. 6 branch-and-bound recursion broken
/// into an explicit state object plus small focused steps.
///
/// Layering (see DESIGN.md):
///
///   BrelSolver (facade, solver.hpp)
///     └─ SearchEngine (driver loop, this file)
///          ├─ Frontier            exploration order (frontier.hpp)
///          ├─ SubproblemCache     whole-tree dedup (subproblem_cache.hpp)
///          ├─ SymmetryCache       near-root symmetry pruning (symmetry.hpp)
///          └─ SearchContext       incumbent / bound / stats / deadline
///
/// `SearchContext` carries everything one expansion needs: the manager,
/// the resolved cost function, the incumbent solution and its cost, the
/// line-6 bound, the deadline and the statistics.  The steps
/// (`expand_subproblem`, `handle_terminal`, the split selectors) are free
/// functions over the context so they can be tested — and eventually
/// executed by parallel workers — without going through the solver facade.
///
/// With the default BFS/DFS strategies the engine performs *exactly* the
/// operations of the original monolithic loop, in the same order, so
/// results are bit-identical; best-first additionally precomputes each
/// child's MISF candidate at push time to order the frontier by it.

#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <unordered_set>
#include <vector>

#include "brel/frontier.hpp"
#include "brel/solver.hpp"
#include "brel/subproblem_cache.hpp"
#include "brel/symmetry.hpp"
#include "relation/relation.hpp"

namespace brel {

/// Mutable state threaded through every step of one solve() run.
struct SearchContext {
  BddManager& mgr;
  const SolverOptions& options;
  CostFunction cost;  ///< options.cost or the default, never empty

  std::chrono::steady_clock::time_point start;

  /// Incumbent: best compatible solution seen so far (from any source —
  /// QuickSolver, terminals, compatible MISF candidates).
  MultiFunction best;
  double best_cost = std::numeric_limits<double>::infinity();

  /// The line-6 branch-and-bound bound.  Maintained from *explored*
  /// candidates only — QuickSolver results never lower it (see the
  /// step-0 comment in search.cpp).
  double bound_cost = std::numeric_limits<double>::infinity();

  SolverStats stats;

  std::optional<SymmetryCache> symmetries;

  /// Engine-owned or caller-shared (SolverOptions::subproblem_cache);
  /// null when disabled.
  SubproblemCache* cache = nullptr;

  /// Cross-solve memo (SolverOptions::global_memo); null when disabled.
  /// `memo_space` carries the rank tables of the current root relation
  /// and is non-null whenever `memo` is.  `memo_space_ref` shares
  /// ownership of the SAME space for make_memo_handle (HASHED handles
  /// keep the space alive until they materialize); set iff `memo` is.
  GlobalMemo* memo = nullptr;
  const MemoSpace* memo_space = nullptr;
  std::shared_ptr<const MemoSpace> memo_space_ref = {};

  /// Rank space for the canonical equal-cost tie order (see
  /// canonically_before).  The engines always set it — memo or not — so
  /// a cold memo-less run and a memo-served warm run break every tie
  /// the same way and stay bit-identical.  `best_portable` caches the
  /// incumbent's rank form; empty until the first cost tie forces a
  /// comparison, invalidated whenever a strictly better incumbent wins.
  const MemoSpace* tie_space = nullptr;
  std::optional<PortableSolution> best_portable = {};

  /// This run's memo identity (GlobalMemo::begin_run), threaded through
  /// every publish so the final mark_complete can tell its own entries
  /// from a concurrent run's re-creations (see MemoRunStamp).
  MemoRunStamp memo_stamp = {};

  /// One memo key this run created, with the split depth it was created
  /// at — the raw material of the per-subtree completeness marks (see
  /// the protocol in global_memo.hpp).  The handle may still be HASHED
  /// when the probe missed and nothing ever published it; every key
  /// that reaches a publish or a verified hit is materialized by then.
  struct MemoTouch {
    MemoKeyHandle key;
    std::size_t depth = 0;
  };

  /// Every memo key this run created (root first, then generated
  /// children within the depth gate).  A run that ends at its natural
  /// frontier drain — no budget/timeout stop — turns the list into
  /// depth-indexed MemoMarks (filtered through the taint sets below)
  /// for GlobalMemo::mark_complete; an interrupted run leaves every
  /// entry invisible.
  std::vector<MemoTouch> memo_touched = {};

  /// Taint tracking for the per-subtree completeness marks.  A key is
  /// HARD-tainted when its subtree lost solutions to a cut whose result
  /// is not a pure function of (characteristic, remaining depth) — a
  /// cost-bound prune, a symmetry or subproblem-cache prune, a
  /// frontier-overflow drop — and must not be marked at all.  A key is
  /// SOFT-tainted when its subtree was cut only by the depth cap
  /// (directly, or by importing a depth-truncated memo entry): its
  /// entry is still exact for a prober at the same depth and is marked
  /// depth-truncated.  Tracked by raw handle address: within one run
  /// each canonical key is one shared LazyMemoKey (chains copy
  /// shared_ptrs), and the pointers are kept alive by memo_touched.
  std::unordered_set<const LazyMemoKey*> memo_hard_tainted = {};
  std::unordered_set<const LazyMemoKey*> memo_soft_tainted = {};

  /// Incremental delta (delta_context.hpp): true while this run diffs
  /// against a remembered base relation and Subproblem::delta carries
  /// change-region cofactors (mirrored into stats.delta_active).
  bool delta_active = false;

  [[nodiscard]] bool timed_out() const;

  /// Whether global-memo traffic is enabled for a node at `depth`.
  [[nodiscard]] bool memo_active(std::size_t depth) const noexcept {
    return memo != nullptr && depth <= options.global_memo_depth;
  }

  /// The depth to probe the memo at for a node at `depth`: with a finite
  /// depth cap an entry is only valid relative to the prober's remaining
  /// budget, so the true depth is passed; without a cap every naturally
  /// complete entry is exact anywhere and probing at 0 also admits
  /// root-truncated entries (the legacy warm-root fast path).
  [[nodiscard]] std::uint64_t memo_probe_depth(std::size_t depth)
      const noexcept {
    return options.max_depth == static_cast<std::size_t>(-1)
               ? 0
               : static_cast<std::uint64_t>(depth);
  }

  /// Hard/soft-taint every key on `chain` (see the taint sets above).
  void taint_hard(std::span<const MemoKeyHandle> chain);
  void taint_soft(std::span<const MemoKeyHandle> chain);


  /// Offer a compatible solution to the incumbent (does not touch the
  /// bound).  The one-argument form evaluates the cost function itself.
  void offer_solution(MultiFunction f, double solution_cost);
  void offer_solution(MultiFunction f);

  /// Offer a solution AND memoize it for every subrelation on the
  /// discovering node's ancestor chains — the edge chain feeds the
  /// manager-local subproblem cache, the serialized-key chain feeds the
  /// global memo (Property 5.1 justifies both attributions).
  void record_solution(const Subproblem& from, MultiFunction f,
                       double solution_cost);

  /// Publish `f` to the global memo for every key on `chain` (no-op
  /// when the memo is off or the chain is empty).  Used by
  /// record_solution and by the prune paths that offer a cached/memoized
  /// solution: the offer is valid for the whole ancestor chain, so the
  /// ancestors' memo entries must see it too — otherwise a warm re-solve
  /// at the root could return a worse cost than the run that warmed it.
  void publish_to_memo(std::span<const MemoKeyHandle> chain,
                       const MultiFunction& f, double solution_cost);
};

/// Turn touched keys + taint sets into depth-indexed completeness marks
/// (see the protocol in global_memo.hpp): untainted keys are naturally
/// complete at their depth (kAnyDepth when `unlimited_depth`),
/// soft-tainted keys are depth-truncated at their depth, hard-tainted
/// keys are skipped — except `root_key` (the run's root), which is
/// exactly what the run returned and is marked truncated-at-0 whenever
/// `allow_root` (no frontier-overflow drops anywhere in the run).
/// Shared by the serial engine and the parallel coordinator (which
/// passes fleet-unioned taint sets).
[[nodiscard]] std::vector<MemoMark> make_memo_marks(
    std::span<const SearchContext::MemoTouch> touched,
    const std::unordered_set<const LazyMemoKey*>& hard_tainted,
    const std::unordered_set<const LazyMemoKey*>& soft_tainted,
    bool unlimited_depth, const LazyMemoKey* root_key, bool allow_root);

/// The comparability stamp the engines bind their caches with (see
/// CacheFingerprint): the resolved cost identity, the exploration mode,
/// and the root's variable spaces.
[[nodiscard]] CacheFingerprint make_cache_fingerprint(
    const BooleanRelation& root, const SolverOptions& options,
    const CostFunction& resolved_cost);

/// A split decision: the input vertex and the output to split on.
struct SplitChoice {
  std::vector<bool> vertex;
  std::size_t output;
};

/// Fig. 6 lines 4-5: minimize the MISF over-approximation output by
/// output.  Counts one misf_minimization per output.
[[nodiscard]] MultiFunction minimize_misf_candidate(SearchContext& ctx,
                                                    const BooleanRelation& rel);

/// Fig. 6 lines 1-3: a functional relation *is* its unique solution;
/// record it (reusing a push-time candidate when present) and lower the
/// bound.
void handle_terminal(SearchContext& ctx, const Subproblem& item);

/// Exact-mode continuation below a compatible candidate: the first output
/// (in manager variable order) that still has don't-care flexibility, or
/// nullopt when the relation is fully constrained.
[[nodiscard]] std::optional<SplitChoice> select_flexibility_split(
    const BooleanRelation& rel);

/// Fig. 6 lines 9-10 / Sec. 7.4: split vertex from the largest cube of the
/// input projection of Incomp (don't-cares assigned 1), first output in
/// variable order admitting both values.  Throws std::logic_error if no
/// output can split — impossible for a genuine conflict (Sec. 6.3).
[[nodiscard]] SplitChoice select_conflict_split(SearchContext& ctx,
                                                const BooleanRelation& rel,
                                                const Bdd& incomp);

/// One full expansion of a popped subproblem: terminal handling, MISF
/// candidate + bounding, compatibility check, split selection, and child
/// generation (dedup caches, QuickSolver safety net, frontier push).
void expand_subproblem(SearchContext& ctx, Subproblem item,
                       Frontier& frontier);

/// For priority-ordered frontiers, price `sub` before it is pushed:
/// terminals by their exact solution, everything else by the MISF
/// candidate (which expansion then reuses).  Skipped when the frontier is
/// full — the push would be rejected anyway, and MISF minimization is the
/// dominant per-node cost.  No-op for strategies that ignore priority.
/// Used by the engine for the root and by parallel workers for
/// subproblems received through the injection queue (which travel
/// without their push-time candidate).
void seed_priority(SearchContext& ctx, Subproblem& sub,
                   const Frontier& frontier);

/// Drives a frontier and a context to a SolveResult.  One engine per
/// solve() run; the solver facade owns nothing but options.
class SearchEngine {
 public:
  /// Throws std::invalid_argument when `root` is not well defined.
  SearchEngine(const BooleanRelation& root, const SolverOptions& options);

  /// Run to completion (frontier drained, budget exhausted or deadline
  /// hit) and return the incumbent plus statistics.
  [[nodiscard]] SolveResult run();

  [[nodiscard]] const SearchContext& context() const noexcept { return ctx_; }

 private:
  // Owned copies (both are cheap: handles + index vectors), so an engine
  // outlives temporaries passed to its constructor.
  const BooleanRelation root_;
  const SolverOptions options_;
  std::shared_ptr<SubproblemCache> cache_;  ///< keeps a shared cache alive
  std::shared_ptr<GlobalMemo> memo_;        ///< keeps a shared memo alive
  /// Rank tables for this root — shared because HASHED key handles hold
  /// a reference until they materialize.
  std::shared_ptr<const MemoSpace> memo_space_;
  SearchContext ctx_;
  std::unique_ptr<Frontier> frontier_;
};

}  // namespace brel
