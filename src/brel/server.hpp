#pragma once
/// \file server.hpp
/// Socket service front end over SolverPool: the network face of the
/// ROADMAP's "serve heavy traffic" north star.
///
/// The `.bdd` wire format (requests) and the manager-independent
/// `PoolResult` (responses, as write_portable_solution text) were already
/// the right service boundary — this layer adds the listener and the
/// production trimmings around it:
///
///   - **framing**: every message is a 4-byte big-endian length prefix
///     followed by that many payload bytes.  Requests carry a one-line
///     text header (`SOLVE`, `STATS`, `PING`) optionally followed by a
///     body; responses carry a one-line status header (`OK`, `TIMEOUT`,
///     `BUSY`, `SHUTDOWN`, `ERROR`) plus a body.  Malformed or oversized
///     frames get an `ERROR` reply and the connection SURVIVES (the
///     oversized payload is drained to stay in sync);
///   - **per-request deadlines**: `SOLVE deadline_ms=N` becomes a
///     `RequestOptions::deadline`, which the pool maps onto the engine's
///     timeout machinery for that request alone.  A deadline-expired
///     request answers a `TIMEOUT` frame carrying the best-so-far
///     solution (possibly empty) — never a dropped connection;
///   - **admission control / backpressure**: at most `max_pending`
///     requests may be resident (accepted, not yet answered).  Past the
///     bound the server replies `BUSY` *immediately* instead of queueing
///     unboundedly, and keeps shedding until residency falls back to
///     `resume_pending` (the low watermark) — plain hysteresis, so a
///     saturating burst cannot make admission flap;
///   - **priorities**: `SOLVE priority=batch` requests yield the pool
///     mailboxes to interactive traffic (RequestPriority);
///   - **graceful drain**: begin_drain() (wired to SIGTERM/SIGINT by the
///     brel_server tool) stops accepting connections and frames; every
///     request accepted before the drain is answered through the pool's
///     airtight mailbox-close/stop ordering, then wait() returns.  A
///     frame arriving during the drain gets a `SHUTDOWN` reply, which is
///     a *rejection*, not a lost answer — accepted == answered holds;
///   - **metrics**: a `STATS` request (or any connection to the optional
///     metrics port, which needs no framing — `nc` works) returns a
///     key-value text block: queue depth, accepted / rejected / timed-out
///     counts, memo size and hit rate, reorder and delta-reuse counters,
///     lock-wait totals, and p50/p99 latency over a fixed-size ring of
///     recent requests.
///
/// Threading: one listener thread, one thread per accepted connection
/// (each connection processes its frames serially — pipelining depth 1 —
/// so per-connection replies arrive in request order), one optional
/// metrics listener.  All solver work happens inside the SolverPool; a
/// connection thread only parses headers and blocks on its future.
/// `Server` is in the library (not the tool) so the integration tests
/// and the service bench can run a real server in-process on an
/// ephemeral port.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "brel/solver_pool.hpp"

namespace brel {

/// Low-level frame I/O, shared by the server, the load generator, the
/// bench, and the integration tests.  All calls handle short reads and
/// writes; none throws.
namespace wire {

/// Outcome of read_frame.
enum class ReadStatus {
  Ok,        ///< `payload` holds one complete frame
  Eof,       ///< peer closed cleanly before a header byte arrived
  Error,     ///< socket error / peer vanished mid-frame
  Oversize,  ///< length prefix exceeded `max_bytes`; payload was drained
             ///< and the stream is still in sync (reply ERROR, continue)
};

/// Write one length-prefixed frame.  Returns false on socket error.
bool write_frame(int fd, const std::string& payload);

/// Read one length-prefixed frame into `payload`.  A frame longer than
/// `max_bytes` is read and DISCARDED so the connection stays usable
/// (ReadStatus::Oversize).  `stop` (optional) aborts the wait for a new
/// frame, but only while the connection is IDLE — a frame in flight, or
/// already buffered when the flag flipped, is still read in full (so a
/// drain answers it instead of dropping it).
ReadStatus read_frame(int fd, std::string& payload, std::size_t max_bytes,
                      const std::atomic<bool>* stop = nullptr);

/// Blocking TCP connect to host:port; -1 on failure.
int connect_tcp(const std::string& host, std::uint16_t port);

}  // namespace wire

/// Server configuration, fixed for the server's lifetime.
struct ServerOptions {
  std::string host = "127.0.0.1";  ///< bind address
  std::uint16_t port = 0;          ///< 0 = ephemeral (see Server::port())
  /// Plain-text metrics listener: every accepted connection immediately
  /// receives the STATS block and is closed.  -1 = off, 0 = ephemeral.
  int metrics_port = -1;

  /// The pool behind the listener (workers, solver options, memo, ...).
  PoolOptions pool;

  /// Admission bound (high watermark): SOLVE frames arriving while
  /// `accepted - answered >= max_pending` are rejected with BUSY.
  std::size_t max_pending = 64;
  /// Low watermark: once shedding starts, admission resumes only when
  /// residency falls to this value or below.  Defaults (when SIZE_MAX)
  /// to max_pending / 2.
  std::size_t resume_pending = static_cast<std::size_t>(-1);

  /// Frames longer than this get an ERROR reply (payload drained).
  std::size_t max_frame_bytes = 4u << 20;

  /// Deadline applied to SOLVE frames that carry none; zero = none.
  std::chrono::milliseconds default_deadline{0};

  /// Latency ring size (most recent answered requests kept for the
  /// p50/p99 estimate).  Must be > 0.
  std::size_t latency_ring = 1024;

  /// Tier-2 peer exchange (memo_exchange.hpp): "host:port" of every
  /// OTHER member of the memo ring.  Empty = exchange off.  Requires a
  /// pool memo; the server also answers the `MEMO_PULL`/`MEMO_PUSH`
  /// wire verbs whenever it has one, peers configured or not.
  std::vector<std::string> memo_peers;
  /// This member's own ring identity.  Empty = "<host>:<port>" after
  /// binding — fine unless peers address this server by a different
  /// name than it binds (then every member must be told the name its
  /// peers use, or ownership would disagree across the ring).
  std::string memo_self;
  /// Deadline of one MEMO_PULL round trip (an expired pull is a miss).
  int memo_pull_timeout_ms = 250;
};

/// Point-in-time counters (STATS in struct form, for tests/benches).
struct ServerMetrics {
  std::uint64_t accepted = 0;       ///< SOLVE frames admitted to the pool
  std::uint64_t answered = 0;       ///< replies written for accepted ones
  std::uint64_t rejected_busy = 0;  ///< BUSY replies (admission control)
  std::uint64_t rejected_shutdown = 0;  ///< SHUTDOWN replies (draining)
  std::uint64_t timed_out = 0;      ///< TIMEOUT replies (deadline expired)
  std::uint64_t request_errors = 0;   ///< ERROR replies from solve failures
  std::uint64_t protocol_errors = 0;  ///< ERROR replies from bad frames
  std::uint64_t connections_opened = 0;
  std::uint64_t connections_open = 0;
  std::size_t queue_depth = 0;  ///< pool mailbox backlog right now
  std::size_t inflight = 0;     ///< accepted - answered right now
  bool shedding = false;        ///< admission currently closed
  // Aggregates folded from answered PoolResults.
  std::uint64_t memo_hits_total = 0;
  std::uint64_t reorders = 0;
  std::uint64_t delta_runs = 0;
  std::uint64_t delta_reused = 0;
  std::uint64_t delta_researched = 0;
  // Latency over the ring (microseconds, frame-read to reply-written).
  std::uint64_t latency_samples = 0;  ///< answered requests ever ringed
  std::uint64_t latency_p50_us = 0;
  std::uint64_t latency_p99_us = 0;
  double uptime_seconds = 0.0;
  // Tiered-memo surface (zeros when the tier is not configured).
  std::uint64_t snapshot_entries_loaded = 0;  ///< installed at start
  std::uint64_t snapshot_entries_saved = 0;   ///< nonzero after the drain
  std::uint64_t snapshot_age_seconds = 0;  ///< now − loaded `.saved_at`
  std::uint64_t memo_hits_run = 0;       ///< served by this process's runs
  std::uint64_t memo_hits_snapshot = 0;  ///< served by restored entries
  std::uint64_t memo_hits_peer = 0;      ///< served by pulled/pushed entries
  std::uint64_t peer_pulls = 0;          ///< MEMO_PULL round trips sent
  std::uint64_t peer_pull_hits = 0;
  std::uint64_t peer_pull_failures = 0;
  std::uint64_t peer_pushes = 0;  ///< MEMO_PUSH frames delivered
  std::uint64_t peer_push_failures = 0;
  std::uint64_t peer_push_dropped = 0;
  std::uint64_t peer_pulls_served = 0;     ///< MEMO_PULL answered OK here
  std::uint64_t peer_pushes_received = 0;  ///< MEMO_PUSH installed here
};

/// The service.  Construct, start(), then begin_drain() + wait() to shut
/// down (the destructor drains too).  Thread-safe: begin_drain() and the
/// metrics accessors may be called from any thread.
class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, spawn the listener thread(s).  Throws
  /// std::runtime_error when a socket cannot be bound.
  void start();

  /// Actual listening port (resolves ephemeral port 0 after start()).
  [[nodiscard]] std::uint16_t port() const noexcept;
  /// Actual metrics port (0 when the metrics listener is off).
  [[nodiscard]] std::uint16_t metrics_port() const noexcept;

  /// Stop accepting connections and frames; in-flight requests keep
  /// running to their answers.  Idempotent, callable from any thread
  /// (but not from a signal handler — flip an atomic there and call
  /// this from the main loop, as tools/brel_server.cpp does).
  void begin_drain();

  /// Block until every connection thread exited and the pool drained.
  /// Implies begin_drain() has been (or is) called; returns immediately
  /// when the server never started.
  void wait();

  [[nodiscard]] ServerMetrics metrics() const;
  /// The STATS response body (key value per line), also served on the
  /// metrics port.
  [[nodiscard]] std::string stats_text() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace brel
