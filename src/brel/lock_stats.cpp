#include "brel/lock_stats.hpp"

#include <algorithm>
#include <memory>

namespace brel {

#if BREL_LOCK_STATS

LockStatsRegistry& LockStatsRegistry::instance() {
  static LockStatsRegistry registry;
  return registry;
}

LockCounters* LockStatsRegistry::counters(const char* name) {
  const std::scoped_lock lock(mutex_);
  for (auto& [existing, group] : groups_) {
    if (existing == name) {
      return group.get();
    }
  }
  groups_.emplace_back(name, std::make_unique<LockCounters>());
  return groups_.back().second.get();
}

std::vector<LockSnapshot> LockStatsRegistry::snapshot() const {
  std::vector<LockSnapshot> out;
  {
    const std::scoped_lock lock(mutex_);
    out.reserve(groups_.size());
    for (const auto& [name, group] : groups_) {
      LockSnapshot snap;
      snap.name = name;
      snap.wait_ns = group->wait_ns.load(std::memory_order_relaxed);
      snap.acquires = group->acquires.load(std::memory_order_relaxed);
      snap.contended = group->contended.load(std::memory_order_relaxed);
      out.push_back(std::move(snap));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const LockSnapshot& a, const LockSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

std::uint64_t LockStatsRegistry::wait_ns(const char* name) const {
  const std::scoped_lock lock(mutex_);
  for (const auto& [existing, group] : groups_) {
    if (existing == name) {
      return group->wait_ns.load(std::memory_order_relaxed);
    }
  }
  return 0;
}

void LockStatsRegistry::reset() {
  const std::scoped_lock lock(mutex_);
  for (auto& [name, group] : groups_) {
    group->wait_ns.store(0, std::memory_order_relaxed);
    group->acquires.store(0, std::memory_order_relaxed);
    group->contended.store(0, std::memory_order_relaxed);
  }
}

#endif  // BREL_LOCK_STATS

std::uint64_t total_lock_wait_ns(std::initializer_list<const char*> names) {
  std::uint64_t total = 0;
  for (const char* name : names) {
    total += LockStatsRegistry::instance().wait_ns(name);
  }
  return total;
}

}  // namespace brel
