#pragma once
/// \file solver.hpp
/// The BREL recursive Boolean-relation solver (Fig. 6 + Sec. 7).
///
/// Paradigm (Sec. 2): over-approximate the relation by the MISF of its
/// per-output projections, minimize each output independently, and — if the
/// composed function conflicts with the relation — Split on a conflicting
/// input vertex and recurse on both halves, pruning with the best cost
/// found so far.  The branch-and-bound tree is explored through a pluggable
/// `Frontier` (partial BFS as in Sec. 7.2, DFS, or best-first by MISF
/// candidate cost); QuickSolver runs on every generated subrelation so at
/// least one compatible solution exists whenever the exploration budget
/// runs out (Sec. 7.6).
///
/// `BrelSolver` is a thin facade over the engine in search.hpp — it holds
/// options and constructs one `SearchEngine` per solve() call.  See
/// DESIGN.md for the layering.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>

#include "brel/cost.hpp"
#include "brel/delta_context.hpp"
#include "brel/frontier.hpp"
#include "brel/global_memo.hpp"
#include "brel/isf_minimizer.hpp"
#include "brel/quick_solver.hpp"
#include "brel/subproblem_cache.hpp"
#include "brel/symmetry.hpp"
#include "relation/relation.hpp"

namespace brel {

/// Tuning knobs of the solver.  The defaults reproduce the configuration
/// of the paper's Table 2 runs (cost = Σ BDD sizes, partial exploration of
/// 10 relations, QuickSolver fallback, symmetries near the root).
struct SolverOptions {
  /// Objective to minimize; must be permutation-invariant across outputs
  /// when `use_symmetry` is on.  Defaults to sum_of_bdd_sizes().
  CostFunction cost;

  /// ISF minimization strategy for projections (Sec. 7.5).
  IsfMinimizer minimizer{};

  /// Maximum number of relations popped from the exploration frontier
  /// (the paper's "partial exploration of N BRs").  Ignored in exact mode.
  std::size_t max_relations = 10;

  /// Bound on the number of *pending* subrelations in the frontier.
  /// Children that do not fit are still quick-solved (so their best
  /// solution is seen) but not explored further.
  std::size_t fifo_capacity = static_cast<std::size_t>(-1);

  /// Depth-bounded partial exploration: nodes at this split depth are
  /// still expanded (terminal handling, MISF candidate, compatibility)
  /// but never split, so the tree is truncated at depth max_depth.
  /// Unlike max_relations — which admits whichever nodes the schedule
  /// pops first — the depth-capped exploration set is a pure function of
  /// the relation ("every node at depth <= max_depth"), identical for
  /// any frontier strategy or worker count.  Combined with
  /// use_cost_bound=false this makes the whole solve deterministic up to
  /// tie-breaks, which is what the parallel-vs-serial differential
  /// harness pins its cost-equality assertions on.
  std::size_t max_depth = static_cast<std::size_t>(-1);

  /// Exact mode (Sec. 7.6): complete exploration; keeps splitting through
  /// compatible-but-maybe-suboptimal solutions until relations become
  /// functional, so the search degenerates to an implicit enumeration of
  /// IF(R).  Only viable for small relations.
  bool exact = false;

  /// The Fig. 6 line-6 branch-and-bound prune.  On (the default) it cuts
  /// subtrees whose MISF candidate cannot beat the best explored cost —
  /// a heuristic when the ISF minimizer is inexact, so the final cost can
  /// depend on exploration order.  Off, a drained (unbounded-budget)
  /// search visits an order-independent tree and its result is a pure
  /// function of the relation — the configuration the parallel-vs-serial
  /// differential harness relies on.  Ignored in exact mode (which never
  /// bounds).
  bool use_cost_bound = true;

  /// Worker threads for the exploration (parallel_engine.hpp).  1 = the
  /// serial engine; 0 = one per hardware thread.  Each worker owns a
  /// private BddManager (the kernel layer is single-threaded) and
  /// subproblems migrate between workers in the serialized transfer form
  /// (bdd_transfer.hpp).  With more than one worker the cost function is
  /// invoked concurrently from several threads (each on its own
  /// manager's BDDs) and must be re-entrant; the structural costs in
  /// cost.hpp all are.
  std::size_t num_workers = 1;

  /// Output-symmetry pruning (Sec. 7.7).
  bool use_symmetry = false;

  /// Symmetry checks only run while the split depth is below this bound
  /// ("only explored during the initial recursions").
  std::size_t symmetry_depth = 3;

  /// Also detect complemented swaps (second-order nonskew nonequivalence).
  bool symmetry_second_order = true;

  /// Memoizing subproblem dedup by canonical characteristic-BDD edge (see
  /// subproblem_cache.hpp).  Unlike the symmetry cache this has no depth
  /// limit and O(1) probes.  Within a single solve it acts as an invariant
  /// guard (Property 5.4 makes in-tree duplicates impossible); its value
  /// comes from sharing one cache across solves of overlapping relations,
  /// where re-encountered subtrees are pruned and their memoized best
  /// solutions offered instead of being re-explored.  Off by default.
  bool use_subproblem_cache = false;

  /// Maximum entries (pinned BDD handles) in the subproblem cache.
  std::size_t subproblem_cache_capacity = static_cast<std::size_t>(-1);

  /// A caller-provided cache shared across solve() calls (and solvers on
  /// the same manager).  When set it is used regardless of
  /// `use_subproblem_cache`; when null and the flag is on, each solve gets
  /// a fresh private cache.  Must only be shared between relations living
  /// in the same BddManager.
  std::shared_ptr<SubproblemCache> subproblem_cache;

  /// Cross-solve memo keyed by the canonical *serialized* subproblem form
  /// (global_memo.hpp) — unlike `subproblem_cache` it is manager-
  /// independent, so it can be shared between solves in different
  /// managers (parallel workers, pool worker slots) and across process
  /// lifetimes of any one manager.  Hits import the memoized solution
  /// into the prober's manager instead of re-exploring; every discovered
  /// solution is published for its whole ancestor chain.  The memo is
  /// stamped with the cost/mode fingerprint at first use and rejects
  /// mismatched reuse.  Null disables the memo.
  std::shared_ptr<GlobalMemo> global_memo;

  /// Probe/publish the global memo only for nodes at split depth <= this
  /// bound.  Memo traffic costs one BDD serialization per child (the
  /// price of manager independence), which is wasted on deep, tiny
  /// subproblems; near the root the subtrees are large and re-encounters
  /// across solves are most valuable.  Unlimited by default.
  std::size_t global_memo_depth = static_cast<std::size_t>(-1);

  /// Subproblems a victim donates per steal request (parallel engine
  /// only).  Each donation serializes up to this many frontier picks into
  /// ONE injection-queue batch, amortizing the per-donation SerializedBdd
  /// round trip that single-node stealing pays on fine-grained trees.
  /// 1 reproduces the old node-at-a-time donation.  Donation only moves
  /// already-admitted frontier items between workers, so the depth-capped
  /// schedule-independence contract holds for any batch size.
  std::size_t steal_batch = 8;

  /// Wall-clock budget; zero means unlimited.
  std::chrono::milliseconds timeout{0};

  /// BFS (paper default), DFS, or best-first tree exploration.
  ExplorationOrder order = ExplorationOrder::BreadthFirst;

  /// Dynamic variable reordering of the solving manager(s).  Off (the
  /// default) never reorders — every cost and exploration count stays
  /// bit-identical to previous releases.  On sifts each engine manager
  /// once before exploration starts; Auto arms the GC-coupled trigger
  /// (BddManager::set_auto_reorder) for the duration of the run.  The
  /// BREL_REORDER environment variable ("off"/"on"/"auto") overrides
  /// this setting when present (resolve_reorder_mode) — the hook CI uses
  /// to re-run whole suites under forced reordering.  Reordering changes
  /// BDD *sizes*, so size-based costs may differ between runs with
  /// different modes (and between serial and parallel engines, whose
  /// managers sift independently); results remain compatible solutions
  /// of the relation in every mode.
  ReorderMode reorder = ReorderMode::Off;

  /// Node-count threshold arming the Auto reorder trigger
  /// (BddManager::set_auto_reorder's first_trigger).  Only meaningful
  /// with ReorderMode::Auto.  The default matches the manager's; pool
  /// embedders lower it in tests to make "the seeded order never
  /// re-sifts" observable at small sizes.
  std::size_t reorder_trigger = 1u << 16;

  /// Incremental re-solve (delta_context.hpp): when set (non-owning; the
  /// caller's registry must outlive the run and belong to the calling
  /// thread), a run whose root misses the global memo diffs its relation
  /// against the registry's most recent base over the same variable
  /// spaces and carries the XOR change region down the decomposition —
  /// untouched subtrees (zero delta cofactor) are exactly the base run's
  /// subproblems, so their depth-indexed memo entries serve without
  /// re-search, and SolverStats reports the reused/re-searched counts.
  /// Every naturally drained (or root-hit) run then remembers its own
  /// root as the next base.  Requires `global_memo`; ignored without it.
  DeltaRegistry* delta_registry = nullptr;

  /// Delta-localization pre-split (partition.hpp): when > 0, solve() first
  /// cofactors the relation on its first min(partition_inputs,
  /// num_inputs - 1) input variables and solves the 2^q block relations
  /// independently (each through the ordinary engine, sharing
  /// `global_memo`), composing f_o = OR_a cube(a) & f_{a,o}.  Input
  /// cofactoring is position stable — a k-minterm edit dirties at most k
  /// blocks, every clean block root-hits its base entry at zero
  /// exploration — which is what makes warm-delta traffic nearly free
  /// (the Fig. 6 output-refinement splits alone cannot localize a point
  /// edit; see partition.hpp).  The composed solution is compatible but
  /// generally not the same function a non-partitioned solve returns, so
  /// cold/warm comparisons must hold this setting fixed.  Ignored in
  /// exact mode and for relations with fewer than two inputs.
  std::size_t partition_inputs = 0;
};

/// Counters describing one solve() run.
struct SolverStats {
  std::size_t relations_explored = 0;  ///< popped from the frontier
  std::size_t splits = 0;              ///< Split operations performed
  std::size_t quick_solutions = 0;     ///< QuickSolver invocations
  std::size_t misf_minimizations = 0;  ///< per-output ISF minimizations
  std::size_t conflicts = 0;           ///< incompatible MISF solutions
  std::size_t pruned_by_cost = 0;      ///< line-6 bound rejections
  std::size_t pruned_by_symmetry = 0;  ///< symmetric subrelations skipped
  std::size_t pruned_by_cache = 0;     ///< duplicate subrelations deduped
  std::size_t memo_hits = 0;           ///< subtrees served by the global memo
  std::size_t fifo_overflow = 0;       ///< children dropped (frontier full)
  std::size_t depth_limited = 0;       ///< splits suppressed by max_depth
  std::size_t solutions_seen = 0;      ///< compatible functions encountered
  std::size_t workers = 1;             ///< threads that ran the exploration
  std::size_t steals = 0;              ///< subproblems migrated via injection
  std::size_t steal_batches = 0;       ///< donation batches through the queue
  std::size_t reorders = 0;            ///< sifting passes during this run
  std::size_t reorder_swaps = 0;       ///< adjacent-level swaps those made
  /// Incremental-delta classification (delta_context.hpp); all zero when
  /// no base relation was available for this run.
  bool delta_active = false;           ///< a base was found and diffed
  std::size_t delta_reused = 0;        ///< untouched subtrees served by memo
  std::size_t delta_researched = 0;    ///< subtrees re-entered the frontier
  bool budget_exhausted = false;       ///< stopped on max_relations/timeout
  /// Time threads of this run spent BLOCKED on the memo/injection locks
  /// (lock_stats.hpp), in ns.  Best effort: the underlying registry is
  /// process-global, so concurrent runs (pool slots) overlap in it; 0
  /// when BREL_LOCK_STATS is compiled out.
  std::uint64_t lock_wait_ns = 0;
  double runtime_seconds = 0.0;
};

/// A compatible solution plus the run's statistics.  Runs with more than
/// one worker additionally report the per-worker statistics.
struct SolveResult {
  MultiFunction function;
  double cost = 0.0;
  SolverStats stats;
  std::vector<SolverStats> worker_stats;  ///< empty for serial runs
};

/// The solver.  Reusable across relations; each solve() run is
/// independent.
class BrelSolver {
 public:
  explicit BrelSolver(SolverOptions options = {});

  /// Solve a well-defined relation.  Throws std::invalid_argument when the
  /// relation is not well defined (no compatible function exists; callers
  /// can use BooleanRelation::totalized() when partial relations are
  /// acceptable).  The result is always compatible with `r`.
  [[nodiscard]] SolveResult solve(const BooleanRelation& r) const;

  [[nodiscard]] const SolverOptions& options() const noexcept {
    return options_;
  }

 private:
  SolverOptions options_;
};

}  // namespace brel
