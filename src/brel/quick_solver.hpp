#pragma once
/// \file quick_solver.hpp
/// The naive BR solver of Fig. 4 (Sec. 6.2): minimize the outputs one by
/// one, each time propagating the chosen function as a constraint on the
/// remaining relation.  Fast, always returns a compatible function for a
/// well-defined relation, but order-dependent and often unbalanced — the
/// weaknesses that motivate the recursive paradigm (Example 6.1).
///
/// The BREL solver also runs QuickSolver on every subrelation it creates
/// so that a compatible solution exists no matter where the exploration
/// budget runs out (Secs. 7.2 and 7.6).

#include "brel/isf_minimizer.hpp"
#include "relation/relation.hpp"

namespace brel {

/// Solve `r` output-by-output in index order.  Throws std::invalid_argument
/// when `r` is not well defined (IF(R) is empty then).
[[nodiscard]] MultiFunction quick_solve(const BooleanRelation& r,
                                        const IsfMinimizer& minimizer = {});

}  // namespace brel
