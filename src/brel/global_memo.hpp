#pragma once
/// \file global_memo.hpp
/// Tier 0 of the tiered memo store: the sharded in-memory cross-solve
/// memo, keyed by the *manager-independent* serialized BDD form
/// (memo_backend.hpp holds the canonical forms and the tier interface).
///
/// `SubproblemCache` memoizes subtree results by raw manager-local edge:
/// O(1) probes, but the memos are only meaningful inside the one manager
/// (and variable assignment) that produced them.  The solver-pool service
/// layer needs the opposite trade: many long-lived workers, each with a
/// private `BddManager`, solving a stream of relations — a subproblem
/// first explored by worker A (in A's manager, at A's variable offsets)
/// must be recognizable when worker B re-generates it in B's manager
/// while solving a later request.  `GlobalMemo` achieves that by keying
/// on the canonical portable form (GlobalMemoKey): the rank-remapped
/// characteristic plus the input/output rank split.  Memoized solutions
/// are stored in the same rank-mapped serialized form and materialized
/// into the prober's manager with `deserialize_bdd` — never a
/// cross-manager handle.
///
/// Lifetime/GC contract: entries are PLAIN DATA — no `Bdd` handles, no
/// pinned edges, no reference counts.  Any manager may garbage-collect at
/// any time without invalidating the memo, which is what lets managers
/// outlive individual solves in the pool.
///
/// TWO-PHASE PROBE (the hash-consed key fast path): the shard maps are
/// keyed by the 128-bit canonical hash (memo_key_hash128), not by the
/// serialized key itself.  The engines probe with a `MemoKeyHandle` — a
/// LazyMemoKey carrying just the hash plus the live chi handle — so a
/// MISS, the overwhelming majority of probes, costs one cached-hash
/// lookup and serializes NOTHING.  Only a candidate hit (the hash is
/// present) forces the full canonical key into existence, to verify the
/// match: the stored entry keeps its materialized key
/// (shared_ptr<const GlobalMemoKey>), the handle materializes its own
/// OUTSIDE the shard lock, and a word-compare disambiguates.  A verified
/// handle caches the entry's created_seq in `verified_seq`, so every
/// re-probe and ancestor republish skips even the compare.  A hash
/// collision against a DIFFERENT key (never observed for a 128-bit
/// structural hash, but load-bearing for soundness) is counted and
/// treated as a miss; publishes under a colliding hash are dropped
/// (first key wins), so a collision can cost a memo hit but can never
/// serve or corrupt a wrong solution.
///
/// Concurrency: the table is SHARDED by canonical-key hash into
/// independently locked shards (per-shard mutex, map, LRU list).  A probe
/// or publish takes exactly one shard lock, so workers hashing to
/// different shards never contend.  Keys and entries are value types, and
/// no BDD manager is ever touched under a shard lock (hash-to-key
/// materialization releases the shard lock around the manager work and
/// re-finds after relocking).  Counters
/// (probes/hits/publishes/evictions) are per-shard relaxed atomics folded
/// lazily on read, off the locked path entirely — the `BddStats` idiom.
/// Run ids and the entry-creation sequence are process-wide atomics: a
/// global watermark is still a valid per-shard watermark, and any race
/// errs toward *skipping* a mark_complete, the safe direction.
///
/// Comparability: like `SubproblemCache`, memos are only sound between
/// runs minimizing the same objective in the same mode.  bind() stamps
/// the memo with a `MemoFingerprint` and mismatched reuse throws.  A
/// memo additionally only reflects how deeply its producing run explored
/// — share among runs of one configuration (the pool enforces this by
/// fixing one SolverOptions for all requests).
///
/// Tiering (this PR's refactor): GlobalMemo is the hot tier of a
/// `MemoBackend` stack.  Its own probe/publish/mark paths are untouched
/// — probe order, run-stamp vouching, and the depth-indexed completeness
/// semantics below are exactly what they were when it was the only tier.
/// Two cold-path hooks integrate the other tiers:
///
///   - a FAULT TIER (set_fault_tier): a ROOT-position lookup() that
///     misses locally consults the next tier (the peer exchange) and, on
///     a hit, installs the faulted entry locally before serving it.
///     Interior probes (lookup_at at depth > 0) never fault — the hot
///     per-subproblem path pays zero network I/O;
///   - a COMPLETE LISTENER (set_complete_listener): mark_complete
///     notifies it, outside any shard lock, of every key whose new mark
///     is eligible to cross a tier boundary — the push-gossip feed of
///     the peer exchange.
///
/// install() / export_complete() / export_entry() translate between the
/// in-memory entries and the tier-crossing `MemoExportEntry` form under
/// the export policy documented in memo_backend.hpp: only
/// naturally-complete entries and root-exact (truncated-at-depth-0)
/// records ever leave; interior truncated and unmarked entries never do.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "brel/lock_stats.hpp"
#include "brel/memo_backend.hpp"

namespace brel {

/// Identity of one producing run, handed out by begin_run(): a unique
/// run id plus the entry-creation sequence watermark at run start.
/// mark_complete() uses it to refuse flipping entries the marking run
/// neither fed nor found already present — with LRU eviction an entry
/// can be evicted mid-run and re-created by a *different* concurrent
/// run holding only a partial solution, and stamping THAT entry
/// complete would lock a degraded result into the service (the exact
/// hazard the completeness protocol exists to prevent).
struct MemoRunStamp {
  std::uint64_t run_id = 0;     ///< 0 = anonymous (matches nothing)
  std::uint64_t start_seq = 0;  ///< entries created at or before: trusted
};

/// One engine-side completeness claim about a touched key, consumed by
/// the depth-indexed mark_complete overload.  `depth` is the root
/// distance at which the producing run generated the subproblem;
/// `truncated` records that the subtree under it was cut by the run's
/// depth cap (directly, or by importing another truncated entry) rather
/// than bottoming out naturally.  kAnyDepth marks a naturally drained
/// subtree of a run with no depth cap at all — valid for a prober at
/// any depth.
struct MemoMark {
  std::shared_ptr<const GlobalMemoKey> key;
  std::uint64_t depth = 0;
  bool truncated = false;
};

/// The cross-solve memo.  Thread-safe; entries are plain data.
///
/// Completeness protocol: publishes made *during* a run only accumulate
/// an entry's best-so-far; lookup()/lookup_at() return nothing until the
/// entry is marked **complete**.  A run that ends at its natural
/// frontier drain (not stopped by budget/timeout) marks, per touched
/// subproblem, what it can vouch for:
///
///   - a subtree cut by NOTHING (no cost-bound prune, no symmetry or
///     subproblem-cache prune, no frontier-overflow drop, no depth-cap
///     cut anywhere under it) is **naturally complete**: its entry is the
///     subtree-final optimum under the memo's fingerprint.  It is marked
///     at its producing depth d — or at kAnyDepth when the run had no
///     depth cap — and serves any prober at depth d' <= d, because a
///     subtree that bottomed naturally within budget d does so verbatim
///     for every shallower (more generous) prober;
///   - a subtree cut ONLY by the depth cap is **depth-truncated
///     complete**: its entry is the exact result of exploring that
///     characteristic with the remaining budget D - d, a pure function
///     of (key, d) under one configuration, so it serves a prober at
///     exactly d' == d (the pool fixes one SolverOptions for all
///     requests, and the fingerprint rejects cross-objective reuse);
///   - a subtree cut by anything else (cost bound, symmetry, cache hit,
///     overflow) holds only a lower-quality partial memo and is not
///     marked at all — as is every ancestor of such a cut.  The ROOT is
///     the one exception: unless the run dropped children to frontier
///     overflow, the root entry is exactly what the solve returned, so
///     it is marked depth-truncated at depth 0 — faithful by
///     construction for a prober re-solving the identical relation.
///
/// This is what keeps a long-lived service sound: a request that times
/// out publishes only invisible partial memos, so the next identical
/// request re-explores instead of being served the degraded result
/// forever.  Completeness is sticky — a later, strictly better publish
/// (same fingerprint, so the same objective) refines a complete entry
/// without un-completing it, and a later natural mark upgrades a
/// truncated one (never the reverse).  The protocol is purely
/// per-entry, so it holds unchanged per shard.
class GlobalMemo : public MemoBackend {
 public:
  /// Default (auto) shard policy when `shards == 0`: an UNLIMITED memo
  /// shards kDefaultShards ways — the long-lived service configuration,
  /// where contention matters and the capacity bound never fires.  A
  /// FINITE capacity resolves to ONE shard, preserving exact global-LRU
  /// semantics (per-shard LRU cannot promise a global recency order).
  /// Explicit shard counts are rounded up to a power of two and clamped
  /// to [1, kMaxShards]; a finite capacity is then split as
  /// ceil(capacity / shards) per shard, enforced per shard.
  explicit GlobalMemo(std::size_t capacity = static_cast<std::size_t>(-1),
                      std::size_t shards = 0);

  static constexpr std::size_t kDefaultShards = 16;
  static constexpr std::size_t kMaxShards = 256;

  /// Stamp with the run configuration; mismatched reuse throws
  /// std::invalid_argument (cf. SubproblemCache::bind).
  void bind(const MemoFingerprint& fp);

  /// The bound fingerprint (nullopt before the first bind) — the
  /// snapshot and exchange tiers stamp/validate their records with it.
  [[nodiscard]] std::optional<MemoFingerprint> fingerprint() const;

  /// Hand out this run's identity (see MemoRunStamp): call once when a
  /// producing run starts, pass the stamp to every publish and to the
  /// final mark_complete.
  [[nodiscard]] MemoRunStamp begin_run();

  /// Probe depth marking a no-depth-cap natural drain: valid for a
  /// prober at any depth (see the protocol above).
  static constexpr std::uint64_t kAnyDepth = kMemoAnyDepth;

  /// Probe for `key` on behalf of a subproblem at root distance `depth`;
  /// returns the memoized solution only when the entry is complete AND
  /// its completeness covers that depth: naturally complete entries
  /// serve depth' <= depth, depth-truncated entries serve exactly their
  /// own depth (see the protocol above).  Counts a hit only when it
  /// serves.  By-value so the record is immune to concurrent publish().
  /// LOCAL only — never faults to another tier (the hot interior path).
  ///
  /// The handle form is the two-phase probe (see the file comment): a
  /// miss serializes nothing; a candidate hit verifies by materializing
  /// the handle's key outside the shard lock.  The key form is the
  /// compat path for callers that already hold a materialized key (the
  /// exchange and snapshot tiers, tests) — identical semantics.
  [[nodiscard]] std::optional<MemoHit> lookup_at(const MemoKeyHandle& key,
                                                 std::uint64_t depth) const;
  [[nodiscard]] std::optional<MemoHit> lookup_at(const GlobalMemoKey& key,
                                                 std::uint64_t depth) const;

  /// Depth-agnostic probe (root position): lookup_at(key, 0) without the
  /// truncated-ness flag.  Every complete entry serves at depth 0 except
  /// interior truncated ones, which only a matching-depth prober may
  /// import.  On a local miss this — and only this — path faults
  /// through the configured fault tier (set_fault_tier): a peer-owned
  /// entry is pulled, installed locally, and served; the next identical
  /// root probe is a plain local hit.  The handle form materializes its
  /// key only when a fault tier is actually configured (the wire needs
  /// the full canonical form); a plain local root miss stays hash-only.
  [[nodiscard]] std::optional<PortableSolution> lookup(
      const MemoKeyHandle& key);
  [[nodiscard]] std::optional<PortableSolution> lookup(
      const GlobalMemoKey& key);

  /// MemoBackend: the local lookup_at, in tier form (never faults).
  [[nodiscard]] std::optional<MemoHit> probe(const GlobalMemoKey& key,
                                             std::uint64_t depth) override;

  /// Insert-or-improve: record `solution` for `key` when the key is new
  /// or when the cost beats the stored entry.  At capacity a brand-new
  /// key EVICTS the least-recently-touched entry of its shard (recency
  /// is refreshed by every lookup or publish that finds the key
  /// present), so a long-lived service retains its hot working set
  /// instead of freezing whatever happened to arrive first;
  /// improvements to present keys never evict anything.  Never sets
  /// completeness.  `run_id` (begin_run) records who created a newly
  /// inserted entry, which is what lets mark_complete tell its own
  /// re-created entries from a concurrent run's.
  ///
  /// The handle form materializes the key only on first insert (lazily,
  /// outside the shard lock); improvements to a verified present entry
  /// never touch the serialized form at all.  A publish whose hash is
  /// held by a DIFFERENT key is dropped (first key wins; counted by
  /// collisions()).
  void publish(const MemoKeyHandle& key, const PortableSolution& solution,
               std::uint64_t run_id = 0);
  void publish(const GlobalMemoKey& key, const PortableSolution& solution,
               std::uint64_t run_id = 0);

  /// Record the engine's per-subproblem completeness claims — the
  /// engine calls this once its run has provably drained (see the
  /// protocol above).  Absent keys (evicted by the capacity bound) are
  /// skipped, and so is any entry the marking run cannot vouch for: one
  /// created after `stamp.start_seq` by a different run (an eviction
  /// hole re-filled by a concurrent solve's partial publishes).
  /// Upgrade rules on an already-complete entry: a natural mark
  /// replaces a truncated one, a deeper natural mark widens a shallower
  /// one, and a truncated mark never downgrades anything.  The default
  /// stamp trusts everything — the single-producer configuration, where
  /// no foreign entry can exist.
  void mark_complete(std::span<const MemoMark> marks,
                     const MemoRunStamp& stamp = MemoRunStamp{
                         0, static_cast<std::uint64_t>(-1)});

  /// Legacy whole-run overload: every key marked naturally complete at
  /// kAnyDepth (valid for any prober) — the pre-depth-indexed protocol,
  /// kept for callers that vouch for full natural drains themselves.
  void mark_complete(
      std::span<const std::shared_ptr<const GlobalMemoKey>> keys,
      const MemoRunStamp& stamp = MemoRunStamp{
          0, static_cast<std::uint64_t>(-1)});

  /// Install a tier-crossing record (snapshot load, peer pull/push).
  /// The record arrives ALREADY COMPLETE — vouched for by the drained
  /// run that exported it, content-addressed by its canonical key, and
  /// fingerprint-validated by the calling tier — so installation
  /// bypasses the run-stamp voucher (that voucher guards against
  /// in-process races on entries still being built; an imported record
  /// was finished in another process).  A new key inserts complete with
  /// the record's original mark (natural at complete_depth, or
  /// truncated-at-0 for root_exact); a present key upgrades under
  /// exactly the mark_complete rules, and its solution improves under
  /// exactly the publish rules.  Returns true when anything changed.
  bool install(const MemoExportEntry& entry, MemoOrigin origin) override;

  /// Enumerate every entry of the export policy (naturally complete at
  /// any depth, or root-exact truncated-at-0) — the snapshot writer and
  /// the push path.  Entries are copied out shard by shard; the sink
  /// runs outside any shard lock.
  void export_complete(const std::function<void(const MemoExportEntry&)>&
                           sink) const override;

  /// Export one key under the same policy (nullopt when absent or not
  /// eligible) — the MEMO_PULL server path.
  [[nodiscard]] std::optional<MemoExportEntry> export_entry(
      const GlobalMemoKey& key) const;

  /// Wire the next tier for root-miss faulting (nullptr disconnects).
  /// The tier must outlive the memo or be disconnected first.
  void set_fault_tier(MemoBackend* tier);

  /// Register the completion listener (empty function disconnects): it
  /// receives, outside any shard lock, each key whose fresh
  /// mark_complete made it export-eligible.  The push-gossip feed.
  void set_complete_listener(std::function<void(const GlobalMemoKey&)> fn);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Number of independently locked shards (≥ 1, power of two).
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  /// Shard index `key` hashes to (stable for the memo's lifetime).
  [[nodiscard]] std::size_t shard_of(const GlobalMemoKey& key) const noexcept;
  /// Entry count of one shard (for distribution diagnostics/tests).
  [[nodiscard]] std::size_t shard_size(std::size_t shard) const;
  /// Per-shard slice of the capacity bound (SIZE_MAX when unlimited).
  [[nodiscard]] std::size_t shard_capacity() const noexcept {
    return shard_capacity_;
  }

  // Lazily folded totals over the per-shard relaxed atomics — no shard
  // lock is taken, so polling stats never perturbs the hot path.
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t probes() const;
  [[nodiscard]] std::uint64_t publishes() const;
  /// Entries removed by the capacity bound's LRU policy so far.
  [[nodiscard]] std::uint64_t evictions() const;
  /// Probes/publishes whose 128-bit hash matched an entry holding a
  /// DIFFERENT canonical key (detected by the verify step; treated as a
  /// miss / dropped publish).  Expected to stay 0 outside the forced-
  /// collision tests — nonzero here in production means hash quality
  /// trouble worth investigating, never a wrong answer.
  [[nodiscard]] std::uint64_t collisions() const;
  /// Hits broken down by the serving entry's origin (run / snapshot /
  /// peer) — the per-tier accounting the STATS surface reports.
  [[nodiscard]] std::uint64_t hits_from(MemoOrigin origin) const;

 private:
  /// The map consumes the LOW word of the 128-bit canonical hash (its
  /// buckets take the bottom bits); shard selection takes the TOP bits
  /// of the same word, so the two never correlate.  The high word is
  /// pure collision margin for the verify step.
  struct Hash128Hasher {
    [[nodiscard]] std::size_t operator()(
        const CanonicalHash128& h) const noexcept {
      return static_cast<std::size_t>(h.lo);
    }
  };
  struct Entry {
    /// The verified canonical identity of this entry — shared with the
    /// publishing handle, so insertion never copies the arena.  Needed
    /// (beyond the map's hash key) to verify candidate hits and to
    /// export: entries stay PLAIN DATA.
    std::shared_ptr<const GlobalMemoKey> key;
    PortableSolution solution;
    bool complete = false;
    /// Depth the completeness claim covers (kAnyDepth = any prober);
    /// meaningful only while `complete` is set.
    std::uint64_t complete_depth = 0;
    /// Depth-truncated completeness: serves only probers at exactly
    /// complete_depth (see the protocol above).
    bool complete_truncated = false;
    MemoOrigin origin = MemoOrigin::kRun;  ///< who created the entry
    std::uint64_t creator_run = 0;  ///< run_id of the inserting publish
    std::uint64_t created_seq = 0;  ///< insertion order (for run stamps)
    /// Position in the shard's lru (most-recently-touched at the
    /// front).  List iterators survive splices, so a const lookup can
    /// refresh recency without touching the entry itself.
    std::list<CanonicalHash128>::iterator lru;
  };

  /// One independently locked slice of the table.  All shard mutexes
  /// share the "memo" lock-stats group, so contention reports aggregate
  /// across shards automatically.
  struct Shard {
    using Map =
        std::unordered_map<CanonicalHash128, Entry, Hash128Hasher>;
    mutable TimedMutex mutex{lock_names::kMemo};
    Map map;
    /// Recency order over this shard's hash keys (values, not pointers
    /// — a CanonicalHash128 is two words); back() is the victim.
    mutable std::list<CanonicalHash128> lru;
    // Folded lazily by the accessors; never read under the mutex.
    mutable std::atomic<std::uint64_t> hits{0};
    mutable std::atomic<std::uint64_t> probes{0};
    std::atomic<std::uint64_t> publishes{0};
    std::atomic<std::uint64_t> evictions{0};
    mutable std::atomic<std::uint64_t> collisions{0};
    mutable std::atomic<std::uint64_t> hits_by_origin[kMemoOriginCount] = {};
  };

  /// Move `entry` to `shard`'s most-recently-touched position (call
  /// with the shard's mutex held).
  static void touch(const Shard& shard, const Entry& entry) {
    shard.lru.splice(shard.lru.begin(), shard.lru, entry.lru);
  }

  /// Is `entry` eligible to cross a tier boundary?  (Call with the
  /// shard's mutex held.)
  [[nodiscard]] static bool exportable(const Entry& entry) noexcept {
    return entry.complete && entry.solution.has_solution() &&
           (!entry.complete_truncated || entry.complete_depth == 0);
  }
  /// Tier-crossing form of an exportable entry (mutex held).
  [[nodiscard]] static MemoExportEntry to_export(const Entry& entry) {
    return MemoExportEntry{*entry.key, entry.solution, entry.complete_depth,
                           entry.complete_truncated};
  }

  /// Shard index for a canonical hash (stable for the memo's lifetime).
  [[nodiscard]] std::size_t shard_of_hash(
      const CanonicalHash128& h) const noexcept;

  /// Resolve `handle` to its IDENTITY-VERIFIED entry, or map.end() on a
  /// miss / collision (counted).  Entered with `lk` holding the shard
  /// mutex; may RELEASE and re-acquire it to materialize the handle's
  /// key (manager work never runs under a shard lock), re-finding after
  /// relock since the entry may have moved.  On success the handle
  /// caches the entry's created_seq so its next probe skips the
  /// compare entirely.
  Shard::Map::iterator find_verified(Shard& shard,
                                     std::unique_lock<TimedMutex>& lk,
                                     const LazyMemoKey& handle) const;

  /// Key-form verify (compat path; mutex held, never released): the
  /// caller already owns a materialized key, so a candidate hit is one
  /// word-compare away.
  Shard::Map::iterator find_verified(Shard& shard,
                                     const CanonicalHash128& hash,
                                     const GlobalMemoKey& key) const;

  /// The completeness/depth gate shared by both lookup_at forms (mutex
  /// held; `entry` already identity-verified).  Touches recency, counts
  /// the hit, and copies the solution out.
  std::optional<MemoHit> serve(const Shard& shard, const Entry& entry,
                               std::uint64_t depth) const;

  /// Insert-or-touch an entry for (`hash`, `key`), evicting per the LRU
  /// policy (mutex held).  Returns nullptr when shard_capacity_ is 0.
  Entry* emplace_entry(Shard& shard, const CanonicalHash128& hash,
                       std::shared_ptr<const GlobalMemoKey> key,
                       std::uint64_t run_id, MemoOrigin origin);

  std::size_t capacity_;        ///< total bound across shards
  std::size_t shard_capacity_;  ///< per-shard slice of the bound
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex meta_mutex_;  ///< guards fingerprint_ only (cold)
  std::optional<MemoFingerprint> fingerprint_;

  /// Next tier for root-miss faulting; plain atomic pointer because the
  /// hookup happens before traffic (server start) and teardown after
  /// the drain.
  std::atomic<MemoBackend*> fault_tier_{nullptr};

  /// Completion listener (push-gossip feed); guarded by its own mutex —
  /// mark_complete is a cold once-per-run path.
  mutable std::mutex listener_mutex_;
  std::function<void(const GlobalMemoKey&)> complete_listener_;

  // The run-id and entry-creation sequence counters are PROCESS-GLOBAL
  // (file-local atomics in global_memo.cpp), not members: created_seq
  // values double as the verification tokens handles cache in
  // LazyMemoKey::verified_seq, and a handle could outlive one memo and
  // probe another (tests do; embedders may).  Process-unique tokens
  // make a stale token merely cost a redundant compare, never validate
  // against the wrong entry.  A global watermark is still a valid
  // per-memo watermark for the mark_complete voucher.
};

}  // namespace brel
