#include "brel/symmetry.hpp"

namespace brel {

SymmetryCache::SymmetryCache(BddManager& mgr,
                             std::vector<std::uint32_t> outputs,
                             bool enable_second_order)
    : mgr_(&mgr),
      outputs_(std::move(outputs)),
      enable_second_order_(enable_second_order) {}

bool SymmetryCache::seen_before_or_insert(const Bdd& chi) {
  if (cache_.count(chi.raw_edge()) != 0) {
    ++hits_;
    return true;
  }
  // Try output-pair transforms; if any image is cached, this relation is
  // redundant.  Variants per pair (i, j):
  //   (a) swap                       y_i <-> y_j
  //   (b) complemented swap          y_i <-> !y_j        (skew)
  //   (c) complement pair            y_i -> !y_i, y_j -> !y_j
  //       (parity-preserving: the sibling symmetry of XOR-shaped gates)
  //   (d) swap + one other output complemented
  //       (the conditional symmetry of the mux: mux(A,B,C) = mux(B,A,!C))
  std::vector<Bdd> identity;
  identity.reserve(mgr_->num_vars());
  for (std::uint32_t v = 0; v < mgr_->num_vars(); ++v) {
    identity.push_back(mgr_->var(v));
  }
  const auto probe = [&](const std::vector<Bdd>& substitution) {
    const Bdd image = mgr_->compose(chi, substitution);
    if (cache_.count(image.raw_edge()) != 0) {
      ++hits_;
      return true;
    }
    return false;
  };
  for (std::size_t i = 0; i < outputs_.size(); ++i) {
    for (std::size_t j = i + 1; j < outputs_.size(); ++j) {
      const std::uint32_t yi = outputs_[i];
      const std::uint32_t yj = outputs_[j];
      {
        std::vector<Bdd> swap = identity;
        std::swap(swap[yi], swap[yj]);
        if (probe(swap)) {
          return true;
        }
        if (enable_second_order_) {
          // (d): the swap additionally complements one other output.
          for (const std::uint32_t yk : outputs_) {
            if (yk == yi || yk == yj) {
              continue;
            }
            std::vector<Bdd> conditional = swap;
            conditional[yk] = !identity[yk];
            if (probe(conditional)) {
              return true;
            }
          }
        }
      }
      if (enable_second_order_) {
        std::vector<Bdd> skew = identity;
        skew[yi] = !identity[yj];
        skew[yj] = !identity[yi];
        if (probe(skew)) {
          return true;
        }
        std::vector<Bdd> pair = identity;
        pair[yi] = !identity[yi];
        pair[yj] = !identity[yj];
        if (probe(pair)) {
          return true;
        }
      }
    }
  }
  cache_.insert(chi.raw_edge());
  keep_alive_.push_back(chi);
  return false;
}

}  // namespace brel
