#include "brel/solver_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "brel/parallel_engine.hpp"  // resolve_worker_count
#include "brel/search.hpp"
#include "relation/relation_io.hpp"

namespace brel {

namespace {

struct Job {
  std::string text;
  std::promise<PoolResult> promise;
};

}  // namespace

MultiFunction import_pool_solution(BddManager& mgr, const BooleanRelation& r,
                                   const PoolResult& result) {
  return import_portable_solution(mgr, make_memo_space(r), result.solution);
}

struct SolverPool::Impl {
  explicit Impl(PoolOptions options)
      : options(std::move(options)),
        workers(resolve_worker_count(this->options.workers)) {
    // Normalize the per-request engine configuration once: requests run
    // the serial engine (the pool's parallelism is across requests), a
    // raw-edge cache cannot be shared across slot managers, and the
    // pool's own memo is the cross-request channel.
    this->options.solver.num_workers = 1;
    this->options.solver.subproblem_cache = nullptr;
    // A caller-provided memo is always adopted (sharing warm state
    // across pools); share_memo only controls whether the pool creates
    // its own when none was given.  bind fails fast on a fingerprint
    // clash (e.g. a memo that served a different objective).
    memo = this->options.solver.global_memo;
    if (memo == nullptr && this->options.share_memo) {
      memo = std::make_shared<GlobalMemo>(this->options.memo_capacity);
    }
    if (memo != nullptr) {
      memo->bind(MemoFingerprint{
          (this->options.solver.cost ? this->options.solver.cost
                                     : sum_of_bdd_sizes())
              .id(),
          this->options.solver.exact});
    }
    this->options.solver.global_memo = memo;

    threads.reserve(workers);
    try {
      for (std::size_t w = 0; w < workers; ++w) {
        threads.emplace_back([this, w] { worker_loop(w); });
      }
    } catch (...) {
      shutdown();  // join whoever already started before rethrowing
      throw;
    }
  }

  void worker_loop(std::size_t id) {
    // The slot's persistent substrate: one manager and one subproblem
    // cache, owned by this thread for the pool's whole lifetime.
    BddManager mgr{0};
    mgr.bind_to_current_thread();
    std::shared_ptr<SubproblemCache> slot_cache;
    if (options.reuse_subproblem_cache) {
      slot_cache = std::make_shared<SubproblemCache>(
          options.solver.subproblem_cache_capacity);
    }

    while (true) {
      Job job;
      {
        std::unique_lock lock(mutex);
        queue_ready.wait(lock, [this] { return stop || !queue.empty(); });
        if (queue.empty()) {
          return;  // stop && drained
        }
        job = std::move(queue.front());
        queue.pop_front();
      }
      // Counted before the promise resolves, so a caller that joined
      // every future observes the full tally.
      served.fetch_add(1);
      try {
        // The slot recycled its variable block after the previous
        // request (reset_variables below), so this request parses into
        // variables 0..width-1; its handles die with this scope.
        BooleanRelation r = read_relation(mgr, job.text);
        if (options.totalize) {
          r = r.totalized();
        }
        SolverOptions solve_options = options.solver;
        if (slot_cache != nullptr) {
          // The cache was emptied at the previous request's end (raw-edge
          // keys must not survive a variable-block recycle); re-stamp it
          // for this request's fingerprint.
          slot_cache->rebind_or_clear(make_cache_fingerprint(
              r, solve_options,
              solve_options.cost ? solve_options.cost
                                 : sum_of_bdd_sizes()));
          solve_options.subproblem_cache = slot_cache;
        }
        SolveResult solved = SearchEngine(r, solve_options).run();
        PoolResult out;
        out.solution = make_portable_solution(make_memo_space(r),
                                              solved.function, solved.cost);
        out.cost = solved.cost;
        out.stats = solved.stats;
        out.worker_id = id;
        out.manager_num_vars = mgr.num_vars();
        job.promise.set_value(std::move(out));
      } catch (...) {
        job.promise.set_exception(std::current_exception());
      }
      // Slot recycling: the request's handles are dead past this point.
      // Empty the slot cache (its entries pin edges) and reclaim the
      // whole variable block, so num_vars stays bounded by the widest
      // single request instead of growing with every request served.
      // reset_variables only declines when something still pins a node —
      // impossible here, but fall back to ordinary GC rather than assert
      // on a hypothetical embedder extension.
      if (slot_cache != nullptr) {
        slot_cache->clear();
      }
      if (!mgr.reset_variables()) {
        mgr.garbage_collect_if_needed();
      }
    }
  }

  std::future<PoolResult> enqueue(std::string text) {
    Job job;
    job.text = std::move(text);
    std::future<PoolResult> future = job.promise.get_future();
    {
      const std::scoped_lock lock(mutex);
      if (stop) {
        throw std::runtime_error("SolverPool: submit after shutdown");
      }
      queue.push_back(std::move(job));
    }
    queue_ready.notify_one();
    return future;
  }

  void shutdown() {
    {
      const std::scoped_lock lock(mutex);
      if (stop) {
        return;
      }
      stop = true;
    }
    queue_ready.notify_all();
    for (std::thread& t : threads) {
      if (t.joinable()) {
        t.join();
      }
    }
  }

  PoolOptions options;
  std::size_t workers;
  std::shared_ptr<GlobalMemo> memo;

  std::mutex mutex;
  std::condition_variable queue_ready;
  std::deque<Job> queue;
  bool stop = false;
  std::atomic<std::uint64_t> served{0};

  std::vector<std::thread> threads;
};

SolverPool::SolverPool(PoolOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

SolverPool::~SolverPool() { impl_->shutdown(); }

std::future<PoolResult> SolverPool::submit(std::string relation_text) {
  return impl_->enqueue(std::move(relation_text));
}

std::future<PoolResult> SolverPool::submit(const BooleanRelation& r) {
  return impl_->enqueue(write_relation_bdd(r));
}

void SolverPool::shutdown() { impl_->shutdown(); }

std::size_t SolverPool::worker_count() const noexcept {
  return impl_->workers;
}

const std::shared_ptr<GlobalMemo>& SolverPool::memo() const noexcept {
  return impl_->memo;
}

std::uint64_t SolverPool::requests_served() const {
  return impl_->served.load();
}

}  // namespace brel
