#include "brel/solver_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <limits>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "brel/lock_stats.hpp"
#include "brel/memo_snapshot.hpp"
#include "brel/parallel_engine.hpp"  // resolve_worker_count
#include "brel/search.hpp"
#include "relation/relation_io.hpp"

namespace brel {

namespace {

struct Job {
  std::string text;
  RequestOptions request;
  std::chrono::steady_clock::time_point submitted;
  std::promise<PoolResult> promise;
};

/// Number of RequestPriority classes (one deque per class per mailbox).
constexpr std::size_t kPriorityClasses = 2;

}  // namespace

MultiFunction import_pool_solution(BddManager& mgr, const BooleanRelation& r,
                                   const PoolResult& result) {
  return import_portable_solution(mgr, make_memo_space(r), result.solution);
}

/// Request distribution: instead of one mutex+condvar deque that every
/// submitter and every slot hammers, each slot owns a MAILBOX (its own
/// small mutex + deque).  submit() picks a mailbox round-robin with a
/// relaxed atomic counter — concurrent submitters land on different
/// mailboxes and never serialize behind each other — and idle slots
/// STEAL from other mailboxes before parking, so an unlucky round-robin
/// burst cannot strand work behind a slow request.  The shared sleep
/// mutex/condvar exists only for parking: the saturated (throughput)
/// path never touches it, because submit only notifies when the
/// `sleepers` count says somebody is actually asleep.
///
/// Shutdown ordering makes the drain airtight without a global lock:
/// shutdown() first CLOSES every mailbox (under its own lock — later
/// submits throw), then sets `stop`.  A slot that observes `stop` does
/// one more full scan before exiting; any job enqueued before its
/// mailbox closed happened-before the close, the close
/// sequenced-before the `stop` store, so the post-`stop` scan is
/// guaranteed to see it.  Every accepted job is therefore served.
struct SolverPool::Impl {
  struct Mailbox {
    TimedMutex mutex{lock_names::kPool};
    /// One FIFO per RequestPriority class; pops drain class 0
    /// (Interactive) before class 1 (Batch), FIFO within a class.
    std::deque<Job> jobs[kPriorityClasses];
    bool closed = false;
  };

  explicit Impl(PoolOptions options)
      : options(std::move(options)),
        workers(resolve_worker_count(this->options.workers)) {
    // Normalize the per-request engine configuration once: requests run
    // the serial engine (the pool's parallelism is across requests), a
    // raw-edge cache cannot be shared across slot managers, and the
    // pool's own memo is the cross-request channel.
    this->options.solver.num_workers = 1;
    this->options.solver.subproblem_cache = nullptr;
    // A caller-provided memo is always adopted (sharing warm state
    // across pools); share_memo only controls whether the pool creates
    // its own when none was given.  bind fails fast on a fingerprint
    // clash (e.g. a memo that served a different objective).
    memo = this->options.solver.global_memo;
    if (memo == nullptr && this->options.share_memo) {
      memo = std::make_shared<GlobalMemo>(this->options.memo_capacity,
                                          this->options.memo_shards);
    }
    if (memo != nullptr) {
      memo->bind(MemoFingerprint{
          (this->options.solver.cost ? this->options.solver.cost
                                     : sum_of_bdd_sizes())
              .id(),
          this->options.solver.exact});
    }
    this->options.solver.global_memo = memo;

    // Tier-1 restore, BEFORE any worker starts: a request served after
    // construction already sees yesterday's entries.  A bad file is a
    // partial/empty load recorded in snapshot_info(), never a throw —
    // a service must come up cold rather than not at all.
    if (memo != nullptr && !this->options.memo_load_path.empty()) {
      const SnapshotLoadResult loaded =
          load_memo_snapshot(*memo, this->options.memo_load_path);
      snapshot.load_attempted = true;
      snapshot.load_ok = loaded.ok;
      snapshot.entries_loaded = loaded.entries_installed;
      snapshot.entries_skipped = loaded.entries_skipped;
      snapshot.loaded_saved_at = loaded.saved_at;
      snapshot.load_error = loaded.error;
    }

    mailboxes.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      mailboxes.push_back(std::make_unique<Mailbox>());
    }
    threads.reserve(workers);
    try {
      for (std::size_t w = 0; w < workers; ++w) {
        threads.emplace_back([this, w] { worker_loop(w); });
      }
    } catch (...) {
      shutdown();  // join whoever already started before rethrowing
      throw;
    }
  }

  /// Pop the oldest job of one mailbox's priority class `cls`, if any.
  bool try_take_class(std::size_t slot, std::size_t cls, Job& out) {
    Mailbox& box = *mailboxes[slot];
    const std::scoped_lock lock(box.mutex);
    if (box.jobs[cls].empty()) {
      return false;
    }
    out = std::move(box.jobs[cls].front());
    box.jobs[cls].pop_front();
    return true;
  }

  /// Pop the oldest job of one mailbox, highest priority class first.
  bool try_take(std::size_t slot, Job& out) {
    Mailbox& box = *mailboxes[slot];
    const std::scoped_lock lock(box.mutex);
    for (std::deque<Job>& jobs : box.jobs) {
      if (!jobs.empty()) {
        out = std::move(jobs.front());
        jobs.pop_front();
        return true;
      }
    }
    return false;
  }

  /// Next job for slot `id`: sweep every mailbox (own first, then the
  /// others — the idle steal) for an Interactive job before taking any
  /// Batch job anywhere, then park.  The class-major sweep is what
  /// "priorities honored at mailbox pop" means under round-robin
  /// submission: an interactive request never waits behind another
  /// mailbox's batch backlog while any slot is free to notice it.
  /// Returns false when the pool stopped and nothing is left anywhere.
  bool acquire(std::size_t id, Job& out) {
    while (true) {
      for (std::size_t cls = 0; cls < kPriorityClasses; ++cls) {
        for (std::size_t i = 0; i < workers; ++i) {
          if (try_take_class((id + i) % workers, cls, out)) {
            pending.fetch_sub(1, std::memory_order_relaxed);
            return true;
          }
        }
      }
      if (stop.load(std::memory_order_acquire)) {
        // Final drain: `stop` is only stored after every mailbox was
        // closed, so a scan made after observing it sees every job that
        // was ever accepted (see the file comment on the ordering).
        for (std::size_t s = 0; s < workers; ++s) {
          if (try_take(s, out)) {
            pending.fetch_sub(1, std::memory_order_relaxed);
            return true;
          }
        }
        return false;
      }
      // Park.  The pending/sleepers handshake with enqueue() makes the
      // lost-wakeup window benign, and the timed wait bounds even that
      // to one period.
      sleepers.fetch_add(1);
      {
        std::unique_lock lock(sleep_mutex);
        if (pending.load() == 0 && !stop.load()) {
          sleep_cv.wait_for(lock, std::chrono::milliseconds(50));
        }
      }
      sleepers.fetch_sub(1);
    }
  }

  void worker_loop(std::size_t id) {
    // The slot's persistent substrate: one manager and one subproblem
    // cache, owned by this thread for the pool's whole lifetime.
    BddManager mgr{0};
    mgr.bind_to_current_thread();
    std::shared_ptr<SubproblemCache> slot_cache;
    if (options.reuse_subproblem_cache) {
      slot_cache = std::make_shared<SubproblemCache>(
          options.solver.subproblem_cache_capacity);
    }
    // Incremental base retention (PoolOptions::incremental): slot-
    // private and thread-confined like the cache above, but — holding
    // only plain serialized data — it SURVIVES the per-request
    // variable-block recycle, which is exactly what makes warm delta
    // re-solves work across requests.  The DELTA path needs the memo
    // (reuse flows through marked memo entries); the registry's ORDER
    // memory works memo-less, so the registry exists whenever
    // incremental is on.
    std::optional<DeltaRegistry> slot_registry;
    if (resolve_incremental(options.incremental)) {
      slot_registry.emplace();
    }

    while (true) {
      Job job;
      if (!acquire(id, job)) {
        return;  // stop && drained
      }
      // Counted before the promise resolves, so a caller that joined
      // every future observes the full tally.
      served.fetch_add(1);
      const auto picked_up = std::chrono::steady_clock::now();
      const std::uint64_t queue_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              picked_up - job.submitted)
              .count());
      try {
        // Deadline pre-check: a request whose deadline was spent while
        // it queued must still RESOLVE its future — skip even the parse
        // (the one potentially expensive step left) and report an
        // empty best-so-far with budget_exhausted set, exactly what the
        // engine would report had it been given zero time.
        if (job.request.deadline.has_value() &&
            picked_up >= *job.request.deadline) {
          PoolResult out;
          out.cost = std::numeric_limits<double>::infinity();
          out.stats.budget_exhausted = true;
          out.worker_id = id;
          out.manager_num_vars = mgr.num_vars();
          out.deadline_expired = true;
          out.queue_ns = queue_ns;
          job.promise.set_value(std::move(out));
          continue;
        }
        // Order persistence: when the slot remembers the sifted order a
        // previous same-signature solve ended with, seed this request's
        // variable block from it — the parse places each block variable
        // at its remembered rank (exactly as an explicit `.order` line
        // would), so repeat traffic starts where sifting left off
        // instead of re-climbing the reorder ramp.
        const std::vector<std::uint32_t>* order_hint = nullptr;
        if (slot_registry.has_value()) {
          if (const std::optional<RelationSignature> sig =
                  peek_relation_signature(job.text)) {
            order_hint = slot_registry->find_order(sig->input_ranks,
                                                   sig->output_ranks);
          }
        }
        // The slot recycled its variable block after the previous
        // request (reset_variables below), so this request parses into
        // variables 0..width-1; its handles die with this scope.
        BooleanRelation r = read_relation(mgr, job.text, order_hint);
        if (options.totalize) {
          r = r.totalized();
        }
        SolverOptions solve_options = options.solver;
        if (job.request.deadline.has_value()) {
          // Map what remains of the request deadline onto the engine's
          // timeout machinery (per request — the pool-wide setting stays
          // the ceiling when tighter).  Re-read the clock AFTER the
          // parse: the engine clocks its timeout from its own start, so
          // this is what keeps the deadline absolute.
          // Round the remainder UP: truncating would have the engine
          // stop a fraction of a millisecond BEFORE the deadline, and
          // the absolute now-vs-deadline check below would then read a
          // deadline stop as an ordinary budget stop.
          const auto remaining =
              std::chrono::ceil<std::chrono::milliseconds>(
                  *job.request.deadline - std::chrono::steady_clock::now());
          // Ceil to 1ms: timeout 0 means UNLIMITED, which would invert
          // an almost-spent deadline into no deadline at all.
          const auto budget =
              remaining > std::chrono::milliseconds(1)
                  ? remaining
                  : std::chrono::milliseconds(1);
          solve_options.timeout =
              solve_options.timeout.count() > 0
                  ? std::min(solve_options.timeout, budget)
                  : budget;
        }
        if (slot_cache != nullptr) {
          // The cache was emptied at the previous request's end (raw-edge
          // keys must not survive a variable-block recycle); re-stamp it
          // for this request's fingerprint.
          slot_cache->rebind_or_clear(make_cache_fingerprint(
              r, solve_options,
              solve_options.cost ? solve_options.cost
                                 : sum_of_bdd_sizes()));
          solve_options.subproblem_cache = slot_cache;
        }
        if (slot_registry.has_value() && memo != nullptr) {
          solve_options.delta_registry = &*slot_registry;
        }
        SolveResult solved = SearchEngine(r, solve_options).run();
        const MemoSpace space = make_memo_space(r);
        if (slot_registry.has_value()) {
          // Remember the POST-solve order (whatever sifting settled on)
          // for the next same-signature request.  An identity order is
          // remembered too — it clears a stale hint a later sift moved
          // away from (find_order treats empty as absent).
          slot_registry->remember_order(space.input_ranks,
                                        space.output_ranks,
                                        relation_block_order(r));
        }
        PoolResult out;
        out.solution =
            make_portable_solution(space, solved.function, solved.cost);
        out.cost = solved.cost;
        out.stats = solved.stats;
        out.worker_id = id;
        out.manager_num_vars = mgr.num_vars();
        // A deadline stop is an ordinary engine timeout whose budget
        // came from the request: the run ended with the clock past the
        // deadline.  (A run that drained naturally just inside its
        // budget ends with the clock still before it.)
        out.deadline_expired =
            job.request.deadline.has_value() && out.stats.budget_exhausted &&
            std::chrono::steady_clock::now() >= *job.request.deadline;
        out.queue_ns = queue_ns;
        job.promise.set_value(std::move(out));
      } catch (...) {
        job.promise.set_exception(std::current_exception());
      }
      // Slot recycling: the request's handles are dead past this point.
      // Empty the slot cache (its entries pin edges) and reclaim the
      // whole variable block, so num_vars stays bounded by the widest
      // single request instead of growing with every request served.
      // reset_variables only declines when something still pins a node —
      // impossible here, but fall back to ordinary GC rather than assert
      // on a hypothetical embedder extension.
      if (slot_cache != nullptr) {
        slot_cache->clear();
      }
      if (!mgr.reset_variables()) {
        mgr.garbage_collect_if_needed();
      }
    }
  }

  std::future<PoolResult> enqueue(std::string text, RequestOptions request) {
    Job job;
    job.text = std::move(text);
    job.request = request;
    job.submitted = std::chrono::steady_clock::now();
    std::future<PoolResult> future = job.promise.get_future();
    const std::size_t cls =
        static_cast<std::size_t>(request.priority) < kPriorityClasses
            ? static_cast<std::size_t>(request.priority)
            : kPriorityClasses - 1;
    const std::size_t slot =
        next_slot.fetch_add(1, std::memory_order_relaxed) % workers;
    {
      Mailbox& box = *mailboxes[slot];
      const std::scoped_lock lock(box.mutex);
      if (box.closed) {
        throw std::runtime_error("SolverPool: submit after shutdown");
      }
      box.jobs[cls].push_back(std::move(job));
    }
    pending.fetch_add(1, std::memory_order_release);
    if (sleepers.load() > 0) {
      // Only parked slots cost a shared-lock touch; the saturated path
      // (sleepers == 0) never contends anything beyond its one mailbox.
      const std::scoped_lock lock(sleep_mutex);
      sleep_cv.notify_one();
    }
    return future;
  }

  void shutdown() {
    const std::scoped_lock guard(shutdown_mutex);
    if (stopped) {
      return;
    }
    stopped = true;
    // Close every mailbox BEFORE raising stop — the ordering the
    // workers' final drain scan relies on (see the file comment).
    for (const std::unique_ptr<Mailbox>& box : mailboxes) {
      const std::scoped_lock lock(box->mutex);
      box->closed = true;
    }
    stop.store(true, std::memory_order_release);
    {
      const std::scoped_lock lock(sleep_mutex);
      sleep_cv.notify_all();
    }
    for (std::thread& t : threads) {
      if (t.joinable()) {
        t.join();
      }
    }
    // Tier-1 flush, AFTER the workers joined: every drained request's
    // completions are in the memo, and no publisher runs concurrently
    // with the export walk.
    if (memo != nullptr && !options.memo_save_path.empty()) {
      const std::uint64_t now_unix = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::seconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count());
      const SnapshotSaveResult saved =
          save_memo_snapshot(*memo, options.memo_save_path, now_unix);
      const std::scoped_lock lock(snapshot_mutex);
      snapshot.save_attempted = true;
      snapshot.save_ok = saved.ok;
      snapshot.entries_saved = saved.entries;
      snapshot.save_error = saved.error;
    }
  }

  PoolOptions options;
  std::size_t workers;
  std::shared_ptr<GlobalMemo> memo;

  std::vector<std::unique_ptr<Mailbox>> mailboxes;
  std::atomic<std::size_t> next_slot{0};  ///< round-robin submit cursor
  std::atomic<std::size_t> pending{0};    ///< accepted, not yet taken
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> sleepers{0};   ///< slots parked on sleep_cv
  std::mutex sleep_mutex;                 ///< parking only — never hot
  std::condition_variable sleep_cv;
  std::atomic<std::uint64_t> served{0};

  std::mutex shutdown_mutex;  ///< serializes shutdown() callers
  bool stopped = false;       ///< under shutdown_mutex

  mutable std::mutex snapshot_mutex;
  /// Under snapshot_mutex (the constructor's load writes pre-thread).
  MemoSnapshotInfo snapshot;

  std::vector<std::thread> threads;
};

SolverPool::SolverPool(PoolOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

SolverPool::~SolverPool() { impl_->shutdown(); }

std::future<PoolResult> SolverPool::submit(std::string relation_text) {
  return impl_->enqueue(std::move(relation_text), RequestOptions{});
}

std::future<PoolResult> SolverPool::submit(std::string relation_text,
                                           RequestOptions request) {
  return impl_->enqueue(std::move(relation_text), request);
}

std::future<PoolResult> SolverPool::submit(const BooleanRelation& r) {
  return impl_->enqueue(write_relation_bdd(r), RequestOptions{});
}

void SolverPool::shutdown() { impl_->shutdown(); }

std::size_t SolverPool::worker_count() const noexcept {
  return impl_->workers;
}

const std::shared_ptr<GlobalMemo>& SolverPool::memo() const noexcept {
  return impl_->memo;
}

std::uint64_t SolverPool::requests_served() const {
  return impl_->served.load();
}

MemoSnapshotInfo SolverPool::snapshot_info() const {
  const std::scoped_lock lock(impl_->snapshot_mutex);
  return impl_->snapshot;
}

std::size_t SolverPool::queue_depth() const noexcept {
  return impl_->pending.load(std::memory_order_relaxed);
}

}  // namespace brel
