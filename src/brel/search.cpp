#include "brel/search.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "brel/quick_solver.hpp"

namespace brel {

namespace {

/// Derive the split vertex from the largest conflicting input cube
/// (Sec. 7.4): don't-care positions are assigned 1.
std::vector<bool> vertex_from_cube(const Cube& cube, std::size_t num_vars) {
  std::vector<bool> x(num_vars, true);
  for (std::size_t v = 0; v < cube.num_vars(); ++v) {
    if (cube.lit(v) == Lit::Zero) {
      x[v] = false;
    }
  }
  return x;
}

/// Outputs ordered by manager variable index (Sec. 7.4: "following the
/// variable order in the BDD manager").
std::vector<std::size_t> outputs_in_var_order(const BooleanRelation& rel) {
  std::vector<std::size_t> order(rel.num_outputs());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return rel.outputs()[a] < rel.outputs()[b];
  });
  return order;
}

/// A NaN cost would break the strict weak ordering std::push_heap
/// requires; map it to +inf (explore last) before it becomes a priority.
double sanitize_priority(double cost) noexcept {
  return std::isnan(cost) ? std::numeric_limits<double>::infinity() : cost;
}

/// Generate one child: symmetry pruning, subproblem-cache dedup,
/// QuickSolver safety net, optional best-first priority seeding, frontier
/// push.  `parent` supplies the symmetry depth gate (exactly like the
/// original loop) and the ancestor chain for solution memoization.
/// `delta` is the child's incremental change-region cofactor (null when
/// no delta is tracked this run; see delta_context.hpp).  Every cut that
/// is not a pure function of (characteristic, remaining depth) taints
/// the affected ancestor chain so the completeness marks stay honest
/// (see SearchContext's taint sets).
void enqueue_child(SearchContext& ctx, BooleanRelation&& child, Bdd&& delta,
                   const Subproblem& parent, Frontier& frontier) {
  if (ctx.symmetries.has_value() &&
      parent.depth < ctx.options.symmetry_depth &&
      ctx.symmetries->seen_before_or_insert(child.characteristic())) {
    ++ctx.stats.pruned_by_symmetry;
    // The symmetric twin's solutions surface in ANOTHER subtree: every
    // relation on this chain loses them, so none is subtree-final.
    ctx.taint_hard(parent.memo_chain);
    return;
  }
  // Dedup re-encounters (only possible across solves sharing the cache —
  // within one tree Property 5.4 forbids them; see subproblem_cache.hpp).
  // Every inserted entry is memoized with at least its quick solution
  // right below, so a hit always carries a memo; pruning offers it
  // instead of losing the branch — never worse than the QuickSolver
  // safety net would have been.
  if (ctx.cache != nullptr) {
    const CachedSolution* const prior =
        ctx.cache->seen_before_or_insert(child.characteristic());
    if (prior != nullptr && prior->has_solution()) {
      ++ctx.stats.pruned_by_cache;
      ++ctx.stats.solutions_seen;
      // The memo (if any) must see this solution for the ancestors too —
      // the branch is pruned, so nothing below will publish for them.
      ctx.publish_to_memo(parent.memo_chain, prior->best, prior->cost);
      ctx.offer_solution(prior->best, prior->cost);
      // A cached best reflects however deeply an EARLIER solve explored
      // this subtree — not provably subtree-final for this run's budget.
      ctx.taint_hard(parent.memo_chain);
      return;
    }
  }

  // Global-memo probe: the manager-independent analogue of the block
  // above, recognizing subtrees first explored by *other* managers
  // (pool workers, earlier solves).  A hit imports the memoized best
  // into our manager and prunes the branch — the same Property 5.1
  // argument, and like the local cache every published entry carries at
  // least its quick solution (record_solution below), so a hit is never
  // worse than the safety net.  In-tree self-hits are impossible
  // (Property 5.4 again: the key is a faithful image of the
  // characteristic), so a cold solve is unaffected by an empty memo.
  // The probe is HASH-ONLY (make_memo_handle): a miss costs one cached
  // structural-hash walk and serializes nothing; only a candidate hit
  // (or the publishes below) ever builds the canonical key.
  const std::size_t child_depth = parent.depth + 1;
  const bool delta_untouched = !delta.is_null() && delta.is_zero();
  MemoKeyHandle memo_key;
  if (ctx.memo_active(child_depth)) {
    memo_key = make_memo_handle(ctx.memo_space_ref, child.characteristic());
    ctx.memo_touched.push_back({memo_key, child_depth});
    // lookup_at() only surfaces COMPLETE entries whose claim covers this
    // depth (subtrees some run of this configuration explored to its
    // natural end, or truncated exactly as our depth budget would), so a
    // truncated run's partial publishes can never prune us.
    if (const std::optional<MemoHit> hit = ctx.memo->lookup_at(
            memo_key, ctx.memo_probe_depth(child_depth))) {
      ++ctx.stats.memo_hits;
      ++ctx.stats.solutions_seen;
      if (ctx.delta_active && delta_untouched) {
        // The incremental path's payoff: a zero change cofactor proved
        // this subproblem byte-identical to the base run's, and its
        // marked entry pruned the whole re-search.
        ++ctx.stats.delta_reused;
      }
      if (hit->depth_truncated) {
        // Importing a depth-truncated result truncates US: ancestors may
        // only claim truncated completeness from here on.
        ctx.taint_soft(parent.memo_chain);
        ctx.memo_soft_tainted.insert(memo_key.get());
      }
      // Propagate the hit up the chain: the pruned branch's ancestors
      // (this run's root included) must memoize at least this well.
      // Chain handles were verified at their own publish/probe, so each
      // republish is a token compare — no key work.
      for (const MemoKeyHandle& key : parent.memo_chain) {
        ctx.memo->publish(key, hit->solution, ctx.memo_stamp.run_id);
      }
      ctx.offer_solution(
          import_portable_solution(ctx.mgr, *ctx.memo_space, hit->solution),
          hit->solution.cost);
      return;
    }
  }

  Subproblem sub{std::move(child), child_depth};
  sub.delta = std::move(delta);
  if (ctx.cache != nullptr) {
    sub.ancestors = parent.ancestors;
    sub.ancestors.push_back(sub.rel.characteristic().raw_edge());
  }
  if (ctx.memo != nullptr) {
    // Deeper-than-gate children still inherit the chain: a solution found
    // below the gate must memoize to its shallow ancestors.
    sub.memo_chain = parent.memo_chain;
    if (memo_key != nullptr) {
      sub.memo_chain.push_back(std::move(memo_key));
    }
  }

  // Sec. 7.6: every generated subrelation is quick-solved immediately, so
  // a solution from this branch survives even if the child is never
  // popped (frontier overflow, budget, timeout).
  MultiFunction q = quick_solve(sub.rel, ctx.options.minimizer);
  ++ctx.stats.quick_solutions;
  ++ctx.stats.solutions_seen;
  const double qc = ctx.cost(q);
  ctx.record_solution(sub, std::move(q), qc);

  if (ctx.delta_active) {
    ++ctx.stats.delta_researched;
  }
  seed_priority(ctx, sub, frontier);
  if (!frontier.try_push(std::move(sub))) {
    // The dropped child's subtree is lost to every relation on its
    // chain; only the QuickSolver result above survives.
    ctx.taint_hard(sub.memo_chain);
    ++ctx.stats.fifo_overflow;
  }
}

}  // namespace

void seed_priority(SearchContext& ctx, Subproblem& sub,
                   const Frontier& frontier) {
  if (!frontier.wants_priority() || frontier.size() >= frontier.capacity()) {
    return;
  }
  if (sub.rel.is_function()) {
    sub.candidate = sub.rel.extract_function();
  } else {
    sub.candidate = minimize_misf_candidate(ctx, sub.rel);
  }
  sub.candidate_cost = ctx.cost(*sub.candidate);
  sub.priority = sanitize_priority(sub.candidate_cost);
}

bool SearchContext::timed_out() const {
  return options.timeout.count() > 0 &&
         std::chrono::steady_clock::now() - start >= options.timeout;
}

void SearchContext::offer_solution(MultiFunction f, double solution_cost) {
  if (solution_cost < best_cost) {
    best = std::move(f);
    best_cost = solution_cost;
    best_portable.reset();
    return;
  }
  // Equal-cost ties resolve through the canonical total order so the
  // kept incumbent does not depend on arrival order (memo-served
  // candidates arrive earlier than a cold search would produce them).
  if (solution_cost == best_cost && tie_space != nullptr &&
      !best.outputs.empty()) {
    if (!best_portable.has_value()) {
      best_portable = make_portable_solution(*tie_space, best, best_cost);
    }
    PortableSolution candidate =
        make_portable_solution(*tie_space, f, solution_cost);
    if (canonically_before(candidate, *best_portable)) {
      best = std::move(f);
      best_portable = std::move(candidate);
    }
  }
}

void SearchContext::offer_solution(MultiFunction f) {
  const double solution_cost = cost(f);
  offer_solution(std::move(f), solution_cost);
}

void SearchContext::publish_to_memo(std::span<const MemoKeyHandle> chain,
                                    const MultiFunction& f,
                                    double solution_cost) {
  if (memo == nullptr || chain.empty()) {
    return;
  }
  const PortableSolution portable =
      make_portable_solution(*memo_space, f, solution_cost);
  for (const MemoKeyHandle& key : chain) {
    memo->publish(key, portable, memo_stamp.run_id);
  }
}

void SearchContext::record_solution(const Subproblem& from, MultiFunction f,
                                    double solution_cost) {
  if (cache != nullptr) {
    cache->improve(from.ancestors, f, solution_cost);
  }
  publish_to_memo(from.memo_chain, f, solution_cost);
  offer_solution(std::move(f), solution_cost);
}

void SearchContext::taint_hard(std::span<const MemoKeyHandle> chain) {
  for (const MemoKeyHandle& key : chain) {
    memo_hard_tainted.insert(key.get());
  }
}

void SearchContext::taint_soft(std::span<const MemoKeyHandle> chain) {
  for (const MemoKeyHandle& key : chain) {
    memo_soft_tainted.insert(key.get());
  }
}

std::vector<MemoMark> make_memo_marks(
    std::span<const SearchContext::MemoTouch> touched,
    const std::unordered_set<const LazyMemoKey*>& hard_tainted,
    const std::unordered_set<const LazyMemoKey*>& soft_tainted,
    bool unlimited_depth, const LazyMemoKey* root_key, bool allow_root) {
  std::vector<MemoMark> marks;
  marks.reserve(touched.size());
  // Marks carry materialized keys (the once-per-run cold path).  Every
  // handle that can match a store entry was materialized at its first
  // publish or verified hit, so shared_key() is a plain read here.
  for (const SearchContext::MemoTouch& t : touched) {
    if (hard_tainted.count(t.key.get()) == 0) {
      if (soft_tainted.count(t.key.get()) != 0) {
        marks.push_back(MemoMark{t.key->shared_key(),
                                 static_cast<std::uint64_t>(t.depth), true});
      } else {
        marks.push_back(MemoMark{
            t.key->shared_key(),
            unlimited_depth ? GlobalMemo::kAnyDepth
                            : static_cast<std::uint64_t>(t.depth),
            false});
      }
    } else if (t.key.get() == root_key && allow_root) {
      // Root exception (see the protocol in global_memo.hpp): whatever
      // cut the run's subtrees, the root entry IS the returned result —
      // truncated-at-0 serves exactly a re-solve of the same relation.
      marks.push_back(MemoMark{t.key->shared_key(), 0, true});
    }
  }
  return marks;
}

CacheFingerprint make_cache_fingerprint(const BooleanRelation& root,
                                        const SolverOptions& options,
                                        const CostFunction& resolved_cost) {
  return CacheFingerprint{resolved_cost.id(), options.exact, root.inputs(),
                          root.outputs()};
}

MultiFunction minimize_misf_candidate(SearchContext& ctx,
                                      const BooleanRelation& rel) {
  MultiFunction candidate;
  candidate.outputs.reserve(rel.num_outputs());
  for (std::size_t i = 0; i < rel.num_outputs(); ++i) {
    candidate.outputs.push_back(
        ctx.options.minimizer.minimize(rel.project_output(i)));
    ++ctx.stats.misf_minimizations;
  }
  return candidate;
}

void handle_terminal(SearchContext& ctx, const Subproblem& item) {
  // Best-first priced the terminal at push time; reuse that instead of
  // re-extracting and re-costing.
  MultiFunction f = item.candidate.has_value() ? *item.candidate
                                               : item.rel.extract_function();
  ++ctx.stats.solutions_seen;
  const double c =
      item.candidate.has_value() ? item.candidate_cost : ctx.cost(f);
  ctx.bound_cost = std::min(ctx.bound_cost, c);
  ctx.record_solution(item, std::move(f), c);
}

std::optional<SplitChoice> select_flexibility_split(
    const BooleanRelation& rel) {
  BddManager& mgr = rel.manager();
  for (const std::size_t i : outputs_in_var_order(rel)) {
    const Isf isf = rel.project_output(i);
    if (!isf.dc().is_zero()) {
      return SplitChoice{mgr.pick_minterm(isf.dc()), i};
    }
  }
  return std::nullopt;
}

SplitChoice select_conflict_split(SearchContext& ctx,
                                  const BooleanRelation& rel,
                                  const Bdd& incomp) {
  BddManager& mgr = ctx.mgr;
  const Bdd conflict_inputs = mgr.exists(incomp, rel.outputs());
  const Cube cube = mgr.shortest_cube(conflict_inputs);
  std::vector<bool> x = vertex_from_cube(cube, mgr.num_vars());
  for (const std::size_t i : outputs_in_var_order(rel)) {
    if (rel.can_split(x, i)) {
      return SplitChoice{std::move(x), i};
    }
  }
  // Impossible for a genuine conflict vertex (see Sec. 6.3): its image has
  // >= 2 vertices, so some output admits both values.
  throw std::logic_error("BrelSolver: no splittable output at conflict");
}

void expand_subproblem(SearchContext& ctx, Subproblem item,
                       Frontier& frontier) {
  const BooleanRelation& rel = item.rel;
  ++ctx.stats.relations_explored;

  // Terminal case (Fig. 6 lines 1-3): a functional relation *is* its
  // unique solution.
  if (rel.is_function()) {
    handle_terminal(ctx, item);
    return;
  }

  // Lines 4-5: the MISF candidate — either precomputed at push time
  // (best-first) or minimized here (BFS/DFS, like the original loop).
  MultiFunction candidate;
  double candidate_cost;
  if (item.candidate.has_value()) {
    candidate = std::move(*item.candidate);
    candidate_cost = item.candidate_cost;
  } else {
    candidate = minimize_misf_candidate(ctx, rel);
    candidate_cost = ctx.cost(candidate);
  }

  // Line 6: bound.  Constraining the relation further cannot beat a
  // cheaper solution already obtained with more flexibility.  The bound
  // is maintained from *explored* candidates only (see run()); it is
  // heuristic when the ISF minimizer is (like ours) not exact, so exact
  // mode skips it.
  if (!ctx.options.exact && ctx.options.use_cost_bound &&
      candidate_cost >= ctx.bound_cost) {
    ++ctx.stats.pruned_by_cost;
    // The bound depends on exploration order, not on this subproblem:
    // everything on the chain lost this subtree's solutions for a reason
    // no later prober can reproduce from the key alone.
    ctx.taint_hard(item.memo_chain);
    return;
  }

  // Depth cap (schedule-independent truncation — see SolverOptions): the
  // node itself is processed in full — terminal handling above, candidate
  // recording below — but its subtree is cut.
  const bool depth_capped = item.depth >= ctx.options.max_depth;

  const Bdd incomp = rel.incompatibilities(candidate);
  std::optional<SplitChoice> choice;
  if (incomp.is_zero()) {
    // Lines 7-8: compatible solution.  Nothing below reads the candidate
    // again, so it moves into the incumbent/memo.
    ++ctx.stats.solutions_seen;
    ctx.bound_cost = std::min(ctx.bound_cost, candidate_cost);
    ctx.record_solution(item, std::move(candidate), candidate_cost);
    if (!ctx.options.exact) {
      return;
    }
    if (depth_capped) {
      ++ctx.stats.depth_limited;
      // Depth-cap cuts are a pure function of (characteristic, remaining
      // budget): the chain's entries stay exact for probers at the SAME
      // depths — truncated, not unmarkable (see the taint sets).
      ctx.taint_soft(item.memo_chain);
      return;
    }
    // Exact mode: the branch may still hide cheaper functions; keep
    // splitting on any remaining flexibility until leaves are reached.
    choice = select_flexibility_split(rel);
    if (!choice.has_value()) {
      return;  // fully constrained in every output: nothing below
    }
  } else {
    // Lines 9-10: select the split point from the conflicts (Sec. 7.4).
    ++ctx.stats.conflicts;
    if (depth_capped) {
      ++ctx.stats.depth_limited;
      ctx.taint_soft(item.memo_chain);
      return;
    }
    choice = select_conflict_split(ctx, rel, incomp);
  }

  // Lines 11-12: both halves enter the frontier through the caches and
  // the QuickSolver safety net.  When a delta is tracked, Split
  // constrains base and new relation identically, so constraining the
  // parent's XOR with the same removals yields each child's XOR
  // (BooleanRelation::split_removals); a delta already at zero stays
  // zero without touching the kernels.
  ++ctx.stats.splits;
  auto [r0, r1] = rel.split(choice->vertex, choice->output);
  Bdd delta0;
  Bdd delta1;
  if (!item.delta.is_null()) {
    if (item.delta.is_zero()) {
      delta0 = item.delta;
      delta1 = item.delta;
    } else {
      const auto [removed0, removed1] =
          rel.split_removals(choice->vertex, choice->output);
      delta0 = item.delta & !removed0;
      delta1 = item.delta & !removed1;
    }
  }
  enqueue_child(ctx, std::move(r0), std::move(delta0), item, frontier);
  enqueue_child(ctx, std::move(r1), std::move(delta1), item, frontier);
}

SearchEngine::SearchEngine(const BooleanRelation& root,
                           const SolverOptions& options)
    : root_(root),
      options_(options),
      cache_(options_.subproblem_cache),
      ctx_{root_.manager(),
           options_,
           options_.cost ? options_.cost : sum_of_bdd_sizes(),
           std::chrono::steady_clock::now(),
           MultiFunction{},
           std::numeric_limits<double>::infinity(),
           std::numeric_limits<double>::infinity(),
           SolverStats{},
           std::nullopt,
           nullptr},
      frontier_(make_frontier(options_.order, options_.fifo_capacity)) {
  if (!root_.is_well_defined()) {
    throw std::invalid_argument("BrelSolver: relation is not well defined");
  }
  if (options_.use_symmetry) {
    ctx_.symmetries.emplace(ctx_.mgr, root_.outputs(),
                            options_.symmetry_second_order);
  }
  if (cache_ == nullptr && options_.use_subproblem_cache) {
    cache_ =
        std::make_shared<SubproblemCache>(options_.subproblem_cache_capacity);
  }
  if (cache_ != nullptr) {
    // Enforce the comparability contract before the first probe: a cache
    // warmed under a different objective/mode/space must not prune us.
    cache_->bind(make_cache_fingerprint(root_, options_, ctx_.cost));
    ctx_.cache = cache_.get();
  }
  // The rank space is built unconditionally: besides keying the memo it
  // anchors the canonical equal-cost tie order, which must be identical
  // between memo-less and memo-backed runs of the same relation.  No
  // KEYS (and no hashes) are ever built on memo-less runs, though — the
  // rank tables are the only canonical-form work they pay for.
  memo_space_ = std::make_shared<const MemoSpace>(make_memo_space(root_));
  ctx_.tie_space = memo_space_.get();
  if (options_.global_memo != nullptr) {
    memo_ = options_.global_memo;
    memo_->bind(MemoFingerprint{ctx_.cost.id(), options_.exact});
    ctx_.memo = memo_.get();
    ctx_.memo_space = memo_space_.get();
    ctx_.memo_space_ref = memo_space_;
    ctx_.memo_stamp = memo_->begin_run();
  }
}

SolveResult SearchEngine::run() {
  // Dynamic reordering policy (SolverOptions::reorder, overridable via
  // BREL_REORDER): On sifts the manager once before exploration, Auto
  // arms the GC-coupled trigger for the duration of this run (restored
  // afterwards — an engine must not permanently change a caller's
  // manager policy).  SolverStats::reorders reports the sift passes this
  // run caused, whatever the trigger.
  const ReorderMode reorder_mode = resolve_reorder_mode(options_.reorder);
  const bool auto_was_armed = ctx_.mgr.auto_reorder();
  const std::uint64_t reorders_before = ctx_.mgr.stats().reorders;
  const std::uint64_t swaps_before = ctx_.mgr.stats().reorder_swaps;

  // Step 0 (Sec. 7.2): QuickSolver guarantees at least one solution.
  // Its cost does NOT seed the branch-and-bound bound: Fig. 6 starts the
  // recursion with an infinite-cost BestF, and the quick fallbacks serve
  // only as a safety net.  (Seeding the bound with the quick cost would
  // prune the root whenever the MISF candidate merely ties it, silencing
  // the whole exploration.)
  // The root bypasses the caches (it seeds them) and the capacity bound.
  if (ctx_.symmetries.has_value()) {
    (void)ctx_.symmetries->seen_before_or_insert(root_.characteristic());
  }
  Subproblem root_item{root_, 0};
  if (ctx_.cache != nullptr) {
    (void)ctx_.cache->seen_before_or_insert(root_.characteristic());
    root_item.ancestors.push_back(root_.characteristic().raw_edge());
  }
  if (ctx_.memo_active(0)) {
    // Root probe of the cross-solve memo: a warm re-solve of an
    // identical relation (same canonical serialized form and spaces)
    // returns the memoized best immediately — first-run quality at zero
    // exploration.  On a miss the root key seeds every descendant's
    // publish chain, so by the end of this run the memo's root entry
    // equals the returned incumbent.
    MemoKeyHandle root_key =
        make_memo_handle(memo_space_, root_.characteristic());
    ctx_.memo_touched.push_back({root_key, 0});
    if (const std::optional<PortableSolution> entry =
            ctx_.memo->lookup(root_key)) {
      ++ctx_.stats.memo_hits;
      ++ctx_.stats.solutions_seen;
      if (options_.delta_registry != nullptr) {
        // A served root is as good as a drained one for the next diff:
        // its interior entries are whatever its producing run marked.
        // The hit verified the handle, so get() is already built.
        options_.delta_registry->remember(root_key->get());
      }
      SolveResult result;
      result.function =
          import_portable_solution(ctx_.mgr, *ctx_.memo_space, *entry);
      result.cost = entry->cost;
      ctx_.stats.runtime_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        ctx_.start)
              .count();
      result.stats = ctx_.stats;
      return result;
    }
    root_item.memo_chain.push_back(std::move(root_key));
  }

  // Incremental delta (delta_context.hpp): on a root miss, diff against
  // the registry's most recent base over the same variable spaces and
  // carry the change region down the decomposition.  Purely an overlay —
  // reuse itself happens through the ordinary memo probes above.
  if (options_.delta_registry != nullptr && !root_item.memo_chain.empty()) {
    // Signature-only base probe (the rank lists live in the memo space)
    // — learning whether a base exists must not materialize the root
    // key the memo miss above deliberately left hash-only.
    if (const SerializedBdd* base = options_.delta_registry->find_base(
            memo_space_->input_ranks, memo_space_->output_ranks)) {
      const Bdd base_chi =
          import_canonical_bdd(ctx_.mgr, *ctx_.memo_space, *base);
      root_item.delta = root_.characteristic() ^ base_chi;
      ctx_.delta_active = true;
      ctx_.stats.delta_active = true;
    }
  }

  // Apply the reordering policy only past the warm-memo fast path (keys
  // are order-independent, so probing never needed a sift — and a warm
  // hit should not pay for one): On sifts once up front, Auto arms the
  // GC-coupled trigger for the duration of this run.  The disarm guard
  // runs on every exit — a throwing cost function must not leave the
  // caller's manager permanently armed.
  struct AutoReorderGuard {
    BddManager* mgr = nullptr;
    ~AutoReorderGuard() {
      if (mgr != nullptr) {
        mgr->set_auto_reorder(false);
      }
    }
  } disarm_guard;
  if (reorder_mode == ReorderMode::On) {
    ctx_.mgr.reorder();
  } else if (reorder_mode == ReorderMode::Auto && !auto_was_armed) {
    ctx_.mgr.set_auto_reorder(true, options_.reorder_trigger);
    disarm_guard.mgr = &ctx_.mgr;
  }

  // The root quick solution seeds the incumbent UNCONDITIONALLY: even a
  // cost function that maps it to +inf (or NaN) must leave a compatible
  // function in `best`, never an empty MultiFunction.
  MultiFunction quick = quick_solve(root_, ctx_.options.minimizer);
  ++ctx_.stats.quick_solutions;
  ++ctx_.stats.solutions_seen;
  const double quick_cost = ctx_.cost(quick);
  if (ctx_.cache != nullptr) {
    ctx_.cache->improve(root_item.ancestors, quick, quick_cost);
  }
  if (ctx_.memo != nullptr && !root_item.memo_chain.empty()) {
    ctx_.memo->publish(root_item.memo_chain.front(),
                       make_portable_solution(*ctx_.memo_space, quick,
                                              quick_cost),
                       ctx_.memo_stamp.run_id);
  }
  ctx_.best_cost = quick_cost;
  ctx_.best = std::move(quick);

  seed_priority(ctx_, root_item, *frontier_);
  frontier_->push_root(std::move(root_item));

  while (!frontier_->empty()) {
    if (!ctx_.options.exact &&
        ctx_.stats.relations_explored >= ctx_.options.max_relations) {
      ctx_.stats.budget_exhausted = true;
      break;
    }
    if (ctx_.timed_out()) {
      ctx_.stats.budget_exhausted = true;
      break;
    }
    ctx_.mgr.garbage_collect_if_needed();
    expand_subproblem(ctx_, frontier_->pop(), *frontier_);
  }

  // Depth-indexed completeness marking (see global_memo.hpp).  An
  // interrupted run (budget/timeout stop) marks nothing — a later
  // identical solve must re-explore rather than inherit the degraded
  // result forever.  A drained run marks per subtree: untainted keys
  // naturally complete at their depth, depth-cap-truncated keys
  // truncated at theirs, hard-tainted keys not at all — except the
  // root, which is exactly what this solve returned and is marked
  // truncated-at-0 unless children were dropped to frontier overflow
  // (make_memo_marks).
  if (ctx_.memo != nullptr && !ctx_.stats.budget_exhausted &&
      !ctx_.memo_touched.empty()) {
    // memo_touched.front() is the root key (pushed before any child).
    const std::vector<MemoMark> marks = make_memo_marks(
        ctx_.memo_touched, ctx_.memo_hard_tainted, ctx_.memo_soft_tainted,
        options_.max_depth == static_cast<std::size_t>(-1),
        ctx_.memo_touched.front().key.get(),
        ctx_.stats.fifo_overflow == 0);
    ctx_.memo->mark_complete(std::span<const MemoMark>(marks),
                             ctx_.memo_stamp);
    if (options_.delta_registry != nullptr &&
        ctx_.stats.fifo_overflow == 0) {
      // The root entry is now marked: this run's relation becomes the
      // freshest base for the next nearly-identical request.  The root
      // key was materialized by its quick-solution publish above.
      options_.delta_registry->remember(ctx_.memo_touched.front().key->get());
    }
  }

  ctx_.stats.reorders = static_cast<std::size_t>(
      ctx_.mgr.stats().reorders - reorders_before);
  ctx_.stats.reorder_swaps = static_cast<std::size_t>(
      ctx_.mgr.stats().reorder_swaps - swaps_before);

  ctx_.stats.runtime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    ctx_.start)
          .count();
  SolveResult result;
  result.function = std::move(ctx_.best);
  result.cost = ctx_.best_cost;
  result.stats = ctx_.stats;
  return result;
}

}  // namespace brel
