#pragma once
/// \file solver_pool.hpp
/// The solver-pool service layer: N long-lived worker slots serving a
/// queue of independent Boolean-relation solve requests.
///
/// `ParallelEngine` parallelizes one solve across workers;  the pool is
/// the complementary shape the ROADMAP's service north-star needs — many
/// concurrent *solves*, each handled serially by one worker, with state
/// that outlives any single request:
///
///   ownership rules (see DESIGN.md §service layer)
///   -----------------------------------------------
///   - each worker slot owns a persistent `BddManager` plus a persistent
///     private `SubproblemCache`, reused across every request the slot
///     serves; nothing of a slot is ever touched by another thread (the
///     manager is bound to the worker thread for the pool's lifetime);
///   - requests enter as *text* (the `.br`/`.bdd` relation formats) and
///     results leave as `PoolResult` — a manager-independent
///     `PortableSolution` (rank-mapped serialized BDDs) — so no handle
///     of a slot manager ever crosses the pool boundary;
///   - the cross-request state is the shared `GlobalMemo`: keyed by the
///     canonical serialized subproblem form, it lets any worker, in any
///     manager, at any variable offset, reuse subtree results first
///     explored by another worker (or by itself, requests ago).  Hits
///     import the memoized solution via the transfer layer instead of
///     re-exploring — a warm re-solve of an identical relation explores
///     zero nodes.
///
/// Manager lifetime across solves: the request's handles die when the
/// request finishes, and the slot then RECYCLES its whole variable block
/// (BddManager::reset_variables): the slot cache is cleared first (its
/// entries pin edges), every node is freed, and num_vars drops to zero —
/// so each request parses into variables 0..width-1 and a slot's
/// variable count stays bounded by the widest single request it ever
/// served, however long the pool lives (PoolResult::manager_num_vars
/// witnesses this; rank-table construction stays O(request width)).
/// Because the slot `SubproblemCache` is emptied at every request
/// boundary, a later request can never be pruned by a stale raw-edge
/// key even though variable indices repeat; *cross*-request reuse flows
/// exclusively through the GlobalMemo, whose entries are plain data and
/// pin nothing.
///
/// The per-request engine configuration is fixed at pool construction
/// (`PoolOptions::solver`) — one objective, one mode — which is exactly
/// the comparability contract the memo's fingerprint enforces.
/// `num_workers` inside those options is ignored: each request runs the
/// serial engine (cross-request throughput is the pool's parallelism).
///
/// Concurrency note for shared-memo users: memo probes only surface
/// COMPLETE entries — subtree results of a run that drained naturally
/// (global_memo.hpp's completeness protocol), so an interrupted or
/// in-flight solve can never serve partial results to another request.
/// Two *concurrent* solves of overlapping relations may still differ by
/// schedule (whether an overlapping subtree completed in time to be
/// reused); disable the memo (`share_memo = false`, no caller memo)
/// when bit-reproducible results are required while submitting
/// overlapping relations concurrently.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>

#include "brel/global_memo.hpp"
#include "brel/solver.hpp"

namespace brel {

/// Pool configuration, fixed for the pool's lifetime.
struct PoolOptions {
  /// Worker slots (concurrent solves).  0 = one per hardware thread.
  std::size_t workers = 1;

  /// Engine configuration every request is solved under.  `num_workers`
  /// and `subproblem_cache` are ignored (see the file comment).  A
  /// caller-provided `global_memo` is always adopted as the pool memo
  /// (sharing warm state across pools).
  SolverOptions solver;

  /// When no memo was provided via `solver.global_memo`, create a
  /// pool-private cross-solve GlobalMemo (the warm-re-solve path);
  /// false leaves the pool memo-less.
  bool share_memo = true;

  /// Entry bound of the pool memo (entries are plain data; this caps
  /// memory, not pinned BDD nodes).
  std::size_t memo_capacity = static_cast<std::size_t>(-1);

  /// Lock shards of the pool memo (GlobalMemo's second constructor
  /// argument).  0 = auto: an unlimited memo shards
  /// GlobalMemo::kDefaultShards ways so concurrent slots probing
  /// different keys never contend; a finite memo_capacity stays on one
  /// shard for exact global-LRU semantics.  Ignored when a caller memo
  /// is adopted via `solver.global_memo` (its sharding is fixed at its
  /// construction).
  std::size_t memo_shards = 0;

  /// Keep a persistent per-slot SubproblemCache, recycled across
  /// requests with rebind_or_clear (an in-run invariant guard; see the
  /// file comment for why cross-request hits cannot occur).
  bool reuse_subproblem_cache = true;

  /// Totalize partial request relations (allow every output on inputs
  /// with an empty image) instead of failing them with
  /// std::invalid_argument.  Note the memo key is the *totalized*
  /// characteristic, so the same partial relation keys consistently.
  bool totalize = false;

  /// Incremental re-solve (delta_context.hpp): each slot keeps a
  /// private DeltaRegistry of the relations it most recently solved,
  /// per variable space.  A request whose root misses the memo is
  /// diffed against the slot's base; the XOR change region then rides
  /// the decomposition, so only subtrees the edit touches are
  /// re-searched — the rest serve from their depth-indexed memo
  /// entries.  Registry entries are plain serialized data, so they
  /// survive the slot's variable-block recycling unharmed.  The delta
  /// path requires a pool memo (reuse flows through marked memo
  /// entries); the registry's ORDER memory does not — a memo-less
  /// incremental pool still seeds each request's variable order from
  /// the sifted order the slot's previous same-signature solve ended
  /// with, so repeat traffic skips the sifting ramp (reorder_swaps ≈ 0
  /// on the second solve).  The BREL_INCREMENTAL environment variable
  /// ("0"/"off", "1"/"on") overrides this setting
  /// (resolve_incremental).
  bool incremental = false;

  /// Tier-1 persistence (memo_snapshot.hpp): restore this snapshot into
  /// the pool memo at construction (empty = cold start; a missing or
  /// partially corrupt file degrades to a partial/empty load, never a
  /// construction failure — see snapshot_info()).  Ignored without a
  /// pool memo.
  std::string memo_load_path;

  /// Write every export-eligible memo entry to this path when
  /// shutdown() completes its drain (empty = no save).  The save runs
  /// AFTER the workers joined, so the snapshot contains every entry the
  /// drained requests completed.  Ignored without a pool memo.
  std::string memo_save_path;
};

/// Lifecycle facts of the pool's tier-1 snapshot integration: the load
/// attempted at construction and the save attempted at shutdown.  All
/// zeros when no paths were configured (snapshot_info()).
struct MemoSnapshotInfo {
  bool load_attempted = false;
  bool load_ok = false;               ///< full file parsed clean
  std::size_t entries_loaded = 0;     ///< entries installed at start
  std::size_t entries_skipped = 0;    ///< corrupt entries skipped
  std::uint64_t loaded_saved_at = 0;  ///< snapshot's `.saved_at` header
  std::string load_error;             ///< diagnostic when !load_ok
  bool save_attempted = false;
  bool save_ok = false;
  std::size_t entries_saved = 0;  ///< entries written at shutdown
  std::string save_error;
};

/// Service class of one request, honored when a slot pops its mailbox:
/// every pending Interactive job of a mailbox is taken before any Batch
/// job (steals scan the other mailboxes in the same two passes).  Within
/// one class, FIFO order is preserved — a pool fed a single class
/// behaves exactly like the pre-priority pool.
enum class RequestPriority : std::uint8_t {
  Interactive = 0,  ///< latency-sensitive traffic, served first
  Batch = 1,        ///< throughput traffic, served when no interactive waits
};

/// Per-request options of the submit() overload below.  The plain
/// submit() is equivalent to RequestOptions{} (no deadline, Interactive).
struct RequestOptions {
  /// Absolute wall-clock deadline.  Unlike the pool-wide
  /// `SolverOptions::timeout` (which clocks each ENGINE run from its own
  /// start), the deadline covers the request's whole pool residency —
  /// queue wait included.  The worker maps whatever remains at solve
  /// start onto the existing timeout machinery (taking the minimum with
  /// a configured pool-wide timeout); a request whose deadline expired
  /// before (or while) parsing still RESOLVES its future, with
  /// `stats.budget_exhausted` set, `deadline_expired` set, and the
  /// best-so-far solution — possibly empty when no time was left to
  /// find one.  No deadline (nullopt) preserves the old behavior.
  std::optional<std::chrono::steady_clock::time_point> deadline;

  RequestPriority priority = RequestPriority::Interactive;
};

/// Outcome of one pool request: the solution in manager-independent form
/// plus the solve statistics.  `import_pool_solution` materializes the
/// function in a caller-owned manager.
struct PoolResult {
  PortableSolution solution;  ///< outputs over input *ranks*
  double cost = 0.0;          ///< == solution.cost
  SolverStats stats;
  std::size_t worker_id = 0;  ///< slot that served the request
  /// Variable count of the serving slot's manager right after this solve
  /// — the boundedness witness of the slot-recycling scheme (it equals
  /// the REQUEST's width, not a sum over the slot's history, because the
  /// slot reclaims its whole variable block between requests).
  std::uint32_t manager_num_vars = 0;
  /// The request's RequestOptions::deadline passed before the solve ran
  /// to its natural end: either it was already spent at pickup (the
  /// solution is then empty and `cost` infinite) or the engine stopped
  /// on the mapped timeout (the solution is the best found so far).
  /// `stats.budget_exhausted` is set in both cases; this flag
  /// distinguishes a deadline stop from an ordinary exploration-budget
  /// stop, which service front ends report differently (TIMEOUT vs OK).
  bool deadline_expired = false;
  /// Time the request spent queued (submit → worker pickup), in ns.
  std::uint64_t queue_ns = 0;
};

/// Materialize `result`'s solution in `mgr` for relation `r` (the same
/// relation the request was built from, parsed into the caller's
/// manager).  The inverse of the pool's rank mapping.
[[nodiscard]] MultiFunction import_pool_solution(BddManager& mgr,
                                                 const BooleanRelation& r,
                                                 const PoolResult& result);

/// The pool.  submit() is thread-safe; futures resolve as workers finish
/// (exceptions — parse errors, ill-defined relations, fingerprint
/// mismatches — propagate through the future).  Destruction drains the
/// queue and joins the workers.
class SolverPool {
 public:
  explicit SolverPool(PoolOptions options = {});
  ~SolverPool();

  SolverPool(const SolverPool&) = delete;
  SolverPool& operator=(const SolverPool&) = delete;

  /// Enqueue a relation in the `.br`/`.bdd` text formats.
  [[nodiscard]] std::future<PoolResult> submit(std::string relation_text);

  /// Enqueue with per-request options: a deadline that maps onto the
  /// timeout machinery for THIS request only, and a priority class
  /// honored when slots pop their mailboxes (see RequestOptions).
  [[nodiscard]] std::future<PoolResult> submit(std::string relation_text,
                                               RequestOptions request);

  /// Convenience: serialize `r` (compact `.bdd` form, on the calling
  /// thread, touching only r's manager) and enqueue it.
  [[nodiscard]] std::future<PoolResult> submit(const BooleanRelation& r);

  /// Stop accepting work, finish everything queued, join the workers.
  /// Idempotent; later submits throw std::runtime_error.
  void shutdown();

  [[nodiscard]] std::size_t worker_count() const noexcept;
  /// The pool-wide cross-solve memo (null when share_memo is off).
  [[nodiscard]] const std::shared_ptr<GlobalMemo>& memo() const noexcept;
  /// Requests fully served (successfully or exceptionally) so far.
  [[nodiscard]] std::uint64_t requests_served() const;
  /// Tier-1 snapshot lifecycle facts: what the construction-time load
  /// installed and (after shutdown) what the drain-time save wrote.
  [[nodiscard]] MemoSnapshotInfo snapshot_info() const;
  /// Requests accepted but not yet picked up by a slot — the mailbox
  /// backlog a service front end feeds its admission control with
  /// (in-flight solves are not counted; track accepted-minus-answered
  /// on the caller side for the full residency figure).
  [[nodiscard]] std::size_t queue_depth() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace brel
