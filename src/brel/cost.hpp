#pragma once
/// \file cost.hpp
/// Customizable cost functions for the BREL solver (Sec. 7.3).
///
/// A cost function maps a candidate multi-output function to a double;
/// the solver minimizes it.  The paper's two built-ins are the sum of
/// per-output BDD sizes (area-oriented) and the sum of their squares
/// (delay-oriented: squaring biases the search toward balanced outputs).

#include <functional>

#include "relation/relation.hpp"

namespace brel {

/// User-customizable solver objective.  Must be >= 0 and should be
/// invariant under output permutation when symmetry pruning is enabled.
using CostFunction = std::function<double(const MultiFunction&)>;

/// Σ_i |BDD(F_i)| — the paper's area-minimization cost (Sec. 7.3, Table 2).
[[nodiscard]] CostFunction sum_of_bdd_sizes();

/// Σ_i |BDD(F_i)|² — the paper's delay-oriented cost (Sec. 7.3, Table 3):
/// favours solutions whose outputs have balanced complexity.
[[nodiscard]] CostFunction sum_of_squared_bdd_sizes();

/// Number of cubes of the per-output ISOPs (the gyocro-style CB metric).
/// More expensive to evaluate: runs one ISOP per output.
[[nodiscard]] CostFunction cube_count_cost();

/// Number of literals of the per-output ISOPs (the LIT metric).
[[nodiscard]] CostFunction literal_count_cost();

/// Σ_i |BDD(F_i)| + λ·(max_i |supp(F_i)| - min_i |supp(F_i)|): size plus a
/// penalty on support imbalance.  The paper motivates support balancing
/// "for reducing layout congestion" (Sec. 3); λ defaults to the weight
/// that made the penalty comparable to one BDD node.
[[nodiscard]] CostFunction support_balance_cost(double lambda = 4.0);

/// Worst single output: max_i |BDD(F_i)| (min-max objective).
[[nodiscard]] CostFunction max_bdd_size_cost();

}  // namespace brel
