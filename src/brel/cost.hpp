#pragma once
/// \file cost.hpp
/// Customizable cost functions for the BREL solver (Sec. 7.3).
///
/// A cost function maps a candidate multi-output function to a double;
/// the solver minimizes it.  The paper's two built-ins are the sum of
/// per-output BDD sizes (area-oriented) and the sum of their squares
/// (delay-oriented: squaring biases the search toward balanced outputs).

#include <concepts>
#include <functional>
#include <string>
#include <type_traits>
#include <utility>

#include "relation/relation.hpp"

namespace brel {

/// User-customizable solver objective.  Must be >= 0 and should be
/// invariant under output permutation when symmetry pruning is enabled.
///
/// A cost function carries an *identity* next to its callable: solution
/// memos (SubproblemCache, GlobalMemo) are only comparable between runs
/// that minimized the same objective, and `std::function` instances
/// cannot be compared, so the caches stamp themselves with `id()` at
/// first use and reject mismatched reuse.  The factories below name
/// their products stably ("size", "size2", ...); a bare lambda converts
/// implicitly and receives a process-unique "custom#N" identity —
/// conservative on purpose: two independently constructed lambdas are
/// never assumed equal, while copies of one CostFunction (the normal
/// shared-SolverOptions pattern) keep their identity.
class CostFunction {
 public:
  using Fn = std::function<double(const MultiFunction&)>;

  CostFunction() = default;

  /// Named objective (the factories below use this).
  CostFunction(std::string id, Fn fn) : fn_(std::move(fn)), id_(std::move(id)) {}

  /// Anonymous objective: any callable converts, keeping the historical
  /// `options.cost = [](const MultiFunction&) {...}` spelling working.
  template <typename F>
    requires(!std::same_as<std::remove_cvref_t<F>, CostFunction> &&
             std::is_invocable_r_v<double, F&, const MultiFunction&>)
  CostFunction(F&& fn)  // NOLINT(google-explicit-constructor)
      : fn_(std::forward<F>(fn)), id_(next_custom_id()) {}

  double operator()(const MultiFunction& f) const { return fn_(f); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return static_cast<bool>(fn_);
  }

  /// Stable identity for cache/memo fingerprints (empty when null).
  [[nodiscard]] const std::string& id() const noexcept { return id_; }

 private:
  [[nodiscard]] static std::string next_custom_id();

  Fn fn_;
  std::string id_;
};

/// Σ_i |BDD(F_i)| — the paper's area-minimization cost (Sec. 7.3, Table 2).
[[nodiscard]] CostFunction sum_of_bdd_sizes();

/// Σ_i |BDD(F_i)|² — the paper's delay-oriented cost (Sec. 7.3, Table 3):
/// favours solutions whose outputs have balanced complexity.
[[nodiscard]] CostFunction sum_of_squared_bdd_sizes();

/// Number of cubes of the per-output ISOPs (the gyocro-style CB metric).
/// More expensive to evaluate: runs one ISOP per output.
[[nodiscard]] CostFunction cube_count_cost();

/// Number of literals of the per-output ISOPs (the LIT metric).
[[nodiscard]] CostFunction literal_count_cost();

/// Σ_i |BDD(F_i)| + λ·(max_i |supp(F_i)| - min_i |supp(F_i)|): size plus a
/// penalty on support imbalance.  The paper motivates support balancing
/// "for reducing layout congestion" (Sec. 3); λ defaults to the weight
/// that made the penalty comparable to one BDD node.
[[nodiscard]] CostFunction support_balance_cost(double lambda = 4.0);

/// Worst single output: max_i |BDD(F_i)| (min-max objective).
[[nodiscard]] CostFunction max_bdd_size_cost();

}  // namespace brel
