#pragma once
/// \file memo_backend.hpp
/// The manager-independent canonical forms of the memo layer, plus the
/// `MemoBackend` abstraction the tiered GlobalMemo store is built on.
///
/// Everything here is PLAIN DATA or pure translation:
///
///   - `MemoSpace` / `GlobalMemoKey` / `PortableSolution`: the canonical
///     rank-remapped serialized forms that make a subproblem
///     content-addressable across managers, processes, and hosts (see
///     global_memo.hpp for how the in-memory tier keys on them);
///   - the make_*/import_* translators between manager BDDs and the
///     canonical forms, and the text codecs the socket service and the
///     snapshot format share;
///   - `MemoBackend`: the storage-tier interface.  Tier 0 is the sharded
///     in-memory `GlobalMemo`; tier 1 (memo_snapshot.hpp) persists it to
///     disk; tier 2 (memo_exchange.hpp) faults missing entries from peer
///     servers over the framed-TCP wire.  A backend exchanges only
///     `MemoExportEntry` records — complete entries a drained run
///     vouched for — so the completeness protocol survives every tier
///     boundary: a partial or tainted result can no more cross a disk
///     or network hop than it can serve an in-memory probe.
///
/// What may cross a tier boundary: exactly the entries that can serve a
/// ROOT-position prober (depth 0) under the in-memory protocol —
/// naturally-complete entries (at any recorded depth; they serve every
/// shallower prober) and the root-exact records a drained solve marks
/// truncated-at-depth-0 (exactly what that solve returned).  Interior
/// depth-truncated entries are budget-relative by construction and
/// hard-tainted entries are never even marked; neither serializes.  An
/// imported record re-installs with its ORIGINAL mark (natural at its
/// depth, or truncated-at-0), so a restored memo answers probes
/// bit-identically to the memo that was saved.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bdd/bdd_hash.hpp"
#include "bdd/bdd_transfer.hpp"
#include "relation/relation.hpp"

namespace brel {

/// Rank tables of one relation's variable spaces: everything needed to
/// translate between manager variables and canonical ranks.  Build once
/// per solve (make_memo_space) and reuse for every key/solution.
struct MemoSpace {
  /// Relation variables (inputs ∪ outputs) in ascending manager order;
  /// rank r corresponds to manager variable sorted_vars[r].
  std::vector<std::uint32_t> sorted_vars;
  /// var → rank for every manager variable in the relation (entries for
  /// foreign variables hold kUnranked).
  std::vector<std::uint32_t> rank_of;
  std::vector<std::uint32_t> input_ranks;   ///< ranks of inputs, in order
  std::vector<std::uint32_t> output_ranks;  ///< ranks of outputs, in order
  /// Process-unique name of this rank map, handed to
  /// BddManager::canonical_hash so its per-node cache knows when the
  /// map changed (make_memo_space allocates; 0 = "uncacheable").
  std::uint64_t token = 0;

  static constexpr std::uint32_t kUnranked = 0xFFFFFFFFu;
};

/// Rank tables for `r` (ascending inputs+outputs order).
[[nodiscard]] MemoSpace make_memo_space(const BooleanRelation& r);

/// Canonical identity of one subproblem: rank-mapped characteristic plus
/// the input/output split.  Equal keys mean structurally identical
/// subrelations regardless of manager or variable offset.
///
/// Stored as fixed-width words in ONE contiguous arena —
/// [node_count, chi_root, #iranks, #oranks | var,hi,lo per node |
/// input ranks | output ranks] — so equality is a flat word compare and
/// an in-memory key costs a single allocation.  Text remains the format
/// at every snapshot/wire boundary: `chi()` reconstructs the exact
/// SerializedBdd the pre-arena key held (num_vars is derivable — always
/// 1 + the largest node rank), so `brelmemo 1` files and MEMO_PULL/PUSH
/// frames are byte-identical to the pre-arena format.
class GlobalMemoKey {
 public:
  GlobalMemoKey() : words_{0, 0, 0, 0} {}
  /// Pack a rank-form serialized chi (node vars are RANKS) and the rank
  /// lists.  Throws std::invalid_argument when the node list is not in
  /// child-before-parent order or the root id is out of range — the
  /// arena walkers (hash128, chi()) index by id and never re-validate.
  GlobalMemoKey(const SerializedBdd& chi,
                std::span<const std::uint32_t> input_ranks,
                std::span<const std::uint32_t> output_ranks);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return words_.empty() ? 0 : words_[0];
  }
  [[nodiscard]] std::uint32_t chi_root() const noexcept {
    return words_.empty() ? 0 : words_[1];
  }
  [[nodiscard]] std::uint32_t node_var(std::size_t k) const noexcept {
    return words_[4 + 3 * k];
  }
  [[nodiscard]] std::uint32_t node_hi(std::size_t k) const noexcept {
    return words_[4 + 3 * k + 1];
  }
  [[nodiscard]] std::uint32_t node_lo(std::size_t k) const noexcept {
    return words_[4 + 3 * k + 2];
  }
  [[nodiscard]] std::span<const std::uint32_t> input_ranks() const noexcept {
    return words_.empty()
               ? std::span<const std::uint32_t>{}
               : std::span<const std::uint32_t>{words_}.subspan(
                     4 + 3 * node_count(), words_[2]);
  }
  [[nodiscard]] std::span<const std::uint32_t> output_ranks()
      const noexcept {
    return words_.empty()
               ? std::span<const std::uint32_t>{}
               : std::span<const std::uint32_t>{words_}.subspan(
                     4 + 3 * node_count() + words_[2], words_[3]);
  }
  /// Exact translator back to the text-boundary form.
  [[nodiscard]] SerializedBdd chi() const;

  [[nodiscard]] bool operator==(const GlobalMemoKey&) const = default;

  friend std::uint64_t memo_key_hash(const GlobalMemoKey& key);
  friend CanonicalHash128 memo_key_hash128(const GlobalMemoKey& key);

 private:
  std::vector<std::uint32_t> words_;
};

/// Canonical key for a subrelation with characteristic `chi` living in
/// `space`.  Throws std::logic_error if chi depends on a variable
/// outside the space (a subrelation never does).
[[nodiscard]] GlobalMemoKey make_memo_key(const MemoSpace& space,
                                          const Bdd& chi);

/// 64-bit FNV-1a content hash of a canonical key.  One hash feeds three
/// consumers that must agree on identity ACROSS PROCESSES AND VERSIONS:
/// the snapshot entry checksum (memo_entry_checksum embeds it in
/// `check=` fields on disk), the peer-exchange consistent-hash ring
/// (memo_exchange.hpp — a key owned by peer P hashes identically in
/// every process), and the MEMO_PULL/PUSH frames.  Its feed sequence is
/// therefore frozen; the in-memory store keys on memo_key_hash128
/// instead, which needs no serialized form.
[[nodiscard]] std::uint64_t memo_key_hash(const GlobalMemoKey& key);

/// 128-bit canonical hash of a whole key: the structural hash of chi
/// (bdd_hash.hpp) folded with the rank lists.  The in-memory shard map,
/// the shard mix, and the two-phase probe key on this value.  Two ways
/// to compute it, guaranteed to agree:
///   - from a live manager:  memo_key_hash128(canonical_hash(chi), space)
///     — O(new nodes), nothing serialized;
///   - from a materialized key: memo_key_hash128(key) — the arena walk.
[[nodiscard]] CanonicalHash128 memo_key_hash128(const GlobalMemoKey& key);
[[nodiscard]] CanonicalHash128 memo_key_hash128(
    const CanonicalHash128& chi_hash,
    std::span<const std::uint32_t> input_ranks,
    std::span<const std::uint32_t> output_ranks);

/// A canonical key in one of two states: HASHED (the 128-bit identity
/// plus the live chi handle needed to materialize later) or MATERIALIZED
/// (the arena form built, the chi handle dropped — pure plain data from
/// then on).  The engines thread these through memo chains so the common
/// case — probe misses and ancestor republishes — never serializes;
/// get() materializes exactly once, on the first candidate hit to verify
/// or on first publish.
///
/// Thread contract: materialization touches chi's manager, so get() on a
/// HASHED handle may only run on that manager's owning thread.  Work
/// migration respects this by materializing every chain handle on the
/// victim's thread before the hand-off (the queue mutex is the barrier);
/// once materialized, the handle is immutable plain data and concurrent
/// get()/shared_key() are safe.  `verified_seq` is the only field
/// written after sharing and is a relaxed atomic (a stale read only
/// costs a redundant verification).
class LazyMemoKey {
 public:
  /// HASHED state.  `chi` pins the characteristic until materialization.
  LazyMemoKey(const CanonicalHash128& key_hash, Bdd chi,
              std::shared_ptr<const MemoSpace> space)
      : hash(key_hash), chi_(std::move(chi)), space_(std::move(space)) {}
  /// MATERIALIZED from the start (hash computed via the arena walk).
  explicit LazyMemoKey(GlobalMemoKey key)
      : hash(memo_key_hash128(key)),
        key_(std::make_shared<const GlobalMemoKey>(std::move(key))) {}
  /// MATERIALIZED with an EXPLICIT hash.  This is the collision
  /// injection seam for tests: a genuine 128-bit collision cannot be
  /// constructed, so the forced-collision test lies about the hash here
  /// and asserts the verify step still disambiguates.  Production code
  /// never calls this with a hash that is not memo_key_hash128(key).
  LazyMemoKey(const CanonicalHash128& key_hash, GlobalMemoKey key)
      : hash(key_hash),
        key_(std::make_shared<const GlobalMemoKey>(std::move(key))) {}

  [[nodiscard]] bool materialized() const noexcept {
    return key_ != nullptr;
  }
  /// The materialized key, building it on first call (see the thread
  /// contract above).
  [[nodiscard]] const GlobalMemoKey& get() const;
  /// Shared ownership of the materialized key (materializes too) — what
  /// GlobalMemo entries store, so insert never copies the arena.
  [[nodiscard]] std::shared_ptr<const GlobalMemoKey> shared_key() const;

  const CanonicalHash128 hash;
  /// created_seq of the store entry this handle last verified equal
  /// against (0 = never) — lets a re-publish skip the key compare.
  mutable std::atomic<std::uint64_t> verified_seq{0};

 private:
  mutable std::shared_ptr<const GlobalMemoKey> key_;
  mutable Bdd chi_;
  mutable std::shared_ptr<const MemoSpace> space_;
};

/// How the engines refer to a canonical key: shared so one handle (and
/// its one materialization) serves a subproblem, its ancestor chains,
/// and the touched-key list alike.
using MemoKeyHandle = std::shared_ptr<LazyMemoKey>;

/// HASHED handle for the subrelation with characteristic `chi` in
/// `space` — the probe-path constructor: one canonical_hash walk
/// (amortized O(new nodes)), nothing serialized.
[[nodiscard]] MemoKeyHandle make_memo_handle(
    std::shared_ptr<const MemoSpace> space, const Bdd& chi);

/// Process-wide materialization accounting: how many HASHED handles were
/// ever materialized and the wall time spent doing it.  Feeds the
/// `key_build_ms` bench field and the never-serializes-on-miss test.
struct MemoKeyBuildStats {
  std::uint64_t builds = 0;
  std::uint64_t ns = 0;
};
[[nodiscard]] MemoKeyBuildStats memo_key_build_stats() noexcept;
void reset_memo_key_build_stats() noexcept;

/// A manager-independent multi-output solution: one rank-mapped
/// serialized BDD per output, over the *input* ranks of its space.
struct PortableSolution {
  std::vector<SerializedBdd> outputs;
  double cost = 0.0;

  [[nodiscard]] bool has_solution() const noexcept {
    return !outputs.empty();
  }
  [[nodiscard]] bool operator==(const PortableSolution&) const = default;
};

/// Flatten `f` (BDDs of one manager) into the portable rank form.
[[nodiscard]] PortableSolution make_portable_solution(const MemoSpace& space,
                                                      const MultiFunction& f,
                                                      double cost);

/// Materialize a portable solution in `mgr` under `space`'s variable
/// assignment (the inverse remap of make_portable_solution).
[[nodiscard]] MultiFunction import_portable_solution(
    BddManager& mgr, const MemoSpace& space, const PortableSolution& s);

/// Materialize one rank-form serialized BDD (e.g. a GlobalMemoKey::chi)
/// in `mgr` under `space`'s variable assignment — the same inverse remap
/// import_portable_solution applies per output, exposed for callers that
/// need the characteristic itself (the incremental delta path diffs a
/// remembered base characteristic against a fresh one).
[[nodiscard]] Bdd import_canonical_bdd(BddManager& mgr,
                                       const MemoSpace& space,
                                       const SerializedBdd& s);

/// Text form of a portable solution — the response body of the socket
/// service (server.hpp), built from the same node-line grammar as the
/// `.bdd` relation format: a `.cost` line, an `.outputs` count, then per
/// output a `.bdd <node_count>` section (write_serialized_bdd).  An
/// empty-bodied solution (has_solution() == false) round-trips too.
void write_portable_solution(std::ostream& os, const PortableSolution& s);
/// Inverse of write_portable_solution.  Throws std::invalid_argument on
/// malformed input (bad counts, malformed node lines, trailing tokens).
[[nodiscard]] PortableSolution read_portable_solution(std::istream& in);

/// Strict total order on same-space portable solutions, used to break
/// COST TIES everywhere a winner is chosen — the engine incumbent, the
/// memo's cross-run accumulation, the parallel coordinator's merge.
/// Minimum under a total order is associative/commutative, so the tied
/// winner is the same no matter which schedule, worker, or run produced
/// the candidates — without it, equal-cost ties make repeat solves (and
/// memo-served solves) compatible-but-not-bit-identical.  The order is
/// lexicographic over the rank-form serialized outputs; it carries no
/// semantic meaning beyond being total and space-canonical.
[[nodiscard]] bool canonically_before(const PortableSolution& a,
                                      const PortableSolution& b);

/// The comparability stamp (see CacheFingerprint for the rationale; the
/// variable spaces live inside each GlobalMemoKey here, as ranks, so the
/// fingerprint only carries objective and mode).
struct MemoFingerprint {
  std::string cost_id;
  bool exact = false;

  [[nodiscard]] bool operator==(const MemoFingerprint&) const = default;
};

/// A complete-entry probe result: the memoized solution plus whether the
/// entry is only depth-truncated complete (see MemoMark).  Probers that
/// import a truncated entry must propagate truncated-ness to their own
/// ancestry or their later marks would overclaim.
struct MemoHit {
  PortableSolution solution;
  bool depth_truncated = false;
};

/// Probe depth marking a no-depth-cap natural drain: valid for a prober
/// at any depth (GlobalMemo::kAnyDepth aliases this).
inline constexpr std::uint64_t kMemoAnyDepth =
    static_cast<std::uint64_t>(-1);

/// Where an installed entry came from — tags per-tier hit accounting
/// (a warm service should show its restarts and peers paying off, not
/// just an aggregate hit rate).
enum class MemoOrigin : std::uint8_t {
  kRun = 0,       ///< published by a solve in this process
  kSnapshot = 1,  ///< restored from a disk snapshot (tier 1)
  kPeer = 2,      ///< faulted or pushed over the wire (tier 2)
};
inline constexpr std::size_t kMemoOriginCount = 3;

/// One entry in tier-crossing form: the canonical key, the complete
/// solution, and its completeness claim.  Only two claim shapes may
/// cross a tier boundary (see the file comment):
///
///   - `root_exact == false`: NATURALLY complete at `complete_depth`
///     (kMemoAnyDepth for a capless drain) — serves any prober at or
///     above that depth;
///   - `root_exact == true`: the drained solve's final root answer,
///     re-installed truncated-at-depth-0 — serves only a root-position
///     prober re-solving the identical relation (`complete_depth` is 0).
struct MemoExportEntry {
  GlobalMemoKey key;
  PortableSolution solution;
  std::uint64_t complete_depth = kMemoAnyDepth;
  bool root_exact = false;
};

/// A storage tier of the memo system.  Implementations: GlobalMemo
/// (tier 0, in-memory), MemoExchange (tier 2, peer fault path).  The
/// snapshot codec (tier 1) is a pair of free functions over this
/// interface rather than a class — a file has no probe path.
class MemoBackend {
 public:
  virtual ~MemoBackend() = default;

  /// Probe for `key` on behalf of a prober at root distance `depth`.
  /// Same depth-validity contract as GlobalMemo::lookup_at.
  [[nodiscard]] virtual std::optional<MemoHit> probe(
      const GlobalMemoKey& key, std::uint64_t depth) = 0;

  /// Install a tier-crossing entry (insert or upgrade; see
  /// GlobalMemo::install for the upgrade rules).  Returns true when the
  /// store changed.  `origin` tags the entry for per-tier accounting.
  virtual bool install(const MemoExportEntry& entry, MemoOrigin origin) = 0;

  /// Enumerate every entry eligible to cross a tier boundary (the
  /// export policy above), in unspecified order.
  virtual void export_complete(
      const std::function<void(const MemoExportEntry&)>& sink) const = 0;
};

}  // namespace brel
