#include "brel/partition.hpp"

#include <chrono>
#include <cstdint>
#include <optional>

#include "brel/cost.hpp"
#include "brel/delta_context.hpp"
#include "brel/global_memo.hpp"

namespace brel {

SolveResult solve_partitioned(const BooleanRelation& r,
                              const SolverOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  BddManager& mgr = r.manager();
  const std::vector<std::uint32_t>& inputs = r.inputs();
  const std::vector<std::uint32_t>& outputs = r.outputs();
  const std::size_t q = std::min(options.partition_inputs, inputs.size() - 1);
  const std::size_t blocks = std::size_t{1} << q;
  const std::vector<std::uint32_t> rest(inputs.begin() +
                                            static_cast<std::ptrdiff_t>(q),
                                        inputs.end());

  // Delta classification at block granularity: diff against the
  // registry's base for the FULL relation's spaces.  The delta never
  // decides anything — clean blocks are served (or not) by their own
  // content-keyed root probes — it only explains the reuse in the stats,
  // exactly like the subtree-level overlay in search.cpp.
  Bdd delta;
  std::shared_ptr<const MemoSpace> memo_space;
  MemoKeyHandle root_key;
  if (options.delta_registry != nullptr && options.global_memo != nullptr) {
    memo_space = std::make_shared<const MemoSpace>(make_memo_space(r));
    // Lazy handle: the overlay probe goes through the rank lists, so a
    // cold run (no remembered base) builds neither a key nor a hash walk
    // beyond the O(new nodes) canonical hash.
    root_key = make_memo_handle(memo_space, r.characteristic());
    if (const SerializedBdd* base = options.delta_registry->find_base(
            memo_space->input_ranks, memo_space->output_ranks)) {
      delta =
          r.characteristic() ^ import_canonical_bdd(mgr, *memo_space, *base);
    }
  }

  // Blocks run the plain engine: no nested partitioning, no registry
  // (their bases live implicitly in the shared memo as block-root
  // entries).  Everything else — memo, workers, depth caps, reordering —
  // passes through unchanged.
  SolverOptions block_options = options;
  block_options.partition_inputs = 0;
  block_options.delta_registry = nullptr;
  const BrelSolver block_solver(block_options);

  SolveResult result;
  result.function.outputs.assign(outputs.size(), mgr.zero());
  SolverStats& stats = result.stats;
  stats.delta_active = !delta.is_null();

  for (std::size_t a = 0; a < blocks; ++a) {
    Bdd chi = r.characteristic();
    Bdd block_delta = delta;
    Bdd cube = mgr.one();
    for (std::size_t i = 0; i < q; ++i) {
      const bool bit = ((a >> i) & 1u) != 0;
      chi = chi.cofactor(inputs[i], bit);
      cube = cube & mgr.literal(inputs[i], bit);
      if (!block_delta.is_null() && !block_delta.is_zero()) {
        block_delta = block_delta.cofactor(inputs[i], bit);
      }
    }
    if (stats.delta_active) {
      if (block_delta.is_zero()) {
        ++stats.delta_reused;
      } else {
        ++stats.delta_researched;
      }
    }

    const SolveResult block = block_solver.solve(
        BooleanRelation(mgr, rest, outputs, std::move(chi)));
    for (std::size_t o = 0; o < outputs.size(); ++o) {
      result.function.outputs[o] =
          result.function.outputs[o] | (cube & block.function.outputs[o]);
    }

    const SolverStats& b = block.stats;
    stats.relations_explored += b.relations_explored;
    stats.splits += b.splits;
    stats.quick_solutions += b.quick_solutions;
    stats.misf_minimizations += b.misf_minimizations;
    stats.conflicts += b.conflicts;
    stats.pruned_by_cost += b.pruned_by_cost;
    stats.pruned_by_symmetry += b.pruned_by_symmetry;
    stats.pruned_by_cache += b.pruned_by_cache;
    stats.memo_hits += b.memo_hits;
    stats.fifo_overflow += b.fifo_overflow;
    stats.depth_limited += b.depth_limited;
    stats.solutions_seen += b.solutions_seen;
    stats.workers = std::max(stats.workers, b.workers);
    stats.steals += b.steals;
    stats.steal_batches += b.steal_batches;
    stats.reorders += b.reorders;
    stats.delta_reused += b.delta_reused;
    stats.delta_researched += b.delta_researched;
    stats.budget_exhausted = stats.budget_exhausted || b.budget_exhausted;
    stats.lock_wait_ns += b.lock_wait_ns;
  }

  const CostFunction cost =
      options.cost ? options.cost : sum_of_bdd_sizes();
  result.cost = cost(result.function);

  // This run becomes the next base for its spaces — same drain condition
  // as the engine's (an interrupted run must not anchor future diffs to
  // a composition of degraded block results).
  if (root_key != nullptr && !stats.budget_exhausted &&
      stats.fifo_overflow == 0) {
    options.delta_registry->remember(root_key->get());
  }

  stats.runtime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace brel
