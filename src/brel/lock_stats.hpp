#pragma once

/// \file lock_stats.hpp
/// Lightweight contention profiler: a timed-mutex wrapper that records
/// acquire-wait nanoseconds and hold counts per *named* lock, plus a global
/// registry the CLI and benches can snapshot.
///
/// Contract:
///  - Every TimedMutex is constructed with a name; all mutexes sharing a
///    name (e.g. the N GlobalMemo shard locks, all named "memo") feed one
///    counter group, so reports aggregate automatically.
///  - The uncontended path pays no clock read: `lock()` first issues a
///    `try_lock()`, and only a *contended* acquire brackets the blocking
///    `lock()` with two steady_clock reads.  Counters are relaxed atomics.
///  - `wait_ns` therefore measures time spent *blocked* on the lock, not
///    hold time; `acquires` counts every successful acquisition (a proxy
///    for hold count); `contended` counts acquisitions that had to block.
///  - Compiled to zero cost when disabled: configure with
///    `-DBREL_LOCK_STATS=OFF` (CMake option) and TimedMutex degenerates to
///    a plain std::mutex forwarder — no counters, no registry traffic.
///
/// TimedMutex satisfies Lockable, so it works with std::scoped_lock,
/// std::unique_lock, and std::condition_variable_any.

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#ifndef BREL_LOCK_STATS
#define BREL_LOCK_STATS 1
#endif

#if BREL_LOCK_STATS
#include <atomic>
#include <chrono>
#endif

namespace brel {

namespace lock_names {
/// The three contention walls this profiler exists to watch.
inline constexpr const char* kMemo = "memo";    ///< GlobalMemo shard locks
inline constexpr const char* kInject = "inject";  ///< parallel injection queue
inline constexpr const char* kPool = "pool";    ///< solver-pool mailboxes
}  // namespace lock_names

/// Point-in-time copy of one named lock's counters.
struct LockSnapshot {
  std::string name;
  std::uint64_t wait_ns = 0;    ///< total ns spent blocked acquiring
  std::uint64_t acquires = 0;   ///< successful acquisitions (hold count)
  std::uint64_t contended = 0;  ///< acquisitions that had to block
};

/// True when the profiler is compiled in (BREL_LOCK_STATS != 0).
constexpr bool lock_stats_compiled() noexcept { return BREL_LOCK_STATS != 0; }

#if BREL_LOCK_STATS

/// One shared counter group per lock *name*.  Stable address for the
/// lifetime of the process; updated with relaxed atomics only.
struct LockCounters {
  std::atomic<std::uint64_t> wait_ns{0};
  std::atomic<std::uint64_t> acquires{0};
  std::atomic<std::uint64_t> contended{0};
};

/// Process-global registry of named counter groups.  Registration happens
/// once per TimedMutex construction (cold); the hot path only touches the
/// returned LockCounters.
class LockStatsRegistry {
 public:
  static LockStatsRegistry& instance();

  /// Get-or-create the counter group for `name`.  Never returns null; the
  /// pointer stays valid for the process lifetime.
  LockCounters* counters(const char* name);

  /// Copy out every named group (sorted by name).
  [[nodiscard]] std::vector<LockSnapshot> snapshot() const;

  /// Total blocked-wait ns currently recorded for `name` (0 if unknown).
  [[nodiscard]] std::uint64_t wait_ns(const char* name) const;

  /// Zero every counter (bench rounds reset between configurations).
  void reset();

 private:
  LockStatsRegistry() = default;
  mutable std::mutex mutex_;
  // Pointers handed out must survive rehashing, hence unique_ptr values.
  std::vector<std::pair<std::string, std::unique_ptr<LockCounters>>> groups_;
};

/// Mutex wrapper feeding the named counter group.  See file header for the
/// exact accounting contract.
class TimedMutex {
 public:
  explicit TimedMutex(const char* name)
      : counters_(LockStatsRegistry::instance().counters(name)) {}

  TimedMutex(const TimedMutex&) = delete;
  TimedMutex& operator=(const TimedMutex&) = delete;

  void lock() {
    if (mutex_.try_lock()) {
      counters_->acquires.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    counters_->contended.fetch_add(1, std::memory_order_relaxed);
    const auto start = std::chrono::steady_clock::now();
    mutex_.lock();
    const auto waited = std::chrono::steady_clock::now() - start;
    counters_->wait_ns.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(waited)
                .count()),
        std::memory_order_relaxed);
    counters_->acquires.fetch_add(1, std::memory_order_relaxed);
  }

  bool try_lock() {
    if (mutex_.try_lock()) {
      counters_->acquires.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  void unlock() { mutex_.unlock(); }

 private:
  std::mutex mutex_;
  LockCounters* counters_;  // never null
};

#else  // BREL_LOCK_STATS == 0: zero-cost forwarders

class LockStatsRegistry {
 public:
  static LockStatsRegistry& instance() {
    static LockStatsRegistry registry;
    return registry;
  }
  [[nodiscard]] std::vector<LockSnapshot> snapshot() const { return {}; }
  [[nodiscard]] std::uint64_t wait_ns(const char*) const { return 0; }
  void reset() {}
};

class TimedMutex {
 public:
  explicit TimedMutex(const char* /*name*/) {}
  TimedMutex(const TimedMutex&) = delete;
  TimedMutex& operator=(const TimedMutex&) = delete;
  void lock() { mutex_.lock(); }
  bool try_lock() { return mutex_.try_lock(); }
  void unlock() { mutex_.unlock(); }

 private:
  std::mutex mutex_;
};

#endif  // BREL_LOCK_STATS

/// Convenience: total blocked-wait ns across the given lock names right
/// now.  Callers diff two calls to attribute waits to a run (best effort:
/// the registry is process-global, so concurrent runs overlap).
std::uint64_t total_lock_wait_ns(std::initializer_list<const char*> names);

}  // namespace brel
