#include "brel/memo_backend.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace brel {

namespace {

/// Remap a serialized BDD's variables through `table` (var → rank or
/// rank → var).  Both directions are strictly monotone over the
/// relation's variables, so the node list remains a valid ordered BDD.
SerializedBdd remap_vars(SerializedBdd s,
                         const std::vector<std::uint32_t>& table,
                         std::uint32_t unmapped_sentinel) {
  s.num_vars = 0;
  for (SerializedBdd::Node& node : s.nodes) {
    if (node.var >= table.size() || table[node.var] == unmapped_sentinel) {
      throw std::logic_error(
          "GlobalMemo: BDD depends on a variable outside the relation's "
          "input/output spaces");
    }
    node.var = table[node.var];
    s.num_vars = std::max(s.num_vars, node.var + 1);
  }
  return s;
}

/// 64-bit FNV-1a over the words of a key.
struct Fnv {
  std::uint64_t state = 14695981039346656037ull;

  void feed(std::uint64_t word) noexcept {
    state ^= word;
    state *= 1099511628211ull;
  }
  void feed_list(const std::vector<std::uint32_t>& list) noexcept {
    feed(list.size());
    for (const std::uint32_t v : list) {
      feed(v);
    }
  }
};

}  // namespace

MemoSpace make_memo_space(const BooleanRelation& r) {
  MemoSpace space;
  space.sorted_vars.reserve(r.num_inputs() + r.num_outputs());
  space.sorted_vars.insert(space.sorted_vars.end(), r.inputs().begin(),
                           r.inputs().end());
  space.sorted_vars.insert(space.sorted_vars.end(), r.outputs().begin(),
                           r.outputs().end());
  std::sort(space.sorted_vars.begin(), space.sorted_vars.end());
  space.rank_of.assign(r.manager().num_vars(), MemoSpace::kUnranked);
  for (std::size_t rank = 0; rank < space.sorted_vars.size(); ++rank) {
    space.rank_of[space.sorted_vars[rank]] =
        static_cast<std::uint32_t>(rank);
  }
  space.input_ranks.reserve(r.num_inputs());
  for (const std::uint32_t v : r.inputs()) {
    space.input_ranks.push_back(space.rank_of[v]);
  }
  space.output_ranks.reserve(r.num_outputs());
  for (const std::uint32_t v : r.outputs()) {
    space.output_ranks.push_back(space.rank_of[v]);
  }
  return space;
}

GlobalMemoKey make_memo_key(const MemoSpace& space, const Bdd& chi) {
  GlobalMemoKey key;
  key.chi = remap_vars(serialize_bdd(chi), space.rank_of,
                       MemoSpace::kUnranked);
  key.input_ranks = space.input_ranks;
  key.output_ranks = space.output_ranks;
  return key;
}

std::uint64_t memo_key_hash(const GlobalMemoKey& key) {
  Fnv h;
  h.feed(key.chi.nodes.size());
  for (const SerializedBdd::Node& n : key.chi.nodes) {
    h.feed((static_cast<std::uint64_t>(n.var) << 32) ^ n.hi);
    h.feed(n.lo);
  }
  h.feed(key.chi.root);
  h.feed_list(key.input_ranks);
  h.feed_list(key.output_ranks);
  return h.state;
}

PortableSolution make_portable_solution(const MemoSpace& space,
                                        const MultiFunction& f,
                                        double cost) {
  PortableSolution out;
  out.outputs.reserve(f.outputs.size());
  for (const Bdd& g : f.outputs) {
    out.outputs.push_back(
        remap_vars(serialize_bdd(g), space.rank_of, MemoSpace::kUnranked));
  }
  out.cost = cost;
  return out;
}

MultiFunction import_portable_solution(BddManager& mgr,
                                       const MemoSpace& space,
                                       const PortableSolution& s) {
  MultiFunction f;
  f.outputs.reserve(s.outputs.size());
  for (const SerializedBdd& g : s.outputs) {
    // Inverse remap (rank → manager variable) is monotone too, so the
    // rebuilt function has the destination's canonical structure.
    f.outputs.push_back(mgr.deserialize_bdd(
        remap_vars(g, space.sorted_vars, MemoSpace::kUnranked)));
  }
  return f;
}

Bdd import_canonical_bdd(BddManager& mgr, const MemoSpace& space,
                         const SerializedBdd& s) {
  return mgr.deserialize_bdd(
      remap_vars(s, space.sorted_vars, MemoSpace::kUnranked));
}

void write_portable_solution(std::ostream& os, const PortableSolution& s) {
  // %.17g-precision cost so the round trip is bit-faithful for every
  // double a cost function can produce (cf. support_balance_cost's id).
  char cost_text[64];
  std::snprintf(cost_text, sizeof(cost_text), "%.17g", s.cost);
  os << ".cost " << cost_text << '\n';
  os << ".outputs " << s.outputs.size() << '\n';
  for (const SerializedBdd& g : s.outputs) {
    os << ".bdd " << g.nodes.size() << '\n';
    write_serialized_bdd(os, g);
  }
}

PortableSolution read_portable_solution(std::istream& in) {
  const auto fail = [](const char* what) {
    throw std::invalid_argument(std::string("read_portable_solution: ") +
                                what);
  };
  // Same sanity ceilings as relation_io's `.bdd` parser: a lying header
  // must fail loudly, never allocate unbounded memory.
  constexpr std::size_t kMaxOutputs = 1u << 16;
  constexpr std::size_t kMaxNodes = 1u << 28;
  std::string keyword;
  PortableSolution out;
  std::string cost_text;
  if (!(in >> keyword) || keyword != ".cost" || !(in >> cost_text)) {
    fail("malformed .cost line");
  }
  // strtod, not stream extraction: num_get refuses "inf"/"nan", and an
  // empty best-so-far (deadline-expired) solution carries cost = inf.
  char* cost_end = nullptr;
  out.cost = std::strtod(cost_text.c_str(), &cost_end);
  if (cost_end == cost_text.c_str() || *cost_end != '\0') {
    fail("malformed .cost value");
  }
  std::size_t output_count = 0;
  if (!(in >> keyword) || keyword != ".outputs" || !(in >> output_count)) {
    fail("malformed .outputs line");
  }
  if (output_count > kMaxOutputs) {
    fail(".outputs declares too many outputs");
  }
  out.outputs.reserve(std::min<std::size_t>(output_count, 1u << 8));
  std::string line;
  std::getline(in, line);  // consume the rest of the .outputs line
  for (std::size_t o = 0; o < output_count; ++o) {
    if (!std::getline(in, line)) {
      fail("truncated output list");
    }
    std::istringstream header(line);
    std::size_t node_count = 0;
    std::string extra;
    if (!(header >> keyword) || keyword != ".bdd" ||
        !(header >> node_count)) {
      fail("malformed .bdd line");
    }
    if (header >> extra) {
      fail("trailing tokens on .bdd line");
    }
    if (node_count > kMaxNodes) {
      fail(".bdd declares too many nodes");
    }
    out.outputs.push_back(read_serialized_bdd(in, node_count));
  }
  if (in >> keyword) {
    fail("trailing tokens after the last output");
  }
  return out;
}

namespace {

/// Three-way lexicographic compare of rank-form serialized BDDs.  The
/// serializer emits a deterministic traversal of the canonical DAG, so
/// equal functions compare equal and distinct functions compare stably
/// in either direction — exactly the properties canonically_before
/// needs; the specific order is otherwise arbitrary.
int compare_serialized(const SerializedBdd& a, const SerializedBdd& b) {
  if (a.nodes.size() != b.nodes.size()) {
    return a.nodes.size() < b.nodes.size() ? -1 : 1;
  }
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    const SerializedBdd::Node& x = a.nodes[i];
    const SerializedBdd::Node& y = b.nodes[i];
    if (x.var != y.var) {
      return x.var < y.var ? -1 : 1;
    }
    if (x.hi != y.hi) {
      return x.hi < y.hi ? -1 : 1;
    }
    if (x.lo != y.lo) {
      return x.lo < y.lo ? -1 : 1;
    }
  }
  if (a.root != b.root) {
    return a.root < b.root ? -1 : 1;
  }
  if (a.num_vars != b.num_vars) {
    return a.num_vars < b.num_vars ? -1 : 1;
  }
  return 0;
}

}  // namespace

bool canonically_before(const PortableSolution& a,
                        const PortableSolution& b) {
  if (a.outputs.size() != b.outputs.size()) {
    // Unreachable for same-relation candidates; ordered for totality.
    return a.outputs.size() < b.outputs.size();
  }
  for (std::size_t o = 0; o < a.outputs.size(); ++o) {
    if (const int c = compare_serialized(a.outputs[o], b.outputs[o]);
        c != 0) {
      return c < 0;
    }
  }
  return false;
}

}  // namespace brel
