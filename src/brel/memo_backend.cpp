#include "brel/memo_backend.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace brel {

namespace {

/// Remap a serialized BDD's variables through `table` (var → rank or
/// rank → var).  Both directions are strictly monotone over the
/// relation's variables, so the node list remains a valid ordered BDD.
SerializedBdd remap_vars(SerializedBdd s,
                         const std::vector<std::uint32_t>& table,
                         std::uint32_t unmapped_sentinel) {
  s.num_vars = 0;
  for (SerializedBdd::Node& node : s.nodes) {
    if (node.var >= table.size() || table[node.var] == unmapped_sentinel) {
      throw std::logic_error(
          "GlobalMemo: BDD depends on a variable outside the relation's "
          "input/output spaces");
    }
    node.var = table[node.var];
    s.num_vars = std::max(s.num_vars, node.var + 1);
  }
  return s;
}

/// 64-bit FNV-1a over the words of a key.
struct Fnv {
  std::uint64_t state = 14695981039346656037ull;

  void feed(std::uint64_t word) noexcept {
    state ^= word;
    state *= 1099511628211ull;
  }
  void feed_list(std::span<const std::uint32_t> list) noexcept {
    feed(list.size());
    for (const std::uint32_t v : list) {
      feed(v);
    }
  }
};

/// Space tokens start above kIdentityHashSpace (1); 0 stays "uncacheable".
std::atomic<std::uint64_t> g_space_token{2};

std::atomic<std::uint64_t> g_key_builds{0};
std::atomic<std::uint64_t> g_key_build_ns{0};

}  // namespace

MemoSpace make_memo_space(const BooleanRelation& r) {
  MemoSpace space;
  space.token = g_space_token.fetch_add(1, std::memory_order_relaxed);
  space.sorted_vars.reserve(r.num_inputs() + r.num_outputs());
  space.sorted_vars.insert(space.sorted_vars.end(), r.inputs().begin(),
                           r.inputs().end());
  space.sorted_vars.insert(space.sorted_vars.end(), r.outputs().begin(),
                           r.outputs().end());
  std::sort(space.sorted_vars.begin(), space.sorted_vars.end());
  space.rank_of.assign(r.manager().num_vars(), MemoSpace::kUnranked);
  for (std::size_t rank = 0; rank < space.sorted_vars.size(); ++rank) {
    space.rank_of[space.sorted_vars[rank]] =
        static_cast<std::uint32_t>(rank);
  }
  space.input_ranks.reserve(r.num_inputs());
  for (const std::uint32_t v : r.inputs()) {
    space.input_ranks.push_back(space.rank_of[v]);
  }
  space.output_ranks.reserve(r.num_outputs());
  for (const std::uint32_t v : r.outputs()) {
    space.output_ranks.push_back(space.rank_of[v]);
  }
  return space;
}

GlobalMemoKey::GlobalMemoKey(const SerializedBdd& chi,
                             std::span<const std::uint32_t> input_ranks,
                             std::span<const std::uint32_t> output_ranks) {
  const std::size_t n = chi.nodes.size();
  if ((chi.root >> 1) > n) {
    throw std::invalid_argument(
        "GlobalMemoKey: root references an unknown node");
  }
  words_.reserve(4 + 3 * n + input_ranks.size() + output_ranks.size());
  words_.push_back(static_cast<std::uint32_t>(n));
  words_.push_back(chi.root);
  words_.push_back(static_cast<std::uint32_t>(input_ranks.size()));
  words_.push_back(static_cast<std::uint32_t>(output_ranks.size()));
  for (std::size_t k = 0; k < n; ++k) {
    const SerializedBdd::Node& node = chi.nodes[k];
    // Child-before-parent (node k has id k + 1): the arena walkers
    // index h[child_id] while building forward and must never read
    // ahead.  serialize_bdd always emits this order; a corrupt snapshot
    // key fails here, loudly.
    if ((node.hi >> 1) > k || (node.lo >> 1) > k) {
      throw std::invalid_argument(
          "GlobalMemoKey: child id not smaller than parent id");
    }
    words_.push_back(node.var);
    words_.push_back(node.hi);
    words_.push_back(node.lo);
  }
  words_.insert(words_.end(), input_ranks.begin(), input_ranks.end());
  words_.insert(words_.end(), output_ranks.begin(), output_ranks.end());
}

SerializedBdd GlobalMemoKey::chi() const {
  SerializedBdd out;
  const std::size_t n = node_count();
  out.nodes.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    out.nodes.push_back(
        SerializedBdd::Node{node_var(k), node_hi(k), node_lo(k)});
    // num_vars is 1 + the largest node rank — exactly what remap_vars
    // computed for the pre-arena key, so the translation is exact.
    out.num_vars = std::max(out.num_vars, node_var(k) + 1);
  }
  out.root = chi_root();
  return out;
}

GlobalMemoKey make_memo_key(const MemoSpace& space, const Bdd& chi) {
  const SerializedBdd canonical =
      remap_vars(serialize_bdd(chi), space.rank_of, MemoSpace::kUnranked);
  return GlobalMemoKey(canonical, space.input_ranks, space.output_ranks);
}

std::uint64_t memo_key_hash(const GlobalMemoKey& key) {
  // Frozen feed sequence (see the header comment): identical word for
  // word to the pre-arena implementation, which fed the SerializedBdd
  // fields directly — snapshot `check=` values must not move.
  Fnv h;
  const std::size_t n = key.node_count();
  h.feed(n);
  for (std::size_t k = 0; k < n; ++k) {
    h.feed((static_cast<std::uint64_t>(key.node_var(k)) << 32) ^
           key.node_hi(k));
    h.feed(key.node_lo(k));
  }
  h.feed(key.chi_root());
  h.feed_list(key.input_ranks());
  h.feed_list(key.output_ranks());
  return h.state;
}

CanonicalHash128 memo_key_hash128(const GlobalMemoKey& key) {
  // The arena walk: rebuild each node's structural hash bottom-up from
  // its record, in lockstep with BddManager::canonical_hash (node vars
  // here are already ranks).
  const std::size_t n = key.node_count();
  std::vector<CanonicalHash128> h(n + 1);
  h[0] = chash::kOneHash;
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint32_t hi = key.node_hi(k);
    const std::uint32_t lo = key.node_lo(k);
    h[k + 1] = chash::node_hash(
        key.node_var(k), chash::edge_hash(h[hi >> 1], (hi & 1u) != 0),
        chash::edge_hash(h[lo >> 1], (lo & 1u) != 0));
  }
  const std::uint32_t root = key.chi_root();
  return memo_key_hash128(
      chash::edge_hash(h[root >> 1], (root & 1u) != 0), key.input_ranks(),
      key.output_ranks());
}

CanonicalHash128 memo_key_hash128(
    const CanonicalHash128& chi_hash,
    std::span<const std::uint32_t> input_ranks,
    std::span<const std::uint32_t> output_ranks) {
  chash::Accumulator h;
  h.feed(chi_hash.lo);
  h.feed(chi_hash.hi);
  h.feed(input_ranks.size());
  for (const std::uint32_t r : input_ranks) {
    h.feed(r);
  }
  h.feed(output_ranks.size());
  for (const std::uint32_t r : output_ranks) {
    h.feed(r);
  }
  return h.digest();
}

const GlobalMemoKey& LazyMemoKey::get() const {
  if (key_ == nullptr) {
    const auto start = std::chrono::steady_clock::now();
    key_ = std::make_shared<const GlobalMemoKey>(
        make_memo_key(*space_, chi_));
    const auto end = std::chrono::steady_clock::now();
    g_key_builds.fetch_add(1, std::memory_order_relaxed);
    g_key_build_ns.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count(),
        std::memory_order_relaxed);
    // MATERIALIZED is a terminal state: drop the manager handle so the
    // key is plain data from here on (and the chi DAG is unpinned).
    chi_ = Bdd();
    space_.reset();
  }
  return *key_;
}

std::shared_ptr<const GlobalMemoKey> LazyMemoKey::shared_key() const {
  (void)get();
  return key_;
}

MemoKeyHandle make_memo_handle(std::shared_ptr<const MemoSpace> space,
                               const Bdd& chi) {
  BddManager& mgr = *chi.manager();
  const CanonicalHash128 chi_hash =
      mgr.canonical_hash(chi, space->rank_of, space->token);
  return std::make_shared<LazyMemoKey>(
      memo_key_hash128(chi_hash, space->input_ranks, space->output_ranks),
      chi, std::move(space));
}

MemoKeyBuildStats memo_key_build_stats() noexcept {
  return MemoKeyBuildStats{g_key_builds.load(std::memory_order_relaxed),
                           g_key_build_ns.load(std::memory_order_relaxed)};
}

void reset_memo_key_build_stats() noexcept {
  g_key_builds.store(0, std::memory_order_relaxed);
  g_key_build_ns.store(0, std::memory_order_relaxed);
}

PortableSolution make_portable_solution(const MemoSpace& space,
                                        const MultiFunction& f,
                                        double cost) {
  PortableSolution out;
  out.outputs.reserve(f.outputs.size());
  for (const Bdd& g : f.outputs) {
    out.outputs.push_back(
        remap_vars(serialize_bdd(g), space.rank_of, MemoSpace::kUnranked));
  }
  out.cost = cost;
  return out;
}

MultiFunction import_portable_solution(BddManager& mgr,
                                       const MemoSpace& space,
                                       const PortableSolution& s) {
  MultiFunction f;
  f.outputs.reserve(s.outputs.size());
  for (const SerializedBdd& g : s.outputs) {
    // Inverse remap (rank → manager variable) is monotone too, so the
    // rebuilt function has the destination's canonical structure.
    f.outputs.push_back(mgr.deserialize_bdd(
        remap_vars(g, space.sorted_vars, MemoSpace::kUnranked)));
  }
  return f;
}

Bdd import_canonical_bdd(BddManager& mgr, const MemoSpace& space,
                         const SerializedBdd& s) {
  return mgr.deserialize_bdd(
      remap_vars(s, space.sorted_vars, MemoSpace::kUnranked));
}

void write_portable_solution(std::ostream& os, const PortableSolution& s) {
  // %.17g-precision cost so the round trip is bit-faithful for every
  // double a cost function can produce (cf. support_balance_cost's id).
  char cost_text[64];
  std::snprintf(cost_text, sizeof(cost_text), "%.17g", s.cost);
  os << ".cost " << cost_text << '\n';
  os << ".outputs " << s.outputs.size() << '\n';
  for (const SerializedBdd& g : s.outputs) {
    os << ".bdd " << g.nodes.size() << '\n';
    write_serialized_bdd(os, g);
  }
}

PortableSolution read_portable_solution(std::istream& in) {
  const auto fail = [](const char* what) {
    throw std::invalid_argument(std::string("read_portable_solution: ") +
                                what);
  };
  // Same sanity ceilings as relation_io's `.bdd` parser: a lying header
  // must fail loudly, never allocate unbounded memory.
  constexpr std::size_t kMaxOutputs = 1u << 16;
  constexpr std::size_t kMaxNodes = 1u << 28;
  std::string keyword;
  PortableSolution out;
  std::string cost_text;
  if (!(in >> keyword) || keyword != ".cost" || !(in >> cost_text)) {
    fail("malformed .cost line");
  }
  // strtod, not stream extraction: num_get refuses "inf"/"nan", and an
  // empty best-so-far (deadline-expired) solution carries cost = inf.
  char* cost_end = nullptr;
  out.cost = std::strtod(cost_text.c_str(), &cost_end);
  if (cost_end == cost_text.c_str() || *cost_end != '\0') {
    fail("malformed .cost value");
  }
  std::size_t output_count = 0;
  if (!(in >> keyword) || keyword != ".outputs" || !(in >> output_count)) {
    fail("malformed .outputs line");
  }
  if (output_count > kMaxOutputs) {
    fail(".outputs declares too many outputs");
  }
  out.outputs.reserve(std::min<std::size_t>(output_count, 1u << 8));
  std::string line;
  std::getline(in, line);  // consume the rest of the .outputs line
  for (std::size_t o = 0; o < output_count; ++o) {
    if (!std::getline(in, line)) {
      fail("truncated output list");
    }
    std::istringstream header(line);
    std::size_t node_count = 0;
    std::string extra;
    if (!(header >> keyword) || keyword != ".bdd" ||
        !(header >> node_count)) {
      fail("malformed .bdd line");
    }
    if (header >> extra) {
      fail("trailing tokens on .bdd line");
    }
    if (node_count > kMaxNodes) {
      fail(".bdd declares too many nodes");
    }
    out.outputs.push_back(read_serialized_bdd(in, node_count));
  }
  if (in >> keyword) {
    fail("trailing tokens after the last output");
  }
  return out;
}

namespace {

/// Three-way lexicographic compare of rank-form serialized BDDs.  The
/// serializer emits a deterministic traversal of the canonical DAG, so
/// equal functions compare equal and distinct functions compare stably
/// in either direction — exactly the properties canonically_before
/// needs; the specific order is otherwise arbitrary.
int compare_serialized(const SerializedBdd& a, const SerializedBdd& b) {
  if (a.nodes.size() != b.nodes.size()) {
    return a.nodes.size() < b.nodes.size() ? -1 : 1;
  }
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    const SerializedBdd::Node& x = a.nodes[i];
    const SerializedBdd::Node& y = b.nodes[i];
    if (x.var != y.var) {
      return x.var < y.var ? -1 : 1;
    }
    if (x.hi != y.hi) {
      return x.hi < y.hi ? -1 : 1;
    }
    if (x.lo != y.lo) {
      return x.lo < y.lo ? -1 : 1;
    }
  }
  if (a.root != b.root) {
    return a.root < b.root ? -1 : 1;
  }
  if (a.num_vars != b.num_vars) {
    return a.num_vars < b.num_vars ? -1 : 1;
  }
  return 0;
}

}  // namespace

bool canonically_before(const PortableSolution& a,
                        const PortableSolution& b) {
  if (a.outputs.size() != b.outputs.size()) {
    // Unreachable for same-relation candidates; ordered for totality.
    return a.outputs.size() < b.outputs.size();
  }
  for (std::size_t o = 0; o < a.outputs.size(); ++o) {
    if (const int c = compare_serialized(a.outputs[o], b.outputs[o]);
        c != 0) {
      return c < 0;
    }
  }
  return false;
}

}  // namespace brel
