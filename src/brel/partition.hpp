#pragma once
/// \file partition.hpp
/// Delta-localization pre-split for incremental re-solve traffic.
///
/// The Fig. 6 decomposition refines *output* constraints: Split(x, i)
/// removes (x, y_i)-pairs but every subrelation still covers the whole
/// input space, so a point edit (a flipped minterm at input vertex x*)
/// stays inside BOTH children of every split that does not land exactly
/// on x*.  Content-addressed subtree reuse (delta_context.hpp) therefore
/// only pays off when the search happens to split the edited vertex on a
/// base-aligned path — sound, but structurally rare for point edits.
///
/// This layer restores locality with a decomposition that IS position
/// stable: cofactor the relation on its first `q` input variables (a
/// fixed, canonical order — the relation's own input list), solve each
/// of the 2^q block relations independently with the ordinary engine,
/// and compose the result as f_o = OR_a cube(a) & f_{a,o}.  Input
/// cofactoring commutes with the edit: block a of the new relation
/// equals block a of the base relation whenever the change region's
/// cofactor at `a` is the zero BDD, so a k-minterm edit dirties at most
/// k blocks and every clean block is served by its base run's root memo
/// entry at zero exploration.  Both cold and warm solves of a
/// partitioned configuration use the same decomposition, so results
/// stay bit-identical to a cold solve of the same options.
///
/// The driver publishes NO entry for the full relation: block entries
/// are ordinary engine results, comparable with any run of the same
/// cost fingerprint, while a composed full-root entry would not be —
/// a non-partitioned solve of the same relation must never inherit it.
/// Identical re-solves stay near-free anyway: every block root-hits.

#include "brel/solver.hpp"
#include "relation/relation.hpp"

namespace brel {

/// Solve `r` by the input-cofactor decomposition described above.
/// Pre-conditions (the BrelSolver::solve dispatch enforces them):
/// `options.partition_inputs > 0`, `r.num_inputs() >= 2`, not exact
/// mode.  The effective block count is 2^min(partition_inputs,
/// num_inputs - 1).
[[nodiscard]] SolveResult solve_partitioned(const BooleanRelation& r,
                                            const SolverOptions& options);

}  // namespace brel
