#include "brel/solver.hpp"

#include "brel/parallel_engine.hpp"
#include "brel/partition.hpp"
#include "brel/search.hpp"

namespace brel {

BrelSolver::BrelSolver(SolverOptions options) : options_(std::move(options)) {}

SolveResult BrelSolver::solve(const BooleanRelation& r) const {
  if (options_.partition_inputs > 0 && !options_.exact &&
      r.num_inputs() >= 2) {
    return solve_partitioned(r, options_);
  }
  if (resolve_worker_count(options_.num_workers) > 1) {
    return ParallelEngine(r, options_).run();
  }
  return SearchEngine(r, options_).run();
}

}  // namespace brel
