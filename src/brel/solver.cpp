#include "brel/solver.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace brel {

namespace {

/// Derive the split vertex from the largest conflicting input cube
/// (Sec. 7.4): don't-care positions are assigned 1.
std::vector<bool> vertex_from_cube(const Cube& cube, std::size_t num_vars) {
  std::vector<bool> x(num_vars, true);
  for (std::size_t v = 0; v < cube.num_vars(); ++v) {
    if (cube.lit(v) == Lit::Zero) {
      x[v] = false;
    }
  }
  return x;
}

/// Outputs ordered by manager variable index (Sec. 7.4: "following the
/// variable order in the BDD manager").
std::vector<std::size_t> outputs_in_var_order(const BooleanRelation& rel) {
  std::vector<std::size_t> order(rel.num_outputs());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return rel.outputs()[a] < rel.outputs()[b];
  });
  return order;
}

}  // namespace

BrelSolver::BrelSolver(SolverOptions options) : options_(std::move(options)) {}

SolveResult BrelSolver::solve(const BooleanRelation& r) const {
  const auto start = std::chrono::steady_clock::now();
  if (!r.is_well_defined()) {
    throw std::invalid_argument("BrelSolver: relation is not well defined");
  }
  BddManager& mgr = r.manager();
  const CostFunction cost = options_.cost ? options_.cost : sum_of_bdd_sizes();

  SolverStats stats;
  const auto timed_out = [&]() {
    return options_.timeout.count() > 0 &&
           std::chrono::steady_clock::now() - start >= options_.timeout;
  };

  // Step 0 (Sec. 7.2): QuickSolver guarantees at least one solution.
  // Its cost does NOT seed the branch-and-bound bound: Fig. 6 starts the
  // recursion with an infinite-cost BestF, and the quick fallbacks serve
  // only as a safety net.  (Seeding the bound with the quick cost would
  // prune the root whenever the MISF candidate merely ties it, silencing
  // the whole exploration.)
  MultiFunction best = quick_solve(r, options_.minimizer);
  ++stats.quick_solutions;
  ++stats.solutions_seen;
  double best_cost = cost(best);
  double bound_cost = std::numeric_limits<double>::infinity();

  struct Item {
    BooleanRelation rel;
    std::size_t depth;
  };
  std::deque<Item> fifo;
  fifo.push_back(Item{r, 0});

  std::optional<SymmetryCache> symmetries;
  if (options_.use_symmetry) {
    symmetries.emplace(mgr, r.outputs(), options_.symmetry_second_order);
    (void)symmetries->seen_before_or_insert(r.characteristic());
  }

  while (!fifo.empty()) {
    if (!options_.exact &&
        stats.relations_explored >= options_.max_relations) {
      stats.budget_exhausted = true;
      break;
    }
    if (timed_out()) {
      stats.budget_exhausted = true;
      break;
    }
    mgr.garbage_collect_if_needed();

    const Item item = fifo.front();
    fifo.pop_front();
    const BooleanRelation& rel = item.rel;
    ++stats.relations_explored;

    // Terminal case (Fig. 6 lines 1-3): a functional relation *is* its
    // unique solution.
    if (rel.is_function()) {
      MultiFunction f = rel.extract_function();
      ++stats.solutions_seen;
      const double c = cost(f);
      bound_cost = std::min(bound_cost, c);
      if (c < best_cost) {
        best = std::move(f);
        best_cost = c;
      }
      continue;
    }

    // Lines 4-5: minimize the MISF over-approximation output by output.
    MultiFunction candidate;
    candidate.outputs.reserve(rel.num_outputs());
    for (std::size_t i = 0; i < rel.num_outputs(); ++i) {
      candidate.outputs.push_back(
          options_.minimizer.minimize(rel.project_output(i)));
      ++stats.misf_minimizations;
    }
    const double candidate_cost = cost(candidate);

    // Line 6: bound.  Constraining the relation further cannot beat a
    // cheaper solution already obtained with more flexibility.  The bound
    // is maintained from *explored* candidates only (see step 0); it is
    // heuristic when the ISF minimizer is (like ours) not exact, so exact
    // mode skips it.
    if (!options_.exact && candidate_cost >= bound_cost) {
      ++stats.pruned_by_cost;
      continue;
    }

    const Bdd incomp = rel.incompatibilities(candidate);
    std::vector<bool> x;
    std::optional<std::size_t> split_output;
    if (incomp.is_zero()) {
      // Lines 7-8: compatible solution.
      ++stats.solutions_seen;
      bound_cost = std::min(bound_cost, candidate_cost);
      if (candidate_cost < best_cost) {
        best = candidate;
        best_cost = candidate_cost;
      }
      if (!options_.exact) {
        continue;
      }
      // Exact mode: the branch may still hide cheaper functions; keep
      // splitting on any remaining flexibility until leaves are reached.
      for (const std::size_t i : outputs_in_var_order(rel)) {
        const Isf isf = rel.project_output(i);
        if (!isf.dc().is_zero()) {
          x = mgr.pick_minterm(isf.dc());
          split_output = i;
          break;
        }
      }
      if (!split_output.has_value()) {
        continue;  // fully constrained in every output: nothing below
      }
    } else {
      // Lines 9-10: select the split point from the conflicts (Sec. 7.4):
      // largest cube of the input projection of Incomp, don't-cares set
      // to 1, first output (in variable order) with both values possible.
      ++stats.conflicts;
      const Bdd conflict_inputs = mgr.exists(incomp, rel.outputs());
      const Cube cube = mgr.shortest_cube(conflict_inputs);
      x = vertex_from_cube(cube, mgr.num_vars());
      for (const std::size_t i : outputs_in_var_order(rel)) {
        if (rel.can_split(x, i)) {
          split_output = i;
          break;
        }
      }
      if (!split_output.has_value()) {
        // Impossible for a genuine conflict vertex (see Sec. 6.3): its
        // image has >= 2 vertices, so some output admits both values.
        throw std::logic_error("BrelSolver: no splittable output at conflict");
      }
    }

    // Lines 11-12 under partial BFS (Sec. 7.2): children enter a bounded
    // FIFO; each one is quick-solved immediately so a solution from this
    // branch survives even if the child is never popped.
    ++stats.splits;
    auto [r0, r1] = rel.split(x, *split_output);
    for (BooleanRelation& child : {std::ref(r0), std::ref(r1)}) {
      if (symmetries.has_value() && item.depth < options_.symmetry_depth &&
          symmetries->seen_before_or_insert(child.characteristic())) {
        ++stats.pruned_by_symmetry;
        continue;
      }
      MultiFunction q = quick_solve(child, options_.minimizer);
      ++stats.quick_solutions;
      ++stats.solutions_seen;
      const double qc = cost(q);
      if (qc < best_cost) {
        best = std::move(q);
        best_cost = qc;
      }
      if (fifo.size() < options_.fifo_capacity) {
        if (options_.order == ExplorationOrder::BreadthFirst) {
          fifo.push_back(Item{std::move(child), item.depth + 1});
        } else {
          fifo.push_front(Item{std::move(child), item.depth + 1});
        }
      } else {
        ++stats.fifo_overflow;
      }
    }
  }

  stats.runtime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  SolveResult result;
  result.function = std::move(best);
  result.cost = best_cost;
  result.stats = stats;
  return result;
}

}  // namespace brel
