#include "brel/solver.hpp"

#include "brel/search.hpp"

namespace brel {

BrelSolver::BrelSolver(SolverOptions options) : options_(std::move(options)) {}

SolveResult BrelSolver::solve(const BooleanRelation& r) const {
  return SearchEngine(r, options_).run();
}

}  // namespace brel
