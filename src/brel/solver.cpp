#include "brel/solver.hpp"

#include "brel/parallel_engine.hpp"
#include "brel/search.hpp"

namespace brel {

BrelSolver::BrelSolver(SolverOptions options) : options_(std::move(options)) {}

SolveResult BrelSolver::solve(const BooleanRelation& r) const {
  if (resolve_worker_count(options_.num_workers) > 1) {
    return ParallelEngine(r, options_).run();
  }
  return SearchEngine(r, options_).run();
}

}  // namespace brel
