#include "cover/cube.hpp"

#include <ostream>
#include <stdexcept>

namespace brel {

Cube Cube::parse(std::string_view text) {
  Cube cube(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    switch (text[i]) {
      case '0':
        cube.lits_[i] = Lit::Zero;
        break;
      case '1':
        cube.lits_[i] = Lit::One;
        break;
      case '-':
      case '*':
        cube.lits_[i] = Lit::DontCare;
        break;
      default:
        throw std::invalid_argument("Cube::parse: invalid character");
    }
  }
  return cube;
}

std::size_t Cube::literal_count() const noexcept {
  std::size_t count = 0;
  for (Lit lit : lits_) {
    if (lit != Lit::DontCare) {
      ++count;
    }
  }
  return count;
}

bool Cube::is_universal() const noexcept {
  for (Lit lit : lits_) {
    if (lit != Lit::DontCare) {
      return false;
    }
  }
  return true;
}

bool Cube::contains_point(const std::vector<bool>& point) const {
  if (point.size() != lits_.size()) {
    throw std::invalid_argument("Cube::contains_point: dimension mismatch");
  }
  for (std::size_t i = 0; i < lits_.size(); ++i) {
    if (lits_[i] == Lit::DontCare) {
      continue;
    }
    if ((lits_[i] == Lit::One) != point[i]) {
      return false;
    }
  }
  return true;
}

bool Cube::contains_cube(const Cube& other) const {
  if (other.lits_.size() != lits_.size()) {
    throw std::invalid_argument("Cube::contains_cube: dimension mismatch");
  }
  for (std::size_t i = 0; i < lits_.size(); ++i) {
    if (lits_[i] == Lit::DontCare) {
      continue;
    }
    if (other.lits_[i] != lits_[i]) {
      return false;
    }
  }
  return true;
}

bool Cube::intersects(const Cube& other) const {
  if (other.lits_.size() != lits_.size()) {
    throw std::invalid_argument("Cube::intersects: dimension mismatch");
  }
  for (std::size_t i = 0; i < lits_.size(); ++i) {
    const bool clash = (lits_[i] == Lit::Zero && other.lits_[i] == Lit::One) ||
                       (lits_[i] == Lit::One && other.lits_[i] == Lit::Zero);
    if (clash) {
      return false;
    }
  }
  return true;
}

Cube Cube::supercube_with(const Cube& other) const {
  if (other.lits_.size() != lits_.size()) {
    throw std::invalid_argument("Cube::supercube_with: dimension mismatch");
  }
  Cube result(lits_.size());
  for (std::size_t i = 0; i < lits_.size(); ++i) {
    result.lits_[i] = (lits_[i] == other.lits_[i]) ? lits_[i] : Lit::DontCare;
  }
  return result;
}

double Cube::minterm_count() const noexcept {
  double count = 1.0;
  for (Lit lit : lits_) {
    if (lit == Lit::DontCare) {
      count *= 2.0;
    }
  }
  return count;
}

std::string Cube::to_string() const {
  std::string text;
  text.reserve(lits_.size());
  for (Lit lit : lits_) {
    text.push_back(lit == Lit::Zero ? '0' : (lit == Lit::One ? '1' : '-'));
  }
  return text;
}

std::ostream& operator<<(std::ostream& os, const Cube& cube) {
  return os << cube.to_string();
}

}  // namespace brel
