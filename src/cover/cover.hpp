#pragma once
/// \file cover.hpp
/// Sum-of-product covers: disjunctions of cubes over a fixed variable set.
///
/// Covers carry the two cost metrics the paper reports in Tables 1 and 2:
/// the number of cubes (CB) and the number of literals (LIT) of a
/// sum-of-products representation.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "cover/cube.hpp"

namespace brel {

/// A disjunction (sum) of cubes over `num_vars` variables.
class Cover {
 public:
  Cover() = default;

  /// Empty cover (constant 0) over `num_vars` variables.
  explicit Cover(std::size_t num_vars) : num_vars_(num_vars) {}

  /// Cover made of the given cubes; all must span `num_vars` variables.
  Cover(std::size_t num_vars, std::vector<Cube> cubes);

  /// Parse from one positional-cube string per line, e.g. {"1-0", "01-"}.
  static Cover parse(std::size_t num_vars,
                     const std::vector<std::string>& cube_texts);

  [[nodiscard]] std::size_t num_vars() const noexcept { return num_vars_; }
  [[nodiscard]] std::size_t cube_count() const noexcept {
    return cubes_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return cubes_.empty(); }

  [[nodiscard]] const std::vector<Cube>& cubes() const noexcept {
    return cubes_;
  }
  [[nodiscard]] std::vector<Cube>& cubes() noexcept { return cubes_; }

  void add_cube(Cube cube);

  /// Total number of literals over all cubes (the LIT metric).
  [[nodiscard]] std::size_t literal_count() const noexcept;

  /// True iff the minterm `point` is covered by some cube.
  [[nodiscard]] bool contains_point(const std::vector<bool>& point) const;

  /// Drop cubes that are contained in another cube of the cover
  /// (single-cube containment only; not a full irredundancy pass).
  void remove_contained_cubes();

  /// One cube per line in positional notation.
  [[nodiscard]] std::string to_string() const;

 private:
  std::size_t num_vars_ = 0;
  std::vector<Cube> cubes_;
};

std::ostream& operator<<(std::ostream& os, const Cover& cover);

}  // namespace brel
