#pragma once
/// \file cube.hpp
/// Three-valued cubes (products of literals) over a fixed variable set.
///
/// A cube assigns each variable one of {0, 1, -} where '-' means the
/// variable does not appear in the product.  Cubes are the building block
/// of SOP covers (cover.hpp) and of the ISOP covers produced by the BDD
/// package (Minato-Morreale, bdd_isop.cpp).

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace brel {

/// Value of one variable inside a cube.
enum class Lit : std::uint8_t {
  Zero = 0,      ///< complemented literal (variable = 0)
  One = 1,       ///< positive literal (variable = 1)
  DontCare = 2,  ///< variable absent from the product
};

/// A product of literals over `num_vars` variables, e.g. "1-0" = x0 & !x2.
class Cube {
 public:
  Cube() = default;

  /// Universal cube (all don't-cares) over `num_vars` variables.
  explicit Cube(std::size_t num_vars) : lits_(num_vars, Lit::DontCare) {}

  /// Parse from positional notation, e.g. "1-0".  Throws on bad characters.
  static Cube parse(std::string_view text);

  [[nodiscard]] std::size_t num_vars() const noexcept { return lits_.size(); }

  [[nodiscard]] Lit lit(std::size_t var) const { return lits_.at(var); }
  void set_lit(std::size_t var, Lit value) { lits_.at(var) = value; }

  /// Number of non-don't-care literals in the product.
  [[nodiscard]] std::size_t literal_count() const noexcept;

  /// True iff every variable is a don't-care (the constant-1 product).
  [[nodiscard]] bool is_universal() const noexcept;

  /// True iff the minterm `point` (point[i] = value of variable i)
  /// satisfies this product.
  [[nodiscard]] bool contains_point(const std::vector<bool>& point) const;

  /// True iff every minterm of `other` is also a minterm of this cube
  /// (i.e. this is a superset / `other` implies this).
  [[nodiscard]] bool contains_cube(const Cube& other) const;

  /// True iff the two products share at least one minterm.
  [[nodiscard]] bool intersects(const Cube& other) const;

  /// Smallest cube containing both products.
  [[nodiscard]] Cube supercube_with(const Cube& other) const;

  /// Number of minterms of the product (2^(#don't-cares)).
  [[nodiscard]] double minterm_count() const noexcept;

  /// Positional notation, e.g. "1-0".
  [[nodiscard]] std::string to_string() const;

  bool operator==(const Cube&) const = default;

 private:
  std::vector<Lit> lits_;
};

std::ostream& operator<<(std::ostream& os, const Cube& cube);

}  // namespace brel
