#include "cover/cover.hpp"

#include <ostream>
#include <stdexcept>

namespace brel {

Cover::Cover(std::size_t num_vars, std::vector<Cube> cubes)
    : num_vars_(num_vars), cubes_(std::move(cubes)) {
  for (const Cube& cube : cubes_) {
    if (cube.num_vars() != num_vars_) {
      throw std::invalid_argument("Cover: cube dimension mismatch");
    }
  }
}

Cover Cover::parse(std::size_t num_vars,
                   const std::vector<std::string>& cube_texts) {
  Cover cover(num_vars);
  for (const std::string& text : cube_texts) {
    cover.add_cube(Cube::parse(text));
  }
  return cover;
}

void Cover::add_cube(Cube cube) {
  if (cube.num_vars() != num_vars_) {
    throw std::invalid_argument("Cover::add_cube: cube dimension mismatch");
  }
  cubes_.push_back(std::move(cube));
}

std::size_t Cover::literal_count() const noexcept {
  std::size_t count = 0;
  for (const Cube& cube : cubes_) {
    count += cube.literal_count();
  }
  return count;
}

bool Cover::contains_point(const std::vector<bool>& point) const {
  for (const Cube& cube : cubes_) {
    if (cube.contains_point(point)) {
      return true;
    }
  }
  return false;
}

void Cover::remove_contained_cubes() {
  std::vector<Cube> kept;
  kept.reserve(cubes_.size());
  for (std::size_t i = 0; i < cubes_.size(); ++i) {
    bool contained = false;
    for (std::size_t j = 0; j < cubes_.size() && !contained; ++j) {
      if (i == j) {
        continue;
      }
      // Break ties (equal cubes) by index so exactly one copy survives.
      if (cubes_[j].contains_cube(cubes_[i]) &&
          (cubes_[i] != cubes_[j] || j < i)) {
        contained = true;
      }
    }
    if (!contained) {
      kept.push_back(cubes_[i]);
    }
  }
  cubes_ = std::move(kept);
}

std::string Cover::to_string() const {
  std::string text;
  for (const Cube& cube : cubes_) {
    text += cube.to_string();
    text.push_back('\n');
  }
  return text;
}

std::ostream& operator<<(std::ostream& os, const Cover& cover) {
  return os << cover.to_string();
}

}  // namespace brel
