#include "relation/relation_io.hpp"

#include <algorithm>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "bdd/bdd_transfer.hpp"

namespace brel {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::invalid_argument("relation_io: line " + std::to_string(line) +
                              ": " + message);
}

/// Sanity ceiling for `.i`/`.o` declarations.  Beyond protecting the
/// uint32 cast in add_vars from wrapping (a `.i 4294967297` must not
/// silently allocate one variable), it keeps a hostile header from
/// driving a giant allocation before any body validation runs.
constexpr std::size_t kMaxDeclaredVars = std::size_t{1} << 20;

/// Sanity ceiling for `.bdd N` node counts — same spirit: a node list
/// bigger than this cannot be legitimate input, so fail it up front
/// instead of looping on the stream.
constexpr std::size_t kMaxDeclaredNodes = std::size_t{1} << 28;

/// Parse `count` variable ranks for a `.iv` / `.ov` directive.
std::vector<std::uint32_t> parse_ranks(std::istringstream& tokens,
                                       std::size_t count, std::size_t total,
                                       std::size_t line_number,
                                       const char* directive) {
  std::vector<std::uint32_t> ranks;
  std::uint32_t rank = 0;
  while (tokens >> rank) {
    if (rank >= total) {
      fail(line_number, std::string(directive) + " rank out of range");
    }
    ranks.push_back(rank);
  }
  if (ranks.size() != count) {
    fail(line_number, std::string(directive) + " rank count mismatch");
  }
  return ranks;
}

}  // namespace

BooleanRelation read_relation(BddManager& mgr, const std::string& text,
                              const std::vector<std::uint32_t>* order_hint) {
  std::istringstream in(text);
  return read_relation(mgr, in, order_hint);
}

BooleanRelation read_relation(BddManager& mgr, std::istream& in,
                              const std::vector<std::uint32_t>* order_hint) {
  std::size_t num_inputs = 0;
  std::size_t num_outputs = 0;
  bool saw_inputs = false;
  bool saw_outputs = false;
  bool in_rows = false;
  bool saw_end = false;

  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> outputs;
  Bdd chi;

  // State of the compact `.bdd` body (mutually exclusive with `.r` rows).
  std::optional<SerializedBdd> serialized;
  std::vector<std::uint32_t> input_ranks;
  std::vector<std::uint32_t> output_ranks;
  std::vector<std::uint32_t> order_ranks;  // `.order` sidecar (optional)

  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Strip comments and whitespace-only lines.
    if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream tokens(line);
    std::string head;
    if (!(tokens >> head)) {
      continue;
    }
    if (saw_end) {
      fail(line_number, "content after .e");
    }
    if (head == ".i") {
      if (saw_inputs || !(tokens >> num_inputs) || num_inputs == 0) {
        fail(line_number, "bad or duplicate .i");
      }
      if (num_inputs > kMaxDeclaredVars) {
        fail(line_number, ".i declares too many variables");
      }
      saw_inputs = true;
    } else if (head == ".o") {
      if (saw_outputs || !(tokens >> num_outputs) || num_outputs == 0) {
        fail(line_number, "bad or duplicate .o");
      }
      if (num_outputs > kMaxDeclaredVars) {
        fail(line_number, ".o declares too many variables");
      }
      saw_outputs = true;
    } else if (head == ".iv" || head == ".ov") {
      const bool is_input = head == ".iv";
      if (!saw_inputs || !saw_outputs || in_rows ||
          serialized.has_value()) {
        fail(line_number, head + " requires .i and .o, before the body");
      }
      auto& ranks = is_input ? input_ranks : output_ranks;
      if (!ranks.empty()) {
        fail(line_number, "duplicate " + head);
      }
      ranks = parse_ranks(tokens, is_input ? num_inputs : num_outputs,
                          num_inputs + num_outputs, line_number,
                          head.c_str());
    } else if (head == ".order") {
      if (!saw_inputs || !saw_outputs || in_rows ||
          serialized.has_value()) {
        fail(line_number, ".order requires .i and .o, before the body");
      }
      if (!order_ranks.empty()) {
        fail(line_number, "duplicate .order");
      }
      const std::size_t total = num_inputs + num_outputs;
      order_ranks =
          parse_ranks(tokens, total, total, line_number, ".order");
      std::vector<bool> seen(total, false);
      for (const std::uint32_t rank : order_ranks) {
        if (seen[rank]) {
          fail(line_number, ".order repeats a rank");
        }
        seen[rank] = true;
      }
    } else if (head == ".bdd") {
      std::size_t node_count = 0;
      if (!saw_inputs || !saw_outputs || in_rows ||
          serialized.has_value() || !(tokens >> node_count)) {
        fail(line_number, "bad .bdd (requires .i and .o, no .r body)");
      }
      if (node_count > kMaxDeclaredNodes) {
        fail(line_number, ".bdd declares too many nodes");
      }
      try {
        serialized = read_serialized_bdd(in, node_count);
      } catch (const std::invalid_argument& error) {
        fail(line_number, error.what());
      }
      line_number += node_count + 1;  // node lines + .root
      if (serialized->num_vars > num_inputs + num_outputs) {
        fail(line_number, ".bdd references ranks beyond .i + .o");
      }
    } else if (head == ".r") {
      if (!saw_inputs || !saw_outputs || in_rows ||
          serialized.has_value()) {
        fail(line_number, ".r requires .i and .o first");
      }
      if (!input_ranks.empty() || !output_ranks.empty() ||
          !order_ranks.empty()) {
        // Ranks only apply to the compact body; silently dropping them
        // would hand back a differently-wired relation.
        fail(line_number, ".iv/.ov/.order require a .bdd body, not .r rows");
      }
      in_rows = true;
      const std::uint32_t first =
          mgr.add_vars(static_cast<std::uint32_t>(num_inputs + num_outputs));
      for (std::size_t i = 0; i < num_inputs; ++i) {
        inputs.push_back(first + static_cast<std::uint32_t>(i));
      }
      for (std::size_t i = 0; i < num_outputs; ++i) {
        outputs.push_back(first + static_cast<std::uint32_t>(num_inputs + i));
      }
      chi = mgr.zero();
    } else if (head == ".e") {
      if (!in_rows && !serialized.has_value()) {
        fail(line_number, ".e before .r or .bdd");
      }
      saw_end = true;
    } else {
      if (!in_rows) {
        fail(line_number, "row before .r");
      }
      if (head.size() != num_inputs) {
        fail(line_number, "input cube width mismatch");
      }
      Cube input_cube(0);
      try {
        input_cube = Cube::parse(head);
      } catch (const std::invalid_argument&) {
        fail(line_number, "bad input cube '" + head + "'");
      }
      const Bdd region = mgr.cube_bdd(input_cube, inputs);
      Bdd image = mgr.zero();
      std::string token;
      std::size_t count = 0;
      while (tokens >> token) {
        if (token.size() != num_outputs) {
          fail(line_number, "output cube width mismatch");
        }
        try {
          image = image | mgr.cube_bdd(Cube::parse(token), outputs);
        } catch (const std::invalid_argument&) {
          fail(line_number, "bad output cube '" + token + "'");
        }
        ++count;
      }
      if (count == 0) {
        fail(line_number, "row without output cubes");
      }
      chi = chi | (region & image);
    }
  }
  if (!saw_end) {
    fail(line_number, "missing .e");
  }
  if (serialized.has_value()) {
    // Compact body: allocate the variable block and shift every rank by
    // its base, which preserves relative (and hence canonical) order.
    const std::size_t total = num_inputs + num_outputs;
    if (input_ranks.empty()) {
      for (std::size_t i = 0; i < num_inputs; ++i) {
        input_ranks.push_back(static_cast<std::uint32_t>(i));
      }
    }
    if (output_ranks.empty()) {
      for (std::size_t i = 0; i < num_outputs; ++i) {
        output_ranks.push_back(static_cast<std::uint32_t>(num_inputs + i));
      }
    }
    std::vector<bool> claimed(total, false);
    for (const std::vector<std::uint32_t>* ranks :
         {&input_ranks, &output_ranks}) {
      for (const std::uint32_t rank : *ranks) {
        if (claimed[rank]) {
          fail(line_number, "overlapping or repeated .iv/.ov ranks");
        }
        claimed[rank] = true;
      }
    }
    const std::uint32_t base =
        mgr.add_vars(static_cast<std::uint32_t>(total));
    if (order_ranks.empty() && order_hint != nullptr &&
        order_hint->size() == total) {
      // No explicit `.order` in the text: fall back to the caller's
      // remembered order (the warm-slot path).  A hint of the wrong
      // width is a different-shaped relation — ignore, don't fail.
      order_ranks = *order_hint;
      std::vector<bool> seen(total, false);
      for (const std::uint32_t rank : order_ranks) {
        if (rank >= total || seen[rank]) {
          order_ranks.clear();  // malformed hint: parse as if absent
          break;
        }
        seen[rank] = true;
      }
    }
    if (!order_ranks.empty()) {
      // Install the writer's order on the still-empty fresh block before
      // any BDD of the request is built (see relation_io.hpp).
      try {
        mgr.seed_block_order(base, order_ranks);
      } catch (const std::invalid_argument& error) {
        fail(line_number, error.what());
      }
    }
    for (const std::uint32_t rank : input_ranks) {
      inputs.push_back(base + rank);
    }
    for (const std::uint32_t rank : output_ranks) {
      outputs.push_back(base + rank);
    }
    try {
      chi = mgr.deserialize_bdd(*serialized, base);
    } catch (const std::invalid_argument& error) {
      fail(line_number, error.what());
    }
  }
  return BooleanRelation(mgr, std::move(inputs), std::move(outputs),
                         std::move(chi));
}

std::string write_relation_bdd(const BooleanRelation& r) {
  // Rank = position in the ascending manager order of the relation's
  // variables; the monotone var -> rank remap keeps the node list a valid
  // ordered BDD for any reader that allocates a fresh contiguous block.
  std::vector<std::uint32_t> vars;
  vars.reserve(r.num_inputs() + r.num_outputs());
  vars.insert(vars.end(), r.inputs().begin(), r.inputs().end());
  vars.insert(vars.end(), r.outputs().begin(), r.outputs().end());
  std::sort(vars.begin(), vars.end());
  constexpr std::uint32_t kUnranked = 0xFFFFFFFFu;
  std::vector<std::uint32_t> rank_of(r.manager().num_vars(), kUnranked);
  for (std::size_t rank = 0; rank < vars.size(); ++rank) {
    rank_of[vars[rank]] = static_cast<std::uint32_t>(rank);
  }
  SerializedBdd s = r.manager().serialize_bdd(r.characteristic());
  for (SerializedBdd::Node& node : s.nodes) {
    if (rank_of[node.var] == kUnranked) {
      throw std::logic_error(
          "write_relation_bdd: characteristic depends on a variable "
          "outside the relation's inputs and outputs");
    }
    node.var = rank_of[node.var];
  }

  std::ostringstream os;
  os << ".i " << r.num_inputs() << "\n.o " << r.num_outputs() << '\n';
  const auto write_ranks = [&](const char* directive,
                               const std::vector<std::uint32_t>& list) {
    os << directive;
    for (const std::uint32_t v : list) {
      os << ' ' << rank_of[v];
    }
    os << '\n';
  };
  write_ranks(".iv", r.inputs());
  write_ranks(".ov", r.outputs());
  // `.order` sidecar: the manager's relative order over the relation's
  // block, emitted only when it deviates from the identity so that
  // never-reordered managers keep producing byte-identical output.
  const std::vector<std::uint32_t> order = relation_block_order(r);
  if (!order.empty()) {
    os << ".order";
    for (const std::uint32_t rank : order) {
      os << ' ' << rank;
    }
    os << '\n';
  }
  os << ".bdd " << s.nodes.size() << '\n';
  write_serialized_bdd(os, s);
  os << ".e\n";
  return os.str();
}

std::vector<std::uint32_t> relation_block_order(const BooleanRelation& r) {
  std::vector<std::uint32_t> vars;
  vars.reserve(r.num_inputs() + r.num_outputs());
  vars.insert(vars.end(), r.inputs().begin(), r.inputs().end());
  vars.insert(vars.end(), r.outputs().begin(), r.outputs().end());
  std::sort(vars.begin(), vars.end());
  std::vector<std::uint32_t> by_level(vars);
  std::sort(by_level.begin(), by_level.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return r.manager().level_of_var(a) <
                     r.manager().level_of_var(b);
            });
  if (by_level == vars) {
    return {};  // identity order: no sidecar, no seed
  }
  // rank = position in ascending manager order (the `vars` list).
  std::vector<std::uint32_t> order;
  order.reserve(by_level.size());
  for (const std::uint32_t v : by_level) {
    const auto it = std::lower_bound(vars.begin(), vars.end(), v);
    order.push_back(static_cast<std::uint32_t>(it - vars.begin()));
  }
  return order;
}

std::optional<RelationSignature> peek_relation_signature(
    const std::string& text) {
  std::istringstream in(text);
  std::size_t num_inputs = 0;
  std::size_t num_outputs = 0;
  RelationSignature sig;
  std::string line;
  while (std::getline(in, line)) {
    if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream tokens(line);
    std::string head;
    if (!(tokens >> head)) {
      continue;
    }
    if (head == ".i") {
      if (!(tokens >> num_inputs) || num_inputs == 0 ||
          num_inputs > kMaxDeclaredVars) {
        return std::nullopt;
      }
    } else if (head == ".o") {
      if (!(tokens >> num_outputs) || num_outputs == 0 ||
          num_outputs > kMaxDeclaredVars) {
        return std::nullopt;
      }
    } else if (head == ".iv" || head == ".ov") {
      auto& ranks = head == ".iv" ? sig.input_ranks : sig.output_ranks;
      std::uint32_t rank = 0;
      while (tokens >> rank) {
        ranks.push_back(rank);
      }
    } else if (head == ".bdd" || head == ".r" || head == ".e") {
      break;  // the header ends where the body starts
    }
  }
  if (num_inputs == 0 || num_outputs == 0) {
    return std::nullopt;
  }
  if (sig.input_ranks.empty()) {
    for (std::size_t i = 0; i < num_inputs; ++i) {
      sig.input_ranks.push_back(static_cast<std::uint32_t>(i));
    }
  } else if (sig.input_ranks.size() != num_inputs) {
    return std::nullopt;
  }
  if (sig.output_ranks.empty()) {
    for (std::size_t i = 0; i < num_outputs; ++i) {
      sig.output_ranks.push_back(
          static_cast<std::uint32_t>(num_inputs + i));
    }
  } else if (sig.output_ranks.size() != num_outputs) {
    return std::nullopt;
  }
  return sig;
}

std::string write_relation(const BooleanRelation& r) {
  if (r.num_inputs() > 16) {
    throw std::logic_error("write_relation: too many inputs to enumerate");
  }
  std::ostringstream os;
  os << ".i " << r.num_inputs() << "\n.o " << r.num_outputs() << "\n.r\n";
  const std::size_t n = r.num_inputs();
  std::vector<bool> x(r.manager().num_vars(), false);
  for (std::uint64_t code = 0; code < (std::uint64_t{1} << n); ++code) {
    for (std::size_t i = 0; i < n; ++i) {
      x[r.inputs()[i]] = ((code >> i) & 1u) != 0;
    }
    const std::set<std::uint64_t> image = r.image_of(x);
    if (image.empty()) {
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      os << (x[r.inputs()[i]] ? '1' : '0');
    }
    for (const std::uint64_t y : image) {
      os << ' ';
      for (std::size_t i = 0; i < r.num_outputs(); ++i) {
        os << (((y >> i) & 1u) != 0 ? '1' : '0');
      }
    }
    os << "\n";
  }
  os << ".e\n";
  return os.str();
}

}  // namespace brel
