#include "relation/relation_io.hpp"

#include <sstream>
#include <stdexcept>

namespace brel {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::invalid_argument("relation_io: line " + std::to_string(line) +
                              ": " + message);
}

}  // namespace

BooleanRelation read_relation(BddManager& mgr, const std::string& text) {
  std::istringstream in(text);
  return read_relation(mgr, in);
}

BooleanRelation read_relation(BddManager& mgr, std::istream& in) {
  std::size_t num_inputs = 0;
  std::size_t num_outputs = 0;
  bool saw_inputs = false;
  bool saw_outputs = false;
  bool in_rows = false;
  bool saw_end = false;

  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> outputs;
  Bdd chi;

  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Strip comments and whitespace-only lines.
    if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream tokens(line);
    std::string head;
    if (!(tokens >> head)) {
      continue;
    }
    if (saw_end) {
      fail(line_number, "content after .e");
    }
    if (head == ".i") {
      if (saw_inputs || !(tokens >> num_inputs) || num_inputs == 0) {
        fail(line_number, "bad or duplicate .i");
      }
      saw_inputs = true;
    } else if (head == ".o") {
      if (saw_outputs || !(tokens >> num_outputs) || num_outputs == 0) {
        fail(line_number, "bad or duplicate .o");
      }
      saw_outputs = true;
    } else if (head == ".r") {
      if (!saw_inputs || !saw_outputs || in_rows) {
        fail(line_number, ".r requires .i and .o first");
      }
      in_rows = true;
      const std::uint32_t first =
          mgr.add_vars(static_cast<std::uint32_t>(num_inputs + num_outputs));
      for (std::size_t i = 0; i < num_inputs; ++i) {
        inputs.push_back(first + static_cast<std::uint32_t>(i));
      }
      for (std::size_t i = 0; i < num_outputs; ++i) {
        outputs.push_back(first + static_cast<std::uint32_t>(num_inputs + i));
      }
      chi = mgr.zero();
    } else if (head == ".e") {
      if (!in_rows) {
        fail(line_number, ".e before .r");
      }
      saw_end = true;
    } else {
      if (!in_rows) {
        fail(line_number, "row before .r");
      }
      if (head.size() != num_inputs) {
        fail(line_number, "input cube width mismatch");
      }
      Cube input_cube(0);
      try {
        input_cube = Cube::parse(head);
      } catch (const std::invalid_argument&) {
        fail(line_number, "bad input cube '" + head + "'");
      }
      const Bdd region = mgr.cube_bdd(input_cube, inputs);
      Bdd image = mgr.zero();
      std::string token;
      std::size_t count = 0;
      while (tokens >> token) {
        if (token.size() != num_outputs) {
          fail(line_number, "output cube width mismatch");
        }
        try {
          image = image | mgr.cube_bdd(Cube::parse(token), outputs);
        } catch (const std::invalid_argument&) {
          fail(line_number, "bad output cube '" + token + "'");
        }
        ++count;
      }
      if (count == 0) {
        fail(line_number, "row without output cubes");
      }
      chi = chi | (region & image);
    }
  }
  if (!saw_end) {
    fail(line_number, "missing .e");
  }
  return BooleanRelation(mgr, std::move(inputs), std::move(outputs),
                         std::move(chi));
}

std::string write_relation(const BooleanRelation& r) {
  if (r.num_inputs() > 16) {
    throw std::logic_error("write_relation: too many inputs to enumerate");
  }
  std::ostringstream os;
  os << ".i " << r.num_inputs() << "\n.o " << r.num_outputs() << "\n.r\n";
  const std::size_t n = r.num_inputs();
  std::vector<bool> x(r.manager().num_vars(), false);
  for (std::uint64_t code = 0; code < (std::uint64_t{1} << n); ++code) {
    for (std::size_t i = 0; i < n; ++i) {
      x[r.inputs()[i]] = ((code >> i) & 1u) != 0;
    }
    const std::set<std::uint64_t> image = r.image_of(x);
    if (image.empty()) {
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      os << (x[r.inputs()[i]] ? '1' : '0');
    }
    for (const std::uint64_t y : image) {
      os << ' ';
      for (std::size_t i = 0; i < r.num_outputs(); ++i) {
        os << (((y >> i) & 1u) != 0 ? '1' : '0');
      }
    }
    os << "\n";
  }
  os << ".e\n";
  return os.str();
}

}  // namespace brel
