#include "relation/enumeration.hpp"

#include <stdexcept>
#include <vector>

namespace brel {

namespace {

struct VertexChoices {
  std::vector<bool> input;                 // full manager-wide assignment
  std::vector<std::uint64_t> output_codes; // allowed output vertices
};

/// Collect, for each input vertex, the list of allowed output codes.
std::vector<VertexChoices> collect_choices(const BooleanRelation& r) {
  const std::size_t n = r.num_inputs();
  if (n > 16 || r.num_outputs() > 16) {
    throw std::logic_error(
        "enumerate_compatible_functions: relation too large");
  }
  std::vector<VertexChoices> choices;
  choices.reserve(std::size_t{1} << n);
  std::vector<bool> x(r.manager().num_vars(), false);
  for (std::uint64_t code = 0; code < (std::uint64_t{1} << n); ++code) {
    for (std::size_t i = 0; i < n; ++i) {
      x[r.inputs()[i]] = ((code >> i) & 1u) != 0;
    }
    VertexChoices vc;
    vc.input = x;
    for (const std::uint64_t y : r.image_of(x)) {
      vc.output_codes.push_back(y);
    }
    choices.push_back(std::move(vc));
  }
  return choices;
}

}  // namespace

double count_compatible_functions(const BooleanRelation& r) {
  double count = 1.0;
  for (const VertexChoices& vc : collect_choices(r)) {
    count *= static_cast<double>(vc.output_codes.size());
  }
  return count;
}

std::uint64_t enumerate_compatible_functions(
    const BooleanRelation& r,
    const std::function<bool(const MultiFunction&)>& visit,
    std::uint64_t max_functions) {
  if (!r.is_well_defined()) {
    return 0;  // IF(R) is empty (Def. 4.9)
  }
  const std::vector<VertexChoices> choices = collect_choices(r);
  const double total = count_compatible_functions(r);
  if (total > static_cast<double>(max_functions)) {
    throw std::logic_error(
        "enumerate_compatible_functions: |IF(R)| exceeds max_functions");
  }
  BddManager& mgr = r.manager();
  const std::size_t m = r.num_outputs();

  // Odometer over the choice lists; build the m output BDDs per function.
  std::vector<std::size_t> index(choices.size(), 0);
  std::uint64_t visited = 0;
  while (true) {
    MultiFunction f;
    f.outputs.assign(m, mgr.zero());
    for (std::size_t v = 0; v < choices.size(); ++v) {
      const std::uint64_t y = choices[v].output_codes[index[v]];
      Bdd minterm = mgr.one();
      for (const std::uint32_t var : r.inputs()) {
        minterm = minterm & mgr.literal(var, choices[v].input[var]);
      }
      for (std::size_t o = 0; o < m; ++o) {
        if (((y >> o) & 1u) != 0) {
          f.outputs[o] = f.outputs[o] | minterm;
        }
      }
    }
    ++visited;
    if (!visit(f)) {
      return visited;
    }
    // Advance the odometer.
    std::size_t pos = 0;
    while (pos < choices.size()) {
      if (++index[pos] < choices[pos].output_codes.size()) {
        break;
      }
      index[pos] = 0;
      ++pos;
    }
    if (pos == choices.size()) {
      return visited;
    }
  }
}

ExactOptimum exact_optimum(
    const BooleanRelation& r,
    const std::function<double(const MultiFunction&)>& cost,
    std::uint64_t max_functions) {
  if (!r.is_well_defined()) {
    throw std::logic_error("exact_optimum: relation is not well defined");
  }
  ExactOptimum best;
  best.explored = enumerate_compatible_functions(
      r,
      [&](const MultiFunction& f) {
        const double c = cost(f);
        if (c < best.cost) {
          best.cost = c;
          best.function = f;
        }
        return true;
      },
      max_functions);
  return best;
}

}  // namespace brel
