#include "relation/isf.hpp"

#include <stdexcept>

namespace brel {

Isf::Isf(Bdd on, Bdd dc) : on_(std::move(on)), dc_(std::move(dc)) {
  if (on_.is_null() || dc_.is_null() || on_.manager() != dc_.manager()) {
    throw std::invalid_argument("Isf: ON/DC must share a manager");
  }
  if (!(on_ & dc_).is_zero()) {
    throw std::invalid_argument("Isf: ON and DC sets must be disjoint");
  }
  off_ = !(on_ | dc_);
}

bool Isf::contains(const Bdd& f) const {
  return on_.subset_of(f) && f.subset_of(max());
}

bool Isf::can_eliminate_var(std::uint32_t var) const {
  BddManager& mgr = *on_.manager();
  const std::vector<std::uint32_t> vars{var};
  const Bdd new_min = mgr.exists(on_, vars);
  const Bdd new_max = mgr.forall(max(), vars);
  return new_min.subset_of(new_max);
}

Isf Isf::eliminate_var(std::uint32_t var) const {
  BddManager& mgr = *on_.manager();
  const std::vector<std::uint32_t> vars{var};
  const Bdd new_min = mgr.exists(on_, vars);
  const Bdd new_max = mgr.forall(max(), vars);
  if (!new_min.subset_of(new_max)) {
    throw std::logic_error("Isf::eliminate_var: variable is essential");
  }
  return Isf(new_min, new_max & !new_min);
}

}  // namespace brel
