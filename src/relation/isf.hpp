#pragma once
/// \file isf.hpp
/// Incompletely specified functions (Def. 4.4): an interval of Boolean
/// functions given by ON / DC / OFF sets over the input variables.

#include <cstdint>

#include "bdd/bdd.hpp"

namespace brel {

/// An ISF f : B^n -> {0, 1, -}.  Invariants: the three sets are pairwise
/// disjoint and jointly cover the full input space (OFF is derived).
class Isf {
 public:
  /// Build from ON and DC sets; OFF = !(ON | DC).  Throws if ON ∧ DC != 0.
  Isf(Bdd on, Bdd dc);

  /// The ISF that fixes exactly the function `f` (empty DC).
  static Isf exact(const Bdd& f) { return Isf(f, f.manager()->zero()); }

  [[nodiscard]] const Bdd& on() const noexcept { return on_; }
  [[nodiscard]] const Bdd& dc() const noexcept { return dc_; }
  [[nodiscard]] const Bdd& off() const noexcept { return off_; }

  /// Interval bounds: every implementation f satisfies min <= f <= max.
  [[nodiscard]] const Bdd& min() const noexcept { return on_; }
  [[nodiscard]] Bdd max() const { return on_ | dc_; }

  /// True iff `f` is an implementation of this ISF (ON ⊆ f ⊆ ON ∪ DC).
  [[nodiscard]] bool contains(const Bdd& f) const;

  /// True iff the interval pins down a single function (DC empty).
  [[nodiscard]] bool is_completely_specified() const { return dc_.is_zero(); }

  /// Existentially/universally abstract `var` from the interval bounds,
  /// i.e. the tightened ISF [∃var ON, ∀var (ON ∪ DC)].  The result is a
  /// valid ISF iff `var` is non-essential (Sec. 7.5); check with
  /// can_eliminate_var first.
  [[nodiscard]] Isf eliminate_var(std::uint32_t var) const;

  /// A variable is non-essential iff the interval [∃var min, ∀var max]
  /// is non-empty, i.e. ∃var ON ⊆ ∀var (ON ∪ DC).
  [[nodiscard]] bool can_eliminate_var(std::uint32_t var) const;

 private:
  Bdd on_;
  Bdd dc_;
  Bdd off_;
};

}  // namespace brel
