#pragma once
/// \file enumeration.hpp
/// Exhaustive enumeration of the compatible functions IF(R) of a small
/// relation (Def. 4.9).  Used by tests and by the exact-optimality checks:
/// BREL's exact mode must match the enumerated optimum.
///
/// Complexity is the product over input vertices of |R(x)|, so this is
/// only for relations with a handful of inputs/outputs.

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>

#include "relation/relation.hpp"

namespace brel {

/// Calls `visit` once for every multi-output function compatible with `r`
/// (every element of IF(R)).  Returns the number of functions visited.
/// If `visit` returns false the enumeration stops early.
///
/// Throws std::logic_error when the relation is not well defined (IF(R) is
/// empty then — the callback is never invoked and 0 is returned instead)
/// or when the enumeration would exceed `max_functions`.
std::uint64_t enumerate_compatible_functions(
    const BooleanRelation& r,
    const std::function<bool(const MultiFunction&)>& visit,
    std::uint64_t max_functions = 1u << 22);

/// The number |IF(R)| of compatible functions without visiting them:
/// the product over input vertices of the image sizes.
[[nodiscard]] double count_compatible_functions(const BooleanRelation& r);

/// Result of an exhaustive search over IF(R).
struct ExactOptimum {
  MultiFunction function;
  double cost = std::numeric_limits<double>::infinity();
  std::uint64_t explored = 0;  ///< functions enumerated
};

/// The true optimal solution of `r` under `cost` by brute force.
/// Throws if `r` is not well defined.
[[nodiscard]] ExactOptimum exact_optimum(
    const BooleanRelation& r,
    const std::function<double(const MultiFunction&)>& cost,
    std::uint64_t max_functions = 1u << 22);

}  // namespace brel
