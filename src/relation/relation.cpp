#include "relation/relation.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace brel {

namespace {

/// Minterm BDD for a full assignment restricted to `vars`.
Bdd vertex_bdd(BddManager& mgr, const std::vector<std::uint32_t>& vars,
               const std::vector<bool>& assignment) {
  Bdd acc = mgr.one();
  for (const std::uint32_t v : vars) {
    acc = acc & mgr.literal(v, assignment.at(v));
  }
  return acc;
}

}  // namespace

BooleanRelation::BooleanRelation(BddManager& mgr,
                                 std::vector<std::uint32_t> inputs,
                                 std::vector<std::uint32_t> outputs,
                                 Bdd characteristic)
    : mgr_(&mgr),
      inputs_(std::move(inputs)),
      outputs_(std::move(outputs)),
      chi_(std::move(characteristic)) {
  if (chi_.is_null() || chi_.manager() != mgr_) {
    throw std::invalid_argument(
        "BooleanRelation: characteristic from a different manager");
  }
  std::vector<std::uint32_t> all = inputs_;
  all.insert(all.end(), outputs_.begin(), outputs_.end());
  std::sort(all.begin(), all.end());
  if (std::adjacent_find(all.begin(), all.end()) != all.end()) {
    throw std::invalid_argument(
        "BooleanRelation: input/output variables must be distinct");
  }
  for (const std::uint32_t v : all) {
    if (v >= mgr_->num_vars()) {
      throw std::out_of_range("BooleanRelation: unknown variable");
    }
  }
}

BooleanRelation BooleanRelation::full(BddManager& mgr,
                                      std::vector<std::uint32_t> inputs,
                                      std::vector<std::uint32_t> outputs) {
  return BooleanRelation(mgr, std::move(inputs), std::move(outputs),
                         mgr.one());
}

BooleanRelation BooleanRelation::from_table(
    BddManager& mgr, std::vector<std::uint32_t> inputs,
    std::vector<std::uint32_t> outputs,
    const std::vector<std::pair<std::string, std::vector<std::string>>>&
        rows) {
  Bdd chi = mgr.zero();
  for (const auto& [input_text, output_texts] : rows) {
    const Cube input_cube = Cube::parse(input_text);
    if (input_cube.num_vars() != inputs.size()) {
      throw std::invalid_argument("from_table: input vertex width mismatch");
    }
    const Bdd x = mgr.cube_bdd(input_cube, inputs);
    Bdd image = mgr.zero();
    for (const std::string& output_text : output_texts) {
      const Cube output_cube = Cube::parse(output_text);
      if (output_cube.num_vars() != outputs.size()) {
        throw std::invalid_argument(
            "from_table: output vertex width mismatch");
      }
      image = image | mgr.cube_bdd(output_cube, outputs);
    }
    chi = chi | (x & image);
  }
  return BooleanRelation(mgr, std::move(inputs), std::move(outputs),
                         std::move(chi));
}

bool BooleanRelation::operator==(const BooleanRelation& other) const {
  return mgr_ == other.mgr_ && inputs_ == other.inputs_ &&
         outputs_ == other.outputs_ && chi_ == other.chi_;
}

namespace {

void require_same_spaces(const BooleanRelation& a, const BooleanRelation& b,
                         const char* op) {
  if (&a.manager() != &b.manager() || a.inputs() != b.inputs() ||
      a.outputs() != b.outputs()) {
    throw std::invalid_argument(std::string(op) +
                                ": relations over different spaces");
  }
}

}  // namespace

BooleanRelation BooleanRelation::intersect_with(
    const BooleanRelation& other) const {
  require_same_spaces(*this, other, "intersect_with");
  return BooleanRelation(*mgr_, inputs_, outputs_,
                         chi_ & other.chi_);
}

BooleanRelation BooleanRelation::union_with(
    const BooleanRelation& other) const {
  require_same_spaces(*this, other, "union_with");
  return BooleanRelation(*mgr_, inputs_, outputs_,
                         chi_ | other.chi_);
}

bool BooleanRelation::subset_of(const BooleanRelation& other) const {
  require_same_spaces(*this, other, "subset_of");
  return chi_.subset_of(other.chi_);
}

bool BooleanRelation::is_well_defined() const {
  return input_domain().is_one();
}

Bdd BooleanRelation::input_domain() const {
  return mgr_->exists(chi_, outputs_);
}

bool BooleanRelation::is_function() const {
  if (!is_well_defined()) {
    return false;
  }
  const std::uint32_t total =
      static_cast<std::uint32_t>(inputs_.size() + outputs_.size());
  double expected = 1.0;
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    expected *= 2.0;
  }
  return mgr_->sat_count(chi_, total) == expected;
}

MultiFunction BooleanRelation::extract_function() const {
  if (!is_function()) {
    throw std::logic_error("extract_function: relation is not a function");
  }
  MultiFunction f;
  f.outputs.reserve(outputs_.size());
  for (const std::uint32_t y : outputs_) {
    f.outputs.push_back(mgr_->exists(chi_ & mgr_->var(y), outputs_));
  }
  return f;
}

Isf BooleanRelation::project_output(std::size_t output_index) const {
  const std::uint32_t y = outputs_.at(output_index);
  std::vector<std::uint32_t> others;
  for (const std::uint32_t v : outputs_) {
    if (v != y) {
      others.push_back(v);
    }
  }
  const Bdd projection = mgr_->exists(chi_, others);  // P(X, y_i)
  // Single-variable cofactors: the dedicated kernel, not the generalized
  // constrain over a literal (identical result, far cheaper recursion).
  const Bdd allows_one = mgr_->cofactor(projection, y, true);
  const Bdd allows_zero = mgr_->cofactor(projection, y, false);
  // ON: only 1 allowed; OFF: only 0 allowed; DC: both.
  return Isf(allows_one & !allows_zero, allows_one & allows_zero);
}

BooleanRelation BooleanRelation::misf() const {
  Bdd chi = mgr_->one();
  for (std::size_t i = 0; i < outputs_.size(); ++i) {
    const Isf isf = project_output(i);
    const Bdd y = mgr_->var(outputs_[i]);
    // F_yi as a relation (Def. 4.8): y=1 allowed on ON ∪ DC, y=0 on OFF ∪ DC.
    chi = chi &
          ((y & (isf.on() | isf.dc())) | ((!y) & (isf.off() | isf.dc())));
  }
  return BooleanRelation(*mgr_, inputs_, outputs_, std::move(chi));
}

bool BooleanRelation::is_misf() const { return chi_ == misf().chi_; }

Bdd BooleanRelation::function_characteristic(const MultiFunction& f) const {
  if (f.outputs.size() != outputs_.size()) {
    throw std::invalid_argument(
        "function_characteristic: output count mismatch");
  }
  Bdd chi = mgr_->one();
  for (std::size_t i = 0; i < outputs_.size(); ++i) {
    chi = chi & mgr_->var(outputs_[i]).iff(f.outputs[i]);
  }
  return chi;
}

bool BooleanRelation::is_compatible(const MultiFunction& f) const {
  return incompatibilities(f).is_zero();
}

Bdd BooleanRelation::incompatibilities(const MultiFunction& f) const {
  return function_characteristic(f) & !chi_;
}

bool BooleanRelation::can_split(const std::vector<bool>& x,
                                std::size_t output_index) const {
  // Theorem 5.2: (R ↓ y_i)(x) = {0, 1}.
  const Isf isf = project_output(output_index);
  return isf.dc().eval(x);
}

std::pair<Bdd, Bdd> BooleanRelation::split_removals(
    const std::vector<bool>& x, std::size_t output_index) const {
  const Bdd vertex = vertex_bdd(*mgr_, inputs_, x);
  const Bdd y = mgr_->var(outputs_.at(output_index));
  return {vertex & y, vertex & !y};
}

std::pair<BooleanRelation, BooleanRelation> BooleanRelation::split(
    const std::vector<bool>& x, std::size_t output_index) const {
  const auto [removed0, removed1] = split_removals(x, output_index);
  BooleanRelation r0(*mgr_, inputs_, outputs_, chi_ & !removed0);
  BooleanRelation r1(*mgr_, inputs_, outputs_, chi_ & !removed1);
  return {std::move(r0), std::move(r1)};
}

BooleanRelation BooleanRelation::constrain_with(const Bdd& constraint) const {
  return BooleanRelation(*mgr_, inputs_, outputs_, chi_ & constraint);
}

BooleanRelation BooleanRelation::totalized() const {
  const Bdd domain = input_domain();
  return BooleanRelation(*mgr_, inputs_, outputs_, chi_ | !domain);
}

std::set<std::uint64_t> BooleanRelation::image_of(
    const std::vector<bool>& x) const {
  if (outputs_.size() > 20) {
    throw std::logic_error("image_of: too many outputs to enumerate");
  }
  const Bdd vertex = vertex_bdd(*mgr_, inputs_, x);
  // Cofactor the relation at x, then enumerate output minterms.
  const Bdd image = mgr_->constrain(chi_, vertex);
  std::vector<std::uint32_t> sorted_outputs = outputs_;
  std::sort(sorted_outputs.begin(), sorted_outputs.end());
  std::set<std::uint64_t> result;
  mgr_->foreach_minterm(image, sorted_outputs,
                        [&](const std::vector<bool>& point) {
                          std::uint64_t code = 0;
                          for (std::size_t i = 0; i < outputs_.size(); ++i) {
                            if (point[outputs_[i]]) {
                              code |= (std::uint64_t{1} << i);
                            }
                          }
                          result.insert(code);
                        });
  return result;
}

std::string BooleanRelation::to_table() const {
  if (inputs_.size() > 16) {
    throw std::logic_error("to_table: too many inputs to enumerate");
  }
  std::ostringstream os;
  const std::size_t n = inputs_.size();
  std::vector<bool> x(mgr_->num_vars(), false);
  for (std::uint64_t code = 0; code < (std::uint64_t{1} << n); ++code) {
    for (std::size_t i = 0; i < n; ++i) {
      x[inputs_[i]] = ((code >> i) & 1u) != 0;
    }
    for (std::size_t i = 0; i < n; ++i) {
      os << (x[inputs_[i]] ? '1' : '0');
    }
    os << " : {";
    bool first = true;
    for (const std::uint64_t y : image_of(x)) {
      if (!first) {
        os << ", ";
      }
      first = false;
      for (std::size_t i = 0; i < outputs_.size(); ++i) {
        os << (((y >> i) & 1u) != 0 ? '1' : '0');
      }
    }
    os << "}\n";
  }
  return os.str();
}

}  // namespace brel
