#pragma once
/// \file relation.hpp
/// Boolean relations (Def. 4.6) represented by BDD characteristic functions
/// (Def. 6.1), plus the operations the BREL paradigm is built from:
/// projection (Def. 5.1), MISF covering (Def. 5.2), compatibility checking
/// (Def. 5.3) and the Split operation (Def. 5.4).

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bdd/bdd.hpp"
#include "relation/isf.hpp"

namespace brel {

/// A multiple-output Boolean function F : B^n -> B^m given as one BDD per
/// output, each over the relation's input variables.
struct MultiFunction {
  std::vector<Bdd> outputs;

  [[nodiscard]] std::size_t num_outputs() const noexcept {
    return outputs.size();
  }
};

/// A Boolean relation R ⊆ B^n × B^m with a named split of manager
/// variables into inputs X and outputs Y.  Immutable value type: all
/// operations return new relations sharing the same manager.
class BooleanRelation {
 public:
  /// Wrap a characteristic function.  `inputs`/`outputs` are manager
  /// variable indices; they must be disjoint.
  BooleanRelation(BddManager& mgr, std::vector<std::uint32_t> inputs,
                  std::vector<std::uint32_t> outputs, Bdd characteristic);

  /// The complete relation B^n × B^m.
  static BooleanRelation full(BddManager& mgr,
                              std::vector<std::uint32_t> inputs,
                              std::vector<std::uint32_t> outputs);

  /// Build from a table mapping input-vertex strings to sets of allowed
  /// output-vertex strings, e.g. {{"10", {"00", "11"}}, ...} — the notation
  /// used throughout the paper's examples.  Vertices may use '-' as a
  /// shorthand for both values (a cube of vertices).  Unlisted input
  /// vertices get an empty image (the relation is then not well defined).
  static BooleanRelation from_table(
      BddManager& mgr, std::vector<std::uint32_t> inputs,
      std::vector<std::uint32_t> outputs,
      const std::vector<std::pair<std::string, std::vector<std::string>>>&
          rows);

  [[nodiscard]] BddManager& manager() const noexcept { return *mgr_; }
  [[nodiscard]] const Bdd& characteristic() const noexcept { return chi_; }
  [[nodiscard]] const std::vector<std::uint32_t>& inputs() const noexcept {
    return inputs_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& outputs() const noexcept {
    return outputs_;
  }
  [[nodiscard]] std::size_t num_inputs() const noexcept {
    return inputs_.size();
  }
  [[nodiscard]] std::size_t num_outputs() const noexcept {
    return outputs_.size();
  }

  /// Same input/output spaces and characteristic function.
  [[nodiscard]] bool operator==(const BooleanRelation& other) const;

  /// Lattice meet/join of Property 5.1: the set of relations over fixed
  /// input/output spaces forms a lattice under ⊆ with union and
  /// intersection.  Both operands must share spaces and manager.
  [[nodiscard]] BooleanRelation intersect_with(
      const BooleanRelation& other) const;
  [[nodiscard]] BooleanRelation union_with(
      const BooleanRelation& other) const;

  /// Containment in the lattice order (this ⊆ other).
  [[nodiscard]] bool subset_of(const BooleanRelation& other) const;

  /// Left-total (Def. 4.6): every input vertex has at least one output.
  [[nodiscard]] bool is_well_defined() const;

  /// ∃Y R — the set of input vertices with a non-empty image.
  [[nodiscard]] Bdd input_domain() const;

  /// Functional: every input vertex has exactly one output vertex.
  [[nodiscard]] bool is_function() const;

  /// For a functional relation, the unique compatible multi-output
  /// function F with F_i = ∃Y (R ∧ y_i).  Throws if not a function.
  [[nodiscard]] MultiFunction extract_function() const;

  /// Projection R↓y_i (Def. 5.1) interpreted as an ISF over the inputs:
  /// ON = vertices forced to 1, OFF = forced to 0, DC = both allowed.
  [[nodiscard]] Isf project_output(std::size_t output_index) const;

  /// MISF_R (Def. 5.2): the smallest MISF covering R, as a relation.
  /// R ⊆ misf() always holds (Property 5.2); equality iff R is an MISF.
  [[nodiscard]] BooleanRelation misf() const;

  /// True iff this relation is exactly expressible per-output don't cares
  /// (i.e. R == misf()).
  [[nodiscard]] bool is_misf() const;

  /// Characteristic function ∧_i (y_i ≡ F_i) of a multi-output function.
  [[nodiscard]] Bdd function_characteristic(const MultiFunction& f) const;

  /// Compatibility (Def. 5.3): F ⊆ R as sets of (input, output) pairs.
  [[nodiscard]] bool is_compatible(const MultiFunction& f) const;

  /// Incomp(F, R) = F \ R — the (x, y) pairs where F violates R.
  [[nodiscard]] Bdd incompatibilities(const MultiFunction& f) const;

  /// Split (Def. 5.4) on input vertex `x` (a minterm over the inputs,
  /// given as a full assignment of manager variables) and output y_i.
  /// first  = R minus (x, y_i = 1)  [forces y_i(x) = 0],
  /// second = R minus (x, y_i = 0)  [forces y_i(x) = 1].
  [[nodiscard]] std::pair<BooleanRelation, BooleanRelation> split(
      const std::vector<bool>& x, std::size_t output_index) const;

  /// Theorem 5.2 guard: both halves of split(x, i) are well defined and
  /// strictly smaller iff (R↓y_i)(x) = {0, 1}.
  [[nodiscard]] bool can_split(const std::vector<bool>& x,
                               std::size_t output_index) const;

  /// The two pair regions split(x, i) subtracts: {(x, y_i = 1),
  /// (x, y_i = 0)} as BDDs — first is removed from `first`, second from
  /// `second`.  Exposed so a caller tracking a second function through
  /// the decomposition (the incremental delta cofactor) can apply the
  /// identical constraints: (A xor B) & c == (A & c) xor (B & c), so
  /// constraining a root-level XOR by every split on a path yields the
  /// XOR of the two subproblems at that path.
  [[nodiscard]] std::pair<Bdd, Bdd> split_removals(
      const std::vector<bool>& x, std::size_t output_index) const;

  /// New relation with the same spaces but characteristic chi ∧ constraint.
  [[nodiscard]] BooleanRelation constrain_with(const Bdd& constraint) const;

  /// Make the relation left-total by allowing every output on inputs
  /// outside the current domain (the standard totalization).
  [[nodiscard]] BooleanRelation totalized() const;

  /// The image R(x) as a set of output vertices (LSB = outputs()[0]).
  /// Testing helper; enumerates up to 2^m vertices.
  [[nodiscard]] std::set<std::uint64_t> image_of(
      const std::vector<bool>& x) const;

  /// Tabular dump "x : {y1, y2}" per input vertex, for debugging and for
  /// matching the paper's examples.  Enumerates 2^n rows.
  [[nodiscard]] std::string to_table() const;

 private:
  BddManager* mgr_;
  std::vector<std::uint32_t> inputs_;
  std::vector<std::uint32_t> outputs_;
  Bdd chi_;
};

}  // namespace brel
