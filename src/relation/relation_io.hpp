#pragma once
/// \file relation_io.hpp
/// A plain-text exchange format for Boolean relations, in the spirit of
/// the .br files used by the historical BR minimizers (gyocro, Herb):
///
///   # comment
///   .i 2            number of input variables
///   .o 2            number of output variables
///   .r              start of the rows
///   10 00 11        input vertex/cube, then the allowed output cubes
///   11 1-
///   .e              end marker
///
/// Rows accumulate by union: an input cube may appear several times, and
/// '-' is allowed on both sides.  Input vertices that never appear have an
/// empty image (the relation is then not well defined; callers can use
/// BooleanRelation::totalized()).

#include <iosfwd>
#include <string>

#include "relation/relation.hpp"

namespace brel {

/// Parse a relation from `text`, allocating fresh variables in `mgr`.
/// Throws std::invalid_argument with a line number on malformed input.
[[nodiscard]] BooleanRelation read_relation(BddManager& mgr,
                                            const std::string& text);

/// Parse from a stream (same format).
[[nodiscard]] BooleanRelation read_relation(BddManager& mgr,
                                            std::istream& in);

/// Serialize by enumerating input vertices (requires <= 16 inputs).  The
/// output parses back to an equal relation.
[[nodiscard]] std::string write_relation(const BooleanRelation& r);

}  // namespace brel
