#pragma once
/// \file relation_io.hpp
/// A plain-text exchange format for Boolean relations, in the spirit of
/// the .br files used by the historical BR minimizers (gyocro, Herb):
///
///   # comment
///   .i 2            number of input variables
///   .o 2            number of output variables
///   .r              start of the rows
///   10 00 11        input vertex/cube, then the allowed output cubes
///   11 1-
///   .e              end marker
///
/// Rows accumulate by union: an input cube may appear several times, and
/// '-' is allowed on both sides.  Input vertices that never appear have an
/// empty image (the relation is then not well defined; callers can use
/// BooleanRelation::totalized()).
///
/// A second, compact body is accepted in place of the `.r` rows: the
/// characteristic BDD in the serialized transfer form (bdd_transfer.hpp),
/// linear in the BDD instead of exponential in the inputs:
///
///   .i 2
///   .o 2
///   .iv 0 1         variable ranks of the inputs  (optional; default 0..n-1)
///   .ov 2 3         variable ranks of the outputs (optional; default n..n+m-1)
///   .bdd 3          node count; then one "var hi lo" line per node,
///   3 0 1             children before parents, ids implicit (0 = the ONE
///   2 6 1             terminal), edge = id*2 + complement-bit, var = rank
///   1 4 6
///   .root 6
///   .e
///
/// Ranks index the relation's variables in manager order, so a reader
/// allocates n+m fresh variables and shifts every rank by the base index —
/// relative order (and hence canonical BDD structure) is preserved.  No
/// comments are allowed between `.bdd` and `.root`.
///
/// An optional `.order` sidecar line (compact body only, before `.bdd`)
/// carries the writing manager's variable order over the relation's
/// block — the ranks top-to-bottom by level:
///
///   .order 2 0 3 1  the rank at each level of the block (a permutation
///                   of 0..n+m-1; omitted when the order is the identity)
///
/// The `.bdd` body itself is order-independent (serialization is
/// canonical from any order), so `.order` changes no function — it lets
/// a reader seed its fresh block with the writer's known-good order
/// (BddManager::seed_block_order) instead of re-discovering it by
/// sifting.  write_relation_bdd emits it exactly when the source
/// manager's relative order over the relation's variables is not the
/// identity, keeping identity-order outputs byte-identical to PR 5.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "relation/relation.hpp"

namespace brel {

/// Parse a relation from `text`, allocating fresh variables in `mgr`.
/// Throws std::invalid_argument with a line number on malformed input.
///
/// `order_hint` (optional) is a caller-remembered block order in the
/// `.order` grammar — the rank at each level, a permutation of
/// 0..n+m-1.  It seeds the fresh block exactly as an `.order` sidecar
/// would, but only for a compact `.bdd` body that carries NO explicit
/// `.order` of its own (the text always wins) and only when its size
/// matches the relation's width; otherwise it is ignored.  This is the
/// warm-slot path: a pool slot re-serving a same-shaped request seeds
/// the order its previous solve sifted into instead of re-discovering
/// it (see solver_pool.hpp).
[[nodiscard]] BooleanRelation read_relation(
    BddManager& mgr, const std::string& text,
    const std::vector<std::uint32_t>* order_hint = nullptr);

/// Parse from a stream (same format).
[[nodiscard]] BooleanRelation read_relation(
    BddManager& mgr, std::istream& in,
    const std::vector<std::uint32_t>* order_hint = nullptr);

/// The input/output rank spaces a relation text declares, recoverable
/// from the header alone (no manager, no BDD work): `.iv`/`.ov` when
/// present, the positional defaults otherwise.  For a relation parsed
/// from this text, the lists equal MemoSpace::input_ranks/output_ranks
/// — the signature per-slot state (order memory, delta bases) is keyed
/// by.  nullopt when the header is malformed or incomplete (the parse
/// proper will fail with a diagnostic; peeking never throws).
struct RelationSignature {
  std::vector<std::uint32_t> input_ranks;
  std::vector<std::uint32_t> output_ranks;
};
[[nodiscard]] std::optional<RelationSignature> peek_relation_signature(
    const std::string& text);

/// The manager's variable order over `r`'s block, as the `.order`
/// grammar encodes it: the rank at each level, top to bottom.  Empty
/// when the relative order is the identity (matching when
/// write_relation_bdd omits the sidecar).
[[nodiscard]] std::vector<std::uint32_t> relation_block_order(
    const BooleanRelation& r);

/// Serialize by enumerating input vertices (requires <= 16 inputs).  The
/// output parses back to an equal relation.
[[nodiscard]] std::string write_relation(const BooleanRelation& r);

/// Serialize through the characteristic BDD (the `.bdd` compact body):
/// linear in the BDD, no input-count limit.  The output parses back —
/// through either read_relation overload — to an equal relation.
[[nodiscard]] std::string write_relation_bdd(const BooleanRelation& r);

}  // namespace brel
