#pragma once
/// \file factor.hpp
/// Algebraic factoring of SOP covers ("quick factor").
///
/// Substitute for the SIS `algebraic` script used in Tables 2 and 3 (see
/// DESIGN.md substitution 4): repeatedly divide the cover by its most
/// frequent literal, producing a factored form whose literal count is the
/// multilevel-quality metric (the ALG column of Table 2).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cover/cover.hpp"

namespace brel {

/// A node of a factored form.  Leaves are literals or constants; internal
/// nodes are n-ary conjunctions/disjunctions.
struct FactorTree {
  enum class Kind { ConstZero, ConstOne, Literal, And, Or };

  Kind kind = Kind::ConstZero;
  std::uint32_t var = 0;     ///< Literal only
  bool positive = true;      ///< Literal only
  std::vector<FactorTree> children;  ///< And/Or only

  /// Number of literal leaves (the factored-form literal count).
  [[nodiscard]] std::size_t literal_count() const;

  /// Human-readable infix form, e.g. "x0 (x1 + !x2) + x3".
  [[nodiscard]] std::string to_string(
      const std::vector<std::string>& names = {}) const;

  /// Evaluate under a complete assignment (index = variable).
  [[nodiscard]] bool eval(const std::vector<bool>& point) const;
};

/// Quick-factor `cover` (variables are the cover's positional variables).
[[nodiscard]] FactorTree algebraic_factor(const Cover& cover);

}  // namespace brel
