#include "synth/gate_network.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace brel {

GateNetwork GateNetwork::map(const std::vector<FactorTree>& outputs) {
  GateNetwork network;
  for (const FactorTree& tree : outputs) {
    network.outputs_.push_back(network.map_tree(tree));
  }
  return network;
}

std::int32_t GateNetwork::add_gate(Gate gate) {
  gates_.push_back(gate);
  return static_cast<std::int32_t>(gates_.size() - 1);
}

std::int32_t GateNetwork::input_gate(std::uint32_t var) {
  if (var >= input_cache_.size()) {
    input_cache_.resize(var + 1, -1);
  }
  if (input_cache_[var] < 0) {
    Gate gate;
    gate.kind = Gate::Kind::Input;
    gate.input_var = var;
    gate.depth = 0.0;
    input_cache_[var] = add_gate(gate);
  }
  return input_cache_[var];
}

std::int32_t GateNetwork::reduce_balanced(std::vector<std::int32_t> operands,
                                          Gate::Kind kind) {
  if (operands.empty()) {
    throw std::logic_error("reduce_balanced: no operands");
  }
  // Pair the two shallowest operands first (delay-optimal merging, the
  // speed_up-style balancing).
  while (operands.size() > 1) {
    std::sort(operands.begin(), operands.end(),
              [&](std::int32_t a, std::int32_t b) {
                return gates_[static_cast<std::size_t>(a)].depth >
                       gates_[static_cast<std::size_t>(b)].depth;
              });
    const std::int32_t a = operands.back();
    operands.pop_back();
    const std::int32_t b = operands.back();
    operands.pop_back();
    Gate gate;
    gate.kind = kind;
    gate.fanin0 = a;
    gate.fanin1 = b;
    gate.depth = std::max(gates_[static_cast<std::size_t>(a)].depth,
                          gates_[static_cast<std::size_t>(b)].depth) +
                 1.0;
    operands.push_back(add_gate(gate));
  }
  return operands.front();
}

std::int32_t GateNetwork::map_tree(const FactorTree& tree) {
  switch (tree.kind) {
    case FactorTree::Kind::ConstZero: {
      Gate gate;
      gate.kind = Gate::Kind::ConstZero;
      return add_gate(gate);
    }
    case FactorTree::Kind::ConstOne: {
      Gate gate;
      gate.kind = Gate::Kind::ConstOne;
      return add_gate(gate);
    }
    case FactorTree::Kind::Literal: {
      const std::int32_t in = input_gate(tree.var);
      if (tree.positive) {
        return in;
      }
      Gate inv;
      inv.kind = Gate::Kind::Inv;
      inv.fanin0 = in;
      inv.depth = gates_[static_cast<std::size_t>(in)].depth;
      return add_gate(inv);
    }
    case FactorTree::Kind::And:
    case FactorTree::Kind::Or: {
      std::vector<std::int32_t> operands;
      operands.reserve(tree.children.size());
      for (const FactorTree& child : tree.children) {
        operands.push_back(map_tree(child));
      }
      return reduce_balanced(std::move(operands),
                             tree.kind == FactorTree::Kind::And
                                 ? Gate::Kind::And2
                                 : Gate::Kind::Or2);
    }
  }
  throw std::logic_error("map_tree: unknown node kind");
}

double GateNetwork::area() const noexcept {
  double total = 0.0;
  for (const Gate& gate : gates_) {
    switch (gate.kind) {
      case Gate::Kind::And2:
      case Gate::Kind::Or2:
        total += 2.0;
        break;
      case Gate::Kind::Inv:
        total += 1.0;
        break;
      default:
        break;
    }
  }
  return total;
}

double GateNetwork::depth() const noexcept {
  double worst = 0.0;
  for (const std::int32_t out : outputs_) {
    if (out >= 0) {
      worst = std::max(worst, gates_[static_cast<std::size_t>(out)].depth);
    }
  }
  return worst;
}

bool GateNetwork::eval(std::size_t index,
                       const std::vector<bool>& point) const {
  std::vector<char> value(gates_.size(), 0);
  for (std::size_t g = 0; g < gates_.size(); ++g) {
    const Gate& gate = gates_[g];
    switch (gate.kind) {
      case Gate::Kind::Input:
        value[g] = point.at(gate.input_var) ? 1 : 0;
        break;
      case Gate::Kind::ConstZero:
        value[g] = 0;
        break;
      case Gate::Kind::ConstOne:
        value[g] = 1;
        break;
      case Gate::Kind::Inv:
        value[g] = value[static_cast<std::size_t>(gate.fanin0)] == 0 ? 1 : 0;
        break;
      case Gate::Kind::And2:
        value[g] = (value[static_cast<std::size_t>(gate.fanin0)] != 0 &&
                    value[static_cast<std::size_t>(gate.fanin1)] != 0)
                       ? 1
                       : 0;
        break;
      case Gate::Kind::Or2:
        value[g] = (value[static_cast<std::size_t>(gate.fanin0)] != 0 ||
                    value[static_cast<std::size_t>(gate.fanin1)] != 0)
                       ? 1
                       : 0;
        break;
    }
  }
  return value.at(static_cast<std::size_t>(outputs_.at(index))) != 0;
}

std::string GateNetwork::summary() const {
  std::size_t and2 = 0;
  std::size_t or2 = 0;
  std::size_t inv = 0;
  for (const Gate& gate : gates_) {
    and2 += gate.kind == Gate::Kind::And2 ? 1 : 0;
    or2 += gate.kind == Gate::Kind::Or2 ? 1 : 0;
    inv += gate.kind == Gate::Kind::Inv ? 1 : 0;
  }
  std::ostringstream os;
  os << "area=" << area() << " depth=" << depth() << " and=" << and2
     << " or=" << or2 << " inv=" << inv;
  return os.str();
}

NetworkScore score_functions(std::vector<Bdd> fs,
                             const std::vector<std::uint32_t>& input_vars) {
  NetworkScore score;
  std::vector<FactorTree> trees;
  trees.reserve(fs.size());
  for (const Bdd& f : fs) {
    BddManager& mgr = *f.manager();
    const IsopResult isop = mgr.isop(f, f);
    // Re-express the cover over the input positions.
    Cover cover(input_vars.size());
    for (const Cube& cube : isop.cover.cubes()) {
      Cube projected(input_vars.size());
      for (std::size_t k = 0; k < input_vars.size(); ++k) {
        projected.set_lit(k, cube.lit(input_vars[k]));
      }
      cover.add_cube(projected);
    }
    score.sop_cubes += cover.cube_count();
    score.sop_literals += cover.literal_count();
    FactorTree tree = algebraic_factor(cover);
    score.factored_literals += tree.literal_count();
    trees.push_back(std::move(tree));
  }
  const GateNetwork network = GateNetwork::map(trees);
  score.area = network.area();
  score.depth = network.depth();
  return score;
}

}  // namespace brel
