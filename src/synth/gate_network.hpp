#pragma once
/// \file gate_network.hpp
/// Mapping of factored forms onto a 2-input AND/OR/INV gate network with a
/// unit-delay, unit-ish-area model.
///
/// Substitute for SIS technology mapping (`map` with lib2) and `speed_up`
/// (see DESIGN.md substitution 4): n-ary factor nodes are decomposed into
/// balanced 2-input trees (pairing the two shallowest operands first,
/// which is what delay-oriented decomposition does), inverters are
/// explicit gates.  Both solvers' outputs are scored through this same
/// pipeline, so relative area/delay comparisons are meaningful.
///
/// Gate model: AND2/OR2 have area 2 and delay 1; INV has area 1 and
/// delay 0 (bubble pushing is free in lib2-style libraries).

#include <cstdint>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "synth/factor.hpp"

namespace brel {

/// One gate of a mapped network.
struct Gate {
  enum class Kind { Input, Inv, And2, Or2, ConstZero, ConstOne };
  Kind kind = Kind::Input;
  std::uint32_t input_var = 0;  ///< Input only: the driven variable
  std::int32_t fanin0 = -1;     ///< gate index; -1 = none
  std::int32_t fanin1 = -1;
  double depth = 0.0;           ///< arrival time under the unit-delay model
};

/// A multi-output combinational network of 2-input gates.
class GateNetwork {
 public:
  /// Map one factored form per output.  Primary inputs are shared across
  /// outputs; gates are not (conservative no-sharing model).
  static GateNetwork map(const std::vector<FactorTree>& outputs);

  [[nodiscard]] const std::vector<Gate>& gates() const noexcept {
    return gates_;
  }
  [[nodiscard]] const std::vector<std::int32_t>& output_gates()
      const noexcept {
    return outputs_;
  }

  /// Total area: AND2/OR2 = 2, INV = 1 (inputs/constants free).
  [[nodiscard]] double area() const noexcept;

  /// Critical-path delay: max arrival time over the outputs.
  [[nodiscard]] double depth() const noexcept;

  /// Evaluate output `index` under a complete input assignment.
  [[nodiscard]] bool eval(std::size_t index,
                          const std::vector<bool>& point) const;

  /// Gate-count summary line, e.g. "area=14 depth=3 and=4 or=2 inv=2".
  [[nodiscard]] std::string summary() const;

 private:
  std::int32_t map_tree(const FactorTree& tree);
  std::int32_t input_gate(std::uint32_t var);
  std::int32_t add_gate(Gate gate);
  /// Balanced reduction of `operands` with 2-input gates of `kind`.
  std::int32_t reduce_balanced(std::vector<std::int32_t> operands,
                               Gate::Kind kind);

  std::vector<Gate> gates_;
  std::vector<std::int32_t> outputs_;
  std::vector<std::int32_t> input_cache_;  ///< var -> Input gate index
};

/// Area/delay score of a set of functions: each output is converted to an
/// ISOP cover, factored and mapped; returns {area, depth, factored lits}.
struct NetworkScore {
  double area = 0.0;
  double depth = 0.0;
  std::size_t factored_literals = 0;
  std::size_t sop_cubes = 0;
  std::size_t sop_literals = 0;
};

/// Score the multi-output function {fs} over the variable positions
/// `input_vars` (cover variables = positions in input_vars).
[[nodiscard]] NetworkScore score_functions(
    std::vector<Bdd> fs, const std::vector<std::uint32_t>& input_vars);

}  // namespace brel
