#include "synth/factor.hpp"

#include <algorithm>
#include <stdexcept>

namespace brel {

namespace {

FactorTree literal_node(std::uint32_t var, bool positive) {
  FactorTree node;
  node.kind = FactorTree::Kind::Literal;
  node.var = var;
  node.positive = positive;
  return node;
}

FactorTree constant_node(bool one) {
  FactorTree node;
  node.kind = one ? FactorTree::Kind::ConstOne : FactorTree::Kind::ConstZero;
  return node;
}

/// AND of the literals of one cube.
FactorTree cube_node(const Cube& cube) {
  std::vector<FactorTree> literals;
  for (std::size_t v = 0; v < cube.num_vars(); ++v) {
    if (cube.lit(v) != Lit::DontCare) {
      literals.push_back(literal_node(static_cast<std::uint32_t>(v),
                                      cube.lit(v) == Lit::One));
    }
  }
  if (literals.empty()) {
    return constant_node(true);
  }
  if (literals.size() == 1) {
    return literals.front();
  }
  FactorTree node;
  node.kind = FactorTree::Kind::And;
  node.children = std::move(literals);
  return node;
}

FactorTree factor_cubes(const std::vector<Cube>& cubes, std::size_t num_vars) {
  if (cubes.empty()) {
    return constant_node(false);
  }
  if (cubes.size() == 1) {
    return cube_node(cubes.front());
  }
  // Most frequent literal across the cubes.
  std::size_t best_count = 0;
  std::uint32_t best_var = 0;
  Lit best_value = Lit::DontCare;
  for (std::size_t v = 0; v < num_vars; ++v) {
    for (const Lit value : {Lit::Zero, Lit::One}) {
      std::size_t count = 0;
      for (const Cube& cube : cubes) {
        if (cube.lit(v) == value) {
          ++count;
        }
      }
      if (count > best_count) {
        best_count = count;
        best_var = static_cast<std::uint32_t>(v);
        best_value = value;
      }
    }
  }
  if (best_count <= 1) {
    // No sharable literal: plain disjunction of cube products.
    FactorTree node;
    node.kind = FactorTree::Kind::Or;
    for (const Cube& cube : cubes) {
      node.children.push_back(cube_node(cube));
    }
    return node;
  }
  // Divide: cover = L * quotient + remainder.
  std::vector<Cube> quotient;
  std::vector<Cube> remainder;
  for (const Cube& cube : cubes) {
    if (cube.lit(best_var) == best_value) {
      Cube reduced = cube;
      reduced.set_lit(best_var, Lit::DontCare);
      quotient.push_back(std::move(reduced));
    } else {
      remainder.push_back(cube);
    }
  }
  FactorTree product;
  product.kind = FactorTree::Kind::And;
  product.children.push_back(literal_node(best_var, best_value == Lit::One));
  FactorTree q = factor_cubes(quotient, num_vars);
  if (q.kind != FactorTree::Kind::ConstOne) {
    product.children.push_back(std::move(q));
  }
  if (product.children.size() == 1) {
    product = std::move(product.children.front());
  }
  if (remainder.empty()) {
    return product;
  }
  FactorTree result;
  result.kind = FactorTree::Kind::Or;
  result.children.push_back(std::move(product));
  FactorTree rem = factor_cubes(remainder, num_vars);
  if (rem.kind == FactorTree::Kind::Or) {
    for (FactorTree& child : rem.children) {
      result.children.push_back(std::move(child));
    }
  } else {
    result.children.push_back(std::move(rem));
  }
  return result;
}

}  // namespace

std::size_t FactorTree::literal_count() const {
  switch (kind) {
    case Kind::ConstZero:
    case Kind::ConstOne:
      return 0;
    case Kind::Literal:
      return 1;
    case Kind::And:
    case Kind::Or: {
      std::size_t total = 0;
      for (const FactorTree& child : children) {
        total += child.literal_count();
      }
      return total;
    }
  }
  return 0;
}

std::string FactorTree::to_string(
    const std::vector<std::string>& names) const {
  const auto var_name = [&](std::uint32_t v) {
    // Built in two steps: `"x" + std::to_string(v)` trips a libstdc++
    // -Wrestrict false positive under gcc 12 at -O3.
    if (v < names.size()) {
      return names[v];
    }
    std::string fallback = "x";
    fallback += std::to_string(v);
    return fallback;
  };
  switch (kind) {
    case Kind::ConstZero:
      return "0";
    case Kind::ConstOne:
      return "1";
    case Kind::Literal: {
      std::string text;
      if (!positive) {
        text.push_back('!');
      }
      text += var_name(var);
      return text;
    }
    case Kind::And: {
      std::string text;
      for (const FactorTree& child : children) {
        if (!text.empty()) {
          text += " ";
        }
        if (child.kind == Kind::Or) {
          // Appended piecewise: `"(" + child.to_string(...)` trips the
          // same gcc-12 -O3 -Wrestrict false positive as var_name above.
          text += "(";
          text += child.to_string(names);
          text += ")";
        } else {
          text += child.to_string(names);
        }
      }
      return text;
    }
    case Kind::Or: {
      std::string text;
      for (const FactorTree& child : children) {
        if (!text.empty()) {
          text += " + ";
        }
        text += child.to_string(names);
      }
      return text;
    }
  }
  return "?";
}

bool FactorTree::eval(const std::vector<bool>& point) const {
  switch (kind) {
    case Kind::ConstZero:
      return false;
    case Kind::ConstOne:
      return true;
    case Kind::Literal:
      return point.at(var) == positive;
    case Kind::And:
      for (const FactorTree& child : children) {
        if (!child.eval(point)) {
          return false;
        }
      }
      return true;
    case Kind::Or:
      for (const FactorTree& child : children) {
        if (child.eval(point)) {
          return true;
        }
      }
      return false;
  }
  return false;
}

FactorTree algebraic_factor(const Cover& cover) {
  for (const Cube& cube : cover.cubes()) {
    if (cube.is_universal()) {
      return FactorTree{FactorTree::Kind::ConstOne, 0, true, {}};
    }
  }
  return factor_cubes(cover.cubes(), cover.num_vars());
}

}  // namespace brel
