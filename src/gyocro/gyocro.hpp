#pragma once
/// \file gyocro.hpp
/// A reimplementation of the gyocro-style heuristic BR minimizer
/// (Watanabe/Brayton [33]; comparison baseline of Table 2 and Sec. 9.1).
///
/// The algorithm is ESPRESSO-flavoured local search on a multi-output SOP:
/// start from the QuickSolver solution, then repeat reduce -> expand ->
/// irredundant passes, where every cube move is accepted only when the
/// modified multi-output function stays *compatible with the relation*
/// (this is what generalizes two-level minimization from ISFs to BRs).
/// The objective is lexicographic: fewest cubes, then fewest literals.
///
/// As Sec. 9.1 shows (Fig. 10), this local search cannot climb out of the
/// minima the initial solution pins it to — the behaviour our Fig. 10
/// bench reproduces.  The original gyocro binary is not available; this is
/// a from-scratch reimplementation of the published paradigm (DESIGN.md
/// substitution 3).

#include <cstddef>

#include "brel/isf_minimizer.hpp"
#include "relation/relation.hpp"

namespace brel {

struct GyocroOptions {
  /// Minimizer used for the initial (QuickSolver-style) covers.
  IsfMinimizer minimizer{};
  /// Safety bound on reduce-expand-irredundant iterations.
  std::size_t max_iterations = 20;
  /// gyocro expands several literals of a cube per pass; Herb [18] — the
  /// first heuristic BR minimizer — "limits the expand operation to one
  /// variable at a time" (Sec. 3), restricting the search space.  Set to
  /// false for the Herb-style baseline.
  bool multi_literal_expand = true;
};

struct GyocroStats {
  std::size_t iterations = 0;        ///< completed R-E-I passes
  std::size_t expansions = 0;        ///< literals removed by expand
  std::size_t reductions = 0;        ///< literals added by reduce
  std::size_t cubes_removed = 0;     ///< cubes dropped (containment or
                                     ///< irredundant)
  std::size_t moves_rejected = 0;    ///< incompatible candidate moves
  double runtime_seconds = 0.0;
};

struct GyocroResult {
  std::vector<Cover> covers;  ///< one SOP per output
  MultiFunction function;     ///< BDDs of the covers
  std::size_t cube_count = 0;
  std::size_t literal_count = 0;
  GyocroStats stats;
};

class GyocroSolver {
 public:
  explicit GyocroSolver(GyocroOptions options = {});

  /// Solve a well-defined relation; the result is always compatible.
  /// Throws std::invalid_argument otherwise.
  [[nodiscard]] GyocroResult solve(const BooleanRelation& r) const;

 private:
  GyocroOptions options_;
};

}  // namespace brel
