#include "gyocro/gyocro.hpp"

#include <chrono>
#include <stdexcept>

namespace brel {

namespace {

/// Working state of the local search: per-output covers plus the cached
/// compatibility oracle.
class Search {
 public:
  Search(const BooleanRelation& r, GyocroStats& stats,
         bool multi_literal_expand)
      : relation_(r),
        mgr_(r.manager()),
        stats_(stats),
        multi_literal_expand_(multi_literal_expand) {}

  std::vector<Cover> covers;

  [[nodiscard]] MultiFunction to_function() const {
    MultiFunction f;
    f.outputs.reserve(covers.size());
    for (const Cover& cover : covers) {
      f.outputs.push_back(mgr_.cover_bdd(cover, relation_.inputs()));
    }
    return f;
  }

  [[nodiscard]] bool compatible() const {
    return relation_.is_compatible(to_function());
  }

  [[nodiscard]] std::size_t cube_count() const {
    std::size_t total = 0;
    for (const Cover& cover : covers) {
      total += cover.cube_count();
    }
    return total;
  }

  [[nodiscard]] std::size_t literal_count() const {
    std::size_t total = 0;
    for (const Cover& cover : covers) {
      total += cover.literal_count();
    }
    return total;
  }

  /// Lexicographic objective (cubes, then literals).
  [[nodiscard]] std::pair<std::size_t, std::size_t> objective() const {
    return {cube_count(), literal_count()};
  }

  /// reduce: shrink cubes (add literals) while compatibility holds.  The
  /// purpose is to free overlap so a later expand can reach other primes.
  void reduce() {
    for (Cover& cover : covers) {
      for (Cube& cube : cover.cubes()) {
        for (std::size_t var = 0; var < cube.num_vars(); ++var) {
          if (cube.lit(var) != Lit::DontCare) {
            continue;
          }
          for (const Lit value : {Lit::One, Lit::Zero}) {
            cube.set_lit(var, value);
            if (compatible()) {
              ++stats_.reductions;
              break;
            }
            ++stats_.moves_rejected;
            cube.set_lit(var, Lit::DontCare);
          }
        }
      }
    }
  }

  /// expand: remove literals (possibly several, unlike Herb's single-
  /// variable expansion) while compatibility holds, then drop cubes that
  /// became contained in the expanded one.
  void expand() {
    for (Cover& cover : covers) {
      for (std::size_t c = 0; c < cover.cube_count(); ++c) {
        bool expanded = false;
        for (std::size_t var = 0; var < cover.num_vars(); ++var) {
          Cube& cube = cover.cubes()[c];
          const Lit old = cube.lit(var);
          if (old == Lit::DontCare) {
            continue;
          }
          cube.set_lit(var, Lit::DontCare);
          if (compatible()) {
            ++stats_.expansions;
            expanded = true;
            if (!multi_literal_expand_) {
              break;  // Herb-style: one variable per cube per pass
            }
          } else {
            ++stats_.moves_rejected;
            cube.set_lit(var, old);
          }
        }
        if (expanded) {
          const std::size_t before = cover.cube_count();
          drop_contained(cover, c);
          stats_.cubes_removed += before - cover.cube_count();
        }
      }
    }
  }

  /// irredundant: drop cubes whose removal keeps the function compatible.
  void irredundant() {
    for (Cover& cover : covers) {
      for (std::size_t c = cover.cube_count(); c-- > 0;) {
        const Cube removed = cover.cubes()[c];
        cover.cubes().erase(cover.cubes().begin() +
                            static_cast<std::ptrdiff_t>(c));
        if (compatible()) {
          ++stats_.cubes_removed;
        } else {
          ++stats_.moves_rejected;
          cover.cubes().insert(
              cover.cubes().begin() + static_cast<std::ptrdiff_t>(c), removed);
        }
      }
    }
  }

 private:
  /// Remove cubes of `cover` contained in cube `keep` (other than itself).
  static void drop_contained(Cover& cover, std::size_t keep) {
    const Cube anchor = cover.cubes()[keep];
    std::vector<Cube> kept;
    kept.reserve(cover.cube_count());
    for (std::size_t i = 0; i < cover.cube_count(); ++i) {
      if (i != keep && anchor.contains_cube(cover.cubes()[i])) {
        continue;
      }
      kept.push_back(cover.cubes()[i]);
    }
    cover = Cover(cover.num_vars(), std::move(kept));
  }

  const BooleanRelation& relation_;
  BddManager& mgr_;
  GyocroStats& stats_;
  bool multi_literal_expand_;
};

}  // namespace

GyocroSolver::GyocroSolver(GyocroOptions options)
    : options_(std::move(options)) {}

GyocroResult GyocroSolver::solve(const BooleanRelation& r) const {
  const auto start = std::chrono::steady_clock::now();
  if (!r.is_well_defined()) {
    throw std::invalid_argument("GyocroSolver: relation is not well defined");
  }
  BddManager& mgr = r.manager();
  GyocroResult result;
  Search search(r, result.stats, options_.multi_literal_expand);

  // Initial solution: QuickSolver with ISOP covers (Sec. 6.2), projected
  // onto the relation's *input* variable positions.
  {
    BooleanRelation current = r;
    for (std::size_t i = 0; i < r.num_outputs(); ++i) {
      const Isf isf = current.project_output(i);
      const IsopResult isop = options_.minimizer.minimize_to_cover(isf);
      // Re-express the cover over the input positions only.
      Cover cover(r.num_inputs());
      for (const Cube& cube : isop.cover.cubes()) {
        Cube projected(r.num_inputs());
        for (std::size_t k = 0; k < r.num_inputs(); ++k) {
          projected.set_lit(k, cube.lit(r.inputs()[k]));
        }
        cover.add_cube(projected);
      }
      search.covers.push_back(std::move(cover));
      current = current.constrain_with(
          mgr.var(r.outputs()[i]).iff(isop.function));
    }
  }

  // reduce-expand-irredundant passes while the objective improves.
  auto best = search.objective();
  for (std::size_t iter = 0; iter < options_.max_iterations; ++iter) {
    const std::vector<Cover> snapshot = search.covers;
    search.reduce();
    search.expand();
    search.irredundant();
    ++result.stats.iterations;
    const auto now = search.objective();
    if (now < best) {
      best = now;
    } else {
      if (now > best) {
        search.covers = snapshot;  // the pass made things worse: revert
      }
      break;
    }
  }

  result.covers = search.covers;
  result.function = search.to_function();
  result.cube_count = search.cube_count();
  result.literal_count = search.literal_count();
  result.stats.runtime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace brel
