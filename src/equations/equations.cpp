#include "equations/equations.hpp"

#include <stdexcept>

namespace brel {

Bdd BoolEquation::characteristic() const {
  if (lhs.empty() || lhs.size() != rhs.size()) {
    throw std::invalid_argument(
        "BoolEquation: lhs/rhs must be non-empty and of equal size");
  }
  BddManager& mgr = *lhs.front().manager();
  Bdd t = mgr.one();
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    switch (op) {
      case EquationOp::Equal:
        t = t & lhs[i].iff(rhs[i]);
        break;
      case EquationOp::Subseteq:
        t = t & lhs[i].implies(rhs[i]);
        break;
    }
  }
  return t;
}

BoolEquationSystem::BoolEquationSystem(BddManager& mgr,
                                       std::vector<std::uint32_t> independent,
                                       std::vector<std::uint32_t> dependent)
    : mgr_(&mgr),
      independent_(std::move(independent)),
      dependent_(std::move(dependent)) {}

void BoolEquationSystem::add_equation(std::vector<Bdd> lhs,
                                      std::vector<Bdd> rhs, EquationOp op) {
  BoolEquation eq{std::move(lhs), std::move(rhs), op};
  (void)eq.characteristic();  // validate eagerly
  equations_.push_back(std::move(eq));
}

void BoolEquationSystem::add_equation(const Bdd& lhs, const Bdd& rhs,
                                      EquationOp op) {
  add_equation(std::vector<Bdd>{lhs}, std::vector<Bdd>{rhs}, op);
}

Bdd BoolEquationSystem::characteristic() const {
  Bdd ie = mgr_->one();
  for (const BoolEquation& eq : equations_) {
    ie = ie & eq.characteristic();
  }
  return ie;
}

bool BoolEquationSystem::is_satisfiable() const {
  // ∃X ∃Y IE — with every variable quantified the result is a constant.
  std::vector<std::uint32_t> all = independent_;
  all.insert(all.end(), dependent_.begin(), dependent_.end());
  return mgr_->exists(characteristic(), all).is_one();
}

bool BoolEquationSystem::is_consistent() const {
  return to_relation().is_well_defined();
}

BooleanRelation BoolEquationSystem::to_relation() const {
  return BooleanRelation(*mgr_, independent_, dependent_, characteristic());
}

SolveResult BoolEquationSystem::solve(const BrelSolver& solver) const {
  const BooleanRelation r = to_relation();
  if (!r.is_well_defined()) {
    throw std::invalid_argument(
        "BoolEquationSystem::solve: system is not consistent");
  }
  return solver.solve(r);
}

BoolEquationSystem::GeneralSolution BoolEquationSystem::general_solution(
    const MultiFunction& particular) const {
  if (!is_solution(particular)) {
    throw std::invalid_argument(
        "general_solution: the seed is not a particular solution");
  }
  GeneralSolution general;
  const std::uint32_t first =
      mgr_->add_vars(static_cast<std::uint32_t>(dependent_.size()));
  for (std::size_t i = 0; i < dependent_.size(); ++i) {
    general.parameters.push_back(first + static_cast<std::uint32_t>(i));
  }
  // IE with the dependents replaced by the parameters.
  std::vector<Bdd> to_params;
  to_params.reserve(mgr_->num_vars());
  for (std::uint32_t v = 0; v < mgr_->num_vars(); ++v) {
    to_params.push_back(mgr_->var(v));
  }
  for (std::size_t i = 0; i < dependent_.size(); ++i) {
    to_params[dependent_[i]] = mgr_->var(general.parameters[i]);
  }
  general.selector = mgr_->compose(characteristic(), to_params);
  for (std::size_t i = 0; i < dependent_.size(); ++i) {
    general.functions.outputs.push_back(
        mgr_->ite(general.selector, mgr_->var(general.parameters[i]),
                  particular.outputs[i]));
  }
  return general;
}

MultiFunction BoolEquationSystem::instantiate(
    const GeneralSolution& general,
    const std::vector<Bdd>& parameter_functions) const {
  if (parameter_functions.size() != general.parameters.size()) {
    throw std::invalid_argument("instantiate: parameter count mismatch");
  }
  std::vector<Bdd> substitution;
  substitution.reserve(mgr_->num_vars());
  for (std::uint32_t v = 0; v < mgr_->num_vars(); ++v) {
    substitution.push_back(mgr_->var(v));
  }
  for (std::size_t i = 0; i < general.parameters.size(); ++i) {
    substitution[general.parameters[i]] = parameter_functions[i];
  }
  MultiFunction result;
  for (const Bdd& y : general.functions.outputs) {
    result.outputs.push_back(mgr_->compose(y, substitution));
  }
  return result;
}

bool BoolEquationSystem::is_solution(const MultiFunction& f) const {
  if (f.outputs.size() != dependent_.size()) {
    throw std::invalid_argument("is_solution: arity mismatch");
  }
  std::vector<Bdd> substitution;
  substitution.reserve(mgr_->num_vars());
  for (std::uint32_t v = 0; v < mgr_->num_vars(); ++v) {
    substitution.push_back(mgr_->var(v));
  }
  for (std::size_t i = 0; i < dependent_.size(); ++i) {
    substitution[dependent_[i]] = f.outputs[i];
  }
  return mgr_->compose(characteristic(), substitution).is_one();
}

}  // namespace brel
