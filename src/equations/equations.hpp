#pragma once
/// \file equations.hpp
/// Solving systems of Boolean equations through Boolean relations (Sec. 8).
///
/// A Boolean equation P(X,Y) ⊙ Q(X,Y) (⊙ ∈ {=, ⊆}, Defs. 8.1) over
/// independent variables X and dependent variables Y is transformed into
/// characteristic form T(X,Y) = 1 (Property 8.1); a system reduces to a
/// single characteristic function IE = ∧ T_k (Theorem 8.1), which *is* a
/// Boolean relation.  Consistency is a quantification check (Property
/// 8.2), and an optimized particular solution is a BREL solve of the
/// relation.

#include <cstdint>
#include <vector>

#include "brel/solver.hpp"
#include "relation/relation.hpp"

namespace brel {

/// The two relational operators of Def. 8.1.
enum class EquationOp {
  Equal,     ///< P = Q  ⇔  (P ≡ Q) = 1
  Subseteq,  ///< P ⊆ Q  ⇔  (!P ∨ Q) = 1
};

/// One multi-output Boolean equation P ⊙ Q.  P and Q are component-wise
/// vectors of functions over both X and Y.
struct BoolEquation {
  std::vector<Bdd> lhs;
  std::vector<Bdd> rhs;
  EquationOp op = EquationOp::Equal;

  /// Characteristic form T(X,Y) with T = 1 iff the equation holds
  /// (Property 8.1), conjoined over the components.
  [[nodiscard]] Bdd characteristic() const;
};

/// A system of Boolean equations (Def. 8.3) with a designated split of
/// variables into independent X and dependent Y.
class BoolEquationSystem {
 public:
  BoolEquationSystem(BddManager& mgr, std::vector<std::uint32_t> independent,
                     std::vector<std::uint32_t> dependent);

  /// Add P ⊙ Q.  lhs/rhs must be component vectors of equal size.
  void add_equation(std::vector<Bdd> lhs, std::vector<Bdd> rhs,
                    EquationOp op = EquationOp::Equal);

  /// Convenience for single-component equations.
  void add_equation(const Bdd& lhs, const Bdd& rhs,
                    EquationOp op = EquationOp::Equal);

  [[nodiscard]] std::size_t size() const noexcept { return equations_.size(); }

  /// IE(X,Y) = ∧_k T_k(X,Y) (Theorem 8.1): exactly the feasible points.
  [[nodiscard]] Bdd characteristic() const;

  /// ∃X ∃Y IE = 1 — the equation has at least one satisfying point
  /// (the consistency condition of [9] quoted in Sec. 8).
  [[nodiscard]] bool is_satisfiable() const;

  /// ∀X ∃Y IE = 1 — a solution *function* Y(X) exists for every X
  /// (Property 8.2; equivalently, the relation below is well defined).
  [[nodiscard]] bool is_consistent() const;

  /// The system as the Boolean relation IE ⊆ B^X × B^Y.
  [[nodiscard]] BooleanRelation to_relation() const;

  /// An optimized particular solution (Def. 8.2) via the BREL solver.
  /// Throws std::invalid_argument when the system is not consistent.
  [[nodiscard]] SolveResult solve(const BrelSolver& solver = BrelSolver{}) const;

  /// Substitute Y := F(X) into IE and test for tautology — the
  /// verification-by-substitution of Example 8.3.
  [[nodiscard]] bool is_solution(const MultiFunction& f) const;

  /// Löwenheim parametric general solution (Def. 8.2): built from any
  /// particular solution F over fresh parameter variables P, with
  ///   Y_i(X, P) = IE(X, P)·p_i + !IE(X, P)·F_i(X).
  /// Every instantiation of P yields a particular solution, and the
  /// formula is *reproductive*: parameters that already are a solution
  /// map to themselves, so every solution is reached.
  struct GeneralSolution {
    std::vector<std::uint32_t> parameters;  ///< fresh variables, one per Y
    MultiFunction functions;                ///< Y_i over X and P
    Bdd selector;  ///< IE(X, P): where the parameters solve the system
  };

  /// Requires `particular` to be a solution (checked).
  [[nodiscard]] GeneralSolution general_solution(
      const MultiFunction& particular) const;

  /// Substitute parameter functions P_i(X) into a general solution,
  /// producing the corresponding particular solution.
  [[nodiscard]] MultiFunction instantiate(
      const GeneralSolution& general,
      const std::vector<Bdd>& parameter_functions) const;

 private:
  BddManager* mgr_;
  std::vector<std::uint32_t> independent_;
  std::vector<std::uint32_t> dependent_;
  std::vector<BoolEquation> equations_;
};

}  // namespace brel
