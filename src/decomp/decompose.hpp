#pragma once
/// \file decompose.hpp
/// Multiway logic decomposition through Boolean relations (Sec. 10).
///
/// Given a function F(X) and a gate G(Y), the relation
///   R(X, Y) = F(X) ⇔ G(Y)        (Def. 10.1)
/// encloses every decomposition F(X) = G(F1(X), ..., Fn(X)).  Solving R
/// with BREL picks one according to the cost function: Σ BDD sizes for
/// area, Σ BDD sizes² for delay (Sec. 10.2, Table 3).

#include <cstdint>
#include <vector>

#include "brel/solver.hpp"
#include "relation/relation.hpp"

namespace brel {

/// The Table 3 gate: a 2:1 multiplexer Q⁺ = A·!C + B·C over (A, B, C).
/// `selector_last` fixes the operand order (A, B, C).
[[nodiscard]] Bdd mux_gate(const Bdd& a, const Bdd& b, const Bdd& c);

/// Build the decomposition relation R(X, Y) = F(X) ⇔ G(Y).
/// `gate` must be a function of the `gate_inputs` variables only, and F a
/// function of `inputs` only; the two sets must be disjoint.
[[nodiscard]] BooleanRelation decomposition_relation(
    const Bdd& f, const std::vector<std::uint32_t>& inputs, const Bdd& gate,
    const std::vector<std::uint32_t>& gate_inputs);

/// Result of one decomposition.
struct Decomposition {
  MultiFunction branches;  ///< F1..Fn with F = G(F1, ..., Fn)
  SolveResult solve;       ///< the underlying BREL run
};

/// Decompose `f` with `gate` using `solver`.  Throws when the relation is
/// not well defined (cannot happen for a total gate G that reaches both 0
/// and 1, e.g. the mux).
[[nodiscard]] Decomposition decompose(
    const Bdd& f, const std::vector<std::uint32_t>& inputs, const Bdd& gate,
    const std::vector<std::uint32_t>& gate_inputs, const BrelSolver& solver);

/// Check F(X) == G(F1(X), ..., Fn(X)) by composition.
[[nodiscard]] bool verify_decomposition(
    const Bdd& f, const Bdd& gate,
    const std::vector<std::uint32_t>& gate_inputs,
    const MultiFunction& branches);

}  // namespace brel
