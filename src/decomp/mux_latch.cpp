#include "decomp/mux_latch.hpp"

namespace brel {

MuxLatchResult mux_latch_decompose(const Bdd& f,
                                   const std::vector<std::uint32_t>& inputs,
                                   const BrelSolver& solver) {
  BddManager& mgr = *f.manager();
  const std::uint32_t first = mgr.add_vars(3);
  const std::vector<std::uint32_t> abc{first, first + 1, first + 2};
  const Bdd gate =
      mux_gate(mgr.var(abc[0]), mgr.var(abc[1]), mgr.var(abc[2]));

  MuxLatchResult result;
  result.baseline = score_functions({f}, inputs);

  const Decomposition decomposition =
      decompose(f, inputs, gate, abc, solver);
  result.solver_stats = decomposition.solve.stats;
  result.verified = verify_decomposition(f, gate, abc, decomposition.branches);
  result.decomposed = score_functions(decomposition.branches.outputs, inputs);
  return result;
}

}  // namespace brel
