#pragma once
/// \file mux_latch.hpp
/// The Table 3 flow: re-implement a next-state function F(X) as the data
/// path of a flip-flop with an embedded 2:1 mux, Q⁺ = A·!C + B·C, so that
/// F = mux(A(X), B(X), C(X)).  The mux is absorbed by the flip-flop at no
/// area/delay cost (the paper's optimistic assumption); the comparison is
/// between the mapped network of F and the mapped networks of A, B, C.

#include <string>

#include "brel/solver.hpp"
#include "decomp/decompose.hpp"
#include "synth/gate_network.hpp"

namespace brel {

/// Scores of one next-state function before/after mux decomposition.
struct MuxLatchResult {
  NetworkScore baseline;    ///< F mapped directly
  NetworkScore decomposed;  ///< A, B, C mapped (mux itself free)
  bool verified = false;    ///< F == mux(A, B, C) recheck
  SolverStats solver_stats;
};

/// Decompose one next-state function.  `inputs` are the support variables
/// of `f` (present-state + primary inputs); three fresh variables are
/// added to the manager for A, B, C on each call.
[[nodiscard]] MuxLatchResult mux_latch_decompose(
    const Bdd& f, const std::vector<std::uint32_t>& inputs,
    const BrelSolver& solver);

}  // namespace brel
