#include "decomp/decompose.hpp"

#include <stdexcept>

namespace brel {

Bdd mux_gate(const Bdd& a, const Bdd& b, const Bdd& c) {
  return (a & !c) | (b & c);
}

BooleanRelation decomposition_relation(
    const Bdd& f, const std::vector<std::uint32_t>& inputs, const Bdd& gate,
    const std::vector<std::uint32_t>& gate_inputs) {
  BddManager& mgr = *f.manager();
  if (gate.manager() != &mgr) {
    throw std::invalid_argument(
        "decomposition_relation: gate from a different manager");
  }
  const Bdd chi = f.iff(gate);
  return BooleanRelation(mgr, inputs, gate_inputs, chi);
}

Decomposition decompose(const Bdd& f,
                        const std::vector<std::uint32_t>& inputs,
                        const Bdd& gate,
                        const std::vector<std::uint32_t>& gate_inputs,
                        const BrelSolver& solver) {
  const BooleanRelation r =
      decomposition_relation(f, inputs, gate, gate_inputs);
  Decomposition result;
  result.solve = solver.solve(r);
  result.branches = result.solve.function;
  return result;
}

bool verify_decomposition(const Bdd& f, const Bdd& gate,
                          const std::vector<std::uint32_t>& gate_inputs,
                          const MultiFunction& branches) {
  BddManager& mgr = *f.manager();
  if (branches.outputs.size() != gate_inputs.size()) {
    throw std::invalid_argument("verify_decomposition: arity mismatch");
  }
  std::vector<Bdd> substitution;
  substitution.reserve(mgr.num_vars());
  for (std::uint32_t v = 0; v < mgr.num_vars(); ++v) {
    substitution.push_back(mgr.var(v));
  }
  for (std::size_t i = 0; i < gate_inputs.size(); ++i) {
    substitution[gate_inputs[i]] = branches.outputs[i];
  }
  return mgr.compose(gate, substitution) == f;
}

}  // namespace brel
