#pragma once
/// \file paper_relations.hpp
/// The worked-example relations of the paper, reconstructed from the prose.
///
/// - fig1: the running example (Fig. 1 / Example 4.2).  The paper fixes
///   R(10) = {00, 11} and R(11) = {10, 11} (Sec. 1, Examples 5.1-5.6); the
///   images of 00 and 01 are not printed in the text, so they are chosen as
///   the singletons {00} and {01}, which reproduces every derived example:
///   the MISF solution (y1 ⇔ x1)(y2 ⇔ x2) with Incomp = {(10,10)}
///   (Examples 5.3/5.4), the Split images {00}/{11} at vertex 10
///   (Example 5.5) and the Theorem 5.2 failure at vertex 11 (Example 5.6).
/// - fig10: the expand-reduce-irredundant trap (Fig. 10 / Sec. 9.1, also
///   the QuickSolver example of Fig. 5).  Reconstructed to preserve the
///   documented structure: exactly eight compatible functions, QuickSolver
///   returns the 3-cube solution (x ⇔ 1)(y ⇔ !a + b), the ERI local search
///   cannot leave it, and the 2-cube optimum (x ⇔ !b)(y ⇔ !a) exists.

#include <utility>

#include "relation/relation.hpp"

namespace brel {

/// Variable layout shared by the paper examples: a fresh manager slice with
/// `n` input variables followed by `m` output variables.
struct RelationSpace {
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> outputs;
};

/// Allocate n+m fresh variables in `mgr` (inputs first).
RelationSpace make_space(BddManager& mgr, std::size_t n, std::size_t m);

/// Fig. 1a / Example 4.2 relation (2 inputs x1 x2, 2 outputs y1 y2).
BooleanRelation fig1_relation(BddManager& mgr, const RelationSpace& space);

/// Fig. 5 / Fig. 10 relation (2 inputs a b, 2 outputs x y).
BooleanRelation fig10_relation(BddManager& mgr, const RelationSpace& space);

/// Fig. 8a symmetry example (2 inputs a b, 2 outputs x y): solutions come
/// in x/y-swapped pairs of equal cost.
BooleanRelation fig8_relation(BddManager& mgr, const RelationSpace& space);

}  // namespace brel
