#include "benchgen/fsm_suite.hpp"

#include <algorithm>
#include <random>

namespace brel {

namespace {

std::uint32_t fnv1a(const std::string& text) {
  std::uint32_t hash = 2166136261u;
  for (const char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 16777619u;
  }
  return hash;
}

/// Random factorable expression over a variable subset: a tree of AND/OR
/// nodes with occasional negations, the shape multilevel synthesis likes.
Bdd random_expression(BddManager& mgr, const std::vector<std::uint32_t>& vars,
                      std::mt19937& rng, int depth) {
  if (depth == 0 || vars.empty()) {
    const std::uint32_t var = vars[rng() % vars.size()];
    return mgr.literal(var, rng() % 2 == 0);
  }
  const Bdd lhs = random_expression(mgr, vars, rng, depth - 1);
  const Bdd rhs = random_expression(mgr, vars, rng, depth - 1);
  Bdd node;
  switch (rng() % 8) {
    case 0:
      node = lhs ^ rhs;  // occasional XOR keeps BDDs interesting
      break;
    case 1:
    case 2:
    case 3:
      node = lhs & rhs;
      break;
    default:
      node = lhs | rhs;
      break;
  }
  if (rng() % 4 == 0) {
    node = !node;
  }
  return node;
}

}  // namespace

const std::vector<FsmBenchmark>& fsm_suite() {
  static const std::vector<FsmBenchmark> suite = [] {
    // (name, PI, FF) — ISCAS'89 values, PI/FF capped at 12 (see header).
    const std::vector<std::tuple<std::string, std::size_t, std::size_t>>
        specs{
            {"s27", 4, 3},    {"s208", 10, 8},  {"s298", 3, 12},
            {"s344", 9, 12},  {"s349", 9, 12},  {"s382", 3, 12},
            {"s386", 7, 6},   {"s420", 10, 12}, {"s444", 3, 12},
            {"s510", 12, 6},  {"s526", 3, 12},  {"s641", 12, 12},
            {"s832", 12, 5},  {"s953", 12, 12}, {"s1196", 12, 12},
            {"s1488", 8, 6},  {"s1494", 8, 6},  {"sbc", 12, 12},
        };
    std::vector<FsmBenchmark> list;
    for (const auto& [name, pi, ff] : specs) {
      list.push_back(FsmBenchmark{name, pi, ff, fnv1a(name)});
    }
    return list;
  }();
  return suite;
}

FsmInstance make_fsm_instance(BddManager& mgr, const FsmBenchmark& bench) {
  const std::size_t total = bench.num_pi + bench.num_ff;
  const std::uint32_t first = mgr.add_vars(static_cast<std::uint32_t>(total));
  FsmInstance instance;
  for (std::size_t i = 0; i < total; ++i) {
    instance.support.push_back(first + static_cast<std::uint32_t>(i));
  }
  std::mt19937 rng{bench.seed};
  for (std::size_t ff = 0; ff < bench.num_ff; ++ff) {
    // Each next-state function depends on a bounded random subset of the
    // support (fanin-limited logic, as in real next-state functions).
    std::vector<std::uint32_t> cone = instance.support;
    std::shuffle(cone.begin(), cone.end(), rng);
    const std::size_t fanin = std::min<std::size_t>(
        cone.size(), 5 + rng() % 4);  // 5..8 variables
    cone.resize(fanin);
    Bdd f = mgr.zero();
    do {
      f = random_expression(mgr, cone, rng, 3);
    } while (f.is_constant());
    instance.next_state.push_back(std::move(f));
  }
  return instance;
}

}  // namespace brel
