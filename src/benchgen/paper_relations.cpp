#include "benchgen/paper_relations.hpp"

namespace brel {

RelationSpace make_space(BddManager& mgr, std::size_t n, std::size_t m) {
  const std::uint32_t first = mgr.add_vars(static_cast<std::uint32_t>(n + m));
  RelationSpace space;
  for (std::size_t i = 0; i < n; ++i) {
    space.inputs.push_back(first + static_cast<std::uint32_t>(i));
  }
  for (std::size_t i = 0; i < m; ++i) {
    space.outputs.push_back(first + static_cast<std::uint32_t>(n + i));
  }
  return space;
}

BooleanRelation fig1_relation(BddManager& mgr, const RelationSpace& space) {
  return BooleanRelation::from_table(mgr, space.inputs, space.outputs,
                                     {
                                         {"00", {"00"}},
                                         {"01", {"01"}},
                                         {"10", {"00", "11"}},
                                         {"11", {"10", "11"}},
                                     });
}

BooleanRelation fig10_relation(BddManager& mgr, const RelationSpace& space) {
  return BooleanRelation::from_table(mgr, space.inputs, space.outputs,
                                     {
                                         {"00", {"01", "11"}},
                                         {"01", {"01", "11"}},
                                         {"10", {"10"}},
                                         {"11", {"00", "11"}},
                                     });
}

BooleanRelation fig8_relation(BddManager& mgr, const RelationSpace& space) {
  return BooleanRelation::from_table(mgr, space.inputs, space.outputs,
                                     {
                                         {"00", {"01", "10"}},
                                         {"01", {"01", "10"}},
                                         {"10", {"11"}},
                                         {"11", {"11"}},
                                     });
}

}  // namespace brel
