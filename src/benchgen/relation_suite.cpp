#include "benchgen/relation_suite.hpp"

#include <random>

namespace brel {

namespace {

std::uint32_t fnv1a(const std::string& text) {
  std::uint32_t hash = 2166136261u;
  for (const char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 16777619u;
  }
  return hash;
}

std::string vertex_text(std::uint64_t code, std::size_t width) {
  std::string text(width, '0');
  for (std::size_t i = 0; i < width; ++i) {
    if (((code >> i) & 1u) != 0) {
      text[i] = '1';
    }
  }
  return text;
}

}  // namespace

const std::vector<RelationBenchmark>& relation_suite() {
  static const std::vector<RelationBenchmark> suite = [] {
    std::vector<RelationBenchmark> list;
    const std::vector<std::pair<std::string, std::pair<std::size_t,
                                                       std::size_t>>>
        specs{
            {"int1", {4, 3}},  {"int2", {5, 3}},  {"int3", {6, 4}},
            {"int4", {6, 3}},  {"int5", {7, 4}},  {"int6", {5, 2}},
            {"int7", {6, 3}},  {"int8", {7, 3}},  {"int9", {8, 4}},
            {"int10", {8, 4}}, {"b9", {6, 3}},    {"vtx", {5, 2}},
            {"gr", {8, 3}},    {"she1", {5, 3}},  {"she2", {6, 3}},
            {"she3", {7, 4}},  {"she4", {8, 4}},
        };
    for (const auto& [name, dims] : specs) {
      list.push_back(RelationBenchmark{name, dims.first, dims.second,
                                       fnv1a(name)});
    }
    return list;
  }();
  return suite;
}

BooleanRelation make_benchmark_relation(BddManager& mgr,
                                        const RelationBenchmark& bench,
                                        std::vector<std::uint32_t>& inputs,
                                        std::vector<std::uint32_t>& outputs) {
  const std::size_t n = bench.num_inputs;
  const std::size_t m = bench.num_outputs;
  const std::uint32_t first =
      mgr.add_vars(static_cast<std::uint32_t>(n + m));
  inputs.clear();
  outputs.clear();
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(first + static_cast<std::uint32_t>(i));
  }
  for (std::size_t i = 0; i < m; ++i) {
    outputs.push_back(first + static_cast<std::uint32_t>(n + i));
  }

  std::mt19937 rng{bench.seed};
  const std::uint64_t out_space = std::uint64_t{1} << m;

  // Flexibility is assigned to random input-cube *regions*, not to
  // isolated vertices: that is how relations extracted from netlist cuts
  // look (a whole satisfying region of the surrounding logic shares one
  // image), and it is what makes the paper's split-on-largest-conflict-
  // cube strategy effective — one Split fixes a whole region.
  const auto random_input_cube = [&]() {
    Cube cube(n);
    for (std::size_t v = 0; v < n; ++v) {
      switch (rng() % 16) {
        case 0:
        case 1:
        case 2:
          cube.set_lit(v, Lit::Zero);
          break;
        case 3:
        case 4:
        case 5:
        case 6:
          cube.set_lit(v, Lit::One);
          break;
        default:
          break;  // don't care with probability 9/16 -> sizable regions
      }
    }
    return cube;
  };
  const auto output_vertex = [&](std::uint64_t code) {
    return mgr.cube_bdd(Cube::parse(vertex_text(code, m)), outputs);
  };

  Bdd chi = mgr.zero();
  Bdd covered = mgr.zero();

  // Two anchor vertices (all-zeros and all-ones inputs) with singleton,
  // mutually complementary images.  Every constant multi-output function
  // differs from v_a at the first anchor or from ~v_a at the second, so
  // no instance degenerates into one solvable by constants.
  {
    const std::uint64_t va = rng() % out_space;
    Bdd x_zero = mgr.one();
    Bdd x_one = mgr.one();
    for (const std::uint32_t v : inputs) {
      x_zero = x_zero & !mgr.var(v);
      x_one = x_one & mgr.var(v);
    }
    chi = chi | (x_zero & output_vertex(va));
    chi = chi | (x_one & output_vertex(~va & (out_space - 1)));
    covered = x_zero | x_one;
  }

  const std::size_t regions = 3 * n;
  for (std::size_t k = 0; k < regions; ++k) {
    const Bdd region = mgr.cube_bdd(random_input_cube(), inputs);
    const std::uint64_t v = rng() % out_space;
    Bdd image = mgr.zero();
    // The first two regions are always complement pairs so that every
    // instance keeps some non-don't-care flexibility (first-match
    // semantics guarantees they survive shadowing).
    const std::uint32_t shape = k < 2 ? 5 : rng() % 10;  // 0-2 cube, 3-6 pair, 7-9 scattered
    if (shape < 3) {
      // Output cube: fix one or two outputs over the region, rest free —
      // the dominant don't-care-expressible flexibility.
      Cube cube(m);
      const std::size_t fixed = 1 + rng() % 2;
      for (std::size_t f = 0; f < fixed; ++f) {
        const std::size_t o = rng() % m;
        cube.set_lit(o, ((v >> o) & 1u) != 0 ? Lit::One : Lit::Zero);
      }
      image = mgr.cube_bdd(cube, outputs);
    } else if (shape < 7) {
      // Complement pair {v, !v}: flexibility don't cares cannot express
      // (Fig. 1); the whole region conflicts together after projection.
      image = output_vertex(v) | output_vertex(~v & (out_space - 1));
    } else {
      // Scattered set of 2-3 vertices: almost never an output cube.
      image = output_vertex(v) | output_vertex(rng() % out_space);
      if (rng() % 2 == 0) {
        image = image | output_vertex(rng() % out_space);
      }
    }
    // First-match semantics: a region only constrains inputs no earlier
    // region claimed.  (Union semantics would inflate the flexibility of
    // overlap areas until constant solutions become compatible.)
    chi = chi | (region & (!covered) & image);
    covered = covered | region;
  }

  // Uncovered inputs get a fully specified (structured, factorable)
  // default function so the relation is total and the SOPs non-trivial.
  Bdd fallback = mgr.one();
  for (std::size_t o = 0; o < m; ++o) {
    const std::uint32_t v1 = inputs[rng() % n];
    const std::uint32_t v2 = inputs[rng() % n];
    const std::uint32_t v3 = inputs[rng() % n];
    const Bdd def = (mgr.literal(v1, rng() % 2 == 0) &
                     mgr.literal(v2, rng() % 2 == 0)) |
                    mgr.literal(v3, rng() % 2 == 0);
    fallback = fallback & mgr.var(outputs[o]).iff(def);
  }
  chi = chi | ((!covered) & fallback);
  return BooleanRelation(mgr, inputs, outputs, std::move(chi));
}

BooleanRelation flip_minterms(const BooleanRelation& r, std::size_t count,
                              std::uint32_t seed) {
  BddManager& mgr = r.manager();
  const std::vector<std::uint32_t>& inputs = r.inputs();
  const std::vector<std::uint32_t>& outputs = r.outputs();
  std::mt19937 rng{seed};

  // One full (input, output) assignment: the bit vectors first (so a
  // failed removal can be re-realized with one output bit flipped), the
  // BDDs built from them.
  std::vector<bool> in_bits(inputs.size());
  std::vector<bool> out_bits(outputs.size());
  const auto build_input_vertex = [&] {
    Bdd vertex = mgr.one();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      vertex = vertex & mgr.literal(inputs[i], in_bits[i]);
    }
    return vertex;
  };
  const auto build_minterm = [&](const Bdd& input_vertex) {
    Bdd minterm = input_vertex;
    for (std::size_t o = 0; o < outputs.size(); ++o) {
      minterm = minterm & mgr.literal(outputs[o], out_bits[o]);
    }
    return minterm;
  };

  Bdd chi = r.characteristic();
  for (std::size_t flip = 0; flip < count; ++flip) {
    bool flipped = false;
    Bdd input_vertex;
    Bdd minterm;
    for (int attempt = 0; attempt < 32 && !flipped; ++attempt) {
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        in_bits[i] = rng() % 2 == 0;
      }
      for (std::size_t o = 0; o < outputs.size(); ++o) {
        out_bits[o] = rng() % 2 == 0;
      }
      input_vertex = build_input_vertex();
      minterm = build_minterm(input_vertex);
      if ((chi & minterm).is_zero()) {
        chi = chi | minterm;  // additions never threaten well-definedness
        flipped = true;
      } else if (!(chi & input_vertex & !minterm).is_zero()) {
        chi = chi & !minterm;  // the row keeps at least one other image
        flipped = true;
      }
      // else: removing the row's only image would leave the relation
      // ill defined — redraw.
    }
    if (!flipped) {
      // Pathological draw streak: every attempt found a singleton-image
      // row's only minterm.  That row admits nothing else, so flipping
      // one output bit of the last draw is guaranteed absent — realize
      // the flip as that addition.
      out_bits[0] = !out_bits[0];
      chi = chi | build_minterm(input_vertex);
    }
  }
  return BooleanRelation(mgr, inputs, outputs, std::move(chi));
}

}  // namespace brel
