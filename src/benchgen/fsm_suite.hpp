#pragma once
/// \file fsm_suite.hpp
/// Seeded synthetic FSM next-state functions standing in for the ISCAS'89
/// circuits of Table 3 (DESIGN.md substitution 5).  Names and PI/FF counts
/// mirror the paper's rows (capped at 12/12 so laptop-scale BDDs stay
/// comfortable); the next-state logic is generated as random factorable
/// expression trees, which is the structure the decomposition experiment
/// needs.

#include <string>
#include <vector>

#include "bdd/bdd.hpp"

namespace brel {

struct FsmBenchmark {
  std::string name;
  std::size_t num_pi = 0;
  std::size_t num_ff = 0;
  std::uint32_t seed = 0;
};

/// The Table 3 instance list.
[[nodiscard]] const std::vector<FsmBenchmark>& fsm_suite();

/// One materialized FSM: support variables and next-state functions.
struct FsmInstance {
  std::vector<std::uint32_t> support;  ///< PI then present-state variables
  std::vector<Bdd> next_state;         ///< one function per flip-flop
};

/// Build the instance in `mgr` (appends num_pi + num_ff fresh variables).
[[nodiscard]] FsmInstance make_fsm_instance(BddManager& mgr,
                                            const FsmBenchmark& bench);

}  // namespace brel
