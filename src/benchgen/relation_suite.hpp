#pragma once
/// \file relation_suite.hpp
/// Seeded synthetic Boolean-relation benchmarks standing in for the BR
/// instances of Table 2 (`int*`, `b9`, `vtx`, `gr`, `she*`), whose original
/// files are not distributed (DESIGN.md substitution 2).
///
/// Each instance mixes three image shapes per input vertex, reproducing
/// the property that drives the experiment:
///   - singleton images (no flexibility),
///   - cube images (don't-care-expressible flexibility),
///   - complement pairs {v, !v} (flexibility that don't cares CANNOT
///     express for >= 2 outputs — the Fig. 1 phenomenon that creates
///     conflicts and separates BREL from projection-based methods).
/// Generation is deterministic per instance name.

#include <string>
#include <vector>

#include "relation/relation.hpp"

namespace brel {

/// Descriptor of one synthetic BR instance.
struct RelationBenchmark {
  std::string name;
  std::size_t num_inputs = 0;
  std::size_t num_outputs = 0;
  std::uint32_t seed = 0;  ///< derived from the name
};

/// The Table 2 instance list (names mirror the paper's rows).
[[nodiscard]] const std::vector<RelationBenchmark>& relation_suite();

/// Materialize an instance in `mgr`, appending fresh variables.
/// `inputs`/`outputs` receive the allocated variable indices.
[[nodiscard]] BooleanRelation make_benchmark_relation(
    BddManager& mgr, const RelationBenchmark& bench,
    std::vector<std::uint32_t>& inputs, std::vector<std::uint32_t>& outputs);

/// Deterministically flip `count` minterms of `r`'s characteristic — the
/// edit model of the incremental-re-solve experiments (a small ECO
/// against an already-solved relation).  Each flip toggles one full
/// (input, output) assignment, drawn from `seed`; a removal that would
/// empty an input vertex's image is redrawn (bounded retries, then
/// realized as an addition instead), so the result is always well
/// defined.  Same (relation, count, seed) → same result, in any manager.
[[nodiscard]] BooleanRelation flip_minterms(const BooleanRelation& r,
                                            std::size_t count,
                                            std::uint32_t seed);

}  // namespace brel
