#include <ostream>
#include <unordered_set>

#include "bdd/bdd.hpp"

namespace brel {

using detail::Edge;
using detail::edge_complemented;
using detail::edge_index;

void BddManager::write_dot(std::ostream& os, std::span<const Bdd> roots,
                           std::span<const std::string> names) {
  os << "digraph bdd {\n  rankdir=TB;\n"
     << "  node [shape=circle];\n"
     << "  one [shape=box, label=\"1\"];\n";
  std::unordered_set<std::uint32_t> visited;
  std::vector<std::uint32_t> stack;
  for (std::size_t r = 0; r < roots.size(); ++r) {
    const Edge e = roots[r].raw_edge();
    // Built in two steps: `"f" + std::to_string(r)` trips a libstdc++
    // -Wrestrict false positive under gcc 12 at -O3.
    std::string name = "f";
    if (r < names.size()) {
      name = names[r];
    } else {
      name += std::to_string(r);
    }
    os << "  root" << r << " [shape=plaintext, label=\"" << name << "\"];\n"
       << "  root" << r << " -> n" << edge_index(e)
       << (edge_complemented(e) ? " [style=dashed]" : "") << ";\n";
    stack.push_back(edge_index(e));
  }
  while (!stack.empty()) {
    const std::uint32_t idx = stack.back();
    stack.pop_back();
    if (idx == 0 || !visited.insert(idx).second) {
      continue;
    }
    const Node& n = nodes_[idx];
    os << "  n" << idx << " [label=\"x" << n.var << "\"];\n";
    const auto emit = [&](Edge child, const char* style) {
      const std::uint32_t cidx = edge_index(child);
      os << "  n" << idx << " -> ";
      if (cidx == 0) {
        os << "one";
      } else {
        os << 'n' << cidx;
      }
      os << " [" << style
         << (edge_complemented(child) ? ", style=dashed" : "") << "];\n";
      stack.push_back(cidx);
    };
    emit(n.hi, "label=\"1\"");
    emit(n.lo, "label=\"0\"");
  }
  os << "}\n";
}

}  // namespace brel
