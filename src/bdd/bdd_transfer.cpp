/// \file bdd_transfer.cpp
/// Cross-manager transfer: memoized export/import plus the serialized
/// manager-independent form (see bdd_transfer.hpp for the two paths and
/// their threading contracts).

#include "bdd/bdd_transfer.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace brel {

using detail::Edge;
using detail::edge_complemented;
using detail::edge_index;
using detail::edge_not;
using detail::kOne;
using detail::kZero;

// ---------------------------------------------------------------------------
// Serialization (reads only the source manager)
// ---------------------------------------------------------------------------

SerializedBdd BddManager::serialize_bdd(const Bdd& f) {
  if (f.manager() != this) {
    throw std::invalid_argument("serialize_bdd: foreign or null handle");
  }
  SerializedBdd out;
  if (detail::edge_is_constant(f.raw_edge())) {
    out.root = f.raw_edge();  // kOne/kZero use the same encoding
    return out;
  }
  if (order_is_identity_) {
    // Fast path: with var == level the in-store DAG *is* the canonical
    // var-ordered form.  Child-before-parent ids via an explicit
    // post-order walk over node indices (complement bits live on edges,
    // not nodes, so each node is visited once regardless of how it is
    // referenced).
    std::unordered_map<std::uint32_t, std::uint32_t> id;  // node idx -> id
    id.emplace(0u, 0u);                                   // the ONE terminal
    std::vector<std::uint32_t> stack{edge_index(f.raw_edge())};
    const auto serialized_edge = [&](Edge e) {
      return (id.at(edge_index(e)) << 1) | (edge_complemented(e) ? 1u : 0u);
    };
    while (!stack.empty()) {
      const std::uint32_t idx = stack.back();
      if (id.count(idx) != 0) {
        stack.pop_back();
        continue;
      }
      const Node& n = nodes_[idx];
      const std::uint32_t hi_idx = edge_index(n.hi);
      const std::uint32_t lo_idx = edge_index(n.lo);
      const bool hi_done = id.count(hi_idx) != 0;
      const bool lo_done = id.count(lo_idx) != 0;
      if (hi_done && lo_done) {
        stack.pop_back();
        id.emplace(idx, static_cast<std::uint32_t>(out.nodes.size()) + 1);
        out.nodes.push_back(SerializedBdd::Node{
            n.var, serialized_edge(n.hi), serialized_edge(n.lo)});
        if (n.var + 1 > out.num_vars) {
          out.num_vars = n.var + 1;
        }
        continue;
      }
      if (!hi_done) {
        stack.push_back(hi_idx);
      }
      if (!lo_done) {
        stack.push_back(lo_idx);
      }
    }
    out.root = serialized_edge(f.raw_edge());
    return out;
  }

  // Reordered manager: re-express the function under the IDENTITY order
  // so the serialized form — and everything keyed on it (memo keys, .bdd
  // bodies, injection-queue payloads) — is independent of this manager's
  // current order.  The recursion peels the smallest support *variable
  // id* (the top variable of the var-ordered BDD) with the ordinary
  // cofactor kernel and assigns ids in the same lo-subtree-first
  // post-order as the fast path, so managers in different orders emit
  // byte-identical node lists for equal functions.  Scratch nodes are
  // built here (the cofactor cones); they die with the next GC.
  std::unordered_map<std::uint32_t, std::uint32_t> min_var;  // regular idx
  auto min_support_var = [&](auto&& self, Edge e) -> std::uint32_t {
    const std::uint32_t idx = edge_index(e);
    if (idx == 0) {
      return detail::kTerminalVar;  // no support
    }
    if (const auto it = min_var.find(idx); it != min_var.end()) {
      return it->second;
    }
    // Copy the fields: nothing allocates inside, but keep the pattern
    // uniform with the canon recursion below.
    const Node n = nodes_[idx];
    std::uint32_t v = n.var;
    v = std::min(v, self(self, n.hi));
    v = std::min(v, self(self, n.lo));
    min_var.emplace(idx, v);
    return v;
  };
  std::unordered_map<Edge, std::uint32_t> id;  // regular edge -> ser. edge
  auto canon = [&](auto&& self, Edge e) -> std::uint32_t {
    const bool comp = edge_complemented(e);
    const Edge er = detail::edge_regular(e);
    std::uint32_t serialized;
    if (er == kOne) {
      serialized = 0;
    } else if (const auto it = id.find(er); it != id.end()) {
      serialized = it->second;
    } else {
      const std::uint32_t v = min_support_var(min_support_var, er);
      const Edge e0 = cofactor_rec(er, v, false);
      const Edge e1 = cofactor_rec(er, v, true);
      const std::uint32_t s0 = self(self, e0);  // lo first: id parity with
      const std::uint32_t s1 = self(self, e1);  // the fast path's walk
      std::uint32_t hi = s1;
      std::uint32_t lo = s0;
      const bool flip = (hi & 1u) != 0;  // canonical: hi stays regular
      if (flip) {
        hi ^= 1u;
        lo ^= 1u;
      }
      out.nodes.push_back(SerializedBdd::Node{v, hi, lo});
      if (v + 1 > out.num_vars) {
        out.num_vars = v + 1;
      }
      serialized = (static_cast<std::uint32_t>(out.nodes.size()) << 1) |
                   (flip ? 1u : 0u);
      id.emplace(er, serialized);
    }
    return comp ? (serialized ^ 1u) : serialized;
  };
  out.root = canon(canon, f.raw_edge());
  return out;
}

// ---------------------------------------------------------------------------
// Deserialization (writes only the destination manager)
// ---------------------------------------------------------------------------

Bdd BddManager::deserialize_bdd(const SerializedBdd& s,
                                std::uint32_t var_offset) {
  const auto fail = [](const char* what) {
    throw std::invalid_argument(std::string("deserialize_bdd: ") + what);
  };
  // One forward pass: every child id must already be materialized, and a
  // child's variable must sit strictly below its parent's in the order,
  // so malformed input cannot smuggle an unordered DAG into the store.
  std::vector<Edge> built(s.nodes.size() + 1);
  std::vector<std::uint32_t> level(s.nodes.size() + 1, detail::kTerminalVar);
  built[0] = kOne;
  for (std::size_t k = 0; k < s.nodes.size(); ++k) {
    const SerializedBdd::Node& n = s.nodes[k];
    if (n.var >= num_vars_ || var_offset > num_vars_ - 1 - n.var) {
      fail("variable outside the destination manager");
    }
    const auto child = [&](std::uint32_t e) {
      const std::uint32_t idx = e >> 1;
      if (idx > k) {
        fail("child id not smaller than parent id");
      }
      if (level[idx] != detail::kTerminalVar && level[idx] <= n.var) {
        fail("child variable not below parent in the order");
      }
      return (e & 1u) != 0 ? edge_not(built[idx]) : built[idx];
    };
    const Edge hi = child(n.hi);
    const Edge lo = child(n.lo);
    if (order_is_identity_) {
      // The serialized form is var-ordered and so is this manager: the
      // node list rebuilds by direct unique-table insertion.
      built[k + 1] = make_node(n.var + var_offset, hi, lo);
    } else {
      // Reordered destination: the incoming var-ordered parent/child
      // pairs need not respect this manager's level order, so rebuild
      // through the ITE kernel, which re-canonicalizes under it.
      const Edge var_edge = make_node(n.var + var_offset, kOne, kZero);
      built[k + 1] = ite_rec(var_edge, hi, lo);
    }
    level[k + 1] = n.var;
  }
  const std::uint32_t root_idx = s.root >> 1;
  if (root_idx >= built.size()) {
    fail("root references an unknown node");
  }
  const Edge root = (s.root & 1u) != 0 ? edge_not(built[root_idx])
                                       : built[root_idx];
  return wrap(root);
}

// ---------------------------------------------------------------------------
// Direct memoized import (calling thread must own both managers)
// ---------------------------------------------------------------------------

Bdd BddManager::import_bdd(const Bdd& src) {
  BddManager* from = src.manager();
  if (from == nullptr) {
    throw std::invalid_argument("import_bdd: null handle");
  }
  if (from == this) {
    return src;
  }
  if (!order_is_identity_ || !from->order_is_identity_) {
    // Orders may disagree, so a verbatim node copy is not canonical here;
    // route through the serialized form, which both sides express (and
    // rebuild) order-independently.
    return deserialize_bdd(from->serialize_bdd(src));
  }
  // Memo on source node index -> destination edge of the node's regular
  // (uncomplemented) function; complement bits transfer on the edges.
  std::unordered_map<std::uint32_t, Edge> memo;
  memo.emplace(0u, kOne);
  const auto import_node = [&](auto&& self, std::uint32_t idx) -> Edge {
    if (const auto it = memo.find(idx); it != memo.end()) {
      return it->second;
    }
    const Node& n = from->nodes_[idx];
    if (n.var >= num_vars_) {
      throw std::invalid_argument(
          "import_bdd: source variable outside the destination manager");
    }
    const auto import_edge = [&](Edge e) {
      const Edge t = self(self, edge_index(e));
      return edge_complemented(e) ? edge_not(t) : t;
    };
    const Edge hi = import_edge(n.hi);
    const Edge lo = import_edge(n.lo);
    const Edge result = make_node(n.var, hi, lo);
    memo.emplace(idx, result);
    return result;
  };
  const Edge root_regular =
      import_node(import_node, edge_index(src.raw_edge()));
  return wrap(edge_complemented(src.raw_edge()) ? edge_not(root_regular)
                                                : root_regular);
}

// ---------------------------------------------------------------------------
// Free wrappers and the text form
// ---------------------------------------------------------------------------

SerializedBdd serialize_bdd(const Bdd& f) {
  if (f.manager() == nullptr) {
    throw std::invalid_argument("serialize_bdd: null handle");
  }
  return f.manager()->serialize_bdd(f);
}

Bdd deserialize_bdd(BddManager& dst, const SerializedBdd& s,
                    std::uint32_t var_offset) {
  return dst.deserialize_bdd(s, var_offset);
}

Bdd transfer_bdd(const Bdd& f, BddManager& dst) { return dst.import_bdd(f); }

void write_serialized_bdd(std::ostream& os, const SerializedBdd& s) {
  for (const SerializedBdd::Node& n : s.nodes) {
    os << n.var << ' ' << n.hi << ' ' << n.lo << '\n';
  }
  os << ".root " << s.root << '\n';
}

SerializedBdd read_serialized_bdd(std::istream& in, std::size_t node_count) {
  const auto fail = [](const char* what) {
    throw std::invalid_argument(std::string("read_serialized_bdd: ") + what);
  };
  // Streams parse negative text into unsigned fields by modular wrap
  // (never a failbit), so "-1" would silently become 4294967295; reject
  // the sign explicitly to keep every malformed body a loud error.
  const auto reject_negatives = [&](const std::string& line) {
    if (line.find('-') != std::string::npos) {
      fail("negative field (all fields are unsigned)");
    }
  };
  // Bound every parsed variable index well below the uint32 ceiling:
  // `var + 1` computes num_vars, and an attacker-controlled 0xFFFFFFFF
  // would wrap that sum to 0, slipping a bogus rank past the caller's
  // range checks.  2^24 variables is far beyond any real relation.
  constexpr std::uint32_t kMaxVar = 1u << 24;
  SerializedBdd s;
  // Never trust the header's count for the allocation — a lying `.bdd N`
  // line must fail as "truncated node list", not as a giant reserve
  // throwing bad_alloc past the caller's parse-error handling.
  s.nodes.reserve(std::min<std::size_t>(node_count, 1u << 16));
  std::string line;
  std::string extra;
  for (std::size_t k = 0; k < node_count; ++k) {
    if (!std::getline(in, line)) {
      fail("truncated node list");
    }
    reject_negatives(line);
    std::istringstream row(line);
    SerializedBdd::Node n{};
    if (!(row >> n.var >> n.hi >> n.lo)) {
      fail("malformed node line (expected: var hi lo)");
    }
    if (row >> extra) {
      fail("trailing tokens on node line");
    }
    if (n.var >= kMaxVar) {
      fail("variable index out of range");
    }
    s.nodes.push_back(n);
    if (n.var + 1 > s.num_vars) {
      s.num_vars = n.var + 1;
    }
  }
  if (!std::getline(in, line)) {
    fail("missing .root line");
  }
  std::istringstream row(line);
  std::string keyword;
  if (!(row >> keyword) || keyword != ".root") {
    fail("malformed .root line");
  }
  reject_negatives(line);
  if (!(row >> s.root)) {
    fail("malformed .root line");
  }
  if (row >> extra) {
    fail("trailing tokens on .root line");
  }
  return s;
}

}  // namespace brel
