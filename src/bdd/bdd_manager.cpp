#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <tuple>

#include "bdd/bdd.hpp"

namespace brel {

using detail::Edge;
using detail::edge_complemented;
using detail::edge_index;
using detail::edge_not;
using detail::kOne;
using detail::kTerminalVar;
using detail::kZero;

// ---------------------------------------------------------------------------
// Bdd handle
// ---------------------------------------------------------------------------

Bdd::Bdd(BddManager* manager, Edge edge) : manager_(manager), edge_(edge) {
  if (manager_ != nullptr) {
    manager_->ref_edge(edge_);
  }
}

Bdd::Bdd(const Bdd& other) : manager_(other.manager_), edge_(other.edge_) {
  if (manager_ != nullptr) {
    manager_->ref_edge(edge_);
  }
}

Bdd::Bdd(Bdd&& other) noexcept : manager_(other.manager_), edge_(other.edge_) {
  other.manager_ = nullptr;
  other.edge_ = kOne;
}

Bdd& Bdd::operator=(const Bdd& other) {
  if (this == &other) {
    return *this;
  }
  if (other.manager_ != nullptr) {
    other.manager_->ref_edge(other.edge_);
  }
  if (manager_ != nullptr) {
    manager_->deref_edge(edge_);
  }
  manager_ = other.manager_;
  edge_ = other.edge_;
  return *this;
}

Bdd& Bdd::operator=(Bdd&& other) noexcept {
  if (this == &other) {
    return *this;
  }
  if (manager_ != nullptr) {
    manager_->deref_edge(edge_);
  }
  manager_ = other.manager_;
  edge_ = other.edge_;
  other.manager_ = nullptr;
  other.edge_ = kOne;
  return *this;
}

Bdd::~Bdd() {
  if (manager_ != nullptr) {
    manager_->deref_edge(edge_);
  }
}

bool Bdd::is_one() const noexcept {
  return manager_ != nullptr && edge_ == kOne;
}
bool Bdd::is_zero() const noexcept {
  return manager_ != nullptr && edge_ == kZero;
}
bool Bdd::is_constant() const noexcept {
  return manager_ != nullptr && detail::edge_is_constant(edge_);
}

Bdd Bdd::operator!() const { return manager_->bdd_not(*this); }
Bdd Bdd::operator&(const Bdd& other) const {
  return manager_->bdd_and(*this, other);
}
Bdd Bdd::operator|(const Bdd& other) const {
  return manager_->bdd_or(*this, other);
}
Bdd Bdd::operator^(const Bdd& other) const {
  return manager_->bdd_xor(*this, other);
}
Bdd Bdd::iff(const Bdd& other) const {
  return !manager_->bdd_xor(*this, other);
}
Bdd Bdd::implies(const Bdd& other) const {
  return manager_->bdd_or(!*this, other);
}

bool Bdd::subset_of(const Bdd& other) const {
  // f <= g  <=>  f & !g == 0, decided by the short-circuiting leq kernel
  // without materializing the conjunction.
  return manager_->leq(*this, other);
}

Bdd Bdd::cofactor(std::uint32_t var, bool phase) const {
  return manager_->cofactor(*this, var, phase);
}

// ---------------------------------------------------------------------------
// Manager: construction, variables
// ---------------------------------------------------------------------------

BddManager::BddManager(std::uint32_t num_vars, std::uint32_t cache_log2) {
  if (cache_log2 < 8 || cache_log2 > 28) {
    throw std::invalid_argument("BddManager: cache_log2 out of range [8,28]");
  }
  if (num_vars > kMaxVariables) {
    // Same invariant as kMaxNodeIndex: cofactor_rec packs var << 1 | phase
    // into a 30-bit cache operand field.
    throw std::invalid_argument("BddManager: too many variables");
  }
  nodes_.reserve(1u << 12);
  refcount_.reserve(1u << 12);
  // Node 0: the terminal ONE.
  nodes_.push_back(Node{kTerminalVar, kOne, kOne, 0});
  refcount_.push_back(1);  // never collected
  (void)add_vars(num_vars);
  // 2^cache_log2 entries organized as 2-way sets (consecutive pairs); at
  // 16 bytes per entry this is half the memory of the pre-overhaul cache.
  cache_.resize(std::size_t{1} << cache_log2);
  cache_mask_ = (std::uint64_t{1} << (cache_log2 - 1)) - 1;
}

BddManager::~BddManager() = default;

std::uint32_t BddManager::add_vars(std::uint32_t count) {
  if (count > kMaxVariables - num_vars_) {
    throw std::length_error("BddManager: too many variables");
  }
  const std::uint32_t first = num_vars_;
  num_vars_ += count;
  // Fresh variables enter at the bottom of the order, each with its own
  // (initially small) unique table.
  level_of_var_.reserve(num_vars_);
  var_at_level_.reserve(num_vars_);
  subtables_.resize(num_vars_);
  for (std::uint32_t v = first; v < num_vars_; ++v) {
    level_of_var_.push_back(v);
    var_at_level_.push_back(v);
    subtables_[v].buckets.assign(kInitialSubtableBuckets, 0u);
  }
  return first;
}

std::uint32_t BddManager::level_of_var(std::uint32_t var) const {
  if (var >= num_vars_) {
    throw std::out_of_range("BddManager::level_of_var: unknown variable");
  }
  return level_of_var_[var];
}

std::uint32_t BddManager::var_at_level(std::uint32_t level) const {
  if (level >= num_vars_) {
    throw std::out_of_range("BddManager::var_at_level: unknown level");
  }
  return var_at_level_[level];
}

ReorderMode resolve_reorder_mode(ReorderMode configured) {
  const char* env = std::getenv("BREL_REORDER");
  if (env == nullptr) {
    return configured;
  }
  if (std::strcmp(env, "off") == 0) {
    return ReorderMode::Off;
  }
  if (std::strcmp(env, "on") == 0) {
    return ReorderMode::On;
  }
  if (std::strcmp(env, "auto") == 0) {
    return ReorderMode::Auto;
  }
  return configured;  // unknown value: keep the configured mode
}

Bdd BddManager::one() { return wrap(kOne); }
Bdd BddManager::zero() { return wrap(kZero); }

Bdd BddManager::var(std::uint32_t var) {
  if (var >= num_vars_) {
    throw std::out_of_range("BddManager::var: unknown variable");
  }
  return wrap(make_node(var, kOne, kZero));
}

Bdd BddManager::literal(std::uint32_t var, bool positive) {
  Bdd v = this->var(var);
  return positive ? v : !v;
}

// ---------------------------------------------------------------------------
// Unique table
// ---------------------------------------------------------------------------

std::uint64_t BddManager::hash_triple(std::uint64_t a, std::uint64_t b,
                                      std::uint64_t c) noexcept {
  std::uint64_t h = a * 0x9E3779B97F4A7C15ull;
  h ^= (b + 0xBF58476D1CE4E5B9ull) + (h << 6) + (h >> 2);
  h *= 0x94D049BB133111EBull;
  h ^= (c + 0x2545F4914F6CDD1Dull) + (h << 6) + (h >> 2);
  h ^= h >> 29;
  return h;
}

void BddManager::subtable_insert(SubTable& table, std::uint32_t idx) noexcept {
  const Node& n = nodes_[idx];
  const std::uint64_t h =
      hash_triple(n.var, n.hi, n.lo) & (table.buckets.size() - 1);
  nodes_[idx].next = table.buckets[h];
  table.buckets[h] = idx;
  ++table.count;
}

void BddManager::subtable_remove(SubTable& table, std::uint32_t idx) noexcept {
  const Node& n = nodes_[idx];
  const std::uint64_t h =
      hash_triple(n.var, n.hi, n.lo) & (table.buckets.size() - 1);
  std::uint32_t* slot = &table.buckets[h];
  while (*slot != idx) {
    slot = &nodes_[*slot].next;
  }
  *slot = nodes_[idx].next;
  --table.count;
}

void BddManager::rebuild_subtables(std::uint32_t grow_level) {
  // Re-bucket every live node into its level's table.  `grow_level`
  // doubles that one table's bucket array first (the per-table analogue
  // of the old global rehash-on-load).
  if (grow_level != kTerminalVar) {
    // Walk the CHAINS, not the node store: during a reorder swap some
    // nodes of this variable are deliberately unlinked (awaiting their
    // in-place rewrite), and re-inserting those here would corrupt both
    // tables through the shared Node::next field.
    SubTable& table = subtables_[grow_level];
    std::vector<std::uint32_t> linked;
    linked.reserve(table.count);
    for (const std::uint32_t head : table.buckets) {
      for (std::uint32_t i = head; i != 0; i = nodes_[i].next) {
        linked.push_back(i);
      }
    }
    table.buckets.assign(table.buckets.size() * 2, 0u);
    table.count = 0;
    for (const std::uint32_t i : linked) {
      subtable_insert(table, i);
    }
    return;
  }
  for (SubTable& table : subtables_) {
    std::fill(table.buckets.begin(), table.buckets.end(), 0u);
    table.count = 0;
  }
  for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i].var == kTerminalVar) {
      continue;  // freed slot (var reset when put on the free list)
    }
    subtable_insert(subtables_[level_of_var_[nodes_[i].var]], i);
  }
}

std::uint32_t BddManager::allocate_node() {
  if (free_list_ != 0) {
    const std::uint32_t idx = free_list_;
    free_list_ = nodes_[idx].next;
    --free_count_;
    return idx;
  }
  if (nodes_.size() > kMaxNodeIndex) {
    // Edges must fit the 30-bit operand fields of the packed computed
    // cache; 2^29 nodes is ~8 GiB of node store, far past practical use.
    throw std::length_error("BddManager: node capacity exceeded");
  }
  nodes_.push_back(Node{});
  refcount_.push_back(0);
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

Edge BddManager::make_node(std::uint32_t var, Edge hi, Edge lo) {
  assert_owning_thread();
  if (hi == lo) {
    return hi;
  }
  // Canonical form: the then-edge is never complemented.
  bool complement_out = false;
  if (edge_complemented(hi)) {
    hi = edge_not(hi);
    lo = edge_not(lo);
    complement_out = true;
  }
  assert(node_level(hi) > level_of_var_[var] &&
         node_level(lo) > level_of_var_[var] &&
         "make_node: child level not below the parent");
  SubTable& table = subtables_[level_of_var_[var]];
  const std::uint64_t h =
      hash_triple(var, hi, lo) & (table.buckets.size() - 1);
  for (std::uint32_t i = table.buckets[h]; i != 0; i = nodes_[i].next) {
    const Node& n = nodes_[i];
    if (n.var == var && n.hi == hi && n.lo == lo) {
      const Edge found = i << 1;
      return complement_out ? edge_not(found) : found;
    }
  }
  const std::uint32_t idx = allocate_node();
  nodes_[idx] = Node{var, hi, lo, table.buckets[h]};
  refcount_[idx] = 0;
  table.buckets[h] = idx;
  ++table.count;
  if (sifting_) {
    // A fresh node hands one sift-session reference to each child; its
    // own count starts at 0 and is set by the caller when it links the
    // node somewhere.
    if (sift_refs_.size() < nodes_.size()) {
      sift_refs_.resize(nodes_.size(), 0u);
    }
    const auto bump = [this](Edge e) {
      const std::uint32_t child = edge_index(e);
      if (child != 0) {
        ++sift_refs_[child];
      }
    };
    bump(hi);
    bump(lo);
  }
  ++stats_.nodes_created;
  const std::size_t live = live_nodes();
  stats_.live_nodes = live;
  stats_.peak_nodes = std::max(stats_.peak_nodes, live);
  if (table.count * 2 > table.buckets.size()) {
    rebuild_subtables(level_of_var_[var]);
  }
  const Edge fresh = idx << 1;
  return complement_out ? edge_not(fresh) : fresh;
}

// ---------------------------------------------------------------------------
// Computed cache
// ---------------------------------------------------------------------------

const char* bdd_op_name(BddOp op) noexcept {
  switch (op) {
    case BddOp::Ite:
      return "ite";
    case BddOp::And:
      return "and";
    case BddOp::Xor:
      return "xor";
    case BddOp::Cofactor:
      return "cofactor";
    case BddOp::Leq:
      return "leq";
    case BddOp::Exists:
      return "exists";
    case BddOp::AndExists:
      return "and_exists";
    case BddOp::Constrain:
      return "constrain";
    case BddOp::Restrict:
      return "restrict";
  }
  return "?";
}

std::uint64_t BddManager::hash_key(std::uint64_t key_ab, Edge c) noexcept {
  std::uint64_t h = key_ab * 0x9E3779B97F4A7C15ull;
  h ^= h >> 32;
  h += std::uint64_t{c} * 0xBF58476D1CE4E5B9ull;
  h ^= h >> 29;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 32;
  return h;
}

bool BddManager::cache_lookup(Op op, Edge a, Edge b, Edge c, Edge& out,
                              CacheProbe& probe) {
  assert_owning_thread();  // per-op stats and MRU promotion both write
  const auto op_idx = static_cast<std::size_t>(op);
  ++stats_.op_lookups[op_idx];  // aggregates are folded on stats() read
  probe.key_ab = (std::uint64_t{static_cast<std::uint32_t>(op)} << 60) |
                 (std::uint64_t{a} << 30) | b;
  probe.c = c;
  probe.slot = (hash_key(probe.key_ab, c) & cache_mask_) << 1;
  CacheEntry& primary = cache_[probe.slot];
  if (primary.key_ab == probe.key_ab && primary.c == c) {
    ++stats_.op_hits[op_idx];
    out = primary.result;
    return true;
  }
  CacheEntry& secondary = cache_[probe.slot + 1];
  if (secondary.key_ab == probe.key_ab && secondary.c == c) {
    ++stats_.op_hits[op_idx];
    out = secondary.result;
    std::swap(primary, secondary);  // promote to the MRU way
    return true;
  }
  return false;
}

void BddManager::cache_insert(const CacheProbe& probe, Edge result) {
  CacheEntry& primary = cache_[probe.slot];
  if (primary.key_ab != kEmptyCacheKey) {
    cache_[probe.slot + 1] = primary;  // demote; the LRU way is evicted
  }
  primary = CacheEntry{probe.key_ab, probe.c, result};
}

// ---------------------------------------------------------------------------
// Reference counting and garbage collection
// ---------------------------------------------------------------------------

void BddManager::ref_edge(Edge e) noexcept {
  assert_owning_thread();
  const std::uint32_t idx = edge_index(e);
  if (idx != 0 && refcount_[idx]++ == 0) {
    ++external_roots_;
  }
}

void BddManager::deref_edge(Edge e) noexcept {
  assert_owning_thread();
  const std::uint32_t idx = edge_index(e);
  if (idx != 0 && --refcount_[idx] == 0) {
    --external_roots_;
  }
}

void BddManager::garbage_collect() {
  assert_owning_thread();
  // Mark phase: every externally referenced node is a root.  The mark
  // buffer is a reusable stamp array: a node is marked in this run iff
  // its stamp equals gc_stamp_, so no per-run clearing or allocation.
  if (++gc_stamp_ == 0) {  // stamp wrapped: invalidate all old stamps once
    std::fill(gc_mark_.begin(), gc_mark_.end(), 0u);
    gc_stamp_ = 1;
  }
  gc_mark_.resize(nodes_.size(), 0u);
  const std::uint32_t stamp = gc_stamp_;
  gc_mark_[0] = stamp;
  gc_stack_.clear();
  for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
    if (refcount_[i] > 0 && nodes_[i].var != kTerminalVar) {
      gc_stack_.push_back(i);
    }
  }
  while (!gc_stack_.empty()) {
    const std::uint32_t idx = gc_stack_.back();
    gc_stack_.pop_back();
    if (gc_mark_[idx] == stamp) {
      continue;
    }
    gc_mark_[idx] = stamp;
    const Node& n = nodes_[idx];
    const std::uint32_t hi_idx = edge_index(n.hi);
    const std::uint32_t lo_idx = edge_index(n.lo);
    if (gc_mark_[hi_idx] != stamp) {
      gc_stack_.push_back(hi_idx);
    }
    if (gc_mark_[lo_idx] != stamp) {
      gc_stack_.push_back(lo_idx);
    }
  }
  // Sweep phase: unmarked nodes go to the free list.
  for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
    if (gc_mark_[i] != stamp && nodes_[i].var != kTerminalVar) {
      nodes_[i].var = kTerminalVar;  // tombstone
      nodes_[i].next = free_list_;
      free_list_ = i;
      ++free_count_;
    }
  }
  // The computed cache and unique tables reference dead nodes; rebuild.
  std::fill(cache_.begin(), cache_.end(), CacheEntry{});
  rebuild_subtables();
  // Freed indices can be reallocated to different functions; their
  // cached canonical hashes must not survive that.
  chash_invalidate();
  stats_.live_nodes = live_nodes();
  ++stats_.gc_runs;
}

void BddManager::garbage_collect_if_needed(std::size_t dead_node_threshold) {
  // Constant time on the decline path: external_roots_ is maintained
  // incrementally on every 0<->1 refcount transition, so deciding "mostly
  // garbage?" is two comparisons — no scan.  (The pre-overhaul version
  // walked every refcount here, on every solver expansion step.)
  ++stats_.gc_checks;
  std::size_t live = live_nodes();
  bool collected = false;
  if (live >= dead_node_threshold && live > external_roots_ * 4) {
    garbage_collect();
    live = live_nodes();
    collected = true;
  }
  // Auto-reorder hook: a live count that stays high after collection is
  // genuine BDD growth, the signal that the order — not garbage — is the
  // problem.  A count over the threshold that was NOT just collected may
  // be mostly garbage (deserialization scaffolding right after a parse
  // sits far below the GC threshold above) — collect first and re-check,
  // so only genuine growth pays for a sifting pass.  The threshold
  // doubles from the post-sift size so a workload sifting cannot shrink
  // does not re-sift every check.
  if (auto_reorder_ && live >= reorder_threshold_) {
    if (!collected) {
      garbage_collect();
      live = live_nodes();
      collected = true;
    }
    if (live >= reorder_threshold_) {
      reorder_internal(reorder_max_growth_, collected);
      reorder_threshold_ =
          std::max(stats_.live_nodes * 2, reorder_first_threshold_);
    }
  }
}

void BddManager::set_auto_reorder(bool enabled, std::size_t first_trigger,
                                  double max_growth) {
  auto_reorder_ = enabled;
  reorder_first_threshold_ = std::max<std::size_t>(first_trigger, 16);
  reorder_threshold_ = reorder_first_threshold_;
  reorder_max_growth_ = max_growth;
}

// ---------------------------------------------------------------------------
// Cube / cover conversion
// ---------------------------------------------------------------------------

Bdd BddManager::cube_bdd(const Cube& cube,
                         std::span<const std::uint32_t> var_map) {
  if (var_map.size() != cube.num_vars()) {
    throw std::invalid_argument("cube_bdd: var_map size mismatch");
  }
  // Build bottom-up in descending LEVEL order so make_node sees ordered
  // children; collect (level, manager-var, phase) triples first.  The
  // mapped variables must be validated before the level lookup — an
  // unknown variable would read past level_of_var_.
  std::vector<std::tuple<std::uint32_t, std::uint32_t, bool>> literals;
  for (std::size_t i = 0; i < cube.num_vars(); ++i) {
    const Lit lit = cube.lit(i);
    if (lit != Lit::DontCare) {
      if (var_map[i] >= num_vars_) {
        throw std::out_of_range("cube_bdd: unknown variable in var_map");
      }
      literals.emplace_back(level_of(var_map[i]), var_map[i],
                            lit == Lit::One);
    }
  }
  std::sort(literals.begin(), literals.end());
  Edge acc = kOne;
  for (auto it = literals.rbegin(); it != literals.rend(); ++it) {
    acc = std::get<2>(*it) ? make_node(std::get<1>(*it), acc, kZero)
                           : make_node(std::get<1>(*it), kZero, acc);
  }
  return wrap(acc);
}

Bdd BddManager::cover_bdd(const Cover& cover,
                          std::span<const std::uint32_t> var_map) {
  Bdd acc = zero();
  for (const Cube& cube : cover.cubes()) {
    acc = acc | cube_bdd(cube, var_map);
  }
  return acc;
}

Edge BddManager::vars_cube(std::span<const std::uint32_t> vars) {
  std::vector<std::uint32_t> sorted(vars.begin(), vars.end());
  for (const std::uint32_t v : sorted) {
    if (v >= num_vars_) {
      throw std::out_of_range("vars_cube: unknown variable");
    }
  }
  // Bottom-up by LEVEL (a reordered manager's cube must be ordered too).
  std::sort(sorted.begin(), sorted.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return level_of(a) < level_of(b);
            });
  Edge acc = kOne;
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    acc = make_node(*it, acc, kZero);
  }
  return acc;
}

}  // namespace brel
