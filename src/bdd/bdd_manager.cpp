#include <algorithm>
#include <stdexcept>

#include "bdd/bdd.hpp"

namespace brel {

using detail::Edge;
using detail::edge_complemented;
using detail::edge_index;
using detail::edge_not;
using detail::kOne;
using detail::kTerminalVar;
using detail::kZero;

// ---------------------------------------------------------------------------
// Bdd handle
// ---------------------------------------------------------------------------

Bdd::Bdd(BddManager* manager, Edge edge) : manager_(manager), edge_(edge) {
  if (manager_ != nullptr) {
    manager_->ref_edge(edge_);
  }
}

Bdd::Bdd(const Bdd& other) : manager_(other.manager_), edge_(other.edge_) {
  if (manager_ != nullptr) {
    manager_->ref_edge(edge_);
  }
}

Bdd::Bdd(Bdd&& other) noexcept : manager_(other.manager_), edge_(other.edge_) {
  other.manager_ = nullptr;
  other.edge_ = kOne;
}

Bdd& Bdd::operator=(const Bdd& other) {
  if (this == &other) {
    return *this;
  }
  if (other.manager_ != nullptr) {
    other.manager_->ref_edge(other.edge_);
  }
  if (manager_ != nullptr) {
    manager_->deref_edge(edge_);
  }
  manager_ = other.manager_;
  edge_ = other.edge_;
  return *this;
}

Bdd& Bdd::operator=(Bdd&& other) noexcept {
  if (this == &other) {
    return *this;
  }
  if (manager_ != nullptr) {
    manager_->deref_edge(edge_);
  }
  manager_ = other.manager_;
  edge_ = other.edge_;
  other.manager_ = nullptr;
  other.edge_ = kOne;
  return *this;
}

Bdd::~Bdd() {
  if (manager_ != nullptr) {
    manager_->deref_edge(edge_);
  }
}

bool Bdd::is_one() const noexcept {
  return manager_ != nullptr && edge_ == kOne;
}
bool Bdd::is_zero() const noexcept {
  return manager_ != nullptr && edge_ == kZero;
}
bool Bdd::is_constant() const noexcept {
  return manager_ != nullptr && detail::edge_is_constant(edge_);
}

Bdd Bdd::operator!() const { return manager_->bdd_not(*this); }
Bdd Bdd::operator&(const Bdd& other) const {
  return manager_->bdd_and(*this, other);
}
Bdd Bdd::operator|(const Bdd& other) const {
  return manager_->bdd_or(*this, other);
}
Bdd Bdd::operator^(const Bdd& other) const {
  return manager_->bdd_xor(*this, other);
}
Bdd Bdd::iff(const Bdd& other) const {
  return !manager_->bdd_xor(*this, other);
}
Bdd Bdd::implies(const Bdd& other) const {
  return manager_->bdd_or(!*this, other);
}

bool Bdd::subset_of(const Bdd& other) const {
  // f <= g  <=>  f & !g == 0, decided by the short-circuiting leq kernel
  // without materializing the conjunction.
  return manager_->leq(*this, other);
}

Bdd Bdd::cofactor(std::uint32_t var, bool phase) const {
  return manager_->cofactor(*this, var, phase);
}

// ---------------------------------------------------------------------------
// Manager: construction, variables
// ---------------------------------------------------------------------------

BddManager::BddManager(std::uint32_t num_vars, std::uint32_t cache_log2)
    : num_vars_(num_vars) {
  if (cache_log2 < 8 || cache_log2 > 28) {
    throw std::invalid_argument("BddManager: cache_log2 out of range [8,28]");
  }
  if (num_vars > kMaxVariables) {
    // Same invariant as kMaxNodeIndex: cofactor_rec packs var << 1 | phase
    // into a 30-bit cache operand field.
    throw std::invalid_argument("BddManager: too many variables");
  }
  nodes_.reserve(1u << 12);
  refcount_.reserve(1u << 12);
  // Node 0: the terminal ONE.
  nodes_.push_back(Node{kTerminalVar, kOne, kOne, 0});
  refcount_.push_back(1);  // never collected
  rehash_unique_table(1u << 12);
  // 2^cache_log2 entries organized as 2-way sets (consecutive pairs); at
  // 16 bytes per entry this is half the memory of the pre-overhaul cache.
  cache_.resize(std::size_t{1} << cache_log2);
  cache_mask_ = (std::uint64_t{1} << (cache_log2 - 1)) - 1;
}

BddManager::~BddManager() = default;

std::uint32_t BddManager::add_vars(std::uint32_t count) {
  if (count > kMaxVariables - num_vars_) {
    throw std::length_error("BddManager: too many variables");
  }
  const std::uint32_t first = num_vars_;
  num_vars_ += count;
  return first;
}

Bdd BddManager::one() { return wrap(kOne); }
Bdd BddManager::zero() { return wrap(kZero); }

Bdd BddManager::var(std::uint32_t var) {
  if (var >= num_vars_) {
    throw std::out_of_range("BddManager::var: unknown variable");
  }
  return wrap(make_node(var, kOne, kZero));
}

Bdd BddManager::literal(std::uint32_t var, bool positive) {
  Bdd v = this->var(var);
  return positive ? v : !v;
}

// ---------------------------------------------------------------------------
// Unique table
// ---------------------------------------------------------------------------

std::uint64_t BddManager::hash_triple(std::uint64_t a, std::uint64_t b,
                                      std::uint64_t c) noexcept {
  std::uint64_t h = a * 0x9E3779B97F4A7C15ull;
  h ^= (b + 0xBF58476D1CE4E5B9ull) + (h << 6) + (h >> 2);
  h *= 0x94D049BB133111EBull;
  h ^= (c + 0x2545F4914F6CDD1Dull) + (h << 6) + (h >> 2);
  h ^= h >> 29;
  return h;
}

void BddManager::rehash_unique_table(std::size_t bucket_count) {
  buckets_.assign(bucket_count, 0);
  for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
    Node& n = nodes_[i];
    if (n.var == kTerminalVar) {
      continue;  // freed slot (var reset when put on the free list)
    }
    const std::uint64_t h =
        hash_triple(n.var, n.hi, n.lo) & (bucket_count - 1);
    n.next = buckets_[h];
    buckets_[h] = i;
  }
}

std::uint32_t BddManager::allocate_node() {
  if (free_list_ != 0) {
    const std::uint32_t idx = free_list_;
    free_list_ = nodes_[idx].next;
    --free_count_;
    return idx;
  }
  if (nodes_.size() > kMaxNodeIndex) {
    // Edges must fit the 30-bit operand fields of the packed computed
    // cache; 2^29 nodes is ~8 GiB of node store, far past practical use.
    throw std::length_error("BddManager: node capacity exceeded");
  }
  nodes_.push_back(Node{});
  refcount_.push_back(0);
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

Edge BddManager::make_node(std::uint32_t var, Edge hi, Edge lo) {
  assert_owning_thread();
  if (hi == lo) {
    return hi;
  }
  // Canonical form: the then-edge is never complemented.
  bool complement_out = false;
  if (edge_complemented(hi)) {
    hi = edge_not(hi);
    lo = edge_not(lo);
    complement_out = true;
  }
  const std::uint64_t h = hash_triple(var, hi, lo) & (buckets_.size() - 1);
  for (std::uint32_t i = buckets_[h]; i != 0; i = nodes_[i].next) {
    const Node& n = nodes_[i];
    if (n.var == var && n.hi == hi && n.lo == lo) {
      const Edge found = i << 1;
      return complement_out ? edge_not(found) : found;
    }
  }
  const std::uint32_t idx = allocate_node();
  nodes_[idx] = Node{var, hi, lo, buckets_[h]};
  refcount_[idx] = 0;
  buckets_[h] = idx;
  ++stats_.nodes_created;
  const std::size_t live = nodes_.size() - 1 - free_count_;
  stats_.live_nodes = live;
  stats_.peak_nodes = std::max(stats_.peak_nodes, live);
  if (live * 2 > buckets_.size()) {
    rehash_unique_table(buckets_.size() * 2);
  }
  const Edge fresh = idx << 1;
  return complement_out ? edge_not(fresh) : fresh;
}

// ---------------------------------------------------------------------------
// Computed cache
// ---------------------------------------------------------------------------

const char* bdd_op_name(BddOp op) noexcept {
  switch (op) {
    case BddOp::Ite:
      return "ite";
    case BddOp::And:
      return "and";
    case BddOp::Xor:
      return "xor";
    case BddOp::Cofactor:
      return "cofactor";
    case BddOp::Leq:
      return "leq";
    case BddOp::Exists:
      return "exists";
    case BddOp::AndExists:
      return "and_exists";
    case BddOp::Constrain:
      return "constrain";
    case BddOp::Restrict:
      return "restrict";
  }
  return "?";
}

std::uint64_t BddManager::hash_key(std::uint64_t key_ab, Edge c) noexcept {
  std::uint64_t h = key_ab * 0x9E3779B97F4A7C15ull;
  h ^= h >> 32;
  h += std::uint64_t{c} * 0xBF58476D1CE4E5B9ull;
  h ^= h >> 29;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 32;
  return h;
}

bool BddManager::cache_lookup(Op op, Edge a, Edge b, Edge c, Edge& out,
                              CacheProbe& probe) {
  assert_owning_thread();  // per-op stats and MRU promotion both write
  const auto op_idx = static_cast<std::size_t>(op);
  ++stats_.op_lookups[op_idx];  // aggregates are folded on stats() read
  probe.key_ab = (std::uint64_t{static_cast<std::uint32_t>(op)} << 60) |
                 (std::uint64_t{a} << 30) | b;
  probe.c = c;
  probe.slot = (hash_key(probe.key_ab, c) & cache_mask_) << 1;
  CacheEntry& primary = cache_[probe.slot];
  if (primary.key_ab == probe.key_ab && primary.c == c) {
    ++stats_.op_hits[op_idx];
    out = primary.result;
    return true;
  }
  CacheEntry& secondary = cache_[probe.slot + 1];
  if (secondary.key_ab == probe.key_ab && secondary.c == c) {
    ++stats_.op_hits[op_idx];
    out = secondary.result;
    std::swap(primary, secondary);  // promote to the MRU way
    return true;
  }
  return false;
}

void BddManager::cache_insert(const CacheProbe& probe, Edge result) {
  CacheEntry& primary = cache_[probe.slot];
  if (primary.key_ab != kEmptyCacheKey) {
    cache_[probe.slot + 1] = primary;  // demote; the LRU way is evicted
  }
  primary = CacheEntry{probe.key_ab, probe.c, result};
}

// ---------------------------------------------------------------------------
// Reference counting and garbage collection
// ---------------------------------------------------------------------------

void BddManager::ref_edge(Edge e) noexcept {
  assert_owning_thread();
  const std::uint32_t idx = edge_index(e);
  if (idx != 0 && refcount_[idx]++ == 0) {
    ++external_roots_;
  }
}

void BddManager::deref_edge(Edge e) noexcept {
  assert_owning_thread();
  const std::uint32_t idx = edge_index(e);
  if (idx != 0 && --refcount_[idx] == 0) {
    --external_roots_;
  }
}

void BddManager::garbage_collect() {
  assert_owning_thread();
  // Mark phase: every externally referenced node is a root.  The mark
  // buffer is a reusable stamp array: a node is marked in this run iff
  // its stamp equals gc_stamp_, so no per-run clearing or allocation.
  if (++gc_stamp_ == 0) {  // stamp wrapped: invalidate all old stamps once
    std::fill(gc_mark_.begin(), gc_mark_.end(), 0u);
    gc_stamp_ = 1;
  }
  gc_mark_.resize(nodes_.size(), 0u);
  const std::uint32_t stamp = gc_stamp_;
  gc_mark_[0] = stamp;
  gc_stack_.clear();
  for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
    if (refcount_[i] > 0 && nodes_[i].var != kTerminalVar) {
      gc_stack_.push_back(i);
    }
  }
  while (!gc_stack_.empty()) {
    const std::uint32_t idx = gc_stack_.back();
    gc_stack_.pop_back();
    if (gc_mark_[idx] == stamp) {
      continue;
    }
    gc_mark_[idx] = stamp;
    const Node& n = nodes_[idx];
    const std::uint32_t hi_idx = edge_index(n.hi);
    const std::uint32_t lo_idx = edge_index(n.lo);
    if (gc_mark_[hi_idx] != stamp) {
      gc_stack_.push_back(hi_idx);
    }
    if (gc_mark_[lo_idx] != stamp) {
      gc_stack_.push_back(lo_idx);
    }
  }
  // Sweep phase: unmarked nodes go to the free list.
  for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
    if (gc_mark_[i] != stamp && nodes_[i].var != kTerminalVar) {
      nodes_[i].var = kTerminalVar;  // tombstone
      nodes_[i].next = free_list_;
      free_list_ = i;
      ++free_count_;
    }
  }
  // The computed cache and unique table reference dead nodes; rebuild both.
  std::fill(cache_.begin(), cache_.end(), CacheEntry{});
  rehash_unique_table(buckets_.size());
  stats_.live_nodes = nodes_.size() - 1 - free_count_;
  ++stats_.gc_runs;
}

void BddManager::garbage_collect_if_needed(std::size_t dead_node_threshold) {
  // Constant time on the decline path: external_roots_ is maintained
  // incrementally on every 0<->1 refcount transition, so deciding "mostly
  // garbage?" is two comparisons — no scan.  (The pre-overhaul version
  // walked every refcount here, on every solver expansion step.)
  ++stats_.gc_checks;
  const std::size_t live = nodes_.size() - 1 - free_count_;
  if (live < dead_node_threshold) {
    return;
  }
  if (live > external_roots_ * 4) {
    garbage_collect();
  }
}

// ---------------------------------------------------------------------------
// Cube / cover conversion
// ---------------------------------------------------------------------------

Bdd BddManager::cube_bdd(const Cube& cube,
                         std::span<const std::uint32_t> var_map) {
  if (var_map.size() != cube.num_vars()) {
    throw std::invalid_argument("cube_bdd: var_map size mismatch");
  }
  // Build bottom-up in descending variable order so make_node sees ordered
  // children; collect (manager-var, phase) pairs first.
  std::vector<std::pair<std::uint32_t, bool>> literals;
  for (std::size_t i = 0; i < cube.num_vars(); ++i) {
    const Lit lit = cube.lit(i);
    if (lit != Lit::DontCare) {
      literals.emplace_back(var_map[i], lit == Lit::One);
    }
  }
  std::sort(literals.begin(), literals.end());
  Edge acc = kOne;
  for (auto it = literals.rbegin(); it != literals.rend(); ++it) {
    acc = it->second ? make_node(it->first, acc, kZero)
                     : make_node(it->first, kZero, acc);
  }
  return wrap(acc);
}

Bdd BddManager::cover_bdd(const Cover& cover,
                          std::span<const std::uint32_t> var_map) {
  Bdd acc = zero();
  for (const Cube& cube : cover.cubes()) {
    acc = acc | cube_bdd(cube, var_map);
  }
  return acc;
}

Edge BddManager::vars_cube(std::span<const std::uint32_t> vars) {
  std::vector<std::uint32_t> sorted(vars.begin(), vars.end());
  std::sort(sorted.begin(), sorted.end());
  Edge acc = kOne;
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    if (*it >= num_vars_) {
      throw std::out_of_range("vars_cube: unknown variable");
    }
    acc = make_node(*it, acc, kZero);
  }
  return acc;
}

}  // namespace brel
