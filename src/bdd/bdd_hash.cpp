/// \file bdd_hash.cpp
/// Per-node memoized canonical hashing (see bdd_hash.hpp for the hash
/// definition and the lockstep contract with the arena-side walk).
///
/// The cache is keyed by node index and guarded by the same stamp idiom
/// as the GC mark array: `chash_stamp_[idx] == chash_epoch_` means the
/// cached value is current.  The epoch is bumped whenever node indices
/// can be reused (garbage_collect, sifting) or the rank map changes —
/// hashes themselves are function-determined and survive reorders, but a
/// freed-and-reallocated index must not inherit the old function's hash.

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_map>

#include "bdd/bdd.hpp"
#include "bdd/bdd_hash.hpp"

namespace brel {

using detail::Edge;
using detail::edge_complemented;
using detail::edge_index;
using detail::edge_regular;
using detail::kOne;

void BddManager::chash_invalidate() noexcept {
  if (++chash_epoch_ == 0) {  // wrap: clear stamps, restart above 0
    std::fill(chash_stamp_.begin(), chash_stamp_.end(), 0u);
    chash_epoch_ = 1;
  }
  // Min-support-var values are function-determined like the hashes, so
  // they share the hashes' lifetime: valid until an index can be reused.
  chash_minvar_.clear();
}

namespace {

/// Rank of a variable under the space's map; the empty span is the
/// identity map.  A variable outside the map (or unranked, 0xFFFFFFFF)
/// means the caller hashed a function whose support leaks out of the
/// memo space — the same misuse make_memo_key would produce a malformed
/// key for, caught here in debug builds.
inline std::uint32_t rank_of_var(std::span<const std::uint32_t> rank_of,
                                 std::uint32_t var) noexcept {
  if (rank_of.empty()) {
    return var;
  }
  assert(var < rank_of.size() && rank_of[var] != 0xFFFFFFFFu &&
         "canonical_hash: variable not ranked by the memo space");
  return rank_of[var];
}

}  // namespace

bool BddManager::chash_cached(std::uint32_t idx) const noexcept {
  return idx < chash_stamp_.size() && chash_stamp_[idx] == chash_epoch_;
}

void BddManager::chash_store(std::uint32_t idx, CanonicalHash128 h,
                             bool flip) {
  if (idx >= chash_stamp_.size()) {
    // cofactor_rec can grow the store mid-walk; size for the current
    // node count so the resize amortizes like the store itself.
    chash_.resize(nodes_.size());
    chash_flip_.resize(nodes_.size());
    chash_stamp_.resize(nodes_.size(), 0u);
  }
  chash_[idx] = h;
  chash_flip_[idx] = flip ? 1u : 0u;
  chash_stamp_[idx] = chash_epoch_;
}

/// Identity-order walk: the in-store DAG is the canonical form, so the
/// record hash of a node is node_hash over its own (var, hi, lo) — an
/// iterative post-order over the uncached cone, exactly the node set
/// serialize_bdd's fast path would emit.  Flip is always 0 here (stored
/// then-edges are never complemented).
CanonicalHash128 BddManager::chash_identity(
    std::uint32_t root_idx, std::span<const std::uint32_t> rank_of) {
  chash_stack_.clear();
  chash_stack_.push_back(root_idx);
  while (!chash_stack_.empty()) {
    const std::uint32_t idx = chash_stack_.back();
    if (chash_cached(idx)) {
      chash_stack_.pop_back();
      continue;
    }
    const Node& n = nodes_[idx];
    const std::uint32_t hi_idx = edge_index(n.hi);
    const std::uint32_t lo_idx = edge_index(n.lo);
    const bool hi_done = chash_cached(hi_idx);
    const bool lo_done = chash_cached(lo_idx);
    if (hi_done && lo_done) {
      chash_stack_.pop_back();
      const CanonicalHash128 h = chash::node_hash(
          rank_of_var(rank_of, n.var),
          chash::edge_hash(chash_[hi_idx], edge_complemented(n.hi)),
          chash::edge_hash(chash_[lo_idx], edge_complemented(n.lo)));
      chash_store(idx, h, /*flip=*/false);
      continue;
    }
    if (!hi_done) {
      chash_stack_.push_back(hi_idx);
    }
    if (!lo_done) {
      chash_stack_.push_back(lo_idx);
    }
  }
  return chash_[root_idx];
}

/// Reordered walk: mirror serialize_bdd's canon recursion — peel the
/// minimum support VARIABLE id with the cofactor kernel and flip the
/// record when the canonical then-edge comes out complemented — but fold
/// hashes instead of emitting nodes.  Cached per regular node index as
/// (record hash, flip), so the recursion is O(new cone) like the walk it
/// mirrors; depth is bounded by the support size.
CanonicalHash128 BddManager::chash_reordered(
    Edge e, std::span<const std::uint32_t> rank_of, bool& flip_out) {
  const Edge er = edge_regular(e);
  if (er == kOne) {
    flip_out = false;
    return chash::kOneHash;
  }
  const std::uint32_t idx = edge_index(er);
  if (chash_cached(idx)) {
    flip_out = chash_flip_[idx] != 0;
    return chash_[idx];
  }
  // min support var: smallest variable ID in the cone (the top variable
  // of the identity-order form), memoized on regular node index and
  // cleared with the hash cache (chash_invalidate).
  std::uint32_t v;
  {
    const auto min_support_var = [&](auto&& self, Edge x) -> std::uint32_t {
      const std::uint32_t xi = edge_index(x);
      if (xi == 0) {
        return detail::kTerminalVar;
      }
      if (const auto it = chash_minvar_.find(xi); it != chash_minvar_.end()) {
        return it->second;
      }
      const Node n = nodes_[xi];
      std::uint32_t m = n.var;
      m = std::min(m, self(self, n.hi));
      m = std::min(m, self(self, n.lo));
      chash_minvar_.emplace(xi, m);
      return m;
    };
    v = min_support_var(min_support_var, er);
  }
  const Edge e0 = cofactor_rec(er, v, false);
  const Edge e1 = cofactor_rec(er, v, true);
  bool c1 = false;
  bool c0 = false;
  const CanonicalHash128 h1 = chash_reordered(e1, rank_of, c1);
  const CanonicalHash128 h0 = chash_reordered(e0, rank_of, c0);
  c1 ^= edge_complemented(e1);
  c0 ^= edge_complemented(e0);
  const bool flip = c1;  // canonical: the then-edge stays regular
  const CanonicalHash128 h =
      chash::node_hash(rank_of_var(rank_of, v), h1,
                       chash::edge_hash(h0, c0 != flip));
  chash_store(idx, h, flip);
  flip_out = flip;
  return h;
}

CanonicalHash128 BddManager::canonical_hash(const Bdd& f) {
  return canonical_hash(f, {}, kIdentityHashSpace);
}

CanonicalHash128 BddManager::canonical_hash(
    const Bdd& f, std::span<const std::uint32_t> rank_of,
    std::uint64_t space_token) {
  if (f.manager() != this) {
    throw std::invalid_argument("canonical_hash: foreign or null handle");
  }
  assert_owning_thread();
  if (space_token == 0 || space_token != chash_space_token_) {
    chash_invalidate();
    chash_space_token_ = space_token;
  }
  if (chash_stamp_.size() < nodes_.size()) {
    chash_.resize(nodes_.size());
    chash_flip_.resize(nodes_.size());
    chash_stamp_.resize(nodes_.size(), 0u);
  }
  // The terminal's record hash re-seeds after every epoch bump.
  chash_[0] = chash::kOneHash;
  chash_flip_[0] = 0;
  chash_stamp_[0] = chash_epoch_;

  const Edge e = f.raw_edge();
  bool flip = false;
  CanonicalHash128 h;
  if (detail::edge_is_constant(e)) {
    h = chash::kOneHash;
  } else if (order_is_identity_) {
    h = chash_identity(edge_index(e), rank_of);
  } else {
    h = chash_reordered(edge_regular(e), rank_of, flip);
  }
  return chash::edge_hash(h, flip != edge_complemented(e));
}

}  // namespace brel
