/// \file bdd_reorder.cpp
/// Dynamic variable reordering: the in-place adjacent-level swap and the
/// Rudell sifting driver on top of it, plus the slot-recycling variable
/// reset and the structural validator the reorder tests lean on.
///
/// The swap is the whole trick (see DESIGN.md §reordering).  To exchange
/// the variables x (level l) and y (level l+1):
///
///   - x-nodes that do not test y anywhere in a child's top simply sink
///     to level l+1 untouched — their table object travels with them
///     (one std::swap of the two SubTables), so nothing is re-bucketed;
///   - an x-node that does test y is rewritten IN PLACE from
///       f = x ? f1 : f0            to
///       f = y ? (x ? f11 : f01) : (x ? f10 : f00)
///     keeping its node index, and therefore its function, its external
///     handles and its raw edges.  The inner x-nodes are obtained through
///     the ordinary unique table (now at level l+1), so sharing and
///     canonicity are preserved;
///   - the then-edge of a rewritten node never needs a complement flip:
///     f1 is stored regular (canonical invariant), hence f11 = hi(f1) is
///     regular, hence make_node(x, f11, f01) returns a regular edge.
///
/// Old children orphaned by a rewrite are freed eagerly through a
/// sift-session reference count (internal parents + one for "externally
/// referenced"), so the sifting driver always sees true live sizes and a
/// long sift cannot balloon the store.  The session counts are built by
/// one O(nodes) scan after the pre-sift garbage_collect() — the manager
/// deliberately does NOT maintain internal reference counts outside
/// reordering; mark-sweep GC stays the steady-state reclamation.
///
/// The computed cache is emptied by that same pre-sift GC and no kernel
/// runs while sifting, so a reorder never leaves stale cache entries
/// behind (entries would even stay *semantically* valid — every cached op
/// is a function-level identity — but constrain/restrict results are
/// order-sensitive heuristics, and re-deriving them under the new order
/// keeps runs reproducible).

#include <algorithm>
#include <stdexcept>
#include <string>

#include "bdd/bdd.hpp"

namespace brel {

using detail::Edge;
using detail::edge_complemented;
using detail::edge_index;
using detail::edge_is_constant;
using detail::kTerminalVar;

void BddManager::sift_deref(Edge e) noexcept {
  std::uint32_t idx = edge_index(e);
  if (idx == 0 || --sift_refs_[idx] != 0) {
    return;
  }
  // Death cascades strictly downward; iterative to bound stack depth.
  std::vector<std::uint32_t>& dead = sift_scratch_;
  dead.clear();
  dead.push_back(idx);
  while (!dead.empty()) {
    idx = dead.back();
    dead.pop_back();
    Node& n = nodes_[idx];
    subtable_remove(subtables_[level_of_var_[n.var]], idx);
    const auto drop_child = [&](Edge child) {
      const std::uint32_t c = edge_index(child);
      if (c != 0 && --sift_refs_[c] == 0) {
        dead.push_back(c);
      }
    };
    drop_child(n.hi);
    drop_child(n.lo);
    n.var = kTerminalVar;  // tombstone
    n.next = free_list_;
    free_list_ = idx;
    ++free_count_;
  }
}

void BddManager::swap_adjacent(std::uint32_t level) {
  const std::uint32_t x = var_at_level_[level];
  const std::uint32_t y = var_at_level_[level + 1];
  ++stats_.reorder_swaps;

  // Interaction fast path: when the session's matrix proves x and y
  // share no root function's support, no x-node can test y — every live
  // node descends from an externally-referenced root whose function
  // (and therefore support) the swaps preserve — so the bucket scan
  // below cannot find anything to rewrite.
  const bool disjoint = !interaction_.empty() && !vars_interact(x, y);
  if (disjoint) {
    ++stats_.reorder_swap_skips;
  }

  // Empty-side fast path: with no x-nodes there is nothing to rewrite,
  // and with no y-nodes nothing can interact (no child can test y), so
  // the swap is a pure table/map flip.  This keeps sifting through
  // sparse or empty levels from paying the bucket scan below — on wide
  // managers most of a variable's journey crosses such levels.
  if (disjoint || subtables_[level].count == 0 ||
      subtables_[level + 1].count == 0) {
    std::swap(subtables_[level], subtables_[level + 1]);
    var_at_level_[level] = y;
    var_at_level_[level + 1] = x;
    level_of_var_[x] = level + 1;
    level_of_var_[y] = level;
    return;
  }

  // Pass 1: unlink every x-node that interacts with y (tests it at a
  // child's top).  The rest of x's table stays linked and just sinks.
  std::vector<std::uint32_t>& interacting = swap_interacting_;
  interacting.clear();
  SubTable& x_table = subtables_[level];
  for (std::uint32_t b = 0; b < x_table.buckets.size(); ++b) {
    std::uint32_t* slot = &x_table.buckets[b];
    while (*slot != 0) {
      const std::uint32_t idx = *slot;
      Node& n = nodes_[idx];
      const bool interacts =
          (!edge_is_constant(n.hi) && node_var(n.hi) == y) ||
          (!edge_is_constant(n.lo) && node_var(n.lo) == y);
      if (interacts) {
        *slot = n.next;
        --x_table.count;
        interacting.push_back(idx);
      } else {
        slot = &n.next;
      }
    }
  }

  // Flip the order: y's whole table rises to `level`, x's remaining
  // (non-interacting) nodes sink with their table to `level + 1`.
  std::swap(subtables_[level], subtables_[level + 1]);
  var_at_level_[level] = y;
  var_at_level_[level + 1] = x;
  level_of_var_[x] = level + 1;
  level_of_var_[y] = level;

  // Pass 2: rewrite the detached nodes in place.  Old-children derefs
  // are deferred past the loop so a node freed by one rewrite can never
  // be a pending rewrite's child mid-flight.
  std::vector<Edge>& retired = swap_retired_;
  retired.clear();
  retired.reserve(interacting.size() * 2);
  for (const std::uint32_t idx : interacting) {
    // Copy the fields first: make_node below may grow nodes_.
    const Node n = nodes_[idx];
    const bool hi_tests_y = !edge_is_constant(n.hi) && node_var(n.hi) == y;
    const bool lo_tests_y = !edge_is_constant(n.lo) && node_var(n.lo) == y;
    // n.hi is regular, so its stored children ARE its cofactors; n.lo's
    // complement bit is honoured by hi_of/lo_of.
    const Edge f11 = hi_tests_y ? hi_of(n.hi) : n.hi;
    const Edge f10 = hi_tests_y ? lo_of(n.hi) : n.hi;
    const Edge f01 = lo_tests_y ? hi_of(n.lo) : n.lo;
    const Edge f00 = lo_tests_y ? lo_of(n.lo) : n.lo;
    const Edge g1 = make_node(x, f11, f01);
    const Edge g0 = make_node(x, f10, f00);
    assert(!edge_complemented(g1) &&
           "swap_adjacent: rewritten then-edge must stay regular");
    assert(g1 != g0 && "swap_adjacent: interacting node lost its variable");
    const auto take = [this](Edge e) {
      const std::uint32_t c = edge_index(e);
      if (c != 0) {
        ++sift_refs_[c];
      }
    };
    take(g1);
    take(g0);
    retired.push_back(n.hi);
    retired.push_back(n.lo);
    Node& slot = nodes_[idx];  // re-fetch: nodes_ may have reallocated
    slot.var = y;
    slot.hi = g1;
    slot.lo = g0;
    subtable_insert(subtables_[level], idx);
  }
  for (const Edge e : retired) {
    sift_deref(e);
  }
  stats_.live_nodes = live_nodes();
}

void BddManager::build_interaction_matrix() {
  interaction_words_ = (num_vars_ + 63) / 64;
  interaction_.assign(static_cast<std::size_t>(num_vars_) *
                          interaction_words_,
                      0u);
  const auto mark = [this](std::uint32_t a, std::uint32_t b) {
    interaction_[a * interaction_words_ + (b >> 6)] |= 1ull << (b & 63);
    interaction_[b * interaction_words_ + (a >> 6)] |= 1ull << (a & 63);
  };
  // One DFS per externally-referenced root, collecting its support and
  // marking every pair in it.  Shared nodes are re-walked per root (each
  // root needs its own support set); stamps make the per-root visited
  // set O(1) to reset.  Cost is O(Σ root DAG sizes) on the post-GC
  // store, once per sift session, against O(vars²) swaps saved from
  // bucket scans.
  std::vector<std::uint32_t> visited(nodes_.size(), 0u);
  std::vector<char> in_support(num_vars_, 0);
  std::vector<std::uint32_t> support;
  std::vector<std::uint32_t> stack;
  std::uint32_t stamp = 0;
  for (std::uint32_t root = 1; root < nodes_.size(); ++root) {
    if (nodes_[root].var == kTerminalVar || refcount_[root] == 0) {
      continue;
    }
    ++stamp;
    support.clear();
    stack.clear();
    stack.push_back(root);
    visited[root] = stamp;
    while (!stack.empty()) {
      const std::uint32_t idx = stack.back();
      stack.pop_back();
      const Node& n = nodes_[idx];
      if (!in_support[n.var]) {
        in_support[n.var] = 1;
        support.push_back(n.var);
      }
      const auto follow = [&](Edge e) {
        const std::uint32_t c = edge_index(e);
        if (c != 0 && visited[c] != stamp) {
          visited[c] = stamp;
          stack.push_back(c);
        }
      };
      follow(n.hi);
      follow(n.lo);
    }
    for (std::size_t p = 0; p < support.size(); ++p) {
      in_support[support[p]] = 0;
      for (std::size_t q = p + 1; q < support.size(); ++q) {
        mark(support[p], support[q]);
      }
    }
  }
}

void BddManager::sift_var(std::uint32_t var, std::size_t size_limit) {
  const std::uint32_t bottom = num_vars_ - 1;
  std::uint32_t level = level_of_var_[var];
  std::uint32_t best_level = level;
  std::size_t best_size = live_nodes();

  const auto record = [&]() {
    const std::size_t size = live_nodes();
    if (size < best_size) {
      best_size = size;
      best_level = level_of_var_[var];
    }
  };
  const auto walk_down = [&]() {
    while (level < bottom) {
      swap_adjacent(level);
      ++level;
      record();
      if (live_nodes() > size_limit) {
        break;
      }
    }
  };
  const auto walk_up = [&]() {
    while (level > 0) {
      swap_adjacent(level - 1);
      --level;
      record();
      if (live_nodes() > size_limit) {
        break;
      }
    }
  };

  // Nearer boundary first (fewer swaps wasted when the variable belongs
  // roughly where it is), then all the way to the other end, then settle
  // at the best position seen.  `level` swaps reach the top,
  // `bottom - level` the bottom.
  if (level <= bottom - level) {
    walk_up();
    walk_down();
  } else {
    walk_down();
    walk_up();
  }
  while (level < best_level) {
    swap_adjacent(level);
    ++level;
  }
  while (level > best_level) {
    swap_adjacent(level - 1);
    --level;
  }
}

void BddManager::reorder(double max_growth) {
  reorder_internal(max_growth, /*already_collected=*/false);
}

void BddManager::reorder_internal(double max_growth, bool already_collected) {
  assert_owning_thread();
  if (num_vars_ < 2) {
    return;
  }
  // Start from a clean store: only reachable nodes (the sift refcounts
  // below assume every node has a parent or an external handle), empty
  // computed cache.  The auto trigger may have collected moments ago
  // with nothing created since — skip the redundant full pass then.
  if (!already_collected) {
    garbage_collect();
  }
  const std::size_t before = live_nodes();
  stats_.reorder_nodes_before = before;

  // Sift-session reference counts: internal parents + 1 if externally
  // referenced.  Post-GC every live node scores >= 1.
  sift_refs_.assign(nodes_.size(), 0u);
  for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.var == kTerminalVar) {
      continue;
    }
    const auto bump = [&](Edge e) {
      const std::uint32_t c = edge_index(e);
      if (c != 0) {
        ++sift_refs_[c];
      }
    };
    bump(n.hi);
    bump(n.lo);
    if (refcount_[i] > 0) {
      ++sift_refs_[i];
    }
  }
  build_interaction_matrix();
  sifting_ = true;

  // Rudell order: densest level first; empty variables are skipped (a
  // swap with an empty side is just a map flip, but sifting a variable
  // nothing tests cannot improve anything).
  std::vector<std::uint32_t> vars;
  vars.reserve(num_vars_);
  for (std::uint32_t v = 0; v < num_vars_; ++v) {
    if (subtables_[level_of_var_[v]].count > 0) {
      vars.push_back(v);
    }
  }
  std::sort(vars.begin(), vars.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              const std::size_t ca = subtables_[level_of_var_[a]].count;
              const std::size_t cb = subtables_[level_of_var_[b]].count;
              return ca != cb ? ca > cb : a < b;
            });
  for (const std::uint32_t v : vars) {
    const std::size_t start = live_nodes();
    const auto limit = static_cast<std::size_t>(
        static_cast<double>(start) * std::max(max_growth, 1.0));
    sift_var(v, std::max(limit, start + 2));
  }

  sifting_ = false;
  sift_refs_.clear();
  interaction_.clear();
  order_is_identity_ = true;
  for (std::uint32_t level = 0; level < num_vars_; ++level) {
    if (var_at_level_[level] != level) {
      order_is_identity_ = false;
      break;
    }
  }
  // Sifting frees orphaned nodes eagerly and reuses their indices, so
  // cached canonical hashes may now name different functions.  (The
  // hashes themselves are order-independent — live roots re-hash to the
  // same value afterwards; test_memo_keys.cpp pins that.)
  chash_invalidate();
  stats_.live_nodes = live_nodes();
  stats_.reorder_nodes_after = stats_.live_nodes;
  ++stats_.reorders;
}

bool BddManager::reset_variables() {
  assert_owning_thread();
  if (external_roots_ != 0) {
    return false;  // live handles pin their variables' meaning
  }
  // Nothing is referenced: drop every node (capacity retained), every
  // variable and the whole order in one stroke.
  nodes_.resize(1);
  refcount_.resize(1);
  free_list_ = 0;
  free_count_ = 0;
  num_vars_ = 0;
  subtables_.clear();
  level_of_var_.clear();
  var_at_level_.clear();
  order_is_identity_ = true;
  reorder_threshold_ = reorder_first_threshold_;
  std::fill(cache_.begin(), cache_.end(), CacheEntry{});
  gc_mark_.clear();
  chash_invalidate();
  stats_.live_nodes = 0;
  return true;
}

void BddManager::seed_block_order(std::uint32_t first,
                                  std::span<const std::uint32_t> ranks) {
  assert_owning_thread();
  const auto fail = [](const char* what) {
    throw std::invalid_argument(std::string("seed_block_order: ") + what);
  };
  if (first > num_vars_ || ranks.size() != num_vars_ - first) {
    fail("block does not cover the trailing variables");
  }
  const std::uint32_t count = static_cast<std::uint32_t>(ranks.size());
  std::vector<bool> seen(count, false);
  for (const std::uint32_t r : ranks) {
    if (r >= count || seen[r]) {
      fail("ranks are not a permutation of the block");
    }
    seen[r] = true;
  }
  // The block must sit at the tail of the order in identity relative
  // order with every level empty — exactly what add_vars leaves behind.
  // Then moving variable first+ranks[L] to level first+L is a pure
  // rewrite of the two inverse index maps: with no nodes at any touched
  // level there is nothing to re-hash or re-order.
  for (std::uint32_t l = 0; l < count; ++l) {
    if (var_at_level_[first + l] != first + l) {
      fail("block is not at the tail of the order");
    }
    if (subtables_[first + l].count != 0) {
      fail("a level of the block already holds nodes");
    }
  }
  for (std::uint32_t l = 0; l < count; ++l) {
    const std::uint32_t v = first + ranks[l];
    var_at_level_[first + l] = v;
    level_of_var_[v] = first + l;
  }
  order_is_identity_ = true;
  for (std::uint32_t level = 0; level < num_vars_; ++level) {
    if (var_at_level_[level] != level) {
      order_is_identity_ = false;
      break;
    }
  }
}

void BddManager::check_integrity() const {
  const auto fail = [](const std::string& what) {
    throw std::logic_error("BddManager::check_integrity: " + what);
  };
  if (level_of_var_.size() != num_vars_ || var_at_level_.size() != num_vars_ ||
      subtables_.size() != num_vars_) {
    fail("order/table arrays out of sync with num_vars");
  }
  for (std::uint32_t level = 0; level < num_vars_; ++level) {
    if (level_of_var_[var_at_level_[level]] != level) {
      fail("level_of_var / var_at_level are not inverse permutations");
    }
  }
  // Every live node: canonical, ordered, in exactly its level's table.
  std::size_t live = 0;
  std::size_t externally_referenced = 0;
  for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.var == kTerminalVar) {
      if (refcount_[i] != 0) {
        fail("freed node with a nonzero refcount");
      }
      continue;
    }
    ++live;
    if (refcount_[i] > 0) {
      ++externally_referenced;
    }
    if (n.var >= num_vars_) {
      fail("node variable out of range");
    }
    if (edge_complemented(n.hi)) {
      fail("complemented then-edge (canonical form violated)");
    }
    if (n.hi == n.lo) {
      fail("redundant node (hi == lo)");
    }
    const std::uint32_t parent_level = level_of_var_[n.var];
    if (node_level(n.hi) <= parent_level || node_level(n.lo) <= parent_level) {
      fail("child level not strictly below its parent");
    }
    const auto live_child = [&](Edge e) {
      return edge_index(e) == 0 ||
             nodes_[edge_index(e)].var != kTerminalVar;
    };
    if (!live_child(n.hi) || !live_child(n.lo)) {
      fail("live node references a freed child");
    }
  }
  if (live != live_nodes()) {
    fail("free_count does not match the tombstone population");
  }
  if (externally_referenced != external_roots_) {
    fail("external_roots_ drifted from the refcount array");
  }
  // Unique-table membership: each live node appears exactly once, in the
  // bucket its (var, hi, lo) hashes to, in its level's table.
  std::vector<bool> seen(nodes_.size(), false);
  std::size_t chained = 0;
  for (std::uint32_t level = 0; level < num_vars_; ++level) {
    const SubTable& table = subtables_[level];
    std::size_t count = 0;
    for (std::uint32_t b = 0; b < table.buckets.size(); ++b) {
      for (std::uint32_t i = table.buckets[b]; i != 0; i = nodes_[i].next) {
        const Node& n = nodes_[i];
        if (seen[i]) {
          fail("node linked twice in the unique tables");
        }
        seen[i] = true;
        ++count;
        ++chained;
        if (n.var == kTerminalVar) {
          fail("freed node still chained in a unique table");
        }
        if (level_of_var_[n.var] != level) {
          fail("node chained in the wrong level's table");
        }
        if ((hash_triple(n.var, n.hi, n.lo) & (table.buckets.size() - 1)) !=
            b) {
          fail("node chained in the wrong bucket");
        }
      }
    }
    if (count != table.count) {
      fail("subtable count drifted from its chains");
    }
  }
  if (chained != live) {
    fail("a live node is missing from the unique tables");
  }
  // Canonicity: no two live nodes share (var, hi, lo).  Sorting the
  // exact triples keeps this O(n log n) instead of per-bucket quadratic.
  std::vector<std::array<std::uint32_t, 3>> triples;
  triples.reserve(live);
  for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.var != kTerminalVar) {
      triples.push_back({n.var, n.hi, n.lo});
    }
  }
  std::sort(triples.begin(), triples.end());
  if (std::adjacent_find(triples.begin(), triples.end()) != triples.end()) {
    fail("duplicate (var, hi, lo) triple (canonicity violated)");
  }
}

}  // namespace brel
