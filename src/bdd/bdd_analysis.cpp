#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "bdd/bdd.hpp"

namespace brel {

using detail::Edge;
using detail::edge_index;
using detail::edge_is_constant;
using detail::edge_not;
using detail::edge_regular;
using detail::kOne;
using detail::kZero;

std::size_t Bdd::size() const {
  if (manager_ == nullptr) {
    return 0;
  }
  std::unordered_set<std::uint32_t> visited;
  std::vector<std::uint32_t> stack{edge_index(edge_)};
  while (!stack.empty()) {
    const std::uint32_t idx = stack.back();
    stack.pop_back();
    if (!visited.insert(idx).second || idx == 0) {
      continue;
    }
    stack.push_back(edge_index(manager_->nodes_[idx].hi));
    stack.push_back(edge_index(manager_->nodes_[idx].lo));
  }
  return visited.size();
}

std::vector<std::uint32_t> Bdd::support() const {
  std::vector<std::uint32_t> vars;
  if (manager_ == nullptr) {
    return vars;
  }
  std::unordered_set<std::uint32_t> visited;
  std::unordered_set<std::uint32_t> seen_vars;
  std::vector<std::uint32_t> stack{edge_index(edge_)};
  while (!stack.empty()) {
    const std::uint32_t idx = stack.back();
    stack.pop_back();
    if (idx == 0 || !visited.insert(idx).second) {
      continue;
    }
    seen_vars.insert(manager_->nodes_[idx].var);
    stack.push_back(edge_index(manager_->nodes_[idx].hi));
    stack.push_back(edge_index(manager_->nodes_[idx].lo));
  }
  vars.assign(seen_vars.begin(), seen_vars.end());
  std::sort(vars.begin(), vars.end());
  return vars;
}

bool Bdd::eval(const std::vector<bool>& assignment) const {
  if (manager_ == nullptr) {
    throw std::logic_error("Bdd::eval: null handle");
  }
  if (assignment.size() < manager_->num_vars()) {
    throw std::invalid_argument("Bdd::eval: assignment too short");
  }
  Edge e = edge_;
  while (!edge_is_constant(e)) {
    const std::uint32_t v = manager_->node_var(e);
    e = assignment[v] ? manager_->hi_of(e) : manager_->lo_of(e);
  }
  return e == kOne;
}

double BddManager::sat_count(const Bdd& f, std::uint32_t num_vars_total) {
  if (f.manager() != this) {
    throw std::invalid_argument("sat_count: operand from a different manager");
  }
  // Compute the satisfying fraction p(e) in [0,1]; every value is a dyadic
  // rational with denominator 2^depth, exact in double up to 2^-52.
  std::unordered_map<std::uint32_t, double> memo;  // on regular node index
  auto rec = [this, &memo](auto&& self, Edge e) -> double {
    const bool negated = detail::edge_complemented(e);
    const std::uint32_t idx = edge_index(e);
    double p = 0.0;
    if (idx == 0) {
      p = 1.0;  // regular edge to the terminal is ONE
    } else if (const auto it = memo.find(idx); it != memo.end()) {
      p = it->second;
    } else {
      const Node& n = nodes_[idx];
      p = 0.5 * self(self, n.hi) + 0.5 * self(self, n.lo);
      memo.emplace(idx, p);
    }
    return negated ? 1.0 - p : p;
  };
  const double fraction = rec(rec, f.raw_edge());
  double scale = 1.0;
  for (std::uint32_t i = 0; i < num_vars_total; ++i) {
    scale *= 2.0;
  }
  return fraction * scale;
}

Cube BddManager::shortest_cube(const Bdd& f) {
  if (f.manager() != this) {
    throw std::invalid_argument(
        "shortest_cube: operand from a different manager");
  }
  if (f.is_zero()) {
    throw std::invalid_argument("shortest_cube: function is empty");
  }
  // Minimum-literal implicant.  Unlike a plain BDD shortest path (which
  // must assign a literal at every node it traverses), the recursion may
  // also *skip* the top variable by descending into f|v=1 ∧ f|v=0.  The
  // paper approximates this with the BDD shortest path (Sec. 7.4); the
  // exact version below finds a genuinely largest cube, which serves the
  // same split-selection role.
  constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();
  std::unordered_map<Edge, std::size_t> memo;
  auto cost = [this, &memo](auto&& self, Edge e) -> std::size_t {
    if (e == kOne) {
      return 0;
    }
    if (e == kZero) {
      return kInf;
    }
    if (const auto it = memo.find(e); it != memo.end()) {
      return it->second;
    }
    const Edge hi = hi_of(e);
    const Edge lo = lo_of(e);
    const std::size_t chi = self(self, hi);
    const std::size_t clo = self(self, lo);
    const std::size_t cboth = self(self, and_rec(hi, lo));
    std::size_t best = cboth;  // skipping v costs no literal
    best = std::min(best, chi == kInf ? kInf : chi + 1);
    best = std::min(best, clo == kInf ? kInf : clo + 1);
    memo.emplace(e, best);
    return best;
  };
  (void)cost(cost, f.raw_edge());
  // Reconstruction: at each node follow the choice that realizes the memo
  // value, preferring the literal-free descent.
  Cube cube(num_vars_);
  Edge e = f.raw_edge();
  while (e != kOne) {
    const std::uint32_t v = node_var(e);
    const Edge hi = hi_of(e);
    const Edge lo = lo_of(e);
    const Edge both = and_rec(hi, lo);
    const auto lookup = [&](Edge x) -> std::size_t {
      if (x == kOne) {
        return 0;
      }
      if (x == kZero) {
        return kInf;
      }
      return memo.at(x);
    };
    const std::size_t goal = lookup(e);
    if (lookup(both) == goal) {
      e = both;
    } else if (lookup(hi) != kInf && lookup(hi) + 1 == goal) {
      cube.set_lit(v, Lit::One);
      e = hi;
    } else {
      cube.set_lit(v, Lit::Zero);
      e = lo;
    }
  }
  return cube;
}

std::vector<bool> BddManager::pick_minterm(const Bdd& f) {
  if (f.manager() != this) {
    throw std::invalid_argument(
        "pick_minterm: operand from a different manager");
  }
  if (f.is_zero()) {
    throw std::invalid_argument("pick_minterm: function is empty");
  }
  std::vector<bool> assignment(num_vars_, false);
  Edge e = f.raw_edge();
  while (e != kOne) {
    const std::uint32_t v = node_var(e);
    if (hi_of(e) != kZero) {
      assignment[v] = true;
      e = hi_of(e);
    } else {
      e = lo_of(e);
    }
  }
  return assignment;
}

void BddManager::foreach_minterm(
    const Bdd& f, std::span<const std::uint32_t> vars,
    const std::function<void(const std::vector<bool>&)>& visit) {
  if (f.manager() != this) {
    throw std::invalid_argument(
        "foreach_minterm: operand from a different manager");
  }
  for (std::size_t i = 1; i < vars.size(); ++i) {
    if (vars[i - 1] >= vars[i]) {
      throw std::invalid_argument(
          "foreach_minterm: vars must be strictly ascending");
    }
  }
  // The recursion peels variables top-down, so it must walk them in the
  // manager's current LEVEL order (== var order only while no reorder
  // has happened); the enumeration set and the visit assignments are
  // identical either way.
  std::vector<std::uint32_t> by_level(vars.begin(), vars.end());
  std::sort(by_level.begin(), by_level.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return level_of(a) < level_of(b);
            });
  std::vector<bool> assignment(num_vars_, false);
  auto rec = [&](auto&& self, std::size_t depth, Edge e) -> void {
    if (e == kZero) {
      return;
    }
    if (depth == by_level.size()) {
      if (!edge_is_constant(e)) {
        throw std::logic_error(
            "foreach_minterm: function depends on variables outside vars");
      }
      if (e == kOne) {
        visit(assignment);
      }
      return;
    }
    const std::uint32_t v = by_level[depth];
    if (!edge_is_constant(e) && node_level(e) < level_of(v)) {
      throw std::logic_error(
          "foreach_minterm: function depends on variables outside vars");
    }
    assignment[v] = false;
    self(self, depth + 1, cofactor_top(e, v, false));
    assignment[v] = true;
    self(self, depth + 1, cofactor_top(e, v, true));
    assignment[v] = false;
  };
  rec(rec, 0, f.raw_edge());
}

}  // namespace brel
