#pragma once
/// \file bdd.hpp
/// A reduced ordered BDD package with complement edges.
///
/// This is the substrate the BREL solver runs on (the paper used CUDD; see
/// DESIGN.md substitution 1).  The canonical form is the classic one: the
/// then-edge of a node is never complemented, there is a single terminal
/// node (ONE), and ZERO is the complemented edge to it.  Negation is O(1).
///
/// `BddManager` owns the node store, the unique table and the computed
/// cache.  `Bdd` is a reference-counted RAII handle to an edge; all user
/// code manipulates `Bdd` values.  The manager is single-threaded.
///
/// Operations provided (each in its own translation unit):
///   - bdd_manager.cpp : node creation, per-level unique tables, GC
///   - bdd_ops.cpp     : ITE and the derived connectives
///   - bdd_quant.cpp   : existential/universal quantification, compose
///   - bdd_minimize.cpp: generalized cofactors (constrain, restrict)
///   - bdd_isop.cpp    : Minato-Morreale irredundant SOP extraction
///   - bdd_analysis.cpp: satcount, support, shortest path, eval, dag size
///   - bdd_reorder.cpp : dynamic variable reordering (swap + sifting)
///   - bdd_io.cpp      : dot export and debugging dumps
///
/// Variable order: a node stores a stable *variable id*; where that
/// variable currently sits in the order is a separate *level* looked up
/// through the `level_of_var_` / `var_at_level_` indirection.  Every
/// recursive kernel recurses on levels while edges keep their var ids,
/// which is what lets `reorder()` (Rudell sifting over in-place adjacent
/// swaps) change the order under live external handles: a `Bdd` keeps
/// denoting the same function across any number of reorders.

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bdd/bdd_hash.hpp"
#include "cover/cover.hpp"
#include "cover/cube.hpp"

namespace brel {

class BddManager;

namespace detail {

/// An edge is a node index shifted left once, with the low bit holding the
/// complement attribute.  Edge 0 is the constant ONE, edge 1 is ZERO.
using Edge = std::uint32_t;

inline constexpr Edge kOne = 0;
inline constexpr Edge kZero = 1;
inline constexpr std::uint32_t kTerminalVar = 0xFFFFFFFFu;

[[nodiscard]] inline constexpr Edge edge_not(Edge e) noexcept {
  return e ^ 1u;
}
[[nodiscard]] inline constexpr std::uint32_t edge_index(Edge e) noexcept {
  return e >> 1;
}
[[nodiscard]] inline constexpr bool edge_complemented(Edge e) noexcept {
  return (e & 1u) != 0;
}
[[nodiscard]] inline constexpr Edge edge_regular(Edge e) noexcept {
  return e & ~1u;
}
[[nodiscard]] inline constexpr bool edge_is_constant(Edge e) noexcept {
  return edge_index(e) == 0;
}

}  // namespace detail

/// Reference-counted handle to a BDD.  A default-constructed handle is
/// "null" and belongs to no manager; every other handle keeps its root node
/// (and hence the whole DAG under it) alive across garbage collections.
class Bdd {
 public:
  Bdd() = default;
  Bdd(const Bdd& other);
  Bdd(Bdd&& other) noexcept;
  Bdd& operator=(const Bdd& other);
  Bdd& operator=(Bdd&& other) noexcept;
  ~Bdd();

  [[nodiscard]] bool is_null() const noexcept { return manager_ == nullptr; }
  [[nodiscard]] BddManager* manager() const noexcept { return manager_; }

  [[nodiscard]] bool is_one() const noexcept;
  [[nodiscard]] bool is_zero() const noexcept;
  [[nodiscard]] bool is_constant() const noexcept;

  /// Canonicity makes equality a pointer comparison.
  [[nodiscard]] bool operator==(const Bdd& other) const noexcept {
    return manager_ == other.manager_ && edge_ == other.edge_;
  }

  /// Logical connectives (delegate to the owning manager).
  [[nodiscard]] Bdd operator!() const;
  [[nodiscard]] Bdd operator&(const Bdd& other) const;
  [[nodiscard]] Bdd operator|(const Bdd& other) const;
  [[nodiscard]] Bdd operator^(const Bdd& other) const;
  /// Boolean biconditional (XNOR).
  [[nodiscard]] Bdd iff(const Bdd& other) const;
  /// Material implication (!this | other).
  [[nodiscard]] Bdd implies(const Bdd& other) const;

  /// True iff this <= other as functions (this implies other everywhere).
  [[nodiscard]] bool subset_of(const Bdd& other) const;

  /// Positive/negative cofactor with respect to variable `var`.
  [[nodiscard]] Bdd cofactor(std::uint32_t var, bool phase) const;

  /// Number of nodes in the DAG rooted here (terminal included).
  [[nodiscard]] std::size_t size() const;

  /// Support as a sorted list of variable indices.
  [[nodiscard]] std::vector<std::uint32_t> support() const;

  /// Evaluate under a complete assignment (assignment[i] = variable i).
  [[nodiscard]] bool eval(const std::vector<bool>& assignment) const;

  /// Raw edge (for hashing / canonical ids).  Stable until the handle dies.
  [[nodiscard]] detail::Edge raw_edge() const noexcept { return edge_; }

 private:
  friend class BddManager;
  Bdd(BddManager* manager, detail::Edge edge);

  BddManager* manager_ = nullptr;
  detail::Edge edge_ = detail::kOne;
};

/// Manager-independent form of a BDD (bdd_transfer.hpp): the DAG as a
/// child-before-parent node list plus a root edge.  The unit of cross-
/// manager (and cross-thread) relation transfer.
struct SerializedBdd;

/// Result of ISOP extraction: an irredundant SOP cover together with the
/// function it denotes (which lies inside the requested interval).
struct IsopResult {
  Cover cover;   ///< irredundant prime-ish cover in positional notation
  Bdd function;  ///< BDD of the cover
};

/// Dynamic-variable-reordering policy of the layers above the manager
/// (SolverOptions::reorder; PoolOptions inherit it through the embedded
/// SolverOptions).  `Off` never reorders (the default — every result and
/// cost stays bit-identical to a build without reordering).  `On` sifts
/// once up front, before the work starts.  `Auto` arms the GC-coupled
/// trigger (BddManager::set_auto_reorder): sifting runs whenever the live
/// node count crosses an adaptive threshold.
enum class ReorderMode { Off, On, Auto };

/// Resolve a configured mode against the BREL_REORDER environment
/// variable ("off"/"on"/"auto"): when the variable is set to a valid
/// value it wins (the CI hook that re-runs whole suites under forced
/// reordering); otherwise `configured` is returned unchanged.
[[nodiscard]] ReorderMode resolve_reorder_mode(ReorderMode configured);

/// Operation tag of a computed-cache entry.  Public so per-op cache
/// statistics (BddStats::op_lookups / op_hits) are interpretable by
/// benchmarks and tests.
enum class BddOp : std::uint32_t {
  Ite = 0,
  And,
  Xor,
  Cofactor,
  Leq,
  Exists,
  AndExists,
  Constrain,
  Restrict,
};
inline constexpr std::size_t kBddOpCount = 9;
/// Short stable name of an op tag ("and", "ite", ...).
[[nodiscard]] const char* bdd_op_name(BddOp op) noexcept;

/// Operational statistics (monotone counters; see BddManager::stats()).
struct BddStats {
  std::size_t live_nodes = 0;       ///< nodes currently in the unique table
  std::size_t peak_nodes = 0;       ///< maximum live nodes ever observed
  std::uint64_t cache_hits = 0;     ///< computed-table hits
  std::uint64_t cache_lookups = 0;  ///< computed-table probes
  std::uint64_t gc_runs = 0;        ///< completed garbage collections
  std::uint64_t gc_checks = 0;      ///< garbage_collect_if_needed() calls
  std::uint64_t nodes_created = 0;  ///< total unique-table insertions
  // -- dynamic reordering (bdd_reorder.cpp) --
  std::uint64_t reorders = 0;       ///< completed sifting runs
  std::uint64_t reorder_swaps = 0;  ///< adjacent-level swaps performed
  /// Swaps short-circuited to a pure table flip because the interaction
  /// matrix proved the two variables share no root function's support.
  std::uint64_t reorder_swap_skips = 0;
  std::size_t reorder_nodes_before = 0;  ///< live nodes entering last sift
  std::size_t reorder_nodes_after = 0;   ///< live nodes leaving last sift
  /// Per-op computed-table probes/hits, indexed by BddOp.
  std::array<std::uint64_t, kBddOpCount> op_lookups{};
  std::array<std::uint64_t, kBddOpCount> op_hits{};

  [[nodiscard]] double hit_rate() const noexcept {
    return cache_lookups == 0
               ? 0.0
               : static_cast<double>(cache_hits) /
                     static_cast<double>(cache_lookups);
  }
};

/// Owns every BDD node.  Create variables with var(); combine them through
/// Bdd operators or the named operations below.
class BddManager {
 public:
  /// `cache_log2` sets the computed-table size to 2^cache_log2 entries.
  explicit BddManager(std::uint32_t num_vars, std::uint32_t cache_log2 = 18);
  ~BddManager();

  BddManager(const BddManager&) = delete;
  BddManager& operator=(const BddManager&) = delete;

  [[nodiscard]] std::uint32_t num_vars() const noexcept { return num_vars_; }

  /// Add `count` fresh variables at the bottom of the order; returns the
  /// index of the first new variable.
  std::uint32_t add_vars(std::uint32_t count);

  [[nodiscard]] Bdd one();
  [[nodiscard]] Bdd zero();
  /// The projection function of variable `var`.
  [[nodiscard]] Bdd var(std::uint32_t var);
  /// Literal: the variable or its complement.
  [[nodiscard]] Bdd literal(std::uint32_t var, bool positive);

  /// If-then-else: f ? g : h — the universal connective.
  [[nodiscard]] Bdd ite(const Bdd& f, const Bdd& g, const Bdd& h);

  [[nodiscard]] Bdd bdd_and(const Bdd& f, const Bdd& g);
  [[nodiscard]] Bdd bdd_or(const Bdd& f, const Bdd& g);
  [[nodiscard]] Bdd bdd_xor(const Bdd& f, const Bdd& g);
  [[nodiscard]] Bdd bdd_not(const Bdd& f);

  /// True iff f <= g as functions.  Short-circuits on the first witness
  /// minterm of f & !g instead of materializing that conjunction.
  [[nodiscard]] bool leq(const Bdd& f, const Bdd& g);

  /// Positive/negative cofactor of f with respect to a single variable
  /// (dedicated kernel; cheaper than constrain over the literal).
  [[nodiscard]] Bdd cofactor(const Bdd& f, std::uint32_t var, bool phase);

  /// Conjunction/disjunction over a whole range.
  [[nodiscard]] Bdd big_and(std::span<const Bdd> fs);
  [[nodiscard]] Bdd big_or(std::span<const Bdd> fs);

  /// Existential quantification of `vars` (∃vars f).
  [[nodiscard]] Bdd exists(const Bdd& f, std::span<const std::uint32_t> vars);
  /// Universal quantification of `vars` (∀vars f).
  [[nodiscard]] Bdd forall(const Bdd& f, std::span<const std::uint32_t> vars);
  /// Relational product ∃vars (f ∧ g) computed without the intermediate.
  [[nodiscard]] Bdd and_exists(const Bdd& f, const Bdd& g,
                               std::span<const std::uint32_t> vars);

  /// Simultaneous substitution: variable i is replaced by substitution[i].
  /// The vector must have one (possibly identity) entry per variable.
  [[nodiscard]] Bdd compose(const Bdd& f, std::span<const Bdd> substitution);

  /// Generalized cofactor of Coudert/Madre; requires care != 0.
  /// Agrees with f on `care`, usually smaller than f.
  [[nodiscard]] Bdd constrain(const Bdd& f, const Bdd& care);
  /// Sibling-substitution restrict; same contract as constrain but never
  /// pulls in variables outside supp(f) ∪ supp(care).
  [[nodiscard]] Bdd restrict_to(const Bdd& f, const Bdd& care);

  /// Minato-Morreale irredundant sum-of-products for any function in the
  /// interval [lower, upper].  Requires lower ⊆ upper.
  [[nodiscard]] IsopResult isop(const Bdd& lower, const Bdd& upper);

  /// Number of minterms of f over `num_vars_total` variables.  Exact while
  /// num_vars_total <= 52 (dyadic rationals representable in double).
  [[nodiscard]] double sat_count(const Bdd& f, std::uint32_t num_vars_total);

  /// A cube of f with the fewest literals (the "largest cube"; the paper's
  /// split-vertex selection uses this, Sec. 7.4).  Requires f != 0.
  [[nodiscard]] Cube shortest_cube(const Bdd& f);

  /// One satisfying assignment over all manager variables; requires f != 0.
  [[nodiscard]] std::vector<bool> pick_minterm(const Bdd& f);

  /// BDD of a three-valued cube whose variable i maps to manager variable
  /// var_map[i] (var_map.size() == cube.num_vars()).
  [[nodiscard]] Bdd cube_bdd(const Cube& cube,
                             std::span<const std::uint32_t> var_map);
  /// BDD of an SOP cover under the same variable mapping.
  [[nodiscard]] Bdd cover_bdd(const Cover& cover,
                              std::span<const std::uint32_t> var_map);

  /// Run all minterms of f over the listed variables through `visit`
  /// (testing helper; enumerates 2^vars.size() points in the worst case).
  void foreach_minterm(const Bdd& f, std::span<const std::uint32_t> vars,
                       const std::function<void(const std::vector<bool>&)>& visit);

  /// Reclaim dead nodes (those unreachable from any live handle) and clear
  /// the computed cache.  Never call while external raw edges are held.
  void garbage_collect();
  /// garbage_collect() if the dead-node estimate crosses the threshold.
  /// O(1) when it declines: the trigger compares the live-node count
  /// against the incremental external-root counter (no refcount scan).
  /// Also the auto-reorder hook: with set_auto_reorder() armed, a live
  /// count past the adaptive reorder threshold triggers a sifting pass
  /// here (then the threshold doubles from the post-sift size).
  void garbage_collect_if_needed(std::size_t dead_node_threshold = 1u << 16);

  // -- dynamic variable reordering (bdd_reorder.cpp) ------------------------
  /// One pass of Rudell sifting: every variable (densest level first) is
  /// moved through the whole order by in-place adjacent-level swaps and
  /// settled at its best position; a direction is abandoned early once
  /// the live node count exceeds `max_growth` times the count at the
  /// start of that variable's sift.  External `Bdd` handles, raw edges of
  /// live nodes and reference counts all survive: a node keeps its index
  /// and its function, only its var/children fields are rewritten.  Runs
  /// a garbage_collect() first (which also empties the computed cache —
  /// the cache stays invalidated across the reorder) and frees nodes
  /// orphaned by swaps eagerly, so the sift sees true live sizes.
  /// Same caller contract as garbage_collect: no un-wrapped raw edges.
  void reorder(double max_growth = kDefaultReorderGrowth);

  /// Arm (or disarm) the GC-coupled auto-reorder trigger: once the live
  /// node count reaches `first_trigger`, garbage_collect_if_needed runs
  /// reorder(max_growth) and raises the threshold to twice the post-sift
  /// live count (never below `first_trigger`).
  void set_auto_reorder(bool enabled,
                        std::size_t first_trigger = 1u << 16,
                        double max_growth = kDefaultReorderGrowth);
  [[nodiscard]] bool auto_reorder() const noexcept { return auto_reorder_; }

  /// Current level of `var` in the order (0 = topmost).
  [[nodiscard]] std::uint32_t level_of_var(std::uint32_t var) const;
  /// Variable currently sitting at `level`.
  [[nodiscard]] std::uint32_t var_at_level(std::uint32_t level) const;
  /// The whole order, top to bottom (a copy of var_at_level).
  [[nodiscard]] std::vector<std::uint32_t> variable_order() const {
    return var_at_level_;
  }
  /// True while var == level for every variable (no effective reorder) —
  /// the fast-path guard of the transfer layer.
  [[nodiscard]] bool has_identity_order() const noexcept {
    return order_is_identity_;
  }

  /// Reclaim the whole variable block: frees every node and resets
  /// num_vars to 0 with the identity order, so a long-lived manager (a
  /// solver-pool slot) can parse each request into variables 0..w-1
  /// instead of growing its variable count forever.  Only legal when no
  /// external handle is live; returns false (and changes nothing) when
  /// external_root_count() != 0.
  bool reset_variables();

  /// Pre-seed the relative order of a freshly added trailing variable
  /// block: variable first+ranks[L] moves to level first+L for every L,
  /// where `ranks` is a permutation of 0..ranks.size()-1 covering the
  /// block [first, num_vars).  This is how a `.order` sidecar (a solved
  /// manager's known-good order, relation_io.hpp) is installed BEFORE
  /// the request's BDDs are built, so a pool slot skips re-sifting from
  /// scratch.  Requires every level of the block to be empty of nodes
  /// (the state add_vars leaves it in) — an empty-level permutation is
  /// a pure index-map rewrite, no node motion — and throws
  /// std::invalid_argument on a malformed permutation, a block not at
  /// the tail of the order, or a non-empty level.
  void seed_block_order(std::uint32_t first,
                        std::span<const std::uint32_t> ranks);

  /// Full structural validation of the node store (testing/diagnostic;
  /// O(nodes)): canonical form (then-edges regular), order (children
  /// strictly below parents by level), per-level unique-table membership
  /// and counts, refcount/external-root consistency, free-list sanity.
  /// Throws std::logic_error with a description on the first violation.
  void check_integrity() const;

  static constexpr double kDefaultReorderGrowth = 1.2;

  /// Number of nodes currently pinned by at least one external handle
  /// (maintained incrementally by ref_edge/deref_edge; the GC trigger).
  [[nodiscard]] std::size_t external_root_count() const noexcept {
    return external_roots_;
  }

  /// The hot path maintains only the per-op probe counters; the aggregate
  /// cache_lookups/cache_hits are folded on read (this accessor is cold).
  [[nodiscard]] const BddStats& stats() const noexcept {
    assert_owning_thread();  // the fold writes the mutable aggregates
    stats_.cache_lookups = 0;
    stats_.cache_hits = 0;
    for (std::size_t op = 0; op < kBddOpCount; ++op) {
      stats_.cache_lookups += stats_.op_lookups[op];
      stats_.cache_hits += stats_.op_hits[op];
    }
    return stats_;
  }

  // -- cross-manager transfer (bdd_transfer.cpp) ----------------------------
  /// Memoized recursive import of `src` — a BDD living in *another*
  /// manager — into this manager.  Variable indices are preserved (this
  /// manager must have at least as many variables); a same-manager import
  /// is just a handle copy.  The two managers' dynamic orders may differ
  /// (the transfer re-canonicalizes through the serialized form then).
  /// Both managers are touched, so the calling thread must own both.
  [[nodiscard]] Bdd import_bdd(const Bdd& src);
  /// Flatten `f` (a BDD of THIS manager) into the manager-independent
  /// serialized form — the safe hand-off unit between threads: plain data,
  /// no node-store access required on the receiving side until it calls
  /// deserialize_bdd on its own manager.  The serialized form is always
  /// expressed under the IDENTITY (var-index) order, whatever this
  /// manager's current order is — that is what keeps `.bdd` bodies, memo
  /// keys and cross-manager hand-offs order-independent.  Re-expressing a
  /// reordered DAG builds scratch nodes here (hence non-const); with the
  /// identity order it is a pure read.
  [[nodiscard]] SerializedBdd serialize_bdd(const Bdd& f);
  /// Rebuild a serialized BDD here, shifting every variable index by
  /// `var_offset` (shifts preserve the relative order, so the result stays
  /// canonical).  Throws std::invalid_argument on malformed input or
  /// variables outside this manager.
  [[nodiscard]] Bdd deserialize_bdd(const SerializedBdd& s,
                                    std::uint32_t var_offset = 0);

  // -- canonical structural hashing (bdd_hash.cpp) --------------------------
  /// 128-bit hash of `f`'s canonical (identity-order) serialized form
  /// under the rank map `rank_of` — the same value memo_key_hash128
  /// computes from the materialized arena form, WITHOUT building any
  /// serialized form.  Cached per node (amortized O(new nodes) across
  /// probes of overlapping cones); the cache is stamped out whenever
  /// node indices can be reused (GC, sifting) or the rank map changes.
  /// `space_token` names the rank map (see MemoSpace::token): calls with
  /// a different token than the previous call invalidate the cache,
  /// token 0 never caches across calls.  Stable across reorders: a
  /// reordered manager peels cofactors exactly like serialize_bdd's
  /// canon path, so equal functions hash equally from any order.
  /// Non-const for the same reason serialize_bdd is (scratch cofactor
  /// cones on reordered managers).
  [[nodiscard]] CanonicalHash128 canonical_hash(
      const Bdd& f, std::span<const std::uint32_t> rank_of,
      std::uint64_t space_token);
  /// Identity rank map (rank(v) == v) — the `.bdd`-body hash.
  [[nodiscard]] CanonicalHash128 canonical_hash(const Bdd& f);

  // -- thread ownership -----------------------------------------------------
  /// The manager (node store, caches, statistics) is strictly single-
  /// threaded; in debug builds every mutating entry point asserts that the
  /// calling thread is the owning one.  Ownership starts with the
  /// constructing thread; transfer it explicitly at hand-off points (a
  /// parallel-engine worker binds its private manager on start, the
  /// coordinator re-binds after join to merge results).
  void bind_to_current_thread() noexcept {
#ifndef NDEBUG
    owner_thread_ = std::this_thread::get_id();
#endif
  }

  /// Graphviz dump of the DAGs rooted at `roots` (complement edges dashed).
  void write_dot(std::ostream& os, std::span<const Bdd> roots,
                 std::span<const std::string> names = {});

 private:
  friend class Bdd;

  struct Node {
    std::uint32_t var;   ///< variable index; kTerminalVar for the terminal
    detail::Edge hi;     ///< then-edge; never complemented (canonical form)
    detail::Edge lo;     ///< else-edge
    std::uint32_t next;  ///< unique-table chain (0 = end of chain)
  };

  using Op = BddOp;

  /// Packed computed-cache entry (16 bytes; the pre-overhaul layout spent
  /// 32).  The op tag and the first two operands are folded into one
  /// 64-bit word — op in bits 60..63, a in 30..59, b in 0..29 — which
  /// works because edges are capped at 30 bits (kMaxNodeIndex below).
  /// An all-ones key_ab is unreachable (op nibble 15 is not a valid tag)
  /// and doubles as the empty sentinel.
  struct CacheEntry {
    std::uint64_t key_ab = kEmptyCacheKey;  ///< op | a | b
    detail::Edge c = 0;                     ///< third operand (0 if unused)
    detail::Edge result = 0;
  };
  static_assert(sizeof(detail::Edge) == 4);
  static constexpr std::uint64_t kEmptyCacheKey = ~0ull;
  /// Node indices must fit in 29 bits so an edge (index << 1 | complement)
  /// fits the 30-bit operand fields of the packed cache key.
  static constexpr std::uint32_t kMaxNodeIndex = (1u << 29) - 1;
  /// Variable indices share the 30-bit operand fields (cofactor_rec packs
  /// var << 1 | phase as a cache operand), so they get the same cap.
  static constexpr std::uint32_t kMaxVariables = 1u << 29;
  /// Starting bucket count of a per-level unique table (doubles on
  /// load).  Sized so a typical build reaches steady state in one or two
  /// doublings per level — at 4 bytes a bucket the cost of generosity is
  /// ~1 KiB per variable, while every doubling re-buckets the whole
  /// level.
  static constexpr std::size_t kInitialSubtableBuckets = 256;

  /// One computed-cache probe: the packed key words and the base slot of
  /// the 2-way set, carried from cache_lookup to the matching cache_insert
  /// so the hash is computed once per lookup/insert pair.
  struct CacheProbe {
    std::uint64_t key_ab = 0;
    detail::Edge c = 0;
    std::size_t slot = 0;
  };

  // -- node store ---------------------------------------------------------
  [[nodiscard]] std::uint32_t node_var(detail::Edge e) const noexcept {
    return nodes_[detail::edge_index(e)].var;
  }
  /// Level of a variable (unchecked hot-path form of level_of_var).
  [[nodiscard]] std::uint32_t level_of(std::uint32_t var) const noexcept {
    return level_of_var_[var];
  }
  /// Level of the top variable of `e`; terminals sit below every level.
  [[nodiscard]] std::uint32_t node_level(detail::Edge e) const noexcept {
    return detail::edge_is_constant(e) ? detail::kTerminalVar
                                       : level_of_var_[node_var(e)];
  }
  /// Of two non-constant edges, the variable id whose level is higher in
  /// the order (smaller level index) — the recursion variable of the
  /// binary kernels.
  [[nodiscard]] std::uint32_t top_var(detail::Edge f,
                                      detail::Edge g) const noexcept {
    const std::uint32_t vf = node_var(f);
    const std::uint32_t vg = node_var(g);
    return level_of_var_[vf] < level_of_var_[vg] ? vf : vg;
  }
  /// Semantic then/else cofactor at the node's own variable, honouring the
  /// complement bit on `e`.
  [[nodiscard]] detail::Edge hi_of(detail::Edge e) const noexcept {
    const Node& n = nodes_[detail::edge_index(e)];
    return detail::edge_complemented(e) ? detail::edge_not(n.hi) : n.hi;
  }
  [[nodiscard]] detail::Edge lo_of(detail::Edge e) const noexcept {
    const Node& n = nodes_[detail::edge_index(e)];
    return detail::edge_complemented(e) ? detail::edge_not(n.lo) : n.lo;
  }
  /// Cofactor of `e` w.r.t. `var` assuming var <= level of e's top.
  [[nodiscard]] detail::Edge cofactor_top(detail::Edge e, std::uint32_t var,
                                          bool phase) const noexcept {
    if (detail::edge_is_constant(e) || node_var(e) != var) {
      return e;
    }
    return phase ? hi_of(e) : lo_of(e);
  }

  /// One per-level unique table: nodes of the variable currently at this
  /// level, chained through Node::next.  The table object travels with
  /// its variable during a swap (std::swap of the two SubTables), so a
  /// reorder only re-buckets the nodes it actually rewrites.
  struct SubTable {
    std::vector<std::uint32_t> buckets;  ///< 1-based node indices, 0 = empty
    std::size_t count = 0;               ///< live nodes in this table
  };

  [[nodiscard]] detail::Edge make_node(std::uint32_t var, detail::Edge hi,
                                       detail::Edge lo);
  [[nodiscard]] std::uint32_t allocate_node();
  /// Re-bucket every live node into its level's table (after GC, or a
  /// per-table doubling when `grow_level` is a valid level).
  void rebuild_subtables(std::uint32_t grow_level = detail::kTerminalVar);
  void subtable_insert(SubTable& table, std::uint32_t idx) noexcept;
  void subtable_remove(SubTable& table, std::uint32_t idx) noexcept;
  [[nodiscard]] static std::uint64_t hash_triple(std::uint64_t a,
                                                 std::uint64_t b,
                                                 std::uint64_t c) noexcept;
  [[nodiscard]] static std::uint64_t hash_key(std::uint64_t key_ab,
                                              detail::Edge c) noexcept;

  // -- computed cache ------------------------------------------------------
  /// Probe the 2-way set for (op, a, b, c).  On a miss, `probe` carries the
  /// packed key and slot to the matching cache_insert so the hash is
  /// computed once per lookup/insert pair.
  [[nodiscard]] bool cache_lookup(Op op, detail::Edge a, detail::Edge b,
                                  detail::Edge c, detail::Edge& out,
                                  CacheProbe& probe);
  void cache_insert(const CacheProbe& probe, detail::Edge result);

  // -- recursive kernels (raw-edge domain) ---------------------------------
  [[nodiscard]] detail::Edge ite_rec(detail::Edge f, detail::Edge g,
                                     detail::Edge h);
  [[nodiscard]] detail::Edge and_rec(detail::Edge f, detail::Edge g);
  [[nodiscard]] detail::Edge xor_rec(detail::Edge f, detail::Edge g);
  /// De-Morgan wrapper over and_rec (no cache entry of its own: OR(f,g)
  /// and AND(!f,!g) share one).
  [[nodiscard]] detail::Edge or_rec(detail::Edge f, detail::Edge g) {
    return detail::edge_not(
        and_rec(detail::edge_not(f), detail::edge_not(g)));
  }
  [[nodiscard]] detail::Edge cofactor_rec(detail::Edge f, std::uint32_t var,
                                          bool phase);
  [[nodiscard]] bool leq_rec(detail::Edge f, detail::Edge g);
  [[nodiscard]] detail::Edge exists_rec(detail::Edge f, detail::Edge cube);
  [[nodiscard]] detail::Edge and_exists_rec(detail::Edge f, detail::Edge g,
                                            detail::Edge cube);
  [[nodiscard]] detail::Edge constrain_rec(detail::Edge f, detail::Edge c);
  [[nodiscard]] detail::Edge restrict_rec(detail::Edge f, detail::Edge c);
  [[nodiscard]] detail::Edge vars_cube(std::span<const std::uint32_t> vars);

  // -- dynamic reordering internals (bdd_reorder.cpp) ----------------------
  /// reorder() body; `already_collected` skips the GC prologue when the
  /// caller (the auto trigger) just ran one with nothing in between.
  void reorder_internal(double max_growth, bool already_collected);
  /// Swap the variables at `level` and `level + 1` in place (the sifting
  /// primitive).  Interacting nodes keep their indices and functions but
  /// are rewritten to test the other variable first; nodes orphaned by
  /// the rewrite are freed eagerly through the sift refcounts.
  void swap_adjacent(std::uint32_t level);
  /// Move the variable currently holding `var` through the order and
  /// settle it at the position minimizing the live node count, giving up
  /// on a direction once live > `size_limit`.
  void sift_var(std::uint32_t var, std::size_t size_limit);
  /// Drop one sift-session reference from the node under `e`, freeing it
  /// (and cascading into its children) when the count hits zero.
  void sift_deref(detail::Edge e) noexcept;
  /// Build `interaction_` for the current sift session: variables a and b
  /// interact iff both lie in the support of some externally-referenced
  /// root function.  One DFS per root over the post-GC store.
  void build_interaction_matrix();
  /// True when `interaction_` marks (a, b) as sharing a root's support.
  /// Only meaningful while a sift session holds a built matrix.
  [[nodiscard]] bool vars_interact(std::uint32_t a,
                                   std::uint32_t b) const noexcept {
    return (interaction_[a * interaction_words_ + (b >> 6)] >> (b & 63)) &
           1u;
  }
  [[nodiscard]] std::size_t live_nodes() const noexcept {
    return nodes_.size() - 1 - free_count_;
  }

  // -- canonical-hash internals (bdd_hash.cpp) ------------------------------
  /// Stamp out every cached canonical hash (and the min-support-var
  /// memo).  Called wherever node indices can be reused — the end of a
  /// GC or sift session — and on rank-map changes.
  void chash_invalidate() noexcept;
  [[nodiscard]] bool chash_cached(std::uint32_t idx) const noexcept;
  void chash_store(std::uint32_t idx, CanonicalHash128 h, bool flip);
  [[nodiscard]] CanonicalHash128 chash_identity(
      std::uint32_t root_idx, std::span<const std::uint32_t> rank_of);
  [[nodiscard]] CanonicalHash128 chash_reordered(
      detail::Edge e, std::span<const std::uint32_t> rank_of,
      bool& flip_out);

  // -- handle refcounts -----------------------------------------------------
  void ref_edge(detail::Edge e) noexcept;
  void deref_edge(detail::Edge e) noexcept;
  [[nodiscard]] Bdd wrap(detail::Edge e) { return Bdd(this, e); }

  /// Debug-only check that the calling thread owns this manager (see
  /// bind_to_current_thread).  Called from the mutating hot paths —
  /// make_node, cache probes, refcounting — so a cross-thread access
  /// trips immediately instead of corrupting the node store silently.
  void assert_owning_thread() const noexcept {
#ifndef NDEBUG
    assert(owner_thread_ == std::this_thread::get_id() &&
           "BddManager accessed from a thread it is not bound to");
#endif
  }

  std::uint32_t num_vars_ = 0;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> refcount_;
  std::vector<SubTable> subtables_;  ///< per-level unique tables
  /// The var <-> level indirection: nodes carry stable var ids, kernels
  /// recurse on levels.  Both arrays are permutations of [0, num_vars).
  std::vector<std::uint32_t> level_of_var_;
  std::vector<std::uint32_t> var_at_level_;
  bool order_is_identity_ = true;  ///< var == level everywhere
  std::uint32_t free_list_ = 0;    ///< head of free node chain (0 = none)
  std::size_t free_count_ = 0;
  // -- reordering state --
  bool auto_reorder_ = false;
  bool sifting_ = false;  ///< make_node maintains sift_refs_ while set
  double reorder_max_growth_ = kDefaultReorderGrowth;
  std::size_t reorder_first_threshold_ = 1u << 16;
  std::size_t reorder_threshold_ = 1u << 16;
  /// Sift-session reference counts: internal parents plus one for "has
  /// any external handle".  Only meaningful while sifting_ is true.
  std::vector<std::uint32_t> sift_refs_;
  /// Symmetric num_vars × num_vars bitmatrix (row-major, 64-bit words):
  /// bit (a, b) set iff a and b appear together in some root function's
  /// support.  Root functions are invariant under adjacent swaps and a
  /// node's variables stay inside its root's support, so a CLEAR bit
  /// proves — for the whole session — that no a-node can test b, making
  /// their swap a pure table/map flip (swap_adjacent's fast path).
  /// Built by reorder_internal, cleared when the session ends.
  std::vector<std::uint64_t> interaction_;
  std::size_t interaction_words_ = 0;  ///< words per matrix row
  // Reused work lists (a Rudell pass performs O(vars^2) swaps; per-swap
  // allocation would be pure allocator traffic in the innermost loop).
  std::vector<std::uint32_t> sift_scratch_;     ///< sift_deref death list
  std::vector<std::uint32_t> swap_interacting_; ///< pass-1 detached nodes
  std::vector<detail::Edge> swap_retired_;      ///< pass-2 deferred derefs
  std::vector<CacheEntry> cache_;
  std::uint64_t cache_mask_ = 0;  ///< (number of 2-way sets) - 1
  /// Nodes with refcount > 0 — the GC roots.  Maintained incrementally on
  /// every 0<->1 refcount transition so garbage_collect_if_needed never
  /// rescans the table.
  std::size_t external_roots_ = 0;
  // GC scratch, reused across runs (no per-GC allocation in steady state).
  std::vector<std::uint32_t> gc_mark_;   ///< stamp per node; == gc_stamp_
  std::uint32_t gc_stamp_ = 0;           ///<   means marked in current run
  std::vector<std::uint32_t> gc_stack_;
  // Canonical-hash cache (bdd_hash.cpp): per-node record hash + the
  // canonical flip bit, stamped like gc_mark_ (entry valid iff its
  // stamp equals chash_epoch_).  The space token names the rank map the
  // cached hashes were computed under.
  std::vector<CanonicalHash128> chash_;
  std::vector<std::uint8_t> chash_flip_;
  std::vector<std::uint32_t> chash_stamp_;
  std::uint32_t chash_epoch_ = 1;  ///< > 0 so default stamps are invalid
  std::uint64_t chash_space_token_ = 0;
  std::vector<std::uint32_t> chash_stack_;  ///< identity-walk scratch
  /// Min support var per regular node index (the reordered walk's peel
  /// variable); function-determined, cleared with the hash cache.
  std::unordered_map<std::uint32_t, std::uint32_t> chash_minvar_;
  /// Scratch memo for compose() (cleared per call, never reallocated).
  std::unordered_map<detail::Edge, detail::Edge> compose_memo_;
  /// Per-manager statistics — including the per-op cache counters bumped
  /// on kernel hot paths — are written without synchronization, which is
  /// sound because the whole manager is single-threaded (enforced in
  /// debug builds by assert_owning_thread).  Mutable: stats() folds the
  /// per-op counters into the aggregates on read.
  mutable BddStats stats_;
#ifndef NDEBUG
  std::thread::id owner_thread_ = std::this_thread::get_id();
#endif
};

}  // namespace brel
