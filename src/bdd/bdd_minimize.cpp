#include <stdexcept>

#include "bdd/bdd.hpp"

namespace brel {

using detail::Edge;
using detail::edge_is_constant;
using detail::edge_not;
using detail::kOne;
using detail::kZero;

Bdd BddManager::constrain(const Bdd& f, const Bdd& care) {
  if (f.manager() != this || care.manager() != this) {
    throw std::invalid_argument("constrain: operands from a different manager");
  }
  if (care.is_zero()) {
    throw std::invalid_argument("constrain: care set must be non-empty");
  }
  return wrap(constrain_rec(f.raw_edge(), care.raw_edge()));
}

Bdd BddManager::restrict_to(const Bdd& f, const Bdd& care) {
  if (f.manager() != this || care.manager() != this) {
    throw std::invalid_argument(
        "restrict_to: operands from a different manager");
  }
  if (care.is_zero()) {
    throw std::invalid_argument("restrict_to: care set must be non-empty");
  }
  return wrap(restrict_rec(f.raw_edge(), care.raw_edge()));
}

Edge BddManager::constrain_rec(Edge f, Edge c) {
  // Coudert-Madre generalized cofactor.  Precondition: c != 0.
  if (c == kOne || edge_is_constant(f)) {
    return f;
  }
  if (f == c) {
    return kOne;
  }
  if (f == edge_not(c)) {
    return kZero;
  }
  Edge cached = 0;
  CacheProbe probe;
  if (cache_lookup(Op::Constrain, f, c, 0, cached, probe)) {
    return cached;
  }
  const std::uint32_t v = top_var(f, c);
  const Edge c1 = cofactor_top(c, v, true);
  const Edge c0 = cofactor_top(c, v, false);
  Edge result = 0;
  if (c1 == kZero) {
    result = constrain_rec(cofactor_top(f, v, false), c0);
  } else if (c0 == kZero) {
    result = constrain_rec(cofactor_top(f, v, true), c1);
  } else {
    result = make_node(v, constrain_rec(cofactor_top(f, v, true), c1),
                       constrain_rec(cofactor_top(f, v, false), c0));
  }
  cache_insert(probe, result);
  return result;
}

Edge BddManager::restrict_rec(Edge f, Edge c) {
  // Sibling-substitution restrict: like constrain but variables of the care
  // set that are above the top of f are existentially smoothed out of it,
  // so the result's support stays within supp(f).
  if (c == kOne || edge_is_constant(f)) {
    return f;
  }
  if (f == c) {
    return kOne;
  }
  if (f == edge_not(c)) {
    return kZero;
  }
  Edge cached = 0;
  CacheProbe probe;
  if (cache_lookup(Op::Restrict, f, c, 0, cached, probe)) {
    return cached;
  }
  const std::uint32_t vf = node_var(f);
  Edge result = 0;
  if (node_level(c) < level_of(vf)) {
    // The care set tests a variable f does not depend on: smooth it away.
    const Edge smoothed = or_rec(hi_of(c), lo_of(c));
    result = restrict_rec(f, smoothed);
  } else {
    const std::uint32_t v = vf;
    const Edge c1 = cofactor_top(c, v, true);
    const Edge c0 = cofactor_top(c, v, false);
    if (c1 == kZero) {
      result = restrict_rec(lo_of(f), c0);
    } else if (c0 == kZero) {
      result = restrict_rec(hi_of(f), c1);
    } else {
      result = make_node(v, restrict_rec(hi_of(f), c1),
                         restrict_rec(lo_of(f), c0));
    }
  }
  cache_insert(probe, result);
  return result;
}

}  // namespace brel
