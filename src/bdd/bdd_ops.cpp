#include <algorithm>
#include <stdexcept>

#include "bdd/bdd.hpp"

namespace brel {

using detail::Edge;
using detail::edge_complemented;
using detail::edge_is_constant;
using detail::edge_not;
using detail::kOne;
using detail::kZero;

namespace {

/// Level of an edge's top variable; constants sit below everything.
inline std::uint32_t top_level(std::uint32_t v) noexcept { return v; }

}  // namespace

Bdd BddManager::ite(const Bdd& f, const Bdd& g, const Bdd& h) {
  if (f.manager() != this || g.manager() != this || h.manager() != this) {
    throw std::invalid_argument("ite: operands from a different manager");
  }
  return wrap(ite_rec(f.raw_edge(), g.raw_edge(), h.raw_edge()));
}

Bdd BddManager::bdd_and(const Bdd& f, const Bdd& g) {
  if (f.manager() != this || g.manager() != this) {
    throw std::invalid_argument("bdd_and: operands from a different manager");
  }
  return wrap(ite_rec(f.raw_edge(), g.raw_edge(), kZero));
}

Bdd BddManager::bdd_or(const Bdd& f, const Bdd& g) {
  if (f.manager() != this || g.manager() != this) {
    throw std::invalid_argument("bdd_or: operands from a different manager");
  }
  return wrap(ite_rec(f.raw_edge(), kOne, g.raw_edge()));
}

Bdd BddManager::bdd_xor(const Bdd& f, const Bdd& g) {
  if (f.manager() != this || g.manager() != this) {
    throw std::invalid_argument("bdd_xor: operands from a different manager");
  }
  return wrap(ite_rec(f.raw_edge(), edge_not(g.raw_edge()), g.raw_edge()));
}

Bdd BddManager::bdd_not(const Bdd& f) {
  if (f.manager() != this) {
    throw std::invalid_argument("bdd_not: operand from a different manager");
  }
  return wrap(edge_not(f.raw_edge()));
}

Bdd BddManager::big_and(std::span<const Bdd> fs) {
  Bdd acc = one();
  for (const Bdd& f : fs) {
    acc = bdd_and(acc, f);
  }
  return acc;
}

Bdd BddManager::big_or(std::span<const Bdd> fs) {
  Bdd acc = zero();
  for (const Bdd& f : fs) {
    acc = bdd_or(acc, f);
  }
  return acc;
}

Edge BddManager::ite_rec(Edge f, Edge g, Edge h) {
  // Terminal cases.
  if (f == kOne) {
    return g;
  }
  if (f == kZero) {
    return h;
  }
  if (g == h) {
    return g;
  }
  if (g == kOne && h == kZero) {
    return f;
  }
  if (g == kZero && h == kOne) {
    return edge_not(f);
  }
  // Substitutions that shrink the problem: ite(f, f, h) = ite(f, 1, h), etc.
  if (f == g) {
    g = kOne;
  } else if (f == edge_not(g)) {
    g = kZero;
  }
  if (f == h) {
    h = kZero;
  } else if (f == edge_not(h)) {
    h = kOne;
  }
  if (g == h) {
    return g;
  }
  if (g == kOne && h == kZero) {
    return f;
  }
  if (g == kZero && h == kOne) {
    return edge_not(f);
  }
  // Canonicalize for the cache: f and g carry no complement attribute.
  if (edge_complemented(f)) {
    f = edge_not(f);
    std::swap(g, h);
  }
  bool negate_result = false;
  if (edge_complemented(g)) {
    g = edge_not(g);
    h = edge_not(h);
    negate_result = true;
  }
  Edge cached = 0;
  if (cache_lookup(Op::Ite, f, g, h, cached)) {
    return negate_result ? edge_not(cached) : cached;
  }
  // Recurse on the top variable of the three operands.
  std::uint32_t v = node_var(f);
  if (!edge_is_constant(g)) {
    v = std::min(v, node_var(g));
  }
  if (!edge_is_constant(h)) {
    v = std::min(v, node_var(h));
  }
  const Edge t = ite_rec(cofactor_top(f, v, true), cofactor_top(g, v, true),
                         cofactor_top(h, v, true));
  const Edge e = ite_rec(cofactor_top(f, v, false), cofactor_top(g, v, false),
                         cofactor_top(h, v, false));
  const Edge result = make_node(v, t, e);
  cache_insert(Op::Ite, f, g, h, result);
  return negate_result ? edge_not(result) : result;
}

}  // namespace brel
