#include <algorithm>
#include <stdexcept>
#include <vector>

#include "bdd/bdd.hpp"

namespace brel {

using detail::Edge;
using detail::edge_complemented;
using detail::edge_is_constant;
using detail::edge_not;
using detail::edge_regular;
using detail::kOne;
using detail::kZero;

Bdd BddManager::ite(const Bdd& f, const Bdd& g, const Bdd& h) {
  if (f.manager() != this || g.manager() != this || h.manager() != this) {
    throw std::invalid_argument("ite: operands from a different manager");
  }
  return wrap(ite_rec(f.raw_edge(), g.raw_edge(), h.raw_edge()));
}

Bdd BddManager::bdd_and(const Bdd& f, const Bdd& g) {
  if (f.manager() != this || g.manager() != this) {
    throw std::invalid_argument("bdd_and: operands from a different manager");
  }
  return wrap(and_rec(f.raw_edge(), g.raw_edge()));
}

Bdd BddManager::bdd_or(const Bdd& f, const Bdd& g) {
  if (f.manager() != this || g.manager() != this) {
    throw std::invalid_argument("bdd_or: operands from a different manager");
  }
  return wrap(or_rec(f.raw_edge(), g.raw_edge()));
}

Bdd BddManager::bdd_xor(const Bdd& f, const Bdd& g) {
  if (f.manager() != this || g.manager() != this) {
    throw std::invalid_argument("bdd_xor: operands from a different manager");
  }
  return wrap(xor_rec(f.raw_edge(), g.raw_edge()));
}

Bdd BddManager::bdd_not(const Bdd& f) {
  if (f.manager() != this) {
    throw std::invalid_argument("bdd_not: operand from a different manager");
  }
  return wrap(edge_not(f.raw_edge()));
}

bool BddManager::leq(const Bdd& f, const Bdd& g) {
  if (f.manager() != this || g.manager() != this) {
    throw std::invalid_argument("leq: operands from a different manager");
  }
  return leq_rec(f.raw_edge(), g.raw_edge());
}

Bdd BddManager::cofactor(const Bdd& f, std::uint32_t var, bool phase) {
  if (f.manager() != this) {
    throw std::invalid_argument("cofactor: operand from a different manager");
  }
  if (var >= num_vars_) {
    throw std::out_of_range("cofactor: unknown variable");
  }
  return wrap(cofactor_rec(f.raw_edge(), var, phase));
}

namespace {

/// Balanced pairwise reduction: combine neighbours until one remains.
/// Keeps intermediate results near sqrt-size instead of the accumulated
/// prefix a left fold builds, which is what makes wide conjunctions cheap.
template <typename Combine>
Bdd balanced_reduce(std::vector<Bdd> layer, Combine&& combine) {
  while (layer.size() > 1) {
    std::size_t out = 0;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      layer[out++] = combine(layer[i], layer[i + 1]);
    }
    if (layer.size() % 2 != 0) {
      layer[out++] = std::move(layer.back());
    }
    layer.resize(out);
  }
  return std::move(layer.front());
}

}  // namespace

Bdd BddManager::big_and(std::span<const Bdd> fs) {
  if (fs.empty()) {
    return one();
  }
  return balanced_reduce(
      std::vector<Bdd>(fs.begin(), fs.end()),
      [this](const Bdd& a, const Bdd& b) { return bdd_and(a, b); });
}

Bdd BddManager::big_or(std::span<const Bdd> fs) {
  if (fs.empty()) {
    return zero();
  }
  return balanced_reduce(
      std::vector<Bdd>(fs.begin(), fs.end()),
      [this](const Bdd& a, const Bdd& b) { return bdd_or(a, b); });
}

Edge BddManager::and_rec(Edge f, Edge g) {
  // Terminal cases.
  if (f == g) {
    return f;
  }
  if (f == kZero || g == kZero || f == edge_not(g)) {
    return kZero;
  }
  if (f == kOne) {
    return g;
  }
  if (g == kOne) {
    return f;
  }
  // Commutative normalization: AND(f,g) == AND(g,f) must occupy a single
  // cache entry, so order the operands by edge value.  (Routing AND
  // through ite_rec kept the triples (f,g,0) and (g,f,0) distinct.)
  if (f > g) {
    std::swap(f, g);
  }
  Edge cached = 0;
  CacheProbe probe;
  if (cache_lookup(Op::And, f, g, 0, cached, probe)) {
    return cached;
  }
  const std::uint32_t v = top_var(f, g);
  const Edge t = and_rec(cofactor_top(f, v, true), cofactor_top(g, v, true));
  const Edge e = and_rec(cofactor_top(f, v, false), cofactor_top(g, v, false));
  const Edge result = make_node(v, t, e);
  cache_insert(probe, result);
  return result;
}

Edge BddManager::xor_rec(Edge f, Edge g) {
  // Terminal cases.
  if (f == g) {
    return kZero;
  }
  if (f == edge_not(g)) {
    return kOne;
  }
  if (f == kZero) {
    return g;
  }
  if (g == kZero) {
    return f;
  }
  if (f == kOne) {
    return edge_not(g);
  }
  if (g == kOne) {
    return edge_not(f);
  }
  // XOR absorbs complements — XOR(!f,g) == !XOR(f,g) — so strip both
  // attributes and track the parity, then normalize the commutative pair.
  const bool negate_result = edge_complemented(f) != edge_complemented(g);
  f = edge_regular(f);
  g = edge_regular(g);
  if (f > g) {
    std::swap(f, g);
  }
  Edge cached = 0;
  CacheProbe probe;
  if (cache_lookup(Op::Xor, f, g, 0, cached, probe)) {
    return negate_result ? edge_not(cached) : cached;
  }
  const std::uint32_t v = top_var(f, g);
  const Edge t = xor_rec(cofactor_top(f, v, true), cofactor_top(g, v, true));
  const Edge e = xor_rec(cofactor_top(f, v, false), cofactor_top(g, v, false));
  const Edge result = make_node(v, t, e);
  cache_insert(probe, result);
  return negate_result ? edge_not(result) : result;
}

Edge BddManager::cofactor_rec(Edge f, std::uint32_t var, bool phase) {
  if (edge_is_constant(f)) {
    return f;
  }
  const std::uint32_t v = node_var(f);
  if (level_of(v) > level_of(var)) {
    return f;  // ordered: var cannot appear below a deeper top level
  }
  if (v == var) {
    return phase ? hi_of(f) : lo_of(f);
  }
  // cof(!f) == !cof(f): cache only the regular edge.
  const bool negate_result = edge_complemented(f);
  const Edge fr = edge_regular(f);
  Edge cached = 0;
  CacheProbe probe;
  if (cache_lookup(Op::Cofactor, fr, (var << 1) | (phase ? 1u : 0u), 0,
                   cached, probe)) {
    return negate_result ? edge_not(cached) : cached;
  }
  const Edge t = cofactor_rec(hi_of(fr), var, phase);
  const Edge e = cofactor_rec(lo_of(fr), var, phase);
  const Edge result = make_node(v, t, e);
  cache_insert(probe, result);
  return negate_result ? edge_not(result) : result;
}

bool BddManager::leq_rec(Edge f, Edge g) {
  // f <= g  <=>  f & !g == 0, but decided without building that BDD: the
  // recursion returns false the moment any branch exhibits a witness.
  if (f == g || f == kZero || g == kOne) {
    return true;
  }
  if (g == kZero || f == kOne || f == edge_not(g)) {
    return false;  // f != 0 and g != 1 here, so each case has a witness
  }
  Edge cached = 0;
  CacheProbe probe;
  if (cache_lookup(Op::Leq, f, g, 0, cached, probe)) {
    return cached == kOne;
  }
  const std::uint32_t v = top_var(f, g);
  const bool result =
      leq_rec(cofactor_top(f, v, true), cofactor_top(g, v, true)) &&
      leq_rec(cofactor_top(f, v, false), cofactor_top(g, v, false));
  cache_insert(probe, result ? kOne : kZero);
  return result;
}

Edge BddManager::ite_rec(Edge f, Edge g, Edge h) {
  // Terminal cases.
  if (f == kOne) {
    return g;
  }
  if (f == kZero) {
    return h;
  }
  if (g == h) {
    return g;
  }
  if (g == kOne && h == kZero) {
    return f;
  }
  if (g == kZero && h == kOne) {
    return edge_not(f);
  }
  // Substitutions that shrink the problem: ite(f, f, h) = ite(f, 1, h), etc.
  if (f == g) {
    g = kOne;
  } else if (f == edge_not(g)) {
    g = kZero;
  }
  if (f == h) {
    h = kZero;
  } else if (f == edge_not(h)) {
    h = kOne;
  }
  if (g == h) {
    return g;
  }
  if (g == kOne && h == kZero) {
    return f;
  }
  if (g == kZero && h == kOne) {
    return edge_not(f);
  }
  // Binary shapes route to the dedicated kernels (better normalization,
  // their own cache op tags): ite(f,g,0)=AND, ite(f,1,h)=OR, ite(f,!g,g)=XOR.
  if (h == kZero) {
    return and_rec(f, g);
  }
  if (g == kZero) {
    return and_rec(edge_not(f), h);
  }
  if (g == kOne) {
    return or_rec(f, h);
  }
  if (h == kOne) {
    return or_rec(edge_not(f), g);
  }
  if (g == edge_not(h)) {
    return xor_rec(f, h);
  }
  // Canonicalize for the cache: f and g carry no complement attribute.
  if (edge_complemented(f)) {
    f = edge_not(f);
    std::swap(g, h);
  }
  bool negate_result = false;
  if (edge_complemented(g)) {
    g = edge_not(g);
    h = edge_not(h);
    negate_result = true;
  }
  Edge cached = 0;
  CacheProbe probe;
  if (cache_lookup(Op::Ite, f, g, h, cached, probe)) {
    return negate_result ? edge_not(cached) : cached;
  }
  // Recurse on the top (highest-level) variable of the three operands.
  std::uint32_t v = node_var(f);
  if (!edge_is_constant(g)) {
    v = top_var(f, g);
  }
  if (!edge_is_constant(h) && node_level(h) < level_of(v)) {
    v = node_var(h);
  }
  const Edge t = ite_rec(cofactor_top(f, v, true), cofactor_top(g, v, true),
                         cofactor_top(h, v, true));
  const Edge e = ite_rec(cofactor_top(f, v, false), cofactor_top(g, v, false),
                         cofactor_top(h, v, false));
  const Edge result = make_node(v, t, e);
  cache_insert(probe, result);
  return negate_result ? edge_not(result) : result;
}

}  // namespace brel
