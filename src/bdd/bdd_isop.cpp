#include <algorithm>
#include <stdexcept>

#include "bdd/bdd.hpp"

namespace brel {

using detail::Edge;
using detail::edge_not;
using detail::kOne;
using detail::kZero;

/// Minato-Morreale ISOP: returns an irredundant sum-of-products whose
/// function lies in the interval [lower, upper].  The recursion partitions
/// on the interval's top variable v: minterms of lower|v=0 that fall outside
/// upper|v=1 can only be covered by cubes carrying literal !v (dually for
/// v), and whatever remains is covered by cubes without a v literal against
/// the tightened upper bound upper|v=0 ∧ upper|v=1.
IsopResult BddManager::isop(const Bdd& lower, const Bdd& upper) {
  if (lower.manager() != this || upper.manager() != this) {
    throw std::invalid_argument("isop: operands from a different manager");
  }
  if (!bdd_and(lower, !upper).is_zero()) {
    throw std::invalid_argument("isop: requires lower <= upper");
  }
  std::vector<Cube> cubes;
  auto rec = [this](auto&& self, Edge l, Edge u,
                    std::vector<Cube>& out) -> Edge {
    if (l == kZero) {
      return kZero;
    }
    if (u == kOne) {
      out.emplace_back(num_vars_);  // universal cube
      return kOne;
    }
    // Top variable of the interval by LEVEL (l is nonzero and u is not
    // one here, but either may be the other constant).
    std::uint32_t v = detail::kTerminalVar;
    if (!detail::edge_is_constant(l)) {
      v = node_var(l);
    }
    if (!detail::edge_is_constant(u) &&
        (v == detail::kTerminalVar || node_level(u) < level_of(v))) {
      v = node_var(u);
    }
    const Edge l1 = cofactor_top(l, v, true);
    const Edge l0 = cofactor_top(l, v, false);
    const Edge u1 = cofactor_top(u, v, true);
    const Edge u0 = cofactor_top(u, v, false);

    // Minterms that *must* be covered with the literal !v (resp. v).
    std::vector<Cube> cubes_neg;
    const Edge must_neg = and_rec(l0, edge_not(u1));
    const Edge f_neg = self(self, must_neg, u0, cubes_neg);

    std::vector<Cube> cubes_pos;
    const Edge must_pos = and_rec(l1, edge_not(u0));
    const Edge f_pos = self(self, must_pos, u1, cubes_pos);

    // Whatever is still uncovered may use cubes without a v literal.
    const Edge rest = or_rec(and_rec(l0, edge_not(f_neg)),
                             and_rec(l1, edge_not(f_pos)));
    std::vector<Cube> cubes_dc;
    const Edge u_both = and_rec(u0, u1);
    const Edge f_dc = self(self, rest, u_both, cubes_dc);

    for (Cube& cube : cubes_neg) {
      cube.set_lit(v, Lit::Zero);
      out.push_back(std::move(cube));
    }
    for (Cube& cube : cubes_pos) {
      cube.set_lit(v, Lit::One);
      out.push_back(std::move(cube));
    }
    for (Cube& cube : cubes_dc) {
      out.push_back(std::move(cube));
    }
    // f = !v·f_neg + v·f_pos + f_dc
    const Edge branch = make_node(v, f_pos, f_neg);
    return or_rec(branch, f_dc);
  };
  const Edge f = rec(rec, lower.raw_edge(), upper.raw_edge(), cubes);
  return IsopResult{Cover(num_vars_, std::move(cubes)), wrap(f)};
}

}  // namespace brel
