#pragma once
/// \file bdd_hash.hpp
/// 128-bit canonical structural hashing for BDD subgraphs.
///
/// `CanonicalHash128` identifies a Boolean function by hashing its
/// canonical serialized form (the identity-order form serialize_bdd
/// emits) WITHOUT building that form: the hash of a node is a pure
/// function of its canonical record — (rank-mapped variable, hash of the
/// then-cofactor, hash of the else-cofactor) — so it can be computed
/// bottom-up over the live node store and cached per node.  Two managers
/// in arbitrary dynamic orders, or a manager and a materialized
/// `GlobalMemoKey` arena, produce the same hash for the same function
/// under the same rank map.  That makes the hash usable as a memo probe
/// key with no serialization on the probe path (global_memo.hpp's
/// two-phase probe); a 128-bit collision is never trusted — the memo
/// verifies any candidate hit against the materialized key.
///
/// The primitives here are shared by the manager-side walk
/// (BddManager::canonical_hash, bdd_hash.cpp) and the arena-side walk
/// (memo_key_hash128, memo_backend.cpp); the two MUST stay in lockstep —
/// test_memo_keys.cpp pins their agreement across reorders.

#include <cstdint>

namespace brel {

/// Order-independent structural hash of a canonical BDD (or of a whole
/// memo key, after folding the rank lists in).  Plain data; the zero
/// value never collides with a computed hash in practice and is used as
/// "absent" by callers.
struct CanonicalHash128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend constexpr bool operator==(const CanonicalHash128&,
                                   const CanonicalHash128&) = default;
};

namespace chash {

/// splitmix64 finalizer — the diffusion step under every combinator.
[[nodiscard]] inline constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Two-lane accumulator: lane b folds in lane a after every word, so the
/// two 64-bit halves never degenerate into shifted copies of each other.
struct Accumulator {
  std::uint64_t a = 0x243F6A8885A308D3ull;  // pi fractional words
  std::uint64_t b = 0x13198A2E03707344ull;

  constexpr void feed(std::uint64_t w) noexcept {
    a = mix64(a ^ w);
    b = mix64(b + (w ^ 0xA5A5A5A5A5A5A5A5ull) + a);
  }

  [[nodiscard]] constexpr CanonicalHash128 digest() const noexcept {
    return CanonicalHash128{a, b};
  }
};

/// Complement-edge transform.  Deliberately NOT an involution and fully
/// diffused: complement(h) shares no algebraic relation with h, so
/// hash(!f) cannot be predicted from hash(f) and double complement never
/// arises (edges are canonical — the transform is applied at most once
/// per edge, driven by the serialized complement bit).
[[nodiscard]] inline constexpr CanonicalHash128 complement(
    CanonicalHash128 h) noexcept {
  return CanonicalHash128{mix64(h.lo ^ 0x452821E638D01377ull),
                          mix64(h.hi + 0xBE5466CF34E90C6Cull)};
}

/// Hash of a canonical serialized EDGE given the hash of its regular
/// node record and the edge's complement bit.
[[nodiscard]] inline constexpr CanonicalHash128 edge_hash(
    CanonicalHash128 regular, bool complemented) noexcept {
  return complemented ? complement(regular) : regular;
}

/// Hash of the ONE terminal (serialized node id 0).
[[nodiscard]] inline constexpr CanonicalHash128 one_hash() noexcept {
  Accumulator h;
  h.feed(0xB7E151628AED2A6Bull);
  return h.digest();
}
inline constexpr CanonicalHash128 kOneHash = one_hash();

/// Hash of one canonical node record: the rank-mapped variable plus the
/// EDGE hashes (complement already applied) of the canonical then/else
/// children.  In the canonical form the then-edge is never complemented,
/// so `hi` is always a regular-node hash; `lo` may carry a complement.
[[nodiscard]] inline constexpr CanonicalHash128 node_hash(
    std::uint32_t rank, CanonicalHash128 hi, CanonicalHash128 lo) noexcept {
  Accumulator h;
  h.feed(rank);
  h.feed(hi.lo);
  h.feed(hi.hi);
  h.feed(lo.lo);
  h.feed(lo.hi);
  return h.digest();
}

}  // namespace chash

/// Space token of the identity rank map (rank(v) == v), used by the
/// rank-less canonical_hash overload.  Token 0 means "uncacheable"
/// (every call invalidates); make_memo_space allocates tokens >= 2.
inline constexpr std::uint64_t kIdentityHashSpace = 1;

}  // namespace brel
