#include <stdexcept>
#include <unordered_map>

#include "bdd/bdd.hpp"

namespace brel {

using detail::Edge;
using detail::edge_is_constant;
using detail::edge_not;
using detail::kOne;
using detail::kZero;

Bdd BddManager::exists(const Bdd& f, std::span<const std::uint32_t> vars) {
  if (f.manager() != this) {
    throw std::invalid_argument("exists: operand from a different manager");
  }
  const Bdd cube = wrap(vars_cube(vars));  // keep the cube alive
  return wrap(exists_rec(f.raw_edge(), cube.raw_edge()));
}

Bdd BddManager::forall(const Bdd& f, std::span<const std::uint32_t> vars) {
  if (f.manager() != this) {
    throw std::invalid_argument("forall: operand from a different manager");
  }
  const Bdd cube = wrap(vars_cube(vars));
  // ∀v f = ¬∃v ¬f
  return wrap(edge_not(exists_rec(edge_not(f.raw_edge()), cube.raw_edge())));
}

Bdd BddManager::and_exists(const Bdd& f, const Bdd& g,
                           std::span<const std::uint32_t> vars) {
  if (f.manager() != this || g.manager() != this) {
    throw std::invalid_argument(
        "and_exists: operands from a different manager");
  }
  const Bdd cube = wrap(vars_cube(vars));
  return wrap(and_exists_rec(f.raw_edge(), g.raw_edge(), cube.raw_edge()));
}

Edge BddManager::exists_rec(Edge f, Edge cube) {
  if (edge_is_constant(f) || cube == kOne) {
    return f;
  }
  // Skip quantified variables above the top of f: they are not in supp(f).
  while (cube != kOne && node_level(cube) < node_level(f)) {
    cube = hi_of(cube);
  }
  if (cube == kOne) {
    return f;
  }
  Edge cached = 0;
  CacheProbe probe;
  if (cache_lookup(Op::Exists, f, cube, 0, cached, probe)) {
    return cached;
  }
  const std::uint32_t v = node_var(f);
  Edge result = 0;
  if (node_var(cube) == v) {
    const Edge rest = hi_of(cube);
    const Edge r1 = exists_rec(hi_of(f), rest);
    if (r1 == kOne) {
      result = kOne;
    } else {
      const Edge r0 = exists_rec(lo_of(f), rest);
      result = or_rec(r1, r0);
    }
  } else {
    result = make_node(v, exists_rec(hi_of(f), cube),
                       exists_rec(lo_of(f), cube));
  }
  cache_insert(probe, result);
  return result;
}

Edge BddManager::and_exists_rec(Edge f, Edge g, Edge cube) {
  // Relational product: ∃cube (f ∧ g) without building the conjunction.
  if (f == kZero || g == kZero) {
    return kZero;
  }
  if (f == kOne && g == kOne) {
    return kOne;
  }
  if (f == kOne) {
    return exists_rec(g, cube);
  }
  if (g == kOne) {
    return exists_rec(f, cube);
  }
  if (cube == kOne) {
    return and_rec(f, g);
  }
  const std::uint32_t v = top_var(f, g);
  while (cube != kOne && node_level(cube) < level_of(v)) {
    cube = hi_of(cube);
  }
  if (cube == kOne) {
    return and_rec(f, g);
  }
  Edge cached = 0;
  CacheProbe probe;
  if (cache_lookup(Op::AndExists, f, g, cube, cached, probe)) {
    return cached;
  }
  Edge result = 0;
  if (node_var(cube) == v) {
    const Edge rest = hi_of(cube);
    const Edge r1 =
        and_exists_rec(cofactor_top(f, v, true), cofactor_top(g, v, true),
                       rest);
    if (r1 == kOne) {
      result = kOne;
    } else {
      const Edge r0 =
          and_exists_rec(cofactor_top(f, v, false), cofactor_top(g, v, false),
                         rest);
      result = or_rec(r1, r0);
    }
  } else {
    result = make_node(
        v,
        and_exists_rec(cofactor_top(f, v, true), cofactor_top(g, v, true),
                       cube),
        and_exists_rec(cofactor_top(f, v, false), cofactor_top(g, v, false),
                       cube));
  }
  cache_insert(probe, result);
  return result;
}

Bdd BddManager::compose(const Bdd& f, std::span<const Bdd> substitution) {
  if (f.manager() != this) {
    throw std::invalid_argument("compose: operand from a different manager");
  }
  if (substitution.size() != num_vars_) {
    throw std::invalid_argument(
        "compose: substitution must cover every variable");
  }
  for (const Bdd& s : substitution) {
    if (s.manager() != this) {
      throw std::invalid_argument(
          "compose: substitution entry from a different manager");
    }
  }
  // Per-call memo: the substitution vector is not a cacheable key.  The
  // map itself is manager-owned scratch — clear() keeps the bucket array,
  // so after the first calls the table is reserved at the largest operand
  // DAG size seen and the hot loop never rehashes or reallocates.
  // (Computing the exact DAG size up front would cost its own traversal.)
  std::unordered_map<Edge, Edge>& memo = compose_memo_;
  memo.clear();
  // Keep intermediates alive: compose builds with ite over already-built
  // subresults; nothing triggers GC meanwhile (GC is explicit).
  auto rec = [&](auto&& self, Edge e) -> Edge {
    if (edge_is_constant(e)) {
      return e;
    }
    if (const auto it = memo.find(e); it != memo.end()) {
      return it->second;
    }
    const std::uint32_t v = node_var(e);
    const Edge t = self(self, hi_of(e));
    const Edge el = self(self, lo_of(e));
    const Edge result = ite_rec(substitution[v].raw_edge(), t, el);
    memo.emplace(e, result);
    return result;
  };
  return wrap(rec(rec, f.raw_edge()));
}

}  // namespace brel
