#pragma once
/// \file bdd_transfer.hpp
/// Cross-manager BDD transfer (the substrate of the parallel engine's
/// per-worker-manager design, and of the compact on-disk relation form).
///
/// A `BddManager` is strictly single-threaded, so a multi-worker search
/// gives every worker a private manager and moves *functions*, not nodes,
/// between them.  Two transfer paths exist:
///
///   - `transfer_bdd` / `BddManager::import_bdd`: a memoized recursive
///     export/import that walks the source DAG once and rebuilds it in the
///     destination's unique table.  Both managers are touched, so it is
///     only legal when the calling thread owns both — the coordinator uses
///     it to seed worker managers before the threads start and to pull the
///     winning solution back after they join.
///
///   - `SerializedBdd`: a manager-independent flattening (child-before-
///     parent node list + root edge).  Producing it only reads the source
///     manager; consuming it only writes the destination manager; the
///     value in between is plain data.  This is the hand-off unit of the
///     parallel engine's injection queue, and `relation_io` reuses it as
///     the `.bdd` compact relation format (no 2^n row enumeration).
///
/// Both paths preserve variable *ids* (copied verbatim, or uniformly
/// shifted by `deserialize_bdd`'s offset) and are independent of either
/// manager's dynamic variable order: the serialized form is always
/// expressed under the identity (var-index) order — a reordered source
/// re-canonicalizes while flattening, a reordered destination rebuilds
/// through ITE — so equal functions serialize byte-identically from any
/// manager in any order (the invariant GlobalMemo keys stand on), and a
/// transferred function means the same thing on both sides.  Structure
/// (node counts, split choices) matches the destination's order, which
/// equals the source's only when neither manager was reordered.

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "bdd/bdd.hpp"

namespace brel {

/// Manager-independent BDD: `nodes[k]` has serialized id k+1 (id 0 is the
/// constant ONE terminal), and every child id is smaller than its
/// parent's, so one forward pass rebuilds the DAG.  Edges use the same
/// encoding as detail::Edge: id << 1 | complement-bit (so edge 0 is ONE
/// and edge 1 is ZERO).
struct SerializedBdd {
  struct Node {
    std::uint32_t var;  ///< variable index (order-preserving)
    std::uint32_t hi;   ///< then-edge; never complemented (canonical form)
    std::uint32_t lo;   ///< else-edge
    [[nodiscard]] bool operator==(const Node&) const = default;
  };
  std::vector<Node> nodes;
  std::uint32_t root = 0;      ///< edge over serialized ids
  std::uint32_t num_vars = 0;  ///< 1 + max referenced variable (0 if none)

  [[nodiscard]] bool operator==(const SerializedBdd&) const = default;
};

/// Flatten `f` into the manager-independent form (touches only f's
/// manager; builds scratch nodes there when it has a non-identity order).
[[nodiscard]] SerializedBdd serialize_bdd(const Bdd& f);

/// Rebuild `s` in `dst`, shifting every variable by `var_offset` (the
/// shift preserves relative order).  Throws std::invalid_argument when the
/// serialized form is malformed or references variables `dst` lacks.
[[nodiscard]] Bdd deserialize_bdd(BddManager& dst, const SerializedBdd& s,
                                  std::uint32_t var_offset = 0);

/// Direct memoized transfer of `f` into `dst` (order-independent: falls
/// back to serialize + deserialize when either manager was reordered;
/// the calling thread must own both managers).
[[nodiscard]] Bdd transfer_bdd(const Bdd& f, BddManager& dst);

/// Text form of a serialized BDD, one node per line ("var hi lo", ids
/// implicit in listing order) terminated by the root line — the payload
/// of relation_io's `.bdd` section.
void write_serialized_bdd(std::ostream& os, const SerializedBdd& s);
/// Parse `node_count` node lines plus the `.root` line from `in`.
/// Throws std::invalid_argument on malformed input.
[[nodiscard]] SerializedBdd read_serialized_bdd(std::istream& in,
                                                std::size_t node_count);

}  // namespace brel
