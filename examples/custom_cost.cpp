// Customizable cost functions (Sec. 7.3): the same relation solved under
// four different objectives produces four different solutions.  Shows the
// built-in costs plus a fully custom lambda, and the BFS/DFS exploration
// orders.

#include <cstdio>

#include "benchgen/relation_suite.hpp"
#include "brel/solver.hpp"

namespace {

void solve_with(const char* title, const brel::BooleanRelation& r,
                brel::SolverOptions options) {
  using namespace brel;
  options.max_relations = 50;
  const SolveResult result = BrelSolver(options).solve(r);
  std::size_t literals = 0;
  std::size_t widest = 0;
  std::size_t total_nodes = 0;
  for (const Bdd& f : result.function.outputs) {
    literals += f.manager()->isop(f, f).cover.literal_count();
    widest = std::max(widest, f.support().size());
    total_nodes += f.size();
  }
  std::printf("%-34s cost=%7.0f  nodes=%3zu  lits=%3zu  max-support=%zu\n",
              title, result.cost, total_nodes, literals, widest);
}

}  // namespace

int main() {
  using namespace brel;
  BddManager mgr{0};
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> outputs;
  const BooleanRelation r =
      make_benchmark_relation(mgr, relation_suite()[2], inputs, outputs);
  std::printf("instance %s: %zu inputs, %zu outputs\n\n", "int3",
              r.num_inputs(), r.num_outputs());

  SolverOptions area;
  area.cost = sum_of_bdd_sizes();
  solve_with("sum of BDD sizes (area)", r, area);

  SolverOptions delay;
  delay.cost = sum_of_squared_bdd_sizes();
  solve_with("sum of squared sizes (delay)", r, delay);

  SolverOptions lits;
  lits.cost = literal_count_cost();
  solve_with("SOP literal count", r, lits);

  SolverOptions balance;
  balance.cost = support_balance_cost(8.0);
  solve_with("support balance (congestion)", r, balance);

  // Fully custom: penalize any output that depends on the first input
  // (e.g. a late-arriving signal).
  SolverOptions custom;
  const std::uint32_t late = inputs.front();
  custom.cost = [late](const MultiFunction& f) {
    double cost = 0.0;
    for (const Bdd& g : f.outputs) {
      cost += static_cast<double>(g.size());
      for (const std::uint32_t v : g.support()) {
        if (v == late) {
          cost += 100.0;  // strongly discourage using the late signal
        }
      }
    }
    return cost;
  };
  solve_with("custom: avoid late input", r, custom);

  // Frontier strategy ablation (Sec. 7.2 argues for BFS diversity; the
  // pluggable engine adds a cost-directed best-first order).
  SolverOptions bfs;
  bfs.order = ExplorationOrder::BreadthFirst;
  solve_with("BFS exploration (paper)", r, bfs);
  SolverOptions dfs;
  dfs.order = ExplorationOrder::DepthFirst;
  solve_with("DFS exploration", r, dfs);
  SolverOptions best;
  best.order = ExplorationOrder::BestFirst;
  solve_with("best-first exploration", r, best);
  SolverOptions cached;
  cached.use_subproblem_cache = true;
  solve_with("BFS + subproblem cache", r, cached);
  return 0;
}
