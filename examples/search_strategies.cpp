// The pluggable search engine: one relation explored under the three
// frontier strategies (partial BFS, DFS, best-first) and with whole-tree
// subproblem deduplication, with the exploration statistics side by side.
//
// Also shows the engine layer directly — BrelSolver is just a facade; a
// SearchEngine can be driven standalone when the caller wants access to
// the final SearchContext (cache hit rates, bound evolution, ...).

#include <cstdio>
#include <limits>

#include "benchgen/relation_suite.hpp"
#include "brel/search.hpp"

namespace {

void report(const char* title, const brel::SolveResult& result) {
  std::printf("%-28s cost=%6.0f explored=%3zu splits=%3zu pruned(cost)=%3zu "
              "pruned(cache)=%zu\n",
              title, result.cost, result.stats.relations_explored,
              result.stats.splits, result.stats.pruned_by_cost,
              result.stats.pruned_by_cache);
}

}  // namespace

int main() {
  using namespace brel;
  BddManager mgr{0};
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> outputs;
  const BooleanRelation r =
      make_benchmark_relation(mgr, relation_suite()[4], inputs, outputs);
  std::printf("instance %s: %zu inputs, %zu outputs\n\n",
              relation_suite()[4].name.c_str(), r.num_inputs(),
              r.num_outputs());

  // 1. The three frontier strategies through the solver facade.
  for (const auto& [title, order] :
       {std::pair{"partial BFS (paper)", ExplorationOrder::BreadthFirst},
        std::pair{"DFS", ExplorationOrder::DepthFirst},
        std::pair{"best-first (MISF cost)", ExplorationOrder::BestFirst}}) {
    SolverOptions options;
    options.max_relations = 30;
    options.order = order;
    report(title, BrelSolver(options).solve(r));
  }

  // 2. A cache shared across solves: the warm re-solve prunes every
  //    already-covered subtree and offers its memoized best instead of
  //    re-exploring — same cost as the cold solve, one explored relation
  //    (within a single run the cache never hits — Property 5.4; see
  //    subproblem_cache.hpp).
  SolverOptions cached;
  cached.max_relations = 30;
  cached.subproblem_cache = std::make_shared<SubproblemCache>();
  report("cold solve (cache empty)", BrelSolver(cached).solve(r));
  report("warm re-solve (shared)", BrelSolver(cached).solve(r));

  // 3. The engine layer directly: same run, but the caller keeps the
  //    context and can inspect the cache after the fact.
  SearchEngine engine(r, cached);
  const SolveResult result = engine.run();
  const SearchContext& ctx = engine.context();
  std::printf("\nengine run: cost=%.0f, bound=%s, cache %zu entries, "
              "%llu/%llu probe hits\n",
              result.cost,
              ctx.bound_cost == std::numeric_limits<double>::infinity()
                  ? "inf"
                  : "finite",
              ctx.cache->size(),
              static_cast<unsigned long long>(ctx.cache->hits()),
              static_cast<unsigned long long>(ctx.cache->probes()));
  return 0;
}
