// Solving a system of Boolean equations through a Boolean relation
// (Sec. 8 of the paper): reduce the system to a single characteristic
// equation, check consistency by quantification, extract an optimized
// particular solution with BREL, and build the Löwenheim parametric
// general solution.

#include <cstdio>

#include "equations/equations.hpp"

int main() {
  using namespace brel;

  // Independent variables {a, b}; dependent (unknown) functions {x, y, z}.
  BddManager mgr{5};
  const std::vector<std::uint32_t> X{0, 1};
  const std::vector<std::uint32_t> Y{2, 3, 4};
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  const Bdd x = mgr.var(2);
  const Bdd y = mgr.var(3);
  const Bdd z = mgr.var(4);

  // The system:  x + b·y·!z + !b·z = a
  //              x·y + x·z + y·z   = 0   (no two unknowns high at once)
  BoolEquationSystem system(mgr, X, Y);
  system.add_equation(x | (b & y & (!z)) | ((!b) & z), a);
  system.add_equation((x & y) | (x & z) | (y & z), mgr.zero());

  std::printf("satisfiable (∃X∃Y IE = 1): %s\n",
              system.is_satisfiable() ? "yes" : "no");
  std::printf("consistent  (∀X∃Y IE = 1): %s\n\n",
              system.is_consistent() ? "yes" : "no");

  // A particular solution, optimized by BREL (Theorem 8.1 reduction).
  const SolveResult solution = system.solve();
  const char* names[] = {"x", "y", "z"};
  for (std::size_t i = 0; i < 3; ++i) {
    const Bdd& f = solution.function.outputs[i];
    const IsopResult sop = mgr.isop(f, f);
    std::printf("%s(a,b) cover:\n%s", names[i],
                sop.cover.empty() ? "  (constant 0)\n"
                                  : sop.cover.to_string().c_str());
  }
  std::printf("verified by substitution: %s\n\n",
              system.is_solution(solution.function) ? "yes" : "no");

  // The Löwenheim general solution: every parameter choice instantiates
  // to a particular solution; solutions used as parameters reproduce
  // themselves.
  const auto general = system.general_solution(solution.function);
  std::printf("general solution over %zu parameters\n",
              general.parameters.size());
  const MultiFunction all_zero =
      system.instantiate(general, {mgr.zero(), mgr.zero(), mgr.zero()});
  std::printf("instantiation P = (0,0,0) is a solution: %s\n",
              system.is_solution(all_zero) ? "yes" : "no");
  const MultiFunction mixed = system.instantiate(general, {a, !b, a ^ b});
  std::printf("instantiation P = (a,!b,a^b) is a solution: %s\n",
              system.is_solution(mixed) ? "yes" : "no");
  return 0;
}
