// Example: the solver-pool service layer (solver_pool.hpp).
//
// Spins up a pool of two long-lived worker slots sharing one cross-solve
// memo, submits a handful of relation requests (including repeats), and
// shows the warm-memo effect: an identical re-solve is answered from the
// memo at zero exploration, at the same cost the cold solve returned.

#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "brel/solver_pool.hpp"
#include "relation/relation_io.hpp"

int main() {
  using namespace brel;

  // Two requests in the .br text format (the compact .bdd body works
  // too); fig1 is submitted twice to demonstrate the memo.
  const std::string fig1 =
      ".i 2\n.o 2\n.r\n00 00\n01 01\n10 00 11\n11 1-\n.e\n";
  const std::string other =
      ".i 2\n.o 2\n.r\n00 0-\n01 01\n10 11\n11 10 01\n.e\n";
  const std::vector<std::string> requests{fig1, other, fig1};

  PoolOptions options;
  options.workers = 2;                      // two persistent solver slots
  options.solver.cost = sum_of_bdd_sizes(); // one objective for the pool
  options.solver.max_relations = 25;
  SolverPool pool(options);

  std::vector<std::future<PoolResult>> futures;
  for (const std::string& text : requests) {
    futures.push_back(pool.submit(text));
  }

  for (std::size_t i = 0; i < futures.size(); ++i) {
    const PoolResult result = futures[i].get();
    // Results are manager-independent (rank-mapped serialized BDDs);
    // materialize this one in a local manager to inspect it.
    BddManager mgr{0};
    const BooleanRelation r = read_relation(mgr, requests[i]);
    const MultiFunction f = import_pool_solution(mgr, r, result);
    std::printf(
        "request %zu: cost=%.0f explored=%zu memo_hits=%zu worker=%zu "
        "compatible=%s\n",
        i, result.cost, result.stats.relations_explored,
        result.stats.memo_hits, result.worker_id,
        r.is_compatible(f) ? "yes" : "NO");
  }
  std::printf("memo: %zu entries, %llu hits / %llu probes\n",
              pool.memo()->size(),
              static_cast<unsigned long long>(pool.memo()->hits()),
              static_cast<unsigned long long>(pool.memo()->probes()));
  return 0;
}
