// Quickstart: define a Boolean relation, solve it with BREL, inspect the
// solution.  This is the paper's running example (Fig. 1): the input
// vertex 10 may map to 00 *or* 11 — a choice don't cares cannot express —
// and 11 may map to 10 or 11 (an ordinary don't care).

#include <cstdio>

#include "brel/solver.hpp"
#include "relation/relation.hpp"

int main() {
  using namespace brel;

  // 1. A manager and a variable layout: 2 inputs (x1 x2), 2 outputs (y1 y2).
  BddManager mgr{4};
  const std::vector<std::uint32_t> inputs{0, 1};
  const std::vector<std::uint32_t> outputs{2, 3};

  // 2. The relation, in the tabular notation of the paper.
  const BooleanRelation relation = BooleanRelation::from_table(
      mgr, inputs, outputs,
      {
          {"00", {"00"}},
          {"01", {"01"}},
          {"10", {"00", "11"}},  // non-don't-care flexibility
          {"11", {"10", "11"}},  // = the output cube "1-"
      });
  std::printf("Relation R:\n%s\n", relation.to_table().c_str());
  std::printf("well defined: %s, functional: %s\n\n",
              relation.is_well_defined() ? "yes" : "no",
              relation.is_function() ? "yes" : "no");

  // 3. Solve.  Default options reproduce the paper's setup: cost = sum of
  //    BDD sizes, bounded-FIFO BFS, QuickSolver safety net.
  const BrelSolver solver;
  const SolveResult result = solver.solve(relation);

  // 4. Inspect the solution: one BDD per output, plus SOP covers.
  std::printf("solution cost (sum of BDD sizes) = %.0f\n", result.cost);
  for (std::size_t i = 0; i < result.function.outputs.size(); ++i) {
    const Bdd& f = result.function.outputs[i];
    const IsopResult sop = mgr.isop(f, f);
    std::printf("y%zu: %zu BDD nodes, cover:\n%s", i + 1, f.size(),
                sop.cover.empty() ? "  (constant 0)\n"
                                  : sop.cover.to_string().c_str());
  }
  std::printf("compatible with R: %s\n",
              relation.is_compatible(result.function) ? "yes" : "no");
  std::printf("explored %zu relations, %zu splits, %zu conflicts\n",
              result.stats.relations_explored, result.stats.splits,
              result.stats.conflicts);
  return 0;
}
