// Multiway logic decomposition with a Boolean relation (Sec. 10.1):
// absorb part of f(x1,x2,x3) = x1(x2 + x3) + !x1 !x2 !x3 into a 2:1 mux
// Q(A,B,C) = A·!C + B·C.  The relation R(X, ABC) = f(X) ⇔ Q(A,B,C)
// encloses every decomposition (Fig. 11 shows several); the cost function
// selects among them.

#include <cstdio>

#include "decomp/decompose.hpp"
#include "synth/gate_network.hpp"

namespace {

void report(const char* title, const brel::Decomposition& d,
            brel::BddManager& mgr,
            const std::vector<std::uint32_t>& inputs) {
  using namespace brel;
  std::printf("%s\n", title);
  const char* names[] = {"A", "B", "C"};
  for (std::size_t i = 0; i < 3; ++i) {
    const Bdd& f = d.branches.outputs[i];
    const IsopResult sop = mgr.isop(f, f);
    Cover projected(inputs.size());
    for (const Cube& cube : sop.cover.cubes()) {
      Cube p(inputs.size());
      for (std::size_t k = 0; k < inputs.size(); ++k) {
        p.set_lit(k, cube.lit(inputs[k]));
      }
      projected.add_cube(p);
    }
    const FactorTree tree = algebraic_factor(projected);
    std::printf("  %s(x1,x2,x3) = %s\n", names[i],
                tree.to_string({"x1", "x2", "x3"}).c_str());
  }
  const NetworkScore score = score_functions(d.branches.outputs, inputs);
  std::printf("  mapped: area=%.0f depth=%.0f (mux itself absorbed)\n\n",
              score.area, score.depth);
}

}  // namespace

int main() {
  using namespace brel;
  BddManager mgr{6};
  const std::vector<std::uint32_t> inputs{0, 1, 2};
  const std::vector<std::uint32_t> abc{3, 4, 5};

  const Bdd x1 = mgr.var(0);
  const Bdd x2 = mgr.var(1);
  const Bdd x3 = mgr.var(2);
  const Bdd f = (x1 & (x2 | x3)) | ((!x1) & (!x2) & (!x3));
  const Bdd gate = mux_gate(mgr.var(3), mgr.var(4), mgr.var(5));

  const BooleanRelation r = decomposition_relation(f, inputs, gate, abc);
  std::printf("decomposition relation has %zu+%zu variables; "
              "well defined: %s\n\n",
              r.num_inputs(), r.num_outputs(),
              r.is_well_defined() ? "yes" : "no");

  // Area-oriented decomposition (Σ BDD sizes).
  {
    SolverOptions options;
    options.cost = sum_of_bdd_sizes();
    options.max_relations = 200;
    const Decomposition d = decompose(f, inputs, gate, abc,
                                      BrelSolver(options));
    std::printf("verified F = mux(A,B,C): %s\n",
                verify_decomposition(f, gate, abc, d.branches) ? "yes"
                                                               : "no");
    report("area-oriented decomposition (cost = sum of BDD sizes):", d, mgr,
           inputs);
  }

  // Delay-oriented decomposition (Σ BDD sizes² balances the branches).
  {
    SolverOptions options;
    options.cost = sum_of_squared_bdd_sizes();
    options.max_relations = 200;
    const Decomposition d = decompose(f, inputs, gate, abc,
                                      BrelSolver(options));
    report("delay-oriented decomposition (cost = sum of squared sizes):", d,
           mgr, inputs);
  }
  return 0;
}
