// Working with relation files: parse a .br-style description, repair a
// partial relation by totalization, solve it, and write the solution's
// functional relation back in the same format.

#include <cstdio>

#include "brel/solver.hpp"
#include "relation/relation_io.hpp"

int main() {
  using namespace brel;
  BddManager mgr{0};

  // A partial relation: input vertex 11 has no image at all.
  const char* text =
      "# a partial 2->2 relation\n"
      ".i 2\n"
      ".o 2\n"
      ".r\n"
      "00 0- \n"
      "01 10 01\n"
      "10 11\n"
      ".e\n";
  const BooleanRelation partial = read_relation(mgr, text);
  std::printf("parsed relation:\n%s\n", partial.to_table().c_str());
  std::printf("well defined: %s\n\n",
              partial.is_well_defined() ? "yes" : "no");

  // Totalize: unconstrained inputs may produce anything.
  const BooleanRelation total = partial.totalized();
  std::printf("after totalization:\n%s\n", total.to_table().c_str());

  // Solve and express the chosen function as a (functional) relation.
  const SolveResult result = BrelSolver().solve(total);
  const BooleanRelation solution_relation = total.constrain_with(
      total.function_characteristic(result.function));
  std::printf("solution as a .br file:\n%s",
              write_relation(solution_relation).c_str());

  // Round-trip sanity.
  BddManager fresh{0};
  const BooleanRelation reparsed =
      read_relation(fresh, write_relation(solution_relation));
  std::printf("\nround-trip is a function: %s\n",
              reparsed.is_function() ? "yes" : "no");
  return 0;
}
