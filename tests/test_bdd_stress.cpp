// Stress tests for the BDD substrate: garbage collection under load,
// unique-table growth, canonicity across GC cycles, deep structures and
// interleaved variable creation.

#include <gtest/gtest.h>

#include <random>

#include "bdd/bdd.hpp"

namespace brel {
namespace {

TEST(BddStressTest, CanonicityAcrossManyGcCycles) {
  BddManager mgr{10};
  const Bdd anchor = (mgr.var(0) & mgr.var(1)) | (mgr.var(2) ^ mgr.var(3));
  const detail::Edge anchor_edge = anchor.raw_edge();
  std::mt19937 rng{5};
  for (int cycle = 0; cycle < 20; ++cycle) {
    {
      // A pile of garbage functions.
      std::vector<Bdd> garbage;
      Bdd acc = mgr.one();
      for (int i = 0; i < 50; ++i) {
        const Bdd f = mgr.literal(rng() % 10, rng() % 2 == 0);
        const Bdd g = mgr.literal(rng() % 10, rng() % 2 == 0);
        acc = mgr.ite(f, acc, g ^ acc);
        garbage.push_back(acc);
      }
    }
    mgr.garbage_collect();
    // The anchor must still be alive, equal, and canonically unique.
    EXPECT_EQ(anchor.raw_edge(), anchor_edge);
    const Bdd rebuilt =
        (mgr.var(0) & mgr.var(1)) | (mgr.var(2) ^ mgr.var(3));
    EXPECT_TRUE(rebuilt == anchor);
  }
  EXPECT_EQ(mgr.stats().gc_runs, 20u);
}

TEST(BddStressTest, GcReclaimsMostNodes) {
  BddManager mgr{12};
  {
    Bdd dead = mgr.zero();
    std::mt19937 rng{7};
    for (int i = 0; i < 200; ++i) {
      dead = dead | (mgr.literal(rng() % 12, rng() % 2 == 0) &
                     mgr.literal(rng() % 12, rng() % 2 == 0) &
                     mgr.literal(rng() % 12, rng() % 2 == 0));
    }
    EXPECT_GT(mgr.stats().live_nodes, 100u);
  }
  mgr.garbage_collect();
  EXPECT_LT(mgr.stats().live_nodes, 40u);
}

TEST(BddStressTest, OperationsCorrectAfterGc) {
  BddManager mgr{8};
  const Bdd f = (mgr.var(0) | mgr.var(1)) & (mgr.var(2) | mgr.var(3));
  {
    Bdd garbage = f;
    for (int i = 0; i < 30; ++i) {
      garbage = garbage ^ mgr.var(i % 8);
    }
  }
  mgr.garbage_collect();
  // The computed cache was cleared: recompute through fresh recursions.
  const std::vector<std::uint32_t> q{0, 2};
  const Bdd e = mgr.exists(f, q);
  EXPECT_TRUE(e.is_one());  // ∃x0 x2: some assignment satisfies both ors
  const Bdd g = mgr.forall(f, q);
  EXPECT_TRUE(g == (mgr.var(1) & mgr.var(3)));
}

TEST(BddStressTest, LargeParityChain) {
  BddManager mgr{128};
  Bdd parity = mgr.zero();
  for (std::uint32_t i = 0; i < 128; ++i) {
    parity = parity ^ mgr.var(i);
  }
  // Parity of n variables: n internal nodes + terminal (complement edges).
  EXPECT_EQ(parity.size(), 129u);
  std::vector<bool> point(128, false);
  EXPECT_FALSE(parity.eval(point));
  point[17] = true;
  EXPECT_TRUE(parity.eval(point));
  point[91] = true;
  EXPECT_FALSE(parity.eval(point));
}

TEST(BddStressTest, WideConjunctionGrowsTable) {
  BddManager mgr{64};
  Bdd all = mgr.one();
  for (std::uint32_t i = 0; i < 64; ++i) {
    all = all & mgr.var(i);
  }
  EXPECT_EQ(all.size(), 65u);
  EXPECT_DOUBLE_EQ(mgr.sat_count(all, 64), 1.0);
  EXPECT_GT(mgr.stats().peak_nodes, 64u);
}

TEST(BddStressTest, AddVarsInterleavedWithOperations) {
  BddManager mgr{2};
  Bdd f = mgr.var(0) & mgr.var(1);
  for (int round = 0; round < 10; ++round) {
    const std::uint32_t v = mgr.add_vars(1);
    f = f | (mgr.var(v) & mgr.var(v - 1));
    EXPECT_FALSE(f.is_constant());
  }
  EXPECT_EQ(mgr.num_vars(), 12u);
  EXPECT_EQ(f.support().size(), 12u);
}

TEST(BddStressTest, RandomOpSequenceMatchesTruthTables) {
  // Long mixed op sequence on 4 variables, cross-checked against 16-bit
  // truth tables, with periodic GCs in the middle.
  constexpr std::uint32_t kVars = 4;
  BddManager mgr{kVars};
  std::mt19937 rng{11};
  std::vector<std::pair<Bdd, std::uint16_t>> pool;
  for (std::uint32_t v = 0; v < kVars; ++v) {
    std::uint16_t table = 0;
    for (std::uint32_t i = 0; i < 16; ++i) {
      if (((i >> v) & 1u) != 0) {
        table |= static_cast<std::uint16_t>(1u << i);
      }
    }
    pool.emplace_back(mgr.var(v), table);
  }
  for (int step = 0; step < 300; ++step) {
    const auto& [fa, ta] = pool[rng() % pool.size()];
    const auto& [fb, tb] = pool[rng() % pool.size()];
    Bdd result;
    std::uint16_t table = 0;
    switch (rng() % 4) {
      case 0:
        result = fa & fb;
        table = ta & tb;
        break;
      case 1:
        result = fa | fb;
        table = ta | tb;
        break;
      case 2:
        result = fa ^ fb;
        table = ta ^ tb;
        break;
      default:
        result = !fa;
        table = static_cast<std::uint16_t>(~ta);
        break;
    }
    pool.emplace_back(result, table);
    if (pool.size() > 40) {
      pool.erase(pool.begin() + 4, pool.begin() + 20);
      mgr.garbage_collect();
    }
  }
  for (const auto& [f, table] : pool) {
    for (std::uint32_t i = 0; i < 16; ++i) {
      std::vector<bool> point(kVars);
      for (std::uint32_t v = 0; v < kVars; ++v) {
        point[v] = ((i >> v) & 1u) != 0;
      }
      EXPECT_EQ(f.eval(point), ((table >> i) & 1u) != 0);
    }
  }
}

TEST(BddStressTest, CacheHitRateIsMeaningful) {
  BddManager mgr{16};
  std::mt19937 rng{13};
  Bdd acc = mgr.one();
  for (int i = 0; i < 200; ++i) {
    acc = mgr.ite(mgr.literal(rng() % 16, rng() % 2 == 0), acc,
                  (!acc) | mgr.var(rng() % 16));
  }
  const BddStats& stats = mgr.stats();
  EXPECT_GT(stats.cache_lookups, 0u);
  EXPECT_GT(stats.cache_hits, 0u);
}

}  // namespace
}  // namespace brel
