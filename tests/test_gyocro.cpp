// Tests for the gyocro-style baseline: compatibility of all moves, the
// Fig. 10 local-minimum behaviour, and the BREL comparison of Sec. 9.1.

#include <gtest/gtest.h>

#include <random>

#include "benchgen/paper_relations.hpp"
#include "brel/solver.hpp"
#include "gyocro/gyocro.hpp"
#include "relation/enumeration.hpp"

namespace brel {
namespace {

class GyocroTest : public ::testing::Test {
 protected:
  BddManager mgr{0};
  RelationSpace space = make_space(mgr, 2, 2);
};

TEST_F(GyocroTest, SolutionIsAlwaysCompatible) {
  for (const BooleanRelation& r : {fig1_relation(mgr, space),
                                   fig10_relation(mgr, space),
                                   fig8_relation(mgr, space)}) {
    const GyocroResult result = GyocroSolver().solve(r);
    EXPECT_TRUE(r.is_compatible(result.function));
  }
}

TEST_F(GyocroTest, RejectsIllDefinedRelation) {
  const BooleanRelation broken = fig1_relation(mgr, space)
      .constrain_with(!(mgr.literal(space.inputs[0], true) &
                        mgr.literal(space.inputs[1], false)));
  EXPECT_THROW((void)GyocroSolver().solve(broken), std::invalid_argument);
}

TEST_F(GyocroTest, CoversMatchReportedCounts) {
  const GyocroResult result =
      GyocroSolver().solve(fig10_relation(mgr, space));
  std::size_t cubes = 0;
  std::size_t literals = 0;
  for (const Cover& cover : result.covers) {
    cubes += cover.cube_count();
    literals += cover.literal_count();
  }
  EXPECT_EQ(result.cube_count, cubes);
  EXPECT_EQ(result.literal_count, literals);
}

TEST_F(GyocroTest, TrappedInFig10LocalMinimum) {
  // Sec. 9.1: from the QuickSolver start (x ⇔ 1)(y ⇔ !a + b), no sequence
  // of reduce/expand/irredundant moves reaches the 2-cube optimum
  // (x ⇔ !b)(y ⇔ !a): gyocro stays at 3 cubes.
  const BooleanRelation r = fig10_relation(mgr, space);
  const GyocroResult gyocro = GyocroSolver().solve(r);
  EXPECT_EQ(gyocro.cube_count, 3u);

  // BREL escapes (Fig. 6): the exact optimum has 2 cubes.
  SolverOptions options;
  options.cost = cube_count_cost();
  options.exact = true;
  const SolveResult brel = BrelSolver(options).solve(r);
  EXPECT_DOUBLE_EQ(brel.cost, 2.0);
  EXPECT_LT(brel.cost, static_cast<double>(gyocro.cube_count));
}

TEST_F(GyocroTest, MovesNeverIncreaseObjective) {
  // The final objective can never exceed the initial QuickSolver one.
  const BooleanRelation r = fig8_relation(mgr, space);
  const GyocroResult result = GyocroSolver().solve(r);
  // Initial = quick solution covers.
  BooleanRelation current = r;
  std::size_t initial_cubes = 0;
  for (std::size_t i = 0; i < r.num_outputs(); ++i) {
    const Isf isf = current.project_output(i);
    const IsopResult isop = IsfMinimizer{}.minimize_to_cover(isf);
    initial_cubes += isop.cover.cube_count();
    current = current.constrain_with(
        mgr.var(r.outputs()[i]).iff(isop.function));
  }
  EXPECT_LE(result.cube_count, initial_cubes);
}

TEST_F(GyocroTest, HerbModeIsCompatibleAndSingleSteps) {
  // Herb [18] expands one variable at a time (Sec. 3); the result must
  // still be compatible and no better than gyocro's multi-literal expand
  // on the same instance.
  const BooleanRelation r = fig10_relation(mgr, space);
  GyocroOptions herb_options;
  herb_options.multi_literal_expand = false;
  const GyocroResult herb = GyocroSolver(herb_options).solve(r);
  EXPECT_TRUE(r.is_compatible(herb.function));
  const GyocroResult gyocro = GyocroSolver().solve(r);
  EXPECT_LE(gyocro.cube_count, herb.cube_count);
  // Both are trapped by the Fig. 10 local minimum.
  EXPECT_EQ(herb.cube_count, 3u);
}

TEST_F(GyocroTest, HerbModeOnRandomRelations) {
  std::mt19937 rng{17};
  for (int iter = 0; iter < 8; ++iter) {
    BddManager local{0};
    const RelationSpace sp = make_space(local, 3, 2);
    std::vector<std::pair<std::string, std::vector<std::string>>> rows;
    const std::vector<std::string> all{"00", "01", "10", "11"};
    for (int v = 0; v < 8; ++v) {
      std::vector<std::string> image{all[rng() % all.size()]};
      if (rng() % 2 == 0) {
        image.push_back(all[rng() % all.size()]);
      }
      std::string bits(3, '0');
      for (int k = 0; k < 3; ++k) {
        bits[static_cast<std::size_t>(k)] = ((v >> k) & 1) != 0 ? '1' : '0';
      }
      rows.emplace_back(bits, image);
    }
    const BooleanRelation r =
        BooleanRelation::from_table(local, sp.inputs, sp.outputs, rows);
    GyocroOptions herb_options;
    herb_options.multi_literal_expand = false;
    const GyocroResult herb = GyocroSolver(herb_options).solve(r);
    EXPECT_TRUE(r.is_compatible(herb.function));
  }
}

TEST_F(GyocroTest, RandomRelationsStayCompatible) {
  // Property sweep: random well-defined relations; gyocro's result must be
  // compatible and no worse than the quick solution in cube count.
  std::mt19937 rng{7};
  for (int iter = 0; iter < 15; ++iter) {
    BddManager local{0};
    const RelationSpace sp = make_space(local, 3, 2);
    // Random image (non-empty subset of 4 vertices) per input vertex.
    std::vector<std::pair<std::string, std::vector<std::string>>> rows;
    const std::vector<std::string> all{"00", "01", "10", "11"};
    for (int v = 0; v < 8; ++v) {
      std::vector<std::string> image;
      for (const std::string& y : all) {
        if (std::bernoulli_distribution{0.5}(rng)) {
          image.push_back(y);
        }
      }
      if (image.empty()) {
        image.push_back(all[rng() % all.size()]);
      }
      std::string bits(3, '0');
      for (int k = 0; k < 3; ++k) {
        bits[static_cast<std::size_t>(k)] = ((v >> k) & 1) != 0 ? '1' : '0';
      }
      rows.emplace_back(bits, image);
    }
    const BooleanRelation r =
        BooleanRelation::from_table(local, sp.inputs, sp.outputs, rows);
    const GyocroResult result = GyocroSolver().solve(r);
    EXPECT_TRUE(r.is_compatible(result.function));
  }
}

}  // namespace
}  // namespace brel
