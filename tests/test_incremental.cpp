// Differential tests for the incremental re-solve path (tentpole of the
// delta-driven search-reuse work):
//
//   - the depth-indexed memo completeness rules (global_memo.hpp) that
//     make warm entries servable at interior depths of a depth-capped
//     run without ever overclaiming;
//   - randomized minterm-flip differentials: for every benchmark
//     instance, flipping k in {1, 4, 32} minterms and re-solving
//     incrementally (warm memo + DeltaRegistry base) must be
//     BIT-IDENTICAL — cost and rank-mapped solution BDDs — to a cold
//     solve of the edited relation, at 1, 2 and 4 workers;
//   - edge cases: identical re-solve (delta = nothing, served at the
//     root), a completely different base (delta = everything), a
//     one-minterm edit of a tiny paper relation (delta confined to the
//     root split), and a base solved from a reordered manager (keys are
//     canonical, so reuse must survive variable-order divergence).
//
// The configuration is the schedule-independent one throughout
// (use_cost_bound=false plus a depth cap; cf. test_parallel_engine.cpp):
// that is what makes "bit-identical to cold" a meaningful contract, and
// it is also the configuration where the new per-subtree completeness
// marks bite (no hard taints, so every touched key gets marked).

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "benchgen/paper_relations.hpp"
#include "benchgen/relation_suite.hpp"
#include "brel/parallel_engine.hpp"
#include "brel/search.hpp"
#include "brel/solver.hpp"

namespace brel {
namespace {

/// The schedule-independent configuration (see the header comment).
SolverOptions deterministic_options(std::size_t max_depth) {
  SolverOptions options;
  options.cost = sum_of_bdd_sizes();
  options.max_relations = static_cast<std::size_t>(-1);
  options.use_cost_bound = false;
  options.max_depth = max_depth;
  return options;
}

/// A solve result in the manager-independent rank form, so "the same
/// solution" is plain struct equality across managers.
PortableSolution portable(const BooleanRelation& r, const SolveResult& s) {
  return make_portable_solution(make_memo_space(r), s.function, s.cost);
}

/// Run base then edited through a shared memo + registry and compare the
/// edited result against a cold memo-less solve of the same options.
/// `bit_identical` additionally requires the solution BDDs to match in
/// rank form.  With the schedule-independent configuration this holds
/// for BOTH engines: equal-cost ties resolve through the canonical
/// total order (canonically_before) at every selection point, so the
/// surviving incumbent no longer depends on worker schedule or memo
/// arrival order.
/// Returns the warm run's stats so callers can aggregate reuse counters.
SolverStats expect_warm_equals_cold(const BooleanRelation& base,
                                    const BooleanRelation& edited,
                                    SolverOptions options, const char* label,
                                    bool bit_identical) {
  SolverOptions cold_options = options;
  cold_options.global_memo = nullptr;
  cold_options.delta_registry = nullptr;
  const SolveResult cold = BrelSolver(cold_options).solve(edited);
  EXPECT_TRUE(edited.is_compatible(cold.function)) << label;

  const auto memo = std::make_shared<GlobalMemo>();
  DeltaRegistry registry;
  options.global_memo = memo;
  options.delta_registry = &registry;
  const SolveResult warm_base = BrelSolver(options).solve(base);
  EXPECT_FALSE(warm_base.stats.budget_exhausted) << label;
  const SolveResult warm = BrelSolver(options).solve(edited);

  EXPECT_TRUE(warm.stats.delta_active) << label;
  EXPECT_EQ(warm.cost, cold.cost) << label;
  if (bit_identical) {
    EXPECT_EQ(portable(edited, warm), portable(edited, cold)) << label;
  }
  EXPECT_TRUE(edited.is_compatible(warm.function)) << label;
  // Memo-hit pruning can only shrink the re-explored set, never grow it.
  EXPECT_LE(warm.stats.relations_explored, cold.stats.relations_explored)
      << label;
  return warm.stats;
}

TEST(IncrementalTest, DepthIndexedCompletenessRules) {
  // The memo-side contract under everything else in this file: a
  // truncated entry serves ONLY probers with the same remaining budget,
  // a natural entry serves everyone at or above its depth, upgrades
  // widen and never narrow.
  BddManager mgr{0};
  const RelationSpace space = make_space(mgr, 2, 2);
  const BooleanRelation r = fig1_relation(mgr, space);
  const MemoSpace memo_space = make_memo_space(r);
  const auto key = std::make_shared<const GlobalMemoKey>(
      make_memo_key(memo_space, r.characteristic()));
  const MultiFunction f = quick_solve(r);
  const PortableSolution solution =
      make_portable_solution(memo_space, f, 42.0);

  GlobalMemo memo;
  memo.bind(MemoFingerprint{sum_of_bdd_sizes().id(), false});
  const MemoRunStamp stamp = memo.begin_run();
  memo.publish(*key, solution, stamp.run_id);

  // Unmarked: invisible at every depth.
  EXPECT_FALSE(memo.lookup_at(*key, 0).has_value());
  EXPECT_FALSE(memo.lookup_at(*key, 3).has_value());

  // Truncated at depth 2: serves depth 2 exactly, nothing else.
  {
    const MemoMark marks[] = {MemoMark{key, 2, true}};
    memo.mark_complete(std::span<const MemoMark>(marks), stamp);
  }
  ASSERT_TRUE(memo.lookup_at(*key, 2).has_value());
  EXPECT_TRUE(memo.lookup_at(*key, 2)->depth_truncated);
  EXPECT_EQ(memo.lookup_at(*key, 2)->solution, solution);
  EXPECT_FALSE(memo.lookup_at(*key, 1).has_value());
  EXPECT_FALSE(memo.lookup_at(*key, 3).has_value());

  // Natural at depth 2 replaces the truncated claim: depths 0..2 serve
  // (shallower probers have MORE remaining budget below a fixed cap),
  // depth 3 still does not.
  {
    const MemoMark marks[] = {MemoMark{key, 2, false}};
    memo.mark_complete(std::span<const MemoMark>(marks), stamp);
  }
  ASSERT_TRUE(memo.lookup_at(*key, 1).has_value());
  EXPECT_FALSE(memo.lookup_at(*key, 1)->depth_truncated);
  EXPECT_FALSE(memo.lookup_at(*key, 3).has_value());

  // A deeper natural mark widens; a later truncated mark never narrows.
  {
    const MemoMark marks[] = {MemoMark{key, GlobalMemo::kAnyDepth, false}};
    memo.mark_complete(std::span<const MemoMark>(marks), stamp);
  }
  EXPECT_TRUE(memo.lookup_at(*key, 3).has_value());
  {
    const MemoMark marks[] = {MemoMark{key, 1, true}};
    memo.mark_complete(std::span<const MemoMark>(marks), stamp);
  }
  EXPECT_TRUE(memo.lookup_at(*key, 3).has_value());
  EXPECT_FALSE(memo.lookup_at(*key, 3)->depth_truncated);
}

TEST(IncrementalTest, FlipDifferentialsAreBitIdenticalSerial) {
  // The acceptance bar, serial engine: every suite instance, k flips of
  // the characteristic, incremental result == cold result byte for byte.
  // Subtree-level reuse (no pre-split) requires the edited tree to both
  // retrace the base run's split path AND remove the change on it, which
  // depends on where the flip lands — so the reuse counter is asserted
  // as a suite aggregate, not per instance (the partitioned test below
  // pins the per-instance localization guarantee).
  std::size_t total_reused = 0;
  for (const RelationBenchmark& bench : relation_suite()) {
    for (const std::size_t flips : {std::size_t{1}, std::size_t{4},
                                    std::size_t{32}}) {
      BddManager mgr{0};
      std::vector<std::uint32_t> inputs;
      std::vector<std::uint32_t> outputs;
      const BooleanRelation base =
          make_benchmark_relation(mgr, bench, inputs, outputs);
      const BooleanRelation edited = flip_minterms(
          base, flips, bench.seed ^ static_cast<std::uint32_t>(flips));
      if (edited.characteristic() == base.characteristic()) {
        continue;  // flips cancelled out (astronomically unlikely)
      }
      const std::string label =
          bench.name + " k=" + std::to_string(flips);
      total_reused += expect_warm_equals_cold(base, edited,
                                              deterministic_options(6),
                                              label.c_str(), true)
                          .delta_reused;
    }
  }
  EXPECT_GT(total_reused, 0u);
}

TEST(IncrementalTest, PartitionedFlipLocalizesToOneBlock) {
  // The near-free-repeat-traffic guarantee (partition.hpp): with the
  // delta-localization pre-split armed, a 1-minterm flip dirties exactly
  // one input-cofactor block — every other block root-hits its base
  // entry at zero exploration — and the composed result is bit-identical
  // to a cold partitioned solve.
  for (const RelationBenchmark& bench : relation_suite()) {
    BddManager mgr{0};
    std::vector<std::uint32_t> inputs;
    std::vector<std::uint32_t> outputs;
    const BooleanRelation base =
        make_benchmark_relation(mgr, bench, inputs, outputs);
    const BooleanRelation edited = flip_minterms(base, 1, bench.seed ^ 1u);
    ASSERT_FALSE(edited.characteristic() == base.characteristic())
        << bench.name;
    SolverOptions options = deterministic_options(6);
    options.partition_inputs = 5;
    const std::size_t blocks =
        std::size_t{1} << std::min<std::size_t>(5, bench.num_inputs - 1);
    const SolverStats warm = expect_warm_equals_cold(
        base, edited, options, bench.name.c_str(), true);
    EXPECT_EQ(warm.delta_researched, 1u) << bench.name;
    EXPECT_GE(warm.delta_reused, blocks - 1) << bench.name;
  }
}

TEST(IncrementalTest, PartitionedIdenticalResolveExploresNothing) {
  // Warm-identical traffic under the pre-split: all blocks root-hit, so
  // the whole re-solve explores zero relations and returns the identical
  // composed solution.
  BddManager mgr{0};
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> outputs;
  const BooleanRelation r = make_benchmark_relation(
      mgr, relation_suite()[2], inputs, outputs);  // int3: 6 inputs
  SolverOptions options = deterministic_options(6);
  options.partition_inputs = 5;
  options.global_memo = std::make_shared<GlobalMemo>();
  DeltaRegistry registry;
  options.delta_registry = &registry;
  const SolveResult cold = BrelSolver(options).solve(r);
  const SolveResult warm = BrelSolver(options).solve(r);
  EXPECT_EQ(warm.cost, cold.cost);
  EXPECT_EQ(portable(r, warm), portable(r, cold));
  EXPECT_EQ(warm.stats.relations_explored, 0u);
  EXPECT_EQ(warm.stats.memo_hits, 32u);  // one root hit per block
}

TEST(IncrementalTest, FlipDifferentialsAreBitIdenticalParallel) {
  // Same bar across worker counts, on a suite subset (the parallel
  // engine's schedule-independence is pinned by its own suite-wide
  // differential tests; here the interesting axis is delta + injection).
  for (std::size_t i : {std::size_t{0}, std::size_t{2}, std::size_t{8},
                        std::size_t{12}}) {
    const RelationBenchmark& bench = relation_suite()[i];
    for (const std::size_t workers : {std::size_t{2}, std::size_t{4}}) {
      for (const std::size_t flips : {std::size_t{1}, std::size_t{4}}) {
        BddManager mgr{0};
        std::vector<std::uint32_t> inputs;
        std::vector<std::uint32_t> outputs;
        const BooleanRelation base =
            make_benchmark_relation(mgr, bench, inputs, outputs);
        const BooleanRelation edited = flip_minterms(
            base, flips, bench.seed ^ static_cast<std::uint32_t>(flips));
        if (edited.characteristic() == base.characteristic()) {
          continue;
        }
        SolverOptions options = deterministic_options(6);
        options.num_workers = workers;
        const std::string label = bench.name + " k=" +
                                  std::to_string(flips) + " w=" +
                                  std::to_string(workers);
        (void)expect_warm_equals_cold(base, edited, options, label.c_str(),
                                      true);
      }
    }
  }
}

TEST(IncrementalTest, IdenticalResolveIsServedAtTheRoot) {
  // Delta = nothing degenerates to the PR 4 warm-root fast path: the
  // unchanged relation root-hits the memo, explores zero nodes, and the
  // registry still learns it as the freshest base.
  BddManager mgr{0};
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> outputs;
  const BooleanRelation r = make_benchmark_relation(
      mgr, relation_suite().front(), inputs, outputs);
  SolverOptions options = deterministic_options(6);
  options.global_memo = std::make_shared<GlobalMemo>();
  DeltaRegistry registry;
  options.delta_registry = &registry;

  const SolveResult cold = BrelSolver(options).solve(r);
  const SolveResult warm = BrelSolver(options).solve(r);
  EXPECT_EQ(warm.cost, cold.cost);
  EXPECT_EQ(portable(r, warm), portable(r, cold));
  EXPECT_EQ(warm.stats.relations_explored, 0u);
  EXPECT_EQ(warm.stats.memo_hits, 1u);
  EXPECT_FALSE(warm.stats.delta_active);  // a hit needs no diff

  // ...and a subsequent genuine edit still arms against that base.
  const BooleanRelation edited = flip_minterms(r, 1, 99);
  ASSERT_FALSE(edited.characteristic() == r.characteristic());
  const SolveResult delta_run = BrelSolver(options).solve(edited);
  EXPECT_TRUE(delta_run.stats.delta_active);
  EXPECT_TRUE(edited.is_compatible(delta_run.function));
}

TEST(IncrementalTest, CompletelyDifferentBaseStillYieldsColdResult) {
  // Delta = everything: the registry offers a base that shares nothing
  // with the request beyond its variable spaces.  The diff is then a
  // near-total change region — no reuse, but the overlay must stay
  // invisible in the result.
  BddManager mgr{0};
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> outputs;
  const RelationBenchmark& spec = relation_suite().front();
  const BooleanRelation base =
      make_benchmark_relation(mgr, spec, inputs, outputs);
  const RelationBenchmark other_spec{"unrelated", spec.num_inputs,
                                     spec.num_outputs, 0xBADC0DEu};
  std::vector<std::uint32_t> other_inputs;
  std::vector<std::uint32_t> other_outputs;
  const BooleanRelation other =
      make_benchmark_relation(mgr, other_spec, other_inputs, other_outputs);
  ASSERT_FALSE(other.characteristic() == base.characteristic());
  (void)expect_warm_equals_cold(base, other, deterministic_options(6),
                                "disjoint base", true);
}

TEST(IncrementalTest, RootSplitOnlyEditOnTinyRelation) {
  // A one-minterm edit of the 2x2 Fig. 1 relation: the change region is
  // confined to one root-split half, the smallest nontrivial delta.
  BddManager mgr{0};
  const RelationSpace space = make_space(mgr, 2, 2);
  const BooleanRelation base = fig1_relation(mgr, space);
  const BooleanRelation edited = flip_minterms(base, 1, 7);
  ASSERT_FALSE(edited.characteristic() == base.characteristic());
  (void)expect_warm_equals_cold(base, edited, deterministic_options(6),
                                "fig1 one-minterm", true);
}

TEST(IncrementalTest, ReorderedBaseManagerStillServesTheDelta) {
  // The PR 5 interaction: the base was solved from a manager whose
  // variable order diverged from identity.  Memo keys and registry
  // bases are canonical (identity-order serialized forms), so the
  // edited request — parsed into a plain identity-order manager — must
  // still find the base, arm the delta, and return the cold result.
  BddManager reordered{0};
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> outputs;
  const RelationBenchmark& spec = relation_suite().front();
  const BooleanRelation base_reordered =
      make_benchmark_relation(reordered, spec, inputs, outputs);
  reordered.reorder();

  const auto memo = std::make_shared<GlobalMemo>();
  DeltaRegistry registry;
  SolverOptions options = deterministic_options(6);
  options.global_memo = memo;
  options.delta_registry = &registry;
  const SolveResult warm_base = BrelSolver(options).solve(base_reordered);
  ASSERT_FALSE(warm_base.stats.budget_exhausted);

  BddManager plain{0};
  std::vector<std::uint32_t> plain_inputs;
  std::vector<std::uint32_t> plain_outputs;
  const BooleanRelation base_plain =
      make_benchmark_relation(plain, spec, plain_inputs, plain_outputs);
  const BooleanRelation edited = flip_minterms(base_plain, 1, 12345);
  ASSERT_FALSE(edited.characteristic() == base_plain.characteristic());

  SolverOptions cold_options = deterministic_options(6);
  const SolveResult cold = BrelSolver(cold_options).solve(edited);
  const SolveResult warm = BrelSolver(options).solve(edited);
  EXPECT_TRUE(warm.stats.delta_active);
  EXPECT_EQ(warm.cost, cold.cost);
  EXPECT_EQ(portable(edited, warm), portable(edited, cold));
  EXPECT_TRUE(edited.is_compatible(warm.function));
}

}  // namespace
}  // namespace brel
