// Property tests for cross-manager BDD transfer (bdd_transfer.hpp): the
// serialized round trip is semantically identical (truth-table equality
// on <= 12 variables), idempotent under repeated transfer, and preserves
// node counts for already-reduced functions; the direct import path
// agrees with the serialized one; the text form and the relation_io
// `.bdd` body both round-trip.

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <vector>

#include "bdd/bdd_transfer.hpp"
#include "benchgen/relation_suite.hpp"
#include "relation/relation_io.hpp"

namespace brel {
namespace {

/// Deterministic pseudo-random function over `num_vars` variables: an OR
/// of random cubes (the same recipe regardless of manager, so the same
/// seed builds the same function anywhere).
Bdd random_function(BddManager& mgr, std::uint32_t num_vars,
                    std::uint32_t seed) {
  std::mt19937 rng{seed};
  const std::size_t cubes = 2 + rng() % 6;
  Bdd acc = mgr.zero();
  for (std::size_t c = 0; c < cubes; ++c) {
    Bdd cube = mgr.one();
    for (std::uint32_t v = 0; v < num_vars; ++v) {
      switch (rng() % 3) {
        case 0:
          cube = cube & mgr.var(v);
          break;
        case 1:
          cube = cube & !mgr.var(v);
          break;
        default:
          break;
      }
    }
    acc = acc | cube;
  }
  return acc;
}

/// Truth-table equality of two functions living in different managers.
void expect_same_truth_table(const Bdd& a, const Bdd& b,
                             std::uint32_t num_vars) {
  ASSERT_LE(num_vars, 12u);
  std::vector<bool> xa(a.manager()->num_vars(), false);
  std::vector<bool> xb(b.manager()->num_vars(), false);
  for (std::uint64_t code = 0; code < (std::uint64_t{1} << num_vars);
       ++code) {
    for (std::uint32_t v = 0; v < num_vars; ++v) {
      const bool bit = ((code >> v) & 1u) != 0;
      xa[v] = bit;
      xb[v] = bit;
    }
    ASSERT_EQ(a.eval(xa), b.eval(xb)) << "diverges at minterm " << code;
  }
}

TEST(BddTransferTest, SerializedRoundTripIsSemanticallyIdentical) {
  for (const std::uint32_t num_vars : {1u, 4u, 8u, 12u}) {
    for (std::uint32_t seed = 0; seed < 8; ++seed) {
      BddManager src{num_vars};
      BddManager dst{num_vars};
      const Bdd f = random_function(src, num_vars, seed * 131 + num_vars);
      const Bdd g = deserialize_bdd(dst, serialize_bdd(f));
      expect_same_truth_table(f, g, num_vars);
    }
  }
}

TEST(BddTransferTest, RoundTripPreservesNodeCounts) {
  // The package only ever builds reduced BDDs, and both transfer paths
  // preserve the variable order — so the destination DAG must be node-
  // for-node the same size.
  for (std::uint32_t seed = 0; seed < 10; ++seed) {
    BddManager src{10};
    BddManager dst{10};
    const Bdd f = random_function(src, 10, 977 * seed + 3);
    const SerializedBdd s = serialize_bdd(f);
    const Bdd g = deserialize_bdd(dst, s);
    EXPECT_EQ(f.size(), g.size());
    // The serialized node list is exactly the DAG (terminal excluded).
    EXPECT_EQ(s.nodes.size() + 1, f.size());
  }
}

TEST(BddTransferTest, TransferIsIdempotent) {
  BddManager src{8};
  BddManager dst{8};
  for (std::uint32_t seed = 0; seed < 10; ++seed) {
    const Bdd f = random_function(src, 8, seed);
    // Same function in, same canonical edge out — repeated imports and
    // repeated serialized transfers may not drift.
    const Bdd once = dst.import_bdd(f);
    const Bdd twice = dst.import_bdd(f);
    EXPECT_EQ(once, twice);
    const Bdd via_serial = deserialize_bdd(dst, serialize_bdd(f));
    EXPECT_EQ(once, via_serial);
    // serialize(deserialize(s)) reproduces s exactly.
    const SerializedBdd s = serialize_bdd(f);
    EXPECT_EQ(serialize_bdd(via_serial), s);
  }
}

TEST(BddTransferTest, ImportAgreesWithSerializedPathOnBenchRelations) {
  // Full-size characteristic functions from the benchmark generator (up
  // to 12 variables) through both transfer paths, plus the round trip
  // *back* into the source manager, which canonicity turns into an exact
  // edge comparison.
  for (const RelationBenchmark& bench : relation_suite()) {
    if (bench.num_inputs + bench.num_outputs > 12) {
      continue;
    }
    BddManager src{0};
    std::vector<std::uint32_t> inputs;
    std::vector<std::uint32_t> outputs;
    const BooleanRelation r =
        make_benchmark_relation(src, bench, inputs, outputs);
    BddManager dst{src.num_vars()};
    const Bdd direct = dst.import_bdd(r.characteristic());
    const Bdd serial = deserialize_bdd(dst, serialize_bdd(r.characteristic()));
    EXPECT_EQ(direct, serial) << bench.name;
    const Bdd back = src.import_bdd(direct);
    EXPECT_EQ(back, r.characteristic()) << bench.name;
  }
}

TEST(BddTransferTest, ConstantsAndComplementsTransfer) {
  BddManager src{4};
  BddManager dst{4};
  EXPECT_TRUE(dst.import_bdd(src.one()).is_one());
  EXPECT_TRUE(dst.import_bdd(src.zero()).is_zero());
  EXPECT_TRUE(deserialize_bdd(dst, serialize_bdd(src.one())).is_one());
  EXPECT_TRUE(deserialize_bdd(dst, serialize_bdd(src.zero())).is_zero());
  const Bdd f = random_function(src, 4, 42);
  EXPECT_EQ(dst.import_bdd(!f), !dst.import_bdd(f));
}

TEST(BddTransferTest, VariableOffsetShiftsSupport) {
  BddManager src{4};
  BddManager dst{12};
  const Bdd f = random_function(src, 4, 7);
  const Bdd g = deserialize_bdd(dst, serialize_bdd(f), 8);
  const std::vector<std::uint32_t> support = g.support();
  for (const std::uint32_t v : support) {
    EXPECT_GE(v, 8u);
  }
  std::vector<std::uint32_t> expected = f.support();
  for (std::uint32_t& v : expected) {
    v += 8;
  }
  EXPECT_EQ(support, expected);
}

TEST(BddTransferTest, TextFormRoundTrips) {
  BddManager src{9};
  const Bdd f = random_function(src, 9, 123);
  const SerializedBdd s = serialize_bdd(f);
  std::ostringstream os;
  write_serialized_bdd(os, s);
  std::istringstream in(os.str());
  EXPECT_EQ(read_serialized_bdd(in, s.nodes.size()), s);
}

TEST(BddTransferTest, MalformedInputIsRejected) {
  BddManager mgr{4};
  {
    // Child id not below the parent id.
    SerializedBdd s;
    s.nodes.push_back({0, 4, 1});  // references node id 2: unknown
    s.root = 2;
    EXPECT_THROW((void)mgr.deserialize_bdd(s), std::invalid_argument);
  }
  {
    // Variable outside the destination manager.
    SerializedBdd s;
    s.nodes.push_back({99, 0, 1});
    s.root = 2;
    EXPECT_THROW((void)mgr.deserialize_bdd(s), std::invalid_argument);
  }
  {
    // Parent variable not above the child's (order violation).
    SerializedBdd s;
    s.nodes.push_back({2, 0, 1});  // id 1: var 2
    s.nodes.push_back({2, 2, 1});  // id 2: var 2 again, child id 1
    s.root = 4;
    EXPECT_THROW((void)mgr.deserialize_bdd(s), std::invalid_argument);
  }
  {
    // Offset pushing a legal variable out of range.
    SerializedBdd s;
    s.nodes.push_back({3, 0, 1});
    s.root = 2;
    EXPECT_THROW((void)mgr.deserialize_bdd(s, 2), std::invalid_argument);
    EXPECT_NO_THROW((void)mgr.deserialize_bdd(s, 0));
  }
  {
    // Truncated / malformed text payloads.
    std::istringstream truncated("0 0 1\n");
    EXPECT_THROW((void)read_serialized_bdd(truncated, 2),
                 std::invalid_argument);
    std::istringstream junk("zero one two\n.root 2\n");
    EXPECT_THROW((void)read_serialized_bdd(junk, 1), std::invalid_argument);
  }
  // Cross-manager handles are rejected by serialize, null by both.
  BddManager other{4};
  EXPECT_THROW((void)other.serialize_bdd(mgr.one()), std::invalid_argument);
  EXPECT_THROW((void)serialize_bdd(Bdd{}), std::invalid_argument);
  EXPECT_THROW((void)mgr.import_bdd(Bdd{}), std::invalid_argument);
}

TEST(BddTransferTest, RelationIoRejectsMalformedCompactBodies) {
  BddManager mgr{0};
  // Ranks without a .bdd body would be silently dropped — reject them.
  EXPECT_THROW((void)read_relation(
                   mgr, ".i 2\n.o 1\n.iv 1 0\n.r\n00 1\n01 1\n.e\n"),
               std::invalid_argument);
  // A lying node count must fail as a parse error (truncated list), not
  // as an allocation failure escaping the line-numbered error contract.
  EXPECT_THROW((void)read_relation(
                   mgr, ".i 2\n.o 1\n.bdd 18446744073709551615\n.e\n"),
               std::invalid_argument);
  EXPECT_THROW(
      (void)read_relation(mgr, ".i 2\n.o 1\n.bdd 2000000000\n.e\n"),
      std::invalid_argument);
  // Rank out of range / wrong count / overlap.
  EXPECT_THROW((void)read_relation(
                   mgr, ".i 2\n.o 1\n.iv 0 7\n.bdd 0\n.root 0\n.e\n"),
               std::invalid_argument);
  EXPECT_THROW((void)read_relation(
                   mgr, ".i 2\n.o 1\n.iv 0\n.bdd 0\n.root 0\n.e\n"),
               std::invalid_argument);
  EXPECT_THROW(
      (void)read_relation(
          mgr, ".i 2\n.o 1\n.iv 0 1\n.ov 1\n.bdd 0\n.root 0\n.e\n"),
      std::invalid_argument);
}

TEST(BddTransferTest, RelationIoCompactBodyRoundTrips) {
  // write_relation_bdd -> read_relation must reproduce the relation.
  // write_relation's enumerated text is manager-independent, so it is
  // the cross-manager equality oracle.
  for (const RelationBenchmark& bench : relation_suite()) {
    if (bench.num_inputs > 8) {
      continue;  // keep the 2^n enumeration oracle cheap
    }
    BddManager src{0};
    std::vector<std::uint32_t> inputs;
    std::vector<std::uint32_t> outputs;
    const BooleanRelation r =
        make_benchmark_relation(src, bench, inputs, outputs);
    const std::string compact = write_relation_bdd(r);
    BddManager dst{0};
    const BooleanRelation back = read_relation(dst, compact);
    EXPECT_EQ(back.num_inputs(), r.num_inputs()) << bench.name;
    EXPECT_EQ(back.num_outputs(), r.num_outputs()) << bench.name;
    EXPECT_EQ(write_relation(back), write_relation(r)) << bench.name;
  }
}

TEST(BddTransferTest, CompactBodySmallerThanEnumerationOnWideInputs) {
  // The point of the compact form: linear in the BDD, not 2^n.
  BddManager mgr{0};
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> outputs;
  const BooleanRelation r = make_benchmark_relation(
      mgr, relation_suite().back(), inputs, outputs);  // she4: 8 inputs
  EXPECT_LT(write_relation_bdd(r).size(), write_relation(r).size());
}

}  // namespace
}  // namespace brel
