// Tests for the BREL solver core: QuickSolver, ISF minimizer strategies,
// the recursive branch-and-bound, exactness against enumeration, symmetry
// pruning and budget handling.

#include <gtest/gtest.h>

#include <random>

#include "benchgen/paper_relations.hpp"
#include "brel/solver.hpp"
#include "relation/enumeration.hpp"

namespace brel {
namespace {

class BrelSolverTest : public ::testing::Test {
 protected:
  BddManager mgr{0};
  RelationSpace space = make_space(mgr, 2, 2);

  Bdd a() { return mgr.var(space.inputs[0]); }
  Bdd b() { return mgr.var(space.inputs[1]); }
};

TEST_F(BrelSolverTest, QuickSolverReturnsCompatibleSolution) {
  for (const BooleanRelation& r : {fig1_relation(mgr, space),
                                   fig10_relation(mgr, space),
                                   fig8_relation(mgr, space)}) {
    const MultiFunction f = quick_solve(r);
    EXPECT_TRUE(r.is_compatible(f));
  }
}

TEST_F(BrelSolverTest, QuickSolverRejectsIllDefinedRelation) {
  const BooleanRelation r = fig1_relation(mgr, space);
  const BooleanRelation broken =
      r.constrain_with(!(mgr.literal(space.inputs[0], true) &
                         mgr.literal(space.inputs[1], false)));
  EXPECT_THROW((void)quick_solve(broken), std::invalid_argument);
}

TEST_F(BrelSolverTest, QuickSolverIsGreedyOnFig10) {
  // Sec. 9.1: the quick solution gives all flexibility to the first output
  // (x ⇔ 1) and leaves the second unbalanced (y ⇔ !a + b).
  const BooleanRelation r = fig10_relation(mgr, space);
  const MultiFunction f = quick_solve(r);
  EXPECT_TRUE(f.outputs[0].is_one());
  EXPECT_TRUE(f.outputs[1] == ((!a()) | b()));
}

TEST_F(BrelSolverTest, SolverEscapesQuickSolverLocalMinimum) {
  // Fig. 10: BREL must find the 2-cube optimum (x ⇔ !b)(y ⇔ !a), which the
  // expand-reduce-irredundant paradigm cannot reach.
  const BooleanRelation r = fig10_relation(mgr, space);
  SolverOptions options;
  options.cost = sum_of_squared_bdd_sizes();
  const SolveResult result = BrelSolver(options).solve(r);
  EXPECT_TRUE(r.is_compatible(result.function));
  EXPECT_TRUE(result.function.outputs[0] == !b());
  EXPECT_TRUE(result.function.outputs[1] == !a());
  EXPECT_DOUBLE_EQ(result.cost, 8.0);
}

TEST_F(BrelSolverTest, SolverSolutionAlwaysCompatible) {
  for (const BooleanRelation& r : {fig1_relation(mgr, space),
                                   fig10_relation(mgr, space),
                                   fig8_relation(mgr, space)}) {
    const SolveResult result = BrelSolver().solve(r);
    EXPECT_TRUE(r.is_compatible(result.function));
    EXPECT_GT(result.stats.relations_explored, 0u);
  }
}

TEST_F(BrelSolverTest, SolverRejectsIllDefinedRelation) {
  const BooleanRelation r = fig1_relation(mgr, space);
  const BooleanRelation broken =
      r.constrain_with(!(mgr.literal(space.inputs[0], true) &
                         mgr.literal(space.inputs[1], false)));
  EXPECT_THROW((void)BrelSolver().solve(broken), std::invalid_argument);
}

TEST_F(BrelSolverTest, FunctionalRelationIsTerminalCase) {
  // A functional relation has exactly one solution; the solver must return
  // it immediately.
  MultiFunction f;
  f.outputs = {a() ^ b(), a() & b()};
  const BooleanRelation any =
      BooleanRelation::full(mgr, space.inputs, space.outputs);
  const BooleanRelation rf =
      any.constrain_with(any.function_characteristic(f));
  const SolveResult result = BrelSolver().solve(rf);
  EXPECT_TRUE(result.function.outputs[0] == f.outputs[0]);
  EXPECT_TRUE(result.function.outputs[1] == f.outputs[1]);
  EXPECT_EQ(result.stats.splits, 0u);
}

TEST_F(BrelSolverTest, ExactModeMatchesEnumerationOnPaperRelations) {
  for (const BooleanRelation& r : {fig1_relation(mgr, space),
                                   fig10_relation(mgr, space),
                                   fig8_relation(mgr, space)}) {
    SolverOptions options;
    options.exact = true;
    options.cost = sum_of_bdd_sizes();
    const SolveResult result = BrelSolver(options).solve(r);
    const ExactOptimum truth = exact_optimum(r, sum_of_bdd_sizes());
    EXPECT_DOUBLE_EQ(result.cost, truth.cost);
    EXPECT_TRUE(r.is_compatible(result.function));
  }
}

TEST_F(BrelSolverTest, ExactModeMatchesEnumerationUnderSquaredCost) {
  const BooleanRelation r = fig10_relation(mgr, space);
  SolverOptions options;
  options.exact = true;
  options.cost = sum_of_squared_bdd_sizes();
  const SolveResult result = BrelSolver(options).solve(r);
  const ExactOptimum truth = exact_optimum(r, sum_of_squared_bdd_sizes());
  EXPECT_DOUBLE_EQ(result.cost, truth.cost);
}

TEST_F(BrelSolverTest, BudgetOfOneStillYieldsASolution) {
  // Sec. 7.6: QuickSolver guarantees a solution no matter how small the
  // exploration budget is.
  SolverOptions options;
  options.max_relations = 1;
  const BooleanRelation r = fig10_relation(mgr, space);
  const SolveResult result = BrelSolver(options).solve(r);
  EXPECT_TRUE(r.is_compatible(result.function));
}

TEST_F(BrelSolverTest, FifoCapacityDropsChildrenButKeepsSolutions) {
  SolverOptions options;
  options.max_relations = 100;
  options.fifo_capacity = 1;
  const BooleanRelation r = fig10_relation(mgr, space);
  const SolveResult result = BrelSolver(options).solve(r);
  EXPECT_TRUE(r.is_compatible(result.function));
}

TEST_F(BrelSolverTest, LargerBudgetNeverWorsensTheSolution) {
  const BooleanRelation r = fig10_relation(mgr, space);
  double previous = std::numeric_limits<double>::infinity();
  for (const std::size_t budget : {1u, 2u, 5u, 10u, 50u}) {
    SolverOptions options;
    options.max_relations = budget;
    const SolveResult result = BrelSolver(options).solve(r);
    EXPECT_LE(result.cost, previous);
    previous = result.cost;
  }
}

TEST_F(BrelSolverTest, StatsAreConsistent) {
  const BooleanRelation r = fig10_relation(mgr, space);
  SolverOptions options;
  options.max_relations = 10;
  const SolveResult result = BrelSolver(options).solve(r);
  const SolverStats& s = result.stats;
  EXPECT_GE(s.solutions_seen, 1u);
  EXPECT_GE(s.quick_solutions, 1u);
  EXPECT_LE(s.relations_explored, 10u);
  // Each split produces at most two quick solutions beyond the root one.
  EXPECT_LE(s.quick_solutions, 1 + 2 * s.splits);
  EXPECT_GT(s.runtime_seconds, 0.0);
}

TEST_F(BrelSolverTest, SymmetryPruningSkipsMirroredBranch) {
  // Fig. 8: after the first split the two subrelations are images of each
  // other under the output swap x <-> y, so one of them is pruned.
  const BooleanRelation r = fig8_relation(mgr, space);
  SolverOptions with_sym;
  with_sym.use_symmetry = true;
  with_sym.max_relations = 100;
  const SolveResult pruned = BrelSolver(with_sym).solve(r);
  EXPECT_GT(pruned.stats.pruned_by_symmetry, 0u);
  EXPECT_TRUE(r.is_compatible(pruned.function));

  SolverOptions without_sym;
  without_sym.use_symmetry = false;
  without_sym.max_relations = 100;
  const SolveResult full = BrelSolver(without_sym).solve(r);
  // Permutation-invariant cost: pruning must not change the result cost.
  EXPECT_DOUBLE_EQ(pruned.cost, full.cost);
}

TEST_F(BrelSolverTest, SymmetryCacheDetectsSwapAndComplementedSwap) {
  SymmetryCache cache(mgr, space.outputs);
  const Bdd x = mgr.var(space.outputs[0]);
  const Bdd y = mgr.var(space.outputs[1]);
  const Bdd chi = (a() & x & !y) | ((!a()) & !x & y);
  EXPECT_FALSE(cache.seen_before_or_insert(chi));
  EXPECT_TRUE(cache.seen_before_or_insert(chi));  // itself
  // Swap image.
  const Bdd swapped = (a() & y & !x) | ((!a()) & !y & x);
  EXPECT_TRUE(cache.seen_before_or_insert(swapped));
  // Complemented-swap image: x -> !y, y -> !x.
  const Bdd skewed = (a() & !y & x) | ((!a()) & y & !x);
  EXPECT_TRUE(cache.seen_before_or_insert(skewed));
  // An unrelated relation is not reported.
  const Bdd other = b() & x & y;
  EXPECT_FALSE(cache.seen_before_or_insert(other));
  EXPECT_EQ(cache.hits(), 3u);
}

TEST_F(BrelSolverTest, CostFunctionsEvaluateAsDocumented) {
  MultiFunction f;
  f.outputs = {a() & b(), mgr.one()};
  // BDD sizes: and = 3 nodes (two decisions + terminal), one = 1 node.
  EXPECT_DOUBLE_EQ(sum_of_bdd_sizes()(f), 4.0);
  EXPECT_DOUBLE_EQ(sum_of_squared_bdd_sizes()(f), 10.0);
  EXPECT_DOUBLE_EQ(cube_count_cost()(f), 2.0);   // "ab" + universal cube
  EXPECT_DOUBLE_EQ(literal_count_cost()(f), 2.0);
}

TEST_F(BrelSolverTest, CustomCostFunctionGuidesTheSearch) {
  // Cost that *punishes* balanced solutions: prefer all flexibility on one
  // output.  The solver should then keep the quick solution (x ⇔ 1).
  const BooleanRelation r = fig10_relation(mgr, space);
  SolverOptions options;
  options.cost = [](const MultiFunction& f) {
    // Reward constant outputs.
    double c = 0.0;
    for (const Bdd& g : f.outputs) {
      c += g.is_constant() ? 0.0 : 10.0 + static_cast<double>(g.size());
    }
    return c;
  };
  options.exact = true;
  const SolveResult result = BrelSolver(options).solve(r);
  EXPECT_TRUE(result.function.outputs[0].is_constant());
}

class IsfMinimizerMethodTest : public ::testing::TestWithParam<IsfMethod> {};

TEST_P(IsfMinimizerMethodTest, ResultAlwaysInsideInterval) {
  BddManager mgr{6};
  std::mt19937 rng{42};
  for (int iter = 0; iter < 30; ++iter) {
    // Random ISF over 6 variables via random ON/DC tables.
    Bdd on = mgr.zero();
    Bdd dc = mgr.zero();
    for (std::uint32_t i = 0; i < 64; ++i) {
      Bdd minterm = mgr.one();
      for (std::uint32_t j = 0; j < 6; ++j) {
        minterm = minterm & mgr.literal(j, ((i >> j) & 1u) != 0);
      }
      switch (rng() % 3) {
        case 0:
          on = on | minterm;
          break;
        case 1:
          dc = dc | minterm;
          break;
        default:
          break;
      }
    }
    const Isf isf(on, dc & !on);
    for (const bool elim : {false, true}) {
      const IsfMinimizer minimizer{GetParam(), elim};
      const Bdd f = minimizer.minimize(isf);
      EXPECT_TRUE(isf.contains(f))
          << "method violates the ISF interval (elim=" << elim << ")";
      const IsopResult cover = minimizer.minimize_to_cover(isf);
      EXPECT_TRUE(isf.contains(cover.function));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, IsfMinimizerMethodTest,
                         ::testing::Values(IsfMethod::Isop,
                                           IsfMethod::Constrain,
                                           IsfMethod::Restrict,
                                           IsfMethod::SafeRestrict));

}  // namespace
}  // namespace brel
