// Tests for the algorithmic BDD layer: quantification, compose, constrain,
// restrict, ISOP, satcount, shortest cube, minterm utilities.

#include <gtest/gtest.h>

#include "bdd/bdd.hpp"

namespace brel {
namespace {

class BddAlgorithmsTest : public ::testing::Test {
 protected:
  BddManager mgr{8};

  Bdd v(std::uint32_t i) { return mgr.var(i); }
};

TEST_F(BddAlgorithmsTest, ExistsSingleVariable) {
  const Bdd f = (v(0) & v(1)) | ((!v(0)) & v(2));
  const std::vector<std::uint32_t> q{0};
  // ∃x0 f = f|x0=1 + f|x0=0 = x1 + x2
  EXPECT_TRUE(mgr.exists(f, q) == (v(1) | v(2)));
}

TEST_F(BddAlgorithmsTest, ForallSingleVariable) {
  const Bdd f = (v(0) & v(1)) | ((!v(0)) & v(2));
  const std::vector<std::uint32_t> q{0};
  // ∀x0 f = f|x0=1 · f|x0=0 = x1 · x2
  EXPECT_TRUE(mgr.forall(f, q) == (v(1) & v(2)));
}

TEST_F(BddAlgorithmsTest, ExistsMultipleVariables) {
  const Bdd f = (v(0) & v(1) & v(2)) | (v(3) & !v(1));
  const std::vector<std::uint32_t> q{1, 2};
  const Bdd expected = v(0) | v(3);
  EXPECT_TRUE(mgr.exists(f, q) == expected);
}

TEST_F(BddAlgorithmsTest, ExistsOfVariableNotInSupport) {
  const Bdd f = v(0) & v(1);
  const std::vector<std::uint32_t> q{5};
  EXPECT_TRUE(mgr.exists(f, q) == f);
  EXPECT_TRUE(mgr.forall(f, q) == f);
}

TEST_F(BddAlgorithmsTest, QuantifierDuality) {
  const Bdd f = (v(0) ^ v(1)) | (v(2) & v(3));
  const std::vector<std::uint32_t> q{1, 3};
  EXPECT_TRUE(mgr.forall(f, q) == !mgr.exists(!f, q));
}

TEST_F(BddAlgorithmsTest, AndExistsMatchesComposition) {
  const Bdd f = (v(0) & v(1)) | v(2);
  const Bdd g = ((!v(1)) | v(3)) & v(0);
  const std::vector<std::uint32_t> q{1, 2};
  EXPECT_TRUE(mgr.and_exists(f, g, q) == mgr.exists(f & g, q));
}

TEST_F(BddAlgorithmsTest, ComposeSubstitutesFunctions) {
  const Bdd f = v(0) ^ v(1);
  std::vector<Bdd> sub;
  for (std::uint32_t i = 0; i < mgr.num_vars(); ++i) {
    sub.push_back(v(i));
  }
  sub[0] = v(2) & v(3);
  sub[1] = v(4) | v(5);
  const Bdd composed = mgr.compose(f, sub);
  EXPECT_TRUE(composed == ((v(2) & v(3)) ^ (v(4) | v(5))));
}

TEST_F(BddAlgorithmsTest, ComposeIdentityIsNoop) {
  const Bdd f = (v(0) & v(1)) | (v(2) ^ v(3));
  std::vector<Bdd> sub;
  for (std::uint32_t i = 0; i < mgr.num_vars(); ++i) {
    sub.push_back(v(i));
  }
  EXPECT_TRUE(mgr.compose(f, sub) == f);
}

TEST_F(BddAlgorithmsTest, ComposeSwapsVariables) {
  const Bdd f = v(0) & !v(1);
  std::vector<Bdd> sub;
  for (std::uint32_t i = 0; i < mgr.num_vars(); ++i) {
    sub.push_back(v(i));
  }
  std::swap(sub[0], sub[1]);
  EXPECT_TRUE(mgr.compose(f, sub) == (v(1) & !v(0)));
}

TEST_F(BddAlgorithmsTest, ConstrainAgreesOnCareSet) {
  const Bdd f = (v(0) & v(1)) | (v(2) & !v(3));
  const Bdd care = v(0) ^ v(2);
  const Bdd g = mgr.constrain(f, care);
  // On the care set the generalized cofactor equals f.
  EXPECT_TRUE((care & (f ^ g)).is_zero());
}

TEST_F(BddAlgorithmsTest, ConstrainWithCubeIsCofactor) {
  const Bdd f = (v(0) & v(1)) | ((!v(0)) & v(2));
  EXPECT_TRUE(mgr.constrain(f, v(0)) == v(1));
  EXPECT_TRUE(mgr.constrain(f, !v(0)) == v(2));
}

TEST_F(BddAlgorithmsTest, RestrictAgreesOnCareSet) {
  const Bdd f = (v(0) & v(1)) | (v(2) & !v(3));
  const Bdd care = (v(0) & v(3)) | v(1);
  const Bdd g = mgr.restrict_to(f, care);
  EXPECT_TRUE((care & (f ^ g)).is_zero());
}

TEST_F(BddAlgorithmsTest, RestrictSupportStaysWithinOperands) {
  // Restrict smooths care variables above f's support instead of pulling
  // them into the result.
  const Bdd f = v(2) & v(3);
  const Bdd care = (v(0) & v(2)) | ((!v(0)) & v(3));
  const Bdd g = mgr.restrict_to(f, care);
  for (const std::uint32_t var : g.support()) {
    EXPECT_GE(var, 2u);
  }
  EXPECT_TRUE((care & (f ^ g)).is_zero());
}

TEST_F(BddAlgorithmsTest, ConstrainRejectsEmptyCare) {
  EXPECT_THROW((void)mgr.constrain(v(0), mgr.zero()), std::invalid_argument);
  EXPECT_THROW((void)mgr.restrict_to(v(0), mgr.zero()), std::invalid_argument);
}

TEST_F(BddAlgorithmsTest, SatCountSmallFunctions) {
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.zero(), 3), 0.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.one(), 3), 8.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(v(0), 3), 4.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(v(0) & v(1), 3), 2.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(v(0) ^ v(1), 3), 4.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(v(0) | v(1) | v(2), 3), 7.0);
}

TEST_F(BddAlgorithmsTest, ShortestCubeFindsFewestLiterals) {
  // f = x0·x1·x2 + x3 — the shortest cube is the single literal x3.
  const Bdd f = (v(0) & v(1) & v(2)) | v(3);
  const Cube cube = mgr.shortest_cube(f);
  EXPECT_EQ(cube.literal_count(), 1u);
  EXPECT_EQ(cube.lit(3), Lit::One);
}

TEST_F(BddAlgorithmsTest, ShortestCubeIsAnImplicant) {
  const Bdd f = (v(0) & !v(1)) | (v(2) & v(3) & v(4));
  const Cube cube = mgr.shortest_cube(f);
  std::vector<std::uint32_t> identity;
  for (std::uint32_t i = 0; i < mgr.num_vars(); ++i) {
    identity.push_back(i);
  }
  EXPECT_TRUE(mgr.cube_bdd(cube, identity).subset_of(f));
}

TEST_F(BddAlgorithmsTest, ShortestCubeOfZeroThrows) {
  EXPECT_THROW((void)mgr.shortest_cube(mgr.zero()), std::invalid_argument);
}

TEST_F(BddAlgorithmsTest, PickMintermSatisfies) {
  const Bdd f = ((!v(0)) & v(1)) | (v(2) & v(5));
  const std::vector<bool> point = mgr.pick_minterm(f);
  EXPECT_TRUE(f.eval(point));
}

TEST_F(BddAlgorithmsTest, CubeBddRoundTrip) {
  std::vector<std::uint32_t> identity;
  for (std::uint32_t i = 0; i < mgr.num_vars(); ++i) {
    identity.push_back(i);
  }
  const Cube cube = Cube::parse("1-0-----");
  const Bdd f = mgr.cube_bdd(cube, identity);
  EXPECT_TRUE(f == (v(0) & !v(2)));
}

TEST_F(BddAlgorithmsTest, CoverBddIsDisjunctionOfCubes) {
  std::vector<std::uint32_t> identity;
  for (std::uint32_t i = 0; i < mgr.num_vars(); ++i) {
    identity.push_back(i);
  }
  const Cover cover = Cover::parse(8, {"1-------", "-01-----"});
  const Bdd f = mgr.cover_bdd(cover, identity);
  EXPECT_TRUE(f == (v(0) | ((!v(1)) & v(2))));
}

TEST_F(BddAlgorithmsTest, IsopCoversExactFunction) {
  const Bdd f = (v(0) & v(1)) | ((!v(0)) & v(2)) | (v(1) & v(2));
  const IsopResult result = mgr.isop(f, f);
  EXPECT_TRUE(result.function == f);
  std::vector<std::uint32_t> identity;
  for (std::uint32_t i = 0; i < mgr.num_vars(); ++i) {
    identity.push_back(i);
  }
  EXPECT_TRUE(mgr.cover_bdd(result.cover, identity) == f);
}

TEST_F(BddAlgorithmsTest, IsopStaysInsideInterval) {
  const Bdd lower = v(0) & v(1);
  const Bdd upper = v(0);
  const IsopResult result = mgr.isop(lower, upper);
  EXPECT_TRUE(lower.subset_of(result.function));
  EXPECT_TRUE(result.function.subset_of(upper));
}

TEST_F(BddAlgorithmsTest, IsopUsesDontCaresToSimplify) {
  // ON = x0·x1, DC = x0·!x1 → the single-literal cover x0 is selectable.
  const Bdd lower = v(0) & v(1);
  const Bdd upper = v(0);
  const IsopResult result = mgr.isop(lower, upper);
  EXPECT_EQ(result.cover.cube_count(), 1u);
  EXPECT_EQ(result.cover.literal_count(), 1u);
  EXPECT_TRUE(result.function == v(0));
}

TEST_F(BddAlgorithmsTest, IsopRejectsBadInterval) {
  EXPECT_THROW((void)mgr.isop(v(0), v(1)), std::invalid_argument);
}

TEST_F(BddAlgorithmsTest, IsopOfConstants) {
  const IsopResult zero = mgr.isop(mgr.zero(), mgr.zero());
  EXPECT_EQ(zero.cover.cube_count(), 0u);
  EXPECT_TRUE(zero.function.is_zero());
  const IsopResult one = mgr.isop(mgr.one(), mgr.one());
  EXPECT_EQ(one.cover.cube_count(), 1u);
  EXPECT_EQ(one.cover.literal_count(), 0u);
  EXPECT_TRUE(one.function.is_one());
}

TEST_F(BddAlgorithmsTest, ForeachMintermEnumeratesOnSet) {
  const Bdd f = v(0) ^ v(1);
  const std::vector<std::uint32_t> vars{0, 1};
  std::size_t count = 0;
  mgr.foreach_minterm(f, vars, [&](const std::vector<bool>& point) {
    EXPECT_NE(point[0], point[1]);
    ++count;
  });
  EXPECT_EQ(count, 2u);
}

TEST_F(BddAlgorithmsTest, ForeachMintermRejectsUnsortedVars) {
  const Bdd f = v(0) & v(1);
  const std::vector<std::uint32_t> vars{1, 0};
  EXPECT_THROW(mgr.foreach_minterm(f, vars, [](const std::vector<bool>&) {}),
               std::invalid_argument);
}

TEST_F(BddAlgorithmsTest, ForeachMintermRejectsMissingSupport) {
  const Bdd f = v(0) & v(3);
  const std::vector<std::uint32_t> vars{0, 1};
  EXPECT_THROW(mgr.foreach_minterm(f, vars, [](const std::vector<bool>&) {}),
               std::logic_error);
}

}  // namespace
}  // namespace brel
