// Unit tests for the BDD package core: canonicity, connectives, handles,
// garbage collection.  Property sweeps live in test_bdd_properties.cpp.

#include <gtest/gtest.h>

#include <sstream>

#include "bdd/bdd.hpp"

namespace brel {
namespace {

class BddBasicTest : public ::testing::Test {
 protected:
  BddManager mgr{8};
};

TEST_F(BddBasicTest, ConstantsAreDistinctAndComplementary) {
  EXPECT_TRUE(mgr.one().is_one());
  EXPECT_TRUE(mgr.zero().is_zero());
  EXPECT_FALSE(mgr.one() == mgr.zero());
  EXPECT_TRUE((!mgr.one()) == mgr.zero());
  EXPECT_TRUE((!mgr.zero()) == mgr.one());
}

TEST_F(BddBasicTest, VariablesAreCanonical) {
  EXPECT_TRUE(mgr.var(0) == mgr.var(0));
  EXPECT_FALSE(mgr.var(0) == mgr.var(1));
  EXPECT_TRUE(mgr.literal(3, false) == !mgr.var(3));
}

TEST_F(BddBasicTest, VarOutOfRangeThrows) {
  EXPECT_THROW((void)mgr.var(8), std::out_of_range);
}

TEST_F(BddBasicTest, AndOrBasics) {
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  EXPECT_TRUE((a & mgr.one()) == a);
  EXPECT_TRUE((a & mgr.zero()).is_zero());
  EXPECT_TRUE((a | mgr.zero()) == a);
  EXPECT_TRUE((a | mgr.one()).is_one());
  EXPECT_TRUE((a & !a).is_zero());
  EXPECT_TRUE((a | !a).is_one());
  EXPECT_TRUE((a & b) == (b & a));
  EXPECT_TRUE((a | b) == (b | a));
}

TEST_F(BddBasicTest, DeMorgan) {
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  EXPECT_TRUE((!(a & b)) == ((!a) | !b));
  EXPECT_TRUE((!(a | b)) == ((!a) & !b));
}

TEST_F(BddBasicTest, XorAndIff) {
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  EXPECT_TRUE((a ^ a).is_zero());
  EXPECT_TRUE((a ^ !a).is_one());
  EXPECT_TRUE((a ^ b) == !(a.iff(b)));
  EXPECT_TRUE(a.iff(b) == ((a & b) | ((!a) & !b)));
}

TEST_F(BddBasicTest, IteAgreesWithDefinition) {
  const Bdd f = mgr.var(0);
  const Bdd g = mgr.var(1);
  const Bdd h = mgr.var(2);
  EXPECT_TRUE(mgr.ite(f, g, h) == ((f & g) | ((!f) & h)));
}

TEST_F(BddBasicTest, ImplicationAndSubset) {
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  EXPECT_TRUE((a & b).subset_of(a));
  EXPECT_TRUE(a.subset_of(a | b));
  EXPECT_FALSE(a.subset_of(a & b));
  EXPECT_TRUE(a.implies(a | b).is_one());
}

TEST_F(BddBasicTest, CofactorShannonExpansion) {
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  const Bdd c = mgr.var(2);
  const Bdd f = (a & b) | ((!a) & c);
  EXPECT_TRUE(f.cofactor(0, true) == b);
  EXPECT_TRUE(f.cofactor(0, false) == c);
  // Shannon: f == x·f_x + !x·f_!x
  EXPECT_TRUE(f == ((a & f.cofactor(0, true)) | ((!a) & f.cofactor(0, false))));
}

TEST_F(BddBasicTest, EvalWalksTheDag) {
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  const Bdd f = a ^ b;
  EXPECT_FALSE(f.eval({false, false, false, false, false, false, false, false}));
  EXPECT_TRUE(f.eval({true, false, false, false, false, false, false, false}));
  EXPECT_TRUE(f.eval({false, true, false, false, false, false, false, false}));
  EXPECT_FALSE(f.eval({true, true, false, false, false, false, false, false}));
}

TEST_F(BddBasicTest, SizeCountsDagNodes) {
  EXPECT_EQ(mgr.one().size(), 1u);   // terminal only
  EXPECT_EQ(mgr.var(0).size(), 2u);  // terminal + one decision node
  const Bdd parity = mgr.var(0) ^ mgr.var(1) ^ mgr.var(2);
  // Parity with complement edges: one node per variable plus the terminal.
  EXPECT_EQ(parity.size(), 4u);
}

TEST_F(BddBasicTest, SupportListsDependentVariables) {
  const Bdd f = (mgr.var(1) & mgr.var(3)) | mgr.var(5);
  EXPECT_EQ(f.support(), (std::vector<std::uint32_t>{1, 3, 5}));
  EXPECT_TRUE(mgr.one().support().empty());
}

TEST_F(BddBasicTest, BigAndBigOr) {
  const std::vector<Bdd> vars{mgr.var(0), mgr.var(1), mgr.var(2)};
  const Bdd all = mgr.big_and(vars);
  const Bdd any = mgr.big_or(vars);
  EXPECT_TRUE(all == (mgr.var(0) & mgr.var(1) & mgr.var(2)));
  EXPECT_TRUE(any == (mgr.var(0) | mgr.var(1) | mgr.var(2)));
}

TEST_F(BddBasicTest, HandleCopyAndMoveSemantics) {
  Bdd f = mgr.var(0) & mgr.var(1);
  Bdd copy = f;
  EXPECT_TRUE(copy == f);
  Bdd moved = std::move(f);
  EXPECT_TRUE(moved == copy);
  EXPECT_TRUE(f.is_null());  // NOLINT(bugprone-use-after-move): documented
  f = moved;
  EXPECT_TRUE(f == copy);
  // Self-assignment must be harmless.
  f = *&f;
  EXPECT_TRUE(f == copy);
}

TEST_F(BddBasicTest, MixedManagerOperandsThrow) {
  BddManager other{4};
  EXPECT_THROW((void)mgr.bdd_and(mgr.var(0), other.var(0)),
               std::invalid_argument);
}

TEST_F(BddBasicTest, GarbageCollectionReclaimsDeadNodes) {
  const Bdd keep = mgr.var(0) & mgr.var(1);
  {
    Bdd dead = mgr.one();
    for (std::uint32_t i = 0; i < 8; ++i) {
      dead = dead & (mgr.var(i) ^ mgr.var((i + 1) % 8));
    }
    EXPECT_GT(mgr.stats().live_nodes, 10u);
  }
  mgr.garbage_collect();
  // keep must survive and still be correct.
  EXPECT_TRUE(keep == (mgr.var(0) & mgr.var(1)));
  EXPECT_EQ(mgr.stats().gc_runs, 1u);
  // Rebuilding an equal function after GC must land on the same node.
  const Bdd rebuilt = mgr.var(0) & mgr.var(1);
  EXPECT_TRUE(rebuilt == keep);
}

TEST_F(BddBasicTest, GarbageCollectionReusesSlots) {
  {
    Bdd dead = mgr.zero();
    for (std::uint32_t i = 0; i < 8; ++i) {
      dead = dead | (mgr.var(i) & mgr.var((i + 3) % 8));
    }
  }
  const std::size_t before = mgr.stats().live_nodes;
  mgr.garbage_collect();
  EXPECT_LT(mgr.stats().live_nodes, before);
  // New allocations should reuse freed slots instead of growing the store.
  const Bdd f = mgr.var(2) & mgr.var(4);
  EXPECT_FALSE(f.is_null());
}

TEST_F(BddBasicTest, AddVarsExtendsTheOrder) {
  const std::uint32_t first = mgr.add_vars(2);
  EXPECT_EQ(first, 8u);
  EXPECT_EQ(mgr.num_vars(), 10u);
  const Bdd f = mgr.var(9) & mgr.var(0);
  EXPECT_EQ(f.support(), (std::vector<std::uint32_t>{0, 9}));
}

TEST_F(BddBasicTest, WriteDotProducesParsableOutput) {
  const Bdd f = mgr.var(0) ^ mgr.var(1);
  std::ostringstream os;
  const std::vector<Bdd> roots{f};
  const std::vector<std::string> names{"xor"};
  mgr.write_dot(os, roots, names);
  const std::string text = os.str();
  EXPECT_NE(text.find("digraph bdd"), std::string::npos);
  EXPECT_NE(text.find("xor"), std::string::npos);
  EXPECT_NE(text.find("style=dashed"), std::string::npos);  // complement edge
}

TEST_F(BddBasicTest, CacheStatsAdvance) {
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  (void)(a & b);
  (void)(a & b);  // same op again: served from cache or unique table
  EXPECT_GT(mgr.stats().cache_lookups, 0u);
}

}  // namespace
}  // namespace brel
