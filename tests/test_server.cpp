// Integration tests for the socket service front end (server.hpp): a
// real Server on an ephemeral loopback port, driven through real
// sockets by the same wire helpers the tools use.
//
// The load-bearing properties:
//   - framed answers are BIT-IDENTICAL to single-solve runs of the same
//     relation (portable-solution equality, concurrent clients);
//   - malformed and oversized frames get clean ERROR replies and the
//     CONNECTION SURVIVES them;
//   - admission control: BUSY past max_pending, admission reopens once
//     residency falls to the low watermark;
//   - deadline-expired requests answer TIMEOUT frames (best-so-far
//     body), not dropped connections;
//   - graceful drain: begin_drain() during load answers every accepted
//     request (accepted == answered) and rejects late frames with
//     SHUTDOWN.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "benchgen/paper_relations.hpp"
#include "benchgen/relation_suite.hpp"
#include "brel/memo_exchange.hpp"
#include "brel/memo_snapshot.hpp"
#include "brel/search.hpp"
#include "brel/server.hpp"
#include "relation/relation_io.hpp"

namespace brel {
namespace {

/// RAII client connection speaking the framed protocol.
class Client {
 public:
  explicit Client(std::uint16_t port)
      : fd_(wire::connect_tcp("127.0.0.1", port)) {}
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// One request/reply round trip; returns the reply payload ("" on
  /// transport failure).
  std::string request(const std::string& payload) {
    if (!wire::write_frame(fd_, payload)) return "";
    std::string reply;
    if (wire::read_frame(fd_, reply, static_cast<std::size_t>(-1)) !=
        wire::ReadStatus::Ok) {
      return "";
    }
    return reply;
  }

  /// Fire-and-forget send half (for drain tests that reply later).
  bool send(const std::string& payload) {
    return wire::write_frame(fd_, payload);
  }
  std::string receive() {
    std::string reply;
    if (wire::read_frame(fd_, reply, static_cast<std::size_t>(-1)) !=
        wire::ReadStatus::Ok) {
      return "";
    }
    return reply;
  }

 private:
  int fd_;
};

std::string verb_of(const std::string& reply) {
  const std::size_t nl = reply.find('\n');
  const std::string line =
      nl == std::string::npos ? reply : reply.substr(0, nl);
  return line.substr(0, line.find(' '));
}

std::string body_of(const std::string& reply) {
  const std::size_t nl = reply.find('\n');
  return nl == std::string::npos ? std::string() : reply.substr(nl + 1);
}

/// Parse one "key value" line out of a STATS body; -1 when absent.
long long stat_of(const std::string& stats, const std::string& key) {
  std::istringstream in(stats);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string k;
    long long v;
    if ((fields >> k >> v) && k == key) return v;
  }
  return -1;
}

/// The schedule-independent engine configuration (cf.
/// test_solver_pool.cpp): results are a pure function of the relation,
/// so server answers can be compared bit-for-bit with local solves.
SolverOptions deterministic_options(std::size_t max_depth) {
  SolverOptions options;
  options.cost = sum_of_bdd_sizes();
  options.max_relations = static_cast<std::size_t>(-1);
  options.use_cost_bound = false;
  options.max_depth = max_depth;
  return options;
}

ServerOptions deterministic_server(std::size_t workers) {
  ServerOptions options;
  options.pool.workers = workers;
  options.pool.solver = deterministic_options(6);
  // Overlapping concurrent relations + a shared memo can differ by
  // schedule; the bit-identical contract needs the memo off.
  options.pool.share_memo = false;
  return options;
}

std::string suite_text(std::size_t index) {
  BddManager mgr{0};
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> outputs;
  const BooleanRelation r =
      make_benchmark_relation(mgr, relation_suite()[index], inputs, outputs);
  return write_relation_bdd(r);
}

std::string fig1_text() {
  BddManager mgr{0};
  RelationSpace space = make_space(mgr, 2, 2);
  return write_relation_bdd(fig1_relation(mgr, space));
}

PortableSolution reference_solution(const std::string& text,
                                    const SolverOptions& options) {
  BddManager mgr{0};
  const BooleanRelation r = read_relation(mgr, text);
  const SolveResult solved = SearchEngine(r, options).run();
  return make_portable_solution(make_memo_space(r), solved.function,
                                solved.cost);
}

TEST(ServerTest, EphemeralPortAndPing) {
  Server server(deterministic_server(1));
  server.start();
  ASSERT_NE(server.port(), 0);
  Client client(server.port());
  ASSERT_TRUE(client.connected());
  EXPECT_EQ(client.request("PING"), "OK ping");
}

TEST(ServerTest, ConcurrentClientsAreBitIdenticalToSingleSolve) {
  Server server(deterministic_server(2));
  server.start();
  const std::uint16_t port = server.port();

  // First 6 suite instances at depth 6, two round-robin client threads.
  std::vector<std::string> texts;
  for (std::size_t i = 0; i < 6; ++i) texts.push_back(suite_text(i));

  std::vector<std::string> replies(texts.size());
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < 2; ++t) {
    clients.emplace_back([&, t] {
      Client client(port);
      ASSERT_TRUE(client.connected());
      for (std::size_t i = t; i < texts.size(); i += 2) {
        replies[i] = client.request("SOLVE\n" + texts[i]);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (std::size_t i = 0; i < texts.size(); ++i) {
    ASSERT_EQ(verb_of(replies[i]), "OK") << relation_suite()[i].name;
    std::istringstream body(body_of(replies[i]));
    const PortableSolution served = read_portable_solution(body);
    EXPECT_EQ(served, reference_solution(texts[i], deterministic_options(6)))
        << relation_suite()[i].name;
  }

  const ServerMetrics m = server.metrics();
  EXPECT_EQ(m.accepted, texts.size());
  EXPECT_EQ(m.answered, texts.size());
  EXPECT_EQ(m.protocol_errors, 0u);
}

TEST(ServerTest, MalformedAndOversizedFramesKeepTheConnectionAlive) {
  ServerOptions options = deterministic_server(1);
  options.max_frame_bytes = 512;
  Server server(options);
  server.start();
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  // Unknown verb.
  EXPECT_EQ(verb_of(client.request("FROBNICATE now")), "ERROR");
  // Empty SOLVE body.
  EXPECT_EQ(verb_of(client.request("SOLVE")), "ERROR");
  // Bad SOLVE option.
  EXPECT_EQ(verb_of(client.request("SOLVE deadline_ms=soon\nx")), "ERROR");
  // Negative deadline (strtoull would silently wrap it positive).
  EXPECT_EQ(verb_of(client.request("SOLVE deadline_ms=-5\nx")), "ERROR");
  // Deadline beyond unsigned long long (ERANGE).
  EXPECT_EQ(verb_of(client.request(
                "SOLVE deadline_ms=99999999999999999999999999\nx")),
            "ERROR");
  // Large-but-representable deadline past the 24h cap (would overflow
  // the steady_clock representation when added to now()).
  EXPECT_EQ(verb_of(client.request("SOLVE deadline_ms=10000000000000\nx")),
            "ERROR");
  // Relation that fails to parse: the ERROR comes through the pool.
  EXPECT_EQ(verb_of(client.request("SOLVE\n.i 1\n.o 1\n.r\nxx 1\n.e\n")),
            "ERROR");
  // Oversized frame (beyond max_frame_bytes): drained, clean reply.
  EXPECT_EQ(verb_of(client.request(std::string(2048, 'a'))), "ERROR");
  // Zero-length frame.
  EXPECT_EQ(verb_of(client.request("")), "ERROR");

  // ...and the SAME connection still serves real work.
  const std::string reply = client.request("SOLVE\n" + fig1_text());
  EXPECT_EQ(verb_of(reply), "OK");

  const ServerMetrics m = server.metrics();
  EXPECT_EQ(m.protocol_errors, 8u);  // the pool parse error counts apart
  EXPECT_EQ(m.request_errors, 1u);
  EXPECT_EQ(m.accepted, 2u);  // bad relation + fig1 both passed admission
  EXPECT_EQ(m.answered, 2u);
}

TEST(ServerTest, DeadlineExpiredRequestsAnswerTimeoutFrames) {
  ServerOptions options;
  options.pool.workers = 1;
  options.pool.solver.cost = sum_of_bdd_sizes();
  options.pool.solver.max_relations = static_cast<std::size_t>(-1);
  options.pool.solver.use_cost_bound = false;  // int3 cannot drain
  Server server(options);
  server.start();
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  const std::string reply =
      client.request("SOLVE deadline_ms=30\n" + suite_text(2));
  EXPECT_EQ(verb_of(reply), "TIMEOUT");
  // The TIMEOUT body is a well-formed portable solution (the engine's
  // best-so-far incumbent).
  std::istringstream body(body_of(reply));
  const PortableSolution best = read_portable_solution(body);
  EXPECT_FALSE(best.outputs.empty());

  // The connection survives a timed-out request.
  EXPECT_EQ(verb_of(client.request("SOLVE\n" + fig1_text())), "OK");

  const ServerMetrics m = server.metrics();
  EXPECT_EQ(m.timed_out, 1u);
  EXPECT_EQ(m.accepted, 2u);
  EXPECT_EQ(m.answered, 2u);
}

TEST(ServerTest, BusyPastTheBoundAndReadmissionAtTheLowWatermark) {
  ServerOptions options;
  options.pool.workers = 1;
  options.pool.solver.cost = sum_of_bdd_sizes();
  options.pool.solver.max_relations = static_cast<std::size_t>(-1);
  options.pool.solver.use_cost_bound = false;
  options.pool.solver.timeout = std::chrono::milliseconds(400);
  options.max_pending = 1;  // resume_pending defaults to 0
  Server server(options);
  server.start();

  Client slow(server.port());
  Client probe(server.port());
  ASSERT_TRUE(slow.connected());
  ASSERT_TRUE(probe.connected());

  // Occupy the only residency slot with a ~400ms request.
  ASSERT_TRUE(slow.send("SOLVE\n" + suite_text(2)));
  // STATS is not admission-controlled: wait until the slot is taken.
  while (stat_of(body_of(probe.request("STATS")), "inflight") < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Past the high watermark: immediate BUSY, nothing queued.
  EXPECT_EQ(probe.request("SOLVE\n" + fig1_text()), "BUSY");
  EXPECT_EQ(probe.request("SOLVE\n" + fig1_text()), "BUSY");

  // The slow request answers with OK: its pool-wide engine timeout is a
  // budget stop, not a per-request deadline, so no TIMEOUT verb...
  EXPECT_EQ(verb_of(slow.receive()), "OK");
  // ...and residency falls to 0 == the low watermark.  The shed flag
  // clears AFTER the reply frame is written, so the client can observe
  // the OK a beat before readmission — wait for the flag, then probe.
  while (server.metrics().shedding) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(verb_of(probe.request("SOLVE\n" + fig1_text())), "OK");

  const ServerMetrics m = server.metrics();
  EXPECT_EQ(m.rejected_busy, 2u);
  EXPECT_EQ(m.accepted, 2u);
  EXPECT_EQ(m.answered, 2u);
}

TEST(ServerTest, DrainAnswersEverythingAcceptedAndRejectsLateFrames) {
  ServerOptions options;
  options.pool.workers = 1;
  options.pool.solver.cost = sum_of_bdd_sizes();
  options.pool.solver.max_relations = static_cast<std::size_t>(-1);
  options.pool.solver.use_cost_bound = false;
  options.pool.solver.timeout = std::chrono::milliseconds(300);
  Server server(options);
  server.start();

  Client inflight_client(server.port());
  Client late_client(server.port());
  ASSERT_TRUE(inflight_client.connected());
  ASSERT_TRUE(late_client.connected());

  // A ~300ms request in flight, plus a second frame buffered behind it
  // on the same connection when the drain begins.
  ASSERT_TRUE(inflight_client.send("SOLVE\n" + suite_text(2)));
  ASSERT_TRUE(inflight_client.send("SOLVE\n" + fig1_text()));
  while (server.metrics().inflight < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  server.begin_drain();

  // A frame arriving during the drain is REJECTED, not silently lost.
  const std::string late = late_client.request("SOLVE\n" + fig1_text());
  // (Its connection may also have been closed by the drain first —
  // both are clean outcomes; what must not happen is an accepted-then
  // -unanswered request.)
  if (!late.empty()) {
    EXPECT_EQ(verb_of(late), "SHUTDOWN");
  }

  // The accepted in-flight request answers through the drain; the
  // buffered frame behind it was never admitted, so it is REJECTED with
  // SHUTDOWN — answered, not dropped, the connection told why.
  EXPECT_EQ(verb_of(inflight_client.receive()), "OK");
  EXPECT_EQ(verb_of(inflight_client.receive()), "SHUTDOWN");

  server.wait();
  const ServerMetrics m = server.metrics();
  EXPECT_EQ(m.accepted, 1u);
  EXPECT_EQ(m.answered, m.accepted);  // the drain contract
  EXPECT_GE(m.rejected_shutdown, 1u);
  EXPECT_EQ(m.connections_open, 0u);
}

TEST(ServerTest, StatsFrameAndMetricsPortReport) {
  ServerOptions options = deterministic_server(1);
  options.metrics_port = 0;  // ephemeral
  Server server(options);
  server.start();
  ASSERT_NE(server.metrics_port(), 0);

  Client client(server.port());
  ASSERT_TRUE(client.connected());
  EXPECT_EQ(verb_of(client.request("SOLVE\n" + fig1_text())), "OK");

  const std::string stats = body_of(client.request("STATS"));
  EXPECT_EQ(stat_of(stats, "accepted"), 1);
  EXPECT_EQ(stat_of(stats, "answered"), 1);
  EXPECT_EQ(stat_of(stats, "shedding"), 0);
  EXPECT_GE(stat_of(stats, "latency_samples"), 1);
  EXPECT_NE(stats.find("latency_p50_us"), std::string::npos);
  EXPECT_NE(stats.find("uptime_seconds"), std::string::npos);

  // The metrics port serves the same block, unframed, to any client.
  const int fd = wire::connect_tcp("127.0.0.1", server.metrics_port());
  ASSERT_GE(fd, 0);
  std::string text;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) break;
    text.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_EQ(stat_of(text, "accepted"), 1);
  EXPECT_NE(text.find("workers"), std::string::npos);
}

TEST(ServerTest, PortableSolutionTextRoundTrips) {
  // The response-body format itself: write → read is the identity, cost
  // infinity (the empty deadline-expired solution) included.
  PortableSolution empty;
  empty.cost = std::numeric_limits<double>::infinity();
  std::ostringstream out;
  write_portable_solution(out, empty);
  std::istringstream in(out.str());
  EXPECT_EQ(read_portable_solution(in), empty);

  const std::string text = fig1_text();
  const PortableSolution solved =
      reference_solution(text, deterministic_options(6));
  std::ostringstream out2;
  write_portable_solution(out2, solved);
  std::istringstream in2(out2.str());
  EXPECT_EQ(read_portable_solution(in2), solved);

  // Malformed bodies are rejected, not misread.
  std::istringstream bad1("nonsense");
  EXPECT_THROW((void)read_portable_solution(bad1), std::invalid_argument);
  // Truncated: two outputs declared, none present.
  std::istringstream bad2(".cost 1\n.outputs 2\n");
  EXPECT_THROW((void)read_portable_solution(bad2), std::invalid_argument);
}

/// The `explored=` figure of an OK/TIMEOUT status line; -1 when absent.
long long explored_of(const std::string& reply) {
  const std::size_t pos = reply.find(" explored=");
  if (pos == std::string::npos) return -1;
  return std::strtoll(reply.c_str() + pos + 10, nullptr, 10);
}

/// The canonical memo key of a relation text (any manager, any offset —
/// that independence is what GlobalMemoTest pins).
GlobalMemoKey key_of(const std::string& text) {
  BddManager mgr{0};
  const BooleanRelation r = read_relation(mgr, text);
  return make_memo_key(make_memo_space(r), r.characteristic());
}

/// One of 256 distinct single-valued 2-in/2-out relations: input vertex
/// v maps to output vertex (f >> 2v) & 3.  A parametric family this size
/// makes consistent-hash ownership tests deterministic — some member of
/// the family lands in any ring slice.
std::string param_text(unsigned f) {
  BddManager mgr{0};
  RelationSpace space = make_space(mgr, 2, 2);
  const char* verts[4] = {"00", "01", "10", "11"};
  std::vector<std::pair<std::string, std::vector<std::string>>> rows;
  for (unsigned v = 0; v < 4; ++v) {
    rows.push_back({verts[v], {verts[(f >> (2 * v)) & 3u]}});
  }
  return write_relation_bdd(
      BooleanRelation::from_table(mgr, space.inputs, space.outputs, rows));
}

TEST(ServerMemoExchangeTest, PullAndPushVerbsCarryTheExportPolicy) {
  ServerOptions options = deterministic_server(1);
  options.pool.share_memo = true;
  Server server(options);
  server.start();
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  const std::string text = fig1_text();
  const GlobalMemoKey key = key_of(text);
  const MemoFingerprint fp{sum_of_bdd_sizes().id(), false};

  // A key the memo never saw answers MISS — even before the first
  // solve (the preamble validates against the pool's static objective,
  // not the memo's binding, so cold peers are reachable).
  std::ostringstream miss;
  miss << "MEMO_PULL\n";
  write_memo_fingerprint(miss, fp);
  write_memo_key(miss, key_of(suite_text(0)));
  EXPECT_EQ(client.request(miss.str()), "MISS");

  // Warm the memo, then PULL the canonical key: the reply carries the
  // export-policy record whose solution is the solve's own.
  const std::string solve_reply = client.request("SOLVE\n" + text);
  ASSERT_EQ(verb_of(solve_reply), "OK");
  std::ostringstream pull;
  pull << "MEMO_PULL\n";
  write_memo_fingerprint(pull, fp);
  write_memo_key(pull, key);
  const std::string pull_reply = client.request(pull.str());
  ASSERT_EQ(verb_of(pull_reply), "OK");
  std::istringstream entry_in(body_of(pull_reply));
  const MemoExportEntry entry = read_memo_entry(entry_in);
  EXPECT_EQ(entry.key, key);
  EXPECT_EQ(entry.solution, reference_solution(text, options.pool.solver));

  // A mismatched fingerprint is refused before the key is even read.
  std::ostringstream clash;
  clash << "MEMO_PULL\n";
  write_memo_fingerprint(clash, MemoFingerprint{"some-other-objective", true});
  write_memo_key(clash, key);
  EXPECT_EQ(verb_of(client.request(clash.str())), "ERROR");

  // PUSH the pulled record into a second, cold server: its next solve
  // of the same relation is a root hit at zero exploration with a
  // bit-identical body.
  Server receiver(options);
  receiver.start();
  Client client_b(receiver.port());
  ASSERT_TRUE(client_b.connected());
  std::ostringstream push;
  push << "MEMO_PUSH\n";
  write_memo_fingerprint(push, fp);
  write_memo_entry(push, entry);
  EXPECT_EQ(client_b.request(push.str()), "OK installed");
  const std::string warm_reply = client_b.request("SOLVE\n" + text);
  ASSERT_EQ(verb_of(warm_reply), "OK");
  EXPECT_EQ(explored_of(warm_reply), 0);
  EXPECT_EQ(body_of(warm_reply), body_of(solve_reply));

  // A smuggled non-export shape is rejected by the codec, not
  // installed: flip the record's shape token and push it.
  std::ostringstream record;
  write_memo_entry(record, entry);
  std::string smuggled = record.str();
  const std::size_t shape_at = smuggled.find(' ') + 1;
  smuggled.replace(shape_at, smuggled.find(' ', shape_at) - shape_at,
                   "truncated");
  std::ostringstream bad_push;
  bad_push << "MEMO_PUSH\n";
  write_memo_fingerprint(bad_push, fp);
  bad_push << smuggled;
  EXPECT_EQ(verb_of(client_b.request(bad_push.str())), "ERROR");

  const std::string stats = body_of(client_b.request("STATS"));
  EXPECT_EQ(stat_of(stats, "peer_pushes_received"), 1);
  EXPECT_EQ(stat_of(stats, "memo_hits_peer"), 1);
}

TEST(ServerMemoExchangeTest, PeeredServerPullsOwnedRootsAndGossipsBack) {
  ServerOptions options_a = deterministic_server(1);
  options_a.pool.share_memo = true;
  Server a(options_a);
  a.start();
  const std::string addr_a = "127.0.0.1:" + std::to_string(a.port());

  ServerOptions options_b = options_a;
  options_b.memo_peers = {addr_a};
  Server b(options_b);
  b.start();
  const std::string addr_b = "127.0.0.1:" + std::to_string(b.port());

  // Ring oracle: the same member list b's exchange was built from
  // computes the same ownership (that agreement is the whole design).
  GlobalMemo scratch;
  PeerExchangeOptions ring;
  ring.self = addr_b;
  ring.peers = {addr_a};
  MemoExchange oracle(scratch, ring);

  // Two relations b does NOT own — their root misses must leave for a.
  std::string pulled_text;  // warmed on a first: b's miss pulls a hit
  std::string gossip_text;  // solved cold on b: completion pushes to a
  for (unsigned f = 0; f < 256 && gossip_text.empty(); ++f) {
    const std::string text = param_text(f);
    if (oracle.owns(key_of(text))) continue;
    (pulled_text.empty() ? pulled_text : gossip_text) = text;
  }
  ASSERT_FALSE(pulled_text.empty());
  ASSERT_FALSE(gossip_text.empty());

  Client client_a(a.port());
  Client client_b(b.port());
  ASSERT_TRUE(client_a.connected());
  ASSERT_TRUE(client_b.connected());

  // Warm a, then solve the same relation on b: the root miss faults
  // through b's exchange tier and comes back as a peer hit at zero
  // exploration, bit-identical to a's answer.
  const std::string reply_a = client_a.request("SOLVE\n" + pulled_text);
  ASSERT_EQ(verb_of(reply_a), "OK");
  const std::string reply_b = client_b.request("SOLVE\n" + pulled_text);
  ASSERT_EQ(verb_of(reply_b), "OK");
  EXPECT_EQ(explored_of(reply_b), 0);
  EXPECT_EQ(body_of(reply_b), body_of(reply_a));
  const std::string stats_b = body_of(client_b.request("STATS"));
  EXPECT_GE(stat_of(stats_b, "peer_pulls"), 1);
  EXPECT_GE(stat_of(stats_b, "peer_pull_hits"), 1);
  EXPECT_GE(stat_of(stats_b, "memo_hits_peer"), 1);

  // A cold solve on b of an a-owned key gossips the completion to its
  // owner: a receives the push (async — poll briefly), after which a
  // serves the relation it never solved at zero exploration.
  const std::string cold_b = client_b.request("SOLVE\n" + gossip_text);
  ASSERT_EQ(verb_of(cold_b), "OK");
  EXPECT_GT(explored_of(cold_b), 0);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  long long pushes_received = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    pushes_received =
        stat_of(body_of(client_a.request("STATS")), "peer_pushes_received");
    if (pushes_received >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_GE(pushes_received, 1);
  const std::string warm_a = client_a.request("SOLVE\n" + gossip_text);
  ASSERT_EQ(verb_of(warm_a), "OK");
  EXPECT_EQ(explored_of(warm_a), 0);
  EXPECT_EQ(body_of(warm_a), body_of(cold_b));
}

}  // namespace
}  // namespace brel
