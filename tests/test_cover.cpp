// Unit tests for the cube / cover algebra.

#include <gtest/gtest.h>

#include "cover/cover.hpp"
#include "cover/cube.hpp"

namespace brel {
namespace {

TEST(CubeTest, ParseAndToStringRoundTrip) {
  const Cube cube = Cube::parse("1-0");
  EXPECT_EQ(cube.num_vars(), 3u);
  EXPECT_EQ(cube.lit(0), Lit::One);
  EXPECT_EQ(cube.lit(1), Lit::DontCare);
  EXPECT_EQ(cube.lit(2), Lit::Zero);
  EXPECT_EQ(cube.to_string(), "1-0");
}

TEST(CubeTest, ParseRejectsGarbage) {
  EXPECT_THROW((void)Cube::parse("10x"), std::invalid_argument);
}

TEST(CubeTest, LiteralCount) {
  EXPECT_EQ(Cube::parse("---").literal_count(), 0u);
  EXPECT_EQ(Cube::parse("1-0").literal_count(), 2u);
  EXPECT_EQ(Cube::parse("101").literal_count(), 3u);
}

TEST(CubeTest, UniversalCube) {
  EXPECT_TRUE(Cube(4).is_universal());
  EXPECT_FALSE(Cube::parse("1---").is_universal());
}

TEST(CubeTest, ContainsPoint) {
  const Cube cube = Cube::parse("1-0");
  EXPECT_TRUE(cube.contains_point({true, false, false}));
  EXPECT_TRUE(cube.contains_point({true, true, false}));
  EXPECT_FALSE(cube.contains_point({false, true, false}));
  EXPECT_FALSE(cube.contains_point({true, true, true}));
}

TEST(CubeTest, ContainsPointDimensionMismatchThrows) {
  EXPECT_THROW((void)Cube::parse("1-0").contains_point({true}),
               std::invalid_argument);
}

TEST(CubeTest, CubeContainment) {
  const Cube big = Cube::parse("1--");
  const Cube small = Cube::parse("1-0");
  EXPECT_TRUE(big.contains_cube(small));
  EXPECT_FALSE(small.contains_cube(big));
  EXPECT_TRUE(big.contains_cube(big));
}

TEST(CubeTest, Intersection) {
  EXPECT_TRUE(Cube::parse("1--").intersects(Cube::parse("-0-")));
  EXPECT_FALSE(Cube::parse("1--").intersects(Cube::parse("0--")));
  EXPECT_TRUE(Cube::parse("---").intersects(Cube::parse("111")));
}

TEST(CubeTest, Supercube) {
  const Cube a = Cube::parse("110");
  const Cube b = Cube::parse("100");
  EXPECT_EQ(a.supercube_with(b).to_string(), "1-0");
  EXPECT_EQ(a.supercube_with(a).to_string(), "110");
}

TEST(CubeTest, MintermCount) {
  EXPECT_DOUBLE_EQ(Cube::parse("111").minterm_count(), 1.0);
  EXPECT_DOUBLE_EQ(Cube::parse("1-1").minterm_count(), 2.0);
  EXPECT_DOUBLE_EQ(Cube::parse("---").minterm_count(), 8.0);
}

TEST(CoverTest, ParseAndCounts) {
  const Cover cover = Cover::parse(3, {"1-0", "01-"});
  EXPECT_EQ(cover.cube_count(), 2u);
  EXPECT_EQ(cover.literal_count(), 4u);
  EXPECT_EQ(cover.num_vars(), 3u);
}

TEST(CoverTest, DimensionMismatchThrows) {
  Cover cover(3);
  EXPECT_THROW(cover.add_cube(Cube::parse("10")), std::invalid_argument);
}

TEST(CoverTest, ContainsPointIsDisjunction) {
  const Cover cover = Cover::parse(3, {"1--", "-1-"});
  EXPECT_TRUE(cover.contains_point({true, false, false}));
  EXPECT_TRUE(cover.contains_point({false, true, true}));
  EXPECT_FALSE(cover.contains_point({false, false, true}));
}

TEST(CoverTest, EmptyCoverIsConstantZero) {
  const Cover cover(3);
  EXPECT_TRUE(cover.empty());
  EXPECT_FALSE(cover.contains_point({false, false, false}));
}

TEST(CoverTest, RemoveContainedCubes) {
  Cover cover = Cover::parse(3, {"1--", "1-0", "01-"});
  cover.remove_contained_cubes();
  EXPECT_EQ(cover.cube_count(), 2u);
  EXPECT_TRUE(cover.contains_point({true, false, false}));
  EXPECT_TRUE(cover.contains_point({false, true, false}));
}

TEST(CoverTest, RemoveContainedCubesKeepsOneOfEqualPair) {
  Cover cover = Cover::parse(3, {"1-0", "1-0"});
  cover.remove_contained_cubes();
  EXPECT_EQ(cover.cube_count(), 1u);
}

TEST(CoverTest, ToStringOneCubePerLine) {
  const Cover cover = Cover::parse(2, {"1-", "01"});
  EXPECT_EQ(cover.to_string(), "1-\n01\n");
}

}  // namespace
}  // namespace brel
