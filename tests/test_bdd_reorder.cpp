// Tests for dynamic variable reordering (bdd_reorder.cpp) and its
// interplay with the rest of the stack.
//
// The load-bearing properties:
//   - semantics: after forced sifting every function still evaluates /
//     sat-counts exactly like a no-reorder reference manager (randomized
//     differential over <= 12 variables);
//   - in-place survival: external Bdd handles, raw edges and reference
//     counts are intact after any number of swaps (check_integrity
//     validates store structure, refcounts and external-root bookkeeping
//     node by node);
//   - effectiveness: on the classic worst-order pair function sifting
//     shrinks the DAG by well over the 2x acceptance bar;
//   - order independence of the transfer layer: serialization (and hence
//     GlobalMemo keys and .bdd bodies) is byte-identical from managers in
//     different orders, and import/deserialize re-canonicalize correctly
//     in both directions;
//   - the auto trigger fires through garbage_collect_if_needed, and the
//     solver's reorder={on,auto} modes return compatible solutions.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/bdd_transfer.hpp"
#include "benchgen/paper_relations.hpp"
#include "benchgen/relation_suite.hpp"
#include "brel/solver.hpp"
#include "relation/relation.hpp"

namespace brel {
namespace {

/// Deterministic random expression tree over `vars` variables (the same
/// sequence of manager calls builds the same function in any manager).
Bdd random_function(BddManager& mgr, std::mt19937& rng, std::uint32_t vars,
                    int depth) {
  if (depth == 0) {
    return mgr.literal(rng() % vars, rng() % 2 == 0);
  }
  const Bdd lhs = random_function(mgr, rng, vars, depth - 1);
  const Bdd rhs = random_function(mgr, rng, vars, depth - 1);
  switch (rng() % 3) {
    case 0:
      return lhs | rhs;
    case 1:
      return lhs ^ rhs;
    default:
      return lhs & rhs;
  }
}

/// Truth-table equality over all 2^vars assignments.
void expect_same_function(const Bdd& a, const Bdd& b, std::uint32_t vars) {
  std::vector<bool> assignment(
      std::max(a.manager()->num_vars(), b.manager()->num_vars()), false);
  for (std::uint32_t m = 0; m < (1u << vars); ++m) {
    for (std::uint32_t v = 0; v < vars; ++v) {
      assignment[v] = ((m >> v) & 1u) != 0;
    }
    ASSERT_EQ(a.eval(assignment), b.eval(assignment))
        << "functions diverge on minterm " << m;
  }
}

/// The classic worst-order family: f = OR_i (x_i AND x_{k+i}) with the
/// partners maximally separated in the identity order — exponential as
/// built, linear once the pairs are interleaved.
Bdd pair_function(BddManager& mgr, std::uint32_t k) {
  Bdd f = mgr.zero();
  for (std::uint32_t i = 0; i < k; ++i) {
    f = f | (mgr.var(i) & mgr.var(k + i));
  }
  return f;
}

TEST(BddReorderTest, WorstOrderPairFunctionShrinksAtLeast2x) {
  constexpr std::uint32_t k = 10;
  BddManager mgr{2 * k};
  const Bdd f = pair_function(mgr, k);
  const std::size_t before = f.size();
  ASSERT_GT(before, 1u << k) << "the bad order should be exponential";

  mgr.reorder();
  mgr.check_integrity();
  const std::size_t after = f.size();
  EXPECT_LE(after * 2, before) << "sifting must shrink the DAG >= 2x";
  EXPECT_LE(after, 4 * k) << "the interleaved order is linear in k";
  EXPECT_GE(mgr.stats().reorders, 1u);
  EXPECT_GT(mgr.stats().reorder_swaps, 0u);
  EXPECT_FALSE(mgr.has_identity_order());

  // Spot-check semantics on the reordered DAG.
  BddManager ref{2 * k};
  const Bdd g = pair_function(ref, k);
  std::vector<bool> assignment(2 * k, false);
  std::mt19937 rng{7};
  for (int trial = 0; trial < 2000; ++trial) {
    for (std::uint32_t v = 0; v < 2 * k; ++v) {
      assignment[v] = (rng() & 1u) != 0;
    }
    ASSERT_EQ(f.eval(assignment), g.eval(assignment));
  }
  EXPECT_DOUBLE_EQ(mgr.sat_count(f, 2 * k), ref.sat_count(g, 2 * k));
}

TEST(BddReorderTest, DisjointSupportsSkipSwapsAndSurviveSifting) {
  // Two pair functions over DISJOINT variable halves: no root depends on
  // both halves, so the interaction matrix lets every swap of a
  // cross-half level pair reduce to a pure table flip (counted in
  // reorder_swap_skips), while within-half swaps still do real work —
  // both functions must shrink and keep their truth tables.
  constexpr std::uint32_t k = 4;
  BddManager mgr{8 * k};
  Bdd f = mgr.zero();  // over variables [0, 4k)
  for (std::uint32_t i = 0; i < k; ++i) {
    f = f | (mgr.var(i) & mgr.var(2 * k + i));
  }
  Bdd g = mgr.zero();  // over variables [4k, 8k)
  for (std::uint32_t i = 0; i < k; ++i) {
    g = g | (mgr.var(4 * k + i) & mgr.var(6 * k + i));
  }
  const std::size_t before = f.size() + g.size();

  mgr.reorder();
  mgr.check_integrity();

  EXPECT_GT(mgr.stats().reorder_swaps, 0u);
  EXPECT_GT(mgr.stats().reorder_swap_skips, 0u)
      << "sifting a variable across the foreign half must skip";
  EXPECT_LT(f.size() + g.size(), before);

  // Semantics: both functions intact against a no-reorder reference.
  BddManager ref{8 * k};
  Bdd rf = ref.zero();
  Bdd rg = ref.zero();
  for (std::uint32_t i = 0; i < k; ++i) {
    rf = rf | (ref.var(i) & ref.var(2 * k + i));
    rg = rg | (ref.var(4 * k + i) & ref.var(6 * k + i));
  }
  std::vector<bool> assignment(8 * k, false);
  std::mt19937 rng{11};
  for (int trial = 0; trial < 2000; ++trial) {
    for (std::uint32_t v = 0; v < 8 * k; ++v) {
      assignment[v] = (rng() & 1u) != 0;
    }
    ASSERT_EQ(f.eval(assignment), rf.eval(assignment));
    ASSERT_EQ(g.eval(assignment), rg.eval(assignment));
  }
}

TEST(BddReorderTest, RandomizedDifferentialAgainstNoReorderReference) {
  // Forced sifting on one manager, none on the other, truth tables must
  // match exactly — across many seeds, with several functions alive per
  // manager so sifting has real sharing to preserve.
  for (std::uint32_t seed = 1; seed <= 20; ++seed) {
    constexpr std::uint32_t kVars = 12;
    BddManager mgr{kVars};
    BddManager ref{kVars};
    std::mt19937 rng_a{seed};
    std::mt19937 rng_b{seed};
    std::vector<Bdd> fs;
    std::vector<Bdd> gs;
    for (int i = 0; i < 4; ++i) {
      fs.push_back(random_function(mgr, rng_a, kVars, 4));
      gs.push_back(random_function(ref, rng_b, kVars, 4));
    }
    const double sat_before = mgr.sat_count(fs[0], kVars);

    mgr.reorder();
    mgr.check_integrity();

    for (int i = 0; i < 4; ++i) {
      expect_same_function(fs[i], gs[i], kVars);
      EXPECT_DOUBLE_EQ(mgr.sat_count(fs[i], kVars),
                       ref.sat_count(gs[i], kVars))
          << "seed " << seed << " function " << i;
    }
    EXPECT_DOUBLE_EQ(mgr.sat_count(fs[0], kVars), sat_before);

    // The reordered manager keeps working: new ops on old handles, GC,
    // and a second sift all preserve the functions.
    const Bdd combined = (fs[0] & fs[1]) ^ fs[2];
    const Bdd ref_combined = (gs[0] & gs[1]) ^ gs[2];
    expect_same_function(combined, ref_combined, kVars);
    mgr.garbage_collect();
    mgr.reorder();
    mgr.check_integrity();
    expect_same_function(fs[3], gs[3], kVars);
  }
}

TEST(BddReorderTest, HandlesAndRefcountsSurviveSwaps) {
  constexpr std::uint32_t kVars = 8;
  BddManager mgr{kVars};
  std::mt19937 rng{3};
  const Bdd f = random_function(mgr, rng, kVars, 4);
  // Several handles to one node, some dropped later: the refcount /
  // external-root bookkeeping must stay exact across the sift.
  std::vector<Bdd> copies(5, f);
  const Bdd negated = !f;
  copies.pop_back();
  copies.pop_back();

  mgr.reorder();
  mgr.check_integrity();  // validates refcounts and external_roots_

  // The handles still denote f / !f.
  EXPECT_EQ(copies.front().raw_edge(), f.raw_edge());
  std::vector<bool> assignment(kVars, false);
  for (std::uint32_t m = 0; m < (1u << kVars); ++m) {
    for (std::uint32_t v = 0; v < kVars; ++v) {
      assignment[v] = ((m >> v) & 1u) != 0;
    }
    ASSERT_EQ(f.eval(assignment), copies.front().eval(assignment));
    ASSERT_NE(f.eval(assignment), negated.eval(assignment));
  }
  // Dropping every handle after a reorder leaves a collectible store.
  copies.clear();
  mgr.garbage_collect();
  mgr.check_integrity();
}

TEST(BddReorderTest, SerializationIsOrderIndependent) {
  constexpr std::uint32_t kVars = 10;
  BddManager mgr{kVars};
  BddManager ref{kVars};
  std::mt19937 rng_a{11};
  std::mt19937 rng_b{11};
  const Bdd f = random_function(mgr, rng_a, kVars, 4);
  const Bdd g = random_function(ref, rng_b, kVars, 4);

  const SerializedBdd before = serialize_bdd(f);
  mgr.reorder();
  ASSERT_FALSE(mgr.has_identity_order());
  const SerializedBdd after = serialize_bdd(f);
  // Byte-identical node lists: the canonical form ignores the manager's
  // internal order — this is the invariant GlobalMemo keys stand on.
  EXPECT_EQ(before, after);
  EXPECT_EQ(serialize_bdd(g), after);

  // Round trips in every direction.
  BddManager dst{kVars};
  expect_same_function(deserialize_bdd(dst, after), g, kVars);  // to identity
  BddManager dst2{kVars};
  dst2.reorder();  // no nodes: order stays identity; force one manually
  const Bdd warm = pair_function(dst2, kVars / 2);
  dst2.reorder();
  expect_same_function(deserialize_bdd(dst2, after), g, kVars);  // reordered
  expect_same_function(dst2.import_bdd(f), g, kVars);    // reordered both
  expect_same_function(ref.import_bdd(f), g, kVars);     // reordered source
  (void)warm;
}

TEST(BddReorderTest, AutoReorderTriggersThroughGc) {
  constexpr std::uint32_t k = 10;
  BddManager mgr{2 * k};
  mgr.set_auto_reorder(true, /*first_trigger=*/256);
  const Bdd f = pair_function(mgr, k);
  ASSERT_GT(f.size(), 256u);
  EXPECT_EQ(mgr.stats().reorders, 0u);  // nothing ran yet

  mgr.garbage_collect_if_needed(/*dead_node_threshold=*/1);
  EXPECT_GE(mgr.stats().reorders, 1u);
  EXPECT_LE(f.size() * 2, std::size_t{1} << k);
  mgr.check_integrity();

  // The threshold doubled past the post-sift size: an immediate second
  // check must NOT re-sift.
  const std::uint64_t runs = mgr.stats().reorders;
  mgr.garbage_collect_if_needed(1);
  EXPECT_EQ(mgr.stats().reorders, runs);
}

TEST(BddReorderTest, SolverModesReturnCompatibleSolutions) {
  // reorder=on / auto are heuristics: costs may differ from off, but the
  // returned function must stay a compatible solution of the relation.
  for (const ReorderMode mode :
       {ReorderMode::Off, ReorderMode::On, ReorderMode::Auto}) {
    BddManager mgr{0};
    RelationSpace space = make_space(mgr, 2, 2);
    const BooleanRelation r = fig10_relation(mgr, space);
    SolverOptions options;
    options.reorder = mode;
    options.max_relations = 50;
    const SolveResult result = BrelSolver(options).solve(r);
    EXPECT_TRUE(r.is_compatible(result.function))
        << "mode " << static_cast<int>(mode);
    mgr.check_integrity();
  }
}

TEST(BddReorderTest, KernelOpsAgreeOnReorderedManagers) {
  // Cross-kernel differential on a reordered manager: every public op
  // must agree with the identity-order reference (the kernels recurse on
  // levels; this is the net that catches a missed var/level comparison).
  constexpr std::uint32_t kVars = 9;
  BddManager mgr{kVars};
  BddManager ref{kVars};
  std::mt19937 rng_a{29};
  std::mt19937 rng_b{29};
  const Bdd fa = random_function(mgr, rng_a, kVars, 4);
  const Bdd fb = random_function(mgr, rng_a, kVars, 4);
  const Bdd ga = random_function(ref, rng_b, kVars, 4);
  const Bdd gb = random_function(ref, rng_b, kVars, 4);
  mgr.reorder();
  ASSERT_FALSE(mgr.has_identity_order());

  const std::vector<std::uint32_t> q{1, 3, 5, 7};
  expect_same_function(mgr.bdd_and(fa, fb), ref.bdd_and(ga, gb), kVars);
  expect_same_function(mgr.bdd_xor(fa, fb), ref.bdd_xor(ga, gb), kVars);
  expect_same_function(mgr.ite(fa, fb, !fa), ref.ite(ga, gb, !ga), kVars);
  expect_same_function(mgr.exists(fa, q), ref.exists(ga, q), kVars);
  expect_same_function(mgr.forall(fa, q), ref.forall(ga, q), kVars);
  expect_same_function(mgr.and_exists(fa, fb, q), ref.and_exists(ga, gb, q),
                       kVars);
  expect_same_function(mgr.cofactor(fa, 4, true), ref.cofactor(ga, 4, true),
                       kVars);
  EXPECT_EQ(mgr.leq(fa, fb), ref.leq(ga, gb));
  EXPECT_EQ(mgr.leq(fa, mgr.bdd_or(fa, fb)), true);
  if (!fb.is_zero()) {
    // constrain/restrict are order-sensitive heuristics; only their
    // contracts transfer: the result agrees with f on the care set.
    const Bdd constrained = mgr.constrain(fa, fb);
    const Bdd diff = (constrained ^ fa) & fb;
    EXPECT_TRUE(diff.is_zero());
    const Bdd restricted = mgr.restrict_to(fa, fb);
    EXPECT_TRUE(((restricted ^ fa) & fb).is_zero());
  }
  if (!fa.is_zero()) {
    const IsopResult sop = mgr.isop(fa, fa);
    expect_same_function(sop.function, ga, kVars);
    const Cube cube = mgr.shortest_cube(fa);
    // The cube is an implicant of fa whatever the order.
    std::vector<std::uint32_t> var_map(kVars);
    for (std::uint32_t v = 0; v < kVars; ++v) {
      var_map[v] = v;
    }
    EXPECT_TRUE(mgr.cube_bdd(cube, var_map).subset_of(fa));
  }
  const std::vector<bool> minterm = mgr.pick_minterm(fa);
  EXPECT_TRUE(fa.eval(minterm));
  EXPECT_EQ(fa.support(), ga.support());
  mgr.check_integrity();
}

}  // namespace
}  // namespace brel
