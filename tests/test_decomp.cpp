// Tests for the logic-decomposition application (Sec. 10): decomposition
// relations, the mux example of Sec. 10.1 / Fig. 11, the mux-latch flow of
// Table 3, and the benchmark generators.

#include <gtest/gtest.h>

#include "benchgen/fsm_suite.hpp"
#include "benchgen/relation_suite.hpp"
#include "decomp/decompose.hpp"
#include "decomp/mux_latch.hpp"
#include "gyocro/gyocro.hpp"
#include "relation/enumeration.hpp"

namespace brel {
namespace {

class DecompTest : public ::testing::Test {
 protected:
  BddManager mgr{0};
};

TEST_F(DecompTest, MuxGateTruthTable) {
  const std::uint32_t first = mgr.add_vars(3);
  const Bdd a = mgr.var(first);
  const Bdd b = mgr.var(first + 1);
  const Bdd c = mgr.var(first + 2);
  const Bdd q = mux_gate(a, b, c);
  EXPECT_TRUE(q.cofactor(first + 2, false) == a);
  EXPECT_TRUE(q.cofactor(first + 2, true) == b);
}

TEST_F(DecompTest, Section101Example) {
  // f(x1,x2,x3) = x1 (x2 + x3) + !x1 !x2 !x3 decomposed with a mux
  // Q(A,B,C) = A !C + B C.  The relation encloses every decomposition;
  // BREL must return one that recomposes to f (Fig. 11 shows several).
  const std::uint32_t x = mgr.add_vars(3);
  const Bdd x1 = mgr.var(x);
  const Bdd x2 = mgr.var(x + 1);
  const Bdd x3 = mgr.var(x + 2);
  const Bdd f = (x1 & (x2 | x3)) | ((!x1) & !x2 & !x3);
  const std::vector<std::uint32_t> inputs{x, x + 1, x + 2};

  const std::uint32_t y = mgr.add_vars(3);
  const std::vector<std::uint32_t> abc{y, y + 1, y + 2};
  const Bdd gate = mux_gate(mgr.var(y), mgr.var(y + 1), mgr.var(y + 2));

  const BooleanRelation r = decomposition_relation(f, inputs, gate, abc);
  EXPECT_TRUE(r.is_well_defined());
  // The relation is genuinely a relation (flexibility), not a function.
  EXPECT_FALSE(r.is_function());

  SolverOptions options;
  options.max_relations = 50;
  const Decomposition d = decompose(f, inputs, gate, abc,
                                    BrelSolver(options));
  EXPECT_TRUE(verify_decomposition(f, gate, abc, d.branches));
}

TEST_F(DecompTest, RelationImageMatchesGateFlexibility) {
  // For a minterm where f = 0 the allowed (A,B,C) vertices are exactly
  // those with mux(A,B,C) = 0, e.g. (0,-,0) and (-,0,1) (Sec. 10.1).
  const std::uint32_t x = mgr.add_vars(1);
  const Bdd f = mgr.var(x);  // f = x1
  const std::uint32_t y = mgr.add_vars(3);
  const std::vector<std::uint32_t> abc{y, y + 1, y + 2};
  const Bdd gate = mux_gate(mgr.var(y), mgr.var(y + 1), mgr.var(y + 2));
  const BooleanRelation r = decomposition_relation(f, {x}, gate, abc);

  std::vector<bool> v(mgr.num_vars(), false);  // x1 = 0 -> f = 0
  const std::set<std::uint64_t> image = r.image_of(v);
  // Codes: bit0 = A, bit1 = B, bit2 = C.  mux = 0 on:
  // (A=0,C=0): {000, 010}, (B=0,C=1): {100, 101, ...} -> enumerate:
  const std::set<std::uint64_t> expected{0b000, 0b010, 0b100, 0b101};
  EXPECT_EQ(image, expected);
}

TEST_F(DecompTest, EveryCompatibleSolutionRecomposes) {
  // Property: any function compatible with the decomposition relation is a
  // valid decomposition (soundness of Def. 10.1).
  const std::uint32_t x = mgr.add_vars(2);
  const Bdd f = mgr.var(x) ^ mgr.var(x + 1);
  const std::vector<std::uint32_t> inputs{x, x + 1};
  const std::uint32_t y = mgr.add_vars(3);
  const std::vector<std::uint32_t> abc{y, y + 1, y + 2};
  const Bdd gate = mux_gate(mgr.var(y), mgr.var(y + 1), mgr.var(y + 2));
  const BooleanRelation r = decomposition_relation(f, inputs, gate, abc);
  std::size_t checked = 0;
  enumerate_compatible_functions(r, [&](const MultiFunction& candidate) {
    EXPECT_TRUE(verify_decomposition(f, gate, abc, candidate));
    ++checked;
    return checked < 200;  // sample
  });
  EXPECT_GT(checked, 0u);
}

TEST_F(DecompTest, MuxLatchFlowVerifiesAndScores) {
  const std::uint32_t x = mgr.add_vars(4);
  const std::vector<std::uint32_t> inputs{x, x + 1, x + 2, x + 3};
  const Bdd f = (mgr.var(x) & mgr.var(x + 1)) |
                (mgr.var(x + 2) & !mgr.var(x + 3));
  SolverOptions options;
  options.cost = sum_of_squared_bdd_sizes();
  options.max_relations = 50;
  const MuxLatchResult result =
      mux_latch_decompose(f, inputs, BrelSolver(options));
  EXPECT_TRUE(result.verified);
  EXPECT_GT(result.baseline.area, 0.0);
  EXPECT_GT(result.decomposed.area, 0.0);
  // The decomposed branches hide one mux level inside the flip-flop, so
  // their worst depth should not exceed the baseline's.
  EXPECT_LE(result.decomposed.depth, result.baseline.depth + 1.0);
}

TEST(BenchSuiteTest, RelationSuiteIsWellDefinedAndMixed) {
  for (const RelationBenchmark& bench : relation_suite()) {
    BddManager mgr{0};
    std::vector<std::uint32_t> inputs;
    std::vector<std::uint32_t> outputs;
    const BooleanRelation r =
        make_benchmark_relation(mgr, bench, inputs, outputs);
    EXPECT_EQ(inputs.size(), bench.num_inputs) << bench.name;
    EXPECT_EQ(outputs.size(), bench.num_outputs) << bench.name;
    EXPECT_TRUE(r.is_well_defined()) << bench.name;
    // The instances must exercise non-don't-care flexibility; otherwise
    // they would not separate BREL from plain MISF minimization.
    EXPECT_FALSE(r.is_misf()) << bench.name;
    EXPECT_FALSE(r.is_function()) << bench.name;
    // No constant multi-output function may be compatible: degenerate
    // instances would make the Table 1/2 harnesses meaningless.
    const std::uint64_t out_space = std::uint64_t{1} << bench.num_outputs;
    for (std::uint64_t c = 0; c < out_space; ++c) {
      Bdd constant_rows = r.characteristic();
      for (std::size_t o = 0; o < bench.num_outputs; ++o) {
        constant_rows = mgr.constrain(
            constant_rows, mgr.literal(outputs[o], ((c >> o) & 1u) != 0));
      }
      EXPECT_FALSE(constant_rows.is_one())
          << bench.name << ": constant solution " << c << " is compatible";
    }
  }
}

TEST(BenchSuiteTest, RelationSuiteIsDeterministic) {
  const RelationBenchmark& bench = relation_suite().front();
  BddManager mgr_a{0};
  BddManager mgr_b{0};
  std::vector<std::uint32_t> in_a, out_a, in_b, out_b;
  const BooleanRelation ra = make_benchmark_relation(mgr_a, bench, in_a, out_a);
  const BooleanRelation rb = make_benchmark_relation(mgr_b, bench, in_b, out_b);
  EXPECT_EQ(ra.to_table(), rb.to_table());
}

TEST(BenchSuiteTest, RelationSuiteSolvable) {
  // Smoke: BREL and gyocro both solve the two smallest instances.
  for (const RelationBenchmark& bench : {relation_suite()[0],
                                         relation_suite()[11]}) {
    BddManager mgr{0};
    std::vector<std::uint32_t> inputs;
    std::vector<std::uint32_t> outputs;
    const BooleanRelation r =
        make_benchmark_relation(mgr, bench, inputs, outputs);
    const SolveResult brel = BrelSolver().solve(r);
    EXPECT_TRUE(r.is_compatible(brel.function)) << bench.name;
    const GyocroResult gyocro = GyocroSolver().solve(r);
    EXPECT_TRUE(r.is_compatible(gyocro.function)) << bench.name;
  }
}

TEST(BenchSuiteTest, FsmSuiteShapes) {
  for (const FsmBenchmark& bench : fsm_suite()) {
    BddManager mgr{0};
    const FsmInstance instance = make_fsm_instance(mgr, bench);
    EXPECT_EQ(instance.support.size(), bench.num_pi + bench.num_ff)
        << bench.name;
    EXPECT_EQ(instance.next_state.size(), bench.num_ff) << bench.name;
    for (const Bdd& f : instance.next_state) {
      EXPECT_FALSE(f.is_constant()) << bench.name;
    }
  }
}

TEST(BenchSuiteTest, FsmSuiteIsDeterministic) {
  const FsmBenchmark& bench = fsm_suite().front();
  BddManager mgr{0};
  const FsmInstance a = make_fsm_instance(mgr, bench);
  const FsmInstance b = make_fsm_instance(mgr, bench);
  ASSERT_EQ(a.next_state.size(), b.next_state.size());
  for (std::size_t i = 0; i < a.next_state.size(); ++i) {
    // Same manager + same seed: the BDDs must be identical nodes, after
    // accounting for the different variable slices... the second instance
    // uses fresh variables, so compare by support-relative evaluation.
    EXPECT_EQ(a.next_state[i].size(), b.next_state[i].size());
  }
}

}  // namespace
}  // namespace brel
