// Tests for the hash-consed canonical memo keys (bdd_hash.hpp,
// memo_backend.hpp, global_memo.hpp's two-phase probe):
//
//   - the two routes to a key's 128-bit identity agree: the live-manager
//     cached walk (BddManager::canonical_hash folded with the rank
//     lists) and the arena walk over the materialized GlobalMemoKey —
//     including from a REORDERED manager, where the cached walk has to
//     peel cofactors instead of reading the store;
//   - the hash is stable across sifting and garbage collection for live
//     roots (the per-node cache is stamped out, the VALUE must not
//     change — a changed value would split one canonical identity
//     across probes and silently zero the memo hit rate);
//   - a pure probe miss serializes nothing: no handle materializes and
//     the process-wide build counter does not move;
//   - a forced 128-bit collision (injected through LazyMemoKey's
//     explicit-hash test seam; a genuine one cannot be constructed) is
//     detected by the verify step: the probe misses instead of serving
//     the other key's solution, the colliding publish is dropped, the
//     resident entry keeps answering its own key, and collisions()
//     counts every detection;
//   - the in-memory arena form is invisible at the text boundary: a
//     snapshot written by the pre-arena code (PR 9 fixture, checked in)
//     loads with zero skips and re-saves with the identical header,
//     trailer, and entry blocks — `check=` checksums included, which
//     pins the frozen 64-bit FNV feed to the bit.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "benchgen/paper_relations.hpp"
#include "brel/global_memo.hpp"
#include "brel/memo_snapshot.hpp"

namespace brel {
namespace {

PortableSolution solution_with_cost(double cost) {
  PortableSolution s;
  s.outputs.push_back(SerializedBdd{});
  s.cost = cost;
  return s;
}

using BuildFn = BooleanRelation (*)(BddManager&, const RelationSpace&);
const std::vector<BuildFn> kPaperRelations{fig1_relation, fig8_relation,
                                           fig10_relation};

TEST(MemoKeyHashTest, ManagerWalkAgreesWithArenaWalk) {
  for (const BuildFn build : kPaperRelations) {
    BddManager mgr{0};
    RelationSpace space = make_space(mgr, 2, 2);
    const BooleanRelation r = build(mgr, space);
    const auto ms = std::make_shared<const MemoSpace>(make_memo_space(r));

    const MemoKeyHandle handle = make_memo_handle(ms, r.characteristic());
    EXPECT_FALSE(handle->materialized());

    const GlobalMemoKey key = make_memo_key(*ms, r.characteristic());
    EXPECT_EQ(handle->hash, memo_key_hash128(key));
    // Materialization produces the identical arena form.
    EXPECT_EQ(handle->get(), key);
    EXPECT_TRUE(handle->materialized());
  }
}

TEST(MemoKeyHashTest, StableAcrossSiftAndGarbageCollection) {
  for (const BuildFn build : kPaperRelations) {
    BddManager mgr{0};
    RelationSpace space = make_space(mgr, 2, 2);
    const BooleanRelation r = build(mgr, space);
    const auto ms = std::make_shared<const MemoSpace>(make_memo_space(r));

    const CanonicalHash128 before =
        make_memo_handle(ms, r.characteristic())->hash;

    // Churn the node store so a GC has something to reclaim, then
    // collect: node indices may be recycled, the cache is stamped out,
    // and the recomputed hash must come out identical.
    for (std::uint32_t i = 0; i < 64; ++i) {
      Bdd scratch = r.characteristic() ^ mgr.literal(i % 4, (i & 1) != 0);
      (void)scratch;
    }
    mgr.garbage_collect();
    EXPECT_EQ(make_memo_handle(ms, r.characteristic())->hash, before)
        << "canonical hash changed across garbage collection";

    // Sifting moves variables: the canonical (identity-order) form is
    // order-independent by construction, so the hash must survive too.
    mgr.reorder();
    EXPECT_EQ(make_memo_handle(ms, r.characteristic())->hash, before)
        << "canonical hash changed across sifting";

    // And the reordered manager's lazy handle still materializes to the
    // same arena words (the cofactor-peeling serialize path).
    const MemoKeyHandle reordered =
        make_memo_handle(ms, r.characteristic());
    EXPECT_EQ(memo_key_hash128(reordered->get()), before);
  }
}

TEST(MemoKeyHashTest, PureMissNeverMaterializes) {
  BddManager mgr{0};
  RelationSpace space = make_space(mgr, 2, 2);
  const BooleanRelation r = fig1_relation(mgr, space);
  const auto ms = std::make_shared<const MemoSpace>(make_memo_space(r));

  GlobalMemo memo;
  const MemoRunStamp run = memo.begin_run();

  const MemoKeyBuildStats before = memo_key_build_stats();
  std::vector<MemoKeyHandle> handles;
  for (int i = 0; i < 8; ++i) {
    // Distinct probes of an empty memo: every one is a hash-only miss.
    handles.push_back(make_memo_handle(ms, r.characteristic()));
    EXPECT_FALSE(memo.lookup_at(handles.back(), 0).has_value());
    EXPECT_FALSE(memo.lookup(handles.back()).has_value());
  }
  const MemoKeyBuildStats after = memo_key_build_stats();
  EXPECT_EQ(after.builds, before.builds)
      << "a probe miss materialized a key";
  for (const MemoKeyHandle& handle : handles) {
    EXPECT_FALSE(handle->materialized());
  }
  EXPECT_EQ(memo.probes(), 16u);
  EXPECT_EQ(memo.hits(), 0u);

  // The first publish is the sanctioned materialization point.
  memo.publish(handles.front(), solution_with_cost(1.0), run.run_id);
  EXPECT_TRUE(handles.front()->materialized());
  EXPECT_EQ(memo_key_build_stats().builds, before.builds + 1);
}

TEST(MemoKeyCollisionTest, VerificationDisambiguatesForcedCollision) {
  BddManager mgr{0};
  RelationSpace space = make_space(mgr, 2, 2);
  const BooleanRelation a = fig1_relation(mgr, space);
  const BooleanRelation b = fig8_relation(mgr, space);
  const MemoSpace ms_a = make_memo_space(a);
  const MemoSpace ms_b = make_memo_space(b);
  const GlobalMemoKey key_a = make_memo_key(ms_a, a.characteristic());
  const GlobalMemoKey key_b = make_memo_key(ms_b, b.characteristic());
  ASSERT_NE(key_a, key_b);
  ASSERT_NE(memo_key_hash128(key_a), memo_key_hash128(key_b));

  // The seam: give B's key A's hash, so both handles land on one map
  // slot and only the verification compare can tell them apart.
  const MemoKeyHandle handle_a =
      std::make_shared<LazyMemoKey>(memo_key_hash128(key_a), key_a);
  const MemoKeyHandle liar_b =
      std::make_shared<LazyMemoKey>(memo_key_hash128(key_a), key_b);

  GlobalMemo memo;
  const MemoRunStamp run = memo.begin_run();
  memo.publish(handle_a, solution_with_cost(1.0), run.run_id);
  const auto shared_a = handle_a->shared_key();
  memo.mark_complete({&shared_a, 1});
  ASSERT_TRUE(memo.lookup(handle_a).has_value());
  EXPECT_EQ(memo.collisions(), 0u);

  // A probe under the colliding hash must MISS, never serve A's
  // solution for B's relation — a collision can cost a memo hit but can
  // never return a wrong solution.
  EXPECT_FALSE(memo.lookup(liar_b).has_value());
  EXPECT_EQ(memo.collisions(), 1u);

  // A colliding publish is dropped (first key wins) and the resident
  // entry keeps serving its own key.
  memo.publish(liar_b, solution_with_cost(0.5), run.run_id);
  EXPECT_GE(memo.collisions(), 2u);
  EXPECT_EQ(memo.size(), 1u);
  const auto served = memo.lookup(handle_a);
  ASSERT_TRUE(served.has_value());
  EXPECT_EQ(served->cost, 1.0);
}

TEST(MemoKeyArenaTest, SnapshotByteIdenticalToPreArenaFixture) {
  // tests/data/pr9_memo_fixture.snap was written by the pre-arena
  // snapshot code.  Loading it with ZERO skips proves the arena read
  // path (including the frozen 64-bit `check=` FNV recomputed from the
  // arena) accepts every pre-arena byte; re-saving and comparing pins
  // the write path.  Entry ORDER in the re-save is a map-iteration
  // artifact, so blocks compare as a multiset; header and trailer
  // compare exactly.
  const std::string path =
      std::string(BREL_TEST_DATA_DIR) + "/pr9_memo_fixture.snap";
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << "missing fixture " << path;
  std::stringstream fixture;
  fixture << in.rdbuf();

  GlobalMemo memo;
  const SnapshotLoadResult loaded = load_memo_snapshot(memo, fixture);
  EXPECT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.entries_skipped, 0u);
  ASSERT_GT(loaded.entries_installed, 0u);

  std::ostringstream resaved;
  const SnapshotSaveResult saved =
      save_memo_snapshot(memo, resaved, loaded.saved_at);
  ASSERT_TRUE(saved.ok) << saved.error;
  EXPECT_EQ(saved.entries, loaded.entries_installed);

  // Split a snapshot text into {header+trailer, entry blocks}.
  const auto split = [](const std::string& text) {
    std::vector<std::string> blocks;
    std::string frame;
    std::size_t pos = 0;
    while (pos < text.size()) {
      const std::size_t begin = text.find(".entry", pos);
      if (begin == std::string::npos) {
        frame += text.substr(pos);
        break;
      }
      frame += text.substr(pos, begin - pos);
      const std::size_t end = text.find(".endentry\n", begin);
      EXPECT_NE(end, std::string::npos);
      blocks.push_back(text.substr(begin, end + 10 - begin));
      pos = end + 10;
    }
    std::sort(blocks.begin(), blocks.end());
    return std::pair{frame, blocks};
  };
  const auto [fixture_frame, fixture_blocks] = split(fixture.str());
  const auto [resaved_frame, resaved_blocks] = split(resaved.str());
  EXPECT_EQ(resaved_frame, fixture_frame);
  EXPECT_EQ(resaved_blocks, fixture_blocks);
}

}  // namespace
}  // namespace brel
